// Differentiable inverse problem (paper §5) at example scale: identify the
// friction angle that produces an observed runout, by gradient descent on
// a loss whose gradient flows through the GNS rollout via reverse-mode AD.
//
// This is the capability that classical forward simulators lack: the MPM
// solver here can only *produce* the target observation; recovering φ from
// it with the physics solver would need finite differences or an adjoint.

#include <cstdio>

#include "core/datagen.hpp"
#include "core/inverse.hpp"
#include "core/serialize.hpp"
#include "core/trainer.hpp"
#include "obs/obs.hpp"
#include "util/timer.hpp"

int main() {
  gns::obs::install_from_env();
  using namespace gns;
  using namespace gns::core;

  std::printf("Inverse friction-angle identification (differentiable GNS)\n\n");

  // Scene + training sweep (the target angle 30 deg is held out).
  // The runout's phi-sensitivity needs a well-trained conditional model,
  // so this example uses the bench-grade configuration — and reuses the
  // bench harness's cached model when one exists (run
  // bench_fig3_gns_rollout once to create it; training here otherwise
  // takes several minutes on one core).
  mpm::GranularSceneParams scene;
  scene.cells_x = 32;
  scene.cells_y = 16;
  scene.domain_width = 1.0;
  scene.domain_height = 0.5;
  const std::vector<double> sweep = {20.0, 25.0, 35.0, 40.0, 45.0};

  std::printf("[1/3] phi-conditioned GNS (sweep {20..45} deg)\n");
  LearnedSimulator sim = [&] {
    if (auto cached = load_simulator("bench_cache/gns_columns_v1.bin")) {
      std::printf("      reusing bench_cache/gns_columns_v1.bin\n");
      return std::move(*cached);
    }
    io::Dataset ds =
        generate_column_dataset(scene, sweep, 0.15, 2.0, 60, 20);
    FeatureConfig fc;
    fc.dim = 2;
    fc.history = 5;
    fc.connectivity_radius = 0.04;
    fc.domain_lo = {0.0, 0.0};
    fc.domain_hi = {1.0, 0.5};
    fc.material_feature = true;
    GnsConfig gc;
    gc.latent = 32;
    gc.mlp_hidden = 32;
    gc.mlp_layers = 2;
    gc.message_passing_steps = 3;
    LearnedSimulator fresh = make_simulator(ds, fc, gc);
    TrainConfig tc;
    tc.steps = 2500;
    tc.lr = 2e-3;
    tc.lr_final = 2e-4;
    tc.noise_std = 3e-4;
    tc.log_every = 500;
    Timer train_timer;
    train_gns(fresh, ds, tc);
    std::printf("      trained in %.0f s\n", train_timer.seconds());
    return fresh;
  }();

  // Target observation: the true (unknown to the optimizer) angle.
  std::printf("[2/3] generating target observation at phi* = 30 deg\n");
  io::Dataset target = generate_column_dataset(scene, {30.0}, 0.15, 2.0,
                                               45, 20);
  InverseConfig ic;
  ic.rollout_steps = 32;  // deep enough that runout is phi-sensitive
  ic.max_iterations = 20;
  ic.lr = 80.0;           // sized to the runout sensitivity wrt tan(phi)
  ic.loss_tol = 1e-9;
  const auto& traj = target.trajectories[0];
  Window win = sim.window_from_trajectory(traj);
  // Self-consistent target: the simulator's own rollout at the true angle
  // (see bench_fig5_inverse for the MPM-target discussion).
  SceneContext target_ctx;
  target_ctx.material =
      ad::Tensor::scalar(material_param_from_friction(30.0));
  const double target_runout = smooth_runout_value(
      sim.rollout(win, ic.rollout_steps, target_ctx).back(), 2,
      ic.smooth_temp);
  std::printf("      target runout at k=%d frames: %.4f m\n",
              ic.rollout_steps, target_runout);

  // Gradient descent from a wrong initial guess.
  std::printf("[3/3] gradient descent from phi0 = 45 deg\n\n");
  Timer solve_timer;
  InverseResult result =
      solve_friction_angle(sim, win, target_runout, 45.0, ic);
  std::printf("%6s %12s %12s %12s\n", "iter", "phi (deg)", "runout",
              "loss");
  for (const auto& it : result.iterates) {
    std::printf("%6d %12.2f %12.4f %12.3e\n", it.iteration,
                it.friction_deg, it.runout, it.loss);
  }
  std::printf("\nidentified phi = %.1f deg (true 30.0) in %.0f s of AD\n",
              result.final().friction_deg, solve_timer.seconds());
  return 0;
}
