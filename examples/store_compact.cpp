/// \file store_compact.cpp
/// `gns_store_compact <dir>`: offline compaction of a TrajectoryStore
/// directory (the rollout cache's persistence layer). Drops unreachable
/// bytes, corrupt records, and superseded duplicates, then swaps the
/// rewritten files in crash-safely. Must not run while a server is
/// serving from the same directory.

#include <cstdio>
#include <string>

#include "store/compact.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <store-dir>\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  gns::store::CompactStats stats;
  std::string error;
  if (!gns::store::compact_store(dir, stats, error)) {
    std::fprintf(stderr, "gns_store_compact: %s\n", error.c_str());
    return 1;
  }
  std::printf(
      "compacted %s\n"
      "  records scanned:    %llu\n"
      "  records kept:       %llu\n"
      "  superseded dropped: %llu\n"
      "  corrupt dropped:    %llu\n"
      "  bytes before:       %llu\n"
      "  bytes after:        %llu\n",
      dir.c_str(), static_cast<unsigned long long>(stats.records_scanned),
      static_cast<unsigned long long>(stats.records_kept),
      static_cast<unsigned long long>(stats.superseded_dropped),
      static_cast<unsigned long long>(stats.corrupt_dropped),
      static_cast<unsigned long long>(stats.bytes_before),
      static_cast<unsigned long long>(stats.bytes_after));
  return 0;
}
