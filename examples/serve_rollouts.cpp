// Rollout serving demo: load a checkpoint once, serve it concurrently.
//
// The deployment shape of the paper's speedup claim: a trained GNS is
// loaded once into a ModelRegistry and queried by many clients at once
// through a JobScheduler worker pool. This driver
//
//   1. trains-or-caches a small column-collapse GNS checkpoint,
//   2. registers it from disk,
//   3. fires N concurrent mixed-size rollout requests from client threads
//      (full-scene and half-scene windows, varying step counts),
//   4. prints the latency/throughput report and dumps ServerStats as
//      CSV + JSON for scripts/plot_results.py.
//
// Usage: serve_rollouts [requests=48] [workers=4] [clients=8]
//        serve_rollouts --listen <port> [workers=4]
// Both modes accept --cache-dir <dir> anywhere on the line: it enables
// the content-addressed rollout cache (src/store) backed by that
// directory, so repeated identical requests are served from the mmap'd
// trajectory store instead of re-running the model. Without the flag,
// GNS_CACHE_DIR enables the same thing from the environment, and
// GNS_CACHE_BYTES caps the resident LRU budget (bytes) either way.
// GNS_NUM_THREADS caps the OpenMP pool inside each rollout step.
//
// --listen serves the same checkpoint over TCP (src/net wire protocol,
// 127.0.0.1 unless GNS_LISTEN_HOST overrides) until SIGINT/SIGTERM, then
// drains gracefully: in-flight jobs finish, replies flush, and the
// GNS_TRACE_FILE / GNS_METRICS_FILE observability dumps are written.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/datagen.hpp"
#include "core/serialize.hpp"
#include "core/trainer.hpp"
#include "net/net.hpp"
#include "obs/obs.hpp"
#include "serve/serve.hpp"
#include "store/store.hpp"
#include "util/timer.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

using namespace gns;
using namespace gns::core;
using namespace gns::serve;

namespace {

// Small column-collapse model: cached on disk so re-runs serve instantly.
std::string ensure_checkpoint(const std::string& dir) {
  const std::string path = dir + "/serve_demo_model.bin";
  if (load_simulator(path)) return path;

  std::printf("[setup] building demo checkpoint (one-time)...\n");
  mpm::GranularSceneParams scene;
  scene.cells_x = 24;
  scene.cells_y = 12;
  scene.domain_width = 1.0;
  scene.domain_height = 0.5;
  io::Dataset ds = generate_column_dataset(scene, {30.0}, 0.15, 1.5,
                                           /*frames=*/24, /*substeps=*/10);

  FeatureConfig features;
  features.dim = 2;
  features.history = 4;
  features.connectivity_radius = 0.06;
  features.domain_lo = {0.0, 0.0};
  features.domain_hi = {1.0, 0.5};
  features.material_feature = true;

  GnsConfig model;
  model.latent = 16;
  model.mlp_hidden = 16;
  model.mlp_layers = 2;
  model.message_passing_steps = 2;

  LearnedSimulator sim = make_simulator(ds, features, model);
  TrainConfig tc;
  tc.steps = 120;  // a short polish pass; serving doesn't need accuracy
  tc.lr = 1e-3;
  train_gns(sim, ds, tc);
  save_simulator(sim, path);
  std::printf("[setup] checkpoint -> %s\n", path.c_str());
  return path;
}

RolloutRequest make_request(const LearnedSimulator& sim,
                            const io::Trajectory& traj, int particles,
                            int steps) {
  RolloutRequest req;
  req.model = "columns";
  req.steps = steps;
  req.material = traj.material_param;
  req.deadline_ms = 0.0;
  const int w = sim.features().window_size();
  const int dim = sim.features().dim;
  for (int t = 0; t < w; ++t) {
    const auto& full = traj.frames[t];
    req.window.emplace_back(full.begin(),
                            full.begin() + particles * dim);
  }
  return req;
}

// --cache-dir beats GNS_CACHE_DIR; either way GNS_CACHE_BYTES caps the
// resident budget. nullptr (caching off) when neither is given.
std::shared_ptr<store::RolloutCache> open_rollout_cache(
    const std::string& flag_dir) {
  if (flag_dir.empty()) return store::make_cache_from_env();
  store::CacheConfig config;
  config.dir = flag_dir;
  if (const char* bytes = std::getenv("GNS_CACHE_BYTES")) {
    const long long parsed = std::atoll(bytes);
    if (parsed > 0) config.byte_budget = static_cast<std::uint64_t>(parsed);
  }
  return std::make_shared<store::RolloutCache>(config);
}

void print_cache_report(const store::RolloutCache* cache) {
  if (cache == nullptr) {
    std::printf("cache         off  (--cache-dir or GNS_CACHE_DIR enables)\n");
    return;
  }
  auto& metrics = obs::MetricsRegistry::global();
  const std::string p = cache->config().metrics_prefix + ".";
  std::printf("cache         hit %llu  miss %llu  insert %llu  "
              "coalesced %llu  evicted %llu\n",
              static_cast<unsigned long long>(
                  metrics.counter(p + "hit").value()),
              static_cast<unsigned long long>(
                  metrics.counter(p + "miss").value()),
              static_cast<unsigned long long>(
                  metrics.counter(p + "insert").value()),
              static_cast<unsigned long long>(
                  metrics.counter(p + "singleflight_coalesced").value()),
              static_cast<unsigned long long>(
                  metrics.counter(p + "evictions").value()));
  std::printf("cache store   %zu entries resident, %.1f KiB (%s)\n",
              cache->resident_entries(),
              static_cast<double>(cache->resident_bytes()) / 1024.0,
              cache->config().dir.c_str());
}

// Signal-to-drain plumbing: the handler only flips an async-signal-safe
// flag; the main thread notices and runs the actual (lock-taking) drain.
std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

/// `serve_rollouts --listen <port>`: serve the checkpoint over TCP until a
/// SIGINT/SIGTERM triggers a graceful drain.
int run_listen_mode(int port, int workers, const std::string& cache,
                    const std::string& cache_dir_flag) {
  const std::string checkpoint = ensure_checkpoint(cache);
  auto registry = std::make_shared<ModelRegistry>();
  if (!registry->load("columns", checkpoint)) {
    std::fprintf(stderr, "failed to load %s\n", checkpoint.c_str());
    return 1;
  }
  SchedulerConfig sched_config;
  sched_config.workers = workers;
  sched_config.queue_capacity = 256;
  sched_config.cache = open_rollout_cache(cache_dir_flag);
  if (sched_config.cache)
    std::printf("[serve] rollout cache at %s (%zu entries warm)\n",
                sched_config.cache->config().dir.c_str(),
                sched_config.cache->resident_entries());
  JobScheduler scheduler(registry, sched_config);

  net::ServerConfig config;
  config.port = port;
  if (const char* host = std::getenv("GNS_LISTEN_HOST")) config.host = host;
  net::Server server(scheduler, config);
  if (!server.start()) return 1;
  std::printf("[serve] listening on %s:%d (model 'columns', %d workers)\n",
              config.host.c_str(), server.port(), workers);
  std::printf("[serve] Ctrl-C (SIGINT) or SIGTERM drains and exits\n");

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_signal.load(std::memory_order_relaxed) == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::printf("[serve] signal %d: draining...\n",
              g_signal.load(std::memory_order_relaxed));
  server.stop();  // finishes in-flight jobs, flushes replies + obs files
  scheduler.shutdown(/*drain=*/true);

  const StatsSnapshot snap = scheduler.stats().snapshot();
  std::printf("[serve] drained: %llu completed, %llu failed\n",
              static_cast<unsigned long long>(snap.completed),
              static_cast<unsigned long long>(snap.failed));
  print_cache_report(sched_config.cache.get());
  scheduler.stats().write_json(cache + "/serve_listen_stats.json");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  gns::obs::install_from_env();

  // --cache-dir <dir> is recognized anywhere on the line, in both modes;
  // the remaining args keep their positional meaning.
  std::vector<std::string> args;
  std::string cache_dir_flag;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cache-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--cache-dir requires a directory argument\n");
        return 2;
      }
      cache_dir_flag = argv[++i];
      continue;
    }
    args.push_back(arg);
  }

  const char* cache_env_early = std::getenv("GNS_BENCH_CACHE");
  if (!args.empty() && args[0] == "--listen") {
    if (args.size() < 2) {
      std::fprintf(stderr,
                   "usage: serve_rollouts --listen <port> [workers] "
                   "[--cache-dir <dir>]\n");
      return 2;
    }
    const int port = std::atoi(args[1].c_str());
    int listen_workers = args.size() > 2 ? std::atoi(args[2].c_str()) : 4;
    if (listen_workers < 1) listen_workers = 1;
    const std::string cache = cache_env_early ? cache_env_early : "bench_cache";
    std::filesystem::create_directories(cache);
    return run_listen_mode(port, listen_workers, cache, cache_dir_flag);
  }

  const int requests = !args.empty() ? std::atoi(args[0].c_str()) : 48;
  int workers = args.size() > 1 ? std::atoi(args[1].c_str()) : 4;
  const int clients = args.size() > 2 ? std::atoi(args[2].c_str()) : 8;
  if (workers < 4) workers = 4;  // acceptance shape: >= 4-worker pool
#ifdef _OPENMP
  if (const char* env = std::getenv("GNS_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) omp_set_num_threads(n);
  }
#endif

  const char* cache_env = std::getenv("GNS_BENCH_CACHE");
  const std::string cache = cache_env ? cache_env : "bench_cache";
  std::filesystem::create_directories(cache);

  // 1+2. Checkpoint on disk -> registry.
  const std::string checkpoint = ensure_checkpoint(cache);
  auto registry = std::make_shared<ModelRegistry>();
  if (!registry->load("columns", checkpoint)) {
    std::fprintf(stderr, "failed to load %s\n", checkpoint.c_str());
    return 1;
  }
  ModelRegistry::Handle sim = registry->get("columns");
  std::printf("[serve] model 'columns': %lld parameters\n",
              static_cast<long long>(sim->model().num_parameters()));

  // A seed trajectory for request windows (same scene family as training).
  mpm::GranularSceneParams scene;
  scene.cells_x = 24;
  scene.cells_y = 12;
  scene.domain_width = 1.0;
  scene.domain_height = 0.5;
  io::Dataset probe = generate_column_dataset(scene, {30.0}, 0.15, 1.5,
                                              /*frames=*/10, /*substeps=*/10);
  const io::Trajectory& traj = probe.trajectories[0];
  const int full_n = traj.num_particles;
  const int half_n = full_n / 2;

  // 3. Concurrent mixed-size load from client threads.
  SchedulerConfig sched_config;
  sched_config.workers = workers;
  sched_config.queue_capacity = 256;
  sched_config.cache = open_rollout_cache(cache_dir_flag);
  if (sched_config.cache)
    std::printf("[serve] rollout cache at %s (%zu entries warm)\n",
                sched_config.cache->config().dir.c_str(),
                sched_config.cache->resident_entries());
  JobScheduler scheduler(registry, sched_config);
  std::printf("[serve] %d requests from %d clients through %d workers\n",
              requests, clients, workers);

  std::vector<std::vector<JobTicket>> tickets(
      static_cast<std::size_t>(clients));
  Timer wall;
  std::vector<std::thread> client_threads;
  client_threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      for (int i = c; i < requests; i += clients) {
        const bool big = i % 3 != 0;  // 2/3 full scene, 1/3 half scene
        const int steps = 6 + (i % 4) * 4;  // 6..18 frames
        tickets[static_cast<std::size_t>(c)].push_back(scheduler.submit(
            make_request(*sim, traj, big ? full_n : half_n, steps)));
      }
    });
  }
  for (auto& t : client_threads) t.join();

  int ok = 0, failed = 0;
  for (auto& per_client : tickets) {
    for (auto& ticket : per_client) {
      RolloutResult result = ticket.result.get();
      if (result.ok()) {
        ++ok;
      } else {
        ++failed;
        std::fprintf(stderr, "job %llu failed: %s (%s)\n",
                     static_cast<unsigned long long>(result.job_id),
                     to_string(result.status), result.error.c_str());
      }
    }
  }
  const double seconds = wall.seconds();

  // 4. Report + dumps.
  const StatsSnapshot snap = scheduler.stats().snapshot();
  std::printf("\n==== serving report ====\n");
  std::printf("requests      %d  (ok %d, failed %d)\n", requests, ok,
              failed);
  std::printf("wall time     %.2f s   throughput %.1f rollouts/s\n",
              seconds, snap.throughput(seconds));
  std::printf("peak queue    %d\n", snap.peak_queue_depth);
  std::printf("latency p50   %8.2f ms   (queue %8.2f, exec %8.2f)\n",
              snap.total_ms.quantile(0.50), snap.queue_ms.quantile(0.50),
              snap.exec_ms.quantile(0.50));
  std::printf("latency p95   %8.2f ms   (queue %8.2f, exec %8.2f)\n",
              snap.total_ms.quantile(0.95), snap.queue_ms.quantile(0.95),
              snap.exec_ms.quantile(0.95));
  std::printf("latency p99   %8.2f ms   (queue %8.2f, exec %8.2f)\n",
              snap.total_ms.quantile(0.99), snap.queue_ms.quantile(0.99),
              snap.exec_ms.quantile(0.99));
  {
    // Per-phase p50s from the serve.phase.* histograms (µs). In-process
    // serving has no wire, so decode/serialize/write stay empty.
    auto& metrics = obs::MetricsRegistry::global();
    const auto p50 = [&](const char* phase) {
      return metrics.histogram(std::string("serve.phase.") + phase)
          .snapshot()
          .quantile(0.50);
    };
    std::printf("phase p50     cache %.0f  queue %.0f  batch_wait %.0f  "
                "compute %.0f us\n",
                p50("cache_us"), p50("queue_us"), p50("batch_wait_us"),
                p50("compute_us"));
  }
  print_cache_report(sched_config.cache.get());

  scheduler.stats().write_latency_csv(cache + "/serve_latency.csv");
  scheduler.stats().write_json(
      cache + "/serve_stats.json",
      {{"workers", static_cast<double>(workers)},
       {"clients", static_cast<double>(clients)},
       {"wall_seconds", seconds},
       {"throughput_rps", snap.throughput(seconds)}});
  std::printf("wrote %s/serve_latency.csv and %s/serve_stats.json\n",
              cache.c_str(), cache.c_str());

  return failed == 0 ? 0 : 1;
}
