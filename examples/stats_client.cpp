// gns_stats: scrape a live serve_rollouts --listen server.
//
// Sends a kStatsRequest over the wire protocol and prints the health
// header (uptime, in-flight, queue depth, connections, drain state)
// followed by the full metrics snapshot — Prometheus text exposition by
// default, the registry's JSON dump with --json. The server answers on a
// handler thread without touching its worker pool, so scraping a loaded
// server is safe at any frequency.
//
// Usage: gns_stats <host> <port> [--json] [--probe N] [--steps S]
//
// --probe N first sends N traced rollout requests (against the 'columns'
// demo model that serve_rollouts serves) and prints each one's trace id
// and per-phase latency breakdown, so a fresh server has something in its
// serve.phase.* histograms before the scrape — and so the printed trace
// ids can be grepped in the server's GNS_TRACE_FILE dump and slow-request
// log. --steps sets the probe rollout length (default 8).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/datagen.hpp"
#include "net/net.hpp"

using namespace gns;

namespace {

/// Builds a rollout request for the serve_rollouts demo checkpoint: same
/// scene family (24x12-cell column collapse) and the same 5-frame window
/// (history 4 + current) that checkpoint was trained with.
serve::RolloutRequest make_probe_request(int steps) {
  mpm::GranularSceneParams scene;
  scene.cells_x = 24;
  scene.cells_y = 12;
  scene.domain_width = 1.0;
  scene.domain_height = 0.5;
  io::Dataset probe = core::generate_column_dataset(
      scene, {30.0}, 0.15, 1.5, /*frames=*/10, /*substeps=*/10);
  const io::Trajectory& traj = probe.trajectories[0];

  serve::RolloutRequest request;
  request.model = "columns";
  request.steps = steps;
  request.material = traj.material_param;
  constexpr int kWindow = 5;
  for (int t = 0; t < kWindow; ++t)
    request.window.push_back(traj.frames[static_cast<std::size_t>(t)]);
  return request;
}

// All probe output goes to stderr: stdout is reserved for the scrape
// body so `gns_stats host port --probe N > metrics.prom` stays a valid
// Prometheus exposition file.
int run_probes(net::Client& client, int probes, int steps) {
  std::fprintf(stderr,
               "[probe] building a %d-step column-collapse request...\n",
               steps);
  const serve::RolloutRequest request = make_probe_request(steps);
  int failed = 0;
  for (int i = 0; i < probes; ++i) {
    const net::ClientResult result = client.rollout(request);
    if (!result.transport_ok) {
      std::fprintf(stderr, "[probe] transport error: %s\n",
                   result.transport_error.c_str());
      ++failed;
      continue;
    }
    if (!result.ok()) {
      std::fprintf(stderr, "[probe] rollout failed: %s\n",
                   result.error.c_str());
      ++failed;
      continue;
    }
    std::fprintf(
        stderr,
        "[probe] trace 0x%016llx  %s  rtt %.2f ms  server %.2f ms  "
        "(decode %.0f  cache %.0f  queue %.0f  batch_wait %.0f  "
        "compute %.0f  serialize %.0f us)\n",
        static_cast<unsigned long long>(result.trace_id),
        to_string(result.cache_outcome), result.rtt_ms, result.total_ms,
        result.phases.decode_us, result.phases.cache_us,
        result.phases.queue_us, result.phases.batch_wait_us,
        result.phases.compute_us, result.phases.serialize_us);
  }
  return failed;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host;
  int port = 0;
  bool json = false;
  int probes = 0;
  int steps = 8;

  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--probe") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--probe requires a count\n");
        return 2;
      }
      probes = std::atoi(argv[++i]);
    } else if (arg == "--steps") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--steps requires a count\n");
        return 2;
      }
      steps = std::atoi(argv[++i]);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: gns_stats <host> <port> [--json] [--probe N] "
                 "[--steps S]\n");
    return 2;
  }
  host = positional[0];
  port = std::atoi(positional[1].c_str());
  if (port <= 0) {
    std::fprintf(stderr, "bad port '%s'\n", positional[1].c_str());
    return 2;
  }

  net::ClientConfig config;
  config.host = host;
  config.port = port;
  net::Client client(config);

  int probe_failures = 0;
  if (probes > 0) probe_failures = run_probes(client, probes, steps);

  const net::Client::StatsResult stats = client.stats(
      json ? net::WireStatsRequest::kJson
           : net::WireStatsRequest::kPrometheus);
  if (!stats.transport_ok) {
    std::fprintf(stderr, "stats scrape failed: %s\n",
                 stats.transport_error.c_str());
    return 1;
  }
  if (stats.is_net_error) {
    std::fprintf(stderr, "server rejected the scrape: %s (%s)\n",
                 to_string(stats.net_error), stats.error.c_str());
    return 1;
  }

  std::fprintf(stderr,
               "# server %s:%d  uptime %.1f s  inflight %u  queue %u  "
               "connections %u  draining %u  (scrape rtt %.2f ms)\n",
               host.c_str(), port, stats.reply.uptime_ms / 1000.0,
               stats.reply.inflight, stats.reply.queue_depth,
               stats.reply.active_connections, stats.reply.draining,
               stats.rtt_ms);
  std::fwrite(stats.reply.body.data(), 1, stats.reply.body.size(), stdout);
  if (!stats.reply.body.empty() && stats.reply.body.back() != '\n')
    std::printf("\n");

  return probe_failures == 0 ? 0 : 1;
}
