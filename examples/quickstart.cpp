// Quickstart: the whole pipeline in one page.
//
//   1. simulate granular flow with the MPM substrate,
//   2. train a small GNS on the trajectories,
//   3. roll the learned simulator out and compare against the physics.
//
// Runs in about a minute on one CPU core; every knob here is the small
// version of the configurations the benches use.

#include <cstdio>

#include "core/datagen.hpp"
#include "core/trainer.hpp"
#include "obs/obs.hpp"
#include "util/timer.hpp"

int main() {
  gns::obs::install_from_env();
  using namespace gns;
  using namespace gns::core;

  // 1. Physics data: four column collapses at different friction angles.
  std::printf("=== 1. generating MPM trajectories ===\n");
  mpm::GranularSceneParams scene;
  scene.cells_x = 24;
  scene.cells_y = 12;
  scene.domain_width = 1.0;
  scene.domain_height = 0.5;
  Timer data_timer;
  io::Dataset dataset = generate_column_dataset(
      scene, /*friction_angles=*/{20.0, 30.0, 40.0},
      /*column_width=*/0.15, /*aspect_ratio=*/1.5,
      /*frames=*/40, /*substeps=*/15);
  std::printf("  %d trajectories, %d particles, %d frames each (%.1f s)\n",
              dataset.size(), dataset.trajectories[0].num_particles,
              dataset.trajectories[0].num_frames(), data_timer.seconds());

  // 2. A small GNS: 5-step velocity history, 3 message-passing layers.
  std::printf("=== 2. training the GNS ===\n");
  FeatureConfig features;
  features.dim = 2;
  features.history = 5;
  features.connectivity_radius = 0.06;
  features.domain_lo = {0.0, 0.0};
  features.domain_hi = {1.0, 0.5};
  features.material_feature = true;  // condition on tan(phi)

  GnsConfig model;
  model.latent = 24;
  model.mlp_hidden = 24;
  model.mlp_layers = 2;
  model.message_passing_steps = 2;

  LearnedSimulator sim = make_simulator(dataset, features, model);
  std::printf("  model: %lld parameters\n",
              static_cast<long long>(sim.model().num_parameters()));

  TrainConfig train;
  train.steps = 800;
  train.lr = 2e-3;
  train.noise_std = 3e-4;
  train.log_every = 200;
  Timer train_timer;
  TrainReport report = train_gns(sim, dataset, train);
  std::printf("  trained %d steps in %.0f s, loss %.3f -> %.3f\n",
              train.steps, train_timer.seconds(), report.loss_history[0],
              report.final_loss_ema);

  // 3. Rollout on a held-out friction angle and compare with MPM.
  std::printf("=== 3. rollout vs physics (held-out phi = 35 deg) ===\n");
  io::Dataset held_out = generate_column_dataset(scene, {35.0}, 0.15, 1.5,
                                                 40, 15);
  const io::Trajectory& truth = held_out.trajectories[0];
  Window window = sim.window_from_trajectory(truth);
  SceneContext context = SceneContext::from_trajectory(features, truth);
  const int horizon = truth.num_frames() - features.window_size();
  Timer rollout_timer;
  auto frames = sim.rollout(window, horizon, context);
  std::printf("  %d learned frames in %.2f s\n", horizon,
              rollout_timer.seconds());
  for (int f : {4, 9, 19, horizon - 1}) {
    const double err = position_error(
        frames[f], truth.frames[features.window_size() + f], 2, 1.0);
    std::printf("  frame %2d: mean particle error %.2f%% of domain\n",
                f + 1, 100.0 * err);
  }
  std::printf("done. Next: examples/inverse_friction for the\n"
              "differentiable inverse problem, and bench/ for the full\n"
              "paper reproduction.\n");
  return 0;
}
