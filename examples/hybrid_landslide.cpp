// Hybrid GNS/MPM on a landslide-like scenario (paper §4): a wide, shallow
// granular bank fails and flows across an elongated domain. The hybrid
// controller alternates learned rollout legs with physics refinement legs;
// this example reports the error/time split against a pure-MPM reference
// and writes before/after deposit images.

#include <cstdio>

#include "core/datagen.hpp"
#include "core/hybrid.hpp"
#include "core/trainer.hpp"
#include "obs/obs.hpp"
#include "util/timer.hpp"
#include "viz/render.hpp"

int main() {
  gns::obs::install_from_env();
  using namespace gns;
  using namespace gns::core;

  std::printf("Hybrid GNS/MPM: landslide-style bank failure\n\n");

  // Elongated domain; a wide low bank at the left ("slope" failure mass).
  mpm::GranularSceneParams scene;
  scene.cells_x = 48;
  scene.cells_y = 12;
  scene.domain_width = 2.0;
  scene.domain_height = 0.5;
  scene.material.friction_deg = 30.0;
  const double bank_width = 0.5, bank_aspect = 0.5;  // 0.5 x 0.25 m

  // Train a small GNS on shorter runs of the same scene family.
  std::printf("[1/3] training the surrogate on bank collapses...\n");
  io::Dataset ds;
  for (double phi : {25.0, 30.0, 35.0}) {
    mpm::GranularSceneParams p = scene;
    p.material.friction_deg = phi;
    mpm::Scene s = mpm::make_column_collapse(p, bank_width, bank_aspect);
    mpm::MpmSolver solver = s.make_solver();
    ds.trajectories.push_back(record_mpm_trajectory(
        solver, 45, 20, material_param_from_friction(phi)));
  }
  FeatureConfig fc;
  fc.dim = 2;
  fc.history = 5;
  fc.connectivity_radius = 0.06;
  fc.domain_lo = {0.0, 0.0};
  fc.domain_hi = {scene.domain_width, scene.domain_height};
  fc.material_feature = true;
  GnsConfig gc;
  gc.latent = 24;
  gc.mlp_hidden = 24;
  gc.mlp_layers = 2;
  gc.message_passing_steps = 2;
  LearnedSimulator sim = make_simulator(ds, fc, gc);
  TrainConfig tc;
  tc.steps = 1200;
  tc.lr = 2e-3;
  tc.noise_std = 3e-4;
  tc.log_every = 400;
  Timer train_timer;
  train_gns(sim, ds, tc);
  std::printf("      %.0f s\n", train_timer.seconds());

  // Reference vs hybrid on the phi = 30 scenario.
  std::printf("[2/3] running MPM reference and hybrid...\n");
  mpm::Scene run_scene =
      mpm::make_column_collapse(scene, bank_width, bank_aspect);
  const int frames = 40, substeps = 20;
  MpmReference ref =
      run_mpm_reference(run_scene.make_solver(), frames, substeps);
  HybridConfig hc;
  hc.gns_frames = 8;
  hc.refine_frames = 4;
  hc.substeps = substeps;
  HybridResult hybrid =
      run_hybrid(sim, run_scene.make_solver(), hc, frames,
                 material_param_from_friction(30.0));
  const auto errors = frame_errors(hybrid.frames, ref.frames,
                                   scene.domain_width);
  std::printf("      frame errors (%% of domain length):\n");
  for (int f : {10, 20, 30, frames - 1}) {
    std::printf("        frame %2d: %.2f%%  (%s)\n", f, 100 * errors[f],
                hybrid.sources[f] == FrameSource::Gns ? "GNS leg"
                                                      : "MPM leg");
  }
  const double hybrid_total = hybrid.mpm_seconds + hybrid.gns_seconds;
  std::printf("      MPM reference %.2f s | hybrid %.2f s (%.0f%% MPM)\n",
              ref.seconds, hybrid_total,
              100.0 * hybrid.mpm_seconds / hybrid_total);

  // In-situ deposit images.
  std::printf("[3/3] writing deposit images...\n");
  viz::ViewBox view{0.0, 0.0, scene.domain_width, scene.domain_height};
  viz::render_comparison(ref.frames.back(), hybrid.frames.back(), view)
      .save_ppm("landslide_final.ppm");
  std::printf("      landslide_final.ppm (MPM | hybrid)\n");
  return 0;
}
