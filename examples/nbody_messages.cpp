// Interpretable GNS (paper §6) at example scale: train a GNS on a chain of
// colliding spring-balls, then show that its learned edge messages are a
// linear image of the true contact force — and let symbolic regression
// write the law down.

#include <cmath>
#include <cstdio>

#include "core/datagen.hpp"
#include "core/interpret.hpp"
#include "core/trainer.hpp"
#include "obs/obs.hpp"
#include "sr/report.hpp"
#include "util/timer.hpp"

int main() {
  gns::obs::install_from_env();
  using namespace gns;
  using namespace gns::core;

  std::printf("Interpretable GNS: from learned messages to a force law\n\n");

  // 1. Ground truth: 10 balls on a line, linear contact springs k = 100.
  NBodyDataGenConfig dg;
  dg.system.num_bodies = 10;
  dg.system.stiffness = 100.0;
  dg.num_trajectories = 6;
  dg.frames = 100;
  dg.substeps = 8;
  io::Dataset ds = generate_nbody_dataset(dg);
  std::printf("[1/4] simulated %d spring-ball trajectories\n", ds.size());

  // 2. GNS with L1-sparsified messages.
  FeatureConfig fc;
  fc.dim = 1;
  fc.history = 2;
  fc.connectivity_radius = 0.18;
  fc.static_node_attrs = 2;  // radius, mass
  GnsConfig gc;
  gc.latent = 8;
  gc.mlp_hidden = 24;
  gc.mlp_layers = 1;
  gc.message_passing_steps = 1;  // 1-hop: messages = pure pair interactions
  LearnedSimulator sim = make_simulator(ds, fc, gc);
  TrainConfig tc;
  tc.steps = 60000;
  tc.lr = 2e-3;
  tc.noise_std = 1e-5;
  tc.l1_message_weight = 0.05;
  Timer train_timer;
  TrainReport report = train_gns(sim, ds, tc);
  std::printf("[2/4] trained with L1 message sparsity (%.0f s, loss %.3f)\n",
              train_timer.seconds(), report.final_loss_ema);

  // 3. Extract messages on held-out data, check the force correlation.
  NBodyDataGenConfig test_cfg = dg;
  test_cfg.seed = 999;
  test_cfg.num_trajectories = 1;
  test_cfg.frames = 150;
  io::Dataset test = generate_nbody_dataset(test_cfg);
  MessageDataset data = filter_contacts(
      collect_messages(sim, test.trajectories[0], test_cfg.system));
  const int dominant = dominant_component(data);
  const double corr = message_force_correlation(data, dominant);
  std::printf("[3/4] %d edge observations; dominant message component #%d\n",
              data.size(), dominant);
  std::printf("      corr(message, true force) = %+.3f\n", corr);

  // 4. Symbolic regression on the dominant component.
  sr::SrProblem problem;
  problem.var_names = {"dx", "r1", "r2", "m1", "m2"};
  problem.var_dims = {sr::Dim{{1, 0}}, sr::Dim{{1, 0}}, sr::Dim{{1, 0}},
                      sr::Dim{{0, 1}}, sr::Dim{{0, 1}}};
  problem.target_dim = sr::Dim{{1, 1}};
  const auto target = component_values(data, dominant);
  for (int i = 0; i < data.size(); ++i) {
    if (data.features[i][0] <= 0.0) continue;  // one branch by symmetry
    problem.X.push_back({data.features[i][0], data.features[i][1],
                         data.features[i][2], data.features[i][3],
                         data.features[i][4]});
    problem.y.push_back(target[i]);
  }
  sr::SrConfig config;
  config.population = 512;
  config.generations = 40;
  Timer sr_timer;
  sr::ParetoFront front = sr::run_sr(problem, config);
  std::printf("[4/4] symbolic regression (%.0f s):\n\n", sr_timer.seconds());
  std::printf("%s", sr::render_table(
                        sr::build_table(front, problem.var_names))
                        .c_str());
  std::printf("\n(the true interaction law is F = 100 |dx - r1 - r2|)\n");
  return 0;
}
