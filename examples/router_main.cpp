// Fleet front door: one process that load-balances rollout requests
// across N `serve_rollouts --listen` backends (src/router).
//
// Clients keep speaking the exact same wire protocol they use against a
// single server — point them at the router's port and nothing else
// changes. The router learns everything over the wire (HELLO capability
// handshake: models served, protocol version, capacity), places each
// request on the least-loaded capable backend, health-checks the fleet,
// fails over when a backend dies before its first reply chunk, and
// aggregates fleet capability so `gns_stats` scrapes and HELLOs work
// against the router itself.
//
// Usage:
//   gns_router --listen <port> --backend host:port [--backend host:port ...]
//              [--probe-interval-ms N] [--max-attempts N]
//
// A bare "port" backend spec means 127.0.0.1. GNS_LISTEN_HOST overrides
// the bind address (127.0.0.1 default). SIGINT/SIGTERM drains gracefully:
// new requests get typed ShuttingDown, in-flight proxied streams finish,
// then the process exits and prints the final fleet snapshot.
//
// A three-backend fleet on one machine:
//   serve_rollouts --listen 7001 & serve_rollouts --listen 7002 &
//   serve_rollouts --listen 7003 &
//   gns_router --listen 7000 --backend :7001 --backend :7002 --backend :7003
//   gns_stats 7000            # scrapes the ROUTER's metrics + health

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "router/router.hpp"

using namespace gns;

namespace {

std::atomic<int> g_signal{0};
void on_signal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

const char* health_name(router::BackendHealth health) {
  switch (health) {
    case router::BackendHealth::Healthy: return "healthy";
    case router::BackendHealth::Evicted: return "evicted";
    case router::BackendHealth::Unknown: break;
  }
  return "unknown";
}

void print_fleet(const router::Router& r) {
  for (const router::BackendSnapshot& b : r.snapshot()) {
    std::string models;
    for (const std::string& m : b.capabilities.models) {
      if (!models.empty()) models += ",";
      models += m;
    }
    if (models.empty()) models = b.capabilities.legacy ? "*(legacy)" : "?";
    std::printf("  %s:%d  %-8s v%d  inflight %d/%u  models [%s]\n",
                b.address.host.c_str(), b.address.port,
                health_name(b.health), b.capabilities.wire_version,
                b.inflight, b.capabilities.capacity, models.c_str());
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: gns_router --listen <port> --backend host:port "
               "[--backend host:port ...]\n"
               "                  [--probe-interval-ms N] "
               "[--max-attempts N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  obs::install_from_env();

  router::RouterConfig config;
  config.port = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--listen" && has_value) {
      config.port = std::atoi(argv[++i]);
    } else if (arg == "--backend" && has_value) {
      router::BackendAddress address;
      if (!router::parse_backend_address(argv[++i], address)) {
        std::fprintf(stderr, "malformed backend spec '%s'\n", argv[i]);
        return 2;
      }
      config.backends.push_back(address);
    } else if (arg == "--probe-interval-ms" && has_value) {
      config.probe_interval_ms = std::atof(argv[++i]);
    } else if (arg == "--max-attempts" && has_value) {
      config.max_attempts = std::atoi(argv[++i]);
    } else {
      return usage();
    }
  }
  if (config.port < 0 || config.backends.empty()) return usage();
  if (const char* host = std::getenv("GNS_LISTEN_HOST")) config.host = host;

  router::Router router(config);
  if (!router.start()) {
    std::fprintf(stderr, "failed to bind %s:%d\n", config.host.c_str(),
                 config.port);
    return 1;
  }
  std::printf("[router] listening on %s:%d, %zu backends:\n",
              config.host.c_str(), router.port(), config.backends.size());
  print_fleet(router);
  std::printf("[router] Ctrl-C (SIGINT) or SIGTERM drains and exits\n");

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_signal.load(std::memory_order_relaxed) == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::printf("[router] signal %d: draining...\n",
              g_signal.load(std::memory_order_relaxed));
  // Fleet drain order: router FIRST (this), backends after it exits —
  // draining backends while the router still proxies would drop work.
  router.stop();
  std::printf("[router] drained; final fleet state:\n");
  print_fleet(router);
  return 0;
}
