// MeshNet on flow past a cylinder (paper §3.2, Fig 2), example scale:
// run the CFD substrate into the vortex-shedding regime, render the wake,
// train a small MeshNet on the frames, and compare a learned rollout
// against the solver.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/meshnet.hpp"
#include "obs/obs.hpp"
#include "util/timer.hpp"

namespace {

// ASCII vorticity rendering: +/- shades for counter-rotating vortices.
void render_vorticity(const gns::cfd::CfdSolver& solver,
                      const std::vector<double>& cell_velocities) {
  const int nx = solver.config().nx, ny = solver.config().ny;
  const double dx = solver.dx();
  const int step_y = std::max(1, ny / 20);
  const int step_x = std::max(1, nx / 72);
  for (int j = ny - 1 - step_y; j >= step_y; j -= step_y) {
    std::printf("  ");
    for (int i = step_x; i < nx - step_x; i += step_x) {
      if (solver.cell_type(i, j) == gns::cfd::CellType::Solid) {
        std::printf("#");
        continue;
      }
      const auto v = [&](int ii, int jj, int c) {
        return cell_velocities[2 * (jj * nx + ii) + c];
      };
      const double omega = (v(i + 1, j, 1) - v(i - 1, j, 1)) / (2 * dx) -
                           (v(i, j + 1, 0) - v(i, j - 1, 0)) / (2 * dx);
      const char* pos = " .-=*%";
      const char* neg = " ,~+#@";
      const int mag = std::min(5, static_cast<int>(std::abs(omega) / 4.0));
      std::printf("%c", omega >= 0 ? pos[mag] : neg[mag]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  gns::obs::install_from_env();
  using namespace gns;
  using namespace gns::core;

  std::printf("MeshNet vs CFD: von Karman vortex shedding\n\n");

  cfd::CfdConfig cfg;
  cfg.nx = 64;
  cfg.ny = 32;
  cfg.length = 2.0;
  cfg.reynolds = 150.0;
  cfd::CfdSolver solver(cfg);

  std::printf("[1/3] CFD warm-up + recording...\n");
  Timer cfd_timer;
  for (int i = 0; i < 500; ++i) solver.step();
  cfd::CfdRollout truth = cfd::run_rollout(solver, 100, 3);
  std::printf("      %.1f s; shedding at %.3f Hz\n", cfd_timer.seconds(),
              cfd::dominant_frequency(truth.probe_series, truth.frame_dt));
  std::printf("\n  ground-truth vorticity field (# = cylinder):\n");
  render_vorticity(solver, truth.velocity_frames.back());

  double vstd = 0.0;
  std::int64_t n = 0;
  for (const auto& f : truth.velocity_frames) {
    for (double v : f) vstd += v * v;
    n += static_cast<std::int64_t>(f.size());
  }
  vstd = std::sqrt(vstd / n);

  std::printf("\n[2/3] training MeshNet on %zu frames...\n",
              truth.velocity_frames.size());
  Mesh mesh = build_mesh(solver);
  MeshNetConfig mc;
  mc.latent = 24;
  mc.mlp_hidden = 24;
  mc.mlp_layers = 1;
  mc.message_passing_steps = 3;
  MeshNet net(mesh, mc, vstd);
  MeshNetTrainConfig tc;
  tc.steps = 250;
  tc.lr = 1.5e-3;
  Timer train_timer;
  auto losses = train_meshnet(net, truth.velocity_frames, tc);
  std::printf("      %.0f s; loss %.4f -> %.4f\n", train_timer.seconds(),
              losses.front(), losses.back());

  std::printf("\n[3/3] learned rollout vs ground truth:\n");
  auto rollout = net.rollout(truth.velocity_frames[0], 40);
  for (int t : {4, 9, 19, 39}) {
    const double rmse =
        field_rmse(rollout[t], truth.velocity_frames[t + 1]);
    std::printf("  frame %2d: RMSE %.4f m/s (%.1f%% of flow RMS)\n", t + 1,
                rmse, 100 * rmse / vstd);
  }
  std::printf("\n  MeshNet-predicted vorticity at frame 40:\n");
  render_vorticity(solver, rollout[39]);
  return 0;
}
