// Granular column collapse with the MPM substrate alone: the physics
// behind the paper's §5 inverse problem. Sweeps friction angle and aspect
// ratio and prints the runout scaling, plus an ASCII rendering of the
// final deposit — a compact way to see the solver doing real mechanics.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "mpm/scenes.hpp"
#include "obs/obs.hpp"
#include "util/timer.hpp"

namespace {

void render_ascii(const gns::mpm::MpmSolver& solver, int cols, int rows) {
  const double w = solver.grid().width();
  const double h = solver.grid().height();
  std::vector<int> density(cols * rows, 0);
  for (const auto& p : solver.particles().position) {
    const int cx = std::min(cols - 1, static_cast<int>(p.x / w * cols));
    const int cy = std::min(rows - 1, static_cast<int>(p.y / h * rows));
    ++density[cy * cols + cx];
  }
  const char* shades = " .:oO@";
  for (int r = rows - 1; r >= 0; --r) {
    std::printf("  |");
    for (int c = 0; c < cols; ++c) {
      const int d = density[r * cols + c];
      std::printf("%c", shades[std::min(5, d)]);
    }
    std::printf("|\n");
  }
  std::printf("  +");
  for (int c = 0; c < cols; ++c) std::printf("-");
  std::printf("+\n");
}

}  // namespace

int main() {
  gns::obs::install_from_env();
  using namespace gns::mpm;

  std::printf("Granular column collapse (explicit MPM, Drucker-Prager)\n\n");

  GranularSceneParams params;
  params.cells_x = 40;
  params.cells_y = 20;
  params.domain_width = 1.0;
  params.domain_height = 0.5;

  // 1. Friction-angle sweep at fixed aspect ratio: runout shrinks with phi
  // (this monotonicity is what makes the inverse problem solvable).
  std::printf("friction sweep (column 0.15 m wide, aspect 2.0):\n");
  std::printf("%12s %14s %14s %16s\n", "phi (deg)", "runout (m)",
              "height (m)", "KE/m (J/kg)");
  for (double phi : {15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0}) {
    params.material.friction_deg = phi;
    Scene scene = make_column_collapse(params, 0.15, 2.0);
    MpmSolver solver = scene.make_solver();
    while (solver.time() < 1.2) solver.step();
    double max_y = 0.0;
    for (const auto& p : solver.particles().position)
      max_y = std::max(max_y, p.y);
    std::printf("%12.0f %14.3f %14.3f %16.2e\n", phi,
                solver.particles().max_x(), max_y,
                solver.particles().kinetic_energy() /
                    solver.particles().total_mass());
  }

  // 2. Aspect-ratio sweep at phi = 30: taller columns run out farther
  // (the classic Lube/Lajeunesse scaling regime change).
  std::printf("\naspect-ratio sweep (phi = 30 deg, width 0.12 m):\n");
  std::printf("%12s %16s %20s\n", "aspect a", "runout L (m)",
              "(L - L0)/L0");
  params.material.friction_deg = 30.0;
  for (double a : {0.5, 1.0, 1.5, 2.0, 3.0}) {
    Scene scene = make_column_collapse(params, 0.12, a);
    MpmSolver solver = scene.make_solver();
    while (solver.time() < 1.2) solver.step();
    const double runout = solver.particles().max_x();
    std::printf("%12.1f %16.3f %20.2f\n", a, runout,
                (runout - 0.12) / 0.12);
  }

  // 3. Deposit picture for one run.
  std::printf("\nfinal deposit, phi = 30 deg, a = 2.0:\n");
  Scene scene = make_column_collapse(params, 0.15, 2.0);
  MpmSolver solver = scene.make_solver();
  gns::Timer timer;
  while (solver.time() < 1.2) solver.step();
  std::printf("  (%lld MPM steps in %.1f s)\n",
              static_cast<long long>(solver.steps_taken()),
              timer.seconds());
  render_ascii(solver, 60, 12);
  return 0;
}
