#include "sr/report.hpp"

#include <iomanip>
#include <sstream>

namespace gns::sr {

std::vector<TableRow> build_table(const ParetoFront& front,
                                  const std::vector<std::string>& var_names,
                                  bool require_dims_ok) {
  const ParetoEntry* chosen = front.select_occam(require_dims_ok);
  std::vector<TableRow> rows;
  int index = 1;
  for (const ParetoEntry* e : front.entries()) {
    TableRow row;
    row.index = index++;
    row.equation = e->expr->to_string(var_names);
    row.mse = e->mse;
    row.complexity = e->complexity;
    row.dims_ok = e->dims_ok;
    row.chosen = (e == chosen);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string render_table(const std::vector<TableRow>& rows) {
  std::size_t eq_width = 16;
  for (const auto& r : rows) eq_width = std::max(eq_width, r.equation.size());
  std::ostringstream os;
  os << std::left << std::setw(5) << "Eq." << std::setw(eq_width + 2)
     << "Derived equation" << std::setw(14) << "MSE" << std::setw(5) << "Cx"
     << "Da\n";
  os << std::string(5 + eq_width + 2 + 14 + 5 + 2, '-') << "\n";
  for (const auto& r : rows) {
    std::string label = std::to_string(r.index);
    if (r.chosen) label += "*";
    os << std::left << std::setw(5) << label << std::setw(eq_width + 2)
       << r.equation << std::setw(14) << std::scientific
       << std::setprecision(3) << r.mse << std::setw(5) << std::defaultfloat
       << r.complexity << (r.dims_ok ? "Y" : "N") << "\n";
  }
  return os.str();
}

}  // namespace gns::sr
