#pragma once

/// \file expr.hpp
/// Expression trees for symbolic regression (§6, Table 1).
///
/// The operator set follows the paper: +, −, *, /, >, <, pow, exp, inv,
/// log (plus abs, which appears in the recovered law). Complexity C_x is a
/// weighted operator/terminal count with pow/exp/inv/log weighted 3× —
/// exactly the paper's "simple weighted counting model". Dimensional
/// analysis (the D_a column) propagates (length, mass) exponents through
/// the tree, with constants acting as wildcards that can absorb units.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace gns::sr {

enum class Op : unsigned char {
  Const, Var,
  Add, Sub, Mul, Div, Pow, Gt, Lt,   // binary
  Exp, Log, Inv, Abs, Neg            // unary
};

[[nodiscard]] constexpr int arity(Op op) {
  switch (op) {
    case Op::Const:
    case Op::Var: return 0;
    case Op::Exp:
    case Op::Log:
    case Op::Inv:
    case Op::Abs:
    case Op::Neg: return 1;
    default: return 2;
  }
}

/// Complexity weight: pow/exp/inv/log count 3×, everything else 1 (§6).
[[nodiscard]] constexpr int op_weight(Op op) {
  switch (op) {
    case Op::Pow:
    case Op::Exp:
    case Op::Inv:
    case Op::Log: return 3;
    default: return 1;
  }
}

/// Physical dimension as (length, mass) exponents. nullopt = wildcard
/// (constants can absorb any units).
using Dim = std::optional<std::pair<int, int>>;

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  Op op = Op::Const;
  double value = 0.0;  ///< for Const
  int var = -1;        ///< for Var
  ExprPtr a, b;

  Expr() = default;
  explicit Expr(double constant) : op(Op::Const), value(constant) {}
  static ExprPtr constant(double v);
  static ExprPtr variable(int index);
  static ExprPtr unary(Op op, ExprPtr child);
  static ExprPtr binary(Op op, ExprPtr lhs, ExprPtr rhs);

  [[nodiscard]] ExprPtr clone() const;

  /// Evaluates at one sample (vars[i] = value of variable i). Guards
  /// division/log domain errors by returning quiet NaN, which fitness
  /// treats as failure.
  [[nodiscard]] double eval(const std::vector<double>& vars) const;

  /// Weighted complexity C_x (counts every node; pow/exp/inv/log ×3).
  [[nodiscard]] int complexity() const;

  /// Number of nodes.
  [[nodiscard]] int size() const;

  /// Depth of the tree (leaf = 1).
  [[nodiscard]] int depth() const;

  /// Dimensional analysis: the inferred dimension, or nullopt-wrapped-in-
  /// failure. Returns false in `ok` when the tree is dimensionally
  /// inconsistent.
  struct DimResult {
    bool ok = true;
    Dim dim;  ///< meaningful only when ok
  };
  [[nodiscard]] DimResult infer_dim(const std::vector<Dim>& var_dims) const;

  /// True when the tree is dimensionally consistent AND its result can
  /// carry `target` units (wildcards unify with anything).
  [[nodiscard]] bool dims_ok(const std::vector<Dim>& var_dims,
                             const Dim& target) const;

  [[nodiscard]] std::string to_string(
      const std::vector<std::string>& var_names) const;

  /// Collects pointers to every node (pre-order) for genetic operators.
  void collect(std::vector<Expr*>& nodes);
};

/// Uniform random tree of depth ≤ max_depth over the given operators and
/// variable count; leaf probability grows with depth.
[[nodiscard]] ExprPtr random_expr(const std::vector<Op>& operators,
                                  int num_vars, int max_depth, Rng& rng,
                                  double const_min = -5.0,
                                  double const_max = 5.0);

}  // namespace gns::sr
