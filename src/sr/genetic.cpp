#include "sr/genetic.hpp"

#include "sr/simplify.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gns::sr {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::vector<Op> paper_operator_set() {
  return {Op::Add, Op::Sub, Op::Mul, Op::Div, Op::Gt,  Op::Lt,
          Op::Pow, Op::Exp, Op::Inv, Op::Log, Op::Abs, Op::Neg};
}

FitnessResult evaluate(const Expr& expr, const SrProblem& problem) {
  const int n = problem.num_samples();
  GNS_CHECK(n > 0);
  double abs_sum = 0.0, sq_sum = 0.0;
  bool bad = false;
#pragma omp parallel for schedule(static) reduction(+ : abs_sum, sq_sum) \
    reduction(|| : bad) if (n > 4096)
  for (int i = 0; i < n; ++i) {
    const double pred = expr.eval(problem.X[i]);
    if (!std::isfinite(pred)) {
      bad = true;
    } else {
      const double d = pred - problem.y[i];
      abs_sum += std::abs(d);
      sq_sum += d * d;
    }
  }
  if (bad) return {kInf, kInf, false};
  return {abs_sum / n, sq_sum / n, true};
}

ScaledFitness evaluate_scaled(const Expr& expr, const SrProblem& problem) {
  const int n = problem.num_samples();
  GNS_CHECK(n > 0);
  std::vector<double> pred(n);
  bool bad = false;
#pragma omp parallel for schedule(static) reduction(|| : bad) if (n > 4096)
  for (int i = 0; i < n; ++i) {
    pred[i] = expr.eval(problem.X[i]);
    if (!std::isfinite(pred[i])) bad = true;
  }
  ScaledFitness out;
  if (bad) return out;
  // Least-squares a, b for y ≈ a·pred + b.
  double mp = 0.0, my = 0.0;
  for (int i = 0; i < n; ++i) {
    mp += pred[i];
    my += problem.y[i];
  }
  mp /= n;
  my /= n;
  double spp = 0.0, spy = 0.0;
  for (int i = 0; i < n; ++i) {
    spp += (pred[i] - mp) * (pred[i] - mp);
    spy += (pred[i] - mp) * (problem.y[i] - my);
  }
  out.scale = (spp > 1e-12) ? spy / spp : 0.0;
  out.offset = my - out.scale * mp;
  double abs_sum = 0.0, sq_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = out.scale * pred[i] + out.offset - problem.y[i];
    abs_sum += std::abs(d);
    sq_sum += d * d;
  }
  out.mae = abs_sum / n;
  out.mse = sq_sum / n;
  out.valid = std::isfinite(out.mae);
  return out;
}

ExprPtr apply_scaling(const Expr& expr, double scale, double offset) {
  ExprPtr wrapped = expr.clone();
  if (std::abs(scale - 1.0) > 1e-10) {
    wrapped = Expr::binary(Op::Mul, std::move(wrapped),
                           Expr::constant(scale));
  }
  if (std::abs(offset) > 1e-10) {
    wrapped = Expr::binary(Op::Add, std::move(wrapped),
                           Expr::constant(offset));
  }
  return wrapped;
}

void ParetoFront::offer(const Expr& expr, double mae, double mse,
                        bool dims_ok) {
  if (!std::isfinite(mae)) return;
  const int c = expr.complexity();
  if (c >= static_cast<int>(slots_.size())) slots_.resize(c + 1);
  ParetoEntry& slot = slots_[c];
  if (!slot.expr || mae < slot.mae) {
    slot.expr = expr.clone();
    slot.mae = mae;
    slot.mse = mse;
    slot.complexity = c;
    slot.dims_ok = dims_ok;
  }
}

std::vector<const ParetoEntry*> ParetoFront::entries() const {
  std::vector<const ParetoEntry*> out;
  double best = kInf;
  for (const auto& slot : slots_) {
    if (slot.expr && slot.mae < best) {
      out.push_back(&slot);
      best = slot.mae;
    }
  }
  return out;
}

const ParetoEntry* ParetoFront::select_occam(bool require_dims_ok) const {
  const auto front = entries();
  const ParetoEntry* best = nullptr;
  double best_score = -kInf;
  const ParetoEntry* prev = nullptr;
  for (const ParetoEntry* e : front) {
    if (prev != nullptr && (!require_dims_ok || e->dims_ok)) {
      const double dc = e->complexity - prev->complexity;
      if (dc > 0.0) {
        const double floor_mae = std::max(e->mae, 1e-12);
        const double prev_mae = std::max(prev->mae, 1e-12);
        const double score = -(std::log(floor_mae) - std::log(prev_mae)) / dc;
        if (score > best_score) {
          best_score = score;
          best = e;
        }
      }
    }
    prev = e;
  }
  // Degenerate fronts (single entry): return the simplest valid model.
  if (best == nullptr) {
    for (const ParetoEntry* e : front) {
      if (!require_dims_ok || e->dims_ok) return e;
    }
    return front.empty() ? nullptr : front.front();
  }
  return best;
}

namespace {

/// Tournament pick: lowest parsimony-adjusted MAE among `k` random members.
int tournament_pick(const std::vector<double>& adjusted, int k, Rng& rng) {
  int best = static_cast<int>(rng.uniform_index(adjusted.size()));
  for (int i = 1; i < k; ++i) {
    const int challenger =
        static_cast<int>(rng.uniform_index(adjusted.size()));
    if (adjusted[challenger] < adjusted[best]) best = challenger;
  }
  return best;
}

/// Swap a random subtree of `dst` with a clone of a random subtree of
/// `src`.
void crossover(Expr& dst, const Expr& src, Rng& rng) {
  std::vector<Expr*> dst_nodes;
  const_cast<Expr&>(dst).collect(dst_nodes);
  std::vector<Expr*> src_nodes;
  const_cast<Expr&>(src).collect(src_nodes);
  Expr* target = dst_nodes[rng.uniform_index(dst_nodes.size())];
  const Expr* donor = src_nodes[rng.uniform_index(src_nodes.size())];
  ExprPtr copy = donor->clone();
  *target = std::move(*copy);
}

void mutate(Expr& tree, const std::vector<Op>& operators, int num_vars,
            int max_depth, Rng& rng, double const_min, double const_max) {
  std::vector<Expr*> nodes;
  tree.collect(nodes);
  Expr* target = nodes[rng.uniform_index(nodes.size())];
  const double roll = rng.uniform();
  if (roll < 0.35 && target->op == Op::Const) {
    // Constant jitter (multiplicative + additive so both scales move).
    target->value = target->value * (1.0 + 0.3 * rng.gauss()) +
                    0.1 * rng.gauss();
  } else if (roll < 0.6) {
    // Point mutation: swap operator with one of equal arity.
    std::vector<Op> same;
    for (Op op : operators)
      if (arity(op) == arity(target->op) && arity(op) > 0) same.push_back(op);
    if (!same.empty() && arity(target->op) > 0) {
      target->op = same[rng.uniform_index(same.size())];
    } else if (target->op == Op::Var && num_vars > 1) {
      target->var = static_cast<int>(rng.uniform_index(num_vars));
    } else if (target->op == Op::Const) {
      target->value = rng.uniform(const_min, const_max);
    }
  } else {
    // Subtree replacement.
    ExprPtr fresh = random_expr(operators, num_vars,
                                std::max(2, max_depth / 2), rng, const_min,
                                const_max);
    *target = std::move(*fresh);
  }
}

/// Random hill-climb on the constants of a clone (under linear scaling);
/// returns the improved, re-wrapped clone, or nullptr when no improvement
/// was found.
ExprPtr optimize_constants(const Expr& expr, const SrProblem& problem,
                           int iters, Rng& rng) {
  ExprPtr best = expr.clone();
  ScaledFitness best_fit = evaluate_scaled(*best, problem);
  if (!best_fit.valid) return nullptr;
  bool improved = false;
  for (int i = 0; i < iters; ++i) {
    ExprPtr trial = best->clone();
    std::vector<Expr*> nodes;
    trial->collect(nodes);
    std::vector<Expr*> consts;
    for (Expr* n : nodes)
      if (n->op == Op::Const) consts.push_back(n);
    if (consts.empty()) break;
    Expr* c = consts[rng.uniform_index(consts.size())];
    const double scale = std::pow(10.0, rng.uniform(-3.0, 0.5));
    c->value += scale * rng.gauss();
    const ScaledFitness fit = evaluate_scaled(*trial, problem);
    if (fit.valid && fit.mae < best_fit.mae) {
      best = std::move(trial);
      best_fit = fit;
      improved = true;
    }
  }
  if (!improved) return nullptr;
  return simplify(*apply_scaling(*best, best_fit.scale, best_fit.offset));
}

}  // namespace

ParetoFront run_sr(const SrProblem& problem, const SrConfig& config) {
  GNS_CHECK_MSG(problem.num_samples() > 0, "SR problem has no samples");
  GNS_CHECK_MSG(problem.num_vars() > 0, "SR problem has no variables");
  GNS_CHECK_MSG(static_cast<int>(problem.var_dims.size()) ==
                    problem.num_vars(),
                "var_dims size mismatch");
  for (const auto& row : problem.X)
    GNS_CHECK_MSG(static_cast<int>(row.size()) == problem.num_vars(),
                  "sample width mismatch");

  const std::vector<Op> operators = paper_operator_set();
  Rng rng(config.seed);
  ParetoFront front;

  std::vector<ExprPtr> population;
  population.reserve(config.population);
  // Seed a quarter of the population with affine templates c0·x_i + c1 —
  // cheap scaffolding the crossover operator can build on (ramped init).
  for (int i = 0; i < config.population / 4; ++i) {
    const int v = static_cast<int>(rng.uniform_index(problem.num_vars()));
    population.push_back(Expr::binary(
        Op::Add,
        Expr::binary(Op::Mul,
                     Expr::constant(rng.uniform(config.const_min,
                                                config.const_max)),
                     Expr::variable(v)),
        Expr::constant(rng.uniform(config.const_min, config.const_max))));
  }
  while (static_cast<int>(population.size()) < config.population) {
    population.push_back(random_expr(operators, problem.num_vars(),
                                     config.max_depth, rng, config.const_min,
                                     config.const_max));
  }

  std::vector<double> mae(config.population, kInf);
  std::vector<double> adjusted(config.population, kInf);

  for (int gen = 0; gen <= config.generations; ++gen) {
    // Fitness pass (parallel over individuals — each eval is independent).
    std::vector<ScaledFitness> fits(config.population);
#pragma omp parallel for schedule(dynamic)
    for (int i = 0; i < config.population; ++i) {
      fits[i] = evaluate_scaled(*population[i], problem);
      mae[i] = fits[i].valid ? fits[i].mae : kInf;
      adjusted[i] =
          mae[i] + config.parsimony * population[i]->complexity();
    }
    // Offer the affine-wrapped champions to the Pareto front (serial:
    // the front is shared state).
    for (int i = 0; i < config.population; ++i) {
      if (!std::isfinite(mae[i])) continue;
      ExprPtr wrapped = simplify(*apply_scaling(
          *population[i], fits[i].scale, fits[i].offset));
      front.offer(*wrapped, fits[i].mae, fits[i].mse,
                  wrapped->dims_ok(problem.var_dims, problem.target_dim));
    }
    // Periodic constant polish on the Pareto champions: GP finds shapes
    // quickly but refines constants slowly; local hill-climbing closes
    // that gap.
    if (config.constant_opt_iters > 0 && gen % 5 == 4) {
      for (const ParetoEntry* e : front.entries()) {
        ExprPtr polished = optimize_constants(
            *e->expr, problem, config.constant_opt_iters, rng);
        if (polished) {
          const FitnessResult fit = evaluate(*polished, problem);
          if (fit.valid) {
            front.offer(*polished, fit.mae, fit.mse,
                        polished->dims_ok(problem.var_dims,
                                          problem.target_dim));
          }
        }
      }
    }

    if (gen == config.generations) break;

    // Next generation: elitism + tournament reproduction.
    std::vector<ExprPtr> next;
    next.reserve(config.population);
    // Keep the current Pareto champions alive.
    for (const ParetoEntry* e : front.entries()) {
      if (static_cast<int>(next.size()) >= config.population / 8) break;
      next.push_back(e->expr->clone());
    }
    while (static_cast<int>(next.size()) < config.population) {
      const int p1 = tournament_pick(adjusted, config.tournament, rng);
      ExprPtr child = population[p1]->clone();
      if (rng.uniform() < config.crossover_prob) {
        const int p2 = tournament_pick(adjusted, config.tournament, rng);
        crossover(*child, *population[p2], rng);
      }
      if (rng.uniform() < config.mutation_prob) {
        mutate(*child, operators, problem.num_vars(), config.max_depth, rng,
               config.const_min, config.const_max);
      }
      if (child->depth() > config.max_depth + 2) {
        child = random_expr(operators, problem.num_vars(), config.max_depth,
                            rng, config.const_min, config.const_max);
      }
      next.push_back(std::move(child));
    }
    population = std::move(next);
  }

  // Polish the front: constant optimization on each champion.
  if (config.constant_opt_iters > 0) {
    for (const ParetoEntry* e : front.entries()) {
      ExprPtr polished = optimize_constants(
          *e->expr, problem, 4 * config.constant_opt_iters, rng);
      if (polished) {
        const FitnessResult fit = evaluate(*polished, problem);
        if (fit.valid) {
          front.offer(*polished, fit.mae, fit.mse,
                      polished->dims_ok(problem.var_dims,
                                        problem.target_dim));
        }
      }
    }
  }
  return front;
}

}  // namespace gns::sr
