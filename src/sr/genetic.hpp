#pragma once

/// \file genetic.hpp
/// Genetic-programming symbolic regression (§6): evolve expression trees
/// minimizing MAE over a labelled dataset, maintain a complexity-Pareto
/// hall of fame, and pick the reported law by the paper's Occam criterion
/// — the expression maximizing the fractional drop in log(MAE) per unit of
/// added complexity, −Δlog(MAE)/Δc, among dimensionally admissible models.

#include <vector>

#include "sr/expr.hpp"

namespace gns::sr {

/// Regression problem: X[i] are the variable values of sample i.
struct SrProblem {
  std::vector<std::string> var_names;
  std::vector<Dim> var_dims;   ///< per-variable physical dimensions
  Dim target_dim;              ///< dimension the law should carry
  std::vector<std::vector<double>> X;
  std::vector<double> y;

  [[nodiscard]] int num_vars() const {
    return static_cast<int>(var_names.size());
  }
  [[nodiscard]] int num_samples() const { return static_cast<int>(y.size()); }
};

struct SrConfig {
  int population = 768;
  int generations = 80;
  int tournament = 5;
  double crossover_prob = 0.65;
  double mutation_prob = 0.3;
  int max_depth = 6;
  double parsimony = 1e-3;    ///< selection penalty per complexity unit
  double const_min = -5.0;
  double const_max = 5.0;
  int constant_opt_iters = 25;  ///< hill-climb steps on hall-of-fame consts
  std::uint64_t seed = 2024;
};

/// One Pareto-front member.
struct ParetoEntry {
  ExprPtr expr;
  double mae = 0.0;
  double mse = 0.0;
  int complexity = 0;
  bool dims_ok = false;
};

/// Complexity-indexed hall of fame: for each complexity value, the lowest-
/// MAE expression seen, kept only where it improves on all simpler
/// entries (a proper Pareto front).
class ParetoFront {
 public:
  /// Offers a candidate; keeps it if it beats the incumbent at its
  /// complexity.
  void offer(const Expr& expr, double mae, double mse, bool dims_ok);

  /// Front sorted by complexity, strictly improving in MAE.
  [[nodiscard]] std::vector<const ParetoEntry*> entries() const;

  /// Paper's model selection: among entries (optionally restricted to
  /// dimensionally-valid ones), maximize −Δlog(MAE)/Δc versus the previous
  /// front entry. Returns nullptr on an empty front.
  [[nodiscard]] const ParetoEntry* select_occam(
      bool require_dims_ok = true) const;

 private:
  // complexity -> best entry
  std::vector<ParetoEntry> slots_;
};

/// MAE/MSE of an expression over a problem; NaN-producing expressions get
/// +inf. OpenMP-parallel over samples for large datasets.
struct FitnessResult {
  double mae = 0.0;
  double mse = 0.0;
  bool valid = false;
};
[[nodiscard]] FitnessResult evaluate(const Expr& expr,
                                     const SrProblem& problem);

/// Linear-scaling fitness (Keijzer 2003): fits the optimal affine wrapper
/// y ≈ a·ψ(x) + b in closed form (least squares) and scores the wrapped
/// prediction. This lets the evolution discover *shape* while constants of
/// any magnitude (e.g. the paper's k_n = 100) come for free.
struct ScaledFitness {
  double mae = 0.0;
  double mse = 0.0;
  double scale = 1.0;   ///< a
  double offset = 0.0;  ///< b
  bool valid = false;
};
[[nodiscard]] ScaledFitness evaluate_scaled(const Expr& expr,
                                            const SrProblem& problem);

/// expr wrapped as (expr * a + b), with near-identity wrappers elided.
[[nodiscard]] ExprPtr apply_scaling(const Expr& expr, double scale,
                                    double offset);

/// Runs the evolution and returns the final Pareto front.
[[nodiscard]] ParetoFront run_sr(const SrProblem& problem,
                                 const SrConfig& config);

/// The paper's default operator set (§6) plus abs.
[[nodiscard]] std::vector<Op> paper_operator_set();

}  // namespace gns::sr
