#pragma once

/// \file simplify.hpp
/// Algebraic cleanup of evolved expressions. GP output is full of
/// redundancy (x*1, +0, const-only subtrees, double negation); folding it
/// away both shrinks reported complexity honestly and makes the Table-1
/// rows readable. Simplification is semantics-preserving on the reals
/// (NaN-producing subtrees are left untouched).

#include "sr/expr.hpp"

namespace gns::sr {

/// Returns a simplified deep copy. Guaranteed: for every input x,
/// simplified->eval(x) == expr.eval(x) up to floating-point association,
/// and simplified->complexity() <= expr.complexity().
[[nodiscard]] ExprPtr simplify(const Expr& expr);

}  // namespace gns::sr
