#include "sr/expr.hpp"

#include <cmath>
#include <limits>
#include <sstream>

namespace gns::sr {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

bool near_integer(double v, double& out) {
  const double r = std::round(v);
  if (std::abs(v - r) < 1e-9) {
    out = r;
    return true;
  }
  return false;
}
}  // namespace

ExprPtr Expr::constant(double v) {
  auto e = std::make_unique<Expr>();
  e->op = Op::Const;
  e->value = v;
  return e;
}

ExprPtr Expr::variable(int index) {
  GNS_CHECK(index >= 0);
  auto e = std::make_unique<Expr>();
  e->op = Op::Var;
  e->var = index;
  return e;
}

ExprPtr Expr::unary(Op op, ExprPtr child) {
  GNS_CHECK(arity(op) == 1 && child != nullptr);
  auto e = std::make_unique<Expr>();
  e->op = op;
  e->a = std::move(child);
  return e;
}

ExprPtr Expr::binary(Op op, ExprPtr lhs, ExprPtr rhs) {
  GNS_CHECK(arity(op) == 2 && lhs != nullptr && rhs != nullptr);
  auto e = std::make_unique<Expr>();
  e->op = op;
  e->a = std::move(lhs);
  e->b = std::move(rhs);
  return e;
}

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->op = op;
  e->value = value;
  e->var = var;
  if (a) e->a = a->clone();
  if (b) e->b = b->clone();
  return e;
}

double Expr::eval(const std::vector<double>& vars) const {
  switch (op) {
    case Op::Const: return value;
    case Op::Var:
      GNS_DCHECK(var >= 0 && var < static_cast<int>(vars.size()));
      return vars[var];
    case Op::Add: return a->eval(vars) + b->eval(vars);
    case Op::Sub: return a->eval(vars) - b->eval(vars);
    case Op::Mul: return a->eval(vars) * b->eval(vars);
    case Op::Div: {
      const double d = b->eval(vars);
      if (std::abs(d) < 1e-12) return kNaN;
      return a->eval(vars) / d;
    }
    case Op::Pow: {
      const double base = a->eval(vars);
      const double exponent = b->eval(vars);
      if (base < 0.0 && std::abs(exponent - std::round(exponent)) > 1e-9)
        return kNaN;
      const double r = std::pow(base, exponent);
      return std::isfinite(r) ? r : kNaN;
    }
    case Op::Gt: return a->eval(vars) > b->eval(vars) ? 1.0 : 0.0;
    case Op::Lt: return a->eval(vars) < b->eval(vars) ? 1.0 : 0.0;
    case Op::Exp: {
      const double x = a->eval(vars);
      if (x > 50.0) return kNaN;
      return std::exp(x);
    }
    case Op::Log: {
      const double x = a->eval(vars);
      if (x <= 0.0) return kNaN;
      return std::log(x);
    }
    case Op::Inv: {
      const double x = a->eval(vars);
      if (std::abs(x) < 1e-12) return kNaN;
      return 1.0 / x;
    }
    case Op::Abs: return std::abs(a->eval(vars));
    case Op::Neg: return -a->eval(vars);
  }
  return kNaN;
}

int Expr::complexity() const {
  int c = op_weight(op);
  if (a) c += a->complexity();
  if (b) c += b->complexity();
  return c;
}

int Expr::size() const {
  int s = 1;
  if (a) s += a->size();
  if (b) s += b->size();
  return s;
}

int Expr::depth() const {
  int d = 0;
  if (a) d = a->depth();
  if (b) d = std::max(d, b->depth());
  return d + 1;
}

Expr::DimResult Expr::infer_dim(const std::vector<Dim>& var_dims) const {
  const DimResult fail{false, std::nullopt};
  switch (op) {
    case Op::Const:
      return {true, std::nullopt};  // constants absorb any units
    case Op::Var:
      GNS_DCHECK(var >= 0 && var < static_cast<int>(var_dims.size()));
      return {true, var_dims[var]};
    case Op::Add:
    case Op::Sub: {
      const auto da = a->infer_dim(var_dims);
      const auto db = b->infer_dim(var_dims);
      if (!da.ok || !db.ok) return fail;
      if (!da.dim) return {true, db.dim};
      if (!db.dim) return {true, da.dim};
      if (*da.dim != *db.dim) return fail;
      return {true, da.dim};
    }
    case Op::Mul: {
      const auto da = a->infer_dim(var_dims);
      const auto db = b->infer_dim(var_dims);
      if (!da.ok || !db.ok) return fail;
      if (!da.dim || !db.dim) return {true, std::nullopt};
      return {true, Dim{{da.dim->first + db.dim->first,
                         da.dim->second + db.dim->second}}};
    }
    case Op::Div: {
      const auto da = a->infer_dim(var_dims);
      const auto db = b->infer_dim(var_dims);
      if (!da.ok || !db.ok) return fail;
      if (!da.dim || !db.dim) return {true, std::nullopt};
      return {true, Dim{{da.dim->first - db.dim->first,
                         da.dim->second - db.dim->second}}};
    }
    case Op::Pow: {
      const auto da = a->infer_dim(var_dims);
      const auto db = b->infer_dim(var_dims);
      if (!da.ok || !db.ok) return fail;
      // Exponent must be dimensionless (or a constant).
      if (db.dim && *db.dim != std::pair<int, int>{0, 0}) return fail;
      if (!da.dim) return {true, std::nullopt};
      if (*da.dim == std::pair<int, int>{0, 0})
        return {true, Dim{{0, 0}}};
      // Dimensional base needs an integer constant exponent.
      if (b->op == Op::Const) {
        double e = 0.0;
        if (near_integer(b->value, e)) {
          return {true, Dim{{da.dim->first * static_cast<int>(e),
                             da.dim->second * static_cast<int>(e)}}};
        }
      }
      return fail;
    }
    case Op::Gt:
    case Op::Lt: {
      const auto da = a->infer_dim(var_dims);
      const auto db = b->infer_dim(var_dims);
      if (!da.ok || !db.ok) return fail;
      if (da.dim && db.dim && *da.dim != *db.dim) return fail;
      return {true, Dim{{0, 0}}};  // comparison yields a pure number
    }
    case Op::Exp:
    case Op::Log: {
      const auto da = a->infer_dim(var_dims);
      if (!da.ok) return fail;
      if (da.dim && *da.dim != std::pair<int, int>{0, 0}) return fail;
      return {true, Dim{{0, 0}}};
    }
    case Op::Inv: {
      const auto da = a->infer_dim(var_dims);
      if (!da.ok) return fail;
      if (!da.dim) return {true, std::nullopt};
      return {true, Dim{{-da.dim->first, -da.dim->second}}};
    }
    case Op::Abs:
    case Op::Neg:
      return a->infer_dim(var_dims);
  }
  return fail;
}

bool Expr::dims_ok(const std::vector<Dim>& var_dims, const Dim& target) const {
  const auto r = infer_dim(var_dims);
  if (!r.ok) return false;
  if (!r.dim || !target) return true;  // wildcard unifies
  return *r.dim == *target;
}

std::string Expr::to_string(const std::vector<std::string>& var_names) const {
  std::ostringstream os;
  switch (op) {
    case Op::Const: os << value; break;
    case Op::Var:
      GNS_DCHECK(var >= 0 && var < static_cast<int>(var_names.size()));
      os << var_names[var];
      break;
    case Op::Add:
      os << "(" << a->to_string(var_names) << " + "
         << b->to_string(var_names) << ")";
      break;
    case Op::Sub:
      os << "(" << a->to_string(var_names) << " - "
         << b->to_string(var_names) << ")";
      break;
    case Op::Mul:
      os << "(" << a->to_string(var_names) << " * "
         << b->to_string(var_names) << ")";
      break;
    case Op::Div:
      os << "(" << a->to_string(var_names) << " / "
         << b->to_string(var_names) << ")";
      break;
    case Op::Pow:
      os << "pow(" << a->to_string(var_names) << ", "
         << b->to_string(var_names) << ")";
      break;
    case Op::Gt:
      os << "(" << a->to_string(var_names) << " > "
         << b->to_string(var_names) << ")";
      break;
    case Op::Lt:
      os << "(" << a->to_string(var_names) << " < "
         << b->to_string(var_names) << ")";
      break;
    case Op::Exp: os << "exp(" << a->to_string(var_names) << ")"; break;
    case Op::Log: os << "log(" << a->to_string(var_names) << ")"; break;
    case Op::Inv: os << "inv(" << a->to_string(var_names) << ")"; break;
    case Op::Abs: os << "abs(" << a->to_string(var_names) << ")"; break;
    case Op::Neg: os << "(-" << a->to_string(var_names) << ")"; break;
  }
  return os.str();
}

void Expr::collect(std::vector<Expr*>& nodes) {
  nodes.push_back(this);
  if (a) a->collect(nodes);
  if (b) b->collect(nodes);
}

ExprPtr random_expr(const std::vector<Op>& operators, int num_vars,
                    int max_depth, Rng& rng, double const_min,
                    double const_max) {
  GNS_CHECK(num_vars > 0 && max_depth >= 1);
  const double leaf_prob = (max_depth <= 1) ? 1.0 : 0.35;
  if (rng.uniform() < leaf_prob) {
    if (rng.bernoulli(0.6)) {
      return Expr::variable(static_cast<int>(rng.uniform_index(num_vars)));
    }
    return Expr::constant(rng.uniform(const_min, const_max));
  }
  const Op op = operators[rng.uniform_index(operators.size())];
  if (arity(op) == 0) {
    return Expr::constant(rng.uniform(const_min, const_max));
  }
  if (arity(op) == 1) {
    return Expr::unary(op, random_expr(operators, num_vars, max_depth - 1,
                                       rng, const_min, const_max));
  }
  return Expr::binary(
      op,
      random_expr(operators, num_vars, max_depth - 1, rng, const_min,
                  const_max),
      random_expr(operators, num_vars, max_depth - 1, rng, const_min,
                  const_max));
}

}  // namespace gns::sr
