#include "sr/simplify.hpp"

#include <cmath>

namespace gns::sr {

namespace {

bool is_const(const Expr& e, double value) {
  return e.op == Op::Const && std::abs(e.value - value) < 1e-12;
}

bool contains_variable(const Expr& e) {
  if (e.op == Op::Var) return true;
  if (e.a && contains_variable(*e.a)) return true;
  if (e.b && contains_variable(*e.b)) return true;
  return false;
}

ExprPtr simplify_node(const Expr& e);

/// Fold a fully-constant subtree when its value is finite.
ExprPtr try_fold(const Expr& e) {
  if (contains_variable(e)) return nullptr;
  const double v = e.eval({});
  if (!std::isfinite(v)) return nullptr;  // keep NaN semantics intact
  return Expr::constant(v);
}

ExprPtr simplify_node(const Expr& e) {
  // Leaves copy through.
  if (arity(e.op) == 0) return e.clone();

  ExprPtr a = simplify_node(*e.a);
  ExprPtr b = e.b ? simplify_node(*e.b) : nullptr;

  // Rebuild with simplified children, then try whole-subtree folding.
  ExprPtr out;
  if (arity(e.op) == 1) {
    out = Expr::unary(e.op, std::move(a));
  } else {
    out = Expr::binary(e.op, std::move(a), std::move(b));
  }
  if (ExprPtr folded = try_fold(*out)) return folded;

  Expr& n = *out;
  switch (n.op) {
    case Op::Add:
      if (is_const(*n.a, 0.0)) return std::move(n.b);
      if (is_const(*n.b, 0.0)) return std::move(n.a);
      break;
    case Op::Sub:
      if (is_const(*n.b, 0.0)) return std::move(n.a);
      break;
    case Op::Mul:
      if (is_const(*n.a, 1.0)) return std::move(n.b);
      if (is_const(*n.b, 1.0)) return std::move(n.a);
      if (is_const(*n.a, 0.0) || is_const(*n.b, 0.0))
        return Expr::constant(0.0);
      if (is_const(*n.a, -1.0)) return Expr::unary(Op::Neg, std::move(n.b));
      if (is_const(*n.b, -1.0)) return Expr::unary(Op::Neg, std::move(n.a));
      break;
    case Op::Div:
      if (is_const(*n.b, 1.0)) return std::move(n.a);
      break;
    case Op::Pow:
      if (is_const(*n.b, 1.0)) return std::move(n.a);
      if (is_const(*n.b, 0.0)) return Expr::constant(1.0);
      break;
    case Op::Neg:
      if (n.a->op == Op::Neg) return std::move(n.a->a);
      break;
    case Op::Abs:
      if (n.a->op == Op::Abs) return std::move(n.a);
      if (n.a->op == Op::Neg) {
        // |−x| = |x|
        return Expr::unary(Op::Abs, std::move(n.a->a));
      }
      break;
    case Op::Inv:
      if (n.a->op == Op::Inv) return std::move(n.a->a);
      break;
    case Op::Exp:
      if (n.a->op == Op::Log) return std::move(n.a->a);  // exp(log x) on x>0
      break;
    default:
      break;
  }
  return out;
}

}  // namespace

ExprPtr simplify(const Expr& expr) {
  // Iterate to a fixed point (each pass strictly shrinks or stabilizes).
  ExprPtr current = simplify_node(expr);
  for (int pass = 0; pass < 8; ++pass) {
    ExprPtr next = simplify_node(*current);
    if (next->complexity() >= current->complexity()) break;
    current = std::move(next);
  }
  return current;
}

}  // namespace gns::sr
