#pragma once

/// \file report.hpp
/// Table-1-style rendering of a symbolic-regression Pareto front:
/// Eq | Derived equation | MSE | C_x | D_a, with the Occam-selected law
/// starred — the exact format of the paper's Table 1.

#include <string>

#include "sr/genetic.hpp"

namespace gns::sr {

struct TableRow {
  int index = 0;
  std::string equation;
  double mse = 0.0;
  int complexity = 0;
  bool dims_ok = false;
  bool chosen = false;
};

/// Builds the rows of the table from a front (sorted by complexity; the
/// Occam-selected entry is flagged).
[[nodiscard]] std::vector<TableRow> build_table(
    const ParetoFront& front, const std::vector<std::string>& var_names,
    bool require_dims_ok = true);

/// Renders the table as aligned monospace text.
[[nodiscard]] std::string render_table(const std::vector<TableRow>& rows);

}  // namespace gns::sr
