#include "nbody/nbody.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace gns::nbody {

double NBodySystem::pair_force(int i, int j) const {
  const double dx = x[i] - x[j];
  const double sum_r = radius[i] + radius[j];
  const double dist = std::abs(dx);
  if (dist >= sum_r) return 0.0;
  // Overlap spring pushes the pair apart; magnitude k_n·|Δx − r_i − r_j|.
  const double overlap = sum_r - dist;
  double f = config.stiffness * overlap;
  // Normal dashpot (γ_n) damps the approach velocity.
  if (config.damping > 0.0) {
    const double approach = (v[i] - v[j]) * (dx >= 0.0 ? 1.0 : -1.0);
    f -= config.damping * approach;
  }
  return (dx >= 0.0 ? f : -f);
}

std::vector<double> NBodySystem::accelerations() const {
  const int n = size();
  std::vector<double> acc(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double f = 0.0;
    for (int j = 0; j < n; ++j) {
      if (j != i) f += pair_force(i, j);
    }
    // Walls at 0 and domain are linear springs against the ball surface.
    const double pen_left = radius[i] - x[i];
    if (pen_left > 0.0) f += config.wall_stiffness * pen_left;
    const double pen_right = x[i] + radius[i] - config.domain;
    if (pen_right > 0.0) f -= config.wall_stiffness * pen_right;
    acc[i] = f / mass[i];
  }
  return acc;
}

double NBodySystem::total_energy() const {
  double e = 0.0;
  const int n = size();
  for (int i = 0; i < n; ++i) e += 0.5 * mass[i] * v[i] * v[i];
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double overlap =
          radius[i] + radius[j] - std::abs(x[i] - x[j]);
      if (overlap > 0.0) e += 0.5 * config.stiffness * overlap * overlap;
    }
    const double pen_left = radius[i] - x[i];
    if (pen_left > 0.0) e += 0.5 * config.wall_stiffness * pen_left * pen_left;
    const double pen_right = x[i] + radius[i] - config.domain;
    if (pen_right > 0.0)
      e += 0.5 * config.wall_stiffness * pen_right * pen_right;
  }
  return e;
}

void NBodySystem::step() {
  const auto acc = accelerations();
  const int n = size();
  for (int i = 0; i < n; ++i) {
    v[i] += config.dt * acc[i];
    x[i] += config.dt * v[i];
  }
}

NBodySystem make_random_system(const NBodyConfig& config, Rng& rng) {
  GNS_CHECK(config.num_bodies > 1);
  NBodySystem sys;
  sys.config = config;
  const int n = config.num_bodies;
  sys.mass.resize(n);
  sys.radius.resize(n);
  sys.v.resize(n);
  sys.x.resize(n);
  for (int i = 0; i < n; ++i) {
    sys.mass[i] = rng.uniform(config.min_mass, config.max_mass);
    sys.radius[i] = rng.uniform(config.min_radius, config.max_radius);
    sys.v[i] = rng.uniform(-config.max_speed, config.max_speed);
  }
  // Place bodies left-to-right with random positive surface gaps so there
  // is no initial overlap, then center the chain in the domain.
  double cursor = sys.radius[0];
  sys.x[0] = cursor;
  for (int i = 1; i < n; ++i) {
    const double gap = rng.uniform(0.005, 0.03);
    cursor += sys.radius[i - 1] + gap + sys.radius[i];
    sys.x[i] = cursor;
  }
  const double extent = sys.x[n - 1] + sys.radius[n - 1];
  GNS_CHECK_MSG(extent < config.domain,
                "bodies do not fit the domain: extent " << extent);
  const double shift = 0.5 * (config.domain - extent);
  for (auto& xi : sys.x) xi += shift;
  return sys;
}

io::Trajectory simulate(NBodySystem system, int frames, int substeps) {
  GNS_CHECK(frames > 0 && substeps > 0);
  io::Trajectory traj;
  traj.dim = 1;
  traj.num_particles = system.size();
  traj.domain_lo = {0.0};
  traj.domain_hi = {system.config.domain};
  traj.material_param = system.config.stiffness;
  // Static node attributes: [radius, mass] per body — the GNS must see
  // these for its messages to encode the contact law F = k|Δx − r_i − r_j|.
  traj.attr_dim = 2;
  traj.node_attrs.reserve(2 * system.size());
  for (int i = 0; i < system.size(); ++i) {
    traj.node_attrs.push_back(system.radius[i]);
    traj.node_attrs.push_back(system.mass[i]);
  }
  for (int t = 0; t < frames; ++t) {
    traj.add_frame(system.x);
    for (int s = 0; s < substeps; ++s) system.step();
  }
  return traj;
}

std::vector<PairSample> collect_pair_samples(NBodySystem system, int frames,
                                             int substeps) {
  std::vector<PairSample> samples;
  for (int t = 0; t < frames; ++t) {
    const int n = system.size();
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        const double f = system.pair_force(i, j);
        if (f != 0.0) {
          samples.push_back({system.x[i] - system.x[j], system.radius[i],
                             system.radius[j], system.mass[i],
                             system.mass[j], f});
        }
      }
    }
    for (int s = 0; s < substeps; ++s) system.step();
  }
  return samples;
}

}  // namespace gns::nbody
