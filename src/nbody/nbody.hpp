#pragma once

/// \file nbody.hpp
/// Ground-truth n-body substrate for the interpretability study (§6,
/// Table 1): balls on a line interacting through linear contact springs.
/// When two balls with radii r_i, r_j overlap (|Δx| < r_i + r_j), the
/// contact force magnitude is F = k_n · |Δx − r_i − r_j| — exactly the law
/// the paper's symbolic regression recovers from GNS messages (Table 1,
/// Eq. 8 with k_n = 100).

#include <vector>

#include "io/trajectory.hpp"
#include "util/rng.hpp"

namespace gns::nbody {

struct NBodyConfig {
  int num_bodies = 10;
  double stiffness = 100.0;   ///< contact spring k_n
  double damping = 0.0;       ///< normal dashpot γ_n (0 = elastic)
  double min_radius = 0.04;
  double max_radius = 0.08;
  double min_mass = 0.5;
  double max_mass = 2.0;
  double domain = 2.0;        ///< balls confined to [0, domain] by walls
  double wall_stiffness = 100.0;
  double max_speed = 0.5;     ///< initial velocity magnitude bound
  double dt = 1e-3;           ///< integrator step
};

/// State of the spring-ball chain.
struct NBodySystem {
  NBodyConfig config;
  std::vector<double> x;      ///< positions
  std::vector<double> v;      ///< velocities
  std::vector<double> mass;
  std::vector<double> radius;

  [[nodiscard]] int size() const { return static_cast<int>(x.size()); }

  /// Total energy: kinetic + spring potential (contacts + walls); conserved
  /// when damping = 0, asserted by tests.
  [[nodiscard]] double total_energy() const;

  /// Pairwise contact force on body i from body j (signed along +x).
  [[nodiscard]] double pair_force(int i, int j) const;

  /// Per-body accelerations under the current configuration.
  [[nodiscard]] std::vector<double> accelerations() const;

  /// One semi-implicit Euler step of size config.dt.
  void step();
};

/// Randomly initialized system: radii/masses/velocities drawn uniformly,
/// positions spaced so no initial overlap.
[[nodiscard]] NBodySystem make_random_system(const NBodyConfig& config,
                                             Rng& rng);

/// Simulates `frames` snapshots, `substeps` integrator steps apart.
/// Frames store positions only (io::Trajectory layout, dim=1).
[[nodiscard]] io::Trajectory simulate(NBodySystem system, int frames,
                                      int substeps);

/// A labelled interaction sample used to validate symbolic regression
/// against ground truth: the pair geometry and the true force.
struct PairSample {
  double dx;      ///< x_i − x_j (signed relative position)
  double r1, r2;  ///< radii of i and j
  double m1, m2;  ///< masses of i and j
  double force;   ///< force on i from j (signed along +x)
};

/// Collects all interacting (overlapping) pairs over a trajectory rerun,
/// for SR ground-truth checks and message-vs-force correlation tests.
[[nodiscard]] std::vector<PairSample> collect_pair_samples(
    NBodySystem system, int frames, int substeps);

}  // namespace gns::nbody
