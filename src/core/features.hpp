#pragma once

/// \file features.hpp
/// Feature construction for the particle GNS (§3): the physics-inspired
/// inductive biases live here.
///
/// Node features per particle: the last C finite-difference velocities
/// (normalized — an inertial-frame bias: the network sees motion, not
/// absolute position), clipped distances to the domain boundaries (local
/// wall awareness within the connectivity radius), and optionally the
/// normalized material parameter (tan φ) that conditions the model and is
/// the handle the §5 inverse problem differentiates with respect to.
///
/// Edge features per directed edge: relative displacement scaled by the
/// connectivity radius and its norm (translation invariance — interactions
/// depend on relative geometry only).
///
/// Everything except graph topology is built from ad::Tensors, so gradients
/// flow from a rollout loss back to positions and the material parameter.

#include <vector>

#include "ad/ops.hpp"
#include "core/graph_index.hpp"
#include "core/normalization.hpp"
#include "graph/batch.hpp"
#include "graph/neighbor_search.hpp"

namespace gns::core {

struct FeatureConfig {
  int dim = 2;                    ///< spatial dimension (2 granular, 1 n-body)
  int history = 5;                ///< velocity history length C
  double connectivity_radius = 0.045;
  std::vector<double> domain_lo{0.0, 0.0};
  std::vector<double> domain_hi{1.0, 0.5};
  bool material_feature = false;  ///< append material param column
  int static_node_attrs = 0;      ///< per-particle static columns (r, m, ...)

  [[nodiscard]] int node_feature_count() const {
    return dim * history + 2 * dim + (material_feature ? 1 : 0) +
           static_node_attrs;
  }
  [[nodiscard]] int edge_feature_count() const { return dim + 1; }
  /// Number of position frames a prediction window needs (C velocities
  /// require C+1 positions).
  [[nodiscard]] int window_size() const { return history + 1; }
};

/// Per-scene conditioning that is constant over a rollout: the material
/// parameter (the differentiable handle of the inverse problem) and static
/// per-particle attributes.
struct SceneContext {
  ad::Tensor material;    ///< [1,1]; required iff material_feature
  ad::Tensor node_attrs;  ///< [N, static_node_attrs]; required iff > 0

  /// Builds the context from a trajectory's metadata.
  [[nodiscard]] static SceneContext from_trajectory(
      const FeatureConfig& config, const io::Trajectory& traj);
};

/// Converts a flat frame (io::Trajectory layout) into an [N, dim] tensor.
[[nodiscard]] ad::Tensor frame_to_tensor(const std::vector<double>& flat,
                                         int dim);
/// Inverse of frame_to_tensor.
[[nodiscard]] std::vector<double> tensor_to_frame(const ad::Tensor& t);

/// Builds the connectivity-radius graph from a (detached) position tensor.
/// Works for dim 1 and 2 (1-D positions get a zero y coordinate).
[[nodiscard]] graph::Graph build_graph(const FeatureConfig& config,
                                       const ad::Tensor& positions);

/// A CellList sized for rollouts under `config`: domain from the feature
/// config padded by one cell so slightly escaping particles keep indexing
/// cheaply, `skin` in absolute units (0 = rebuild every step). Pass the
/// result to build_graph_cached across consecutive steps.
[[nodiscard]] graph::CellList make_rollout_cells(const FeatureConfig& config,
                                                 double skin);

/// Like build_graph but reuses `cells` across calls via maybe_rebuild:
/// identical edges, amortized build cost. The CellList must come from
/// make_rollout_cells (or otherwise have radius == connectivity_radius).
[[nodiscard]] graph::Graph build_graph_cached(const FeatureConfig& config,
                                              const ad::Tensor& positions,
                                              graph::CellList& cells);

/// Node feature matrix [N, node_feature_count()] from a window of
/// `window_size()` position tensors (oldest first) plus the scene context.
[[nodiscard]] ad::Tensor build_node_features(
    const FeatureConfig& config, const Normalizer& norm,
    const std::vector<ad::Tensor>& position_window,
    const SceneContext& context);

/// Edge feature matrix [E, dim+1] from the newest positions and the graph.
[[nodiscard]] ad::Tensor build_edge_features(const FeatureConfig& config,
                                             const ad::Tensor& positions,
                                             const graph::Graph& graph);

/// Same, with a prebuilt GraphIndex for `graph` (rollout/training paths
/// build one per step and share it with GnsModel::forward).
[[nodiscard]] ad::Tensor build_edge_features(const FeatureConfig& config,
                                             const ad::Tensor& positions,
                                             const graph::Graph& graph,
                                             const GraphIndex& index);

// ---- Batched (block-diagonal) variants -------------------------------------
//
// The batched builders take B per-member windows/contexts and emit the
// feature tensors of the merged graph (graph/batch.hpp): member g's rows
// occupy [batch.node_offset[g], batch.node_offset[g+1]). All motion and
// boundary features are elementwise/row-local, so every row is bit-identical
// to the unbatched builders; the only genuinely segmented features are the
// per-member material column and static node attributes, which broadcast
// within their member's node range.

/// Node features [sum_g N_g, node_feature_count()] for B windows (each a
/// window_size()-frame vector, oldest first) and their scene contexts.
[[nodiscard]] ad::Tensor build_batched_node_features(
    const FeatureConfig& config, const Normalizer& norm,
    const std::vector<std::vector<ad::Tensor>>& windows,
    const std::vector<SceneContext>& contexts);

/// Edge features [sum_g E_g, dim+1] from the concatenated newest positions
/// (rows in member order) and the merged graph.
[[nodiscard]] ad::Tensor build_batched_edge_features(
    const FeatureConfig& config, const ad::Tensor& merged_positions,
    const graph::GraphBatch& batch);

/// Same, with a prebuilt GraphIndex for `batch.merged`.
[[nodiscard]] ad::Tensor build_batched_edge_features(
    const FeatureConfig& config, const ad::Tensor& merged_positions,
    const graph::GraphBatch& batch, const GraphIndex& index);

}  // namespace gns::core
