#pragma once

/// \file normalization.hpp
/// Differentiable feature/target normalization. GNS trains in normalized
/// units: input velocities are whitened by dataset statistics and the
/// decoder's output is interpreted as a whitened acceleration. Keeping the
/// transform inside the autograd graph lets the inverse solver
/// differentiate straight through it.

#include "ad/ops.hpp"
#include "io/trajectory.hpp"

namespace gns::core {

/// Tensor-resident copy of io::NormalizationStats.
class Normalizer {
 public:
  Normalizer() = default;
  explicit Normalizer(const io::NormalizationStats& stats);

  /// (v - mean) / std, per axis; v is [N, dim].
  [[nodiscard]] ad::Tensor normalize_velocity(const ad::Tensor& v) const;
  /// (a - mean) / std, per axis.
  [[nodiscard]] ad::Tensor normalize_acceleration(const ad::Tensor& a) const;
  /// a_norm * std + mean — decoder output back to simulation units.
  [[nodiscard]] ad::Tensor denormalize_acceleration(
      const ad::Tensor& a_norm) const;

  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] bool defined() const { return dim_ > 0; }

  [[nodiscard]] const io::NormalizationStats& stats() const { return stats_; }

 private:
  int dim_ = 0;
  io::NormalizationStats stats_;
  ad::Tensor vel_mean_, vel_std_;  // [1, dim] constants
  ad::Tensor acc_mean_, acc_std_;
};

}  // namespace gns::core
