#include "core/features.hpp"

#include <cmath>

namespace gns::core {

SceneContext SceneContext::from_trajectory(const FeatureConfig& config,
                                           const io::Trajectory& traj) {
  SceneContext ctx;
  if (config.material_feature) {
    ctx.material = ad::Tensor::scalar(traj.material_param);
  }
  if (config.static_node_attrs > 0) {
    GNS_CHECK_MSG(traj.attr_dim == config.static_node_attrs,
                  "trajectory has " << traj.attr_dim
                                    << " node attributes, feature config "
                                       "expects "
                                    << config.static_node_attrs);
    std::vector<ad::Real> data(traj.node_attrs.begin(),
                               traj.node_attrs.end());
    ctx.node_attrs = ad::Tensor::from_vector(
        traj.num_particles, traj.attr_dim, std::move(data));
  }
  return ctx;
}

ad::Tensor frame_to_tensor(const std::vector<double>& flat, int dim) {
  GNS_CHECK_MSG(dim > 0 && flat.size() % dim == 0,
                "frame size not divisible by dim");
  const int n = static_cast<int>(flat.size()) / dim;
  std::vector<ad::Real> data(flat.begin(), flat.end());
  return ad::Tensor::from_vector(n, dim, std::move(data));
}

std::vector<double> tensor_to_frame(const ad::Tensor& t) {
  return {t.vec().begin(), t.vec().end()};
}

namespace {

/// Fills `pts` in place (resizing as needed) so rollout-path callers can
/// reuse one buffer across steps instead of allocating per call.
void positions_to_points(const FeatureConfig& config,
                         const ad::Tensor& positions,
                         std::vector<graph::Vec2>& pts) {
  GNS_CHECK_MSG(positions.cols() == config.dim, "positions dim mismatch");
  const int n = positions.rows();
  pts.resize(n);
  const ad::Real* pv = positions.data();
  if (config.dim == 2) {
    for (int i = 0; i < n; ++i) {
      pts[i].x = pv[static_cast<std::size_t>(i) * 2];
      pts[i].y = pv[static_cast<std::size_t>(i) * 2 + 1];
    }
    return;
  }
  for (int i = 0; i < n; ++i) {
    pts[i].x = pv[static_cast<std::size_t>(i) * config.dim];
    pts[i].y = (config.dim > 1)
                   ? pv[static_cast<std::size_t>(i) * config.dim + 1]
                   : 0.0;
  }
}

std::vector<graph::Vec2> positions_to_points(const FeatureConfig& config,
                                             const ad::Tensor& positions) {
  std::vector<graph::Vec2> pts;
  positions_to_points(config, positions, pts);
  return pts;
}

}  // namespace

graph::Graph build_graph(const FeatureConfig& config,
                         const ad::Tensor& positions) {
  return graph::build_radius_graph(positions_to_points(config, positions),
                                   config.connectivity_radius);
}

graph::CellList make_rollout_cells(const FeatureConfig& config, double skin) {
  const double r = config.connectivity_radius;
  const double cell = r + std::max(skin, 0.0);
  graph::Vec2 lo{config.domain_lo[0] - cell, 0.0};
  graph::Vec2 hi{config.domain_hi[0] + cell, 0.0};
  if (config.dim > 1) {
    lo.y = config.domain_lo[1] - cell;
    hi.y = config.domain_hi[1] + cell;
  } else {
    // 1-D positions carry y = 0; give the grid one cell of y extent.
    lo.y = -cell;
    hi.y = cell;
  }
  return graph::CellList(r, lo, hi, skin);
}

graph::Graph build_graph_cached(const FeatureConfig& config,
                                const ad::Tensor& positions,
                                graph::CellList& cells) {
  GNS_CHECK_MSG(cells.radius() == config.connectivity_radius,
                "cached CellList radius does not match feature config");
  // The scratch lives on the CellList, which rollout callers keep across
  // steps — no per-step allocation.
  std::vector<graph::Vec2>& pts = cells.points_scratch();
  positions_to_points(config, positions, pts);
  cells.maybe_rebuild(pts);
  return cells.radius_graph(pts);
}

namespace {

/// Appends the C whitened velocity columns and the clipped boundary
/// distances for a window of position frames. Row-local throughout, so it
/// serves both the single-graph and the block-diagonal batched builders
/// (a merged window produces exactly the stacked single-graph rows).
void append_motion_features(const FeatureConfig& config, const Normalizer& norm,
                            const std::vector<ad::Tensor>& position_window,
                            std::vector<ad::Tensor>& parts) {
  GNS_CHECK_MSG(static_cast<int>(position_window.size()) ==
                    config.window_size(),
                "window needs " << config.window_size() << " frames, got "
                                << position_window.size());
  const ad::Tensor& newest = position_window.back();
  GNS_CHECK_MSG(newest.cols() == config.dim, "position dim mismatch");
  GNS_CHECK_MSG(static_cast<int>(config.domain_lo.size()) >= config.dim &&
                    static_cast<int>(config.domain_hi.size()) >= config.dim,
                "feature config domain bounds missing");

  // C velocity frames, oldest first, each whitened by dataset stats.
  for (int c = 0; c < config.history; ++c) {
    ad::Tensor v = ad::sub(position_window[c + 1], position_window[c]);
    parts.push_back(norm.normalize_velocity(v));
  }

  // Boundary distances, clipped to [0, 1] at the connectivity radius:
  // (x - lo)/R and (hi - x)/R per axis.
  const double inv_r = 1.0 / config.connectivity_radius;
  for (int d = 0; d < config.dim; ++d) {
    ad::Tensor axis = (config.dim == 1)
                          ? newest
                          : ad::slice_cols(newest, d, 1);
    ad::Tensor to_lo = ad::clamp(
        ad::mul_scalar(ad::add_scalar(axis, -config.domain_lo[d]), inv_r),
        0.0, 1.0);
    ad::Tensor to_hi = ad::clamp(
        ad::mul_scalar(
            ad::add_scalar(ad::mul_scalar(axis, -1.0), config.domain_hi[d]),
            inv_r),
        0.0, 1.0);
    parts.push_back(to_lo);
    parts.push_back(to_hi);
  }
}

}  // namespace

ad::Tensor build_node_features(const FeatureConfig& config,
                               const Normalizer& norm,
                               const std::vector<ad::Tensor>& position_window,
                               const SceneContext& context) {
  const int n = position_window.empty() ? 0 : position_window.back().rows();

  std::vector<ad::Tensor> parts;
  parts.reserve(config.history + 2 + 1);
  append_motion_features(config, norm, position_window, parts);

  if (config.material_feature) {
    GNS_CHECK_MSG(context.material.defined() && context.material.size() == 1,
                  "material_feature=true needs a scalar material param");
    // Broadcast the scalar into a column: ones[N,1] * φ̂.
    parts.push_back(ad::mul(ad::Tensor::ones(n, 1), context.material));
  }

  if (config.static_node_attrs > 0) {
    GNS_CHECK_MSG(context.node_attrs.defined() &&
                      context.node_attrs.rows() == n &&
                      context.node_attrs.cols() == config.static_node_attrs,
                  "scene context node_attrs missing or mis-shaped");
    parts.push_back(context.node_attrs);
  }

  return ad::concat_cols(parts);
}

ad::Tensor build_edge_features(const FeatureConfig& config,
                               const ad::Tensor& positions,
                               const graph::Graph& graph) {
  return build_edge_features(config, positions, graph, GraphIndex(graph));
}

ad::Tensor build_edge_features(const FeatureConfig& config,
                               const ad::Tensor& positions,
                               const graph::Graph& graph,
                               const GraphIndex& index) {
  GNS_CHECK_MSG(graph.num_nodes == positions.rows(),
                "graph/positions size mismatch");
  GNS_CHECK_MSG(graph.num_edges() > 0,
                "graph has no edges — connectivity radius too small?");
  GNS_CHECK_MSG(index.defined() &&
                    index.senders.size() == graph.num_edges() &&
                    index.senders.num_buckets() == graph.num_nodes,
                "GraphIndex does not match graph");
  const double inv_r = 1.0 / config.connectivity_radius;
  // One fused row-local op, bitwise equal to the former
  // gather/sub/mul_scalar/square/sum_cols/add_scalar/sqrt/concat chain
  // (the 1e-12 epsilon keeps the sqrt gradient finite for coincident
  // particles).
  return ad::radius_edge_features(positions, index.senders, index.receivers,
                                  inv_r, 1e-12);
}

ad::Tensor build_batched_node_features(
    const FeatureConfig& config, const Normalizer& norm,
    const std::vector<std::vector<ad::Tensor>>& windows,
    const std::vector<SceneContext>& contexts) {
  const int b = static_cast<int>(windows.size());
  GNS_CHECK_MSG(b > 0, "batched node features need at least one window");
  GNS_CHECK_MSG(static_cast<int>(contexts.size()) == b,
                "need one scene context per window");
  const int w = config.window_size();
  for (const auto& window : windows)
    GNS_CHECK_MSG(static_cast<int>(window.size()) == w,
                  "every batched window needs " << w << " frames");

  // Merge the windows frame-by-frame (rows in member order), then run the
  // row-local motion features once over the whole batch.
  std::vector<ad::Tensor> merged_window;
  merged_window.reserve(w);
  std::vector<ad::Tensor> frame_parts(b);
  for (int t = 0; t < w; ++t) {
    for (int g = 0; g < b; ++g) frame_parts[g] = windows[g][t];
    merged_window.push_back(b == 1 ? frame_parts[0]
                                   : ad::concat_rows(frame_parts));
  }

  std::vector<ad::Tensor> parts;
  parts.reserve(config.history + 2 + 1);
  append_motion_features(config, norm, merged_window, parts);

  // The segmented features: per-member scalars/attributes broadcast only
  // within their member's node range.
  if (config.material_feature) {
    std::vector<ad::Tensor> cols;
    cols.reserve(b);
    for (int g = 0; g < b; ++g) {
      const SceneContext& ctx = contexts[g];
      GNS_CHECK_MSG(ctx.material.defined() && ctx.material.size() == 1,
                    "material_feature=true needs a scalar material param "
                    "(batch member " << g << ")");
      cols.push_back(ad::mul(ad::Tensor::ones(windows[g].back().rows(), 1),
                             ctx.material));
    }
    parts.push_back(b == 1 ? cols[0] : ad::concat_rows(cols));
  }

  if (config.static_node_attrs > 0) {
    std::vector<ad::Tensor> attrs;
    attrs.reserve(b);
    for (int g = 0; g < b; ++g) {
      const SceneContext& ctx = contexts[g];
      GNS_CHECK_MSG(ctx.node_attrs.defined() &&
                        ctx.node_attrs.rows() == windows[g].back().rows() &&
                        ctx.node_attrs.cols() == config.static_node_attrs,
                    "scene context node_attrs missing or mis-shaped "
                    "(batch member " << g << ")");
      attrs.push_back(ctx.node_attrs);
    }
    parts.push_back(b == 1 ? attrs[0] : ad::concat_rows(attrs));
  }

  return ad::concat_cols(parts);
}

ad::Tensor build_batched_edge_features(const FeatureConfig& config,
                                       const ad::Tensor& merged_positions,
                                       const graph::GraphBatch& batch) {
  return build_batched_edge_features(config, merged_positions, batch,
                                     GraphIndex(batch.merged));
}

ad::Tensor build_batched_edge_features(const FeatureConfig& config,
                                       const ad::Tensor& merged_positions,
                                       const graph::GraphBatch& batch,
                                       const GraphIndex& index) {
  GNS_CHECK_MSG(batch.merged.num_nodes == merged_positions.rows(),
                "graph batch/positions size mismatch");
  // The merged indices already point into the concatenated position rows,
  // and displacement/norm are per-edge local, so the single-graph builder
  // computes exactly the stacked per-member edge features.
  return build_edge_features(config, merged_positions, batch.merged, index);
}

}  // namespace gns::core
