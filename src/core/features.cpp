#include "core/features.hpp"

#include <cmath>

namespace gns::core {

SceneContext SceneContext::from_trajectory(const FeatureConfig& config,
                                           const io::Trajectory& traj) {
  SceneContext ctx;
  if (config.material_feature) {
    ctx.material = ad::Tensor::scalar(traj.material_param);
  }
  if (config.static_node_attrs > 0) {
    GNS_CHECK_MSG(traj.attr_dim == config.static_node_attrs,
                  "trajectory has " << traj.attr_dim
                                    << " node attributes, feature config "
                                       "expects "
                                    << config.static_node_attrs);
    std::vector<ad::Real> data(traj.node_attrs.begin(),
                               traj.node_attrs.end());
    ctx.node_attrs = ad::Tensor::from_vector(
        traj.num_particles, traj.attr_dim, std::move(data));
  }
  return ctx;
}

ad::Tensor frame_to_tensor(const std::vector<double>& flat, int dim) {
  GNS_CHECK_MSG(dim > 0 && flat.size() % dim == 0,
                "frame size not divisible by dim");
  const int n = static_cast<int>(flat.size()) / dim;
  std::vector<ad::Real> data(flat.begin(), flat.end());
  return ad::Tensor::from_vector(n, dim, std::move(data));
}

std::vector<double> tensor_to_frame(const ad::Tensor& t) {
  return {t.vec().begin(), t.vec().end()};
}

graph::Graph build_graph(const FeatureConfig& config,
                         const ad::Tensor& positions) {
  GNS_CHECK_MSG(positions.cols() == config.dim, "positions dim mismatch");
  const int n = positions.rows();
  std::vector<graph::Vec2> pts(n);
  for (int i = 0; i < n; ++i) {
    pts[i].x = positions.at(i, 0);
    pts[i].y = (config.dim > 1) ? positions.at(i, 1) : 0.0;
  }
  return graph::build_radius_graph(pts, config.connectivity_radius);
}

ad::Tensor build_node_features(const FeatureConfig& config,
                               const Normalizer& norm,
                               const std::vector<ad::Tensor>& position_window,
                               const SceneContext& context) {
  GNS_CHECK_MSG(static_cast<int>(position_window.size()) ==
                    config.window_size(),
                "window needs " << config.window_size() << " frames, got "
                                << position_window.size());
  const ad::Tensor& newest = position_window.back();
  const int n = newest.rows();
  GNS_CHECK_MSG(newest.cols() == config.dim, "position dim mismatch");
  GNS_CHECK_MSG(static_cast<int>(config.domain_lo.size()) >= config.dim &&
                    static_cast<int>(config.domain_hi.size()) >= config.dim,
                "feature config domain bounds missing");

  std::vector<ad::Tensor> parts;
  parts.reserve(config.history + 2 + 1);

  // C velocity frames, oldest first, each whitened by dataset stats.
  for (int c = 0; c < config.history; ++c) {
    ad::Tensor v = ad::sub(position_window[c + 1], position_window[c]);
    parts.push_back(norm.normalize_velocity(v));
  }

  // Boundary distances, clipped to [0, 1] at the connectivity radius:
  // (x - lo)/R and (hi - x)/R per axis.
  const double inv_r = 1.0 / config.connectivity_radius;
  for (int d = 0; d < config.dim; ++d) {
    ad::Tensor axis = (config.dim == 1)
                          ? newest
                          : ad::slice_cols(newest, d, 1);
    ad::Tensor to_lo = ad::clamp(
        ad::mul_scalar(ad::add_scalar(axis, -config.domain_lo[d]), inv_r),
        0.0, 1.0);
    ad::Tensor to_hi = ad::clamp(
        ad::mul_scalar(
            ad::add_scalar(ad::mul_scalar(axis, -1.0), config.domain_hi[d]),
            inv_r),
        0.0, 1.0);
    parts.push_back(to_lo);
    parts.push_back(to_hi);
  }

  if (config.material_feature) {
    GNS_CHECK_MSG(context.material.defined() && context.material.size() == 1,
                  "material_feature=true needs a scalar material param");
    // Broadcast the scalar into a column: ones[N,1] * φ̂.
    parts.push_back(ad::mul(ad::Tensor::ones(n, 1), context.material));
  }

  if (config.static_node_attrs > 0) {
    GNS_CHECK_MSG(context.node_attrs.defined() &&
                      context.node_attrs.rows() == n &&
                      context.node_attrs.cols() == config.static_node_attrs,
                  "scene context node_attrs missing or mis-shaped");
    parts.push_back(context.node_attrs);
  }

  return ad::concat_cols(parts);
}

ad::Tensor build_edge_features(const FeatureConfig& config,
                               const ad::Tensor& positions,
                               const graph::Graph& graph) {
  GNS_CHECK_MSG(graph.num_nodes == positions.rows(),
                "graph/positions size mismatch");
  GNS_CHECK_MSG(graph.num_edges() > 0,
                "graph has no edges — connectivity radius too small?");
  const double inv_r = 1.0 / config.connectivity_radius;
  ad::Tensor xs = ad::gather_rows(positions, graph.senders);
  ad::Tensor xr = ad::gather_rows(positions, graph.receivers);
  ad::Tensor disp = ad::mul_scalar(ad::sub(xr, xs), inv_r);
  // |disp| with a tiny epsilon so the sqrt gradient stays finite for
  // coincident particles.
  ad::Tensor norm2 = ad::sum_cols(ad::square(disp));
  ad::Tensor dist = ad::sqrt_op(ad::add_scalar(norm2, 1e-12));
  return ad::concat_cols({disp, dist});
}

}  // namespace gns::core
