#include "core/normalization.hpp"

namespace gns::core {

namespace {
ad::Tensor row_tensor(const std::vector<double>& values) {
  std::vector<ad::Real> data(values.begin(), values.end());
  return ad::Tensor::from_vector(1, static_cast<int>(values.size()),
                                 std::move(data));
}
}  // namespace

Normalizer::Normalizer(const io::NormalizationStats& stats)
    : dim_(stats.dim()), stats_(stats) {
  GNS_CHECK_MSG(dim_ > 0, "empty normalization stats");
  vel_mean_ = row_tensor(stats.vel_mean);
  vel_std_ = row_tensor(stats.vel_std);
  acc_mean_ = row_tensor(stats.acc_mean);
  acc_std_ = row_tensor(stats.acc_std);
}

ad::Tensor Normalizer::normalize_velocity(const ad::Tensor& v) const {
  GNS_CHECK_MSG(v.cols() == dim_, "velocity dim mismatch");
  return ad::div(ad::sub(v, vel_mean_), vel_std_);
}

ad::Tensor Normalizer::normalize_acceleration(const ad::Tensor& a) const {
  GNS_CHECK_MSG(a.cols() == dim_, "acceleration dim mismatch");
  return ad::div(ad::sub(a, acc_mean_), acc_std_);
}

ad::Tensor Normalizer::denormalize_acceleration(
    const ad::Tensor& a_norm) const {
  GNS_CHECK_MSG(a_norm.cols() == dim_, "acceleration dim mismatch");
  return ad::add(ad::mul(a_norm, acc_std_), acc_mean_);
}

}  // namespace gns::core
