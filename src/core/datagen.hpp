#pragma once

/// \file datagen.hpp
/// Training-data generation: runs the physics substrates and records
/// trajectories at the GNS frame interval. This reproduces the paper's
/// data pipeline (§3.1: 26 MPM-simulated square granular masses; §6: 30
/// n-body spring trajectories), at laptop scale.

#include "io/trajectory.hpp"
#include "mpm/scenes.hpp"
#include "nbody/nbody.hpp"

namespace gns::core {

struct MpmDataGenConfig {
  mpm::GranularSceneParams scene;
  int num_trajectories = 8;
  int frames = 60;          ///< recorded GNS frames per trajectory
  int substeps = 20;        ///< MPM steps per recorded frame
  double min_side = 0.12;   ///< square side range
  double max_side = 0.3;
  double max_speed = 1.0;   ///< initial velocity magnitude bound [m/s]
  std::uint64_t seed = 1234;
};

/// Randomized square granular masses (training set of §3.1). The recorded
/// material_param is tan(φ) of the scene material.
[[nodiscard]] io::Dataset generate_granular_dataset(
    const MpmDataGenConfig& config);

/// Column-collapse trajectories over a sweep of friction angles (the
/// dataset behind the §5 inverse problem: the GNS must be φ-conditional,
/// so it sees several φ values in training).
[[nodiscard]] io::Dataset generate_column_dataset(
    const mpm::GranularSceneParams& base, const std::vector<double>&
    friction_angles, double column_width, double aspect_ratio, int frames,
    int substeps);

/// Records one trajectory from an existing solver (also used by the hybrid
/// controller to produce reference runs).
[[nodiscard]] io::Trajectory record_mpm_trajectory(mpm::MpmSolver& solver,
                                                   int frames, int substeps,
                                                   double material_param);

/// Dam-break trajectories over a sweep of column geometries (the fluid
/// counterpart of the granular training set; "particle and fluid").
struct FluidDataGenConfig {
  mpm::FluidSceneParams scene;
  int num_trajectories = 6;
  int frames = 50;
  int substeps = 20;
  double min_width = 0.1, max_width = 0.3;
  double min_height = 0.15, max_height = 0.35;
  std::uint64_t seed = 777;
};

[[nodiscard]] io::Dataset generate_dam_break_dataset(
    const FluidDataGenConfig& config);

struct NBodyDataGenConfig {
  nbody::NBodyConfig system;
  int num_trajectories = 10;
  int frames = 200;
  int substeps = 5;
  std::uint64_t seed = 99;
};

/// Random spring-ball chains (§6 interpretability study).
[[nodiscard]] io::Dataset generate_nbody_dataset(
    const NBodyDataGenConfig& config);

/// Normalized material parameter used everywhere for friction angle φ:
/// tan(φ) keeps the feature O(1) over the physical range.
[[nodiscard]] double material_param_from_friction(double friction_deg);

}  // namespace gns::core
