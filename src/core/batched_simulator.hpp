#pragma once

/// \file batched_simulator.hpp
/// BatchedSimulator: steps B independent particle systems through ONE GNS
/// forward pass per step by merging their graphs block-diagonally
/// (graph/batch.hpp). Each member keeps its own neighbor list, window, and
/// scene context; only the model evaluation is shared, so the per-step
/// matmuls/gathers run over sum_g N_g nodes instead of B small tensors —
/// the batching layer behind the serving subsystem's coalesced dispatch.
///
/// Equivalence contract: every op in the batched forward (MLPs, layer norm,
/// gather/scatter, segment softmax, integration) is row- or segment-local,
/// and batching preserves per-member row/edge order, so a batched step is
/// bit-identical to B independent LearnedSimulator::step calls
/// (tests/test_batching.cpp asserts this elementwise).

#include <functional>
#include <memory>
#include <vector>

#include "core/simulator.hpp"
#include "graph/batch.hpp"
#include "graph/neighbor_search.hpp"

namespace gns::core {

class BatchedSimulator {
 public:
  /// The simulator handle is shared (serving hands out
  /// ModelRegistry::Handle); weights are never copied.
  explicit BatchedSimulator(
      std::shared_ptr<const LearnedSimulator> simulator);

  /// One integrator step for every member through a single block-diagonal
  /// forward. windows[g] holds window_size() frames (oldest first) of
  /// member g; members may differ in particle count. Returns x_{t+1} per
  /// member. `out_batch` (optional) receives the merged graph built for
  /// the step. `neighbor_caches` (optional; one entry per member, entries
  /// may be null) supplies per-member Verlet skin lists reused across
  /// steps — edges stay identical to fresh builds.
  [[nodiscard]] std::vector<ad::Tensor> step(
      const std::vector<Window>& windows,
      const std::vector<SceneContext>& contexts,
      graph::GraphBatch* out_batch = nullptr,
      const std::vector<graph::CellList*>& neighbor_caches = {}) const;

  /// Gate polled before every batched step for each still-active member.
  /// Return false to drop the member immediately: it keeps the frames
  /// predicted so far and is compacted out of subsequent steps (the serve
  /// layer uses this for per-member deadlines and cancellation).
  using StepGate = std::function<bool(int member)>;

  /// Inference rollout (taping disabled) of B members for steps[g] frames
  /// each. Members that reach their step count — or whose gate says stop —
  /// are compacted out while the rest keep stepping as a smaller batch.
  /// Returns the predicted frames per member, flat [N_g * dim] each.
  [[nodiscard]] std::vector<std::vector<std::vector<double>>> rollout(
      const std::vector<Window>& initial_windows,
      const std::vector<int>& steps,
      const std::vector<SceneContext>& contexts,
      const StepGate& gate = nullptr) const;

  [[nodiscard]] const LearnedSimulator& simulator() const { return *sim_; }

 private:
  std::shared_ptr<const LearnedSimulator> sim_;
};

/// Incremental form of BatchedSimulator::rollout: holds the rolling
/// windows, Verlet caches, and per-member frame buffers between steps so a
/// caller can advance the batch one step at a time — the serving layer
/// runs each step as one executor task (a continuation chain) instead of
/// blocking a thread for the whole rollout. rollout() is implemented on
/// top of this class, so the blocking and the step-at-a-time paths execute
/// the exact same op sequence and stay bitwise identical.
class BatchedRollout {
 public:
  BatchedRollout(std::shared_ptr<const LearnedSimulator> simulator,
                 const std::vector<Window>& initial_windows,
                 const std::vector<int>& steps,
                 const std::vector<SceneContext>& contexts);

  /// Gate-compacts the still-active members, then advances them by one
  /// block-diagonal step. Returns true while members remain active
  /// afterwards (i.e. another step_once call would do work).
  bool step_once(const BatchedSimulator::StepGate& gate = nullptr);

  [[nodiscard]] bool done() const { return active_.empty(); }

  /// Predicted frames per member, flat [N_g * dim] each. Moves the
  /// buffers out; the rollout is finished once this is called.
  [[nodiscard]] std::vector<std::vector<std::vector<double>>> take_frames() {
    return std::move(frames_);
  }

 private:
  BatchedSimulator batched_;
  std::vector<Window> windows_;
  std::vector<int> steps_;
  std::vector<SceneContext> contexts_;
  std::vector<std::unique_ptr<graph::CellList>> caches_;
  std::vector<std::vector<std::vector<double>>> frames_;
  std::vector<int> active_;  ///< member indices still rolling
  // Per-step scratch, kept across steps to avoid reallocation.
  std::vector<Window> step_windows_;
  std::vector<SceneContext> step_contexts_;
  std::vector<graph::CellList*> step_caches_;
};

}  // namespace gns::core
