#pragma once

/// \file interpret.hpp
/// Interpretability pipeline (§6, Table 1, Fig 6): extract the trained
/// GNS's edge messages over test states, pair them with the physical edge
/// features (Δx, r_i, r_j, m_i, m_j) and the ground-truth contact force,
/// select the dominant message components by standard deviation, and hand
/// the result to symbolic regression.

#include <array>

#include "core/simulator.hpp"
#include "nbody/nbody.hpp"

namespace gns::core {

/// One edge observation: physical features + the latent message vector +
/// the true pairwise force (receiver side).
struct MessageDataset {
  /// Physical features per edge, one row per observation:
  /// [dx, r_recv, r_send, m_recv, m_send]. dx is signed x_recv − x_send.
  std::vector<std::array<double, 5>> features;
  /// Latent messages, [num_observations][latent].
  std::vector<std::vector<double>> messages;
  /// Ground-truth force on the receiver from the sender.
  std::vector<double> true_force;

  [[nodiscard]] int size() const {
    return static_cast<int>(features.size());
  }
  [[nodiscard]] int latent() const {
    return messages.empty() ? 0 : static_cast<int>(messages.front().size());
  }
};

/// Runs the trained 1-D simulator over windows of `traj` (stride frames
/// apart) and collects the message dataset. The trajectory must carry
/// [radius, mass] node attributes; `system_config` supplies the true force
/// law for labels.
[[nodiscard]] MessageDataset collect_messages(
    const LearnedSimulator& sim, const io::Trajectory& traj,
    const nbody::NBodyConfig& system_config, int stride = 1,
    int max_samples = 20000);

/// Restricts a message dataset to edges whose pair is actually in contact
/// (|Δx| < r_i + r_j). The interaction law is only defined on interacting
/// pairs; non-contact edges carry zero force and dilute both the
/// component-std ranking and the message/force correlation.
[[nodiscard]] MessageDataset filter_contacts(const MessageDataset& data);

/// Standard deviation of each message component (the paper sorts message
/// components "based on the largest standard deviation").
[[nodiscard]] std::vector<double> message_component_std(
    const MessageDataset& data);

/// Index of the component with the largest std.
[[nodiscard]] int dominant_component(const MessageDataset& data);

/// Pearson correlation between message component `component` and the true
/// force — the §6 hypothesis is |corr| ≈ 1 after L1-sparsified training.
[[nodiscard]] double message_force_correlation(const MessageDataset& data,
                                               int component);

/// Extracts one message component as the SR regression target.
[[nodiscard]] std::vector<double> component_values(const MessageDataset& data,
                                                   int component);

}  // namespace gns::core
