#include "core/meshnet.hpp"

#include <cmath>

#include "ad/optim.hpp"
#include "util/logging.hpp"

namespace gns::core {

Mesh build_mesh(const cfd::CfdSolver& solver) {
  Mesh mesh;
  mesh.nx = solver.config().nx;
  mesh.ny = solver.config().ny;
  mesh.types = solver.cell_types();
  const int n = mesh.nx * mesh.ny;
  mesh.graph.num_nodes = n;

  std::vector<ad::Real> edge_feats;
  auto add_edge = [&](int from, int to, double dx, double dy) {
    mesh.graph.add_edge(from, to);
    const double dist = std::sqrt(dx * dx + dy * dy);
    edge_feats.push_back(dx);
    edge_feats.push_back(dy);
    edge_feats.push_back(dist);
  };
  for (int j = 0; j < mesh.ny; ++j) {
    for (int i = 0; i < mesh.nx; ++i) {
      const int c = j * mesh.nx + i;
      if (i + 1 < mesh.nx) {
        add_edge(c, c + 1, -1.0, 0.0);
        add_edge(c + 1, c, 1.0, 0.0);
      }
      if (j + 1 < mesh.ny) {
        add_edge(c, c + mesh.nx, 0.0, -1.0);
        add_edge(c + mesh.nx, c, 0.0, 1.0);
      }
    }
  }
  mesh.edge_features = ad::Tensor::from_vector(
      mesh.graph.num_edges(), 3, std::move(edge_feats));

  std::vector<ad::Real> onehot(static_cast<std::size_t>(n) * 4, 0.0);
  for (int c = 0; c < n; ++c)
    onehot[c * 4 + static_cast<int>(mesh.types[c])] = 1.0;
  mesh.node_type_onehot = ad::Tensor::from_vector(n, 4, std::move(onehot));
  mesh.index = GraphIndex(mesh.graph);
  return mesh;
}

MeshNet::MeshNet(const Mesh& mesh, const MeshNetConfig& config,
                 double velocity_std, std::uint64_t seed)
    : mesh_(mesh), velocity_std_(velocity_std) {
  GNS_CHECK_MSG(velocity_std > 0.0, "velocity_std must be positive");
  GnsConfig gc;
  gc.node_in = 2 + 4;  // velocity + type one-hot
  gc.edge_in = 3;
  gc.latent = config.latent;
  gc.mlp_hidden = config.mlp_hidden;
  gc.mlp_layers = config.mlp_layers;
  gc.message_passing_steps = config.message_passing_steps;
  gc.out_dim = 2;
  Rng rng(seed);
  model_ = std::make_shared<GnsModel>(gc, rng);
}

ad::Tensor MeshNet::predict_delta(const ad::Tensor& velocities) const {
  GNS_CHECK_MSG(velocities.rows() == mesh_.graph.num_nodes &&
                    velocities.cols() == 2,
                "MeshNet velocity field shape mismatch");
  ad::Tensor v_norm = ad::mul_scalar(velocities, 1.0 / velocity_std_);
  ad::Tensor node_feats = ad::concat_cols({v_norm, mesh_.node_type_onehot});
  GnsOutput out =
      model_->forward(node_feats, mesh_.edge_features, mesh_.graph,
                      mesh_.index);
  // Decoder output is the normalized delta.
  return ad::mul_scalar(out.acceleration, velocity_std_);
}

std::vector<double> MeshNet::step(const std::vector<double>& velocities) const {
  ad::NoGradGuard no_grad;
  const int n = mesh_.graph.num_nodes;
  GNS_CHECK(static_cast<int>(velocities.size()) == 2 * n);
  ad::Tensor v = ad::Tensor::from_vector(
      n, 2, std::vector<ad::Real>(velocities.begin(), velocities.end()));
  ad::Tensor dv = predict_delta(v);
  std::vector<double> next(velocities);
  for (int i = 0; i < 2 * n; ++i) next[i] += dv.data()[i];
  // Hard-enforce solid cells at rest — the mesh analog of boundary
  // conditions (MeshGraphNet likewise overwrites prescribed nodes).
  for (int c = 0; c < n; ++c) {
    if (mesh_.types[c] == cfd::CellType::Solid) {
      next[2 * c] = 0.0;
      next[2 * c + 1] = 0.0;
    }
  }
  return next;
}

std::vector<std::vector<double>> MeshNet::rollout(
    const std::vector<double>& initial, int steps) const {
  GNS_CHECK(steps > 0);
  std::vector<std::vector<double>> frames;
  frames.reserve(steps);
  std::vector<double> state = initial;
  for (int s = 0; s < steps; ++s) {
    state = step(state);
    frames.push_back(state);
  }
  return frames;
}

std::vector<double> train_meshnet(
    MeshNet& net, const std::vector<std::vector<double>>& frames,
    const MeshNetTrainConfig& config) {
  GNS_CHECK_MSG(frames.size() >= 2, "need at least two frames to train");
  const int n = net.mesh().graph.num_nodes;
  for (const auto& f : frames)
    GNS_CHECK_MSG(static_cast<int>(f.size()) == 2 * n,
                  "frame size mismatch with the mesh");

  Rng rng(config.seed);
  ad::Adam opt(net.model().parameters(), config.lr);
  const double lr_decay =
      (config.steps > 1)
          ? std::pow(config.lr_final / config.lr,
                     1.0 / static_cast<double>(config.steps - 1))
          : 1.0;
  const double inv_std = 1.0 / net.velocity_std();

  std::vector<double> losses;
  losses.reserve(config.steps);
  for (int step = 0; step < config.steps; ++step) {
    const int t = static_cast<int>(rng.uniform_index(frames.size() - 1));
    std::vector<ad::Real> vin(frames[t].begin(), frames[t].end());
    if (config.noise_std > 0.0) {
      for (auto& x : vin) x += rng.gauss(0.0, config.noise_std);
    }
    std::vector<ad::Real> target(2 * n);
    for (int i = 0; i < 2 * n; ++i)
      target[i] = (frames[t + 1][i] - vin[i]) * inv_std;

    ad::Tensor v = ad::Tensor::from_vector(n, 2, std::move(vin));
    ad::Tensor pred_norm =
        ad::mul_scalar(net.predict_delta(v), inv_std);
    ad::Tensor tgt = ad::Tensor::from_vector(n, 2, std::move(target));
    ad::Tensor loss = ad::mse_loss(pred_norm, tgt);

    opt.zero_grad();
    loss.backward();
    if (config.grad_clip > 0.0) opt.clip_grad_norm(config.grad_clip);
    opt.set_lr(config.lr * std::pow(lr_decay, step));
    opt.step();
    losses.push_back(loss.item());
    if (config.log_every > 0 && (step + 1) % config.log_every == 0) {
      GNS_INFO("meshnet step " << step + 1 << "/" << config.steps
                               << " loss=" << losses.back());
    }
  }
  return losses;
}

double field_rmse(const std::vector<double>& a, const std::vector<double>& b) {
  GNS_CHECK(a.size() == b.size() && !a.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

}  // namespace gns::core
