#pragma once

/// \file graph_index.hpp
/// Per-graph gather/scatter index maps, built once and reused.
///
/// A GNS forward runs gather_rows(senders), gather_rows(receivers) and
/// scatter_add_rows(receivers) in *every* message round (plus the edge
/// feature builder and, with attention, segment_softmax). GraphIndex
/// packages the two validated CSR-transposed ad::IndexMaps so the index
/// scan/validation and transpose happen once per graph instead of once
/// per op call; copies share the immutable maps.

#include "ad/index_map.hpp"
#include "graph/graph.hpp"

namespace gns::core {

struct GraphIndex {
  ad::IndexMap senders;
  ad::IndexMap receivers;

  GraphIndex() = default;
  explicit GraphIndex(const graph::Graph& g)
      : senders(g.senders, g.num_nodes),
        receivers(g.receivers, g.num_nodes) {}

  [[nodiscard]] bool defined() const {
    return senders.defined() && receivers.defined();
  }
};

}  // namespace gns::core
