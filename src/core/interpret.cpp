#include "core/interpret.hpp"

#include <cmath>

namespace gns::core {

MessageDataset collect_messages(const LearnedSimulator& sim,
                                const io::Trajectory& traj,
                                const nbody::NBodyConfig& system_config,
                                int stride, int max_samples) {
  GNS_CHECK_MSG(sim.features().dim == 1,
                "message collection expects the 1-D n-body simulator");
  GNS_CHECK_MSG(traj.attr_dim == 2,
                "trajectory must carry [radius, mass] attributes");
  GNS_CHECK(stride > 0);
  ad::NoGradGuard no_grad;

  const int window = sim.features().window_size();
  const int n = traj.num_particles;
  MessageDataset data;

  // Reconstruct a physics system for ground-truth forces.
  nbody::NBodySystem truth;
  truth.config = system_config;
  truth.x.assign(n, 0.0);
  truth.v.assign(n, 0.0);  // damping=0 forces are velocity-independent
  truth.radius.resize(n);
  truth.mass.resize(n);
  for (int i = 0; i < n; ++i) {
    truth.radius[i] = traj.node_attrs[2 * i];
    truth.mass[i] = traj.node_attrs[2 * i + 1];
  }

  const SceneContext context =
      SceneContext::from_trajectory(sim.features(), traj);

  for (int t0 = 0; t0 + window <= traj.num_frames(); t0 += stride) {
    Window win = sim.window_from_trajectory(traj, t0);
    graph::Graph graph;
    GnsOutput out = sim.forward_raw(win, context, &graph);
    const int latent = out.messages.cols();
    for (int e = 0; e < graph.num_edges(); ++e) {
      if (data.size() >= max_samples) return data;
      const int s = graph.senders[e];
      const int r = graph.receivers[e];
      for (int i = 0; i < n; ++i) truth.x[i] = traj.position(t0 + window - 1, i, 0);
      data.features.push_back({truth.x[r] - truth.x[s], truth.radius[r],
                               truth.radius[s], truth.mass[r],
                               truth.mass[s]});
      std::vector<double> msg(latent);
      for (int c = 0; c < latent; ++c) msg[c] = out.messages.at(e, c);
      data.messages.push_back(std::move(msg));
      data.true_force.push_back(truth.pair_force(r, s));
    }
  }
  return data;
}

MessageDataset filter_contacts(const MessageDataset& data) {
  MessageDataset out;
  for (int i = 0; i < data.size(); ++i) {
    const auto& f = data.features[i];
    if (std::abs(f[0]) < f[1] + f[2]) {
      out.features.push_back(f);
      out.messages.push_back(data.messages[i]);
      out.true_force.push_back(data.true_force[i]);
    }
  }
  return out;
}

std::vector<double> message_component_std(const MessageDataset& data) {
  GNS_CHECK(data.size() > 1);
  const int latent = data.latent();
  std::vector<double> mean(latent, 0.0), var(latent, 0.0);
  for (const auto& msg : data.messages)
    for (int c = 0; c < latent; ++c) mean[c] += msg[c];
  for (auto& m : mean) m /= data.size();
  for (const auto& msg : data.messages)
    for (int c = 0; c < latent; ++c) {
      const double d = msg[c] - mean[c];
      var[c] += d * d;
    }
  std::vector<double> out(latent);
  for (int c = 0; c < latent; ++c)
    out[c] = std::sqrt(var[c] / (data.size() - 1));
  return out;
}

int dominant_component(const MessageDataset& data) {
  const auto stds = message_component_std(data);
  int best = 0;
  for (int c = 1; c < static_cast<int>(stds.size()); ++c)
    if (stds[c] > stds[best]) best = c;
  return best;
}

double message_force_correlation(const MessageDataset& data, int component) {
  GNS_CHECK(data.size() > 1);
  GNS_CHECK(component >= 0 && component < data.latent());
  double mx = 0.0, my = 0.0;
  const int n = data.size();
  for (int i = 0; i < n; ++i) {
    mx += data.messages[i][component];
    my += data.true_force[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (int i = 0; i < n; ++i) {
    const double dx = data.messages[i][component] - mx;
    const double dy = data.true_force[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  const double denom = std::sqrt(sxx * syy);
  return denom > 0.0 ? sxy / denom : 0.0;
}

std::vector<double> component_values(const MessageDataset& data,
                                     int component) {
  GNS_CHECK(component >= 0 && component < data.latent());
  std::vector<double> out(data.size());
  for (int i = 0; i < data.size(); ++i)
    out[i] = data.messages[i][component];
  return out;
}

}  // namespace gns::core
