#include "core/simulator.hpp"

#include <cmath>

#include "obs/obs.hpp"

namespace gns::core {

LearnedSimulator::LearnedSimulator(std::shared_ptr<GnsModel> model,
                                   FeatureConfig features,
                                   Normalizer normalizer)
    : model_(std::move(model)),
      features_(std::move(features)),
      normalizer_(std::move(normalizer)) {
  GNS_CHECK_MSG(model_ != nullptr, "LearnedSimulator needs a model");
  GNS_CHECK_MSG(model_->config().node_in == features_.node_feature_count(),
                "model node_in (" << model_->config().node_in
                                  << ") does not match feature config ("
                                  << features_.node_feature_count() << ")");
  GNS_CHECK_MSG(model_->config().edge_in == features_.edge_feature_count(),
                "model edge_in does not match feature config");
  GNS_CHECK_MSG(model_->config().out_dim == features_.dim,
                "model out_dim must equal spatial dim");
  GNS_CHECK_MSG(normalizer_.dim() == features_.dim,
                "normalizer dim mismatch");
}

GnsOutput LearnedSimulator::forward_raw(const Window& window,
                                        const SceneContext& context,
                                        graph::Graph* out_graph,
                                        graph::CellList* neighbor_cache) const {
  GNS_TRACE_SCOPE("core.simulator.forward");
  static auto& features_ms =
      obs::MetricsRegistry::global().histogram("core.simulator.features_ms");
  const ad::Tensor& newest = window.back();
  graph::Graph graph =
      neighbor_cache != nullptr
          ? build_graph_cached(features_, newest, *neighbor_cache)
          : build_graph(features_, newest);
  // One validated CSR index per step, shared by the edge-feature builder
  // and every message round of the forward.
  const GraphIndex index(graph);
  ad::Tensor node_feats, edge_feats;
  {
    GNS_TRACE_SCOPE("core.simulator.features");
    const obs::ScopedHistogramTimer phase_timer(features_ms);
    node_feats = build_node_features(features_, normalizer_, window, context);
    edge_feats = build_edge_features(features_, newest, graph, index);
  }
  GnsOutput out = model_->forward(node_feats, edge_feats, graph, index);
  if (out_graph != nullptr) *out_graph = std::move(graph);
  return out;
}

ad::Tensor LearnedSimulator::predict_acceleration(
    const Window& window, const SceneContext& context,
    graph::CellList* neighbor_cache) const {
  GnsOutput out = forward_raw(window, context, nullptr, neighbor_cache);
  return normalizer_.denormalize_acceleration(out.acceleration);
}

ad::Tensor LearnedSimulator::step(const Window& window,
                                  const SceneContext& context,
                                  graph::CellList* neighbor_cache) const {
  GNS_TRACE_SCOPE("core.simulator.step");
  static auto& step_ms =
      obs::MetricsRegistry::global().histogram("core.simulator.step_ms");
  static auto& integrate_ms =
      obs::MetricsRegistry::global().histogram("core.simulator.integrate_ms");
  static auto& steps =
      obs::MetricsRegistry::global().counter("core.simulator.steps");
  const obs::ScopedHistogramTimer step_timer(step_ms);
  steps.add();
  ad::Tensor accel = predict_acceleration(window, context, neighbor_cache);
  GNS_TRACE_SCOPE("core.simulator.integrate");
  const obs::ScopedHistogramTimer phase_timer(integrate_ms);
  const ad::Tensor& xt = window.back();
  const ad::Tensor& xprev = window[window.size() - 2];
  // Semi-implicit Euler in frame units: v' = v + a; x' = x + v'.
  ad::Tensor v_next = ad::add(ad::sub(xt, xprev), accel);
  return ad::add(xt, v_next);
}

std::vector<std::vector<double>> LearnedSimulator::rollout(
    const Window& initial_window, int steps,
    const SceneContext& context) const {
  const double skin =
      graph::default_skin_fraction() * features_.connectivity_radius;
  graph::CellList cells = make_rollout_cells(features_, skin);
  return rollout(initial_window, steps, context, &cells);
}

std::vector<std::vector<double>> LearnedSimulator::rollout(
    const Window& initial_window, int steps, const SceneContext& context,
    graph::CellList* neighbor_cache) const {
  GNS_CHECK(steps > 0);
  GNS_TRACE_SCOPE("core.simulator.rollout");
  ad::NoGradGuard no_grad;
  Window window;
  window.reserve(initial_window.size());
  for (const auto& t : initial_window) window.push_back(t.detach());
  std::vector<std::vector<double>> frames;
  frames.reserve(steps);
  for (int s = 0; s < steps; ++s) {
    // Per-step arena frame: every tensor this step allocates is recycled
    // for the next step once the window slides past it.
    ad::ArenaScope arena_frame;
    ad::Tensor next = step(window, context, neighbor_cache);
    frames.push_back(tensor_to_frame(next));
    window.erase(window.begin());
    window.push_back(next);
  }
  return frames;
}

std::vector<ad::Tensor> LearnedSimulator::rollout_diff(
    const Window& initial_window, int steps,
    const SceneContext& context) const {
  GNS_CHECK(steps > 0);
  const double skin =
      graph::default_skin_fraction() * features_.connectivity_radius;
  graph::CellList cells = make_rollout_cells(features_, skin);
  Window window = initial_window;
  std::vector<ad::Tensor> frames;
  frames.reserve(steps);
  for (int s = 0; s < steps; ++s) {
    ad::Tensor next = step(window, context, &cells);
    frames.push_back(next);
    window.erase(window.begin());
    window.push_back(next);
  }
  return frames;
}

Window LearnedSimulator::window_from_trajectory(const io::Trajectory& traj,
                                                int start_frame) const {
  const int w = features_.window_size();
  GNS_CHECK_MSG(start_frame >= 0 && start_frame + w <= traj.num_frames(),
                "trajectory too short for a window at frame " << start_frame);
  Window window;
  window.reserve(w);
  for (int t = start_frame; t < start_frame + w; ++t)
    window.push_back(frame_to_tensor(traj.frames[t], features_.dim));
  return window;
}

double position_error(const std::vector<double>& a,
                      const std::vector<double>& b, int dim,
                      double length_scale) {
  GNS_CHECK_MSG(a.size() == b.size() && !a.empty(),
                "position_error frame mismatch");
  const int n = static_cast<int>(a.size()) / dim;
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    double d2 = 0.0;
    for (int d = 0; d < dim; ++d) {
      const double diff = a[i * dim + d] - b[i * dim + d];
      d2 += diff * diff;
    }
    total += std::sqrt(d2);
  }
  return total / (n * length_scale);
}

}  // namespace gns::core
