#pragma once

/// \file inverse.hpp
/// Differentiable inverse problem (§5, Fig 5): recover the friction angle
/// φ that produces a target runout distance.
///
/// The loss is J(φ) = (L_target − L(φ))² where L(φ) is the runout of a
/// k-step differentiable GNS rollout conditioned on φ. Reverse-mode AD
/// computes ∂J/∂φ through all k chained model applications — the thing
/// classical forward simulators cannot do — and plain gradient descent
/// updates φ. Matching the paper, k is kept small (30) because the tape
/// retains every intermediate activation.
///
/// The runout front max_i x_i is smoothed with a log-sum-exp soft max so
/// the objective stays differentiable; target runouts must be computed
/// with the same smoothing (the helper below) so the bias cancels.

#include "core/simulator.hpp"

namespace gns::core {

struct InverseConfig {
  int rollout_steps = 30;     ///< k: differentiable rollout length
  double lr = 0.5;            ///< gradient-descent rate on tan φ
  int max_iterations = 25;
  double loss_tol = 1e-6;     ///< stop when J falls below this [m²]
  double smooth_temp = 0.01;  ///< soft-max temperature [m]
  double min_friction_deg = 5.0;
  double max_friction_deg = 60.0;
};

struct InverseIterate {
  int iteration = 0;
  double friction_deg = 0.0;
  double material_param = 0.0;  ///< tan φ
  double runout = 0.0;          ///< smoothed runout of this iterate [m]
  double loss = 0.0;
  double gradient = 0.0;        ///< dJ/d(tan φ)
};

struct InverseResult {
  std::vector<InverseIterate> iterates;
  bool converged = false;
  [[nodiscard]] const InverseIterate& final() const {
    GNS_CHECK(!iterates.empty());
    return iterates.back();
  }
};

/// Smoothed runout front: τ·log Σ exp(x_i/τ) over particle x coordinates
/// (shift-stabilized). Differentiable; upper-biased by ≤ τ·log N.
[[nodiscard]] ad::Tensor smooth_runout(const ad::Tensor& positions,
                                       double temperature);

/// Same smoothing on a flat frame (for computing targets from reference
/// data with matching bias).
[[nodiscard]] double smooth_runout_value(const std::vector<double>& frame,
                                         int dim, double temperature);

/// Gradient-based identification of φ. `window` seeds the rollout (e.g.
/// the first frames of an MPM reference run); `target_runout` must come
/// from smooth_runout_value with the same temperature.
[[nodiscard]] InverseResult solve_friction_angle(
    const LearnedSimulator& sim, const Window& window, double target_runout,
    double initial_friction_deg, const InverseConfig& config);

}  // namespace gns::core
