#include "core/datagen.hpp"

#include <cmath>

namespace gns::core {

double material_param_from_friction(double friction_deg) {
  return std::tan(friction_deg * M_PI / 180.0);
}

io::Trajectory record_mpm_trajectory(mpm::MpmSolver& solver, int frames,
                                     int substeps, double material_param) {
  GNS_CHECK(frames > 1 && substeps > 0);
  io::Trajectory traj;
  traj.dim = 2;
  traj.num_particles = solver.particles().size();
  traj.material_param = material_param;
  traj.domain_lo = {0.0, 0.0};
  traj.domain_hi = {solver.grid().width(), solver.grid().height()};
  for (int f = 0; f < frames; ++f) {
    std::vector<double> flat(traj.num_particles * 2);
    const auto& pos = solver.particles().position;
    for (int i = 0; i < traj.num_particles; ++i) {
      flat[2 * i] = pos[i].x;
      flat[2 * i + 1] = pos[i].y;
    }
    traj.add_frame(std::move(flat));
    if (f + 1 < frames) solver.run(substeps);
  }
  return traj;
}

io::Dataset generate_granular_dataset(const MpmDataGenConfig& config) {
  Rng rng(config.seed);
  io::Dataset dataset;
  dataset.trajectories.reserve(config.num_trajectories);
  const double mat =
      material_param_from_friction(config.scene.material.friction_deg);
  for (int k = 0; k < config.num_trajectories; ++k) {
    mpm::Scene scene =
        mpm::make_random_square(config.scene, rng, config.min_side,
                                config.max_side, config.max_speed);
    mpm::MpmSolver solver = scene.make_solver();
    dataset.trajectories.push_back(
        record_mpm_trajectory(solver, config.frames, config.substeps, mat));
  }
  return dataset;
}

io::Dataset generate_column_dataset(const mpm::GranularSceneParams& base,
                                    const std::vector<double>& friction_angles,
                                    double column_width, double aspect_ratio,
                                    int frames, int substeps) {
  GNS_CHECK_MSG(!friction_angles.empty(), "need at least one friction angle");
  io::Dataset dataset;
  dataset.trajectories.reserve(friction_angles.size());
  for (double phi : friction_angles) {
    mpm::GranularSceneParams params = base;
    params.material.friction_deg = phi;
    mpm::Scene scene =
        mpm::make_column_collapse(params, column_width, aspect_ratio);
    mpm::MpmSolver solver = scene.make_solver();
    dataset.trajectories.push_back(record_mpm_trajectory(
        solver, frames, substeps, material_param_from_friction(phi)));
  }
  return dataset;
}

io::Dataset generate_dam_break_dataset(const FluidDataGenConfig& config) {
  Rng rng(config.seed);
  io::Dataset dataset;
  dataset.trajectories.reserve(config.num_trajectories);
  for (int k = 0; k < config.num_trajectories; ++k) {
    const double w = rng.uniform(config.min_width, config.max_width);
    const double h = rng.uniform(config.min_height, config.max_height);
    mpm::Scene scene = mpm::make_dam_break(config.scene, w, h);
    mpm::MpmSolver solver = scene.make_solver();
    dataset.trajectories.push_back(record_mpm_trajectory(
        solver, config.frames, config.substeps, /*material_param=*/0.0));
  }
  return dataset;
}

io::Dataset generate_nbody_dataset(const NBodyDataGenConfig& config) {
  Rng rng(config.seed);
  io::Dataset dataset;
  dataset.trajectories.reserve(config.num_trajectories);
  for (int k = 0; k < config.num_trajectories; ++k) {
    nbody::NBodySystem system = nbody::make_random_system(config.system, rng);
    dataset.trajectories.push_back(
        nbody::simulate(std::move(system), config.frames, config.substeps));
  }
  return dataset;
}

}  // namespace gns::core
