#pragma once

/// \file gns.hpp
/// The paper's primary contribution: the Encode–Process–Decode graph
/// network simulator (Fig 1a), with the attention extension of §3.
///
///  * Encoder: node and edge MLPs embed physical features into a latent
///    graph (edges are learned functions of relative geometry).
///  * Processor: M interaction-network message-passing layers with residual
///    connections. Each layer updates edge latents from (edge, sender,
///    receiver) and node latents from aggregated incoming messages. The
///    attention variant weights incoming messages with a per-receiver
///    softmax (graph attention), which the paper reports stabilizes long
///    rollouts with dynamically changing neighborhoods.
///  * Decoder: node MLP reads out the (normalized) per-particle
///    acceleration.
///
/// The final processor layer's edge latents are exposed as "messages" for
/// the §6 interpretability study: with L1 sparsity during training they
/// become a learned linear combination of the true pairwise forces, which
/// symbolic regression then converts back to a closed-form law.

#include <memory>
#include <vector>

#include "ad/nn.hpp"
#include "core/graph_index.hpp"
#include "graph/graph.hpp"

namespace gns::core {

struct GnsConfig {
  int node_in = 0;                ///< node feature width (from FeatureConfig)
  int edge_in = 0;                ///< edge feature width
  int latent = 64;                ///< latent width of nodes/edges/messages
  int mlp_hidden = 64;
  int mlp_layers = 2;             ///< hidden layers per MLP
  int message_passing_steps = 5;  ///< processor depth M
  int out_dim = 2;                ///< decoder output (acceleration dim)
  bool attention = false;         ///< graph-attention message weighting
};

/// Output of one forward pass.
struct GnsOutput {
  ad::Tensor acceleration;  ///< [N, out_dim], in normalized units
  ad::Tensor messages;      ///< [E, latent]: final processor edge latents
};

/// Encode–Process–Decode GNN. All state is tensors with requires_grad, so
/// the model is trainable with any ad::Optimizer and differentiable
/// end-to-end through rollouts.
class GnsModel : public ad::Module {
 public:
  GnsModel(GnsConfig config, Rng& rng);

  /// Full forward pass. Builds the gather/scatter index maps internally;
  /// callers that already hold a GraphIndex for `graph` should use the
  /// overload below so the maps are shared across all message rounds.
  [[nodiscard]] GnsOutput forward(const ad::Tensor& node_features,
                                  const ad::Tensor& edge_features,
                                  const graph::Graph& graph) const;

  /// Forward with a prebuilt (validated, CSR-transposed) GraphIndex for
  /// `graph`. Bitwise identical to the overload above.
  [[nodiscard]] GnsOutput forward(const ad::Tensor& node_features,
                                  const ad::Tensor& edge_features,
                                  const graph::Graph& graph,
                                  const GraphIndex& index) const;

  [[nodiscard]] std::vector<ad::Tensor> parameters() const override;
  [[nodiscard]] const GnsConfig& config() const { return config_; }

 private:
  struct ProcessorLayer {
    ad::Mlp edge_mlp;
    ad::Mlp node_mlp;
    std::unique_ptr<ad::Mlp> attention_mlp;  // scores, only if attention
  };

  GnsConfig config_;
  ad::Mlp node_encoder_;
  ad::Mlp edge_encoder_;
  std::vector<ProcessorLayer> layers_;
  ad::Mlp decoder_;
};

}  // namespace gns::core
