#include "core/serialize.hpp"

#include <fstream>

namespace gns::core {

namespace {

constexpr std::uint32_t kMagic = 0x474e534d;  // "GNSM"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void wr(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
bool rd(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  return in.good();
}
void wr_vec(std::ofstream& out, const std::vector<double>& v) {
  wr<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}
bool rd_vec(std::ifstream& in, std::vector<double>& v) {
  std::uint64_t n = 0;
  if (!rd(in, n) || n > (1ULL << 32)) return false;
  v.resize(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  return in.good();
}

}  // namespace

void save_simulator(const LearnedSimulator& sim, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GNS_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  wr(out, kMagic);
  wr(out, kVersion);
  const FeatureConfig& f = sim.features();
  wr(out, f.dim);
  wr(out, f.history);
  wr(out, f.connectivity_radius);
  wr_vec(out, f.domain_lo);
  wr_vec(out, f.domain_hi);
  wr<std::int32_t>(out, f.material_feature ? 1 : 0);
  wr(out, f.static_node_attrs);
  const GnsConfig& m = sim.model().config();
  wr(out, m.latent);
  wr(out, m.mlp_hidden);
  wr(out, m.mlp_layers);
  wr(out, m.message_passing_steps);
  wr<std::int32_t>(out, m.attention ? 1 : 0);
  const io::NormalizationStats& s = sim.normalizer().stats();
  wr_vec(out, s.vel_mean);
  wr_vec(out, s.vel_std);
  wr_vec(out, s.acc_mean);
  wr_vec(out, s.acc_std);
  wr_vec(out, sim.model().state());
}

std::optional<LearnedSimulator> load_simulator(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::uint32_t magic = 0, version = 0;
  if (!rd(in, magic) || magic != kMagic) return std::nullopt;
  if (!rd(in, version) || version != kVersion) return std::nullopt;

  FeatureConfig f;
  std::int32_t material = 0, attention = 0;
  if (!rd(in, f.dim) || !rd(in, f.history) ||
      !rd(in, f.connectivity_radius) || !rd_vec(in, f.domain_lo) ||
      !rd_vec(in, f.domain_hi) || !rd(in, material) ||
      !rd(in, f.static_node_attrs)) {
    return std::nullopt;
  }
  f.material_feature = (material != 0);

  GnsConfig m;
  if (!rd(in, m.latent) || !rd(in, m.mlp_hidden) || !rd(in, m.mlp_layers) ||
      !rd(in, m.message_passing_steps) || !rd(in, attention)) {
    return std::nullopt;
  }
  m.attention = (attention != 0);
  m.node_in = f.node_feature_count();
  m.edge_in = f.edge_feature_count();
  m.out_dim = f.dim;

  io::NormalizationStats s;
  if (!rd_vec(in, s.vel_mean) || !rd_vec(in, s.vel_std) ||
      !rd_vec(in, s.acc_mean) || !rd_vec(in, s.acc_std)) {
    return std::nullopt;
  }
  std::vector<double> state;
  if (!rd_vec(in, state)) return std::nullopt;

  Rng rng(0);  // weights are overwritten immediately
  auto model = std::make_shared<GnsModel>(m, rng);
  if (static_cast<std::int64_t>(state.size()) != model->num_parameters())
    return std::nullopt;
  model->load_state(state);
  return LearnedSimulator(std::move(model), std::move(f), Normalizer(s));
}

void save_meshnet_weights(const MeshNet& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GNS_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  wr(out, kMagic);
  wr(out, kVersion);
  wr(out, net.velocity_std());
  wr_vec(out, net.model().state());
}

bool load_meshnet_weights(MeshNet& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::uint32_t magic = 0, version = 0;
  double vel_std = 0.0;
  if (!rd(in, magic) || magic != kMagic) return false;
  if (!rd(in, version) || version != kVersion) return false;
  if (!rd(in, vel_std)) return false;
  std::vector<double> state;
  if (!rd_vec(in, state)) return false;
  if (static_cast<std::int64_t>(state.size()) !=
      net.model().num_parameters())
    return false;
  net.model().load_state(state);
  return true;
}

}  // namespace gns::core
