#include "core/serialize.hpp"

#include <cstring>
#include <fstream>
#include <type_traits>

namespace gns::core {

namespace {

constexpr std::uint32_t kMagic = 0x474e534d;  // "GNSM"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void wr(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
void wr_vec(std::ofstream& out, const std::vector<double>& v) {
  wr<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

/// Bounds-checked cursor over an in-memory checkpoint image. Loading the
/// whole file first means every length prefix can be validated against the
/// bytes that actually exist — a truncated or bit-flipped file fails a
/// bounds check instead of driving a multi-gigabyte resize() or a partial
/// read that leaves the caller half-mutated.
class ByteReader {
 public:
  explicit ByteReader(std::vector<char> bytes) : bytes_(std::move(bytes)) {}

  /// Reads the whole file; nullopt when it cannot be opened.
  static std::optional<ByteReader> from_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in.good()) return std::nullopt;
    const std::streamoff size = in.tellg();
    if (size < 0) return std::nullopt;
    std::vector<char> bytes(static_cast<std::size_t>(size));
    in.seekg(0);
    in.read(bytes.data(), size);
    if (!in.good() && size > 0) return std::nullopt;
    return ByteReader(std::move(bytes));
  }

  template <typename T>
  [[nodiscard]] bool rd(T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) return false;
    std::memcpy(&v, bytes_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return true;
  }

  [[nodiscard]] bool rd_vec(std::vector<double>& v) {
    std::uint64_t n = 0;
    if (!rd(n)) return false;
    if (n > remaining() / sizeof(double)) return false;  // truncated/corrupt
    v.resize(n);
    std::memcpy(v.data(), bytes_.data() + offset_, n * sizeof(double));
    offset_ += n * sizeof(double);
    return true;
  }

  [[nodiscard]] bool check_header() {
    std::uint32_t magic = 0, version = 0;
    return rd(magic) && magic == kMagic && rd(version) && version == kVersion;
  }

 private:
  [[nodiscard]] std::size_t remaining() const {
    return bytes_.size() - offset_;
  }

  std::vector<char> bytes_;
  std::size_t offset_ = 0;
};

}  // namespace

void save_simulator(const LearnedSimulator& sim, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GNS_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  wr(out, kMagic);
  wr(out, kVersion);
  const FeatureConfig& f = sim.features();
  wr(out, f.dim);
  wr(out, f.history);
  wr(out, f.connectivity_radius);
  wr_vec(out, f.domain_lo);
  wr_vec(out, f.domain_hi);
  wr<std::int32_t>(out, f.material_feature ? 1 : 0);
  wr(out, f.static_node_attrs);
  const GnsConfig& m = sim.model().config();
  wr(out, m.latent);
  wr(out, m.mlp_hidden);
  wr(out, m.mlp_layers);
  wr(out, m.message_passing_steps);
  wr<std::int32_t>(out, m.attention ? 1 : 0);
  const io::NormalizationStats& s = sim.normalizer().stats();
  wr_vec(out, s.vel_mean);
  wr_vec(out, s.vel_std);
  wr_vec(out, s.acc_mean);
  wr_vec(out, s.acc_std);
  wr_vec(out, sim.model().state());
}

std::optional<LearnedSimulator> load_simulator(const std::string& path) {
  auto reader = ByteReader::from_file(path);
  if (!reader || !reader->check_header()) return std::nullopt;
  ByteReader& in = *reader;

  FeatureConfig f;
  std::int32_t material = 0, attention = 0;
  if (!in.rd(f.dim) || !in.rd(f.history) || !in.rd(f.connectivity_radius) ||
      !in.rd_vec(f.domain_lo) || !in.rd_vec(f.domain_hi) ||
      !in.rd(material) || !in.rd(f.static_node_attrs)) {
    return std::nullopt;
  }
  f.material_feature = (material != 0);
  if (f.dim <= 0 || f.history <= 0 || f.static_node_attrs < 0 ||
      !(f.connectivity_radius > 0.0)) {
    return std::nullopt;
  }

  GnsConfig m;
  if (!in.rd(m.latent) || !in.rd(m.mlp_hidden) || !in.rd(m.mlp_layers) ||
      !in.rd(m.message_passing_steps) || !in.rd(attention)) {
    return std::nullopt;
  }
  m.attention = (attention != 0);
  if (m.latent <= 0 || m.mlp_hidden <= 0 || m.mlp_layers <= 0 ||
      m.message_passing_steps <= 0) {
    return std::nullopt;
  }
  m.node_in = f.node_feature_count();
  m.edge_in = f.edge_feature_count();
  m.out_dim = f.dim;

  io::NormalizationStats s;
  if (!in.rd_vec(s.vel_mean) || !in.rd_vec(s.vel_std) ||
      !in.rd_vec(s.acc_mean) || !in.rd_vec(s.acc_std)) {
    return std::nullopt;
  }
  std::vector<double> state;
  if (!in.rd_vec(state)) return std::nullopt;

  // Model/simulator constructors GNS_CHECK internal consistency; a corrupt
  // file that passes the parse but violates an invariant (e.g. stats of
  // the wrong width) must surface as nullopt, not as an exception.
  try {
    Rng rng(0);  // weights are overwritten immediately
    auto model = std::make_shared<GnsModel>(m, rng);
    if (static_cast<std::int64_t>(state.size()) != model->num_parameters())
      return std::nullopt;
    model->load_state(state);
    return LearnedSimulator(std::move(model), std::move(f), Normalizer(s));
  } catch (const CheckError&) {
    return std::nullopt;
  }
}

std::shared_ptr<const LearnedSimulator> load_simulator_shared(
    const std::string& path) {
  std::optional<LearnedSimulator> sim = load_simulator(path);
  if (!sim) return nullptr;
  return std::make_shared<const LearnedSimulator>(std::move(*sim));
}

void save_meshnet_weights(const MeshNet& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GNS_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  wr(out, kMagic);
  wr(out, kVersion);
  wr(out, net.velocity_std());
  wr_vec(out, net.model().state());
}

bool load_meshnet_weights(MeshNet& net, const std::string& path) {
  auto reader = ByteReader::from_file(path);
  if (!reader || !reader->check_header()) return false;
  double vel_std = 0.0;
  if (!reader->rd(vel_std)) return false;
  std::vector<double> state;
  if (!reader->rd_vec(state)) return false;
  if (static_cast<std::int64_t>(state.size()) !=
      net.model().num_parameters())
    return false;
  // All validation passed; only now mutate the target network.
  net.model().load_state(state);
  return true;
}

}  // namespace gns::core
