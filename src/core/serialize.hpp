#pragma once

/// \file serialize.hpp
/// Save/load of trained simulators. The bench harness trains models once
/// and caches them on disk so every table/figure bench can reuse the same
/// trained weights (and so re-runs are cheap); load validates that the
/// stored architecture matches before restoring weights.

#include <optional>
#include <string>

#include "core/meshnet.hpp"
#include "core/simulator.hpp"

namespace gns::core {

/// Writes feature config + model config + normalization stats + weights.
void save_simulator(const LearnedSimulator& sim, const std::string& path);

/// Reconstructs a simulator from disk; nullopt when the file is absent or
/// from an incompatible version.
[[nodiscard]] std::optional<LearnedSimulator> load_simulator(
    const std::string& path);

/// MeshNet weights round-trip (the mesh itself is rebuilt from the CFD
/// config by the caller; only weights + velocity scale are stored).
void save_meshnet_weights(const MeshNet& net, const std::string& path);
[[nodiscard]] bool load_meshnet_weights(MeshNet& net,
                                        const std::string& path);

}  // namespace gns::core
