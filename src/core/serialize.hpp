#pragma once

/// \file serialize.hpp
/// Save/load of trained simulators. The bench harness trains models once
/// and caches them on disk so every table/figure bench can reuse the same
/// trained weights (and so re-runs are cheap); load validates that the
/// stored architecture matches before restoring weights.

#include <memory>
#include <optional>
#include <string>

#include "core/meshnet.hpp"
#include "core/simulator.hpp"

namespace gns::core {

/// Writes feature config + model config + normalization stats + weights.
void save_simulator(const LearnedSimulator& sim, const std::string& path);

/// Reconstructs a simulator from disk; nullopt when the file is absent,
/// from an incompatible version, truncated, or otherwise corrupted. All
/// length fields are validated against the actual file size before any
/// allocation, so a corrupt header can neither crash the loader nor make
/// it reserve absurd buffers.
[[nodiscard]] std::optional<LearnedSimulator> load_simulator(
    const std::string& path);

/// Registry-friendly variant: the loaded simulator behind a shared-
/// ownership const handle (the serving subsystem's currency — rollout is
/// const and shares no mutable state, so one handle can back many
/// concurrent jobs). nullptr on any load failure.
[[nodiscard]] std::shared_ptr<const LearnedSimulator> load_simulator_shared(
    const std::string& path);

/// MeshNet weights round-trip (the mesh itself is rebuilt from the CFD
/// config by the caller; only weights + velocity scale are stored). Load
/// returns false on missing/truncated/corrupted files and in that case
/// leaves `net` completely untouched (no partial mutation).
void save_meshnet_weights(const MeshNet& net, const std::string& path);
[[nodiscard]] bool load_meshnet_weights(MeshNet& net,
                                        const std::string& path);

}  // namespace gns::core
