#include "core/gns.hpp"

#include "obs/obs.hpp"

namespace gns::core {

namespace {
ad::Mlp make_mlp(int in, int out, const GnsConfig& cfg, Rng& rng,
                 bool layer_norm) {
  return ad::Mlp(in, cfg.mlp_hidden, cfg.mlp_layers, out, rng, layer_norm);
}
}  // namespace

GnsModel::GnsModel(GnsConfig config, Rng& rng)
    : config_(config),
      node_encoder_(make_mlp(config.node_in, config.latent, config, rng,
                             /*layer_norm=*/true)),
      edge_encoder_(make_mlp(config.edge_in, config.latent, config, rng,
                             /*layer_norm=*/true)),
      decoder_(make_mlp(config.latent, config.out_dim, config, rng,
                        /*layer_norm=*/false)) {
  GNS_CHECK_MSG(config.node_in > 0 && config.edge_in > 0,
                "GnsConfig feature widths must be set");
  GNS_CHECK(config.message_passing_steps > 0);
  layers_.reserve(config.message_passing_steps);
  for (int m = 0; m < config.message_passing_steps; ++m) {
    ProcessorLayer layer{
        make_mlp(3 * config.latent, config.latent, config, rng,
                 /*layer_norm=*/true),
        make_mlp(2 * config.latent, config.latent, config, rng,
                 /*layer_norm=*/true),
        nullptr};
    if (config.attention) {
      layer.attention_mlp = std::make_unique<ad::Mlp>(
          3 * config.latent, config.mlp_hidden, 1, 1, rng,
          /*output_layer_norm=*/false);
    }
    layers_.push_back(std::move(layer));
  }
}

GnsOutput GnsModel::forward(const ad::Tensor& node_features,
                            const ad::Tensor& edge_features,
                            const graph::Graph& graph) const {
  return forward(node_features, edge_features, graph, GraphIndex(graph));
}

GnsOutput GnsModel::forward(const ad::Tensor& node_features,
                            const ad::Tensor& edge_features,
                            const graph::Graph& graph,
                            const GraphIndex& index) const {
  GNS_CHECK_MSG(node_features.cols() == config_.node_in,
                "node feature width mismatch: " << node_features.cols()
                                                << " vs " << config_.node_in);
  GNS_CHECK_MSG(edge_features.cols() == config_.edge_in,
                "edge feature width mismatch");
  GNS_CHECK_MSG(node_features.rows() == graph.num_nodes,
                "graph/node count mismatch");
  GNS_CHECK_MSG(edge_features.rows() == graph.num_edges(),
                "graph/edge count mismatch");
  GNS_CHECK_MSG(index.defined(), "GnsModel::forward with undefined index");
  GNS_CHECK_MSG(index.senders.size() == graph.num_edges() &&
                    index.senders.num_buckets() == graph.num_nodes,
                "GraphIndex does not match graph");

  GNS_TRACE_SCOPE("core.gns.forward");
  static auto& encode_ms =
      obs::MetricsRegistry::global().histogram("core.gns.encode_ms");
  static auto& process_ms =
      obs::MetricsRegistry::global().histogram("core.gns.process_ms");
  static auto& decode_ms =
      obs::MetricsRegistry::global().histogram("core.gns.decode_ms");

  ad::Tensor v, e;
  {
    GNS_TRACE_SCOPE("core.gns.encode");
    const obs::ScopedHistogramTimer phase_timer(encode_ms);
    v = node_encoder_.forward(node_features);
    e = edge_encoder_.forward(edge_features);
  }

  {
    const obs::ScopedHistogramTimer phase_timer(process_ms);
    int round = 0;
    for (const auto& layer : layers_) {
      GNS_TRACE_SCOPE_I("core.gns.round", round++);
      // Edge update: φ^e(e_k, v_sender, v_receiver) + residual.
      ad::Tensor vs = ad::gather_rows(v, index.senders);
      ad::Tensor vr = ad::gather_rows(v, index.receivers);
      ad::Tensor e_in = ad::concat_cols({e, vs, vr});
      ad::Tensor e_new = ad::add(layer.edge_mlp.forward(e_in), e);

      // Optional attention: per-receiver softmax over incoming messages.
      ad::Tensor weighted = e_new;
      if (layer.attention_mlp) {
        ad::Tensor score = layer.attention_mlp->forward(e_in);
        ad::Tensor alpha = ad::segment_softmax(score, index.receivers);
        weighted = ad::mul(e_new, alpha);  // [E,L] * [E,1] broadcast
      }

      // Node update: φ^v(v_i, Σ incoming messages) + residual.
      ad::Tensor agg = ad::scatter_add_rows(weighted, index.receivers);
      ad::Tensor v_in = ad::concat_cols({v, agg});
      ad::Tensor v_new = ad::add(layer.node_mlp.forward(v_in), v);

      v = v_new;
      e = e_new;
    }
  }

  GnsOutput out;
  {
    GNS_TRACE_SCOPE("core.gns.decode");
    const obs::ScopedHistogramTimer phase_timer(decode_ms);
    out.acceleration = decoder_.forward(v);
  }
  out.messages = e;
  return out;
}

std::vector<ad::Tensor> GnsModel::parameters() const {
  std::vector<ad::Tensor> params;
  auto append = [&params](const ad::Module& module) {
    auto p = module.parameters();
    params.insert(params.end(), p.begin(), p.end());
  };
  append(node_encoder_);
  append(edge_encoder_);
  for (const auto& layer : layers_) {
    append(layer.edge_mlp);
    append(layer.node_mlp);
    if (layer.attention_mlp) append(*layer.attention_mlp);
  }
  append(decoder_);
  return params;
}

}  // namespace gns::core
