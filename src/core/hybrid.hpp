#pragma once

/// \file hybrid.hpp
/// Hybrid GNS/MPM controller (§4, Figs 3–4).
///
/// Three phases, repeated:
///  * Warm-up — the GNS needs the previous C velocity steps; the first
///    window_size() frames come from the MPM physics solver with the real
///    boundary conditions.
///  * GNS rollout — M learned frames (each replacing `substeps` MPM steps).
///  * Iterative refinement — the GNS output is handed back to the MPM
///    solver for K frames, re-imposing conservation laws and pulling the
///    state back onto the physics manifold before the next GNS leg.
///
/// The controller records which solver produced every frame plus per-phase
/// wall time, so the benches can report both the error evolution (Fig 4)
/// and the speedup split of §4 ("most of the computation time is still
/// spent on the n·K runs").

#include "core/simulator.hpp"
#include "mpm/solver.hpp"
#include "util/timer.hpp"

namespace gns::core {

enum class FrameSource : unsigned char { MpmWarmup = 0, Gns = 1,
                                         MpmRefine = 2 };

struct HybridConfig {
  int gns_frames = 10;   ///< M: learned frames per cycle
  int refine_frames = 5; ///< K: physics frames per cycle
  int substeps = 20;     ///< MPM steps per recorded frame
};

struct HybridResult {
  /// All recorded frames including the initial state (flat [N*2] layout).
  std::vector<std::vector<double>> frames;
  std::vector<FrameSource> sources;
  double mpm_seconds = 0.0;
  double gns_seconds = 0.0;
  int gns_frame_count = 0;
  int mpm_frame_count = 0;
};

/// Runs the hybrid loop for `total_frames` recorded frames (frame 0 is the
/// initial state). The solver is taken by value: the controller owns and
/// mutates its copy. `material_param` conditions the GNS (tan φ).
[[nodiscard]] HybridResult run_hybrid(const LearnedSimulator& sim,
                                      mpm::MpmSolver solver,
                                      const HybridConfig& config,
                                      int total_frames,
                                      double material_param);

/// Pure-MPM reference with identical recording cadence (also the speedup
/// baseline). Returns frames and wall time.
struct MpmReference {
  std::vector<std::vector<double>> frames;
  double seconds = 0.0;
};
[[nodiscard]] MpmReference run_mpm_reference(mpm::MpmSolver solver,
                                             int total_frames, int substeps);

/// Pure-GNS rollout from an MPM warm-up (the §3.1 configuration): warm-up
/// window frames from MPM, then all remaining frames learned.
[[nodiscard]] HybridResult run_pure_gns(const LearnedSimulator& sim,
                                        mpm::MpmSolver solver,
                                        int total_frames, int substeps,
                                        double material_param);

/// Per-frame mean particle-position error between two recorded runs,
/// normalized by `length_scale`.
[[nodiscard]] std::vector<double> frame_errors(
    const std::vector<std::vector<double>>& a,
    const std::vector<std::vector<double>>& b, double length_scale);

}  // namespace gns::core
