#pragma once

/// \file meshnet.hpp
/// MeshGraphNet (§3.2, Fig 2): the Encode–Process–Decode architecture
/// applied to a simulation mesh instead of a particle cloud. Nodes are mesh
/// vertices (here: CFD cell centers), edges are fixed mesh edges carrying
/// relative mesh-space coordinates, node features combine the dynamical
/// quantity (velocity) with a one-hot node type (fluid / solid / inflow /
/// outflow), and the model predicts the per-node velocity change to the
/// next frame, integrated forward for rollouts.

#include <memory>

#include "cfd/cfd.hpp"
#include "core/gns.hpp"

namespace gns::core {

struct MeshNetConfig {
  int latent = 32;
  int mlp_hidden = 32;
  int mlp_layers = 2;
  int message_passing_steps = 5;
};

/// Static mesh description extracted from a CFD solver.
struct Mesh {
  graph::Graph graph;             ///< 4-neighborhood, both directions
  GraphIndex index;               ///< CSR maps for `graph`, built once
  ad::Tensor edge_features;       ///< [E,3]: dx, dy, dist (mesh units)
  ad::Tensor node_type_onehot;    ///< [N,4]
  std::vector<cfd::CellType> types;
  int nx = 0, ny = 0;
};

/// Builds the mesh graph of a CFD domain (all cells are nodes; solid cells
/// participate so the network can learn the boundary behaviour from their
/// type, exactly as MeshGraphNet encodes obstacle nodes).
[[nodiscard]] Mesh build_mesh(const cfd::CfdSolver& solver);

/// The learned mesh simulator.
class MeshNet {
 public:
  MeshNet(const Mesh& mesh, const MeshNetConfig& config, double velocity_std,
          std::uint64_t seed = 7);

  /// Predicted velocity delta [N,2] (physical units) for the given
  /// velocity state [N,2].
  [[nodiscard]] ad::Tensor predict_delta(const ad::Tensor& velocities) const;

  /// One-step prediction: v + Δv.
  [[nodiscard]] std::vector<double> step(
      const std::vector<double>& velocities) const;

  /// Autoregressive rollout from an initial state.
  [[nodiscard]] std::vector<std::vector<double>> rollout(
      const std::vector<double>& initial, int steps) const;

  [[nodiscard]] GnsModel& model() { return *model_; }
  [[nodiscard]] const GnsModel& model() const { return *model_; }
  [[nodiscard]] const Mesh& mesh() const { return mesh_; }
  [[nodiscard]] double velocity_std() const { return velocity_std_; }

 private:
  Mesh mesh_;
  std::shared_ptr<GnsModel> model_;
  double velocity_std_;  ///< normalization scale for velocities and deltas
};

struct MeshNetTrainConfig {
  int steps = 400;
  double lr = 1e-3;
  double lr_final = 2e-4;
  double noise_std = 0.0;   ///< optional input-velocity jitter
  double grad_clip = 1.0;
  std::uint64_t seed = 3;
  int log_every = 0;
};

/// Trains on consecutive frame pairs of a CFD rollout (frames in
/// cfd::CfdRollout layout). Returns per-step losses.
std::vector<double> train_meshnet(
    MeshNet& net, const std::vector<std::vector<double>>& frames,
    const MeshNetTrainConfig& config);

/// RMSE between two flat velocity fields.
[[nodiscard]] double field_rmse(const std::vector<double>& a,
                                const std::vector<double>& b);

}  // namespace gns::core
