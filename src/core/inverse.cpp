#include "core/inverse.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace gns::core {

ad::Tensor smooth_runout(const ad::Tensor& positions, double temperature) {
  GNS_CHECK(temperature > 0.0);
  // x column only (runout is the rightmost front).
  ad::Tensor x = (positions.cols() == 1)
                     ? positions
                     : ad::slice_cols(positions, 0, 1);
  // Shift by the (constant) hard max for overflow safety; the shift is
  // detached so it contributes no gradient and cancels exactly in value.
  double hard_max = -1e300;
  for (int i = 0; i < x.rows(); ++i) hard_max = std::max(hard_max, x.at(i, 0));
  ad::Tensor shifted = ad::mul_scalar(ad::add_scalar(x, -hard_max),
                                      1.0 / temperature);
  ad::Tensor lse = ad::log_op(ad::sum(ad::exp_op(shifted)));
  return ad::add_scalar(ad::mul_scalar(lse, temperature), hard_max);
}

double smooth_runout_value(const std::vector<double>& frame, int dim,
                           double temperature) {
  GNS_CHECK(dim > 0 && frame.size() % dim == 0);
  const int n = static_cast<int>(frame.size()) / dim;
  double hard_max = -1e300;
  for (int i = 0; i < n; ++i) hard_max = std::max(hard_max, frame[i * dim]);
  double acc = 0.0;
  for (int i = 0; i < n; ++i)
    acc += std::exp((frame[i * dim] - hard_max) / temperature);
  return hard_max + temperature * std::log(acc);
}

InverseResult solve_friction_angle(const LearnedSimulator& sim,
                                   const Window& window, double target_runout,
                                   double initial_friction_deg,
                                   const InverseConfig& config) {
  GNS_CHECK_MSG(sim.features().material_feature,
                "inverse problem needs a material-conditioned simulator");
  const double min_mat =
      std::tan(config.min_friction_deg * M_PI / 180.0);
  const double max_mat =
      std::tan(config.max_friction_deg * M_PI / 180.0);

  double material = std::tan(initial_friction_deg * M_PI / 180.0);
  InverseResult result;
  result.iterates.reserve(config.max_iterations);

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    // Fresh leaf each iteration: the tape must start at φ.
    ad::Tensor theta = ad::Tensor::scalar(material, /*requires_grad=*/true);
    SceneContext context;
    context.material = theta;

    // Detached copy of the seed window (gradient flows to φ only, as in
    // the paper's experiment).
    Window seed;
    seed.reserve(window.size());
    for (const auto& t : window) seed.push_back(t.detach());

    auto frames = sim.rollout_diff(seed, config.rollout_steps, context);
    ad::Tensor runout = smooth_runout(frames.back(), config.smooth_temp);
    ad::Tensor err = ad::add_scalar(runout, -target_runout);
    ad::Tensor loss = ad::square(err);
    loss.backward();

    InverseIterate it;
    it.iteration = iter;
    it.material_param = material;
    it.friction_deg = std::atan(material) * 180.0 / M_PI;
    it.runout = runout.item();
    it.loss = loss.item();
    it.gradient = theta.grad().empty() ? 0.0 : theta.grad()[0];
    result.iterates.push_back(it);
    GNS_DEBUG("inverse iter " << iter << " phi=" << it.friction_deg
                              << " runout=" << it.runout
                              << " loss=" << it.loss
                              << " grad=" << it.gradient);

    if (it.loss < config.loss_tol) {
      result.converged = true;
      break;
    }
    material = std::clamp(material - config.lr * it.gradient, min_mat,
                          max_mat);
  }
  return result;
}

}  // namespace gns::core
