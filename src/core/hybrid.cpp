#include "core/hybrid.hpp"

#include <cmath>

#include "obs/obs.hpp"

namespace gns::core {

namespace {

std::vector<double> solver_frame(const mpm::MpmSolver& solver) {
  const auto& pos = solver.particles().position;
  std::vector<double> flat(2 * pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    flat[2 * i] = pos[i].x;
    flat[2 * i + 1] = pos[i].y;
  }
  return flat;
}

/// Converts two consecutive recorded frames into MPM particle kinematics
/// (velocity = frame difference / frame physical time).
void push_frames_to_solver(mpm::MpmSolver& solver,
                           const std::vector<double>& prev,
                           const std::vector<double>& curr,
                           double frame_seconds) {
  const int n = solver.particles().size();
  std::vector<mpm::Vec2d> x(n), v(n);
  const double inv_dt = 1.0 / frame_seconds;
  for (int i = 0; i < n; ++i) {
    x[i] = {curr[2 * i], curr[2 * i + 1]};
    v[i] = {(curr[2 * i] - prev[2 * i]) * inv_dt,
            (curr[2 * i + 1] - prev[2 * i + 1]) * inv_dt};
  }
  solver.set_kinematics(x, v);
}

}  // namespace

HybridResult run_hybrid(const LearnedSimulator& sim, mpm::MpmSolver solver,
                        const HybridConfig& config, int total_frames,
                        double material_param) {
  GNS_CHECK(config.gns_frames > 0 && config.refine_frames >= 0 &&
            config.substeps > 0);
  const int window = sim.features().window_size();
  GNS_CHECK_MSG(total_frames > window,
                "hybrid run shorter than the GNS warm-up window");

  HybridResult result;
  result.frames.reserve(total_frames);
  result.sources.reserve(total_frames);
  AccumulatingTimer mpm_timer, gns_timer;
  static auto& gns_window_ms =
      obs::MetricsRegistry::global().histogram("core.hybrid.gns_window_ms");
  static auto& mpm_window_ms =
      obs::MetricsRegistry::global().histogram("core.hybrid.mpm_window_ms");

  SceneContext context;
  if (sim.features().material_feature) {
    context.material = ad::Tensor::scalar(material_param);
  }

  // One Verlet skin list shared by every GNS leg: the particle set never
  // changes, so reuse can carry across legs (the first step after an MPM
  // leg triggers a rebuild only if particles drifted past skin/2).
  const double skin = graph::default_skin_fraction() *
                      sim.features().connectivity_radius;
  graph::CellList neighbor_cache = make_rollout_cells(sim.features(), skin);

  // Frame 0 + warm-up: window_size frames total from MPM.
  result.frames.push_back(solver_frame(solver));
  result.sources.push_back(FrameSource::MpmWarmup);
  double frame_seconds = 0.0;
  {
    GNS_TRACE_SCOPE("core.hybrid.warmup");
    const ScopedAccumulate accumulate(mpm_timer);
    const obs::ScopedHistogramTimer window_timer(mpm_window_ms);
    while (static_cast<int>(result.frames.size()) < window &&
           static_cast<int>(result.frames.size()) < total_frames) {
      frame_seconds = solver.run(config.substeps);
      result.frames.push_back(solver_frame(solver));
      result.sources.push_back(FrameSource::MpmWarmup);
      ++result.mpm_frame_count;
    }
  }

  // Main loop: M learned frames, K physics frames, repeat.
  while (static_cast<int>(result.frames.size()) < total_frames) {
    {
      // --- GNS leg ---
      GNS_TRACE_SCOPE("core.hybrid.gns_window");
      const ScopedAccumulate accumulate(gns_timer);
      const obs::ScopedHistogramTimer window_timer(gns_window_ms);
      Window win;
      win.reserve(window);
      const int have = static_cast<int>(result.frames.size());
      for (int t = have - window; t < have; ++t)
        win.push_back(frame_to_tensor(result.frames[t], 2));
      const int want_gns =
          std::min(config.gns_frames,
                   total_frames - static_cast<int>(result.frames.size()));
      auto gns_frames = sim.rollout(win, want_gns, context, &neighbor_cache);
      for (auto& f : gns_frames) {
        result.frames.push_back(std::move(f));
        result.sources.push_back(FrameSource::Gns);
        ++result.gns_frame_count;
      }
    }
    if (static_cast<int>(result.frames.size()) >= total_frames) break;

    {
      // --- Refinement leg: hand state back to physics ---
      GNS_TRACE_SCOPE("core.hybrid.mpm_window");
      const ScopedAccumulate accumulate(mpm_timer);
      const obs::ScopedHistogramTimer window_timer(mpm_window_ms);
      const auto& curr = result.frames.back();
      const auto& prev = result.frames[result.frames.size() - 2];
      push_frames_to_solver(solver, prev, curr, frame_seconds);
      const int want_mpm =
          std::min(config.refine_frames,
                   total_frames - static_cast<int>(result.frames.size()));
      for (int k = 0; k < want_mpm; ++k) {
        frame_seconds = solver.run(config.substeps);
        result.frames.push_back(solver_frame(solver));
        result.sources.push_back(FrameSource::MpmRefine);
        ++result.mpm_frame_count;
      }
    }
  }

  result.mpm_seconds = mpm_timer.total_seconds();
  result.gns_seconds = gns_timer.total_seconds();
  return result;
}

MpmReference run_mpm_reference(mpm::MpmSolver solver, int total_frames,
                               int substeps) {
  GNS_CHECK(total_frames > 0 && substeps > 0);
  MpmReference ref;
  ref.frames.reserve(total_frames);
  Timer timer;
  ref.frames.push_back(solver_frame(solver));
  for (int f = 1; f < total_frames; ++f) {
    solver.run(substeps);
    ref.frames.push_back(solver_frame(solver));
  }
  ref.seconds = timer.seconds();
  return ref;
}

HybridResult run_pure_gns(const LearnedSimulator& sim, mpm::MpmSolver solver,
                          int total_frames, int substeps,
                          double material_param) {
  HybridConfig config;
  config.gns_frames = total_frames;  // one GNS leg, no refinement
  config.refine_frames = 0;
  config.substeps = substeps;
  return run_hybrid(sim, std::move(solver), config, total_frames,
                    material_param);
}

std::vector<double> frame_errors(const std::vector<std::vector<double>>& a,
                                 const std::vector<std::vector<double>>& b,
                                 double length_scale) {
  const std::size_t n = std::min(a.size(), b.size());
  std::vector<double> errors(n, 0.0);
  for (std::size_t t = 0; t < n; ++t)
    errors[t] = position_error(a[t], b[t], 2, length_scale);
  return errors;
}

}  // namespace gns::core
