#include "core/batched_simulator.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace gns::core {

BatchedSimulator::BatchedSimulator(
    std::shared_ptr<const LearnedSimulator> simulator)
    : sim_(std::move(simulator)) {
  GNS_CHECK_MSG(sim_ != nullptr, "BatchedSimulator needs a simulator");
}

std::vector<ad::Tensor> BatchedSimulator::step(
    const std::vector<Window>& windows,
    const std::vector<SceneContext>& contexts, graph::GraphBatch* out_batch,
    const std::vector<graph::CellList*>& neighbor_caches) const {
  GNS_TRACE_SCOPE("core.batched.step");
  static auto& step_ms =
      obs::MetricsRegistry::global().histogram("core.batched.step_ms");
  static auto& steps_total =
      obs::MetricsRegistry::global().counter("core.batched.member_steps");
  const obs::ScopedHistogramTimer step_timer(step_ms);

  const int b = static_cast<int>(windows.size());
  GNS_CHECK_MSG(b > 0, "batched step needs at least one member");
  GNS_CHECK_MSG(static_cast<int>(contexts.size()) == b,
                "need one scene context per member");
  steps_total.add(static_cast<std::uint64_t>(b));
  GNS_CHECK_MSG(neighbor_caches.empty() ||
                    static_cast<int>(neighbor_caches.size()) == b,
                "need one neighbor cache entry per member (or none)");
  const FeatureConfig& fc = sim_->features();
  const Normalizer& norm = sim_->normalizer();

  // Per-member neighbor lists on local indices, then the block-diagonal
  // merge. Mirrors the single-graph contract: every member must have edges.
  std::vector<graph::Graph> graphs;
  graphs.reserve(windows.size());
  for (int g = 0; g < b; ++g) {
    GNS_CHECK_MSG(static_cast<int>(windows[g].size()) == fc.window_size(),
                  "batch member " << g << " window needs "
                                  << fc.window_size() << " frames");
    graph::CellList* cache =
        neighbor_caches.empty() ? nullptr : neighbor_caches[g];
    graphs.push_back(cache != nullptr
                         ? build_graph_cached(fc, windows[g].back(), *cache)
                         : build_graph(fc, windows[g].back()));
    GNS_CHECK_MSG(graphs.back().num_edges() > 0,
                  "batch member " << g
                                  << " has no edges — connectivity radius "
                                     "too small?");
  }
  graph::GraphBatch batch = graph::batch_graphs(graphs);
  // One validated CSR index per merged graph, shared by the edge-feature
  // builder and every message round.
  const GraphIndex index(batch.merged);

  ad::Tensor node_feats, edge_feats, merged_newest;
  {
    GNS_TRACE_SCOPE("core.batched.features");
    node_feats = build_batched_node_features(fc, norm, windows, contexts);
    if (b == 1) {
      merged_newest = windows[0].back();
    } else {
      std::vector<ad::Tensor> newest;
      newest.reserve(windows.size());
      for (const Window& w : windows) newest.push_back(w.back());
      merged_newest = ad::concat_rows(newest);
    }
    edge_feats = build_batched_edge_features(fc, merged_newest, batch, index);
  }

  GnsOutput out =
      sim_->model().forward(node_feats, edge_feats, batch.merged, index);
  ad::Tensor accel = norm.denormalize_acceleration(out.acceleration);

  // Scatter back per member and integrate (same op order as
  // LearnedSimulator::step: v' = v + a; x' = x + v').
  std::vector<ad::Tensor> next(windows.size());
  for (int g = 0; g < b; ++g) {
    ad::Tensor a_g =
        b == 1 ? accel
               : ad::slice_rows(accel, batch.node_offset[g], batch.nodes_of(g));
    const ad::Tensor& xt = windows[g].back();
    const ad::Tensor& xprev = windows[g][windows[g].size() - 2];
    next[g] = ad::add(xt, ad::add(ad::sub(xt, xprev), a_g));
  }
  if (out_batch != nullptr) *out_batch = std::move(batch);
  return next;
}

std::vector<std::vector<std::vector<double>>> BatchedSimulator::rollout(
    const std::vector<Window>& initial_windows, const std::vector<int>& steps,
    const std::vector<SceneContext>& contexts, const StepGate& gate) const {
  GNS_TRACE_SCOPE("core.batched.rollout");
  BatchedRollout rollout(sim_, initial_windows, steps, contexts);
  while (rollout.step_once(gate)) {
  }
  return rollout.take_frames();
}

BatchedRollout::BatchedRollout(
    std::shared_ptr<const LearnedSimulator> simulator,
    const std::vector<Window>& initial_windows, const std::vector<int>& steps,
    const std::vector<SceneContext>& contexts)
    : batched_(std::move(simulator)), steps_(steps), contexts_(contexts) {
  const int b = static_cast<int>(initial_windows.size());
  GNS_CHECK_MSG(b > 0, "batched rollout needs at least one member");
  GNS_CHECK_MSG(static_cast<int>(steps.size()) == b &&
                    static_cast<int>(contexts.size()) == b,
                "batched rollout needs one step count and context per member");
  for (int s : steps) GNS_CHECK_MSG(s > 0, "steps must be positive");

  ad::NoGradGuard no_grad;
  windows_.resize(initial_windows.size());
  for (int g = 0; g < b; ++g) {
    windows_[g].reserve(initial_windows[g].size());
    for (const auto& t : initial_windows[g])
      windows_[g].push_back(t.detach());
  }

  // One Verlet skin list per member, persisting across steps (members are
  // compacted out of the batch but their caches stay put).
  const FeatureConfig& fc = batched_.simulator().features();
  const double skin =
      graph::default_skin_fraction() * fc.connectivity_radius;
  caches_.reserve(initial_windows.size());
  for (int g = 0; g < b; ++g)
    caches_.push_back(
        std::make_unique<graph::CellList>(make_rollout_cells(fc, skin)));

  frames_.resize(initial_windows.size());
  for (int g = 0; g < b; ++g)
    frames_[g].reserve(static_cast<std::size_t>(steps[g]));

  active_.resize(initial_windows.size());
  for (int g = 0; g < b; ++g) active_[g] = g;
}

bool BatchedRollout::step_once(const BatchedSimulator::StepGate& gate) {
  if (active_.empty()) return false;
  ad::NoGradGuard no_grad;
  if (gate) {
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [&gate](int g) { return !gate(g); }),
                  active_.end());
    if (active_.empty()) return false;
  }

  step_windows_.clear();
  step_contexts_.clear();
  step_caches_.clear();
  for (int g : active_) {
    step_windows_.push_back(windows_[g]);
    step_contexts_.push_back(contexts_[g]);
    step_caches_.push_back(caches_[g].get());
  }
  // Per-step arena frame: tensors from this step are recycled once the
  // sliding windows release them.
  ad::ArenaScope arena_frame;
  std::vector<ad::Tensor> next =
      batched_.step(step_windows_, step_contexts_, nullptr, step_caches_);

  std::vector<int> still_active;
  still_active.reserve(active_.size());
  for (std::size_t k = 0; k < active_.size(); ++k) {
    const int g = active_[k];
    frames_[g].push_back(tensor_to_frame(next[k]));
    windows_[g].erase(windows_[g].begin());
    windows_[g].push_back(next[k]);
    if (static_cast<int>(frames_[g].size()) < steps_[g])
      still_active.push_back(g);
  }
  active_.swap(still_active);
  return !active_.empty();
}

}  // namespace gns::core
