#pragma once

/// \file trainer.hpp
/// GNS training loop (§3.1). One gradient step = one (trajectory, time)
/// sample: corrupt the position window with random-walk noise (the standard
/// GNS trick that teaches the model to correct its own rollout drift),
/// predict the normalized acceleration, regress against the noise-adjusted
/// finite-difference target with MSE, and optionally add an L1 penalty on
/// the edge messages (§6 interpretability: sparsify the learned
/// interaction code).

#include <functional>

#include "ad/optim.hpp"
#include "core/simulator.hpp"

namespace gns::core {

struct TrainConfig {
  int steps = 2000;
  double lr = 1e-3;                 ///< Adam learning rate (start)
  double lr_final = 1e-4;           ///< exponential decay target
  double noise_std = 3e-4;          ///< random-walk noise per frame [m]
  double l1_message_weight = 0.0;   ///< §6 sparsity penalty
  double grad_clip = 1.0;           ///< global-norm clip (0 disables)
  std::uint64_t seed = 17;
  int log_every = 0;                ///< 0 = silent
};

struct TrainReport {
  std::vector<double> loss_history;    ///< per-step training loss
  double final_loss_ema = 0.0;         ///< smoothed terminal loss
  std::int64_t steps = 0;
};

/// Trains `sim`'s model in place on `dataset`. The per-trajectory
/// material_param is fed as the material feature when the feature config
/// asks for one. `progress` (optional) is invoked every log_every steps
/// with (step, smoothed loss).
TrainReport train_gns(
    LearnedSimulator& sim, const io::Dataset& dataset,
    const TrainConfig& config,
    const std::function<void(int, double)>& progress = nullptr);

/// Builds a GNS + simulator pair wired to a dataset: computes
/// normalization stats, sizes the model's input widths from the feature
/// config, and returns the ready-to-train simulator.
[[nodiscard]] LearnedSimulator make_simulator(const io::Dataset& dataset,
                                              FeatureConfig features,
                                              GnsConfig model_config,
                                              std::uint64_t seed = 42);

}  // namespace gns::core
