#include "core/trainer.hpp"

#include <cmath>

#include "obs/obs.hpp"
#include "util/logging.hpp"

namespace gns::core {

LearnedSimulator make_simulator(const io::Dataset& dataset,
                                FeatureConfig features,
                                GnsConfig model_config, std::uint64_t seed) {
  GNS_CHECK_MSG(dataset.size() > 0, "make_simulator on empty dataset");
  const io::Trajectory& first = dataset.trajectories.front();
  GNS_CHECK_MSG(first.dim == features.dim,
                "dataset dim " << first.dim << " vs feature dim "
                               << features.dim);
  // Default domain bounds from the data when the caller left them empty.
  if (static_cast<int>(features.domain_lo.size()) < features.dim &&
      !first.domain_lo.empty()) {
    features.domain_lo = first.domain_lo;
    features.domain_hi = first.domain_hi;
  }
  Normalizer norm(io::compute_stats(dataset));
  model_config.node_in = features.node_feature_count();
  model_config.edge_in = features.edge_feature_count();
  model_config.out_dim = features.dim;
  Rng rng(seed);
  auto model = std::make_shared<GnsModel>(model_config, rng);
  return LearnedSimulator(std::move(model), std::move(features),
                          std::move(norm));
}

TrainReport train_gns(LearnedSimulator& sim, const io::Dataset& dataset,
                      const TrainConfig& config,
                      const std::function<void(int, double)>& progress) {
  GNS_CHECK_MSG(dataset.size() > 0, "train_gns on empty dataset");
  const FeatureConfig& feats = sim.features();
  const int window = feats.window_size();
  for (const auto& traj : dataset.trajectories) {
    GNS_CHECK_MSG(traj.num_frames() >= window + 1,
                  "trajectory too short to train on (needs "
                      << window + 1 << " frames)");
  }

  Rng rng(config.seed);
  ad::Adam opt(sim.model().parameters(), config.lr);
  const double lr_decay =
      (config.steps > 1)
          ? std::pow(config.lr_final / config.lr,
                     1.0 / static_cast<double>(config.steps - 1))
          : 1.0;

  TrainReport report;
  report.loss_history.reserve(config.steps);
  double ema = 0.0;
  bool ema_init = false;

  static auto& forward_ms =
      obs::MetricsRegistry::global().histogram("core.trainer.forward_ms");
  static auto& backward_ms =
      obs::MetricsRegistry::global().histogram("core.trainer.backward_ms");
  static auto& optimizer_ms =
      obs::MetricsRegistry::global().histogram("core.trainer.optimizer_ms");
  static auto& step_count =
      obs::MetricsRegistry::global().counter("core.trainer.steps");

  for (int step = 0; step < config.steps; ++step) {
    GNS_TRACE_SCOPE_I("core.trainer.step", step);
    // Per-step arena frame: the tape from this step (freed when `loss`
    // and `win` go out of scope) is recycled into the next step's ops.
    ad::ArenaScope arena_frame;
    step_count.add();
    const auto& traj = dataset.trajectories[rng.uniform_index(
        dataset.trajectories.size())];
    // Sample t so frames [t, t+window] exist: window positions + target.
    const int t0 = static_cast<int>(
        rng.uniform_index(traj.num_frames() - window));
    const int n = traj.num_particles;
    const int dim = traj.dim;

    // Random-walk noise: per-frame velocity noise accumulates into the
    // position window; the last window position's accumulated noise also
    // perturbs the target acceleration so the model learns to pull the
    // system back toward the data manifold.
    std::vector<std::vector<double>> noisy(window);
    std::vector<double> walk(n * dim, 0.0);
    const double step_std =
        config.noise_std / std::sqrt(static_cast<double>(feats.history));
    for (int w = 0; w < window; ++w) {
      noisy[w] = traj.frames[t0 + w];
      if (w > 0 && config.noise_std > 0.0) {
        for (int i = 0; i < n * dim; ++i)
          walk[i] += rng.gauss(0.0, step_std);
      }
      for (int i = 0; i < n * dim; ++i) noisy[w][i] += walk[i];
    }

    Window win;
    win.reserve(window);
    for (const auto& frame : noisy) win.push_back(frame_to_tensor(frame, dim));

    const SceneContext context = SceneContext::from_trajectory(feats, traj);

    // Target acceleration adjusted for the injected noise: the model should
    // predict the acceleration that lands the *clean* next frame from the
    // *noisy* current state: a = x_clean(t+1) − 2 x_noisy(t) + x_noisy(t−1).
    std::vector<ad::Real> target(n * dim);
    const auto& clean_next = traj.frames[t0 + window];
    for (int i = 0; i < n * dim; ++i) {
      target[i] = clean_next[i] - 2.0 * noisy[window - 1][i] +
                  noisy[window - 2][i];
    }
    ad::Tensor target_acc =
        ad::Tensor::from_vector(n, dim, std::move(target));

    // Forward in normalized space.
    ad::Tensor loss;
    {
      GNS_TRACE_SCOPE("core.trainer.forward");
      const obs::ScopedHistogramTimer phase_timer(forward_ms);
      const ad::Tensor& newest = win.back();
      const graph::Graph graph = build_graph(feats, newest);
      const GraphIndex graph_index(graph);
      ad::Tensor node_feats =
          build_node_features(feats, sim.normalizer(), win, context);
      ad::Tensor edge_feats =
          build_edge_features(feats, newest, graph, graph_index);
      GnsOutput out =
          sim.model().forward(node_feats, edge_feats, graph, graph_index);
      ad::Tensor target_norm =
          sim.normalizer().normalize_acceleration(target_acc);
      loss = ad::mse_loss(out.acceleration, target_norm);
      if (config.l1_message_weight > 0.0) {
        loss = ad::add(loss, ad::mul_scalar(ad::l1_norm(out.messages),
                                            config.l1_message_weight));
      }
    }

    {
      GNS_TRACE_SCOPE("core.trainer.backward");
      const obs::ScopedHistogramTimer phase_timer(backward_ms);
      opt.zero_grad();
      loss.backward();
    }

    {
      GNS_TRACE_SCOPE("core.trainer.optimizer");
      const obs::ScopedHistogramTimer phase_timer(optimizer_ms);
      if (config.grad_clip > 0.0) opt.clip_grad_norm(config.grad_clip);
      opt.set_lr(config.lr * std::pow(lr_decay, step));
      opt.step();
    }

    const double l = loss.item();
    report.loss_history.push_back(l);
    ema = ema_init ? 0.98 * ema + 0.02 * l : l;
    ema_init = true;
    if (config.log_every > 0 && (step + 1) % config.log_every == 0) {
      GNS_INFO("train step " << step + 1 << "/" << config.steps
                             << " loss_ema=" << ema);
      if (progress) progress(step + 1, ema);
    }
  }
  report.final_loss_ema = ema;
  report.steps = config.steps;
  return report;
}

}  // namespace gns::core
