#pragma once

/// \file simulator.hpp
/// LearnedSimulator: the GNS model wrapped with feature construction,
/// normalization, and the semi-implicit Euler integrator that turns
/// predicted accelerations into rollouts (§3: "GNS uses semi-implicit Euler
/// integration to update the next state based on the predicted
/// accelerations").
///
/// Positions are in frame units: one GNS step spans `substeps` MPM steps of
/// the generating simulation, and velocity/acceleration are first/second
/// position differences per frame (the frame dt is folded into the learned
/// quantities, as in the reference GNS).

#include <memory>

#include "core/features.hpp"
#include "core/gns.hpp"
#include "io/trajectory.hpp"

namespace gns::core {

/// A position window: the last window_size() frames, oldest first, each an
/// [N, dim] tensor.
using Window = std::vector<ad::Tensor>;

class LearnedSimulator {
 public:
  LearnedSimulator(std::shared_ptr<GnsModel> model, FeatureConfig features,
                   Normalizer normalizer);

  /// Raw model output (normalized acceleration + edge messages) for one
  /// window; exposes the graph when the caller needs edge endpoints (the
  /// §6 interpretability pipeline does). When `neighbor_cache` is given it
  /// is reused across calls (Verlet skin list, see
  /// graph/neighbor_search.hpp) — edges are identical to a fresh build.
  [[nodiscard]] GnsOutput forward_raw(
      const Window& window, const SceneContext& context,
      graph::Graph* out_graph = nullptr,
      graph::CellList* neighbor_cache = nullptr) const;

  /// Predicted acceleration in frame units (denormalized), differentiable
  /// through positions and the scene context.
  [[nodiscard]] ad::Tensor predict_acceleration(
      const Window& window, const SceneContext& context,
      graph::CellList* neighbor_cache = nullptr) const;

  /// One integrator step: returns x_{t+1} = x_t + (x_t − x_{t−1}) + a.
  [[nodiscard]] ad::Tensor step(const Window& window,
                                const SceneContext& context,
                                graph::CellList* neighbor_cache = nullptr)
      const;

  /// Fast inference rollout: taping disabled, window slides in place.
  /// Returns all predicted frames (not including the seed window). Runs
  /// each step inside an ad::ArenaScope and reuses a Verlet-skin neighbor
  /// list (skin = graph::default_skin_fraction() * connectivity radius);
  /// results are bitwise identical to the naive per-step path.
  [[nodiscard]] std::vector<std::vector<double>> rollout(
      const Window& initial_window, int steps,
      const SceneContext& context) const;

  /// Same, but with a caller-owned neighbor cache so reuse persists across
  /// multiple rollout legs over the same particle set (the hybrid
  /// MPM-GNS driver alternates legs and keeps one cache alive).
  [[nodiscard]] std::vector<std::vector<double>> rollout(
      const Window& initial_window, int steps, const SceneContext& context,
      graph::CellList* neighbor_cache) const;

  /// Differentiable rollout used by the inverse solver: keeps the whole
  /// tape alive and returns every predicted position tensor. Memory grows
  /// linearly in `steps` (the paper restricts this to k = 30 for the same
  /// reason).
  [[nodiscard]] std::vector<ad::Tensor> rollout_diff(
      const Window& initial_window, int steps,
      const SceneContext& context) const;

  /// Builds a seed window from the first window_size() frames of a
  /// trajectory.
  [[nodiscard]] Window window_from_trajectory(const io::Trajectory& traj,
                                              int start_frame = 0) const;

  [[nodiscard]] const FeatureConfig& features() const { return features_; }
  [[nodiscard]] const Normalizer& normalizer() const { return normalizer_; }
  [[nodiscard]] GnsModel& model() { return *model_; }
  [[nodiscard]] const GnsModel& model() const { return *model_; }

 private:
  std::shared_ptr<GnsModel> model_;
  FeatureConfig features_;
  Normalizer normalizer_;
};

/// Mean Euclidean particle-position error between two flat frames,
/// optionally normalized by a length scale (the paper reports error as a
/// percentage of the domain size).
[[nodiscard]] double position_error(const std::vector<double>& a,
                                    const std::vector<double>& b, int dim,
                                    double length_scale = 1.0);

}  // namespace gns::core
