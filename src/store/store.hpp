#pragma once

/// \file store.hpp
/// Umbrella header of the rollout persistence subsystem.
///
/// The subsystem makes repeated rollout requests free: identical
/// (checkpoint, initial state, steps) tuples — demos, pinned scenarios,
/// replay, inverse-design sweeps — are answered from storage instead of
/// recomputed, which the repo's bitwise-determinism guarantees make
/// *exactly* correct (a cached answer is byte-for-byte the live one).
///
///   TrajectoryStore — mmap'd append-only frame store (data + index,
///                     append/fsync/index-publish crash consistency,
///                     per-record checksums, zero-copy page-cache reads);
///   RolloutCache    — content-addressed LRU index over the store with
///                     prefix hits (a longer stored rollout truncates to
///                     the requested step count) and single-flight dedup
///                     of concurrent identical misses.
///
/// Key derivation lives in the serve layer (serve/cache_key.hpp); the
/// scheduler consults the cache at submit and inserts after complete
/// rollouts. See DESIGN.md §9 for the file format and crash-consistency
/// rules.

#include "store/rollout_cache.hpp"     // IWYU pragma: export
#include "store/trajectory_store.hpp"  // IWYU pragma: export
