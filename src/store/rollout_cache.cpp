#include "store/rollout_cache.hpp"

#include <cstdlib>
#include <utility>

#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace gns::store {

namespace {

obs::MetricsRegistry& reg() { return obs::MetricsRegistry::global(); }

/// RAII microsecond variant of obs::ScopedHistogramTimer (which records
/// milliseconds): lookup latencies sit in the single-digit-µs range, where
/// millisecond buckets collapse everything into the bottom bucket.
class ScopedMicrosTimer {
 public:
  explicit ScopedMicrosTimer(obs::HistogramMetric& histogram)
      : histogram_(histogram) {}
  ~ScopedMicrosTimer() { histogram_.add(timer_.millis() * 1e3); }
  ScopedMicrosTimer(const ScopedMicrosTimer&) = delete;
  ScopedMicrosTimer& operator=(const ScopedMicrosTimer&) = delete;

 private:
  obs::HistogramMetric& histogram_;
  Timer timer_;
};

}  // namespace

RolloutCache::RolloutCache(CacheConfig config)
    : config_(std::move(config)),
      store_(config_.dir),
      hits_(reg().counter(config_.metrics_prefix + ".hit")),
      misses_(reg().counter(config_.metrics_prefix + ".miss")),
      inserts_(reg().counter(config_.metrics_prefix + ".insert")),
      evictions_(reg().counter(config_.metrics_prefix + ".evictions")),
      coalesced_(
          reg().counter(config_.metrics_prefix + ".singleflight_coalesced")),
      corrupt_dropped_(
          reg().counter(config_.metrics_prefix + ".corrupt_dropped")),
      bytes_gauge_(reg().gauge(config_.metrics_prefix + ".bytes")),
      lookup_us_(reg().histogram(config_.metrics_prefix + ".lookup_us")) {
  GNS_CHECK_MSG(config_.byte_budget > 0,
                "RolloutCache byte_budget must be positive");
  // A fresh cache starts its counters from zero, mirroring ServerStats.
  reg().reset_prefix(config_.metrics_prefix + ".");

  // Rebuild the resident index from the store catalog: append order is
  // recency order, so later records land nearer the MRU end; duplicate
  // keys keep the longest rollout (ties: the later record).
  std::lock_guard<std::mutex> lock(mutex_);
  for (const RecordMeta& meta : store_.catalog()) {
    auto it = entries_.find(meta.key);
    if (it != entries_.end() && it->second.meta.steps > meta.steps) {
      // The resident rollout is longer; just refresh recency.
      lru_.erase(it->second.lru_it);
      lru_.push_front(meta.key);
      it->second.lru_it = lru_.begin();
      continue;
    }
    insert_entry_locked(meta);
  }
  evict_to_budget_locked();
  bytes_gauge_.set(static_cast<double>(bytes_));
  if (!entries_.empty()) {
    GNS_INFO("store: cache restored " << entries_.size() << " rollouts ("
                                      << bytes_ << " bytes) from "
                                      << config_.dir);
  }
}

const RecordMeta* RolloutCache::touch_locked(std::uint64_t key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  lru_.erase(it->second.lru_it);
  lru_.push_front(key);
  it->second.lru_it = lru_.begin();
  return &it->second.meta;
}

void RolloutCache::insert_entry_locked(const RecordMeta& meta) {
  erase_entry_locked(meta.key);
  lru_.push_front(meta.key);
  entries_[meta.key] = Entry{meta, lru_.begin()};
  bytes_ += meta.payload_bytes();
}

void RolloutCache::erase_entry_locked(std::uint64_t key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  bytes_ -= it->second.meta.payload_bytes();
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void RolloutCache::evict_to_budget_locked() {
  // The newest entry always stays resident: a single rollout larger
  // than the budget would otherwise thrash forever.
  while (bytes_ > config_.byte_budget && entries_.size() > 1) {
    const std::uint64_t victim = lru_.back();
    erase_entry_locked(victim);
    evictions_.add();
  }
  bytes_gauge_.set(static_cast<double>(bytes_));
}

bool RolloutCache::read_verified_locked(const RecordMeta& meta, int steps,
                                        Frames& out) {
  if (store_.read(meta, steps, out)) return true;
  // Checksum/bounds failure: the record cannot be trusted — drop it so
  // the store degrades to a miss instead of retrying a corrupt read.
  GNS_WARN("store: dropping corrupt cache record (key " << meta.key << ")");
  erase_entry_locked(meta.key);
  bytes_gauge_.set(static_cast<double>(bytes_));
  corrupt_dropped_.add();
  return false;
}

RolloutCache::Lookup RolloutCache::lookup_or_join(std::uint64_t key,
                                                  int steps,
                                                  FollowerFn on_done) {
  GNS_TRACE_SCOPE("store.cache.lookup");
  ScopedMicrosTimer lookup_timer(lookup_us_);
  Lookup result;
  std::lock_guard<std::mutex> lock(mutex_);
  const RecordMeta* meta = touch_locked(key);
  if (meta != nullptr && meta->steps >= static_cast<std::uint32_t>(steps)) {
    const RecordMeta copy = *meta;  // read may erase the entry
    if (read_verified_locked(copy, steps, result.frames)) {
      hits_.add();
      result.outcome = Outcome::Hit;
      return result;
    }
  }
  misses_.add();
  auto flight = flights_.find(key);
  if (flight != flights_.end() && flight->second.leader_steps >= steps) {
    flight->second.followers.push_back(Follower{steps, std::move(on_done)});
    coalesced_.add();
    result.outcome = Outcome::Joined;
    return result;
  }
  if (flight == flights_.end()) {
    flights_.emplace(key, Flight{steps, {}});
  }
  // else: an in-flight leader computes fewer steps than requested; this
  // caller computes independently (no second flight under the key — its
  // complete() will simply insert, superseding the shorter rollout).
  result.outcome = Outcome::Lead;
  return result;
}

bool RolloutCache::lookup(std::uint64_t key, int steps, Frames& out) {
  GNS_TRACE_SCOPE("store.cache.lookup");
  ScopedMicrosTimer lookup_timer(lookup_us_);
  std::lock_guard<std::mutex> lock(mutex_);
  const RecordMeta* meta = touch_locked(key);
  if (meta != nullptr && meta->steps >= static_cast<std::uint32_t>(steps)) {
    const RecordMeta copy = *meta;
    if (read_verified_locked(copy, steps, out)) {
      hits_.add();
      return true;
    }
  }
  misses_.add();
  return false;
}

bool RolloutCache::insert(std::uint64_t key, const Frames& frames) {
  GNS_TRACE_SCOPE("store.cache.insert");
  if (frames.empty()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end() &&
      it->second.meta.steps >= frames.size()) {
    return false;  // already covered by an equal-or-longer rollout
  }
  RecordMeta meta;
  if (!store_.append(key, frames, meta)) {
    GNS_WARN("store: cache append failed for key " << key);
    return false;
  }
  insert_entry_locked(meta);
  inserts_.add();
  evict_to_budget_locked();
  return true;
}

std::vector<RolloutCache::Follower> RolloutCache::take_followers(
    std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = flights_.find(key);
  if (it == flights_.end()) return {};
  std::vector<Follower> followers = std::move(it->second.followers);
  flights_.erase(it);
  return followers;
}

void RolloutCache::complete(std::uint64_t key, const Frames& frames) {
  insert(key, frames);
  // Fulfill outside the cache lock: follower callbacks re-enter the
  // serving layer (promises, stats, scheduler bookkeeping).
  for (Follower& follower : take_followers(key)) {
    GNS_CHECK_MSG(frames.size() >=
                      static_cast<std::size_t>(follower.steps),
                  "single-flight follower joined a shorter leader");
    Frames prefix(frames.begin(),
                  frames.begin() + follower.steps);
    follower.fn(std::move(prefix), /*complete=*/true, 0, std::string());
  }
}

void RolloutCache::abandon(std::uint64_t key, const Frames& partial,
                           int code, const std::string& error) {
  for (Follower& follower : take_followers(key)) {
    const bool covered =
        partial.size() >= static_cast<std::size_t>(follower.steps);
    // A partial prefix that already covers a follower's shorter request
    // is a complete answer for that follower (rollouts are strictly
    // sequential); only uncovered followers inherit the leader's fate.
    Frames prefix(partial.begin(),
                  covered ? partial.begin() + follower.steps
                          : partial.end());
    follower.fn(std::move(prefix), covered, code, error);
  }
}

std::uint64_t RolloutCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::size_t RolloutCache::resident_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::shared_ptr<RolloutCache> make_cache_from_env() {
  const char* dir = std::getenv("GNS_CACHE_DIR");
  if (dir == nullptr || dir[0] == '\0') return nullptr;
  CacheConfig config;
  config.dir = dir;
  if (const char* bytes = std::getenv("GNS_CACHE_BYTES")) {
    const long long parsed = std::atoll(bytes);
    if (parsed > 0) config.byte_budget = static_cast<std::uint64_t>(parsed);
  }
  return std::make_shared<RolloutCache>(std::move(config));
}

}  // namespace gns::store
