#pragma once

/// \file trajectory_store.hpp
/// TrajectoryStore: an mmap'd append-only store of complete rollout frame
/// streams, the persistence layer under store::RolloutCache.
///
/// Layout: one data file (`trajectories.dat`) holding self-describing
/// records — a fixed header (magic, key, steps, frame_len, payload
/// checksum) followed by steps*frame_len raw little-endian doubles — and
/// one index file (`trajectories.idx`) of fixed-size entries, each
/// carrying the record's key/offset/shape, the payload checksum, and its
/// own entry checksum.
///
/// Crash consistency is append + fsync + index-publish: a record is
/// written and fsync'd to the data file *before* its index entry is
/// appended and fsync'd. A reader only learns about a record through the
/// index, so a crash between the two steps leaves dead bytes at the data
/// tail (reclaimed by a future compaction), never a readable torn record.
/// On open, the index is scanned and every entry is validated — entry
/// checksum, record bounds against the data file size — and a bad or
/// truncated entry is skipped, so corruption degrades to a smaller
/// catalog, not a crash.
///
/// Reads are served through one shared PROT_READ/MAP_SHARED mapping of
/// the data file (grown lazily as appends land), so repeated cache hits
/// stream straight from page cache with no read() syscalls and no
/// per-hit deserialization; the per-record checksum is re-verified on
/// every read, so a bit-flipped or truncated store degrades to a miss
/// (read() returns false) instead of serving garbage.
///
/// Thread model: any number of concurrent readers, at most one writer at
/// a time (RolloutCache serializes inserts); a shared_mutex lets reads
/// overlap each other and only serializes against append/remap.

#include <cstdint>
#include <shared_mutex>
#include <string>
#include <vector>

namespace gns::store {

/// Catalog entry of one stored rollout: everything needed to locate and
/// verify the record without touching the data file.
struct RecordMeta {
  std::uint64_t key = 0;      ///< content address (cache key)
  std::uint64_t offset = 0;   ///< record start in the data file
  std::uint32_t steps = 0;    ///< frames stored
  std::uint32_t frame_len = 0;  ///< doubles per frame (N * dim)
  std::uint64_t payload_hash = 0;  ///< FNV-1a over the payload doubles

  [[nodiscard]] std::uint64_t payload_bytes() const {
    return static_cast<std::uint64_t>(steps) * frame_len * sizeof(double);
  }
};

class TrajectoryStore {
 public:
  /// Opens (creating if absent) `<dir>/trajectories.{dat,idx}`. The
  /// directory is created if missing. Throws std::runtime_error when the
  /// files cannot be opened — the store is infrastructure the caller
  /// opted into, so an unusable directory is a configuration error, not
  /// a silent miss.
  explicit TrajectoryStore(const std::string& dir);
  ~TrajectoryStore();

  TrajectoryStore(const TrajectoryStore&) = delete;
  TrajectoryStore& operator=(const TrajectoryStore&) = delete;

  /// Validated catalog recovered from the index at open time, in append
  /// order (oldest first). Entries that failed validation were skipped.
  [[nodiscard]] const std::vector<RecordMeta>& catalog() const {
    return catalog_;
  }

  /// Appends one complete rollout under `key` with crash-consistent
  /// publish order (data write + fsync, then index write + fsync).
  /// Every frame must have the same nonzero length. Returns the record's
  /// catalog entry; on any I/O failure returns false and leaves the
  /// store readable (a half-written data record is unreachable because
  /// its index entry was never published).
  [[nodiscard]] bool append(std::uint64_t key,
                            const std::vector<std::vector<double>>& frames,
                            RecordMeta& out);

  /// Reads the first `steps` frames of `meta` (steps <= meta.steps; a
  /// prefix of a stored rollout is still bitwise the rollout the cache
  /// promised, because rollouts are strictly sequential). Verifies the
  /// full payload checksum first; returns false — never throws, never
  /// returns partial data — when the record is corrupt, truncated, or
  /// out of bounds.
  [[nodiscard]] bool read(const RecordMeta& meta, int steps,
                          std::vector<std::vector<double>>& out_frames);

  /// Current data file size in bytes (records + dead tail bytes).
  [[nodiscard]] std::uint64_t data_bytes() const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  /// Ensures the read mapping covers at least `min_bytes` of the data
  /// file. Caller must hold the write lock.
  bool remap_locked(std::uint64_t min_bytes);
  void scan_index();

  std::string dir_;
  int data_fd_ = -1;
  int index_fd_ = -1;
  std::uint64_t data_size_ = 0;   ///< append offset (file size)
  std::uint64_t index_size_ = 0;  ///< index append offset

  const std::uint8_t* map_ = nullptr;  ///< read-only data mapping
  std::uint64_t map_len_ = 0;

  std::vector<RecordMeta> catalog_;

  mutable std::shared_mutex mutex_;
};

}  // namespace gns::store
