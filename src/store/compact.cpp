#include "store/compact.hpp"

#include <cstdio>
#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <memory>
#include <vector>

#include "store/trajectory_store.hpp"
#include "util/logging.hpp"

namespace gns::store {

namespace {

/// fsync the directory so the renames themselves are durable.
void sync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

bool compact_store(const std::string& dir, CompactStats& stats,
                   std::string& error) {
  stats = CompactStats{};
  std::error_code ec;
  const std::string scratch = dir + "/compact.tmp";

  // Winner per key: the longest rollout, ties toward the later record —
  // exactly the record RolloutCache's open-time rebuild would serve, so
  // compaction never changes what a subsequent open observes.
  std::vector<RecordMeta> winners;
  {
    std::unique_ptr<TrajectoryStore> source;
    try {
      source = std::make_unique<TrajectoryStore>(dir);
    } catch (const std::exception& e) {
      error = e.what();
      return false;
    }
    stats.bytes_before = source->data_bytes();
    std::map<std::uint64_t, std::size_t> best;  // key -> index in winners
    for (const RecordMeta& meta : source->catalog()) {
      ++stats.records_scanned;
      auto it = best.find(meta.key);
      if (it == best.end()) {
        best.emplace(meta.key, winners.size());
        winners.push_back(meta);
      } else if (meta.steps >= winners[it->second].steps) {
        ++stats.superseded_dropped;
        winners[it->second] = meta;  // keeps first-appearance order
      } else {
        ++stats.superseded_dropped;
      }
    }

    // Rewrite the survivors through the store's own crash-consistent
    // append path, re-verifying every payload (read() checks the full
    // checksum; a corrupt record degrades to a drop, never a copy).
    std::filesystem::remove_all(scratch, ec);
    std::unique_ptr<TrajectoryStore> dest;
    try {
      dest = std::make_unique<TrajectoryStore>(scratch);
    } catch (const std::exception& e) {
      error = e.what();
      return false;
    }
    std::vector<std::vector<double>> frames;
    for (const RecordMeta& meta : winners) {
      if (!source->read(meta, static_cast<int>(meta.steps), frames)) {
        ++stats.corrupt_dropped;
        GNS_WARN("store: compaction dropping corrupt record key="
                 << meta.key << " steps=" << meta.steps);
        continue;
      }
      RecordMeta copied;
      if (!dest->append(meta.key, frames, copied)) {
        error = "compaction append failed in " + scratch;
        std::filesystem::remove_all(scratch, ec);
        return false;
      }
      ++stats.records_kept;
    }
    stats.bytes_after = dest->data_bytes();
    // Both stores close (fds + mappings) before the swap below.
  }

  // Crash-safe swap: data first, then index. Old-index + new-data is the
  // only intermediate state, and the store's open-time bounds checks plus
  // per-read checksums turn it into misses, not garbage.
  if (std::rename((scratch + "/trajectories.dat").c_str(),
                  (dir + "/trajectories.dat").c_str()) != 0) {
    error = "rename trajectories.dat failed";
    std::filesystem::remove_all(scratch, ec);
    return false;
  }
  if (std::rename((scratch + "/trajectories.idx").c_str(),
                  (dir + "/trajectories.idx").c_str()) != 0) {
    error = "rename trajectories.idx failed";
    return false;
  }
  sync_dir(dir);
  std::filesystem::remove_all(scratch, ec);
  return true;
}

}  // namespace gns::store
