#pragma once

/// \file rollout_cache.hpp
/// RolloutCache: content-addressed cache of complete rollout frame
/// streams over a TrajectoryStore, with an in-memory LRU index under a
/// byte budget and single-flight deduplication of concurrent misses.
///
/// Keys are opaque 64-bit content addresses computed by the caller
/// (serve::compute_cache_key hashes model name + checkpoint digest +
/// initial-state bytes + feature config); the cache itself never
/// inspects requests, which keeps this library free of serving types
/// and lets the serve layer own what "identical request" means. The
/// step count is deliberately NOT part of the address: a stored rollout
/// is addressed by what it started from, and a lookup for K steps hits
/// any stored rollout of >= K steps (a *prefix hit* — rollouts are
/// strictly sequential, so the first K frames of a longer rollout are
/// bitwise the K-step rollout).
///
/// Single-flight: when a lookup misses while an identical computation is
/// already in flight, the caller can join the flight instead of
/// recomputing — its callback fires when the leader finishes, with the
/// leader's frames truncated to the follower's step count. N concurrent
/// identical requests therefore trigger exactly one compute.
///
/// The LRU byte budget bounds the *resident index*, not the append-only
/// data file: evicting an entry makes it unreachable (a future lookup
/// misses and recomputes) but does not reclaim file bytes — compaction
/// is a separate offline concern (DESIGN.md §9). A corrupt record
/// detected on read is dropped from the index, so disk damage degrades
/// to misses.
///
/// Metrics (`<prefix>.{hit,miss,insert,bytes,evictions,
/// singleflight_coalesced,corrupt_dropped}`) ride the process-global
/// obs::MetricsRegistry; the default prefix "serve.cache" lands them in
/// the same dump as the scheduler's serve.* instruments.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "store/trajectory_store.hpp"

namespace gns::store {

/// A rollout's frame stream: `steps` frames, flat [N*dim] doubles each.
using Frames = std::vector<std::vector<double>>;

struct CacheConfig {
  std::string dir;  ///< TrajectoryStore directory (created if absent)
  /// Byte budget of the resident LRU index (payload bytes). The newest
  /// entry is always kept, even when it alone exceeds the budget.
  std::uint64_t byte_budget = 256ull << 20;
  std::string metrics_prefix = "serve.cache";
};

/// Callback fulfilling one single-flight follower. `complete` is true
/// when `frames` holds exactly the follower's requested step count (the
/// leader finished, or its partial prefix already covered the
/// follower); otherwise `frames` is the leader's partial prefix and
/// `leader_code` / `error` carry the leader's terminal outcome as an
/// opaque code chosen by the caller at abandon() time.
using FollowerFn = std::function<void(Frames frames, bool complete,
                                      int leader_code,
                                      const std::string& error)>;

class RolloutCache {
 public:
  /// What a lookup_or_join() call resolved to.
  enum class Outcome {
    Hit,     ///< `frames` holds the requested steps, bitwise-stored
    Lead,    ///< miss; caller computes and must call complete()/abandon()
    Joined,  ///< miss coalesced onto an in-flight identical compute
  };

  struct Lookup {
    Outcome outcome = Outcome::Lead;
    Frames frames;  ///< filled iff outcome == Hit
  };

  /// Opens the backing store, rebuilds the LRU index from its catalog
  /// (newest records most-recently-used, deduplicated per key keeping
  /// the longest rollout, evicted down to the byte budget), and zeroes
  /// the `<prefix>.*` metrics. Throws when the store directory is
  /// unusable.
  explicit RolloutCache(CacheConfig config);

  /// Cache hit, single-flight join, or leadership claim — one atomic
  /// decision. On Lead the caller owns the flight for `key`: it MUST
  /// eventually call complete() (finished, all frames present) or
  /// abandon() (failed/partial/rejected), or followers wait forever.
  /// `on_done` is retained only on Joined. A follower only joins a
  /// flight whose leader computes at least `steps` frames; a request
  /// for more steps than the in-flight leader leads its own compute
  /// (without registering a second flight under the key).
  [[nodiscard]] Lookup lookup_or_join(std::uint64_t key, int steps,
                                      FollowerFn on_done);

  /// Plain lookup (no flight bookkeeping): fills `out` with the first
  /// `steps` frames when a stored rollout of >= steps exists and
  /// verifies. Counts hit/miss.
  [[nodiscard]] bool lookup(std::uint64_t key, int steps, Frames& out);

  /// Leader path, success: stores the complete rollout (skipped when an
  /// entry with >= frames.size() steps is already resident) and
  /// fulfills every follower of `key` with its truncated prefix.
  void complete(std::uint64_t key, const Frames& frames);

  /// Leader path, failure: no insert. Followers whose requested steps
  /// the partial prefix still covers are fulfilled complete; the rest
  /// receive the partial frames plus the leader's terminal
  /// `code`/`error` verbatim.
  void abandon(std::uint64_t key, const Frames& partial, int code,
               const std::string& error);

  /// Direct insert (bypasses flights): used by complete(), warm-up
  /// tooling, and tests. Returns false when skipped (already covered by
  /// a longer resident entry) or the store append failed.
  bool insert(std::uint64_t key, const Frames& frames);

  [[nodiscard]] std::uint64_t resident_bytes() const;
  [[nodiscard]] std::size_t resident_entries() const;
  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] TrajectoryStore& trajectory_store() { return store_; }

 private:
  struct Follower {
    int steps = 0;
    FollowerFn fn;
  };
  struct Flight {
    int leader_steps = 0;
    std::vector<Follower> followers;
  };

  /// Moves `key` to MRU and returns its meta; nullptr when absent.
  /// Caller holds mutex_.
  const RecordMeta* touch_locked(std::uint64_t key);
  void insert_entry_locked(const RecordMeta& meta);
  void erase_entry_locked(std::uint64_t key);
  void evict_to_budget_locked();
  /// Reads + verifies a record, dropping it from the index on
  /// corruption. Returns true and fills `out` on success. Caller holds
  /// mutex_.
  bool read_verified_locked(const RecordMeta& meta, int steps, Frames& out);
  /// Detaches the flight for `key` (if any) for fulfillment outside the
  /// lock.
  std::vector<Follower> take_followers(std::uint64_t key);

  CacheConfig config_;
  TrajectoryStore store_;

  mutable std::mutex mutex_;
  /// MRU-front LRU of resident keys + per-key record metadata.
  std::list<std::uint64_t> lru_;
  struct Entry {
    RecordMeta meta;
    std::list<std::uint64_t>::iterator lru_it;
  };
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::unordered_map<std::uint64_t, Flight> flights_;
  std::uint64_t bytes_ = 0;  ///< resident payload bytes

  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& inserts_;
  obs::Counter& evictions_;
  obs::Counter& coalesced_;
  obs::Counter& corrupt_dropped_;
  obs::Gauge& bytes_gauge_;
  /// Wall time of each lookup/lookup_or_join in microseconds
  /// (`<prefix>.lookup_us`) — the store-side share of the serving
  /// PhaseTimeline's cache_us.
  obs::HistogramMetric& lookup_us_;
};

/// Builds a cache from the GNS_CACHE_DIR / GNS_CACHE_BYTES environment
/// knobs; nullptr when GNS_CACHE_DIR is unset (caching stays opt-in).
[[nodiscard]] std::shared_ptr<RolloutCache> make_cache_from_env();

}  // namespace gns::store
