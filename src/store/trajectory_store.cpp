#include "store/trajectory_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace gns::store {

namespace {

// On-disk record header (32 bytes, little-endian). The payload — raw
// IEEE-754 doubles exactly as a rollout produced them — follows
// immediately, which is what makes reads bitwise comparable to a live
// rollout without any decode step.
struct RecordHeader {
  std::uint32_t magic = 0;
  std::uint32_t frame_len = 0;
  std::uint32_t steps = 0;
  std::uint32_t reserved = 0;
  std::uint64_t key = 0;
  std::uint64_t payload_hash = 0;
};
static_assert(sizeof(RecordHeader) == 32, "record header layout drifted");

// Fixed-size index entry (48 bytes). entry_hash covers the preceding 40
// bytes, so a torn tail write or a bit flip invalidates exactly the
// entries it touched.
struct IndexEntry {
  std::uint64_t key = 0;
  std::uint64_t offset = 0;
  std::uint32_t steps = 0;
  std::uint32_t frame_len = 0;
  std::uint64_t payload_hash = 0;
  std::uint64_t reserved = 0;
  std::uint64_t entry_hash = 0;
};
static_assert(sizeof(IndexEntry) == 48, "index entry layout drifted");

constexpr std::uint32_t kRecordMagic = 0x52534E47u;  // "GNSR"
constexpr std::size_t kEntryHashedBytes =
    sizeof(IndexEntry) - sizeof(std::uint64_t);

std::uint64_t entry_checksum(const IndexEntry& e) {
  return hash_bytes(&e, kEntryHashedBytes);
}

bool write_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, p + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::uint64_t file_size(int fd) {
  struct stat st {};
  return ::fstat(fd, &st) == 0 ? static_cast<std::uint64_t>(st.st_size) : 0;
}

}  // namespace

TrajectoryStore::TrajectoryStore(const std::string& dir) : dir_(dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  const std::string data_path = dir_ + "/trajectories.dat";
  const std::string index_path = dir_ + "/trajectories.idx";
  data_fd_ = ::open(data_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  index_fd_ = ::open(index_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (data_fd_ < 0 || index_fd_ < 0) {
    const std::string err = std::strerror(errno);
    if (data_fd_ >= 0) ::close(data_fd_);
    if (index_fd_ >= 0) ::close(index_fd_);
    throw std::runtime_error("TrajectoryStore: cannot open " + dir_ + ": " +
                             err);
  }
  data_size_ = file_size(data_fd_);
  index_size_ = file_size(index_fd_);
  scan_index();
}

TrajectoryStore::~TrajectoryStore() {
  if (map_ != nullptr) ::munmap(const_cast<std::uint8_t*>(map_), map_len_);
  if (data_fd_ >= 0) ::close(data_fd_);
  if (index_fd_ >= 0) ::close(index_fd_);
}

void TrajectoryStore::scan_index() {
  GNS_TRACE_SCOPE("store.store.scan");
  const std::uint64_t entries = index_size_ / sizeof(IndexEntry);
  if (index_size_ % sizeof(IndexEntry) != 0) {
    GNS_WARN("store: index has " << index_size_ % sizeof(IndexEntry)
                                 << " trailing bytes (torn write); ignoring");
  }
  catalog_.reserve(entries);
  for (std::uint64_t i = 0; i < entries; ++i) {
    IndexEntry e;
    const ssize_t n =
        ::pread(index_fd_, &e, sizeof(e),
                static_cast<off_t>(i * sizeof(IndexEntry)));
    if (n != static_cast<ssize_t>(sizeof(e))) break;
    if (entry_checksum(e) != e.entry_hash) {
      GNS_WARN("store: index entry " << i << " failed checksum; skipping");
      continue;
    }
    const std::uint64_t payload =
        static_cast<std::uint64_t>(e.steps) * e.frame_len * sizeof(double);
    if (e.steps == 0 || e.frame_len == 0 ||
        e.offset + sizeof(RecordHeader) + payload > data_size_) {
      GNS_WARN("store: index entry " << i
                                     << " points past the data file; skipping");
      continue;
    }
    RecordMeta meta;
    meta.key = e.key;
    meta.offset = e.offset;
    meta.steps = e.steps;
    meta.frame_len = e.frame_len;
    meta.payload_hash = e.payload_hash;
    catalog_.push_back(meta);
  }
}

bool TrajectoryStore::append(std::uint64_t key,
                             const std::vector<std::vector<double>>& frames,
                             RecordMeta& out) {
  GNS_TRACE_SCOPE("store.store.append");
  if (frames.empty() || frames.front().empty()) return false;
  const std::size_t frame_len = frames.front().size();
  for (const auto& frame : frames) {
    if (frame.size() != frame_len) return false;
  }

  Fnv1a payload_hash;
  for (const auto& frame : frames)
    payload_hash.update(frame.data(), frame.size() * sizeof(double));

  RecordHeader header;
  header.magic = kRecordMagic;
  header.frame_len = static_cast<std::uint32_t>(frame_len);
  header.steps = static_cast<std::uint32_t>(frames.size());
  header.key = key;
  header.payload_hash = payload_hash.digest();

  std::unique_lock lock(mutex_);
  const std::uint64_t offset = data_size_;

  // 1. Record into the data file, then fsync: the bytes must be durable
  //    before any index entry can make them reachable.
  if (!write_all(data_fd_, &header, sizeof(header))) return false;
  for (const auto& frame : frames) {
    if (!write_all(data_fd_, frame.data(), frame.size() * sizeof(double))) {
      // Half-written record: unreachable (no index entry), reclaimed by
      // compaction. Reset the append offset to the file's actual size.
      data_size_ = file_size(data_fd_);
      return false;
    }
  }
  if (::fsync(data_fd_) != 0) {
    GNS_WARN("store: fsync(data) failed: " << std::strerror(errno));
  }
  data_size_ =
      offset + sizeof(RecordHeader) + frames.size() * frame_len *
                                          sizeof(double);

  // 2. Publish: index entry + fsync. Only now can a reader find the
  //    record.
  IndexEntry entry;
  entry.key = key;
  entry.offset = offset;
  entry.steps = header.steps;
  entry.frame_len = header.frame_len;
  entry.payload_hash = header.payload_hash;
  entry.entry_hash = entry_checksum(entry);
  if (!write_all(index_fd_, &entry, sizeof(entry))) return false;
  if (::fsync(index_fd_) != 0) {
    GNS_WARN("store: fsync(index) failed: " << std::strerror(errno));
  }
  index_size_ += sizeof(entry);

  out.key = key;
  out.offset = offset;
  out.steps = header.steps;
  out.frame_len = header.frame_len;
  out.payload_hash = header.payload_hash;
  catalog_.push_back(out);
  return true;
}

bool TrajectoryStore::remap_locked(std::uint64_t min_bytes) {
  if (map_len_ >= min_bytes && map_ != nullptr) return true;
  // Map the whole current file: appends are frequent relative to remaps,
  // so covering everything written so far amortizes the syscall.
  const std::uint64_t want = file_size(data_fd_);
  if (want < min_bytes) return false;  // caller's record is out of bounds
  if (map_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(map_), map_len_);
    map_ = nullptr;
    map_len_ = 0;
  }
  void* p = ::mmap(nullptr, want, PROT_READ, MAP_SHARED, data_fd_, 0);
  if (p == MAP_FAILED) {
    GNS_WARN("store: mmap failed: " << std::strerror(errno));
    return false;
  }
  map_ = static_cast<const std::uint8_t*>(p);
  map_len_ = want;
  return true;
}

bool TrajectoryStore::read(const RecordMeta& meta, int steps,
                           std::vector<std::vector<double>>& out_frames) {
  GNS_TRACE_SCOPE("store.store.read");
  if (steps <= 0 || static_cast<std::uint32_t>(steps) > meta.steps ||
      meta.frame_len == 0) {
    return false;
  }
  const std::uint64_t record_bytes =
      sizeof(RecordHeader) + meta.payload_bytes();

  std::shared_lock lock(mutex_);
  if (meta.offset + record_bytes > map_len_) {
    // The mapping has not caught up with appends (or the meta is stale);
    // upgrade to the write lock just long enough to remap.
    lock.unlock();
    {
      std::unique_lock grow(mutex_);
      if (!remap_locked(meta.offset + record_bytes)) return false;
    }
    lock.lock();
    if (meta.offset + record_bytes > map_len_) return false;
  }

  const std::uint8_t* base = map_ + meta.offset;
  RecordHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (header.magic != kRecordMagic || header.key != meta.key ||
      header.steps != meta.steps || header.frame_len != meta.frame_len ||
      header.payload_hash != meta.payload_hash) {
    return false;
  }
  const std::uint8_t* payload = base + sizeof(RecordHeader);
  // Verify the whole payload, not just the requested prefix: the
  // checksum was computed over the full record, and a flipped bit
  // anywhere means the record cannot be trusted.
  if (hash_bytes(payload, meta.payload_bytes()) != meta.payload_hash) {
    return false;
  }

  out_frames.clear();
  out_frames.reserve(static_cast<std::size_t>(steps));
  const std::size_t frame_bytes = meta.frame_len * sizeof(double);
  for (int s = 0; s < steps; ++s) {
    std::vector<double> frame(meta.frame_len);
    std::memcpy(frame.data(),
                payload + static_cast<std::size_t>(s) * frame_bytes,
                frame_bytes);
    out_frames.push_back(std::move(frame));
  }
  return true;
}

std::uint64_t TrajectoryStore::data_bytes() const {
  std::shared_lock lock(mutex_);
  return data_size_;
}

}  // namespace gns::store
