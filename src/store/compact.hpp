#pragma once

/// \file compact.hpp
/// Offline compaction of a TrajectoryStore directory.
///
/// The store is append-only, so three kinds of waste accumulate in
/// `trajectories.dat`: dead tail bytes from crashes between the data
/// write and the index publish, records whose index entries failed
/// validation (unreachable), and superseded records — shorter rollouts
/// of a key that a later, longer append replaced in the cache's resident
/// index. compact_store() rewrites both files keeping exactly one record
/// per key — the longest rollout, ties broken toward the later record,
/// the same winner RolloutCache's open-time rebuild picks — re-verifying
/// every payload checksum on the way (a corrupt record is dropped, never
/// copied forward).
///
/// Crash safety: the survivors are written to a scratch subdirectory
/// with the store's own append path (data fsync'd before each index
/// publish), then swapped in with rename() — data file first, then
/// index. A crash mid-swap leaves old-index + new-data, which the
/// store's open-time validation and per-read checksums degrade to
/// misses, never to garbage frames; a crash before the first rename
/// leaves the original store untouched.
///
/// Offline only: must not run concurrently with a live TrajectoryStore
/// (or a serving RolloutCache) over the same directory — the tool takes
/// no lock, matching its role as an operator maintenance command
/// (examples/store_compact.cpp, built as `gns_store_compact`).

#include <cstdint>
#include <string>

namespace gns::store {

struct CompactStats {
  std::uint64_t records_scanned = 0;   ///< valid index entries found
  std::uint64_t records_kept = 0;      ///< survivors written out
  std::uint64_t superseded_dropped = 0;  ///< shorter duplicates of a key
  std::uint64_t corrupt_dropped = 0;   ///< failed payload verification
  std::uint64_t bytes_before = 0;      ///< data file size going in
  std::uint64_t bytes_after = 0;       ///< data file size after the swap
};

/// Compacts `<dir>/trajectories.{dat,idx}` in place (via scratch files +
/// rename). Returns false with `error` set when the store cannot be
/// opened or the swap fails; the original files are only replaced after
/// every survivor is durably written.
[[nodiscard]] bool compact_store(const std::string& dir, CompactStats& stats,
                                 std::string& error);

}  // namespace gns::store
