#pragma once

/// \file parallel_for.hpp
/// Executor-backed data parallelism with a worker-count-independent
/// decomposition, replacing `#pragma omp parallel for schedule(static)`
/// on the hot paths (ad ops, MPM transfers, neighbor search).
///
/// Determinism contract: the loop is split into a fixed number of chunks
/// that depends ONLY on the trip count (never on the worker count), and
/// chunk bounds use the same `n*c/k` arithmetic OpenMP's static schedule
/// uses. Workers claim chunks dynamically, so *which thread* runs a chunk
/// varies run to run — callers must only use parallel_for on loops whose
/// iterations write disjoint outputs (every migrated site does; loops
/// that accumulate use parallel_chunks with per-lane buffers and a fixed
/// serial reduction order instead). Under that contract results are
/// bitwise identical at any GNS_EXEC_WORKERS, which is strictly stronger
/// than the OpenMP path (bitwise per thread-count).
///
/// When exec::enabled() is false the call lowers to the original OpenMP
/// pragma, preserving the legacy path byte for byte.
///
/// The caller participates: it claims chunks alongside submitted helper
/// tasks and returns when every chunk has finished. Completion is counted
/// per chunk, not per helper, so all chunks complete even if no helper
/// ever runs (e.g. all workers busy) — the caller just does the whole
/// loop itself. Nested calls (a body invoking another parallel loop) run
/// serially, matching OpenMP's default non-nested behavior.

#include <atomic>
#include <cstdint>
#include <memory>

#include "exec/executor.hpp"

namespace gns::exec {

namespace detail {

/// Depth of parallel loops on this thread; >0 forces nested calls serial.
inline thread_local int t_parallel_depth = 0;

struct ScopedParallelDepth {
  ScopedParallelDepth() { ++t_parallel_depth; }
  ~ScopedParallelDepth() { --t_parallel_depth; }
};

struct ChunkState {
  std::atomic<int> next{0};
  std::atomic<int> done{0};
};

/// Runs body(job) for job in [0, njobs) across the global executor; the
/// calling thread participates and the function returns once all jobs
/// finished. Body must not block on other executor tasks.
template <typename Body>
void run_jobs(int njobs, Body& body) {
  Executor& ex = Executor::global();
  auto state = std::make_shared<ChunkState>();
  Body* pbody = &body;
  auto drain = [state, njobs, pbody]() {
    ScopedParallelDepth depth_guard;
    for (;;) {
      const int job = state->next.fetch_add(1, std::memory_order_relaxed);
      if (job >= njobs) break;
      (*pbody)(job);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == njobs)
        state->done.notify_all();
    }
  };
  int helpers = ex.workers() < njobs ? ex.workers() : njobs;
  if (ex.on_worker_thread()) --helpers;
  for (int h = 0; h < helpers; ++h) ex.submit(drain);
  drain();
  // All chunks are claimed; wait for stragglers running on other workers.
  // Brief spin first: the tail is typically one partially-done chunk.
  int done = state->done.load(std::memory_order_acquire);
  for (int spin = 0; done != njobs && spin < 1024; ++spin)
    done = state->done.load(std::memory_order_acquire);
  while (done != njobs) {
    state->done.wait(done, std::memory_order_acquire);
    done = state->done.load(std::memory_order_acquire);
  }
}

}  // namespace detail

/// Fixed chunk count for parallel_for: enough slack for 16 workers to
/// balance, cheap enough (one relaxed fetch_add per chunk) for small
/// loops. Part of the bitwise contract only insofar as it is a constant —
/// iterations are independent, so any decomposition yields identical
/// results; what matters is that it never depends on the worker count.
inline constexpr int kForChunks = 32;

/// Drop-in replacement for
///   #pragma omp parallel for schedule(static) if (worthwhile)
///   for (std::int64_t i = 0; i < n; ++i) body(i);
/// Iterations must write disjoint outputs (see file comment).
template <typename Body>
void parallel_for(std::int64_t n, bool worthwhile, Body&& body) {
  if (n <= 0) return;
  if (enabled()) {
    if (!worthwhile || n < 2 || detail::t_parallel_depth > 0) {
      for (std::int64_t i = 0; i < n; ++i) body(i);
      return;
    }
    const int nchunks =
        n < static_cast<std::int64_t>(kForChunks) ? static_cast<int>(n)
                                                  : kForChunks;
    auto chunk_body = [&body, n, nchunks](int c) {
      const std::int64_t begin = n * c / nchunks;
      const std::int64_t end = n * (c + 1) / nchunks;
      for (std::int64_t i = begin; i < end; ++i) body(i);
    };
    detail::run_jobs(nchunks, chunk_body);
  } else {
#ifdef _OPENMP
#pragma omp parallel for schedule(static) if (worthwhile)
    for (std::int64_t i = 0; i < n; ++i) body(i);
#else
    for (std::int64_t i = 0; i < n; ++i) body(i);
#endif
  }
}

/// Runs body(job) for job in [0, njobs) in parallel, where the caller has
/// already fixed the job decomposition (e.g. MPM p2g lanes, each owning a
/// contiguous chunk range and a private accumulation buffer). njobs must
/// be a function of problem size only. Which worker runs a job is
/// scheduling-dependent; the work inside each job is not.
template <typename Body>
void parallel_jobs(int njobs, bool worthwhile, Body&& body) {
  if (njobs <= 0) return;
  if (!enabled() || !worthwhile || njobs == 1 ||
      detail::t_parallel_depth > 0) {
    for (int j = 0; j < njobs; ++j) body(j);
    return;
  }
  detail::run_jobs(njobs, body);
}

}  // namespace gns::exec
