#include "exec/executor.hpp"

#include <chrono>
#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gns::exec {

namespace {

bool env_flag(const char* name, bool dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  return !(v[0] == '0' && v[1] == '\0');
}

int env_int(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  const int n = std::atoi(v);
  return n > 0 ? n : 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_flag("GNS_EXEC", true)};
  return flag;
}

// Thread-local identity of executor workers, for submit()'s own-deque
// fast path and parallel_for's caller-participation logic.
thread_local Executor* t_owner = nullptr;
thread_local int t_worker_index = -1;

obs::Counter& tasks_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("exec.tasks");
  return c;
}
obs::Counter& steals_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("exec.steals");
  return c;
}
obs::Counter& injected_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("exec.injected");
  return c;
}
obs::Gauge& depth_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::global().gauge("exec.queue_depth");
  return g;
}
obs::Gauge& workers_gauge() {
  static obs::Gauge& g = obs::MetricsRegistry::global().gauge("exec.workers");
  return g;
}
obs::Counter& busy_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("exec.busy_us");
  return c;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

int default_workers() {
  int n = env_int("GNS_EXEC_WORKERS");
  if (n == 0) n = env_int("GNS_NUM_THREADS");
  if (n == 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 1;
  return n;
}

Executor::Executor(int workers) {
  if (workers <= 0) workers = default_workers();
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.push_back(std::make_unique<Worker>());
  for (int i = 0; i < workers; ++i)
    workers_[static_cast<std::size_t>(i)]->thread =
        std::thread([this, i] { worker_loop(i); });
  workers_gauge().set(static_cast<double>(workers));
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lk(sleep_m_);
    stop_.store(true, std::memory_order_release);
    ++work_epoch_;
  }
  sleep_cv_.notify_all();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
  // Queued-but-unrun tasks are dropped, not run: at teardown their
  // captures may already be destroyed. Components quiesce before
  // destroying themselves (JobScheduler::shutdown waits for its chains).
  std::lock_guard<std::mutex> lk(injection_m_);
  for (Task* t : injection_) delete t;
  injection_.clear();
  for (auto& w : workers_)
    while (Task* t = w->deque.pop_bottom()) delete t;
}

void Executor::submit(std::function<void()> fn) {
  Task* task = new Task{std::move(fn)};
  submitted_.fetch_add(1, std::memory_order_relaxed);
  depth_gauge().set(static_cast<double>(
      submitted_.load(std::memory_order_relaxed) -
      executed_.load(std::memory_order_relaxed)));
  if (t_owner == this &&
      workers_[static_cast<std::size_t>(t_worker_index)]->deque.push_bottom(
          task)) {
    // Fast path: continuation lands on the submitting worker's own deque.
  } else {
    {
      std::lock_guard<std::mutex> lk(injection_m_);
      injection_.push_back(task);
    }
    injected_.fetch_add(1, std::memory_order_relaxed);
    injected_counter().add(1);
  }
  wake_workers(1);
}

void Executor::wake_workers(int count) {
  // The epoch bump must happen under sleep_m_: a worker pins the epoch,
  // takes a last look at the queues, then sleeps on "epoch changed" — the
  // lock makes that re-check and this bump totally ordered, so a task
  // submitted in the gap can never be missed (no lost-wakeup window).
  {
    std::lock_guard<std::mutex> lk(sleep_m_);
    ++work_epoch_;
  }
  if (sleepers_.load(std::memory_order_relaxed) == 0) return;
  if (count == 1)
    sleep_cv_.notify_one();
  else
    sleep_cv_.notify_all();
}

Executor::Task* Executor::pop_injection() {
  std::lock_guard<std::mutex> lk(injection_m_);
  if (injection_.empty()) return nullptr;
  Task* t = injection_.front();
  injection_.pop_front();
  return t;
}

Executor::Task* Executor::try_acquire(int index, std::uint32_t& rng) {
  Task* t =
      workers_[static_cast<std::size_t>(index)]->deque.pop_bottom();
  if (t != nullptr) return t;
  t = pop_injection();
  if (t != nullptr) return t;
  const int n = workers();
  if (n <= 1) return nullptr;
  // Two sweeps over peers starting at a per-worker pseudo-random victim:
  // a failed CAS under contention is a retry, not emptiness.
  for (int sweep = 0; sweep < 2; ++sweep) {
    rng = rng * 1664525u + 1013904223u;
    const int start = static_cast<int>(rng % static_cast<std::uint32_t>(n));
    for (int k = 0; k < n; ++k) {
      const int victim = (start + k) % n;
      if (victim == index) continue;
      t = workers_[static_cast<std::size_t>(victim)]->deque.steal_top();
      if (t != nullptr) {
        stolen_.fetch_add(1, std::memory_order_relaxed);
        steals_counter().add(1);
        return t;
      }
    }
  }
  return nullptr;
}

void Executor::run_task(Task* task) {
  const auto start = std::chrono::steady_clock::now();
  task->fn();
  delete task;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  busy_ns_.fetch_add(static_cast<std::uint64_t>(ns),
                     std::memory_order_relaxed);
  busy_counter().add(static_cast<std::uint64_t>(ns / 1000));
  executed_.fetch_add(1, std::memory_order_relaxed);
  tasks_counter().add(1);
}

void Executor::worker_loop(int index) {
  t_owner = this;
  t_worker_index = index;
  std::uint32_t rng =
      0x9e3779b9u ^ (static_cast<std::uint32_t>(index) * 2654435761u);
  while (!stop_.load(std::memory_order_acquire)) {
    Task* t = try_acquire(index, rng);
    if (t != nullptr) {
      run_task(t);
      continue;
    }
    std::unique_lock<std::mutex> lk(sleep_m_);
    const std::uint64_t epoch = work_epoch_;
    lk.unlock();
    // Last look with the epoch pinned: anything submitted after this scan
    // bumps the epoch and the predicate below refuses to sleep.
    t = try_acquire(index, rng);
    if (t != nullptr) {
      run_task(t);
      continue;
    }
    lk.lock();
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    sleep_cv_.wait_for(lk, std::chrono::milliseconds(50), [&] {
      return stop_.load(std::memory_order_acquire) || work_epoch_ != epoch;
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
  t_owner = nullptr;
  t_worker_index = -1;
}

bool Executor::on_worker_thread() const { return t_owner == this; }

Executor::TimerId Executor::schedule_after(double delay_ms,
                                           std::function<void()> fn) {
  return schedule_at(TimerWheel::Clock::now() +
                         std::chrono::duration_cast<TimerWheel::Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 delay_ms < 0.0 ? 0.0 : delay_ms)),
                     std::move(fn));
}

Executor::TimerId Executor::schedule_at(TimerWheel::Clock::time_point due,
                                        std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(wheel_m_);
    if (!wheel_)
      wheel_ = std::make_unique<TimerWheel>(
          [this](std::function<void()> f) { submit(std::move(f)); });
  }
  return wheel_->schedule_at(due, std::move(fn));
}

bool Executor::cancel_timer(TimerId id) {
  std::unique_lock<std::mutex> lk(wheel_m_);
  if (!wheel_) return false;
  TimerWheel* wheel = wheel_.get();
  lk.unlock();
  return wheel->cancel(id);
}

ExecutorStats Executor::stats() const {
  ExecutorStats s;
  s.workers = workers();
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.executed = executed_.load(std::memory_order_relaxed);
  s.stolen = stolen_.load(std::memory_order_relaxed);
  s.injected = injected_.load(std::memory_order_relaxed);
  s.pending = s.submitted >= s.executed ? s.submitted - s.executed : 0;
  s.busy_seconds =
      static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

Executor& Executor::global() {
  // Touch the registries first so their statics outlive the executor and
  // late tasks can still bump counters during teardown.
  (void)obs::MetricsRegistry::global();
  static Executor* instance = new Executor(default_workers());
  return *instance;
}

}  // namespace gns::exec
