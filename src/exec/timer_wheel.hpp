#pragma once

/// \file timer_wheel.hpp
/// Hashed timer wheel with a dedicated tick thread.
///
/// Timers are hashed into kSlots buckets by due tick (1ms granularity);
/// insert and cancel are O(1) map + bucket operations. The tick thread
/// sleeps until the soonest armed deadline (indefinitely when idle — no
/// periodic wakeups), then advances the cursor slot by slot, firing every
/// entry whose due tick has passed. Fired callbacks are handed to a
/// dispatch function (the executor's submit) so the wheel thread never
/// runs user code and a slow callback cannot delay other timers.
///
/// cancel() returns true iff the callback will never run — the contract
/// the scheduler relies on for deadline-timer bookkeeping (a successful
/// cancel transfers ownership of the "task outstanding" count back to the
/// canceller).

#include <cstdint>
#include <functional>
#include <unordered_map>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace gns::exec {

class TimerWheel {
 public:
  using TimerId = std::uint64_t;
  using Clock = std::chrono::steady_clock;

  /// dispatch is invoked from the wheel thread with each fired callback;
  /// it must be cheap and non-blocking (typically Executor::submit).
  explicit TimerWheel(std::function<void(std::function<void()>)> dispatch);
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  TimerId schedule_at(Clock::time_point due, std::function<void()> fn);
  TimerId schedule_after(double delay_ms, std::function<void()> fn);

  /// True iff the callback will never run (it had not yet been handed to
  /// dispatch). False when it already fired, was already cancelled, or the
  /// id is unknown.
  bool cancel(TimerId id);

  /// Currently armed timers (diagnostics).
  std::size_t armed() const;

 private:
  static constexpr std::size_t kSlots = 256;
  static constexpr std::int64_t kTickNs = 1'000'000;  // 1ms granularity

  struct Entry {
    TimerId id;
    std::int64_t due_tick;
    std::function<void()> fn;
  };

  std::int64_t tick_of(Clock::time_point tp) const;
  void loop();

  std::function<void(std::function<void()>)> dispatch_;
  Clock::time_point epoch_;

  mutable std::mutex m_;
  std::condition_variable cv_;
  std::vector<std::vector<Entry>> slots_;
  std::unordered_map<TimerId, std::size_t> slot_of_;  // id -> slot index
  TimerId next_id_ = 1;
  std::int64_t cursor_tick_ = 0;  // all ticks <= cursor have been processed
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace gns::exec
