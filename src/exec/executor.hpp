#pragma once

/// \file executor.hpp
/// Work-stealing task-graph executor: the single thread pool behind
/// serving, per-step compute parallelism, and net I/O (DESIGN.md §13).
///
/// A fixed worker set (GNS_EXEC_WORKERS, default hardware concurrency)
/// each owns a Chase-Lev deque; external threads submit through a
/// mutex-protected injection queue, workers push continuations onto their
/// own deque and steal from peers when idle. Timers ride a hashed
/// TimerWheel whose fired callbacks are submitted as ordinary tasks, so
/// deadlines and batch windows share cores with compute instead of
/// holding threads.
///
/// Runtime toggle: `GNS_EXEC=0` (or exec::set_enabled(false)) keeps the
/// legacy three-pool layout — serve worker threads, net handler threads,
/// OpenMP regions — as a one-release escape hatch. Components snapshot
/// the flag at construction; exec::parallel_for consults it per call so a
/// bench can compare both paths in one process.
///
/// Determinism: the executor itself adds none of the usual hazards — all
/// parallel loops routed through parallel_for/parallel_chunks use a
/// decomposition that depends only on problem size (never worker count),
/// and every migrated loop either writes disjoint outputs per iteration
/// or reduces over fixed-order lanes, so results are bitwise identical at
/// any GNS_EXEC_WORKERS (see DESIGN.md §13 for the argument).

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

#include "exec/steal_deque.hpp"
#include "exec/timer_wheel.hpp"

namespace gns::exec {

/// Global executor-path switch (GNS_EXEC env, default on). Flipping at
/// runtime only affects code that consults it afterwards; long-lived
/// components (JobScheduler, net::Server) snapshot it at construction.
bool enabled();
void set_enabled(bool on);

/// Worker count the global executor will use: GNS_EXEC_WORKERS, else
/// GNS_NUM_THREADS, else std::thread::hardware_concurrency().
int default_workers();

/// Point-in-time executor counters for benches and the stats endpoint.
struct ExecutorStats {
  int workers = 0;
  std::uint64_t submitted = 0;
  std::uint64_t executed = 0;
  std::uint64_t stolen = 0;    ///< tasks acquired via steal_top
  std::uint64_t injected = 0;  ///< tasks that went through the global queue
  std::uint64_t pending = 0;   ///< submitted - executed (queue depth)
  double busy_seconds = 0.0;   ///< sum of task run time across workers
};

class Executor {
 public:
  using TimerId = TimerWheel::TimerId;

  /// workers <= 0 means default_workers().
  explicit Executor(int workers = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Runs fn on some worker, eventually. Never blocks on task execution
  /// (only on the injection-queue mutex). Safe from worker threads (the
  /// task lands on the calling worker's own deque) and from timers.
  void submit(std::function<void()> fn);

  /// Timer facade over the owned TimerWheel; fired callbacks are
  /// submitted as tasks. cancel_timer true => the callback will never run.
  TimerId schedule_after(double delay_ms, std::function<void()> fn);
  TimerId schedule_at(TimerWheel::Clock::time_point due,
                      std::function<void()> fn);
  bool cancel_timer(TimerId id);

  int workers() const { return static_cast<int>(workers_.size()); }
  ExecutorStats stats() const;

  /// True when the calling thread is one of this executor's workers.
  bool on_worker_thread() const;

  /// Process-wide executor, built on first use with default_workers().
  /// Never destroyed (tasks may reference it from atexit-ordered code).
  static Executor& global();

 private:
  struct Task {
    std::function<void()> fn;
  };
  struct Worker {
    StealDeque<Task> deque;
    std::thread thread;
  };

  friend struct ParallelAccess;  // parallel_for internals

  void worker_loop(int index);
  Task* try_acquire(int index, std::uint32_t& rng);
  Task* pop_injection();
  void run_task(Task* task);
  void wake_workers(int count);

  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex injection_m_;
  std::deque<Task*> injection_;

  std::mutex sleep_m_;
  std::condition_variable sleep_cv_;
  std::uint64_t work_epoch_ = 0;  // guarded by sleep_m_
  std::atomic<int> sleepers_{0};
  std::atomic<bool> stop_{false};

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::uint64_t> busy_ns_{0};

  std::unique_ptr<TimerWheel> wheel_;  // lazily created on first timer
  std::mutex wheel_m_;
};

}  // namespace gns::exec
