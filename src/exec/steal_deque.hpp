#pragma once

/// \file steal_deque.hpp
/// Chase-Lev work-stealing deque over raw pointers.
///
/// One owner thread pushes and pops at the bottom; any number of thieves
/// steal from the top. The memory orderings follow the corrected
/// weak-memory-model formulation of Le, Pop, Cohen & Nardelli (PPoPP'13):
/// the owner's pop publishes its speculative bottom decrement with a
/// seq_cst fence before reading top, and both the owner (on the
/// last-element race) and thieves resolve contention with a seq_cst CAS
/// on top.
///
/// The ring is fixed capacity (power of two). push_bottom returns false
/// when full instead of growing, so the array pointer never changes and
/// thieves can read it without indirection or reclamation machinery;
/// callers overflow into the executor's mutex-protected injection queue.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gns::exec {

template <typename T>
class StealDeque {
 public:
  explicit StealDeque(std::size_t capacity = 1024)
      : mask_(capacity - 1), ring_(capacity) {}

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Owner only. False when the ring is full.
  bool push_bottom(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(ring_.size())) return false;
    ring_[static_cast<std::size_t>(b) & mask_].store(
        item, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
    return true;
  }

  /// Owner only. Null when empty (or when the last element was lost to a
  /// concurrent thief).
  T* pop_bottom() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // already empty: undo the speculative decrement
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item =
        ring_[static_cast<std::size_t>(b) & mask_].load(std::memory_order_relaxed);
    if (t == b) {
      // Single element left: race thieves for it via top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed))
        item = nullptr;  // a thief won
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Thieves. Null when empty or when the CAS lost a race (caller retries
  /// elsewhere; this is not a failure).
  T* steal_top() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    T* item =
        ring_[static_cast<std::size_t>(t) & mask_].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return nullptr;
    return item;
  }

  /// Racy size hint for wake/park heuristics only.
  bool empty_hint() const {
    return bottom_.load(std::memory_order_relaxed) <=
           top_.load(std::memory_order_relaxed);
  }

 private:
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::size_t mask_;
  std::vector<std::atomic<T*>> ring_;
};

}  // namespace gns::exec
