#pragma once

/// \file io_bridge.hpp
/// Self-pipe poll bridge: readiness events on registered fds become
/// executor tasks.
///
/// One dedicated poller thread runs poll() over the armed watches plus an
/// internal wake pipe. When a watch fires it is disarmed (oneshot) and
/// its callback is submitted to the executor with the revents mask; the
/// callback re-arms via rearm() when it wants more events. Oneshot
/// semantics guarantee at most one in-flight callback task per watch, so
/// per-connection state needs no locking against the bridge itself (only
/// against timers the owner schedules separately).
///
/// Callbacks never reference the bridge internally — stop() joins the
/// poller and then waits for already-submitted callback tasks to finish,
/// after which the owner may destroy the bridge. rearm()/unwatch() on a
/// stopped bridge are harmless no-ops.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace gns::exec {

class Executor;

class IoBridge {
 public:
  /// revents: the poll() revents mask (POLLIN/POLLOUT/POLLERR/POLLHUP/
  /// POLLNVAL). A watch whose fd goes invalid fires with POLLNVAL.
  using Callback = std::function<void(short)>;

  explicit IoBridge(Executor& executor);
  ~IoBridge();

  IoBridge(const IoBridge&) = delete;
  IoBridge& operator=(const IoBridge&) = delete;

  /// Registers fd, armed for `events`. Returns a watch id (> 0).
  int watch(int fd, short events, Callback cb);

  /// Re-arms a (disarmed) watch for `events`. Typically called at the end
  /// of the callback task.
  void rearm(int id, short events);

  /// Unregisters the watch; its callback will not be submitted again
  /// (an already-submitted callback task may still be running).
  void unwatch(int id);

  /// Joins the poller and waits for in-flight callback tasks to drain.
  /// Idempotent.
  void stop();

 private:
  struct Watch {
    int fd = -1;
    short events = 0;
    bool armed = false;
  };

  void loop();
  void wake();

  Executor& executor_;
  std::mutex m_;
  std::unordered_map<int, Watch> watches_;
  std::unordered_map<int, Callback> callbacks_;  // id -> cb, copied per fire
  int next_id_ = 1;
  int wake_fds_[2] = {-1, -1};
  std::atomic<bool> stop_{false};
  std::shared_ptr<std::atomic<int>> inflight_;  // submitted, not yet finished
  std::thread thread_;
};

}  // namespace gns::exec
