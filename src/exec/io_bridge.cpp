#include "exec/io_bridge.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <utility>
#include <vector>

#include "exec/executor.hpp"
#include "obs/metrics.hpp"

namespace gns::exec {

namespace {

obs::Counter& events_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("exec.io.events");
  return c;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

IoBridge::IoBridge(Executor& executor)
    : executor_(executor),
      inflight_(std::make_shared<std::atomic<int>>(0)) {
  if (::pipe(wake_fds_) == 0) {
    set_nonblocking(wake_fds_[0]);
    set_nonblocking(wake_fds_[1]);
  }
  thread_ = std::thread([this] { loop(); });
}

IoBridge::~IoBridge() {
  stop();
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

void IoBridge::wake() {
  if (wake_fds_[1] >= 0) {
    const char b = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &b, 1);
  }
}

int IoBridge::watch(int fd, short events, Callback cb) {
  int id;
  {
    std::lock_guard<std::mutex> lk(m_);
    id = next_id_++;
    watches_[id] = Watch{fd, events, true};
    callbacks_[id] = std::move(cb);
  }
  wake();
  return id;
}

void IoBridge::rearm(int id, short events) {
  {
    std::lock_guard<std::mutex> lk(m_);
    auto it = watches_.find(id);
    if (it == watches_.end()) return;
    it->second.events = events;
    it->second.armed = true;
  }
  wake();
}

void IoBridge::unwatch(int id) {
  {
    std::lock_guard<std::mutex> lk(m_);
    watches_.erase(id);
    callbacks_.erase(id);
  }
  wake();
}

void IoBridge::stop() {
  if (stop_.exchange(true)) {
    // Second caller still waits for the drain below.
  } else {
    wake();
  }
  if (thread_.joinable()) thread_.join();
  // Callback tasks already handed to the executor may still be queued or
  // running; they carry copies of the callbacks (not bridge pointers), so
  // once the counter drains the owner may tear down.
  while (inflight_->load(std::memory_order_acquire) > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

void IoBridge::loop() {
  std::vector<pollfd> fds;
  std::vector<int> ids;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    fds.clear();
    ids.clear();
    fds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    ids.push_back(0);
    {
      std::lock_guard<std::mutex> lk(m_);
      for (const auto& [id, w] : watches_) {
        if (!w.armed) continue;
        fds.push_back(pollfd{w.fd, w.events, 0});
        ids.push_back(id);
      }
    }
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);
    if (rc <= 0) continue;
    if ((fds[0].revents & POLLIN) != 0) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    for (std::size_t i = 1; i < fds.size(); ++i) {
      const short re = fds[i].revents;
      if (re == 0) continue;
      Callback cb;
      {
        std::lock_guard<std::mutex> lk(m_);
        auto it = watches_.find(ids[i]);
        if (it == watches_.end() || !it->second.armed) continue;
        it->second.armed = false;  // oneshot: cb re-arms when ready
        cb = callbacks_[ids[i]];
      }
      events_counter().add(1);
      inflight_->fetch_add(1, std::memory_order_acq_rel);
      auto inflight = inflight_;
      executor_.submit([cb = std::move(cb), re, inflight]() {
        cb(re);
        inflight->fetch_sub(1, std::memory_order_acq_rel);
      });
    }
  }
}

}  // namespace gns::exec
