#include "exec/timer_wheel.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"

namespace gns::exec {

namespace {

obs::Counter& scheduled_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("exec.timer.scheduled");
  return c;
}
obs::Counter& fired_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("exec.timer.fired");
  return c;
}
obs::Counter& cancelled_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("exec.timer.cancelled");
  return c;
}

}  // namespace

TimerWheel::TimerWheel(std::function<void(std::function<void()>)> dispatch)
    : dispatch_(std::move(dispatch)),
      epoch_(Clock::now()),
      slots_(kSlots) {
  thread_ = std::thread([this] { loop(); });
}

TimerWheel::~TimerWheel() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::int64_t TimerWheel::tick_of(Clock::time_point tp) const {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_)
          .count();
  return ns <= 0 ? 0 : ns / kTickNs;
}

TimerWheel::TimerId TimerWheel::schedule_at(Clock::time_point due,
                                            std::function<void()> fn) {
  std::unique_lock<std::mutex> lk(m_);
  const TimerId id = next_id_++;
  // Round the due time UP to a tick boundary: a callback must never run
  // before its due point (deadline-capped batch windows rely on firing
  // meaning "the deadline has lapsed"). Entries at or before the cursor
  // land on the next unprocessed tick so the wheel thread cannot skip
  // them.
  const auto due_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(due - epoch_)
          .count();
  const std::int64_t due_ceil =
      due_ns <= 0 ? 0 : (due_ns + kTickNs - 1) / kTickNs;
  const std::int64_t due_tick = std::max(due_ceil, cursor_tick_ + 1);
  const std::size_t slot = static_cast<std::size_t>(due_tick) % kSlots;
  slots_[slot].push_back(Entry{id, due_tick, std::move(fn)});
  slot_of_.emplace(id, slot);
  lk.unlock();
  cv_.notify_all();
  scheduled_counter().add(1);
  return id;
}

TimerWheel::TimerId TimerWheel::schedule_after(double delay_ms,
                                               std::function<void()> fn) {
  const auto delay = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(std::max(0.0, delay_ms)));
  return schedule_at(Clock::now() + delay, std::move(fn));
}

bool TimerWheel::cancel(TimerId id) {
  std::lock_guard<std::mutex> lk(m_);
  auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return false;
  auto& bucket = slots_[it->second];
  for (auto eit = bucket.begin(); eit != bucket.end(); ++eit) {
    if (eit->id == id) {
      bucket.erase(eit);
      slot_of_.erase(it);
      cancelled_counter().add(1);
      return true;
    }
  }
  // Map said the timer exists but the bucket disagrees: it is being fired
  // right now (loop() removes bucket entries before unlocking).
  return false;
}

std::size_t TimerWheel::armed() const {
  std::lock_guard<std::mutex> lk(m_);
  return slot_of_.size();
}

void TimerWheel::loop() {
  std::unique_lock<std::mutex> lk(m_);
  while (!stop_) {
    if (slot_of_.empty()) {
      cv_.wait(lk, [this] { return stop_ || !slot_of_.empty(); });
      continue;
    }
    // Soonest armed deadline (armed count is small: batch windows +
    // in-flight request deadlines).
    std::int64_t soonest = INT64_MAX;
    for (const auto& [id, slot] : slot_of_) {
      for (const auto& e : slots_[slot])
        if (e.id == id) soonest = std::min(soonest, e.due_tick);
    }
    const auto wake = epoch_ + std::chrono::nanoseconds(soonest * kTickNs);
    if (Clock::now() < wake) {
      cv_.wait_until(lk, wake);
      continue;  // re-evaluate: new timers or stop may have arrived
    }
    // Advance the cursor, firing everything due. Collect under the lock,
    // dispatch outside it.
    const std::int64_t now_tick = tick_of(Clock::now());
    std::vector<Entry> due;
    while (cursor_tick_ < now_tick) {
      ++cursor_tick_;
      auto& bucket = slots_[static_cast<std::size_t>(cursor_tick_) % kSlots];
      for (std::size_t i = 0; i < bucket.size();) {
        if (bucket[i].due_tick <= cursor_tick_) {
          slot_of_.erase(bucket[i].id);
          due.push_back(std::move(bucket[i]));
          bucket[i] = std::move(bucket.back());
          bucket.pop_back();
        } else {
          ++i;
        }
      }
    }
    if (!due.empty()) {
      lk.unlock();
      // Fire in due order so two timers in the same batch keep their
      // deadline ordering.
      std::sort(due.begin(), due.end(),
                [](const Entry& a, const Entry& b) {
                  return a.due_tick < b.due_tick ||
                         (a.due_tick == b.due_tick && a.id < b.id);
                });
      for (auto& e : due) dispatch_(std::move(e.fn));
      fired_counter().add(static_cast<std::uint64_t>(due.size()));
      lk.lock();
    }
  }
}

}  // namespace gns::exec
