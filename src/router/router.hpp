#pragma once

/// \file router.hpp
/// Front door of a rollout fleet: one process that speaks the same wire
/// protocol as `serve_rollouts --listen` and load-balances every
/// RolloutRequest across N backend servers.
///
/// Placement needs no config file: backends are given as host:port pairs
/// and everything else is learned over the wire. On first contact the
/// router sends a v3 HELLO; the backend answers with its protocol version,
/// loaded model names, and in-flight capacity. Work goes to the
/// least-in-flight healthy backend that serves the requested model and has
/// a free slot. Pre-v3 backends (which greet the HELLO with a fatal
/// BadVersion) are still usable under conservative defaults — see
/// backend.hpp.
///
/// Failure semantics, the contract the fault-injection suite pins:
///  - a backend that dies BEFORE its first chunk is evicted and the
///    request transparently retries on a sibling — rollouts are
///    idempotent, the client sees one clean stream, bitwise identical to a
///    direct rollout;
///  - a backend that dies AFTER streaming began cannot be retried without
///    duplicating frames: the client gets a typed ErrorReply{BackendLost}
///    (Internal with an explanatory message for pre-v3 clients);
///  - a Busy backend is skipped for a sibling; when every capable backend
///    is busy the Busy travels end-to-end so the client's backoff loop —
///    the fleet's real admission queue — takes over;
///  - trace_ids pass through both hops untouched, so one id greps across
///    client, router, and backend logs.
///
/// Health: a probe loop sends each backend a periodic StatsRequest with a
/// deadline (plain TCP connect for v1 peers, which predate stats). A
/// timeout or I/O failure — from the probe or from any proxied request —
/// evicts the backend: its pool closes and placement skips it. Eviction
/// starts an exponentially growing re-admission backoff; once due, the
/// probe loop re-handshakes (HELLO again: the peer may have come back as a
/// different binary) and a success re-admits.
///
/// The router answers StatsRequest with its OWN metrics (router.* —
/// evictions, failovers, per-backend health) and HELLO with the aggregate
/// capability of its healthy fleet (union of models, summed capacity), so
/// routers stack behind routers.
///
/// Drain ordering for a whole fleet: drain the router FIRST (stop
/// admitting, finish proxied streams, close backend connections), then
/// drain the backends — the reverse order would drop the router's
/// in-flight work. Router::stop() implements the router half; no accepted
/// request is dropped.
///
/// Threading: one acceptor thread, one probe thread, one thread per client
/// connection (blocking proxy loop — a router fronts few clients each
/// issuing streams, not thousands of idle sockets). Backend connections
/// are pooled per backend and exclusively checked out per request.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "router/backend.hpp"

namespace gns::router {

struct RouterConfig {
  std::string host = "127.0.0.1";  ///< bind address
  int port = 0;                    ///< 0 picks an ephemeral port
  std::vector<BackendAddress> backends;
  int max_connections = 64;  ///< accepted client conns beyond this close
  /// Probe cadence and reply deadline; a probe miss evicts the backend.
  double probe_interval_ms = 1000.0;
  double probe_timeout_ms = 1000.0;
  /// Placement attempts per request across distinct backends; <= 0 means
  /// one attempt per configured backend.
  int max_attempts = 0;
  /// A client connection with no traffic for this long closes. <= 0
  /// disables.
  double client_idle_timeout_ms = 60'000.0;
  /// stop() waits at most this long for in-flight proxied requests.
  double drain_timeout_ms = 30'000.0;
  BackendTuning tuning;  ///< timeouts, legacy capacity, eviction backoff
  std::string metrics_prefix = "router";
};

/// Point-in-time view of one backend, for operators and tests.
struct BackendSnapshot {
  BackendAddress address;
  BackendHealth health = BackendHealth::Unknown;
  BackendCapabilities capabilities;
  int inflight = 0;
};

class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();  ///< calls stop()

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds and starts the acceptor + probe threads. Does NOT wait for any
  /// backend: dead ones stay Unknown/Evicted until the probe loop reaches
  /// them, and requests simply avoid them.
  [[nodiscard]] bool start();

  /// Graceful drain: stop accepting, answer new requests with
  /// ShuttingDown, let in-flight proxied streams finish (bounded by
  /// drain_timeout_ms), close backend connections. Idempotent.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] std::vector<BackendSnapshot> snapshot() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// One client connection, owned by its thread; registered so stop() can
  /// shutdown() stragglers past the drain deadline.
  struct Session {
    std::atomic<int> fd{-1};
  };

  enum class ProxyOutcome {
    Done,           ///< a terminal frame reached the client
    ClientLost,     ///< the client went away mid-stream; tear down
    RetryBusy,      ///< backend answered Busy; try a sibling
    RetryDraining,  ///< backend is draining; try a sibling
    RetryDead,      ///< backend died before its first chunk; evicted
    /// Placement was optimistic (capabilities unknown) but the checkout
    /// handshake revealed the backend does not serve the model.
    RetryIncapable,
    FatalStreamLost  ///< backend died after streaming began
  };

  enum class PickOutcome {
    Picked,
    NoBackendForModel,  ///< healthy backends exist; none serves the model
    AllBusy,            ///< capable backends exist; all at capacity
    AllDown             ///< nothing healthy at all
  };

  void acceptor_loop();
  void probe_loop();
  void probe_backend(Backend& backend);
  void serve_client(std::shared_ptr<Session> session);
  /// Dispatches one decoded client frame. False when the session must end.
  bool dispatch_frame(Session& session, const net::FrameView& frame);
  bool proxy_rollout(Session& session, const net::FrameView& frame);
  ProxyOutcome proxy_once(Session& session, std::uint64_t client_request_id,
                          std::uint8_t client_version,
                          const serve::RolloutRequest& request,
                          Backend& backend);
  void answer_stats(Session& session, const net::FrameView& frame);
  void answer_hello(Session& session, const net::FrameView& frame);

  Backend* pick_backend(const std::string& model,
                        const std::vector<Backend*>& exclude,
                        PickOutcome& outcome);
  void evict_backend(Backend& backend, const std::string& why);
  void update_health_gauge();

  bool send_to_client(Session& session,
                      const std::vector<std::uint8_t>& frame);
  void send_error(Session& session, std::uint64_t request_id,
                  std::uint8_t version, net::NetError code,
                  const std::string& message);

  RouterConfig config_;
  std::vector<std::unique_ptr<Backend>> backends_;

  int listen_fd_ = -1;
  int port_ = 0;
  Clock::time_point started_{};
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int> active_clients_{0};
  std::atomic<int> inflight_{0};
  std::once_flag stop_once_;

  std::thread acceptor_;
  std::thread prober_;
  std::mutex sessions_mutex_;
  std::vector<std::thread> session_threads_;
  std::list<std::shared_ptr<Session>> sessions_;

  // router.* instruments (cached handles; registry owns them).
  obs::Counter& requests_;
  obs::Counter& retries_;
  obs::Counter& failovers_;
  obs::Counter& evictions_;
  obs::Counter& readmissions_;
  obs::Counter& backend_lost_;
  obs::Counter& busy_rejected_;
  obs::Counter& probes_;
  obs::Gauge& backends_healthy_;
  obs::Gauge& inflight_gauge_;
  obs::Gauge& active_clients_gauge_;
};

}  // namespace gns::router
