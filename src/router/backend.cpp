#include "router/backend.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/logging.hpp"

namespace gns::router {

namespace {

using Clock = std::chrono::steady_clock;

/// Idle connections kept per backend; more just close on checkin.
constexpr std::size_t kMaxIdleConns = 8;

double ms_until(Clock::time_point deadline) {
  return std::chrono::duration<double, std::milli>(deadline - Clock::now())
      .count();
}

}  // namespace

bool parse_backend_address(const std::string& spec, BackendAddress& out) {
  std::string host = "127.0.0.1";
  std::string port_str = spec;
  const std::size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) host = spec.substr(0, colon);
    port_str = spec.substr(colon + 1);
  }
  if (port_str.empty() || host.empty()) return false;
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port <= 0 || port > 65535)
    return false;
  out.host = host;
  out.port = static_cast<int>(port);
  return true;
}

// ---- BackendConn -----------------------------------------------------------

BackendConn::BackendConn(BackendAddress address)
    : address_(std::move(address)) {}

BackendConn::~BackendConn() { close(); }

bool BackendConn::connect(double timeout_ms) {
  close();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string port = std::to_string(address_.port);
  if (::getaddrinfo(address_.host.c_str(), port.c_str(), &hints, &results) !=
      0)
    return false;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd_ = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd_ < 0) continue;
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_ms / 1000.0);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (::connect(fd_, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(results);
      buf_.clear();
      consumed_ = 0;
      return true;
    }
    ::close(fd_);
    fd_ = -1;
  }
  ::freeaddrinfo(results);
  return false;
}

void BackendConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
  consumed_ = 0;
}

bool BackendConn::send_frame(const std::vector<std::uint8_t>& frame) {
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

BackendConn::ReadStatus BackendConn::read_frame(net::FrameView& frame,
                                                std::string& error,
                                                double timeout_ms) {
  if (consumed_ > 0) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             std::max(0.0, timeout_ms)));
  for (;;) {
    net::DecodeError decode_error;
    const net::DecodeStatus status =
        net::try_decode_frame(buf_.data(), buf_.size(), frame, decode_error);
    if (status == net::DecodeStatus::Ok) {
      consumed_ = frame.frame_bytes;
      return ReadStatus::Ok;
    }
    if (status == net::DecodeStatus::Error) {
      error = "protocol error from backend: " + decode_error.message;
      return ReadStatus::Error;
    }

    const double remaining = ms_until(deadline);
    if (remaining <= 0.0) {
      error = "backend reply timed out";
      return ReadStatus::Timeout;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1,
                          static_cast<int>(std::min(remaining, 1000.0)) + 1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      error = std::string("poll failed: ") + std::strerror(errno);
      return ReadStatus::Error;
    }
    if (rc == 0) continue;  // tick; deadline re-checked above
    std::uint8_t chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      error = "backend closed the connection";
      return ReadStatus::Closed;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      error = std::string("recv failed: ") + std::strerror(errno);
      return ReadStatus::Error;
    }
    buf_.insert(buf_.end(), chunk, chunk + n);
  }
}

// ---- Backend ---------------------------------------------------------------

Backend::Backend(BackendAddress address, BackendTuning tuning)
    : address_(std::move(address)),
      tuning_(tuning),
      backoff_ms_(tuning.readmit_backoff_ms) {}

std::unique_ptr<BackendConn> Backend::checkout(std::string& error) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!idle_.empty()) {
      std::unique_ptr<BackendConn> conn = std::move(idle_.back());
      idle_.pop_back();
      return conn;
    }
  }
  auto conn = std::make_unique<BackendConn>(address_);
  if (!conn->connect(tuning_.connect_timeout_ms)) {
    error = "connect to " + label() + " failed";
    return nullptr;
  }
  if (!handshake(conn, error)) return nullptr;
  return conn;
}

void Backend::checkin(std::unique_ptr<BackendConn> conn) {
  if (!conn || !conn->connected()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  // An eviction between checkout and checkin closed the pool; a stale
  // connection must not outlive that decision.
  if (health_ == BackendHealth::Evicted) return;
  if (idle_.size() < kMaxIdleConns) idle_.push_back(std::move(conn));
}

bool Backend::handshake(std::unique_ptr<BackendConn>& conn,
                        std::string& error) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Legacy peers never re-handshake: the HELLO would kill the fresh
    // connection all over again. Version upgrades happen via the probe
    // loop's re-admission path after an eviction.
    if (caps_known_ && caps_.legacy) return true;
  }

  net::WireHello hello;
  hello.kind = net::WireHello::kRouter;
  const std::uint64_t request_id = conn->next_request_id();
  if (!conn->send_frame(net::encode_hello(request_id, hello))) {
    error = "hello send to " + label() + " failed";
    return false;
  }
  net::FrameView frame;
  const BackendConn::ReadStatus status =
      conn->read_frame(frame, error, tuning_.hello_timeout_ms);
  if (status != BackendConn::ReadStatus::Ok) {
    if (error.empty()) error = "hello to " + label() + " got no reply";
    return false;
  }

  std::string parse_error;
  if (frame.type == net::MessageType::HelloReply) {
    net::WireHelloReply reply;
    if (!net::decode_hello_reply(frame, reply, parse_error)) {
      error = "bad hello reply from " + label() + ": " + parse_error;
      return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    caps_.wire_version = static_cast<std::uint8_t>(
        std::min<int>(net::kProtocolVersion, reply.protocol_version));
    caps_.legacy = false;
    caps_.draining = reply.draining != 0;
    caps_.models.assign(reply.models.begin(), reply.models.end());
    caps_.capacity = static_cast<int>(
        std::min<std::uint32_t>(reply.max_inflight, 1u << 20));
    caps_.workers = static_cast<int>(reply.workers);
    caps_known_ = true;
    return true;
  }
  if (frame.type == net::MessageType::ErrorReply) {
    net::WireError wire_error;
    if (net::decode_error_reply(frame, wire_error, parse_error) &&
        (wire_error.code == net::NetError::BadVersion ||
         wire_error.code == net::NetError::BadType)) {
      // A pre-v3 peer. The error frame's version byte is the newest
      // protocol it speaks (servers answer in their own version when the
      // peer's is unusable). BadVersion is fatal on the peer's side — it
      // closed this connection — so reconnect silently, sans hello.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        caps_.wire_version = static_cast<std::uint8_t>(
            std::min<int>(net::kProtocolVersion, frame.version));
        caps_.legacy = true;
        caps_.draining = false;
        caps_.models.clear();
        caps_.capacity = std::max(1, tuning_.legacy_capacity);
        caps_.workers = 0;
        caps_known_ = true;
      }
      GNS_INFO("router: backend " << label() << " is pre-v3 (speaks v"
                                  << static_cast<int>(frame.version)
                                  << "); using conservative defaults");
      if (!conn->connect(tuning_.connect_timeout_ms)) {
        error = "reconnect to legacy backend " + label() + " failed";
        return false;
      }
      return true;
    }
    error = "hello to " + label() + " rejected: " + wire_error.message;
    return false;
  }
  error = "unexpected reply type to hello from " + label();
  return false;
}

BackendCapabilities Backend::capabilities() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return caps_;
}

bool Backend::serves(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!caps_known_ || caps_.legacy) return true;  // optimistic wildcard
  return std::find(caps_.models.begin(), caps_.models.end(), model) !=
         caps_.models.end();
}

int Backend::placement_capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!caps_known_) return 1 << 20;  // effectively unlimited until known
  return std::max(1, caps_.capacity);
}

void Backend::set_draining(bool draining) {
  std::lock_guard<std::mutex> lock(mutex_);
  caps_.draining = draining;
}

BackendHealth Backend::health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return health_;
}

void Backend::mark_healthy() {
  std::lock_guard<std::mutex> lock(mutex_);
  health_ = BackendHealth::Healthy;
  backoff_ms_ = tuning_.readmit_backoff_ms;
}

void Backend::evict() {
  std::vector<std::unique_ptr<BackendConn>> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    health_ = BackendHealth::Evicted;
    evicted_until_ =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               backoff_ms_));
    backoff_ms_ = std::min(backoff_ms_ * 2.0, tuning_.readmit_backoff_max_ms);
    // A fresh re-admission must also re-handshake: the peer may come back
    // as a different binary (new models, new version).
    caps_known_ = false;
    doomed.swap(idle_);
  }
  // Closed outside the lock; ~BackendConn does the work.
}

bool Backend::readmit_due() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return health_ == BackendHealth::Evicted && Clock::now() >= evicted_until_;
}

}  // namespace gns::router
