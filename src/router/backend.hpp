#pragma once

/// \file backend.hpp
/// One backend of a rollout fleet, as the router sees it.
///
/// A Backend owns three things:
///  - its capability record, learned from the v3 HELLO handshake the first
///    time a connection comes up (protocol version, served models,
///    in-flight capacity). A pre-v3 backend answers the HELLO with a fatal
///    BadVersion error encoded in its own version; the handshake reads
///    that version byte, reconnects, and falls back to conservative
///    defaults (legacy_capacity slots, wildcard model match) — so an old
///    binary is still usable, just never preferred;
///  - a pool of idle BackendConns (blocking, exclusively checked out) so
///    concurrent proxied requests each get their own connection without a
///    per-request TCP + HELLO round trip;
///  - its health state: Healthy until an I/O failure or probe timeout
///    evicts it, then Evicted with an exponentially growing re-admission
///    backoff until a probe handshake succeeds again.
///
/// Thread safety: every public method is safe to call from any router
/// thread. A checked-out BackendConn is exclusively owned by its caller
/// and is NOT thread-safe itself.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/protocol.hpp"

namespace gns::router {

struct BackendAddress {
  std::string host = "127.0.0.1";
  int port = 0;
};

/// Parses "host:port" (host defaulting to 127.0.0.1 for a bare ":port" or
/// "port" spec). Returns false on a malformed spec.
[[nodiscard]] bool parse_backend_address(const std::string& spec,
                                         BackendAddress& out);

/// Knobs shared by every Backend of one router.
struct BackendTuning {
  double connect_timeout_ms = 2000.0;  ///< per TCP connect attempt
  double hello_timeout_ms = 2000.0;    ///< handshake reply deadline
  /// Per-frame read deadline while proxying a rollout. Generous: a cold
  /// backend may legitimately compute for a long time before chunk one.
  double io_timeout_ms = 120'000.0;
  /// In-flight slots granted to a pre-v3 backend that cannot advertise
  /// its capacity. Deliberately small: old binaries get correctness, new
  /// ones get throughput.
  int legacy_capacity = 1;
  /// Eviction backoff: first re-admission attempt after readmit_backoff_ms,
  /// doubling per consecutive failure up to readmit_backoff_max_ms.
  double readmit_backoff_ms = 250.0;
  double readmit_backoff_max_ms = 5000.0;
};

/// What the HELLO handshake (or its legacy fallback) learned.
struct BackendCapabilities {
  std::uint8_t wire_version = net::kProtocolVersion;  ///< version we speak
  bool legacy = false;    ///< pre-v3 peer: defaults below, wildcard models
  bool draining = false;  ///< peer said it is draining (HELLO or probe)
  std::vector<std::string> models;  ///< served models; empty+legacy = any
  int capacity = 0;                 ///< max in-flight the router will place
  int workers = 0;                  ///< peer's scheduler workers (hint)
};

/// One blocking TCP connection to a backend, exclusively owned by the
/// checker-outer. Framing only — capability/health logic lives in Backend.
class BackendConn {
 public:
  enum class ReadStatus { Ok, Closed, Timeout, Error };

  explicit BackendConn(BackendAddress address);
  ~BackendConn();
  BackendConn(const BackendConn&) = delete;
  BackendConn& operator=(const BackendConn&) = delete;

  /// Fresh getaddrinfo + connect (never a cached resolution).
  [[nodiscard]] bool connect(double timeout_ms);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  [[nodiscard]] bool send_frame(const std::vector<std::uint8_t>& frame);
  /// Blocks until one whole frame is buffered (deadline timeout_ms). The
  /// FrameView borrows this connection's buffer: valid until the next
  /// read_frame/close.
  [[nodiscard]] ReadStatus read_frame(net::FrameView& frame,
                                      std::string& error, double timeout_ms);

  /// Request ids are per-connection (the wire scopes them that way).
  [[nodiscard]] std::uint64_t next_request_id() { return next_request_id_++; }

 private:
  BackendAddress address_;
  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::vector<std::uint8_t> buf_;  ///< partial-frame carryover
  std::size_t consumed_ = 0;       ///< frame handed out by the last read
};

enum class BackendHealth : std::uint8_t {
  Unknown,  ///< never handshaked yet; optimistically placeable
  Healthy,
  Evicted,
};

[[nodiscard]] inline const char* to_string(BackendHealth h) {
  switch (h) {
    case BackendHealth::Unknown: return "unknown";
    case BackendHealth::Healthy: return "healthy";
    case BackendHealth::Evicted: return "evicted";
  }
  return "?";
}

class Backend {
 public:
  Backend(BackendAddress address, BackendTuning tuning);

  [[nodiscard]] const BackendAddress& address() const { return address_; }
  [[nodiscard]] std::string label() const {
    return address_.host + ":" + std::to_string(address_.port);
  }

  /// Checks out an exclusive connection: an idle pooled one, or a fresh
  /// connect (+ HELLO handshake when capabilities are not yet known).
  /// nullptr with `error` set on failure — the caller decides whether that
  /// evicts. Never blocks longer than connect+hello timeouts.
  [[nodiscard]] std::unique_ptr<BackendConn> checkout(std::string& error);
  /// Returns a connection that is still in a clean frame boundary (a
  /// half-read stream must be closed instead, not checked in).
  void checkin(std::unique_ptr<BackendConn> conn);

  [[nodiscard]] BackendCapabilities capabilities() const;
  /// Least-in-flight placement asks this: does the backend serve `model`?
  /// True for any model while capabilities are unknown or legacy (the
  /// request itself is the probe that finds out).
  [[nodiscard]] bool serves(const std::string& model) const;
  /// Capacity for placement: advertised max_inflight, legacy_capacity for
  /// legacy peers, unlimited while unknown.
  [[nodiscard]] int placement_capacity() const;
  void set_draining(bool draining);

  [[nodiscard]] int inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  void add_inflight(int delta) {
    inflight_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] BackendHealth health() const;
  /// Probe handshake succeeded (or a proxied request completed): resets
  /// the eviction backoff.
  void mark_healthy();
  /// I/O failure or probe timeout: close the idle pool, extend the
  /// re-admission backoff.
  void evict();
  /// Evicted and past the backoff deadline — the probe loop should try a
  /// re-admission handshake now.
  [[nodiscard]] bool readmit_due() const;

 private:
  /// HELLO on a fresh connection; fills caps under mutex_. On a legacy
  /// BadVersion answer, reconnects (the peer closed) without a hello.
  [[nodiscard]] bool handshake(std::unique_ptr<BackendConn>& conn,
                               std::string& error);

  const BackendAddress address_;
  const BackendTuning tuning_;

  mutable std::mutex mutex_;
  BackendCapabilities caps_;
  bool caps_known_ = false;
  BackendHealth health_ = BackendHealth::Unknown;
  double backoff_ms_;
  std::chrono::steady_clock::time_point evicted_until_{};
  std::vector<std::unique_ptr<BackendConn>> idle_;

  std::atomic<int> inflight_{0};
};

}  // namespace gns::router
