#include "router/router.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <set>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace gns::router {

namespace {

constexpr std::size_t kReadChunkBytes = 64 * 1024;
constexpr std::size_t kCompactThreshold = 256 * 1024;
/// How long an idle session lingers once a drain begins. A client racing
/// the drain gets a typed ShuttingDown (same as against a draining
/// server) instead of a silent close; after the grace the session exits
/// so the drain itself stays fast.
constexpr double kDrainLingerMs = 250.0;

double ms_since(std::chrono::steady_clock::time_point then,
                std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - then).count();
}

bool send_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

timeval to_timeval(double ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  return tv;
}

}  // namespace

Router::Router(RouterConfig config)
    : config_(std::move(config)),
      requests_(obs::MetricsRegistry::global().counter(
          config_.metrics_prefix + ".requests")),
      retries_(obs::MetricsRegistry::global().counter(
          config_.metrics_prefix + ".retries")),
      failovers_(obs::MetricsRegistry::global().counter(
          config_.metrics_prefix + ".failovers")),
      evictions_(obs::MetricsRegistry::global().counter(
          config_.metrics_prefix + ".evictions")),
      readmissions_(obs::MetricsRegistry::global().counter(
          config_.metrics_prefix + ".readmissions")),
      backend_lost_(obs::MetricsRegistry::global().counter(
          config_.metrics_prefix + ".backend_lost")),
      busy_rejected_(obs::MetricsRegistry::global().counter(
          config_.metrics_prefix + ".busy_rejected")),
      probes_(obs::MetricsRegistry::global().counter(
          config_.metrics_prefix + ".probes")),
      backends_healthy_(obs::MetricsRegistry::global().gauge(
          config_.metrics_prefix + ".backends_healthy")),
      inflight_gauge_(obs::MetricsRegistry::global().gauge(
          config_.metrics_prefix + ".inflight")),
      active_clients_gauge_(obs::MetricsRegistry::global().gauge(
          config_.metrics_prefix + ".active_connections")) {
  GNS_CHECK_MSG(!config_.backends.empty(),
                "Router needs at least one backend address");
  for (const BackendAddress& address : config_.backends)
    backends_.push_back(std::make_unique<Backend>(address, config_.tuning));
}

Router::~Router() { stop(); }

bool Router::start() {
  GNS_CHECK_MSG(!running_.load(), "Router::start called twice");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    GNS_ERROR("router: socket() failed: " << std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    GNS_ERROR("router: bad bind address '" << config_.host << "'");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 128) != 0) {
    GNS_ERROR("router: bind/listen on " << config_.host << ":" << config_.port
                                        << " failed: "
                                        << std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);
  // Non-blocking accepts: the acceptor drains the backlog after each poll
  // and must get EAGAIN (not block) when it is empty.
  ::fcntl(listen_fd_, F_SETFL,
          ::fcntl(listen_fd_, F_GETFL, 0) | O_NONBLOCK);

  started_ = Clock::now();
  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { acceptor_loop(); });
  prober_ = std::thread([this] { probe_loop(); });
  GNS_INFO("router: fronting " << backends_.size() << " backends on "
                               << config_.host << ":" << port_);
  return true;
}

void Router::stop() {
  std::call_once(stop_once_, [this] {
    if (!running_.load(std::memory_order_acquire)) return;
    GNS_INFO("router: draining (stop admitting, finish proxied streams)");
    draining_.store(true, std::memory_order_release);
    // 1. Stop accepting.
    if (acceptor_.joinable()) acceptor_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    // 2. Sessions observe draining_, answer queued requests with
    //    ShuttingDown, finish the stream they are proxying, then exit.
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               config_.drain_timeout_ms));
    while (active_clients_.load(std::memory_order_acquire) > 0 &&
           Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      if (active_clients_.load(std::memory_order_acquire) > 0) {
        GNS_WARN("router: drain timeout, severing "
                 << active_clients_.load() << " client connections");
        for (const std::shared_ptr<Session>& session : sessions_) {
          const int fd = session->fd.load(std::memory_order_acquire);
          if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
        }
      }
    }
    if (prober_.joinable()) prober_.join();
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      threads.swap(session_threads_);
    }
    for (std::thread& t : threads) {
      if (t.joinable()) t.join();
    }
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      sessions_.clear();
    }
    running_.store(false, std::memory_order_release);
    obs::flush_env_files();
    GNS_INFO("router: drained and stopped");
  });
}

std::vector<BackendSnapshot> Router::snapshot() const {
  std::vector<BackendSnapshot> out;
  out.reserve(backends_.size());
  for (const auto& backend : backends_) {
    BackendSnapshot snap;
    snap.address = backend->address();
    snap.health = backend->health();
    snap.capabilities = backend->capabilities();
    snap.inflight = backend->inflight();
    out.push_back(std::move(snap));
  }
  return out;
}

void Router::acceptor_loop() {
  while (!draining_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || !(pfd.revents & POLLIN)) continue;
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) break;
      if (active_clients_.load(std::memory_order_relaxed) >=
          config_.max_connections) {
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      // Sends to the client are blocking; bound them so a dead peer cannot
      // wedge a session thread forever.
      const timeval tv = to_timeval(config_.tuning.io_timeout_ms);
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
      auto session = std::make_shared<Session>();
      session->fd.store(fd, std::memory_order_release);
      active_clients_.fetch_add(1, std::memory_order_relaxed);
      active_clients_gauge_.set(
          active_clients_.load(std::memory_order_relaxed));
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      sessions_.push_back(session);
      session_threads_.emplace_back(
          [this, session] { serve_client(session); });
    }
  }
}

void Router::serve_client(std::shared_ptr<Session> session) {
  std::vector<std::uint8_t> rbuf;
  std::size_t consumed = 0;
  Clock::time_point last_activity = Clock::now();
  Clock::time_point drain_seen{};
  bool drain_observed = false;
  bool closing = false;

  while (!closing) {
    const int fd = session->fd.load(std::memory_order_acquire);
    if (fd < 0) break;

    // Decode and dispatch everything buffered.
    for (;;) {
      net::FrameView frame;
      net::DecodeError decode_error;
      const net::DecodeStatus status = net::try_decode_frame(
          rbuf.data() + consumed, rbuf.size() - consumed, frame,
          decode_error);
      if (status == net::DecodeStatus::NeedMore) break;
      if (status == net::DecodeStatus::Error) {
        send_error(*session, decode_error.request_id, net::kProtocolVersion,
                   decode_error.code, decode_error.message);
        if (decode_error.fatal) {
          closing = true;
          break;
        }
        consumed += decode_error.skip_bytes;
        continue;
      }
      if (!dispatch_frame(*session, frame)) {
        closing = true;
        break;
      }
      consumed += frame.frame_bytes;
      last_activity = Clock::now();
    }
    if (consumed == rbuf.size()) {
      rbuf.clear();
      consumed = 0;
    } else if (consumed > kCompactThreshold) {
      rbuf.erase(rbuf.begin(), rbuf.begin() +
                                   static_cast<std::ptrdiff_t>(consumed));
      consumed = 0;
    }
    if (closing) break;
    if (draining_.load(std::memory_order_acquire)) {
      if (!drain_observed) {
        drain_observed = true;
        drain_seen = Clock::now();
      }
      // Past the linger an idle draining session owes the client nothing.
      if (rbuf.size() == consumed &&
          ms_since(drain_seen, Clock::now()) > kDrainLingerMs)
        break;
    }

    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (rc < 0 && errno != EINTR) break;
    if (rc > 0 && (pfd.revents & POLLIN)) {
      std::uint8_t chunk[kReadChunkBytes];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n == 0) break;
      if (n < 0 &&
          !(errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
        break;
      if (n > 0) {
        rbuf.insert(rbuf.end(), chunk, chunk + n);
        last_activity = Clock::now();
      }
    } else if (rc > 0 &&
               (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
      break;
    }
    if (config_.client_idle_timeout_ms > 0 && rbuf.size() == consumed &&
        ms_since(last_activity, Clock::now()) >
            config_.client_idle_timeout_ms)
      break;
  }

  const int fd = session->fd.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
  active_clients_.fetch_sub(1, std::memory_order_acq_rel);
  active_clients_gauge_.set(
      std::max(0, active_clients_.load(std::memory_order_relaxed)));
}

bool Router::dispatch_frame(Session& session, const net::FrameView& frame) {
  switch (frame.type) {
    case net::MessageType::RolloutRequest:
      if (draining_.load(std::memory_order_acquire)) {
        send_error(session, frame.request_id, frame.version,
                   net::NetError::ShuttingDown, "router is draining");
        return true;
      }
      return proxy_rollout(session, frame);
    case net::MessageType::StatsRequest:
      answer_stats(session, frame);
      return true;
    case net::MessageType::Hello:
      answer_hello(session, frame);
      return true;
    default:
      send_error(session, frame.request_id, frame.version,
                 net::NetError::Malformed,
                 "unexpected message type from client");
      return true;
  }
}

bool Router::proxy_rollout(Session& session, const net::FrameView& frame) {
  serve::RolloutRequest request;
  std::string parse_error;
  if (!net::decode_rollout_request(frame, request, parse_error)) {
    send_error(session, frame.request_id, frame.version,
               net::NetError::Malformed, parse_error);
    return true;
  }
  requests_.add();
  GNS_TRACE_SCOPE_T("router.proxy", request.trace_id);

  const int max_attempts =
      config_.max_attempts > 0 ? config_.max_attempts
                               : static_cast<int>(backends_.size());
  std::vector<Backend*> tried;
  PickOutcome outcome = PickOutcome::AllDown;
  bool saw_busy = false;
  bool saw_failure = false;
  bool saw_incapable = false;

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Backend* backend = pick_backend(request.model, tried, outcome);
    if (backend == nullptr) break;
    tried.push_back(backend);
    backend->add_inflight(1);
    inflight_gauge_.set(inflight_.fetch_add(1, std::memory_order_relaxed) +
                        1);
    const ProxyOutcome result = proxy_once(
        session, frame.request_id, frame.version, request, *backend);
    backend->add_inflight(-1);
    inflight_gauge_.set(std::max(
        0, inflight_.fetch_sub(1, std::memory_order_relaxed) - 1));

    switch (result) {
      case ProxyOutcome::Done:
        return true;
      case ProxyOutcome::ClientLost:
        return false;
      case ProxyOutcome::RetryBusy:
        saw_busy = true;
        continue;
      case ProxyOutcome::RetryDraining:
        saw_failure = true;
        continue;
      case ProxyOutcome::RetryIncapable:
        saw_incapable = true;
        continue;
      case ProxyOutcome::RetryDead:
        // The failover everything above is for: the request never started
        // streaming, so a sibling serves it and the client never knows.
        failovers_.add();
        saw_failure = true;
        continue;
      case ProxyOutcome::FatalStreamLost:
        backend_lost_.add();
        if (frame.version >= 3) {
          send_error(session, frame.request_id, frame.version,
                     net::NetError::BackendLost,
                     "backend " + backend->label() +
                         " died after streaming began; do not retry "
                         "blindly — partial frames were delivered");
        } else {
          // Pre-v3 clients do not know the code; Internal with the story.
          send_error(session, frame.request_id, frame.version,
                     net::NetError::Internal,
                     "backend lost after streaming began");
        }
        return true;
    }
  }

  if ((outcome == PickOutcome::NoBackendForModel || saw_incapable) &&
      !saw_busy && !saw_failure) {
    // Mirror what a direct server answers, so clients have one code path.
    net::WireStatus status;
    status.status = serve::JobStatus::ModelNotFound;
    status.error = "no backend serves model '" + request.model + "'";
    status.trace_id = request.trace_id;
    if (!send_to_client(session,
                        net::encode_status_reply(frame.request_id, status,
                                                 frame.version)))
      return false;
    return true;
  }

  busy_rejected_.add();
  std::string reason = saw_busy ? "every capable backend is at capacity"
                       : saw_failure
                           ? "no backend could serve the request; retry"
                           : "no healthy backend available";
  send_error(session, frame.request_id, frame.version, net::NetError::Busy,
             reason);
  return true;
}

Router::ProxyOutcome Router::proxy_once(Session& session,
                                        std::uint64_t client_request_id,
                                        std::uint8_t client_version,
                                        const serve::RolloutRequest& request,
                                        Backend& backend) {
  std::string error;
  std::unique_ptr<BackendConn> conn = backend.checkout(error);
  if (conn == nullptr) {
    evict_backend(backend, error);
    return ProxyOutcome::RetryDead;
  }
  // Placement on a never-contacted backend is optimistic; the checkout
  // above ran the handshake, so the model claim is now checkable.
  if (!backend.serves(request.model)) {
    backend.checkin(std::move(conn));
    return ProxyOutcome::RetryIncapable;
  }
  const BackendCapabilities caps = backend.capabilities();
  const std::uint64_t backend_id = conn->next_request_id();
  if (!conn->send_frame(net::encode_rollout_request(backend_id, request,
                                                    caps.wire_version))) {
    evict_backend(backend, "send to " + backend.label() + " failed");
    return ProxyOutcome::RetryDead;
  }

  bool streamed = false;
  for (;;) {
    net::FrameView frame;
    std::string read_error;
    const BackendConn::ReadStatus status =
        conn->read_frame(frame, read_error, config_.tuning.io_timeout_ms);
    if (status != BackendConn::ReadStatus::Ok) {
      evict_backend(backend, read_error);
      return streamed ? ProxyOutcome::FatalStreamLost
                      : ProxyOutcome::RetryDead;
    }
    if (frame.request_id != backend_id) {
      conn->close();
      evict_backend(backend, "backend answered an unknown request id");
      return streamed ? ProxyOutcome::FatalStreamLost
                      : ProxyOutcome::RetryDead;
    }

    std::string parse_error;
    switch (frame.type) {
      case net::MessageType::RolloutChunk: {
        net::WireChunk chunk;
        if (!net::decode_rollout_chunk(frame, chunk, parse_error)) {
          conn->close();
          evict_backend(backend, "bad chunk: " + parse_error);
          return streamed ? ProxyOutcome::FatalStreamLost
                          : ProxyOutcome::RetryDead;
        }
        if (!send_to_client(session,
                            net::encode_rollout_chunk(
                                client_request_id, chunk, client_version))) {
          // Nobody left to stream to. Closing the backend connection makes
          // the server cancel what it has not finished.
          conn->close();
          return ProxyOutcome::ClientLost;
        }
        streamed = true;
        continue;
      }
      case net::MessageType::StatusReply: {
        net::WireStatus wire_status;
        if (!net::decode_status_reply(frame, wire_status, parse_error)) {
          conn->close();
          evict_backend(backend, "bad status reply: " + parse_error);
          return streamed ? ProxyOutcome::FatalStreamLost
                          : ProxyOutcome::RetryDead;
        }
        backend.mark_healthy();
        backend.checkin(std::move(conn));
        if (!send_to_client(session,
                            net::encode_status_reply(client_request_id,
                                                     wire_status,
                                                     client_version)))
          return ProxyOutcome::ClientLost;
        return ProxyOutcome::Done;
      }
      case net::MessageType::ErrorReply: {
        net::WireError wire_error;
        if (!net::decode_error_reply(frame, wire_error, parse_error)) {
          conn->close();
          evict_backend(backend, "bad error reply: " + parse_error);
          return streamed ? ProxyOutcome::FatalStreamLost
                          : ProxyOutcome::RetryDead;
        }
        if (wire_error.code == net::NetError::Busy && !streamed) {
          // The backend is alive, just full: keep the connection, try a
          // sibling, and only surface Busy when everyone is.
          backend.checkin(std::move(conn));
          retries_.add();
          return ProxyOutcome::RetryBusy;
        }
        if (wire_error.code == net::NetError::ShuttingDown && !streamed) {
          conn->close();
          backend.set_draining(true);
          retries_.add();
          return ProxyOutcome::RetryDraining;
        }
        // Any other backend-side rejection is this request's real answer.
        backend.checkin(std::move(conn));
        if (!send_to_client(session,
                            net::encode_error_reply(client_request_id,
                                                    wire_error,
                                                    client_version)))
          return ProxyOutcome::ClientLost;
        return ProxyOutcome::Done;
      }
      default:
        conn->close();
        evict_backend(backend, "unexpected frame type from backend");
        return streamed ? ProxyOutcome::FatalStreamLost
                        : ProxyOutcome::RetryDead;
    }
  }
}

Backend* Router::pick_backend(const std::string& model,
                              const std::vector<Backend*>& exclude,
                              PickOutcome& outcome) {
  Backend* best = nullptr;
  bool any_healthy = false;
  bool any_unavailable = false;  // capable but saturated or draining
  for (const auto& owned : backends_) {
    Backend* backend = owned.get();
    if (std::find(exclude.begin(), exclude.end(), backend) != exclude.end())
      continue;
    if (backend->health() == BackendHealth::Evicted) continue;
    any_healthy = true;
    if (backend->capabilities().draining) {
      any_unavailable = true;
      continue;
    }
    if (!backend->serves(model)) continue;
    if (backend->inflight() >= backend->placement_capacity()) {
      any_unavailable = true;
      continue;
    }
    if (best == nullptr || backend->inflight() < best->inflight())
      best = backend;
  }
  outcome = best != nullptr         ? PickOutcome::Picked
            : any_unavailable       ? PickOutcome::AllBusy
            : any_healthy           ? PickOutcome::NoBackendForModel
                                    : PickOutcome::AllDown;
  return best;
}

void Router::evict_backend(Backend& backend, const std::string& why) {
  // Repeated failures while already evicted extend the backoff but count
  // as one eviction event.
  const bool was_evicted = backend.health() == BackendHealth::Evicted;
  backend.evict();
  if (!was_evicted) {
    evictions_.add();
    GNS_WARN("router: evicting backend " << backend.label() << ": " << why);
  }
  update_health_gauge();
}

void Router::update_health_gauge() {
  int healthy = 0;
  for (const auto& backend : backends_)
    if (backend->health() != BackendHealth::Evicted) ++healthy;
  backends_healthy_.set(healthy);
}

void Router::probe_loop() {
  // First sweep a full interval after start: placement is optimistic
  // about un-probed backends anyway, and a quiet startup keeps tests (and
  // operators' logs) deterministic.
  double since_probe_ms = 0.0;
  Clock::time_point last = Clock::now();
  while (!draining_.load(std::memory_order_acquire)) {
    const Clock::time_point now = Clock::now();
    since_probe_ms += ms_since(last, now);
    last = now;
    if (since_probe_ms < config_.probe_interval_ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
      continue;
    }
    since_probe_ms = 0.0;
    for (const auto& backend : backends_) {
      if (draining_.load(std::memory_order_acquire)) return;
      probe_backend(*backend);
    }
    update_health_gauge();
  }
}

void Router::probe_backend(Backend& backend) {
  std::string error;
  if (backend.health() == BackendHealth::Evicted) {
    if (!backend.readmit_due()) return;
    // Re-admission handshakes from scratch: the peer may have restarted as
    // a different binary with different models.
    std::unique_ptr<BackendConn> conn = backend.checkout(error);
    if (conn == nullptr) {
      backend.evict();  // extends the backoff; still one eviction event
      return;
    }
    backend.mark_healthy();
    backend.checkin(std::move(conn));
    readmissions_.add();
    GNS_INFO("router: re-admitted backend " << backend.label());
    return;
  }

  std::unique_ptr<BackendConn> conn = backend.checkout(error);
  if (conn == nullptr) {
    evict_backend(backend, "probe: " + error);
    return;
  }
  probes_.add();
  const BackendCapabilities caps = backend.capabilities();
  if (caps.wire_version >= 2) {
    // The real probe: a StatsRequest with a deadline. Beyond liveness it
    // refreshes the draining flag, so an independently draining backend
    // stops receiving placements within one probe interval.
    const std::uint64_t request_id = conn->next_request_id();
    net::WireStatsRequest stats_request;
    stats_request.format = net::WireStatsRequest::kJson;
    if (!conn->send_frame(net::encode_stats_request(
            request_id, stats_request, caps.wire_version))) {
      evict_backend(backend, "probe send failed");
      return;
    }
    net::FrameView frame;
    const BackendConn::ReadStatus status =
        conn->read_frame(frame, error, config_.probe_timeout_ms);
    net::WireStatsReply reply;
    std::string parse_error;
    if (status != BackendConn::ReadStatus::Ok ||
        frame.type != net::MessageType::StatsReply ||
        frame.request_id != request_id ||
        !net::decode_stats_reply(frame, reply, parse_error)) {
      conn->close();
      evict_backend(backend,
                    "probe: " + (error.empty() ? parse_error : error));
      return;
    }
    backend.set_draining(reply.draining != 0);
  }
  // v1 peers predate stats; the fresh TCP connect above was the probe.
  backend.mark_healthy();
  backend.checkin(std::move(conn));
}

void Router::answer_stats(Session& session, const net::FrameView& frame) {
  net::WireStatsRequest request;
  std::string parse_error;
  if (!net::decode_stats_request(frame, request, parse_error)) {
    send_error(session, frame.request_id, frame.version,
               net::NetError::Malformed, parse_error);
    return;
  }
  net::WireStatsReply reply;
  reply.uptime_ms = ms_since(started_, Clock::now());
  reply.inflight = static_cast<std::uint32_t>(
      std::max(0, inflight_.load(std::memory_order_relaxed)));
  reply.queue_depth = 0;  // the router never queues; Busy is immediate
  reply.active_connections = static_cast<std::uint32_t>(
      std::max(0, active_clients_.load(std::memory_order_relaxed)));
  reply.draining = draining_.load(std::memory_order_acquire) ? 1 : 0;
  reply.format = request.format;
  reply.body = request.format == net::WireStatsRequest::kPrometheus
                   ? obs::MetricsRegistry::global().to_prometheus()
                   : obs::MetricsRegistry::global().to_json();
  (void)send_to_client(
      session, net::encode_stats_reply(frame.request_id, reply,
                                       frame.version));
}

void Router::answer_hello(Session& session, const net::FrameView& frame) {
  net::WireHello hello;
  std::string parse_error;
  if (!net::decode_hello(frame, hello, parse_error)) {
    send_error(session, frame.request_id, frame.version,
               net::NetError::Malformed, parse_error);
    return;
  }
  // Aggregate capability of the healthy fleet: union of models, summed
  // capacity. A router in front of routers works the same as one in front
  // of servers.
  net::WireHelloReply reply;
  reply.protocol_version = net::kProtocolVersion;
  reply.draining = draining_.load(std::memory_order_acquire) ? 1 : 0;
  std::set<std::string> models;
  long capacity = 0;
  long workers = 0;
  bool any_wildcard = false;
  for (const auto& backend : backends_) {
    if (backend->health() == BackendHealth::Evicted) continue;
    const BackendCapabilities caps = backend->capabilities();
    if (caps.legacy) any_wildcard = true;
    for (const std::string& model : caps.models) models.insert(model);
    capacity += backend->placement_capacity();
    workers += caps.workers;
  }
  // A legacy backend serves an unknown model set; advertising nothing
  // would under-claim, so the aggregate only lists what is known and the
  // capacity still counts the wildcard slots.
  (void)any_wildcard;
  reply.max_inflight = static_cast<std::uint32_t>(
      std::min<long>(capacity, 1L << 20));
  reply.current_inflight = static_cast<std::uint32_t>(
      std::max(0, inflight_.load(std::memory_order_relaxed)));
  reply.workers =
      static_cast<std::uint32_t>(std::min<long>(workers, 1L << 20));
  reply.models.assign(models.begin(), models.end());
  if (reply.models.size() > net::kMaxHelloModels)
    reply.models.resize(net::kMaxHelloModels);
  (void)send_to_client(
      session, net::encode_hello_reply(frame.request_id, reply,
                                       frame.version));
}

bool Router::send_to_client(Session& session,
                            const std::vector<std::uint8_t>& frame) {
  const int fd = session.fd.load(std::memory_order_acquire);
  if (fd < 0) return false;
  return send_all(fd, frame.data(), frame.size());
}

void Router::send_error(Session& session, std::uint64_t request_id,
                        std::uint8_t version, net::NetError code,
                        const std::string& message) {
  (void)send_to_client(
      session,
      net::encode_error_reply(request_id, {code, message}, version));
}

}  // namespace gns::router
