#pragma once

/// \file trace.hpp
/// Low-overhead span tracer with Chrome trace-event JSON export.
///
/// Usage: drop `GNS_TRACE_SCOPE("subsystem.component.phase")` at the top of
/// a scope. When tracing is enabled (set_trace_enabled / GNS_TRACE env via
/// obs::install_from_env) the scope's wall time is recorded as a complete
/// ("ph":"X") event into a per-thread ring buffer; write_chrome_trace()
/// dumps all buffers as a JSON file loadable in Perfetto or
/// chrome://tracing. When disabled the macro costs one relaxed atomic load
/// and a branch — no allocation, no lock, no clock read.
///
/// Span names must be string literals (or otherwise outlive the tracer):
/// only the pointer is stored. Nesting is implicit: events on the same
/// thread nest by their [ts, ts+dur) intervals, which RAII scoping
/// guarantees are properly contained.
///
/// Each thread owns a fixed-capacity ring buffer (appends take the
/// buffer's own uncontended mutex, so the exporter can snapshot a live
/// system); when full, the oldest events are overwritten so a trace always
/// holds the most recent window of activity. Every overwrite also bumps
/// the `obs.trace.dropped` counter in the global MetricsRegistry, so a
/// truncated trace is detectable from any metrics snapshot instead of
/// silently misleading. Buffers are registered globally and intentionally
/// leaked: they stay valid for atexit dumps.
///
/// Request correlation: spans can carry a 64-bit trace id
/// (GNS_TRACE_SCOPE_T / record_manual_span), exported as
/// "args":{"trace_id":"0x..."} so one Perfetto query surfaces every span
/// of one request across threads and layers (net decode -> scheduler ->
/// cache/compute -> chunk write).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace gns::obs {

/// Sentinel for "span carries no integer argument".
inline constexpr std::int64_t kNoArg = INT64_MIN;
/// Sentinel for "span carries no trace id" (0 means "no request context"
/// on the wire too, so the two conventions agree).
inline constexpr std::uint64_t kNoTrace = 0;

namespace detail {

extern std::atomic<bool> g_trace_enabled;

inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Appends one finished span to the calling thread's ring buffer.
void record_span(const char* name, std::int64_t start_ns, std::int64_t end_ns,
                 std::int64_t arg, std::uint64_t trace_id = kNoTrace);

}  // namespace detail

/// Global tracing switch. Off by default; flipping it on/off at runtime is
/// safe (spans already in flight record iff they saw the flag at entry).
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool enabled);

/// Number of threads that have recorded at least one span.
int trace_thread_count();
/// Events currently buffered across all threads.
std::uint64_t trace_event_count();
/// Events lost to ring-buffer overwrite since the last reset. The same
/// quantity accumulates (monotonically, never reset by reset_trace) in the
/// `obs.trace.dropped` counter of the global MetricsRegistry.
std::uint64_t trace_overwritten_count();

/// Timestamp on the tracer's clock, for record_manual_span callers.
inline std::int64_t trace_now_ns() { return detail::now_ns(); }

/// Records one span whose start/end were measured by the caller (on the
/// trace_now_ns clock). For phases that cannot be expressed as a C++
/// scope — e.g. "reply enqueued -> last byte flushed", which spans
/// several poll cycles. No-op when tracing is disabled.
void record_manual_span(const char* name, std::int64_t start_ns,
                        std::int64_t end_ns,
                        std::uint64_t trace_id = kNoTrace,
                        std::int64_t arg = kNoArg);

/// Clears all buffered events (buffers stay registered and valid). Callers
/// must ensure no thread is recording concurrently.
void reset_trace();

/// The buffered spans as Chrome trace-event JSON ({"traceEvents": [...]}).
[[nodiscard]] std::string chrome_trace_json();
void write_chrome_trace(const std::string& path);

/// RAII span. Passing a null name makes the scope a no-op; the
/// GNS_TRACE_SCOPE macro uses that for the disabled path so the
/// enabled-check happens exactly once, at scope entry.
class TraceScope {
 public:
  explicit TraceScope(const char* name, std::int64_t arg = kNoArg,
                      std::uint64_t trace_id = kNoTrace) noexcept
      : name_(name),
        arg_(arg),
        trace_id_(trace_id),
        start_ns_(name ? detail::now_ns() : 0) {}
  ~TraceScope() {
    if (name_ != nullptr)
      detail::record_span(name_, start_ns_, detail::now_ns(), arg_,
                          trace_id_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_;
  std::int64_t arg_;
  std::uint64_t trace_id_;
  std::int64_t start_ns_;
};

}  // namespace gns::obs

#define GNS_OBS_CONCAT2(a, b) a##b
#define GNS_OBS_CONCAT(a, b) GNS_OBS_CONCAT2(a, b)

/// Traces the enclosing scope under `name` (a string literal,
/// "subsystem.component.phase" by convention).
#define GNS_TRACE_SCOPE(name)                                      \
  const ::gns::obs::TraceScope GNS_OBS_CONCAT(gns_trace_scope_,    \
                                              __COUNTER__)(        \
      ::gns::obs::trace_enabled() ? (name) : nullptr)

/// Like GNS_TRACE_SCOPE but attaches an integer argument (emitted as
/// "args":{"i":N}) — e.g. the message-passing round index.
#define GNS_TRACE_SCOPE_I(name, index)                             \
  const ::gns::obs::TraceScope GNS_OBS_CONCAT(gns_trace_scope_,    \
                                              __COUNTER__)(        \
      ::gns::obs::trace_enabled() ? (name) : nullptr,              \
      static_cast<std::int64_t>(index))

/// Like GNS_TRACE_SCOPE but stamps the span with a request trace id
/// (emitted as "args":{"trace_id":"0x..."}). Pass 0 for "no request
/// context" — the arg is then omitted, so unstamped spans stay compact.
#define GNS_TRACE_SCOPE_T(name, trace_id)                          \
  const ::gns::obs::TraceScope GNS_OBS_CONCAT(gns_trace_scope_,    \
                                              __COUNTER__)(        \
      ::gns::obs::trace_enabled() ? (name) : nullptr,              \
      ::gns::obs::kNoArg, static_cast<std::uint64_t>(trace_id))

/// Both an integer argument and a trace id.
#define GNS_TRACE_SCOPE_IT(name, index, trace_id)                  \
  const ::gns::obs::TraceScope GNS_OBS_CONCAT(gns_trace_scope_,    \
                                              __COUNTER__)(        \
      ::gns::obs::trace_enabled() ? (name) : nullptr,              \
      static_cast<std::int64_t>(index),                            \
      static_cast<std::uint64_t>(trace_id))
