#pragma once

/// \file metrics.hpp
/// Process-wide named metrics: counters, gauges, and latency histograms.
///
/// A MetricsRegistry hands out stable references to named instruments;
/// handles stay valid for the registry's lifetime (the global registry is
/// never destroyed), and reset()/reset_prefix() zero values without
/// invalidating handles, so hot paths can cache a reference in a
/// function-local static:
///
///     static auto& h =
///         obs::MetricsRegistry::global().histogram("core.gns.encode_ms");
///     obs::ScopedHistogramTimer timer(h);
///
/// Counters and gauges are lock-free atomics; histograms reuse
/// util/histogram.hpp behind a per-instrument mutex. One snapshot path
/// (to_json / write_json / write_csv) dumps everything — simulation and
/// serving metrics land in the same file (see serve::ServerStats).
///
/// Naming convention: `subsystem.component.phase`, with `_ms` suffix on
/// latency histograms.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/histogram.hpp"
#include "util/timer.hpp"

namespace gns::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, learning rate, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Monotonic max: keeps the larger of the current and given value.
  void update_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Thread-safe wrapper over util's log-bucketed Histogram.
class HistogramMetric {
 public:
  explicit HistogramMetric(double min_value = 1e-3, double growth = 1.15,
                           int buckets = 200)
      : histogram_(min_value, growth, buckets) {}

  void add(double value) {
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_.add(value);
  }
  /// Consistent copy for quantile queries and dumps.
  [[nodiscard]] Histogram snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return histogram_;
  }
  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_.reset();
  }

 private:
  mutable std::mutex mutex_;
  Histogram histogram_;
};

/// RAII phase timer: adds the scope's wall time in milliseconds to a
/// histogram on destruction.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(HistogramMetric& histogram)
      : histogram_(histogram) {}
  ~ScopedHistogramTimer() { histogram_.add(timer_.millis()); }
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  HistogramMetric& histogram_;
  Timer timer_;
};

class MetricsRegistry {
 public:
  /// The process-wide registry (never destroyed, safe in atexit hooks).
  static MetricsRegistry& global();

  /// Find-or-create by name. References stay valid for the registry's
  /// lifetime; histogram bucketing parameters only apply on first creation.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  HistogramMetric& histogram(const std::string& name, double min_value = 1e-3,
                             double growth = 1.15, int buckets = 200);

  /// Zero every instrument (handles stay valid).
  void reset();
  /// Zero instruments whose name starts with `prefix`.
  void reset_prefix(const std::string& prefix);

  /// Everything as one JSON object:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {"name": {"count":..,"sum":..,"mean":..,"min":..,
  ///                            "max":..,"p50":..,"p95":..,"p99":..}}}
  [[nodiscard]] std::string to_json() const;
  void write_json(const std::string& path) const;
  /// Flat CSV: name,kind,count,value,sum,mean,min,max,p50,p95,p99.
  void write_csv(const std::string& path) const;
  /// Prometheus text exposition (version 0.0.4). Instrument names are
  /// sanitized (non-[a-zA-Z0-9_] -> '_', so "serve.phase.compute_us"
  /// becomes "serve_phase_compute_us"); the original dotted name is kept
  /// in the # HELP line. Histograms export as summaries: quantile-labeled
  /// samples (0.5/0.95/0.99) plus _sum and _count.
  [[nodiscard]] std::string to_prometheus() const;

 private:
  mutable std::mutex mutex_;  ///< guards the maps, not the instruments
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace gns::obs
