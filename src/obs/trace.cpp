#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"

namespace gns::obs {

namespace detail {

std::atomic<bool> g_trace_enabled{false};

namespace {

constexpr std::size_t kRingCapacity = 1u << 16;  // per thread, ~2 MiB

struct Event {
  const char* name = nullptr;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  std::int64_t arg = kNoArg;
  std::uint64_t trace_id = kNoTrace;
};

/// One thread's span storage. Appends and snapshots take `mutex` — owner
/// appends are uncontended, so the lock costs tens of nanoseconds against
/// spans that measure microseconds and up.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> ring{kRingCapacity};
  std::size_t head = 0;  ///< next write slot
  std::size_t size = 0;
  std::uint64_t overwritten = 0;
  int tid = 0;
};

struct TraceRegistry {
  std::mutex mutex;
  std::vector<ThreadBuffer*> buffers;  // leaked: valid through atexit dumps
};

TraceRegistry& registry() {
  static TraceRegistry* r = new TraceRegistry;
  return *r;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buf = [] {
    auto* b = new ThreadBuffer;
    TraceRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    b->tid = static_cast<int>(reg.buffers.size());
    reg.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

/// Copy of one buffer's events, oldest first.
std::vector<Event> snapshot_events(ThreadBuffer& buf) {
  std::lock_guard<std::mutex> lock(buf.mutex);
  std::vector<Event> out;
  out.reserve(buf.size);
  const std::size_t cap = buf.ring.size();
  const std::size_t oldest = (buf.head + cap - buf.size) % cap;
  for (std::size_t k = 0; k < buf.size; ++k)
    out.push_back(buf.ring[(oldest + k) % cap]);
  return out;
}

}  // namespace

void record_span(const char* name, std::int64_t start_ns, std::int64_t end_ns,
                 std::int64_t arg, std::uint64_t trace_id) {
  // Cached handle: the registry reference stays valid forever, so the
  // map lookup happens once per process, not per dropped event.
  static Counter& dropped =
      MetricsRegistry::global().counter("obs.trace.dropped");
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  Event& e = buf.ring[buf.head];
  e.name = name;
  e.start_ns = start_ns;
  e.dur_ns = end_ns - start_ns;
  e.arg = arg;
  e.trace_id = trace_id;
  buf.head = (buf.head + 1) % buf.ring.size();
  if (buf.size < buf.ring.size()) {
    ++buf.size;
  } else {
    ++buf.overwritten;
    dropped.add();
  }
}

}  // namespace detail

void set_trace_enabled(bool enabled) {
  detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void record_manual_span(const char* name, std::int64_t start_ns,
                        std::int64_t end_ns, std::uint64_t trace_id,
                        std::int64_t arg) {
  if (!trace_enabled() || name == nullptr) return;
  detail::record_span(name, start_ns, end_ns, arg, trace_id);
}

int trace_thread_count() {
  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return static_cast<int>(reg.buffers.size());
}

std::uint64_t trace_event_count() {
  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t total = 0;
  for (auto* buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    total += buf->size;
  }
  return total;
}

std::uint64_t trace_overwritten_count() {
  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t total = 0;
  for (auto* buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    total += buf->overwritten;
  }
  return total;
}

void reset_trace() {
  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto* buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->head = 0;
    buf->size = 0;
    buf->overwritten = 0;
  }
}

std::string chrome_trace_json() {
  // Snapshot every buffer first so the export is consistent per thread.
  std::vector<std::pair<int, std::vector<detail::Event>>> threads;
  {
    auto& reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    threads.reserve(reg.buffers.size());
    for (auto* buf : reg.buffers)
      threads.emplace_back(buf->tid, detail::snapshot_events(*buf));
  }

  // Rebase timestamps to the earliest span so traces start near t=0.
  std::int64_t t0 = std::numeric_limits<std::int64_t>::max();
  for (const auto& [tid, events] : threads)
    for (const auto& e : events) t0 = std::min(t0, e.start_ns);
  if (t0 == std::numeric_limits<std::int64_t>::max()) t0 = 0;

  std::string out;
  out.reserve(1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  char line[256];
  bool first = true;
  for (const auto& [tid, events] : threads) {
    for (const auto& e : events) {
      if (!first) out += ",\n";
      first = false;
      // ts/dur are microseconds by Chrome trace-event convention.
      std::snprintf(line, sizeof(line),
                    "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                    "\"dur\":%.3f,\"pid\":1,\"tid\":%d",
                    e.name, static_cast<double>(e.start_ns - t0) * 1e-3,
                    static_cast<double>(e.dur_ns) * 1e-3, tid);
      out += line;
      if (e.arg != kNoArg || e.trace_id != kNoTrace) {
        out += ",\"args\":{";
        bool first_arg = true;
        if (e.arg != kNoArg) {
          std::snprintf(line, sizeof(line), "\"i\":%lld",
                        static_cast<long long>(e.arg));
          out += line;
          first_arg = false;
        }
        if (e.trace_id != kNoTrace) {
          // Hex string: JSON numbers lose precision past 2^53, and hex is
          // what operators grep for anyway.
          std::snprintf(line, sizeof(line), "%s\"trace_id\":\"0x%016llx\"",
                        first_arg ? "" : ",",
                        static_cast<unsigned long long>(e.trace_id));
          out += line;
        }
        out += "}";
      }
      out += "}";
    }
  }
  out += "\n]}\n";
  return out;
}

void write_chrome_trace(const std::string& path) {
  std::ofstream os(path);
  os << chrome_trace_json();
}

}  // namespace gns::obs
