#include "obs/obs.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>

namespace gns::obs {

namespace {

// Leaked so the atexit hook can read them regardless of static-destruction
// order across translation units.
std::string& trace_file_path() {
  static std::string* path = new std::string;
  return *path;
}
std::string& metrics_file_path() {
  static std::string* path = new std::string;
  return *path;
}

bool env_truthy(const char* value) {
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

}  // namespace

namespace {

bool has_suffix(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

void write_prometheus(const std::string& path) {
  std::ofstream out(path);
  out << MetricsRegistry::global().to_prometheus();
}

void flush_env_files() {
  if (!trace_file_path().empty()) write_chrome_trace(trace_file_path());
  const std::string& metrics = metrics_file_path();
  if (!metrics.empty()) {
    if (has_suffix(metrics, ".csv"))
      MetricsRegistry::global().write_csv(metrics);
    else if (has_suffix(metrics, ".prom"))
      write_prometheus(metrics);
    else
      MetricsRegistry::global().write_json(metrics);
  }
}

bool install_from_env() {
  static const bool active = [] {
    const char* trace_file = std::getenv("GNS_TRACE_FILE");
    const char* metrics_file = std::getenv("GNS_METRICS_FILE");
    const char* trace_flag = std::getenv("GNS_TRACE");
    if (trace_file != nullptr) trace_file_path() = trace_file;
    if (metrics_file != nullptr) metrics_file_path() = metrics_file;
    if (env_truthy(trace_flag) || trace_file != nullptr)
      set_trace_enabled(true);
    if (trace_file != nullptr || metrics_file != nullptr)
      std::atexit([] { flush_env_files(); });
    return trace_file != nullptr || metrics_file != nullptr ||
           env_truthy(trace_flag);
  }();
  return active;
}

}  // namespace gns::obs
