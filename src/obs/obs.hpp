#pragma once

/// \file obs.hpp
/// Umbrella header for the observability layer: span tracing
/// (GNS_TRACE_SCOPE -> Perfetto-loadable JSON) plus the process-wide
/// MetricsRegistry, and the environment wiring that lets any binary emit
/// both without code changes:
///
///   GNS_TRACE=1          enable span tracing (stderr-free, in-memory)
///   GNS_TRACE_FILE=f     enable tracing and write Chrome trace JSON to f
///                        at exit
///   GNS_METRICS_FILE=f   write the unified metrics dump to f at exit
///                        (JSON; CSV when f ends in ".csv"; Prometheus
///                        text exposition when f ends in ".prom")
///
/// Benches pick these up automatically through bench_common.hpp; examples
/// call obs::install_from_env() at the top of main.

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gns::obs {

/// Reads GNS_TRACE / GNS_TRACE_FILE / GNS_METRICS_FILE, enables tracing
/// when requested, and registers an atexit hook that writes the requested
/// files. Idempotent (first call wins); returns whether any observability
/// output is active.
bool install_from_env();

/// Writes the files requested via environment immediately (also runs at
/// exit). Safe to call when nothing was requested.
void flush_env_files();

/// Writes the global registry as Prometheus text exposition (the format
/// StatsReply serves to live scrapers; see MetricsRegistry::to_prometheus
/// for the name-sanitization rules).
void write_prometheus(const std::string& path);

}  // namespace gns::obs
