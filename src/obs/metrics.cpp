#include "obs/metrics.hpp"

#include <fstream>
#include <sstream>
#include <vector>

namespace gns::obs {

namespace {

/// Metric names are code-controlled identifiers, but escape anyway so a
/// stray character can never produce invalid JSON.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct HistogramRow {
  std::string name;
  Histogram histogram;
};

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            double min_value, double growth,
                                            int buckets) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramMetric>(min_value, growth,
                                                      buckets);
  return *slot;
}

void MetricsRegistry::reset() { reset_prefix(""); }

void MetricsRegistry::reset_prefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto matches = [&prefix](const std::string& name) {
    return name.compare(0, prefix.size(), prefix) == 0;
  };
  for (auto& [name, c] : counters_)
    if (matches(name)) c->reset();
  for (auto& [name, g] : gauges_)
    if (matches(name)) g->reset();
  for (auto& [name, h] : histograms_)
    if (matches(name)) h->reset();
}

std::string MetricsRegistry::to_json() const {
  // Snapshot under the map lock; instrument reads are individually atomic
  // or internally locked.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramRow> histograms;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_)
      counters.emplace_back(name, c->value());
    for (const auto& [name, g] : gauges_)
      gauges.emplace_back(name, g->value());
    for (const auto& [name, h] : histograms_)
      histograms.push_back({name, h->snapshot()});
  }

  std::ostringstream os;
  os.precision(10);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& row : histograms) {
    const Histogram& h = row.histogram;
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(row.name)
       << "\": {\"count\": " << h.count() << ", \"sum\": " << h.sum()
       << ", \"mean\": " << h.mean() << ", \"min\": " << h.min()
       << ", \"max\": " << h.max() << ", \"p50\": " << h.quantile(0.50)
       << ", \"p95\": " << h.quantile(0.95)
       << ", \"p99\": " << h.quantile(0.99) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path);
  out << to_json();
}

namespace {

/// Prometheus metric names admit [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted
/// convention maps onto it by flattening everything else to '_'.
std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  // Same consistency model as to_json: names snapshotted under the map
  // lock, instrument values read atomically / behind their own locks.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramRow> histograms;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_)
      counters.emplace_back(name, c->value());
    for (const auto& [name, g] : gauges_)
      gauges.emplace_back(name, g->value());
    for (const auto& [name, h] : histograms_)
      histograms.push_back({name, h->snapshot()});
  }

  std::ostringstream os;
  os.precision(10);
  for (const auto& [name, value] : counters) {
    const std::string p = prometheus_name(name);
    os << "# HELP " << p << ' ' << name << '\n';
    os << "# TYPE " << p << " counter\n";
    os << p << ' ' << value << '\n';
  }
  for (const auto& [name, value] : gauges) {
    const std::string p = prometheus_name(name);
    os << "# HELP " << p << ' ' << name << '\n';
    os << "# TYPE " << p << " gauge\n";
    os << p << ' ' << value << '\n';
  }
  for (const auto& row : histograms) {
    const std::string p = prometheus_name(row.name);
    const Histogram& h = row.histogram;
    os << "# HELP " << p << ' ' << row.name << '\n';
    os << "# TYPE " << p << " summary\n";
    os << p << "{quantile=\"0.5\"} " << h.quantile(0.50) << '\n';
    os << p << "{quantile=\"0.95\"} " << h.quantile(0.95) << '\n';
    os << p << "{quantile=\"0.99\"} " << h.quantile(0.99) << '\n';
    os << p << "_sum " << h.sum() << '\n';
    os << p << "_count " << h.count() << '\n';
  }
  return os.str();
}

void MetricsRegistry::write_csv(const std::string& path) const {
  std::ofstream out(path);
  out.precision(10);
  out << "name,kind,count,value,sum,mean,min,max,p50,p95,p99\n";
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_)
    out << name << ",counter," << c->value() << ",,,,,,,,\n";
  for (const auto& [name, g] : gauges_)
    out << name << ",gauge,," << g->value() << ",,,,,,,\n";
  for (const auto& [name, hm] : histograms_) {
    const Histogram h = hm->snapshot();
    out << name << ",histogram," << h.count() << ",," << h.sum() << ','
        << h.mean() << ',' << h.min() << ',' << h.max() << ','
        << h.quantile(0.50) << ',' << h.quantile(0.95) << ','
        << h.quantile(0.99) << '\n';
  }
}

}  // namespace gns::obs
