#pragma once

/// \file image.hpp
/// Minimal raster image + PPM (P6) writer for in-situ visualization.
/// The paper's authors use GNS as an oracle for in-situ visualization of
/// landslides (Kumar et al. 2022, cited in §2); this module is the
/// reproduction's lightweight equivalent: benches and examples dump
/// deposit/flow images directly from the running simulation.

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace gns::viz {

struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0;
};

/// Row-major 8-bit RGB image; origin at the TOP-left (standard raster).
class Image {
 public:
  Image(int width, int height, Rgb fill = {255, 255, 255});

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }

  void set(int x, int y, Rgb color) {
    GNS_DCHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
    pixels_[static_cast<std::size_t>(y) * width_ + x] = color;
  }
  [[nodiscard]] Rgb get(int x, int y) const {
    GNS_DCHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Ignores out-of-bounds coordinates (convenient for markers near the
  /// frame edge).
  void set_clipped(int x, int y, Rgb color) {
    if (x >= 0 && x < width_ && y >= 0 && y < height_) set(x, y, color);
  }

  /// Filled disc of radius `r` pixels.
  void disc(int cx, int cy, int r, Rgb color);

  /// Binary PPM (P6).
  void save_ppm(const std::string& path) const;

 private:
  int width_;
  int height_;
  std::vector<Rgb> pixels_;
};

/// Perceptually-reasonable colormaps on t in [0, 1] (clamped).
[[nodiscard]] Rgb colormap_viridis(double t);
/// Blue-white-red diverging map on t in [-1, 1] (clamped).
[[nodiscard]] Rgb colormap_diverging(double t);

}  // namespace gns::viz
