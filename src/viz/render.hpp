#pragma once

/// \file render.hpp
/// In-situ renderers: particle scatter plots colored by speed, scalar
/// fields (e.g. vorticity) with a diverging map, and side-by-side
/// truth-vs-prediction comparisons for the figure benches.

#include "viz/image.hpp"

namespace gns::viz {

struct ViewBox {
  double x0 = 0.0, y0 = 0.0;  ///< world lower-left
  double x1 = 1.0, y1 = 0.5;  ///< world upper-right
};

struct ParticleStyle {
  int image_width = 480;
  int particle_radius = 1;  ///< pixels
  Rgb background{250, 250, 250};
  double max_speed = 0.0;   ///< 0 = auto from data (color scale)
};

/// Renders one flat position frame (io::Trajectory layout, dim=2), colored
/// by per-particle speed computed from `prev_frame` when provided.
[[nodiscard]] Image render_particles(const std::vector<double>& frame,
                                     const ViewBox& view,
                                     const ParticleStyle& style = {},
                                     const std::vector<double>* prev_frame =
                                         nullptr);

/// Two frames side by side with a separator — "reference | prediction".
[[nodiscard]] Image render_comparison(const std::vector<double>& reference,
                                      const std::vector<double>& prediction,
                                      const ViewBox& view,
                                      const ParticleStyle& style = {});

/// Renders a cell-centered scalar field (row-major, ny rows of nx) with
/// the diverging colormap scaled to ±`scale` (0 = auto from |field|max).
[[nodiscard]] Image render_scalar_field(const std::vector<double>& field,
                                        int nx, int ny, double scale = 0.0,
                                        int pixels_per_cell = 6);

}  // namespace gns::viz
