#include "viz/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace gns::viz {

Image::Image(int width, int height, Rgb fill)
    : width_(width), height_(height) {
  GNS_CHECK_MSG(width > 0 && height > 0, "image size must be positive");
  pixels_.assign(static_cast<std::size_t>(width) * height, fill);
}

void Image::disc(int cx, int cy, int r, Rgb color) {
  for (int dy = -r; dy <= r; ++dy) {
    for (int dx = -r; dx <= r; ++dx) {
      if (dx * dx + dy * dy <= r * r) set_clipped(cx + dx, cy + dy, color);
    }
  }
}

void Image::save_ppm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  GNS_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << "P6\n" << width_ << " " << height_ << "\n255\n";
  out.write(reinterpret_cast<const char*>(pixels_.data()),
            static_cast<std::streamsize>(pixels_.size() * 3));
}

namespace {
std::uint8_t to_byte(double v) {
  return static_cast<std::uint8_t>(
      std::clamp(v, 0.0, 1.0) * 255.0 + 0.5);
}
}  // namespace

Rgb colormap_viridis(double t) {
  t = std::clamp(t, 0.0, 1.0);
  // Cubic fit of the viridis control points — close enough for QC images.
  const double r = 0.267 + t * (0.005 + t * (1.261 - t * 0.547));
  const double g = 0.005 + t * (1.397 + t * (-0.818 + t * 0.322));
  const double b = 0.329 + t * (1.388 + t * (-3.382 + t * 1.811));
  return {to_byte(r), to_byte(g), to_byte(b)};
}

Rgb colormap_diverging(double t) {
  t = std::clamp(t, -1.0, 1.0);
  if (t < 0.0) {
    const double s = -t;  // toward blue
    return {to_byte(1.0 - 0.77 * s), to_byte(1.0 - 0.55 * s), 255};
  }
  const double s = t;  // toward red
  return {255, to_byte(1.0 - 0.72 * s), to_byte(1.0 - 0.81 * s)};
}

}  // namespace gns::viz
