#include "viz/render.hpp"

#include <algorithm>
#include <cmath>

namespace gns::viz {

namespace {

struct Mapper {
  const ViewBox& view;
  int width, height;

  [[nodiscard]] int px(double x) const {
    return static_cast<int>(std::lround(
        (x - view.x0) / (view.x1 - view.x0) * (width - 1)));
  }
  [[nodiscard]] int py(double y) const {
    // Flip: world y-up, raster y-down.
    return static_cast<int>(std::lround(
        (view.y1 - y) / (view.y1 - view.y0) * (height - 1)));
  }
};

}  // namespace

Image render_particles(const std::vector<double>& frame, const ViewBox& view,
                       const ParticleStyle& style,
                       const std::vector<double>* prev_frame) {
  GNS_CHECK_MSG(frame.size() % 2 == 0, "expected a dim=2 frame");
  GNS_CHECK(view.x1 > view.x0 && view.y1 > view.y0);
  const int width = style.image_width;
  const int height = std::max(
      8, static_cast<int>(width * (view.y1 - view.y0) / (view.x1 - view.x0)));
  Image img(width, height, style.background);
  Mapper map{view, width, height};

  const int n = static_cast<int>(frame.size()) / 2;
  std::vector<double> speed(n, 0.0);
  double vmax = style.max_speed;
  if (prev_frame != nullptr && prev_frame->size() == frame.size()) {
    for (int i = 0; i < n; ++i) {
      const double dx = frame[2 * i] - (*prev_frame)[2 * i];
      const double dy = frame[2 * i + 1] - (*prev_frame)[2 * i + 1];
      speed[i] = std::sqrt(dx * dx + dy * dy);
    }
    if (vmax <= 0.0) {
      for (double s : speed) vmax = std::max(vmax, s);
    }
  }
  if (vmax <= 0.0) vmax = 1.0;

  for (int i = 0; i < n; ++i) {
    const Rgb color = colormap_viridis(speed[i] / vmax);
    img.disc(map.px(frame[2 * i]), map.py(frame[2 * i + 1]),
             style.particle_radius, color);
  }
  return img;
}

Image render_comparison(const std::vector<double>& reference,
                        const std::vector<double>& prediction,
                        const ViewBox& view, const ParticleStyle& style) {
  Image left = render_particles(reference, view, style);
  Image right = render_particles(prediction, view, style);
  const int sep = 3;
  Image out(left.width() + sep + right.width(), left.height(),
            Rgb{40, 40, 40});
  for (int y = 0; y < left.height(); ++y) {
    for (int x = 0; x < left.width(); ++x) out.set(x, y, left.get(x, y));
    for (int x = 0; x < right.width(); ++x)
      out.set(left.width() + sep + x, y, right.get(x, y));
  }
  return out;
}

Image render_scalar_field(const std::vector<double>& field, int nx, int ny,
                          double scale, int pixels_per_cell) {
  GNS_CHECK_MSG(static_cast<int>(field.size()) == nx * ny,
                "field size mismatch");
  GNS_CHECK(pixels_per_cell > 0);
  if (scale <= 0.0) {
    for (double v : field) scale = std::max(scale, std::abs(v));
    if (scale <= 0.0) scale = 1.0;
  }
  Image img(nx * pixels_per_cell, ny * pixels_per_cell);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const Rgb color =
          colormap_diverging(field[j * nx + i] / scale);
      for (int py = 0; py < pixels_per_cell; ++py) {
        for (int px = 0; px < pixels_per_cell; ++px) {
          // Row 0 of the field is the bottom of the domain: flip.
          img.set(i * pixels_per_cell + px,
                  (ny - 1 - j) * pixels_per_cell + py, color);
        }
      }
    }
  }
  return img;
}

}  // namespace gns::viz
