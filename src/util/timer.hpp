#pragma once

/// \file timer.hpp
/// Wall-clock timing helpers for the benchmark harness and the hybrid
/// GNS/MPM controller (which reports per-phase cost breakdowns).

#include <chrono>

namespace gns {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates wall time across multiple start/stop windows; used for
/// phase breakdowns (e.g. MPM time vs GNS time inside the hybrid loop).
class AccumulatingTimer {
 public:
  /// Opens a window. Calling start() while a window is already open first
  /// accumulates the in-flight window (no time is silently discarded).
  void start() {
    if (running_) stop();
    timer_.reset();
    running_ = true;
  }

  void stop() {
    if (running_) {
      total_ += timer_.seconds();
      ++windows_;
      running_ = false;
    }
  }

  [[nodiscard]] double total_seconds() const { return total_; }
  [[nodiscard]] int windows() const { return windows_; }

 private:
  Timer timer_;
  double total_ = 0.0;
  int windows_ = 0;
  bool running_ = false;
};

/// RAII window on an AccumulatingTimer: start() on construction, stop() on
/// scope exit, so early returns and exceptions can't leak an open window.
class ScopedAccumulate {
 public:
  explicit ScopedAccumulate(AccumulatingTimer& timer) : timer_(timer) {
    timer_.start();
  }
  ~ScopedAccumulate() { timer_.stop(); }
  ScopedAccumulate(const ScopedAccumulate&) = delete;
  ScopedAccumulate& operator=(const ScopedAccumulate&) = delete;

 private:
  AccumulatingTimer& timer_;
};

}  // namespace gns
