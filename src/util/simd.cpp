#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define GNS_SIMD_AVX2_KERNEL 1
#endif

namespace gns::simd {

namespace {

// -1 = unset (read GNS_SIMD on first query), else 0/1. Default ON: the
// kernels are bitwise equal to the scalar references, so there is nothing
// to opt into — GNS_SIMD=0 exists to pin the reference path (CI sanitizer
// legs, A/B benches).
std::atomic<int> g_simd_state{-1};

#ifdef GNS_SIMD_AVX2_KERNEL

__attribute__((target("avx2"))) void copy_avx2(double* dst, const double* src,
                                               std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256d a = _mm256_loadu_pd(src + i);
    const __m256d b = _mm256_loadu_pd(src + i + 4);
    const __m256d c = _mm256_loadu_pd(src + i + 8);
    const __m256d d = _mm256_loadu_pd(src + i + 12);
    _mm256_storeu_pd(dst + i, a);
    _mm256_storeu_pd(dst + i + 4, b);
    _mm256_storeu_pd(dst + i + 8, c);
    _mm256_storeu_pd(dst + i + 12, d);
  }
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(dst + i, _mm256_loadu_pd(src + i));
  for (; i < n; ++i) dst[i] = src[i];
}

__attribute__((target("avx2"))) void accumulate_avx2(double* dst,
                                                     const double* src,
                                                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d a =
        _mm256_add_pd(_mm256_loadu_pd(dst + i), _mm256_loadu_pd(src + i));
    const __m256d b = _mm256_add_pd(_mm256_loadu_pd(dst + i + 4),
                                    _mm256_loadu_pd(src + i + 4));
    _mm256_storeu_pd(dst + i, a);
    _mm256_storeu_pd(dst + i + 4, b);
  }
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        dst + i,
        _mm256_add_pd(_mm256_loadu_pd(dst + i), _mm256_loadu_pd(src + i)));
  for (; i < n; ++i) dst[i] += src[i];
}

__attribute__((target("avx2"))) void accumulate_scaled_avx2(
    double* dst, const double* src, double scale, std::size_t n) {
  const __m256d vs = _mm256_set1_pd(scale);
  std::size_t i = 0;
  // mul then add, never FMA: matches `dst[i] += scale * src[i]` exactly.
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        dst + i,
        _mm256_add_pd(_mm256_loadu_pd(dst + i),
                      _mm256_mul_pd(vs, _mm256_loadu_pd(src + i))));
  for (; i < n; ++i) dst[i] += scale * src[i];
}

__attribute__((target("avx2"))) void norm_affine_avx2(
    double* y, const double* x, const double* gamma, const double* beta,
    double mu, double inv_s, std::size_t n) {
  const __m256d vmu = _mm256_set1_pd(mu);
  const __m256d vis = _mm256_set1_pd(inv_s);
  std::size_t i = 0;
  // ((gamma * (x - mu)) * inv_s) + beta — same association as the scalar
  // expression `gamma[i] * (x[i] - mu) * inv_s + beta[i]`.
  for (; i + 4 <= n; i += 4) {
    const __m256d centered = _mm256_sub_pd(_mm256_loadu_pd(x + i), vmu);
    const __m256d scaled = _mm256_mul_pd(
        _mm256_mul_pd(_mm256_loadu_pd(gamma + i), centered), vis);
    _mm256_storeu_pd(y + i,
                     _mm256_add_pd(scaled, _mm256_loadu_pd(beta + i)));
  }
  for (; i < n; ++i) y[i] = gamma[i] * (x[i] - mu) * inv_s + beta[i];
}

#endif  // GNS_SIMD_AVX2_KERNEL

}  // namespace

bool enabled() {
  int s = g_simd_state.load(std::memory_order_relaxed);
  if (s < 0) {
    const char* env = std::getenv("GNS_SIMD");
    s = (env != nullptr && env[0] == '0' && env[1] == '\0') ? 0 : 1;
    g_simd_state.store(s, std::memory_order_relaxed);
  }
  return s != 0;
}

void set_enabled(bool enabled) {
  g_simd_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool cpu_has_avx2() {
#ifdef GNS_SIMD_AVX2_KERNEL
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
#else
  return false;
#endif
}

bool active() { return enabled() && cpu_has_avx2(); }

void copy(double* dst, const double* src, std::size_t n) {
#ifdef GNS_SIMD_AVX2_KERNEL
  if (active()) {
    copy_avx2(dst, src, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
}

void accumulate(double* dst, const double* src, std::size_t n) {
#ifdef GNS_SIMD_AVX2_KERNEL
  if (active()) {
    accumulate_avx2(dst, src, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void accumulate_scaled(double* dst, const double* src, double scale,
                       std::size_t n) {
#ifdef GNS_SIMD_AVX2_KERNEL
  if (active()) {
    accumulate_scaled_avx2(dst, src, scale, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) dst[i] += scale * src[i];
}

void norm_affine(double* y, const double* x, const double* gamma,
                 const double* beta, double mu, double inv_s, std::size_t n) {
#ifdef GNS_SIMD_AVX2_KERNEL
  if (active()) {
    norm_affine_avx2(y, x, gamma, beta, mu, inv_s, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i)
    y[i] = gamma[i] * (x[i] - mu) * inv_s + beta[i];
}

}  // namespace gns::simd
