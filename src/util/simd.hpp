#pragma once

/// \file simd.hpp
/// Shared runtime-dispatched SIMD row kernels for the post-MLP hot path
/// (graph gather/scatter/concat/layer_norm and the MPM transfer kernels).
///
/// Same contract as the fused linear kernels in ad/ops_matmul.cpp:
///
///  * every vector kernel is **bitwise identical** to its scalar
///    reference — separate mul/add, never FMA (an FMA would skip the
///    intermediate rounding), each lane runs the same correctly-rounded
///    IEEE ops in the same order as the scalar loop;
///  * the AVX2 twin is compiled with `__attribute__((target("avx2")))`
///    inside a baseline-ISA translation unit and selected at runtime via
///    `__builtin_cpu_supports`, so one binary runs everywhere;
///  * a process-wide toggle (`GNS_SIMD`, **default on**; unlike GNS_FUSED
///    it is opt-out — set GNS_SIMD=0 to force the scalar reference paths)
///    lets CI and benches pin either path.
///
/// These kernels only vectorize across *independent* elements (row copies,
/// elementwise accumulate, the per-element normalize pass of layer_norm).
/// Reductions keep their scalar accumulation order — that is what makes
/// the toggle bitwise-invisible.

#include <cstddef>

namespace gns::simd {

/// True when SIMD kernels are enabled (GNS_SIMD unset or != "0", or the
/// last set_enabled call said so). Cheap: one relaxed atomic load.
[[nodiscard]] bool enabled();

/// Programmatic override of GNS_SIMD (used by benches/tests to sweep both
/// paths in one process).
void set_enabled(bool enabled);

/// Runtime CPU check, cached after the first call. False on non-x86
/// builds.
[[nodiscard]] bool cpu_has_avx2();

/// enabled() && cpu_has_avx2(): the vector bodies actually run. Callers
/// that restructure control flow (e.g. CSR-parallel vs legacy-serial
/// scatter) should branch on enabled() alone so GNS_SIMD=0 always means
/// "the exact pre-SIMD code path", with or without AVX2 hardware.
[[nodiscard]] bool active();

/// dst[0..n) = src[0..n). Pure copy — trivially bitwise.
void copy(double* dst, const double* src, std::size_t n);

/// dst[i] += src[i] for i in [0, n). Element-independent: each output is
/// one add, so lane order is irrelevant and both paths are bitwise equal.
void accumulate(double* dst, const double* src, std::size_t n);

/// dst[i] += scale * src[i] for i in [0, n). Separate mul then add in
/// both paths (never contracted).
void accumulate_scaled(double* dst, const double* src, double scale,
                       std::size_t n);

/// y[i] = gamma[i] * (x[i] - mu) * inv_s + beta[i] for i in [0, n) — the
/// per-element normalize pass of layer_norm, with the exact left-to-right
/// association of the scalar loop. The mu/inv_s *reductions* stay scalar
/// in the caller (vectorizing a sum would reassociate it).
void norm_affine(double* y, const double* x, const double* gamma,
                 const double* beta, double mu, double inv_s, std::size_t n);

}  // namespace gns::simd
