#pragma once

/// \file csv.hpp
/// Tiny CSV writer used by benches and examples to dump series (error
/// evolution, inverse-iteration traces) for offline plotting.

#include <fstream>
#include <string>
#include <vector>

namespace gns {

/// Streams rows of doubles (plus an optional leading string column) to a
/// CSV file. Writing is line-buffered; the file is flushed on destruction.
class CsvWriter {
 public:
  /// Opens \p path for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Appends one numeric row; must match the header width.
  void row(const std::vector<double>& values);

  /// Appends a row whose first cell is a label (e.g. an expression string).
  void labeled_row(const std::string& label,
                   const std::vector<double>& values);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ofstream out_;
  std::size_t width_ = 0;
};

}  // namespace gns
