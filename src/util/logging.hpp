#pragma once

/// \file logging.hpp
/// Minimal leveled logger. Defaults to Info; benches lower it to Warn so
/// table output stays clean. Thread-safe: the level is an atomic, emission
/// takes a mutex, and each line carries a small per-thread id (t0, t1, ...)
/// so interleaved worker / OpenMP-region logs stay attributable.

#include <sstream>
#include <string>

namespace gns {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

#define GNS_LOG(level, expr)                                        \
  do {                                                              \
    if (static_cast<int>(level) >= static_cast<int>(::gns::log_level())) { \
      std::ostringstream gns_log_os_;                               \
      gns_log_os_ << expr;                                          \
      ::gns::detail::log_emit(level, gns_log_os_.str());            \
    }                                                               \
  } while (false)

#define GNS_DEBUG(expr) GNS_LOG(::gns::LogLevel::Debug, expr)
#define GNS_INFO(expr) GNS_LOG(::gns::LogLevel::Info, expr)
#define GNS_WARN(expr) GNS_LOG(::gns::LogLevel::Warn, expr)
#define GNS_ERROR(expr) GNS_LOG(::gns::LogLevel::Error, expr)

}  // namespace gns
