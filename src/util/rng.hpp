#pragma once

/// \file rng.hpp
/// Deterministic, seedable random number generation.
///
/// Every stochastic component in the library (weight init, training noise,
/// dataset generation, genetic operators) takes an explicit Rng so that runs
/// are bitwise reproducible at a fixed seed. The generator is xoshiro256++,
/// seeded via splitmix64, following the reference implementations of
/// Blackman & Vigna.

#include <cmath>
#include <cstdint>
#include <numbers>

namespace gns {

/// splitmix64 step; used to expand a single seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ PRNG with convenience samplers.
///
/// Satisfies UniformRandomBitGenerator, so it can also feed <random>
/// distributions, but the built-in samplers below are platform-stable
/// (libstdc++'s std::normal_distribution is not guaranteed identical across
/// implementations).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6e73736e67ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    has_cached_gauss_ = false;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result =
        rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform float in [lo, hi).
  float uniformf(float lo, float hi) {
    return static_cast<float>(uniform(lo, hi));
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Multiplicative range reduction (Lemire); negligible bias for our n.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
  }

  /// Standard normal via Box–Muller with caching of the second deviate.
  double gauss() {
    if (has_cached_gauss_) {
      has_cached_gauss_ = false;
      return cached_gauss_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_gauss_ = r * std::sin(theta);
    has_cached_gauss_ = true;
    return r * std::cos(theta);
  }

  /// Normal with given mean and standard deviation.
  double gauss(double mean, double stddev) { return mean + stddev * gauss(); }

  float gaussf(float mean, float stddev) {
    return static_cast<float>(gauss(mean, stddev));
  }

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent child generator (for per-thread / per-component
  /// streams) without perturbing this generator's own sequence more than
  /// one draw.
  Rng split() { return Rng(next()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_gauss_ = 0.0;
  bool has_cached_gauss_ = false;
};

}  // namespace gns
