#include "util/csv.hpp"

#include "util/check.hpp"

namespace gns {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : out_(path), width_(columns.size()) {
  GNS_CHECK_MSG(!columns.empty(), "CSV needs at least one column");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
}

CsvWriter::~CsvWriter() { out_.flush(); }

void CsvWriter::row(const std::vector<double>& values) {
  GNS_CHECK_MSG(values.size() == width_, "CSV row width mismatch: got "
                                             << values.size() << ", expected "
                                             << width_);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
}

void CsvWriter::labeled_row(const std::string& label,
                            const std::vector<double>& values) {
  GNS_CHECK_MSG(values.size() + 1 == width_,
                "CSV labeled row width mismatch");
  out_ << '"' << label << '"';
  for (double v : values) out_ << ',' << v;
  out_ << '\n';
}

}  // namespace gns
