#pragma once

/// \file check.hpp
/// Lightweight runtime-check macros used across the library.
///
/// GNS_CHECK is always on (it guards API misuse: shape mismatches, bad
/// indices); GNS_DCHECK compiles out in release builds and guards
/// internal invariants on hot paths.

#include <sstream>
#include <stdexcept>
#include <string>

namespace gns {

/// Exception thrown by failed GNS_CHECK assertions. Deriving from
/// std::logic_error signals that the failure is a programming error
/// (bad shapes, out-of-range indices), not an environmental one.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "GNS_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace gns

#define GNS_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond))                                                          \
      ::gns::detail::check_failed(#cond, __FILE__, __LINE__, "");         \
  } while (false)

#define GNS_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream gns_check_os_;                                   \
      gns_check_os_ << msg;                                               \
      ::gns::detail::check_failed(#cond, __FILE__, __LINE__,              \
                                  gns_check_os_.str());                   \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define GNS_DCHECK(cond) ((void)0)
#else
#define GNS_DCHECK(cond) GNS_CHECK(cond)
#endif
