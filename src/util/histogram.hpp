#pragma once

/// \file histogram.hpp
/// Log-bucketed latency histogram for the serving subsystem and benches.
///
/// Values (milliseconds by convention, but any positive unit works) are
/// binned into geometrically growing buckets, so a fixed, small memory
/// footprint covers microseconds through hours while keeping quantile
/// estimates within one bucket's relative width (~15% at the default
/// growth factor). Exact min/max/sum are tracked alongside the buckets so
/// mean and extrema are not quantized.
///
/// Not internally synchronized: callers (ServerStats) hold their own lock.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace gns {

class Histogram {
 public:
  /// \param min_value lower edge of the first bucket; smaller samples clamp
  ///                  into bucket 0.
  /// \param growth    geometric ratio between consecutive bucket edges.
  /// \param buckets   number of buckets; larger samples clamp into the last.
  explicit Histogram(double min_value = 1e-3, double growth = 1.15,
                     int buckets = 200)
      : min_value_(min_value),
        log_growth_(std::log(growth)),
        counts_(static_cast<std::size_t>(buckets), 0) {
    GNS_CHECK_MSG(min_value > 0.0 && growth > 1.0 && buckets > 1,
                  "histogram needs min_value>0, growth>1, buckets>1");
  }

  void add(double value) {
    counts_[bucket_of(value)] += 1;
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  /// Merge another histogram with identical bucketing.
  void merge(const Histogram& other) {
    GNS_CHECK_MSG(counts_.size() == other.counts_.size() &&
                      min_value_ == other.min_value_ &&
                      log_growth_ == other.log_growth_,
                  "histogram merge requires identical bucketing");
    for (std::size_t i = 0; i < counts_.size(); ++i)
      counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  /// Quantile estimate (q in [0,1]) with linear interpolation inside the
  /// containing bucket, clamped to the exact observed [min, max].
  [[nodiscard]] double quantile(double q) const {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count_);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] == 0) continue;
      const double before = static_cast<double>(cumulative);
      cumulative += counts_[i];
      if (static_cast<double>(cumulative) >= target) {
        const double frac =
            counts_[i] == 0
                ? 0.0
                : (target - before) / static_cast<double>(counts_[i]);
        const double lo = bucket_lower(static_cast<int>(i));
        const double hi = bucket_upper(static_cast<int>(i));
        return std::clamp(lo + frac * (hi - lo), min_, max_);
      }
    }
    return max_;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] int num_buckets() const {
    return static_cast<int>(counts_.size());
  }
  [[nodiscard]] std::uint64_t bucket_count(int b) const {
    return counts_[static_cast<std::size_t>(b)];
  }
  [[nodiscard]] double bucket_lower(int b) const {
    return b == 0 ? 0.0 : min_value_ * std::exp(log_growth_ * b);
  }
  [[nodiscard]] double bucket_upper(int b) const {
    return min_value_ * std::exp(log_growth_ * (b + 1));
  }

  void reset() {
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
  }

 private:
  [[nodiscard]] std::size_t bucket_of(double value) const {
    if (!(value > min_value_)) return 0;
    const int b = static_cast<int>(std::log(value / min_value_) / log_growth_);
    return static_cast<std::size_t>(
        std::clamp(b, 0, static_cast<int>(counts_.size()) - 1));
  }

  double min_value_;
  double log_growth_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace gns
