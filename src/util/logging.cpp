#include "util/logging.hpp"

#include <iostream>

namespace gns {

namespace {
LogLevel g_level = LogLevel::Info;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  std::ostream& os = (level >= LogLevel::Warn) ? std::cerr : std::clog;
  os << "[" << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace gns
