#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace gns {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

/// Small sequential id per logging thread (stabler to read than the
/// opaque std::thread::id hash).
int thread_log_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  std::ostream& os = (level >= LogLevel::Warn) ? std::cerr : std::clog;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  os << "[" << level_name(level) << "/t" << thread_log_id() << "] "
     << message << '\n';
}
}  // namespace detail

}  // namespace gns
