#pragma once

/// \file hash.hpp
/// FNV-1a 64-bit hashing, used for content addressing and record
/// checksums in the trajectory store (src/store).
///
/// FNV-1a is not cryptographic — the threat model is bit rot, torn
/// writes, and accidental key collisions, not an adversary forging
/// collisions. What matters here is that the function is deterministic
/// across platforms (we hash raw little-endian bytes, and every target
/// this repo builds on is little-endian x86-64), cheap enough to run on
/// every cache lookup, and has a 64-bit state so the ~thousands of live
/// cache keys sit far below the birthday bound.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace gns {

/// Incremental FNV-1a 64. Feed bytes in any grouping; the digest depends
/// only on the concatenated byte stream.
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  void update(const void* data, std::size_t len) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    std::uint64_t h = state_;
    for (std::size_t i = 0; i < len; ++i) {
      h ^= bytes[i];
      h *= kPrime;
    }
    state_ = h;
  }

  void update_u32(std::uint32_t v) { update(&v, sizeof(v)); }
  void update_u64(std::uint64_t v) { update(&v, sizeof(v)); }
  void update_i32(std::int32_t v) { update(&v, sizeof(v)); }
  /// Hashes the IEEE-754 bit pattern, so +0.0 and -0.0 differ — exactly
  /// what content addressing of bitwise-reproducible rollouts wants.
  void update_double(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    update_u64(bits);
  }
  /// Length-prefixed, so {"ab","c"} and {"a","bc"} hash differently.
  void update_string(const std::string& s) {
    update_u64(s.size());
    update(s.data(), s.size());
  }
  void update_doubles(const std::vector<double>& v) {
    update_u64(v.size());
    update(v.data(), v.size() * sizeof(double));
  }

  [[nodiscard]] std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

/// One-shot convenience for checksumming a contiguous buffer.
[[nodiscard]] inline std::uint64_t hash_bytes(const void* data,
                                              std::size_t len) {
  Fnv1a h;
  h.update(data, len);
  return h.digest();
}

}  // namespace gns
