#include "mpm/material.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace gns::mpm {

LinearElastic::LinearElastic(double youngs, double poisson, double density)
    : youngs_(youngs), poisson_(poisson), density_(density) {
  GNS_CHECK_MSG(youngs > 0.0, "Young's modulus must be positive");
  GNS_CHECK_MSG(poisson > -1.0 && poisson < 0.5,
                "Poisson's ratio must be in (-1, 0.5)");
  GNS_CHECK_MSG(density > 0.0, "density must be positive");
  lambda_ = youngs * poisson / ((1.0 + poisson) * (1.0 - 2.0 * poisson));
  mu_ = youngs / (2.0 * (1.0 + poisson));
}

SymTensor2 LinearElastic::elastic_increment(const SymTensor2& de) const {
  const double tr = de.trace();
  SymTensor2 ds;
  ds.xx = lambda_ * tr + 2.0 * mu_ * de.xx;
  ds.yy = lambda_ * tr + 2.0 * mu_ * de.yy;
  ds.zz = lambda_ * tr + 2.0 * mu_ * de.zz;  // de.zz = 0 => σzz from λ tr
  ds.xy = 2.0 * mu_ * de.xy;
  return ds;
}

SymTensor2 LinearElastic::update_stress(const StressState& state) const {
  return state.stress + elastic_increment(state.dstrain);
}

double LinearElastic::wave_speed() const {
  return std::sqrt((lambda_ + 2.0 * mu_) / density_);
}

DruckerPrager::DruckerPrager(double youngs, double poisson, double density,
                             double friction_deg, double cohesion)
    : LinearElastic(youngs, poisson, density),
      friction_deg_(friction_deg),
      cohesion_(cohesion) {
  GNS_CHECK_MSG(friction_deg >= 0.0 && friction_deg < 90.0,
                "friction angle must be in [0, 90) degrees");
  GNS_CHECK_MSG(cohesion >= 0.0, "cohesion must be non-negative");
  const double tan_phi = std::tan(friction_deg * M_PI / 180.0);
  const double denom = std::sqrt(9.0 + 12.0 * tan_phi * tan_phi);
  alpha_ = 3.0 * tan_phi / denom;
  k_ = 3.0 * cohesion / denom;
}

SymTensor2 DruckerPrager::update_stress(const StressState& state) const {
  // Elastic predictor.
  SymTensor2 trial = state.stress + elastic_increment(state.dstrain);
  const double p = trial.mean();
  const double sqrt_j2 = std::sqrt(std::max(trial.j2(), 0.0));

  // Apex (tensile) region: the cone admits sqrt(J2) <= k - α p; when even
  // the hydrostatic axis is outside (k - α p < 0), return to the apex —
  // for a cohesionless material that is the zero-stress state.
  const double cone_radius = k_ - alpha_ * p;
  if (cone_radius <= 0.0) {
    const double p_apex = (alpha_ > 0.0) ? k_ / alpha_ : 0.0;
    return {p_apex, p_apex, 0.0, p_apex};
  }

  // Inside the cone: accept the elastic trial.
  if (sqrt_j2 <= cone_radius) return trial;

  // Shear failure: scale the deviator back onto the cone, keep p (zero
  // dilatancy return).
  const double scale = cone_radius / sqrt_j2;
  SymTensor2 s = trial.deviator() * scale;
  return {s.xx + p, s.yy + p, s.xy, s.zz + p};
}

NewtonianFluid::NewtonianFluid(double rest_density, double sound_speed,
                               double viscosity)
    : rest_density_(rest_density),
      sound_speed_(sound_speed),
      viscosity_(viscosity) {
  GNS_CHECK_MSG(rest_density > 0.0, "rest density must be positive");
  GNS_CHECK_MSG(sound_speed > 0.0, "sound speed must be positive");
  GNS_CHECK_MSG(viscosity >= 0.0, "viscosity must be non-negative");
}

SymTensor2 NewtonianFluid::update_stress(const StressState& state) const {
  // Pressure from the linearized EOS; clamped at zero so free surfaces do
  // not generate spurious tension (standard cavitation cutoff).
  const double rho =
      (state.density > 0.0) ? state.density : rest_density_;
  double p = sound_speed_ * sound_speed_ * (rho - rest_density_);
  p = std::max(p, 0.0);

  // Viscous deviatoric stress from the strain *rate* = dstrain / dt.
  SymTensor2 out{-p, -p, 0.0, -p};
  if (state.dt > 0.0 && viscosity_ > 0.0) {
    const double inv_dt = 1.0 / state.dt;
    SymTensor2 rate = state.dstrain * inv_dt;
    const SymTensor2 dev = rate.deviator();
    out.xx += 2.0 * viscosity_ * dev.xx;
    out.yy += 2.0 * viscosity_ * dev.yy;
    out.zz += 2.0 * viscosity_ * dev.zz;
    out.xy += 2.0 * viscosity_ * dev.xy;
  }
  return out;
}

}  // namespace gns::mpm
