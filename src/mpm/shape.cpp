#include "mpm/shape.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define GNS_MPM_AVX2_KERNEL 1
#endif

#include "util/simd.hpp"

namespace gns::mpm {

namespace {

/// Scalar reference: one shape_weights call per coordinate, transposed
/// into the SoA layout.
void batch_scalar(ShapeKind kind, const double* x, int count, double h,
                  ShapeWeightsBatch& out) {
  for (int i = 0; i < count; ++i) {
    const ShapeWeights1D s = shape_weights(kind, x[i], h);
    out.base[i] = s.base;
    for (int k = 0; k < 3; ++k) {
      out.w[k][i] = s.w[k];
      out.dw[k][i] = s.dw[k];
    }
  }
}

#ifdef GNS_MPM_AVX2_KERNEL

/// Quadratic B-spline weights, 4 coordinates per iteration. Bitwise equal
/// to bspline_weights + the /h of the dispatcher: _mm256_div_pd and
/// _mm256_floor_pd are the same correctly-rounded ops as `/` and
/// std::floor, fx = x/h - floor(x/h + 0.5) subtracts the exact
/// integer-valued double, and every product keeps the scalar association
/// (0.5*(0.5∓fx))*(0.5∓fx). The truncating int conversion is exact
/// because its input is already an integer-valued double.
__attribute__((target("avx2"))) void batch_bspline_avx2(
    const double* x, int count, double h, ShapeWeightsBatch& out) {
  const __m256d vh = _mm256_set1_pd(h);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d three_q = _mm256_set1_pd(0.75);
  const __m256d neg_two = _mm256_set1_pd(-2.0);
  int i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d xo = _mm256_div_pd(_mm256_loadu_pd(x + i), vh);
    const __m256d d = _mm256_floor_pd(_mm256_add_pd(xo, half));
    const __m256d fx = _mm256_sub_pd(xo, d);
    const __m128i base =
        _mm_sub_epi32(_mm256_cvttpd_epi32(d), _mm_set1_epi32(1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out.base + i), base);
    const __m256d lo = _mm256_sub_pd(half, fx);  // 0.5 - fx
    const __m256d hi = _mm256_add_pd(half, fx);  // 0.5 + fx
    _mm256_store_pd(out.w[0] + i,
                    _mm256_mul_pd(_mm256_mul_pd(half, lo), lo));
    _mm256_store_pd(out.w[1] + i,
                    _mm256_sub_pd(three_q, _mm256_mul_pd(fx, fx)));
    _mm256_store_pd(out.w[2] + i,
                    _mm256_mul_pd(_mm256_mul_pd(half, hi), hi));
    _mm256_store_pd(out.dw[0] + i,
                    _mm256_div_pd(_mm256_sub_pd(fx, half), vh));
    _mm256_store_pd(out.dw[1] + i,
                    _mm256_div_pd(_mm256_mul_pd(neg_two, fx), vh));
    _mm256_store_pd(out.dw[2] + i,
                    _mm256_div_pd(_mm256_add_pd(fx, half), vh));
  }
  for (; i < count; ++i) {
    const ShapeWeights1D s =
        shape_weights(ShapeKind::QuadraticBSpline, x[i], h);
    out.base[i] = s.base;
    for (int k = 0; k < 3; ++k) {
      out.w[k][i] = s.w[k];
      out.dw[k][i] = s.dw[k];
    }
  }
}

#endif  // GNS_MPM_AVX2_KERNEL

}  // namespace

void shape_weights_batch(ShapeKind kind, const double* x, int count, double h,
                         ShapeWeightsBatch& out) {
  GNS_DCHECK(count >= 0 && count <= kShapeBatch);
#ifdef GNS_MPM_AVX2_KERNEL
  if (kind == ShapeKind::QuadraticBSpline && simd::active()) {
    batch_bspline_avx2(x, count, h, out);
    return;
  }
#endif
  batch_scalar(kind, x, count, h, out);
}

}  // namespace gns::mpm
