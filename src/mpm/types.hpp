#pragma once

/// \file types.hpp
/// Small dense 2-D vector/tensor types for the MPM and CFD substrates.
/// Plane-strain MPM carries a 2x2 in-plane stress block plus sigma_zz.

#include <cmath>

namespace gns::mpm {

struct Vec2d {
  double x = 0.0;
  double y = 0.0;

  Vec2d() = default;
  Vec2d(double x_, double y_) : x(x_), y(y_) {}

  Vec2d& operator+=(const Vec2d& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2d& operator-=(const Vec2d& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  Vec2d& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  friend Vec2d operator+(Vec2d a, const Vec2d& b) { return a += b; }
  friend Vec2d operator-(Vec2d a, const Vec2d& b) { return a -= b; }
  friend Vec2d operator*(Vec2d a, double s) { return a *= s; }
  friend Vec2d operator*(double s, Vec2d a) { return a *= s; }

  [[nodiscard]] double dot(const Vec2d& o) const { return x * o.x + y * o.y; }
  [[nodiscard]] double norm2() const { return x * x + y * y; }
  [[nodiscard]] double norm() const { return std::sqrt(norm2()); }
};

/// Symmetric plane-strain stress/strain tensor: in-plane xx, yy, xy and the
/// out-of-plane zz component (nonzero under plane strain).
struct SymTensor2 {
  double xx = 0.0;
  double yy = 0.0;
  double xy = 0.0;
  double zz = 0.0;

  SymTensor2& operator+=(const SymTensor2& o) {
    xx += o.xx;
    yy += o.yy;
    xy += o.xy;
    zz += o.zz;
    return *this;
  }
  friend SymTensor2 operator+(SymTensor2 a, const SymTensor2& b) {
    return a += b;
  }
  friend SymTensor2 operator*(SymTensor2 a, double s) {
    a.xx *= s;
    a.yy *= s;
    a.xy *= s;
    a.zz *= s;
    return a;
  }

  /// Trace (includes zz).
  [[nodiscard]] double trace() const { return xx + yy + zz; }

  /// Mean stress p = tr/3 (tension positive).
  [[nodiscard]] double mean() const { return trace() / 3.0; }

  /// Deviatoric part.
  [[nodiscard]] SymTensor2 deviator() const {
    const double p = mean();
    return {xx - p, yy - p, xy, zz - p};
  }

  /// Second deviatoric invariant J2 = 1/2 s:s (xy counts twice).
  [[nodiscard]] double j2() const {
    const SymTensor2 s = deviator();
    return 0.5 * (s.xx * s.xx + s.yy * s.yy + s.zz * s.zz) + s.xy * s.xy;
  }
};

/// Full (non-symmetric) 2x2 tensor — velocity gradients.
struct Mat2 {
  double xx = 0.0, xy = 0.0;
  double yx = 0.0, yy = 0.0;

  /// Symmetric part times dt = small-strain increment (plane strain:
  /// dε_zz = 0).
  [[nodiscard]] SymTensor2 sym_scaled(double dt) const {
    return {xx * dt, yy * dt, 0.5 * (xy + yx) * dt, 0.0};
  }

  [[nodiscard]] double trace() const { return xx + yy; }
};

}  // namespace gns::mpm
