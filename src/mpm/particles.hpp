#pragma once

/// \file particles.hpp
/// Structure-of-arrays material point container plus scene constructors
/// (block sampling for the paper's square granular masses and columns).

#include <vector>

#include "mpm/types.hpp"
#include "util/check.hpp"

namespace gns::mpm {

/// SoA particle state. All arrays share the same length.
struct Particles {
  std::vector<Vec2d> position;
  std::vector<Vec2d> velocity;
  std::vector<double> mass;
  std::vector<double> volume;
  std::vector<SymTensor2> stress;

  [[nodiscard]] int size() const {
    return static_cast<int>(position.size());
  }

  void reserve(int n) {
    position.reserve(n);
    velocity.reserve(n);
    mass.reserve(n);
    volume.reserve(n);
    stress.reserve(n);
  }

  /// Appends one particle.
  void add(Vec2d x, Vec2d v, double m, double vol,
           SymTensor2 sigma = SymTensor2{}) {
    GNS_DCHECK(m > 0.0 && vol > 0.0);
    position.push_back(x);
    velocity.push_back(v);
    mass.push_back(m);
    volume.push_back(vol);
    stress.push_back(sigma);
  }

  /// Total mass (conserved by the solver; asserted in tests).
  [[nodiscard]] double total_mass() const {
    double m = 0.0;
    for (double v : mass) m += v;
    return m;
  }

  /// Total kinetic energy.
  [[nodiscard]] double kinetic_energy() const {
    double e = 0.0;
    for (int i = 0; i < size(); ++i)
      e += 0.5 * mass[i] * velocity[i].norm2();
    return e;
  }

  /// Center of mass.
  [[nodiscard]] Vec2d center_of_mass() const {
    Vec2d c;
    double m = 0.0;
    for (int i = 0; i < size(); ++i) {
      c += position[i] * mass[i];
      m += mass[i];
    }
    if (m > 0.0) c *= 1.0 / m;
    return c;
  }

  /// Rightmost particle x — the runout front the inverse problem targets.
  [[nodiscard]] double max_x() const {
    double mx = 0.0;
    for (const auto& p : position) mx = std::max(mx, p.x);
    return mx;
  }
};

/// Fills an axis-aligned rectangle [lo, hi] with a regular lattice of
/// particles at spacing `spacing`, all with initial velocity `v0`.
/// Mass per particle = ρ · spacing² (2-D unit-thickness convention).
Particles make_block(Vec2d lo, Vec2d hi, double spacing, double density,
                     Vec2d v0 = Vec2d{});

/// Appends `extra` (same layout) to `base`.
void append(Particles& base, const Particles& extra);

}  // namespace gns::mpm
