#include "mpm/particles.hpp"

namespace gns::mpm {

Particles make_block(Vec2d lo, Vec2d hi, double spacing, double density,
                     Vec2d v0) {
  GNS_CHECK_MSG(spacing > 0.0, "particle spacing must be positive");
  GNS_CHECK_MSG(hi.x > lo.x && hi.y > lo.y, "block must have positive size");
  Particles p;
  const double m = density * spacing * spacing;
  const double vol = spacing * spacing;
  // Offset half a spacing so particles sit inside cells, not on faces.
  for (double y = lo.y + 0.5 * spacing; y < hi.y; y += spacing) {
    for (double x = lo.x + 0.5 * spacing; x < hi.x; x += spacing) {
      p.add({x, y}, v0, m, vol);
    }
  }
  GNS_CHECK_MSG(p.size() > 0, "block too small for the given spacing");
  return p;
}

void append(Particles& base, const Particles& extra) {
  base.position.insert(base.position.end(), extra.position.begin(),
                       extra.position.end());
  base.velocity.insert(base.velocity.end(), extra.velocity.begin(),
                       extra.velocity.end());
  base.mass.insert(base.mass.end(), extra.mass.begin(), extra.mass.end());
  base.volume.insert(base.volume.end(), extra.volume.begin(),
                     extra.volume.end());
  base.stress.insert(base.stress.end(), extra.stress.begin(),
                     extra.stress.end());
}

}  // namespace gns::mpm
