#pragma once

/// \file solver.hpp
/// Explicit update-stress-last Material Point Method (2-D, plane strain).
///
/// One step: particle-to-grid transfer (mass, momentum, internal + gravity
/// forces) -> grid velocity update with box boundary conditions -> grid-to-
/// particle transfer with a FLIP/PIC blend, velocity-gradient-driven
/// constitutive update, and position advection. Both transfer directions
/// run in parallel — on the work-stealing executor (exec::parallel_for /
/// fixed P2G lanes, bitwise invariant to the worker count) by default, or
/// under OpenMP with GNS_EXEC=0 (P2G scatters into per-thread grid buffers
/// reduced in fixed order: deterministic at a fixed thread count).
///
/// Both transfers run in kShapeBatch-particle chunks over SoA scratch:
/// shape weights are evaluated by the batched (AVX2-dispatched, bitwise
/// scalar-identical) shape_weights_batch, and the per-thread P2G buffers
/// are epoch-stamped per node block so only blocks a thread actually
/// touched are cleared and reduced — the full-grid clear/reduce used to
/// cost O(nodes × threads) per step regardless of particle support.
///
/// This is the substrate playing the role of CB-Geo MPM in the paper: it
/// generates the GNS training trajectories, is the "physics refinement"
/// phase of the hybrid GNS/MPM loop (§4), and is the speedup baseline
/// (§3.1: GNS vs parallel CPU MPM).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mpm/grid.hpp"
#include "mpm/material.hpp"
#include "mpm/particles.hpp"
#include "mpm/shape.hpp"

namespace gns::mpm {

struct MpmConfig {
  int cells_x = 40;
  int cells_y = 40;
  double spacing = 0.025;          ///< grid cell size h [m]
  Vec2d gravity{0.0, -9.81};
  double cfl = 0.4;                ///< fraction of h / wave_speed per step
  double fixed_dt = 0.0;           ///< >0 overrides CFL (time-aligned runs)
  double flip_blend = 0.95;        ///< 1 = pure FLIP, 0 = pure PIC
  double floor_friction = 0.4;     ///< Coulomb coefficient on the floor
  ShapeKind shape = ShapeKind::QuadraticBSpline;
};

/// Explicit MPM solver owning the grid and the particle set.
class MpmSolver {
 public:
  MpmSolver(MpmConfig config, std::shared_ptr<const Material> material,
            Particles particles);

  /// Advances one explicit step of size dt() and returns it.
  double step();

  /// Advances `n` steps; returns total simulated time.
  double run(int n);

  /// Stable timestep from the CFL condition against the material p-wave
  /// speed (recomputed cheaply; velocity-augmented for fast flows).
  [[nodiscard]] double dt() const;

  [[nodiscard]] const Particles& particles() const { return particles_; }
  [[nodiscard]] Particles& particles_mut() { return particles_; }
  [[nodiscard]] const Grid& grid() const { return grid_; }
  [[nodiscard]] const MpmConfig& config() const { return config_; }
  [[nodiscard]] const Material& material() const { return *material_; }
  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] std::int64_t steps_taken() const { return steps_; }

  /// Replaces particle kinematics (positions + velocities) in place —
  /// the hybrid controller hands GNS rollout output back to the physics
  /// solver through this. Stress state is preserved; callers that need a
  /// fresh stress state can also zero it.
  void set_kinematics(const std::vector<Vec2d>& positions,
                      const std::vector<Vec2d>& velocities);

 private:
  void particle_to_grid(double dt);
  void grid_to_particle(double dt);

  /// Node blocks of the lazy-clear bookkeeping: nodes [blk << kBlockShift,
  /// (blk + 1) << kBlockShift) form one clear/reduce unit.
  static constexpr int kBlockShift = 6;  // 64 nodes per block

  /// P2G scatter lanes on the executor path (GNS_EXEC=1). Each lane owns a
  /// fixed contiguous chunk range and a private scatter buffer, and the
  /// reduction sums lanes in ascending order — a constant decomposition,
  /// so P2G is bitwise identical at any executor worker count (the OpenMP
  /// path keeps its per-thread buffers: bitwise per thread count only).
  static constexpr int kP2gLanes = 8;

  /// Per-thread P2G scatter buffers, SoA per field so the reduction can
  /// run as flat vector adds. `block_epoch[blk] == current epoch` means
  /// this thread zeroed + touched block blk this step; anything else is
  /// stale data from an earlier step that the reduction must (and does)
  /// skip — which is exactly the legacy behaviour of a fully-zeroed
  /// buffer, without the O(nodes) clear.
  struct P2gBuffer {
    std::vector<double> mass, mom_x, mom_y, force_x, force_y;
    std::vector<std::uint64_t> block_epoch;
    std::vector<int> dirty;  ///< blocks this thread touched this step
  };
  void ensure_p2g_buffers();

  MpmConfig config_;
  std::shared_ptr<const Material> material_;
  Particles particles_;
  Grid grid_;
  std::vector<Vec2d> grid_old_velocity_;
  std::vector<P2gBuffer> p2g_buffers_;
  std::vector<std::uint64_t> touched_epoch_;  ///< [block] union stamp
  std::vector<int> touched_blocks_;           ///< union dirty list
  std::uint64_t p2g_epoch_ = 0;
  double time_ = 0.0;
  std::int64_t steps_ = 0;
};

}  // namespace gns::mpm
