#pragma once

/// \file solver.hpp
/// Explicit update-stress-last Material Point Method (2-D, plane strain).
///
/// One step: particle-to-grid transfer (mass, momentum, internal + gravity
/// forces) -> grid velocity update with box boundary conditions -> grid-to-
/// particle transfer with a FLIP/PIC blend, velocity-gradient-driven
/// constitutive update, and position advection. OpenMP parallel in both
/// transfer directions (P2G scatters into per-thread grid buffers that are
/// reduced in fixed order, so results are deterministic at a fixed thread
/// count).
///
/// This is the substrate playing the role of CB-Geo MPM in the paper: it
/// generates the GNS training trajectories, is the "physics refinement"
/// phase of the hybrid GNS/MPM loop (§4), and is the speedup baseline
/// (§3.1: GNS vs parallel CPU MPM).

#include <functional>
#include <memory>

#include "mpm/grid.hpp"
#include "mpm/material.hpp"
#include "mpm/particles.hpp"
#include "mpm/shape.hpp"

namespace gns::mpm {

struct MpmConfig {
  int cells_x = 40;
  int cells_y = 40;
  double spacing = 0.025;          ///< grid cell size h [m]
  Vec2d gravity{0.0, -9.81};
  double cfl = 0.4;                ///< fraction of h / wave_speed per step
  double fixed_dt = 0.0;           ///< >0 overrides CFL (time-aligned runs)
  double flip_blend = 0.95;        ///< 1 = pure FLIP, 0 = pure PIC
  double floor_friction = 0.4;     ///< Coulomb coefficient on the floor
  ShapeKind shape = ShapeKind::QuadraticBSpline;
};

/// Explicit MPM solver owning the grid and the particle set.
class MpmSolver {
 public:
  MpmSolver(MpmConfig config, std::shared_ptr<const Material> material,
            Particles particles);

  /// Advances one explicit step of size dt() and returns it.
  double step();

  /// Advances `n` steps; returns total simulated time.
  double run(int n);

  /// Stable timestep from the CFL condition against the material p-wave
  /// speed (recomputed cheaply; velocity-augmented for fast flows).
  [[nodiscard]] double dt() const;

  [[nodiscard]] const Particles& particles() const { return particles_; }
  [[nodiscard]] Particles& particles_mut() { return particles_; }
  [[nodiscard]] const Grid& grid() const { return grid_; }
  [[nodiscard]] const MpmConfig& config() const { return config_; }
  [[nodiscard]] const Material& material() const { return *material_; }
  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] std::int64_t steps_taken() const { return steps_; }

  /// Replaces particle kinematics (positions + velocities) in place —
  /// the hybrid controller hands GNS rollout output back to the physics
  /// solver through this. Stress state is preserved; callers that need a
  /// fresh stress state can also zero it.
  void set_kinematics(const std::vector<Vec2d>& positions,
                      const std::vector<Vec2d>& velocities);

 private:
  void particle_to_grid(double dt);
  void grid_to_particle(double dt);

  MpmConfig config_;
  std::shared_ptr<const Material> material_;
  Particles particles_;
  Grid grid_;
  std::vector<Vec2d> grid_old_velocity_;
  // Per-thread P2G scatter buffers: [thread][node].
  std::vector<std::vector<double>> local_mass_;
  std::vector<std::vector<Vec2d>> local_momentum_;
  std::vector<std::vector<Vec2d>> local_force_;
  double time_ = 0.0;
  std::int64_t steps_ = 0;
};

}  // namespace gns::mpm
