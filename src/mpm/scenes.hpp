#pragma once

/// \file scenes.hpp
/// Canonical experiment scenes from the paper: the granular column collapse
/// (§5 inverse problem), and the randomized square granular masses that form
/// the GNS training set (§3.1: "26 square-shaped granular mass flow
/// trajectories in a two-dimensional box boundary ... different initial
/// configuration regarding the size of the square granular mass, position,
/// and velocity").

#include <memory>

#include "mpm/solver.hpp"
#include "util/rng.hpp"

namespace gns::mpm {

/// Material parameters shared by the granular scenes. Young's modulus is
/// kept modest so the explicit CFL timestep stays affordable at test scale —
/// runout behaviour is governed by φ, not stiffness, once E is "stiff
/// enough" relative to gravity loads.
struct GranularMaterialParams {
  double youngs = 1e6;        ///< [Pa]
  double poisson = 0.3;
  double density = 1800.0;    ///< [kg/m^3]
  double friction_deg = 30.0; ///< Mohr-Coulomb φ
  double cohesion = 0.0;      ///< [Pa]
};

/// Geometry + discretization of a box-bounded granular scene.
struct GranularSceneParams {
  double domain_width = 1.0;   ///< [m]
  double domain_height = 0.5;  ///< [m]
  int cells_x = 40;
  int cells_y = 20;
  int particles_per_cell_dim = 2;  ///< lattice density (2 => 4 ppc)
  double floor_friction = 0.4;
  GranularMaterialParams material;
};

/// A fully-assembled MPM scene ready to run.
struct Scene {
  std::shared_ptr<const Material> material;
  MpmConfig config;
  Particles particles;

  [[nodiscard]] MpmSolver make_solver() const {
    return MpmSolver(config, material, particles);
  }
};

/// Granular column collapse: a column of width `column_width` and height
/// `aspect_ratio * column_width` released at the left wall. The runout
/// front max_x(t) is the observable the §5 inverse problem matches.
[[nodiscard]] Scene make_column_collapse(const GranularSceneParams& params,
                                         double column_width,
                                         double aspect_ratio);

/// Randomized square granular mass (training-set generator): a square block
/// of side in [min_side, max_side], placed uniformly inside the box with an
/// initial velocity of magnitude up to `max_speed`.
[[nodiscard]] Scene make_random_square(const GranularSceneParams& params,
                                       Rng& rng, double min_side = 0.12,
                                       double max_side = 0.3,
                                       double max_speed = 1.0);

/// Weakly-compressible fluid parameters for the dam-break scenes.
struct FluidMaterialParams {
  double rest_density = 1000.0;  ///< [kg/m^3]
  double sound_speed = 20.0;     ///< artificial c [m/s] (>=10x flow speed)
  double viscosity = 5e-3;       ///< dynamic μ [Pa·s]
};

struct FluidSceneParams {
  double domain_width = 1.0;
  double domain_height = 0.5;
  int cells_x = 32;
  int cells_y = 16;
  int particles_per_cell_dim = 2;
  FluidMaterialParams material;
};

/// Dam break: a water column of `width` x `height` released at the left
/// wall — the canonical fluid analog of the granular column collapse, and
/// the fluid workload the GNS trains on.
[[nodiscard]] Scene make_dam_break(const FluidSceneParams& params,
                                   double width, double height,
                                   Vec2d v0 = Vec2d{});

}  // namespace gns::mpm
