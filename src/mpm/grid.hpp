#pragma once

/// \file grid.hpp
/// Background Eulerian grid of the MPM. Holds nodal mass/momentum/force and
/// applies box boundary conditions (frictional floor, free-slip walls).

#include <vector>

#include "mpm/types.hpp"
#include "util/check.hpp"

namespace gns::mpm {

/// Uniform node-centered grid over [0, nx*h] x [0, ny*h] with (nx+1)(ny+1)
/// nodes.
class Grid {
 public:
  Grid(int cells_x, int cells_y, double spacing);

  void clear();

  [[nodiscard]] int cells_x() const { return nx_; }
  [[nodiscard]] int cells_y() const { return ny_; }
  [[nodiscard]] int nodes_x() const { return nx_ + 1; }
  [[nodiscard]] int nodes_y() const { return ny_ + 1; }
  [[nodiscard]] int num_nodes() const { return nodes_x() * nodes_y(); }
  [[nodiscard]] double spacing() const { return h_; }
  [[nodiscard]] double width() const { return nx_ * h_; }
  [[nodiscard]] double height() const { return ny_ * h_; }

  [[nodiscard]] int node_index(int ix, int iy) const {
    GNS_DCHECK(ix >= 0 && ix < nodes_x() && iy >= 0 && iy < nodes_y());
    return iy * nodes_x() + ix;
  }

  std::vector<double> mass;
  std::vector<Vec2d> momentum;
  std::vector<Vec2d> force;
  std::vector<Vec2d> velocity;

  /// Converts momentum to velocity with the explicit force update
  /// v = (p + dt f) / m, skipping empty nodes.
  void update_velocities(double dt, double min_mass = 1e-12);

  /// Box boundary: zero inward-normal velocity at the four walls; on the
  /// floor, Coulomb-friction the tangential component with coefficient
  /// `floor_friction` (0 = free slip, large = effectively no slip).
  void apply_boundary(double dt, double floor_friction);

 private:
  int nx_;
  int ny_;
  double h_;
};

}  // namespace gns::mpm
