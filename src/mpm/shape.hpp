#pragma once

/// \file shape.hpp
/// MPM shape functions: linear hat (support 2 nodes per axis) and quadratic
/// B-spline (support 3 nodes per axis, C1-continuous — eliminates the
/// cell-crossing noise of linear elements; CB-Geo MPM exposes the same
/// choice). Weights come in 1-D and combine by tensor product.

#include <array>
#include <cmath>

#include "util/check.hpp"

namespace gns::mpm {

enum class ShapeKind { Linear, QuadraticBSpline };

/// Per-axis weights/derivatives of one particle against its supporting
/// nodes. `base` is the lowest supporting node index; entries beyond
/// `count` are zero.
struct ShapeWeights1D {
  int base = 0;
  int count = 0;
  std::array<double, 3> w{};
  std::array<double, 3> dw{};  ///< d w / d x (physical units, 1/h)
};

/// Linear hat functions: particle in cell [i, i+1].
inline ShapeWeights1D linear_weights(double x_over_h) {
  ShapeWeights1D s;
  const int i = static_cast<int>(std::floor(x_over_h));
  const double fx = x_over_h - i;
  s.base = i;
  s.count = 2;
  s.w = {1.0 - fx, fx, 0.0};
  s.dw = {-1.0, 1.0, 0.0};
  return s;
}

/// Quadratic B-spline centered stencil: nodes i-1, i, i+1 where i is the
/// nearest node.
inline ShapeWeights1D bspline_weights(double x_over_h) {
  ShapeWeights1D s;
  const int i = static_cast<int>(std::floor(x_over_h + 0.5));
  const double fx = x_over_h - i;  // in [-0.5, 0.5)
  s.base = i - 1;
  s.count = 3;
  s.w = {0.5 * (0.5 - fx) * (0.5 - fx), 0.75 - fx * fx,
         0.5 * (0.5 + fx) * (0.5 + fx)};
  s.dw = {fx - 0.5, -2.0 * fx, fx + 0.5};
  return s;
}

/// Dispatcher. `x` is the physical coordinate, `h` the grid spacing;
/// derivative entries are returned in physical units (divided by h).
inline ShapeWeights1D shape_weights(ShapeKind kind, double x, double h) {
  GNS_DCHECK(h > 0.0);
  ShapeWeights1D s = (kind == ShapeKind::Linear)
                         ? linear_weights(x / h)
                         : bspline_weights(x / h);
  for (auto& d : s.dw) d /= h;
  return s;
}

/// Batch size of the SoA weight evaluation below (and of the solver's
/// chunked transfer loops). 128 coordinates keep the whole batch + both
/// axis results comfortably in L1.
inline constexpr int kShapeBatch = 128;

/// SoA per-axis weights for a contiguous batch of coordinates. Entry i
/// carries exactly the numbers shape_weights(kind, x[i], h) would return:
/// w[k][i] / dw[k][i] (physical units) for stencil offset k, and base[i].
struct ShapeWeightsBatch {
  alignas(32) double w[3][kShapeBatch];
  alignas(32) double dw[3][kShapeBatch];
  alignas(32) int base[kShapeBatch];
};

/// Evaluates shape_weights for x[0..count) (count <= kShapeBatch) into
/// `out`. The quadratic B-spline path has an AVX2 twin (runtime-dispatched
/// via gns::simd) that is bitwise identical to the scalar reference: div /
/// floor / mul / add are all single correctly-rounded IEEE ops, applied in
/// the same order per lane.
void shape_weights_batch(ShapeKind kind, const double* x, int count, double h,
                         ShapeWeightsBatch& out);

}  // namespace gns::mpm
