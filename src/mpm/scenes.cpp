#include "mpm/scenes.hpp"

#include <algorithm>
#include <cmath>

namespace gns::mpm {

namespace {

MpmConfig config_from(const GranularSceneParams& params) {
  MpmConfig cfg;
  cfg.cells_x = params.cells_x;
  cfg.cells_y = params.cells_y;
  cfg.spacing = params.domain_width / params.cells_x;
  const double sy = params.domain_height / params.cells_y;
  GNS_CHECK_MSG(std::abs(cfg.spacing - sy) < 1e-9 * cfg.spacing,
                "scene grid must be square: dx=" << cfg.spacing
                                                 << " dy=" << sy);
  cfg.floor_friction = params.floor_friction;
  return cfg;
}

std::shared_ptr<const Material> material_from(
    const GranularMaterialParams& m) {
  return std::make_shared<DruckerPrager>(m.youngs, m.poisson, m.density,
                                         m.friction_deg, m.cohesion);
}

double particle_spacing(const GranularSceneParams& params) {
  return params.domain_width / params.cells_x /
         params.particles_per_cell_dim;
}

}  // namespace

Scene make_column_collapse(const GranularSceneParams& params,
                           double column_width, double aspect_ratio) {
  GNS_CHECK_MSG(column_width > 0.0 && aspect_ratio > 0.0,
                "column geometry must be positive");
  const double height = aspect_ratio * column_width;
  GNS_CHECK_MSG(column_width < params.domain_width &&
                    height < params.domain_height,
                "column does not fit in the domain (height "
                    << height << " vs " << params.domain_height << ")");
  Scene scene;
  scene.config = config_from(params);
  scene.material = material_from(params.material);
  const double spacing = particle_spacing(params);
  scene.particles =
      make_block({0.0, 0.0}, {column_width, height}, spacing,
                 params.material.density);
  return scene;
}

Scene make_random_square(const GranularSceneParams& params, Rng& rng,
                         double min_side, double max_side, double max_speed) {
  GNS_CHECK(min_side > 0.0 && max_side >= min_side);
  GNS_CHECK_MSG(max_side < params.domain_width &&
                    max_side < params.domain_height,
                "square cannot exceed the domain");
  Scene scene;
  scene.config = config_from(params);
  scene.material = material_from(params.material);
  const double side = rng.uniform(min_side, max_side);
  const double margin = 0.02 * params.domain_width;
  const double x0 =
      rng.uniform(margin, params.domain_width - side - margin);
  // Bias the block upward a little so it has room to fall and flow.
  const double y0 = rng.uniform(
      margin, std::max(margin * 1.5, params.domain_height - side - margin));
  const double angle = rng.uniform(0.0, 2.0 * M_PI);
  const double speed = rng.uniform(0.0, max_speed);
  const Vec2d v0{speed * std::cos(angle), speed * std::sin(angle)};
  const double spacing = particle_spacing(params);
  scene.particles = make_block({x0, y0}, {x0 + side, y0 + side}, spacing,
                               params.material.density, v0);
  return scene;
}

Scene make_dam_break(const FluidSceneParams& params, double width,
                     double height, Vec2d v0) {
  GNS_CHECK_MSG(width > 0.0 && height > 0.0, "dam geometry must be positive");
  GNS_CHECK_MSG(width < params.domain_width &&
                    height < params.domain_height,
                "dam does not fit the domain");
  Scene scene;
  scene.config.cells_x = params.cells_x;
  scene.config.cells_y = params.cells_y;
  scene.config.spacing = params.domain_width / params.cells_x;
  const double sy = params.domain_height / params.cells_y;
  GNS_CHECK_MSG(std::abs(scene.config.spacing - sy) <
                    1e-9 * scene.config.spacing,
                "scene grid must be square");
  // Fluids slide on walls; a frictional floor would be unphysical here.
  scene.config.floor_friction = 0.0;
  // Mostly-PIC transfer damps the ringing the weak compressibility
  // introduces at coarse resolution.
  scene.config.flip_blend = 0.85;
  scene.material = std::make_shared<NewtonianFluid>(
      params.material.rest_density, params.material.sound_speed,
      params.material.viscosity);
  const double spacing =
      scene.config.spacing / params.particles_per_cell_dim;
  scene.particles = make_block({0.0, 0.0}, {width, height}, spacing,
                               params.material.rest_density, v0);
  return scene;
}

}  // namespace gns::mpm
