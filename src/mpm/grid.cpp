#include "mpm/grid.hpp"

#include "exec/parallel_for.hpp"

#include <algorithm>
#include <cmath>

namespace gns::mpm {

Grid::Grid(int cells_x, int cells_y, double spacing)
    : nx_(cells_x), ny_(cells_y), h_(spacing) {
  GNS_CHECK_MSG(cells_x > 0 && cells_y > 0, "grid needs positive cell counts");
  GNS_CHECK_MSG(spacing > 0.0, "grid spacing must be positive");
  mass.assign(num_nodes(), 0.0);
  momentum.assign(num_nodes(), Vec2d{});
  force.assign(num_nodes(), Vec2d{});
  velocity.assign(num_nodes(), Vec2d{});
}

void Grid::clear() {
  std::fill(mass.begin(), mass.end(), 0.0);
  std::fill(momentum.begin(), momentum.end(), Vec2d{});
  std::fill(force.begin(), force.end(), Vec2d{});
  std::fill(velocity.begin(), velocity.end(), Vec2d{});
}

void Grid::update_velocities(double dt, double min_mass) {
  const int n = num_nodes();
  exec::parallel_for(n, true, [&](std::int64_t i) {
    if (mass[i] > min_mass) {
      velocity[i].x = (momentum[i].x + dt * force[i].x) / mass[i];
      velocity[i].y = (momentum[i].y + dt * force[i].y) / mass[i];
    } else {
      velocity[i] = Vec2d{};
    }
  });
}

void Grid::apply_boundary(double dt, double floor_friction) {
  (void)dt;
  const int nxn = nodes_x();
  const int nyn = nodes_y();
  // Floor (y = 0): no penetration + Coulomb friction against the normal
  // "push" the node would otherwise have.
  for (int ix = 0; ix < nxn; ++ix) {
    const int i = node_index(ix, 0);
    if (velocity[i].y < 0.0) {
      const double vn = -velocity[i].y;  // inward normal magnitude
      velocity[i].y = 0.0;
      const double vt = velocity[i].x;
      const double drop = floor_friction * vn;
      if (std::abs(vt) <= drop) {
        velocity[i].x = 0.0;
      } else {
        velocity[i].x = vt - std::copysign(drop, vt);
      }
    }
  }
  // Ceiling (free-slip).
  for (int ix = 0; ix < nxn; ++ix) {
    const int i = node_index(ix, nyn - 1);
    if (velocity[i].y > 0.0) velocity[i].y = 0.0;
  }
  // Left/right walls (free-slip).
  for (int iy = 0; iy < nyn; ++iy) {
    const int il = node_index(0, iy);
    if (velocity[il].x < 0.0) velocity[il].x = 0.0;
    const int ir = node_index(nxn - 1, iy);
    if (velocity[ir].x > 0.0) velocity[ir].x = 0.0;
  }
}

}  // namespace gns::mpm
