#pragma once

/// \file material.hpp
/// Constitutive models for the MPM substrate.
///
/// The paper's granular experiments hinge on a friction-angle-parameterized
/// material (the inverse problem of §5 recovers φ from runout). We provide:
///  * LinearElastic — isotropic plane-strain elasticity (verification
///    problems, MeshNet-adjacent solids);
///  * DruckerPrager — cohesionless elastoplastic cone fit to Mohr–Coulomb,
///    the standard granular-column-collapse model: larger φ sustains more
///    shear and produces shorter runout.

#include <memory>

#include "mpm/types.hpp"

namespace gns::mpm {

/// Everything a constitutive update may consume. Solids typically use only
/// (stress, dstrain); rate- and density-dependent models (fluids) also
/// need dt and the current density.
struct StressState {
  SymTensor2 stress;      ///< stress at the start of the step
  SymTensor2 dstrain;     ///< small-strain increment (plane strain: dε_zz=0)
  double dt = 0.0;        ///< step size [s] (dstrain/dt = strain rate)
  double density = 0.0;   ///< current particle density mass/volume [kg/m^3]
};

/// Stateless constitutive update: new stress from the step state.
/// Implementations must be thread-safe (const).
class Material {
 public:
  virtual ~Material() = default;

  /// Returns the updated stress for the step described by `state`.
  [[nodiscard]] virtual SymTensor2 update_stress(
      const StressState& state) const = 0;

  /// Convenience overload for solids (dt/density-independent paths and
  /// tests).
  [[nodiscard]] SymTensor2 update_stress(const SymTensor2& stress,
                                         const SymTensor2& dstrain) const {
    return update_stress(StressState{stress, dstrain, 0.0, density()});
  }

  /// Density in the reference configuration [kg/m^3].
  [[nodiscard]] virtual double density() const = 0;

  /// p-wave modulus sqrt((λ+2μ)/ρ) (or the EOS sound speed for fluids) —
  /// the signal speed bounding the stable explicit timestep.
  [[nodiscard]] virtual double wave_speed() const = 0;
};

/// Isotropic linear elasticity (plane strain).
class LinearElastic : public Material {
 public:
  /// \param youngs   Young's modulus E [Pa]
  /// \param poisson  Poisson's ratio ν
  /// \param density  mass density ρ [kg/m^3]
  LinearElastic(double youngs, double poisson, double density);

  using Material::update_stress;
  [[nodiscard]] SymTensor2 update_stress(
      const StressState& state) const override;
  [[nodiscard]] double density() const override { return density_; }
  [[nodiscard]] double wave_speed() const override;

  [[nodiscard]] double lambda() const { return lambda_; }
  [[nodiscard]] double mu() const { return mu_; }

  /// Elastic trial increment shared with derived plastic models.
  [[nodiscard]] SymTensor2 elastic_increment(const SymTensor2& dstrain) const;

 protected:
  double youngs_;
  double poisson_;
  double density_;
  double lambda_;
  double mu_;
};

/// Cohesionless Drucker–Prager plasticity with deviatoric return mapping
/// (non-associative, zero dilatancy) and tension cutoff at the cone apex.
///
/// Yield surface: f(σ) = sqrt(J2) + α·p − k with p = tr(σ)/3 (tension
/// positive); α, k fit to Mohr–Coulomb friction angle φ and cohesion c via
/// the plane-strain (inscribed) cone:
///     α = 3 tanφ / sqrt(9 + 12 tan²φ),   k = 3 c / sqrt(9 + 12 tan²φ).
class DruckerPrager : public LinearElastic {
 public:
  /// \param friction_deg  Mohr–Coulomb friction angle φ in degrees
  /// \param cohesion      cohesion c [Pa] (0 for dry granular media)
  DruckerPrager(double youngs, double poisson, double density,
                double friction_deg, double cohesion = 0.0);

  using Material::update_stress;
  [[nodiscard]] SymTensor2 update_stress(
      const StressState& state) const override;

  [[nodiscard]] double friction_deg() const { return friction_deg_; }
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double k() const { return k_; }

 private:
  double friction_deg_;
  double cohesion_;
  double alpha_;
  double k_;
};

/// Weakly-compressible Newtonian fluid: σ = −p·I + 2μ·dev(ε̇) with the
/// linearized equation of state p = c²·(ρ − ρ₀) (c = artificial sound
/// speed, ≳10× the expected flow speed for <1% density variation). This
/// is the standard WCSPH/MPM water model; it powers the dam-break fluid
/// experiments (the paper's title covers "particle and fluid").
class NewtonianFluid : public Material {
 public:
  /// \param rest_density  ρ₀ [kg/m^3]
  /// \param sound_speed   c [m/s] (sets bulk stiffness K = ρ₀ c²)
  /// \param viscosity     dynamic viscosity μ [Pa·s]
  NewtonianFluid(double rest_density, double sound_speed,
                 double viscosity);

  using Material::update_stress;
  [[nodiscard]] SymTensor2 update_stress(
      const StressState& state) const override;
  [[nodiscard]] double density() const override { return rest_density_; }
  [[nodiscard]] double wave_speed() const override { return sound_speed_; }

  [[nodiscard]] double viscosity() const { return viscosity_; }
  [[nodiscard]] double bulk_modulus() const {
    return rest_density_ * sound_speed_ * sound_speed_;
  }

 private:
  double rest_density_;
  double sound_speed_;
  double viscosity_;
};

}  // namespace gns::mpm
