#include "mpm/solver.hpp"

#include <algorithm>
#include <cmath>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "exec/parallel_for.hpp"
#include "obs/obs.hpp"
#include "util/simd.hpp"

namespace gns::mpm {

namespace {
int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}
int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}
}  // namespace

MpmSolver::MpmSolver(MpmConfig config, std::shared_ptr<const Material> material,
                     Particles particles)
    : config_(config),
      material_(std::move(material)),
      particles_(std::move(particles)),
      grid_(config.cells_x, config.cells_y, config.spacing) {
  GNS_CHECK_MSG(material_ != nullptr, "MpmSolver needs a material");
  GNS_CHECK_MSG(particles_.size() > 0, "MpmSolver needs particles");
  GNS_CHECK(config_.flip_blend >= 0.0 && config_.flip_blend <= 1.0);
  grid_old_velocity_.assign(grid_.num_nodes(), Vec2d{});
  ensure_p2g_buffers();
}

void MpmSolver::ensure_p2g_buffers() {
  // Sized lazily so a later rise in omp_get_max_threads() cannot run a
  // thread off the end of the buffer array. New/resized buffers start
  // with epoch stamps 0 < p2g_epoch_ + 1, i.e. "stale everywhere" — the
  // lazy clear initializes them on first touch. The executor path needs
  // one buffer per fixed P2G lane instead of one per OpenMP thread.
  const int nt = exec::enabled() ? kP2gLanes : max_threads();
  const std::size_t n = static_cast<std::size_t>(grid_.num_nodes());
  const std::size_t nblocks = (n + (std::size_t{1} << kBlockShift) - 1) >>
                              kBlockShift;
  if (static_cast<int>(p2g_buffers_.size()) < nt) p2g_buffers_.resize(nt);
  for (auto& buf : p2g_buffers_) {
    if (buf.mass.size() != n) {
      buf.mass.assign(n, 0.0);
      buf.mom_x.assign(n, 0.0);
      buf.mom_y.assign(n, 0.0);
      buf.force_x.assign(n, 0.0);
      buf.force_y.assign(n, 0.0);
      buf.block_epoch.assign(nblocks, 0);
    }
  }
  if (touched_epoch_.size() != nblocks) touched_epoch_.assign(nblocks, 0);
}

double MpmSolver::dt() const {
  if (config_.fixed_dt > 0.0) return config_.fixed_dt;
  double vmax = 0.0;
  for (const auto& v : particles_.velocity) vmax = std::max(vmax, v.norm());
  const double c = material_->wave_speed() + vmax;
  return config_.cfl * grid_.spacing() / c;
}

double MpmSolver::step() {
  GNS_TRACE_SCOPE("mpm.solver.step");
  static auto& step_ms =
      obs::MetricsRegistry::global().histogram("mpm.solver.step_ms");
  static auto& grid_update_ms =
      obs::MetricsRegistry::global().histogram("mpm.solver.grid_update_ms");
  static auto& step_count =
      obs::MetricsRegistry::global().counter("mpm.solver.steps");
  const obs::ScopedHistogramTimer step_timer(step_ms);
  step_count.add();

  const double dt_step = dt();
  grid_.clear();
  particle_to_grid(dt_step);

  {
    GNS_TRACE_SCOPE("mpm.solver.grid_update");
    const obs::ScopedHistogramTimer phase_timer(grid_update_ms);
    const int n_nodes = grid_.num_nodes();
    exec::parallel_for(n_nodes, true, [&](std::int64_t i) {
      grid_old_velocity_[i] = (grid_.mass[i] > 1e-12)
                                  ? Vec2d{grid_.momentum[i].x / grid_.mass[i],
                                          grid_.momentum[i].y / grid_.mass[i]}
                                  : Vec2d{};
    });

    grid_.update_velocities(dt_step);
    grid_.apply_boundary(dt_step, config_.floor_friction);
  }

  grid_to_particle(dt_step);
  time_ += dt_step;
  ++steps_;
  return dt_step;
}

double MpmSolver::run(int n) {
  double t = 0.0;
  for (int i = 0; i < n; ++i) t += step();
  return t;
}

void MpmSolver::set_kinematics(const std::vector<Vec2d>& positions,
                               const std::vector<Vec2d>& velocities) {
  GNS_CHECK_MSG(static_cast<int>(positions.size()) == particles_.size() &&
                    static_cast<int>(velocities.size()) == particles_.size(),
                "set_kinematics size mismatch");
  const double eps = 1e-6;
  for (int i = 0; i < particles_.size(); ++i) {
    Vec2d x = positions[i];
    x.x = std::clamp(x.x, eps, grid_.width() - eps);
    x.y = std::clamp(x.y, eps, grid_.height() - eps);
    particles_.position[i] = x;
    particles_.velocity[i] = velocities[i];
  }
}

void MpmSolver::particle_to_grid(double dt) {
  GNS_TRACE_SCOPE("mpm.solver.p2g");
  static auto& p2g_ms =
      obs::MetricsRegistry::global().histogram("mpm.solver.p2g_ms");
  const obs::ScopedHistogramTimer phase_timer(p2g_ms);
  (void)dt;
  const int np = particles_.size();
  const int n_nodes = grid_.num_nodes();
  const int nxn = grid_.nodes_x();
  const int nyn = grid_.nodes_y();
  const double h = grid_.spacing();
  const ShapeKind kind = config_.shape;
  const int scount = (kind == ShapeKind::Linear) ? 2 : 3;
  const Vec2d g = config_.gravity;
  const int nchunks = (np + kShapeBatch - 1) / kShapeBatch;

  ensure_p2g_buffers();
  // One epoch per step: a buffer block whose stamp is behind this value
  // holds stale data and counts as zero (it is zeroed on first touch).
  const std::uint64_t epoch = ++p2g_epoch_;
  const std::size_t block_len = std::size_t{1} << kBlockShift;

  // kShapeBatch-particle chunks: positions transposed to SoA, both
  // axes' weights evaluated in one batched (AVX2-dispatched) call,
  // then the usual tensor-product scatter. The accumulation arithmetic
  // is term-for-term the legacy per-particle loop.
  auto process_chunk = [&](int c, P2gBuffer& buf) {
    {
      const int c0 = c * kShapeBatch;
      const int cnt = std::min(kShapeBatch, np - c0);
      alignas(32) double bx[kShapeBatch];
      alignas(32) double by[kShapeBatch];
      for (int j = 0; j < cnt; ++j) {
        bx[j] = particles_.position[c0 + j].x;
        by[j] = particles_.position[c0 + j].y;
      }
      ShapeWeightsBatch wxb, wyb;
      shape_weights_batch(kind, bx, cnt, h, wxb);
      shape_weights_batch(kind, by, cnt, h, wyb);

      for (int j = 0; j < cnt; ++j) {
        const int p = c0 + j;
        const Vec2d v = particles_.velocity[p];
        const double m = particles_.mass[p];
        const double vol = particles_.volume[p];
        const SymTensor2& s = particles_.stress[p];
        for (int a = 0; a < scount; ++a) {
          const int iy = wyb.base[j] + a;
          if (iy < 0 || iy >= nyn) continue;
          const double wya = wyb.w[a][j];
          const double dwya = wyb.dw[a][j];
          for (int b = 0; b < scount; ++b) {
            const int ix = wxb.base[j] + b;
            if (ix < 0 || ix >= nxn) continue;
            const int node = iy * nxn + ix;
            const int blk = node >> kBlockShift;
            if (buf.block_epoch[blk] != epoch) {
              // First touch of this block this step: zero it (cheaper
              // than the legacy whole-grid fill) and record it.
              const std::size_t lo = static_cast<std::size_t>(blk)
                                     << kBlockShift;
              const std::size_t len = std::min(
                  block_len, static_cast<std::size_t>(n_nodes) - lo);
              std::fill_n(buf.mass.begin() + lo, len, 0.0);
              std::fill_n(buf.mom_x.begin() + lo, len, 0.0);
              std::fill_n(buf.mom_y.begin() + lo, len, 0.0);
              std::fill_n(buf.force_x.begin() + lo, len, 0.0);
              std::fill_n(buf.force_y.begin() + lo, len, 0.0);
              buf.block_epoch[blk] = epoch;
              buf.dirty.push_back(blk);
            }
            const double w = wxb.w[b][j] * wya;
            const double dwx = wxb.dw[b][j] * wya;
            const double dwy = wxb.w[b][j] * dwya;
            buf.mass[node] += w * m;
            buf.mom_x[node] += w * m * v.x;
            buf.mom_y[node] += w * m * v.y;
            // Internal force: f -= V σ ∇N. Gravity: f += m g N.
            buf.force_x[node] +=
                -vol * (s.xx * dwx + s.xy * dwy) + w * m * g.x;
            buf.force_y[node] +=
                -vol * (s.xy * dwx + s.yy * dwy) + w * m * g.y;
          }
        }
      }
    }
  };

  if (exec::enabled()) {
    // Executor path: kP2gLanes fixed lanes, each owning a contiguous
    // chunk range (a function of nchunks only) and its own buffer. The
    // ascending-lane reduction below then performs the same FP sequence
    // at any worker count — P2G is bitwise worker-count invariant here.
    const int lanes = std::min(kP2gLanes, nchunks);
    exec::parallel_jobs(lanes, true, [&](int lane) {
      P2gBuffer& buf = p2g_buffers_[lane];
      buf.dirty.clear();
      const int cbegin = nchunks * lane / lanes;
      const int cend = nchunks * (lane + 1) / lanes;
      for (int c = cbegin; c < cend; ++c) process_chunk(c, buf);
    });
    // Lanes beyond `lanes` kept stale dirty lists from earlier steps;
    // clear them so the union below only sees this step's blocks.
    for (int t = lanes; t < static_cast<int>(p2g_buffers_.size()); ++t)
      p2g_buffers_[t].dirty.clear();
  } else {
#pragma omp parallel
    {
      const int tid = thread_id();
      P2gBuffer& buf = p2g_buffers_[tid];
      buf.dirty.clear();
#pragma omp for schedule(static) nowait
      for (int c = 0; c < nchunks; ++c) process_chunk(c, buf);
    }
  }

  // Union of the per-thread dirty lists. Blocks nobody touched keep the
  // grid_.clear() zeros — exactly the legacy all-zero sum.
  const int nt = static_cast<int>(p2g_buffers_.size());
  touched_blocks_.clear();
  for (int t = 0; t < nt; ++t)
    for (const int blk : p2g_buffers_[t].dirty)
      if (touched_epoch_[blk] != epoch) {
        touched_epoch_[blk] = epoch;
        touched_blocks_.push_back(blk);
      }

  // Fixed-order reduction over threads keeps results deterministic for a
  // given OMP_NUM_THREADS; each block has one owning thread, and every
  // grid value accumulates its per-thread contributions in ascending t —
  // the identical FP sequence as the legacy per-node loop (threads that
  // never touched a block contributed exact zeros there, and adding +0.0
  // to a +0.0-seeded running sum can never change its bits).
  const int n_touched = static_cast<int>(touched_blocks_.size());
  exec::parallel_for(n_touched, true, [&](std::int64_t u) {
    const int blk = touched_blocks_[u];
    const std::size_t lo = static_cast<std::size_t>(blk) << kBlockShift;
    const std::size_t len =
        std::min(block_len, static_cast<std::size_t>(n_nodes) - lo);
    for (int t = 0; t < nt; ++t) {
      const P2gBuffer& buf = p2g_buffers_[t];
      if (buf.block_epoch.empty() || buf.block_epoch[blk] != epoch) continue;
      simd::accumulate(grid_.mass.data() + lo, buf.mass.data() + lo, len);
      for (std::size_t i = lo; i < lo + len; ++i) {
        grid_.momentum[i].x += buf.mom_x[i];
        grid_.momentum[i].y += buf.mom_y[i];
        grid_.force[i].x += buf.force_x[i];
        grid_.force[i].y += buf.force_y[i];
      }
    }
  });
}

void MpmSolver::grid_to_particle(double dt) {
  GNS_TRACE_SCOPE("mpm.solver.g2p");
  static auto& g2p_ms =
      obs::MetricsRegistry::global().histogram("mpm.solver.g2p_ms");
  const obs::ScopedHistogramTimer phase_timer(g2p_ms);
  const int np = particles_.size();
  const int nxn = grid_.nodes_x();
  const int nyn = grid_.nodes_y();
  const double h = grid_.spacing();
  const ShapeKind kind = config_.shape;
  const int scount = (kind == ShapeKind::Linear) ? 2 : 3;
  const double blend = config_.flip_blend;
  const double eps = 1e-6;
  const double wlim = grid_.width() - eps;
  const double hlim = grid_.height() - eps;
  const int nchunks = (np + kShapeBatch - 1) / kShapeBatch;

  // Same chunked SoA weight evaluation as P2G. The gather itself is a
  // purely per-particle reduction (no cross-particle accumulation), so
  // the results are bitwise independent of chunking and thread count.
  exec::parallel_for(nchunks, true, [&](std::int64_t cc) {
    const int c = static_cast<int>(cc);
    const int c0 = c * kShapeBatch;
    const int cnt = std::min(kShapeBatch, np - c0);
    alignas(32) double bx[kShapeBatch];
    alignas(32) double by[kShapeBatch];
    for (int j = 0; j < cnt; ++j) {
      bx[j] = particles_.position[c0 + j].x;
      by[j] = particles_.position[c0 + j].y;
    }
    ShapeWeightsBatch wxb, wyb;
    shape_weights_batch(kind, bx, cnt, h, wxb);
    shape_weights_batch(kind, by, cnt, h, wyb);

    for (int j = 0; j < cnt; ++j) {
      const int p = c0 + j;
      const Vec2d x = particles_.position[p];
      Vec2d v_pic, dv;
      Mat2 grad;
      for (int a = 0; a < scount; ++a) {
        const int iy = wyb.base[j] + a;
        if (iy < 0 || iy >= nyn) continue;
        const double wya = wyb.w[a][j];
        const double dwya = wyb.dw[a][j];
        for (int b = 0; b < scount; ++b) {
          const int ix = wxb.base[j] + b;
          if (ix < 0 || ix >= nxn) continue;
          const int node = iy * nxn + ix;
          const double w = wxb.w[b][j] * wya;
          const double dwx = wxb.dw[b][j] * wya;
          const double dwy = wxb.w[b][j] * dwya;
          const Vec2d vn = grid_.velocity[node];
          v_pic += w * vn;
          dv += w * (vn - grid_old_velocity_[node]);
          grad.xx += dwx * vn.x;
          grad.xy += dwy * vn.x;
          grad.yx += dwx * vn.y;
          grad.yy += dwy * vn.y;
        }
      }
      const Vec2d v_flip = particles_.velocity[p] + dv;
      particles_.velocity[p] = blend * v_flip + (1.0 - blend) * v_pic;

      Vec2d xn = x + v_pic * dt;
      xn.x = std::clamp(xn.x, eps, wlim);
      xn.y = std::clamp(xn.y, eps, hlim);
      particles_.position[p] = xn;

      const SymTensor2 de = grad.sym_scaled(dt);
      particles_.volume[p] *= (1.0 + grad.trace() * dt);
      particles_.volume[p] = std::max(particles_.volume[p], 1e-12);
      StressState state{particles_.stress[p], de, dt,
                        particles_.mass[p] / particles_.volume[p]};
      particles_.stress[p] = material_->update_stress(state);
    }
  });
}

}  // namespace gns::mpm
