#include "mpm/solver.hpp"

#include <algorithm>
#include <cmath>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "obs/obs.hpp"

namespace gns::mpm {

namespace {
int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}
int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}
}  // namespace

MpmSolver::MpmSolver(MpmConfig config, std::shared_ptr<const Material> material,
                     Particles particles)
    : config_(config),
      material_(std::move(material)),
      particles_(std::move(particles)),
      grid_(config.cells_x, config.cells_y, config.spacing) {
  GNS_CHECK_MSG(material_ != nullptr, "MpmSolver needs a material");
  GNS_CHECK_MSG(particles_.size() > 0, "MpmSolver needs particles");
  GNS_CHECK(config_.flip_blend >= 0.0 && config_.flip_blend <= 1.0);
  const int nt = max_threads();
  local_mass_.assign(nt, std::vector<double>(grid_.num_nodes(), 0.0));
  local_momentum_.assign(nt, std::vector<Vec2d>(grid_.num_nodes()));
  local_force_.assign(nt, std::vector<Vec2d>(grid_.num_nodes()));
  grid_old_velocity_.assign(grid_.num_nodes(), Vec2d{});
}

double MpmSolver::dt() const {
  if (config_.fixed_dt > 0.0) return config_.fixed_dt;
  double vmax = 0.0;
  for (const auto& v : particles_.velocity) vmax = std::max(vmax, v.norm());
  const double c = material_->wave_speed() + vmax;
  return config_.cfl * grid_.spacing() / c;
}

double MpmSolver::step() {
  GNS_TRACE_SCOPE("mpm.solver.step");
  static auto& step_ms =
      obs::MetricsRegistry::global().histogram("mpm.solver.step_ms");
  static auto& grid_update_ms =
      obs::MetricsRegistry::global().histogram("mpm.solver.grid_update_ms");
  static auto& step_count =
      obs::MetricsRegistry::global().counter("mpm.solver.steps");
  const obs::ScopedHistogramTimer step_timer(step_ms);
  step_count.add();

  const double dt_step = dt();
  grid_.clear();
  particle_to_grid(dt_step);

  {
    GNS_TRACE_SCOPE("mpm.solver.grid_update");
    const obs::ScopedHistogramTimer phase_timer(grid_update_ms);
    const int n_nodes = grid_.num_nodes();
#pragma omp parallel for schedule(static)
    for (int i = 0; i < n_nodes; ++i) {
      grid_old_velocity_[i] = (grid_.mass[i] > 1e-12)
                                  ? Vec2d{grid_.momentum[i].x / grid_.mass[i],
                                          grid_.momentum[i].y / grid_.mass[i]}
                                  : Vec2d{};
    }

    grid_.update_velocities(dt_step);
    grid_.apply_boundary(dt_step, config_.floor_friction);
  }

  grid_to_particle(dt_step);
  time_ += dt_step;
  ++steps_;
  return dt_step;
}

double MpmSolver::run(int n) {
  double t = 0.0;
  for (int i = 0; i < n; ++i) t += step();
  return t;
}

void MpmSolver::set_kinematics(const std::vector<Vec2d>& positions,
                               const std::vector<Vec2d>& velocities) {
  GNS_CHECK_MSG(static_cast<int>(positions.size()) == particles_.size() &&
                    static_cast<int>(velocities.size()) == particles_.size(),
                "set_kinematics size mismatch");
  const double eps = 1e-6;
  for (int i = 0; i < particles_.size(); ++i) {
    Vec2d x = positions[i];
    x.x = std::clamp(x.x, eps, grid_.width() - eps);
    x.y = std::clamp(x.y, eps, grid_.height() - eps);
    particles_.position[i] = x;
    particles_.velocity[i] = velocities[i];
  }
}

void MpmSolver::particle_to_grid(double dt) {
  GNS_TRACE_SCOPE("mpm.solver.p2g");
  static auto& p2g_ms =
      obs::MetricsRegistry::global().histogram("mpm.solver.p2g_ms");
  const obs::ScopedHistogramTimer phase_timer(p2g_ms);
  (void)dt;
  const int np = particles_.size();
  const int n_nodes = grid_.num_nodes();
  const int nxn = grid_.nodes_x();
  const double h = grid_.spacing();
  const ShapeKind kind = config_.shape;
  const Vec2d g = config_.gravity;

#pragma omp parallel
  {
    const int tid = thread_id();
    auto& lm = local_mass_[tid];
    auto& lp = local_momentum_[tid];
    auto& lf = local_force_[tid];
    std::fill(lm.begin(), lm.end(), 0.0);
    std::fill(lp.begin(), lp.end(), Vec2d{});
    std::fill(lf.begin(), lf.end(), Vec2d{});

#pragma omp for schedule(static) nowait
    for (int p = 0; p < np; ++p) {
      const Vec2d x = particles_.position[p];
      const Vec2d v = particles_.velocity[p];
      const double m = particles_.mass[p];
      const double vol = particles_.volume[p];
      const SymTensor2& s = particles_.stress[p];
      const ShapeWeights1D wx = shape_weights(kind, x.x, h);
      const ShapeWeights1D wy = shape_weights(kind, x.y, h);
      for (int a = 0; a < wy.count; ++a) {
        const int iy = wy.base + a;
        if (iy < 0 || iy >= grid_.nodes_y()) continue;
        for (int b = 0; b < wx.count; ++b) {
          const int ix = wx.base + b;
          if (ix < 0 || ix >= nxn) continue;
          const int node = iy * nxn + ix;
          const double w = wx.w[b] * wy.w[a];
          const double dwx = wx.dw[b] * wy.w[a];
          const double dwy = wx.w[b] * wy.dw[a];
          lm[node] += w * m;
          lp[node].x += w * m * v.x;
          lp[node].y += w * m * v.y;
          // Internal force: f -= V σ ∇N. Gravity: f += m g N.
          lf[node].x += -vol * (s.xx * dwx + s.xy * dwy) + w * m * g.x;
          lf[node].y += -vol * (s.xy * dwx + s.yy * dwy) + w * m * g.y;
        }
      }
    }
  }

  // Fixed-order reduction over threads keeps results deterministic for a
  // given OMP_NUM_THREADS.
  const int nt = static_cast<int>(local_mass_.size());
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n_nodes; ++i) {
    double m = 0.0;
    Vec2d mom, f;
    for (int t = 0; t < nt; ++t) {
      m += local_mass_[t][i];
      mom += local_momentum_[t][i];
      f += local_force_[t][i];
    }
    grid_.mass[i] = m;
    grid_.momentum[i] = mom;
    grid_.force[i] = f;
  }
}

void MpmSolver::grid_to_particle(double dt) {
  GNS_TRACE_SCOPE("mpm.solver.g2p");
  static auto& g2p_ms =
      obs::MetricsRegistry::global().histogram("mpm.solver.g2p_ms");
  const obs::ScopedHistogramTimer phase_timer(g2p_ms);
  const int np = particles_.size();
  const int nxn = grid_.nodes_x();
  const double h = grid_.spacing();
  const ShapeKind kind = config_.shape;
  const double blend = config_.flip_blend;
  const double eps = 1e-6;
  const double wlim = grid_.width() - eps;
  const double hlim = grid_.height() - eps;

#pragma omp parallel for schedule(static)
  for (int p = 0; p < np; ++p) {
    const Vec2d x = particles_.position[p];
    const ShapeWeights1D wx = shape_weights(kind, x.x, h);
    const ShapeWeights1D wy = shape_weights(kind, x.y, h);
    Vec2d v_pic, dv;
    Mat2 grad;
    for (int a = 0; a < wy.count; ++a) {
      const int iy = wy.base + a;
      if (iy < 0 || iy >= grid_.nodes_y()) continue;
      for (int b = 0; b < wx.count; ++b) {
        const int ix = wx.base + b;
        if (ix < 0 || ix >= nxn) continue;
        const int node = iy * nxn + ix;
        const double w = wx.w[b] * wy.w[a];
        const double dwx = wx.dw[b] * wy.w[a];
        const double dwy = wx.w[b] * wy.dw[a];
        const Vec2d vn = grid_.velocity[node];
        v_pic += w * vn;
        dv += w * (vn - grid_old_velocity_[node]);
        grad.xx += dwx * vn.x;
        grad.xy += dwy * vn.x;
        grad.yx += dwx * vn.y;
        grad.yy += dwy * vn.y;
      }
    }
    const Vec2d v_flip = particles_.velocity[p] + dv;
    particles_.velocity[p] = blend * v_flip + (1.0 - blend) * v_pic;

    Vec2d xn = x + v_pic * dt;
    xn.x = std::clamp(xn.x, eps, wlim);
    xn.y = std::clamp(xn.y, eps, hlim);
    particles_.position[p] = xn;

    const SymTensor2 de = grad.sym_scaled(dt);
    particles_.volume[p] *= (1.0 + grad.trace() * dt);
    particles_.volume[p] = std::max(particles_.volume[p], 1e-12);
    StressState state{particles_.stress[p], de, dt,
                      particles_.mass[p] / particles_.volume[p]};
    particles_.stress[p] = material_->update_stress(state);
  }
}

}  // namespace gns::mpm
