#include "ad/nn.hpp"

#include <cmath>

namespace gns::ad {

std::vector<Real> Module::state() const {
  std::vector<Real> out;
  for (const auto& p : parameters()) {
    const auto& v = p.vec();
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

void Module::load_state(const std::vector<Real>& values) const {
  std::size_t offset = 0;
  for (auto p : parameters()) {
    GNS_CHECK_MSG(offset + p.vec().size() <= values.size(),
                  "load_state: state vector too short");
    std::copy(values.begin() + offset,
              values.begin() + offset + p.vec().size(), p.vec().begin());
    offset += p.vec().size();
  }
  GNS_CHECK_MSG(offset == values.size(),
                "load_state: state vector too long (" << values.size()
                                                      << " vs " << offset
                                                      << " expected)");
}

Linear::Linear(int in_features, int out_features, Rng& rng, bool bias)
    : in_(in_features), out_(out_features) {
  GNS_CHECK(in_features > 0 && out_features > 0);
  const Real limit =
      std::sqrt(Real(6) / static_cast<Real>(in_features + out_features));
  std::vector<Real> w(static_cast<std::size_t>(in_features) * out_features);
  for (auto& v : w) v = static_cast<Real>(rng.uniform(-limit, limit));
  weight_ = Tensor::from_vector(in_features, out_features, std::move(w),
                                /*requires_grad=*/true);
  if (bias) {
    bias_ = Tensor::zeros(1, out_features, /*requires_grad=*/true);
  }
}

Tensor Linear::forward(const Tensor& x) const {
  GNS_CHECK_MSG(x.cols() == in_, "Linear expects " << in_ << " features, got "
                                                   << x.cols());
  Tensor y = matmul(x, weight_);
  if (bias_.defined()) y = add(y, bias_);
  return y;
}

std::vector<Tensor> Linear::parameters() const {
  std::vector<Tensor> out{weight_};
  if (bias_.defined()) out.push_back(bias_);
  return out;
}

LayerNorm::LayerNorm(int features, Real eps)
    : gamma_(Tensor::ones(1, features, /*requires_grad=*/true)),
      beta_(Tensor::zeros(1, features, /*requires_grad=*/true)),
      eps_(eps) {}

Tensor LayerNorm::forward(const Tensor& x) const {
  return layer_norm(x, gamma_, beta_, eps_);
}

std::vector<Tensor> LayerNorm::parameters() const { return {gamma_, beta_}; }

Mlp::Mlp(int in_features, int hidden_size, int hidden_layers,
         int out_features, Rng& rng, bool output_layer_norm,
         Activation activation)
    : in_(in_features), out_(out_features), activation_(activation) {
  GNS_CHECK(hidden_layers >= 0);
  int prev = in_features;
  for (int i = 0; i < hidden_layers; ++i) {
    layers_.emplace_back(prev, hidden_size, rng);
    prev = hidden_size;
  }
  layers_.emplace_back(prev, out_features, rng);
  if (output_layer_norm) norm_ = std::make_unique<LayerNorm>(out_features);
}

Tensor Mlp::forward(const Tensor& x) const {
  Tensor h = x;
  if (fused_linear_enabled()) {
    // Fused path: one kernel per layer instead of matmul/add/act tensors.
    // Bitwise identical to the unfused chain below (see ops.hpp).
    const FusedAct hidden_act =
        (activation_ == Activation::ReLU) ? FusedAct::ReLU : FusedAct::Tanh;
    for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
      h = linear_act(h, layers_[i].weight(), layers_[i].bias(), hidden_act);
    }
    h = linear_act(h, layers_.back().weight(), layers_.back().bias(),
                   FusedAct::Identity);
  } else {
    for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
      h = layers_[i].forward(h);
      h = (activation_ == Activation::ReLU) ? relu(h) : tanh_op(h);
    }
    h = layers_.back().forward(h);
  }
  if (norm_) h = norm_->forward(h);
  return h;
}

std::vector<Tensor> Mlp::parameters() const {
  std::vector<Tensor> out;
  for (const auto& layer : layers_) {
    auto p = layer.parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  if (norm_) {
    auto p = norm_->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

}  // namespace gns::ad
