#pragma once

/// \file optim.hpp
/// First-order optimizers. Adam drives GNS/MeshNet training (as in the
/// paper, lr = 1e-4 class schedules); plain gradient descent drives the
/// single-parameter inverse problem of §5, matching the paper's choice of
/// "a simple gradient descent algorithm".

#include <vector>

#include "ad/tensor.hpp"

namespace gns::ad {

/// Base optimizer over an explicit parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void step() = 0;

  /// Clears accumulated gradients of all parameters.
  void zero_grad() {
    for (auto& p : params_) p.zero_grad();
  }

  /// Rescales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  Real clip_grad_norm(Real max_norm);

 protected:
  std::vector<Tensor> params_;
};

/// Stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, Real lr, Real momentum = Real(0));
  void step() override;

  void set_lr(Real lr) { lr_ = lr; }
  [[nodiscard]] Real lr() const { return lr_; }

 private:
  Real lr_;
  Real momentum_;
  std::vector<std::vector<Real>> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, Real lr, Real beta1 = Real(0.9),
       Real beta2 = Real(0.999), Real eps = Real(1e-8));
  void step() override;

  void set_lr(Real lr) { lr_ = lr; }
  [[nodiscard]] Real lr() const { return lr_; }
  [[nodiscard]] std::int64_t steps_taken() const { return t_; }

 private:
  Real lr_, beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
  std::vector<std::vector<Real>> m_;
  std::vector<std::vector<Real>> v_;
};

/// Exponential learning-rate decay used by the GNS trainer:
/// lr(step) = final + (initial − final) · decay^(step/decay_steps).
struct LrSchedule {
  Real initial = Real(1e-4);
  Real final = Real(1e-6);
  Real decay = Real(0.1);
  Real decay_steps = Real(5e6);

  [[nodiscard]] Real at(std::int64_t step) const;
};

}  // namespace gns::ad
