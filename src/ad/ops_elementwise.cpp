#include <cmath>

#include "ad/ops.hpp"

namespace gns::ad {

namespace {

/// Resolved broadcast geometry for a binary op.
struct Broadcast {
  int rows, cols;      // output shape
  int a_rs, a_cs;      // operand A strides (0 => broadcast along that dim)
  int b_rs, b_cs;
};

Broadcast resolve(const Tensor& a, const Tensor& b) {
  const int ar = a.rows(), ac = a.cols(), br = b.rows(), bc = b.cols();
  GNS_CHECK_MSG(ar == br || ar == 1 || br == 1,
                "broadcast rows mismatch: " << ar << " vs " << br);
  GNS_CHECK_MSG(ac == bc || ac == 1 || bc == 1,
                "broadcast cols mismatch: " << ac << " vs " << bc);
  Broadcast g;
  g.rows = std::max(ar, br);
  g.cols = std::max(ac, bc);
  g.a_rs = (ar == 1) ? 0 : ac;
  g.a_cs = (ac == 1) ? 0 : 1;
  g.b_rs = (br == 1) ? 0 : bc;
  g.b_cs = (bc == 1) ? 0 : 1;
  return g;
}

template <typename Fwd, typename BwdA, typename BwdB>
Tensor binary_op(const Tensor& a, const Tensor& b, Fwd fwd, BwdA dfda,
                 BwdB dfdb) {
  const Broadcast g = resolve(a, b);
  auto pa = a.ptr();
  auto pb = b.ptr();
  Tensor out = make_op_result(
      g.rows, g.cols, {pa, pb},
      [pa, pb, g, dfda, dfdb](TensorImpl& self) {
        const Real* av = pa->data.data();
        const Real* bv = pb->data.data();
        const Real* go = self.grad.data();
        if (pa->requires_grad) {
          pa->ensure_grad();
          for (int r = 0; r < g.rows; ++r)
            for (int c = 0; c < g.cols; ++c) {
              const Real x = av[r * g.a_rs + c * g.a_cs];
              const Real y = bv[r * g.b_rs + c * g.b_cs];
              pa->grad[r * g.a_rs + c * g.a_cs] +=
                  go[static_cast<std::size_t>(r) * g.cols + c] * dfda(x, y);
            }
        }
        if (pb->requires_grad) {
          pb->ensure_grad();
          for (int r = 0; r < g.rows; ++r)
            for (int c = 0; c < g.cols; ++c) {
              const Real x = av[r * g.a_rs + c * g.a_cs];
              const Real y = bv[r * g.b_rs + c * g.b_cs];
              pb->grad[r * g.b_rs + c * g.b_cs] +=
                  go[static_cast<std::size_t>(r) * g.cols + c] * dfdb(x, y);
            }
        }
      });
  const Real* av = a.data();
  const Real* bv = b.data();
  Real* ov = out.data();
  for (int r = 0; r < g.rows; ++r)
    for (int c = 0; c < g.cols; ++c)
      ov[static_cast<std::size_t>(r) * g.cols + c] =
          fwd(av[r * g.a_rs + c * g.a_cs], bv[r * g.b_rs + c * g.b_cs]);
  return out;
}

template <typename Fwd, typename Bwd>
Tensor unary_op(const Tensor& a, Fwd fwd, Bwd dfdx) {
  auto pa = a.ptr();
  Tensor out = make_op_result(
      a.rows(), a.cols(), {pa},
      [pa, dfdx](TensorImpl& self) {
        if (!pa->requires_grad) return;
        pa->ensure_grad();
        const Real* av = pa->data.data();
        const Real* ov = self.data.data();
        const Real* go = self.grad.data();
        const std::int64_t n = self.size();
        for (std::int64_t i = 0; i < n; ++i)
          pa->grad[i] += go[i] * dfdx(av[i], ov[i]);
      });
  const Real* av = a.data();
  Real* ov = out.data();
  const std::int64_t n = a.size();
  for (std::int64_t i = 0; i < n; ++i) ov[i] = fwd(av[i]);
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(
      a, b, [](Real x, Real y) { return x + y; },
      [](Real, Real) { return Real(1); }, [](Real, Real) { return Real(1); });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(
      a, b, [](Real x, Real y) { return x - y; },
      [](Real, Real) { return Real(1); }, [](Real, Real) { return Real(-1); });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(
      a, b, [](Real x, Real y) { return x * y; },
      [](Real, Real y) { return y; }, [](Real x, Real) { return x; });
}

Tensor div(const Tensor& a, const Tensor& b) {
  return binary_op(
      a, b, [](Real x, Real y) { return x / y; },
      [](Real, Real y) { return Real(1) / y; },
      [](Real x, Real y) { return -x / (y * y); });
}

Tensor add_scalar(const Tensor& a, Real s) {
  return unary_op(
      a, [s](Real x) { return x + s; }, [](Real, Real) { return Real(1); });
}

Tensor mul_scalar(const Tensor& a, Real s) {
  return unary_op(
      a, [s](Real x) { return x * s; }, [s](Real, Real) { return s; });
}

Tensor relu(const Tensor& a) {
  return unary_op(
      a, [](Real x) { return x > 0 ? x : Real(0); },
      [](Real x, Real) { return x > 0 ? Real(1) : Real(0); });
}

Tensor tanh_op(const Tensor& a) {
  return unary_op(
      a, [](Real x) { return std::tanh(x); },
      [](Real, Real y) { return Real(1) - y * y; });
}

Tensor sigmoid(const Tensor& a) {
  return unary_op(
      a, [](Real x) { return Real(1) / (Real(1) + std::exp(-x)); },
      [](Real, Real y) { return y * (Real(1) - y); });
}

Tensor exp_op(const Tensor& a) {
  return unary_op(
      a, [](Real x) { return std::exp(x); },
      [](Real, Real y) { return y; });
}

Tensor log_op(const Tensor& a, Real floor) {
  return unary_op(
      a, [floor](Real x) { return std::log(x < floor ? floor : x); },
      [floor](Real x, Real) {
        return x < floor ? Real(0) : Real(1) / x;
      });
}

Tensor sqrt_op(const Tensor& a) {
  return unary_op(
      a, [](Real x) { return std::sqrt(x); },
      [](Real, Real y) { return y > 0 ? Real(0.5) / y : Real(0); });
}

Tensor abs_op(const Tensor& a) {
  return unary_op(
      a, [](Real x) { return std::abs(x); },
      [](Real x, Real) {
        return x > 0 ? Real(1) : (x < 0 ? Real(-1) : Real(0));
      });
}

Tensor square(const Tensor& a) {
  return unary_op(
      a, [](Real x) { return x * x; },
      [](Real x, Real) { return 2 * x; });
}

Tensor pow_scalar(const Tensor& a, Real exponent) {
  return unary_op(
      a, [exponent](Real x) { return std::pow(x, exponent); },
      [exponent](Real x, Real) {
        return exponent * std::pow(x, exponent - Real(1));
      });
}

Tensor clamp(const Tensor& a, Real lo, Real hi) {
  GNS_CHECK(lo <= hi);
  return unary_op(
      a, [lo, hi](Real x) { return x < lo ? lo : (x > hi ? hi : x); },
      [lo, hi](Real x, Real) {
        return (x > lo && x < hi) ? Real(1) : Real(0);
      });
}

Tensor softplus(const Tensor& a) {
  return unary_op(
      a,
      [](Real x) {
        // Stable: log(1+e^x) = max(x,0) + log1p(e^{-|x|}).
        return std::max(x, Real(0)) + std::log1p(std::exp(-std::abs(x)));
      },
      [](Real x, Real) { return Real(1) / (Real(1) + std::exp(-x)); });
}

Tensor leaky_relu(const Tensor& a, Real slope) {
  return unary_op(
      a, [slope](Real x) { return x > 0 ? x : slope * x; },
      [slope](Real x, Real) { return x > 0 ? Real(1) : slope; });
}

}  // namespace gns::ad
