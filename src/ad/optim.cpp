#include "ad/optim.hpp"

#include <cmath>

namespace gns::ad {

Real Optimizer::clip_grad_norm(Real max_norm) {
  Real sq = Real(0);
  for (auto& p : params_) {
    for (Real g : p.grad()) sq += g * g;
  }
  const Real norm = std::sqrt(sq);
  if (norm > max_norm && norm > Real(0)) {
    const Real scale = max_norm / norm;
    for (auto& p : params_) {
      for (Real& g : p.grad_mut()) g *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Tensor> params, Real lr, Real momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ != Real(0)) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_)
      velocity_.emplace_back(p.vec().size(), Real(0));
  }
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    auto& p = params_[k];
    const auto& g = p.grad();
    if (g.empty()) continue;
    auto& x = p.vec();
    if (momentum_ != Real(0)) {
      auto& v = velocity_[k];
      for (std::size_t i = 0; i < x.size(); ++i) {
        v[i] = momentum_ * v[i] + g[i];
        x[i] -= lr_ * v[i];
      }
    } else {
      for (std::size_t i = 0; i < x.size(); ++i) x[i] -= lr_ * g[i];
    }
  }
}

Adam::Adam(std::vector<Tensor> params, Real lr, Real beta1, Real beta2,
           Real eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.vec().size(), Real(0));
    v_.emplace_back(p.vec().size(), Real(0));
  }
}

void Adam::step() {
  ++t_;
  const Real bc1 = Real(1) - std::pow(beta1_, static_cast<Real>(t_));
  const Real bc2 = Real(1) - std::pow(beta2_, static_cast<Real>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    auto& p = params_[k];
    const auto& g = p.grad();
    if (g.empty()) continue;
    auto& x = p.vec();
    auto& m = m_[k];
    auto& v = v_[k];
    for (std::size_t i = 0; i < x.size(); ++i) {
      m[i] = beta1_ * m[i] + (Real(1) - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (Real(1) - beta2_) * g[i] * g[i];
      const Real mhat = m[i] / bc1;
      const Real vhat = v[i] / bc2;
      x[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

Real LrSchedule::at(std::int64_t step) const {
  return final +
         (initial - final) *
             std::pow(decay, static_cast<Real>(step) / decay_steps);
}

}  // namespace gns::ad
