#pragma once

/// \file index_map.hpp
/// A validated, CSR-transposed row-index map for gather/scatter ops.
///
/// `gather_rows(v, senders)` and `scatter_add_rows(msg, receivers, n)` are
/// called every message round with the *same* index vector, and each call
/// used to (a) rescan the whole vector for bounds and (b) run its
/// cross-row reduction serially, because repeated indices make naive
/// parallel accumulation racy. IndexMap fixes both once at construction:
///
///  * **validation** happens exactly once — every entry is checked against
///    [0, num_buckets) and a CheckError is thrown on the first violation;
///    ops only re-verify under GNS_DCHECK in debug builds;
///  * the **CSR transpose** groups the positions of each bucket value:
///    `positions()[offsets()[b] .. offsets()[b+1])` lists, in ascending
///    order, every i with index()[i] == b. A reduction "for each bucket b:
///    for each position i of b (ascending): acc += row(i)" performs the
///    *identical* per-destination FP add sequence as the legacy serial
///    loop "for i ascending: out[index[i]] += row(i)" — so the
///    per-destination parallelization is bitwise equal to the serial
///    reference and, because each destination is owned by one thread,
///    bitwise invariant in the thread count.
///
/// Copies are cheap (shared immutable state); ops capture the map by value
/// in their backward closures.

#include <memory>
#include <vector>

namespace gns::ad {

class IndexMap {
 public:
  /// Empty/undefined map; using it in an op is a programming error.
  IndexMap() = default;

  /// Validates `index` against [0, num_buckets) (throws util::CheckError
  /// on the first out-of-range entry) and builds the CSR transpose.
  IndexMap(std::vector<int> index, int num_buckets);

  [[nodiscard]] bool defined() const { return data_ != nullptr; }
  /// Number of entries (gather output rows / scatter input rows).
  [[nodiscard]] int size() const;
  /// Exclusive upper bound on index values (gather input rows / scatter
  /// output rows; graph num_nodes).
  [[nodiscard]] int num_buckets() const;
  /// The original index vector, in input order.
  [[nodiscard]] const std::vector<int>& index() const;
  /// CSR bucket offsets, length num_buckets()+1.
  [[nodiscard]] const int* offsets() const;
  /// Positions grouped by bucket, ascending within each bucket; length
  /// size().
  [[nodiscard]] const int* positions() const;

  /// Debug re-verification (bounds + CSR/index agreement). Compiled to a
  /// no-op in NDEBUG builds; ops call it so a corrupted map fails loudly
  /// under the sanitizer jobs.
  void dcheck_valid() const;

 private:
  struct Data {
    std::vector<int> index;
    std::vector<int> offsets;
    std::vector<int> positions;
    int buckets = 0;
  };
  std::shared_ptr<const Data> data_;
};

}  // namespace gns::ad
