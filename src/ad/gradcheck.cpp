#include "ad/gradcheck.hpp"

#include <algorithm>
#include <cmath>

namespace gns::ad {

GradCheckResult grad_check(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, Real eps, Real tolerance) {
  for (auto& t : inputs) t.set_requires_grad(true);

  // Analytic gradients.
  Tensor loss = fn(inputs);
  GNS_CHECK_MSG(loss.size() == 1, "grad_check objective must be scalar");
  for (auto& t : inputs) t.zero_grad();
  loss.backward();

  std::vector<std::vector<Real>> analytic;
  analytic.reserve(inputs.size());
  for (auto& t : inputs) {
    if (t.grad().empty()) {
      analytic.emplace_back(t.vec().size(), Real(0));
    } else {
      analytic.push_back(t.grad());
    }
  }

  GradCheckResult result;
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    auto& x = inputs[k].vec();
    for (std::size_t i = 0; i < x.size(); ++i) {
      const Real saved = x[i];
      x[i] = saved + eps;
      const Real up = fn(inputs).item();
      x[i] = saved - eps;
      const Real down = fn(inputs).item();
      x[i] = saved;
      const Real numeric = (up - down) / (2 * eps);
      const Real a = analytic[k][i];
      const Real abs_err = std::abs(a - numeric);
      const Real denom =
          std::max({std::abs(a), std::abs(numeric), Real(1e-6)});
      const Real rel_err = abs_err / denom;
      if (abs_err > result.max_abs_error) result.max_abs_error = abs_err;
      if (rel_err > result.max_rel_error) {
        result.max_rel_error = rel_err;
      }
      if (std::min(abs_err, rel_err) > tolerance) {
        result.ok = false;
        result.worst_tensor = static_cast<int>(k);
        result.worst_input = static_cast<int>(i);
      }
    }
  }
  return result;
}

}  // namespace gns::ad
