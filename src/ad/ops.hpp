#pragma once

/// \file ops.hpp
/// Differentiable operations on ad::Tensor.
///
/// Broadcasting follows NumPy on the two dimensions: an operand dimension of
/// size 1 stretches to match the other operand. All ops are pure (no
/// aliasing of inputs) and record exact reverse-mode closures.
///
/// The graph ops at the bottom (gather_rows / scatter_add_rows /
/// segment_softmax) are what make message passing differentiable: gather
/// reads per-edge endpoint features, scatter-add aggregates messages onto
/// receiver nodes, segment_softmax normalizes attention scores over each
/// node's incoming edges.

#include <vector>

#include "ad/index_map.hpp"
#include "ad/tensor.hpp"

namespace gns::ad {

// ---- Elementwise binary (broadcasting) ------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

inline Tensor operator+(const Tensor& a, const Tensor& b) { return add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return div(a, b); }

// ---- Scalar variants -------------------------------------------------------

Tensor add_scalar(const Tensor& a, Real s);
Tensor mul_scalar(const Tensor& a, Real s);
inline Tensor operator+(const Tensor& a, Real s) { return add_scalar(a, s); }
inline Tensor operator-(const Tensor& a, Real s) { return add_scalar(a, -s); }
inline Tensor operator*(const Tensor& a, Real s) { return mul_scalar(a, s); }
inline Tensor operator/(const Tensor& a, Real s) {
  return mul_scalar(a, Real(1) / s);
}
inline Tensor operator*(Real s, const Tensor& a) { return mul_scalar(a, s); }
inline Tensor operator-(const Tensor& a) { return mul_scalar(a, Real(-1)); }

// ---- Elementwise unary ------------------------------------------------------

Tensor relu(const Tensor& a);
Tensor tanh_op(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor exp_op(const Tensor& a);
/// Natural log; clamps inputs below `floor` to keep the tape finite.
Tensor log_op(const Tensor& a, Real floor = Real(1e-12));
Tensor sqrt_op(const Tensor& a);
Tensor abs_op(const Tensor& a);
Tensor square(const Tensor& a);
/// Elementwise power with a constant (non-differentiated) exponent.
Tensor pow_scalar(const Tensor& a, Real exponent);
/// Clamp; gradient is passed through only inside (lo, hi).
Tensor clamp(const Tensor& a, Real lo, Real hi);
/// log(1 + e^x), numerically stable for large |x|.
Tensor softplus(const Tensor& a);
/// x for x>0, slope·x otherwise.
Tensor leaky_relu(const Tensor& a, Real slope = Real(0.01));

// ---- Matrix product ---------------------------------------------------------

/// [N,K] x [K,M] -> [N,M]; OpenMP-parallel over output rows.
Tensor matmul(const Tensor& a, const Tensor& b);
Tensor transpose(const Tensor& a);

// ---- Fused linear layer -----------------------------------------------------

/// Activation applied by the fused linear kernel.
enum class FusedAct { Identity, ReLU, Tanh };

/// Fused act(x·W + b): one pass over each output tile instead of three
/// tensors (matmul, +bias, activation). `b` is [1,M] or undefined (no
/// bias). Forward values and backward gradients are bitwise identical to
/// the unfused op chain — the kernels replicate matmul's accumulation
/// order exactly — so the fused path can be toggled freely without
/// perturbing rollouts or training (tests/test_nn.cpp asserts equality).
Tensor linear_act(const Tensor& x, const Tensor& w, const Tensor& b,
                  FusedAct act);

/// Global switch for Mlp's fused forward path. Defaults to the GNS_FUSED
/// environment variable (unset/"0" = off, i.e. the reference unfused
/// op-chain path used by gradcheck cross-validation).
[[nodiscard]] bool fused_linear_enabled();
void set_fused_linear_enabled(bool enabled);

// ---- Reductions -------------------------------------------------------------

/// Sum of all elements -> [1,1].
Tensor sum(const Tensor& a);
/// Mean of all elements -> [1,1].
Tensor mean(const Tensor& a);
/// Column sums -> [1,C].
Tensor sum_rows(const Tensor& a);
/// Row sums -> [N,1].
Tensor sum_cols(const Tensor& a);
/// Mean squared error between same-shape tensors -> [1,1].
Tensor mse_loss(const Tensor& pred, const Tensor& target);
/// Mean of |a| -> [1,1] (the L1 sparsity penalty on GNS messages, §6).
Tensor l1_norm(const Tensor& a);
/// Maximum element -> [1,1]; gradient routes to the (first) argmax.
Tensor max_reduce(const Tensor& a);
/// Minimum element -> [1,1]; gradient routes to the (first) argmin.
Tensor min_reduce(const Tensor& a);
/// Huber (smooth-L1) loss with threshold delta -> [1,1]. Robust variant
/// of MSE for heavy-tailed targets.
Tensor huber_loss(const Tensor& pred, const Tensor& target,
                  Real delta = Real(1));

// ---- Shape / graph ops -------------------------------------------------------

/// Horizontal concatenation of tensors with equal row counts.
Tensor concat_cols(const std::vector<Tensor>& parts);
/// Vertical concatenation of tensors with equal column counts.
Tensor concat_rows(const std::vector<Tensor>& parts);
/// Columns [start, start+len) of `a`.
Tensor slice_cols(const Tensor& a, int start, int len);
/// Rows [start, start+len) of `a` (the per-member read-back of a
/// block-diagonal batched forward — see graph/batch.hpp).
Tensor slice_rows(const Tensor& a, int start, int len);
/// Rows `index[i]` of `a` -> [index.size(), C]. Indices may repeat.
/// The IndexMap overloads skip per-call index validation (the map is
/// validated once at construction) and give the backward/forward
/// reductions their CSR transpose; build one per graph and reuse it
/// across message rounds (core::GraphIndex does this).
Tensor gather_rows(const Tensor& a, const IndexMap& index);
Tensor gather_rows(const Tensor& a, const std::vector<int>& index);
/// out[index[i], :] += a[i, :]; result has `num_rows` rows (the map's
/// num_buckets for the IndexMap overload).
Tensor scatter_add_rows(const Tensor& a, const IndexMap& index);
Tensor scatter_add_rows(const Tensor& a, const std::vector<int>& index,
                        int num_rows);
/// Softmax of scores [E,1] within segments given by `segment` (values in
/// [0, num_segments)); used for per-receiver attention normalization.
Tensor segment_softmax(const Tensor& scores, const IndexMap& segment);
Tensor segment_softmax(const Tensor& scores, const std::vector<int>& segment,
                       int num_segments);
/// Fused relative-geometry edge features over `positions` [N,d]:
/// out[e, 0..d) = (x[receivers[e]] - x[senders[e]]) * inv_radius and
/// out[e, d] = sqrt(|out[e, 0..d)|² + eps) — bitwise equal to the
/// gather/sub/mul_scalar/square/sum_cols/add_scalar/sqrt/concat_cols
/// chain it replaces, in one row-local pass. Backward scatters per node
/// through the CSR maps (fixed order, thread-invariant).
Tensor radius_edge_features(const Tensor& positions, const IndexMap& senders,
                            const IndexMap& receivers, Real inv_radius,
                            Real eps = Real(1e-12));
/// Per-row layer normalization with learnable gain/bias [1,C].
Tensor layer_norm(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                  Real eps = Real(1e-5));

}  // namespace gns::ad
