#include "ad/arena.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"

namespace gns::ad {

namespace {

// Size classes are powers of two of the element count: class c holds
// vectors with capacity in [2^c, 2^(c+1)). An acquire for n elements pops
// from the ceil class, whose every entry has capacity >= n.
constexpr int kNumClasses = 40;
constexpr std::size_t kMaxEntriesPerClass = 16;
constexpr std::size_t kMaxPoolBytes = std::size_t(512) << 20;  // per thread

// Trivially-destructible liveness flag: set while the thread's pool object
// exists. TensorImpls destroyed during thread teardown (after the pool's
// thread_local destructor ran) must not touch the pool; the bool itself is
// never destroyed, so checking it is always safe.
thread_local bool t_pool_alive = false;

struct ThreadPool {
  std::array<std::vector<std::vector<double>>, kNumClasses> classes;
  int depth = 0;  ///< ArenaScope nesting on this thread
  ArenaStats stats;
  // Deltas since the last metrics flush (frame end).
  std::uint64_t flushed_hits = 0;
  std::uint64_t flushed_misses = 0;

  ThreadPool() { t_pool_alive = true; }
  ~ThreadPool() { t_pool_alive = false; }
};

/// The calling thread's pool; constructed on first use (the first
/// ArenaScope on the thread).
ThreadPool& pool() {
  thread_local ThreadPool t_pool;
  return t_pool;
}

// -1 = unset (read GNS_ARENA on first query), else 0/1.
std::atomic<int> g_arena_state{-1};

int floor_class(std::size_t n) {
  int c = 0;
  while ((std::size_t(1) << (c + 1)) <= n && c + 1 < kNumClasses) ++c;
  return c;
}

int ceil_class(std::size_t n) {
  const int c = floor_class(n);
  return ((std::size_t(1) << c) == n) ? c : c + 1;
}

bool active(const ThreadPool& p) { return p.depth > 0 && arena_enabled(); }

/// Pops a pooled vector with capacity >= n, or returns false.
bool pop(ThreadPool& p, std::size_t n, std::vector<double>& out) {
  const int c = ceil_class(n);
  if (c >= kNumClasses) return false;
  auto& entries = p.classes[c];
  if (entries.empty()) return false;
  out = std::move(entries.back());
  entries.pop_back();
  p.stats.bytes_pooled -= out.capacity() * sizeof(double);
  return true;
}

void flush_metrics(ThreadPool& p) {
  static auto& hit =
      obs::MetricsRegistry::global().counter("ad.arena.hit");
  static auto& miss =
      obs::MetricsRegistry::global().counter("ad.arena.miss");
  static auto& bytes_live =
      obs::MetricsRegistry::global().gauge("ad.arena.bytes_live");
  hit.add(p.stats.hits - p.flushed_hits);
  miss.add(p.stats.misses - p.flushed_misses);
  p.flushed_hits = p.stats.hits;
  p.flushed_misses = p.stats.misses;
  bytes_live.set(static_cast<double>(p.stats.bytes_pooled));
}

}  // namespace

bool arena_enabled() {
  int s = g_arena_state.load(std::memory_order_relaxed);
  if (s < 0) {
    const char* env = std::getenv("GNS_ARENA");
    s = (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0)
            ? 1
            : 0;
    g_arena_state.store(s, std::memory_order_relaxed);
  }
  return s != 0;
}

void set_arena_enabled(bool enabled) {
  g_arena_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

ArenaScope::ArenaScope() { ++pool().depth; }

ArenaScope::~ArenaScope() {
  ThreadPool& p = pool();
  if (--p.depth == 0 && arena_enabled()) flush_metrics(p);
}

ArenaStats arena_thread_stats() { return pool().stats; }

void arena_clear() {
  ThreadPool& p = pool();
  for (auto& entries : p.classes) {
    entries.clear();
    entries.shrink_to_fit();
  }
  p.stats.bytes_pooled = 0;
}

namespace arena {

void acquire(std::vector<double>& out, std::size_t n) {
  acquire_fill(out, n, 0.0);
}

void acquire_fill(std::vector<double>& out, std::size_t n, double value) {
  if (t_pool_alive) {
    ThreadPool& p = pool();
    if (active(p)) {
      if (pop(p, n, out)) {
        ++p.stats.hits;
      } else {
        ++p.stats.misses;
      }
    }
  }
  out.assign(n, value);
}

void recycle(std::vector<double>& v) noexcept {
  if (v.capacity() == 0 || !t_pool_alive) return;
  ThreadPool& p = pool();
  if (!active(p)) return;
  const std::size_t bytes = v.capacity() * sizeof(double);
  const int c = floor_class(v.capacity());
  auto& entries = p.classes[c];
  if (entries.size() >= kMaxEntriesPerClass ||
      p.stats.bytes_pooled + bytes > kMaxPoolBytes) {
    return;  // over cap: let it free normally
  }
  entries.push_back(std::move(v));
  p.stats.bytes_pooled += bytes;
  ++p.stats.recycled;
}

}  // namespace arena

}  // namespace gns::ad
