#pragma once

/// \file nn.hpp
/// Neural-network building blocks on top of the autograd engine: Linear,
/// LayerNorm, and the MLP used uniformly by the GNS encoder, processor and
/// decoder (per Sanchez-Gonzalez et al. 2020: hidden layers with ReLU, an
/// optional LayerNorm on the output).

#include <memory>
#include <string>
#include <vector>

#include "ad/ops.hpp"
#include "ad/tensor.hpp"
#include "util/rng.hpp"

namespace gns::ad {

/// Base class for anything owning trainable parameters.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameter tensors (leaf tensors with requires_grad).
  [[nodiscard]] virtual std::vector<Tensor> parameters() const = 0;

  /// Total scalar parameter count.
  [[nodiscard]] std::int64_t num_parameters() const {
    std::int64_t n = 0;
    for (const auto& p : parameters()) n += p.size();
    return n;
  }

  /// Zeroes gradients of all parameters.
  void zero_grad() const {
    for (auto p : parameters()) p.zero_grad();
  }

  /// Serializes all parameter values in `parameters()` order.
  [[nodiscard]] std::vector<Real> state() const;
  /// Restores parameter values from `state()` output.
  void load_state(const std::vector<Real>& values) const;
};

/// Affine map y = x·W + b with Glorot-uniform initialization.
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, Rng& rng, bool bias = true);

  [[nodiscard]] Tensor forward(const Tensor& x) const;
  [[nodiscard]] std::vector<Tensor> parameters() const override;

  [[nodiscard]] int in_features() const { return in_; }
  [[nodiscard]] int out_features() const { return out_; }
  [[nodiscard]] const Tensor& weight() const { return weight_; }
  [[nodiscard]] const Tensor& bias() const { return bias_; }

 private:
  int in_;
  int out_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [1, out]; undefined when bias=false
};

/// Per-row layer normalization with learnable gain and bias.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int features, Real eps = Real(1e-5));

  [[nodiscard]] Tensor forward(const Tensor& x) const;
  [[nodiscard]] std::vector<Tensor> parameters() const override;

 private:
  Tensor gamma_;
  Tensor beta_;
  Real eps_;
};

/// Activation used between MLP layers.
enum class Activation { ReLU, Tanh };

/// Multilayer perceptron: `hidden_layers` hidden layers of `hidden_size`
/// with the chosen activation, a linear output layer, and an optional
/// LayerNorm on the output (GNS normalizes every latent MLP's output but
/// not the decoder's).
class Mlp : public Module {
 public:
  Mlp(int in_features, int hidden_size, int hidden_layers, int out_features,
      Rng& rng, bool output_layer_norm = false,
      Activation activation = Activation::ReLU);

  [[nodiscard]] Tensor forward(const Tensor& x) const;
  [[nodiscard]] std::vector<Tensor> parameters() const override;

  [[nodiscard]] int in_features() const { return in_; }
  [[nodiscard]] int out_features() const { return out_; }

 private:
  int in_;
  int out_;
  Activation activation_;
  std::vector<Linear> layers_;
  std::unique_ptr<LayerNorm> norm_;  // null unless output_layer_norm
};

}  // namespace gns::ad
