#pragma once

/// \file tensor.hpp
/// Reverse-mode automatic differentiation on 2-D tensors.
///
/// This is the substrate that replaces PyTorch in the paper's pipeline: a
/// dynamically-taped computation graph over row-major matrices. Every tensor
/// in the GNS is naturally 2-D — node features [N,F], edge features [E,F],
/// scalars [1,1] — so restricting to matrices keeps the engine small without
/// losing any expressiveness the models need.
///
/// Semantics mirror PyTorch:
///  * ops executed while grad mode is on (the default) and touching at least
///    one `requires_grad` tensor record a backward closure on the result;
///  * `Tensor::backward()` runs reverse topological order from a scalar root
///    and accumulates into `.grad()` of every reachable leaf;
///  * `NoGradGuard` disables taping (used for inference rollouts);
///  * `detach()` cuts the tape.
///
/// The engine is deliberately eager and single-graph: no views, no in-place
/// autograd (except the explicit optimizer updates which operate on raw
/// data), no higher-order gradients. The paper's experiments need exactly
/// first-order reverse mode.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ad/arena.hpp"
#include "util/check.hpp"

namespace gns::ad {

/// Scalar type of the engine. Double keeps finite-difference gradient checks
/// crisp and the 30-step chained inverse rollout numerically stable; at the
/// reproduction's problem sizes (≤ a few thousand nodes, latent ≤ 128) the
/// 2× memory cost over float is irrelevant.
using Real = double;

class Tensor;
struct TensorImpl;
using TensorImplPtr = std::shared_ptr<TensorImpl>;

/// Node of the autograd tape. On destruction the data/grad storage is
/// donated to the thread-local tensor arena when one is active (see
/// arena.hpp), so steady-state rollouts recycle buffers instead of hitting
/// the allocator every op.
struct TensorImpl {
  int rows = 0;
  int cols = 0;
  std::vector<Real> data;
  std::vector<Real> grad;  ///< lazily allocated on first accumulation
  bool requires_grad = false;

  TensorImpl() = default;
  ~TensorImpl() {
    arena::recycle(data);
    arena::recycle(grad);
  }
  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;

  /// Parents in the computation graph (inputs of the op that produced this).
  std::vector<TensorImplPtr> parents;
  /// Propagates this node's grad into its parents' grads. Empty for leaves.
  std::function<void(TensorImpl&)> backward_fn;

  [[nodiscard]] std::int64_t size() const {
    return static_cast<std::int64_t>(rows) * cols;
  }
  void ensure_grad() {
    if (grad.empty()) arena::acquire(grad, data.size());
  }
};

/// RAII guard that disables gradient taping in its scope (like
/// `torch::NoGradGuard`). Nestable; thread-local.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Whether ops currently record backward closures (thread-local).
[[nodiscard]] bool grad_enabled();

/// Value-semantic handle to a tape node. Copying a Tensor aliases the same
/// storage and tape node (like PyTorch); use `clone()` for a deep copy.
class Tensor {
 public:
  /// Empty (null) tensor; most APIs reject it. Use factories below.
  Tensor() = default;

  explicit Tensor(TensorImplPtr impl) : impl_(std::move(impl)) {}

  // ---- Factories ----------------------------------------------------------

  static Tensor zeros(int rows, int cols, bool requires_grad = false);
  static Tensor ones(int rows, int cols, bool requires_grad = false);
  static Tensor full(int rows, int cols, Real value,
                     bool requires_grad = false);
  /// Takes ownership of `values` (size must equal rows*cols, row-major).
  static Tensor from_vector(int rows, int cols, std::vector<Real> values,
                            bool requires_grad = false);
  /// 1x1 scalar tensor.
  static Tensor scalar(Real value, bool requires_grad = false);

  // ---- Introspection ------------------------------------------------------

  [[nodiscard]] bool defined() const { return impl_ != nullptr; }
  [[nodiscard]] int rows() const { return impl().rows; }
  [[nodiscard]] int cols() const { return impl().cols; }
  [[nodiscard]] std::int64_t size() const { return impl().size(); }
  [[nodiscard]] bool requires_grad() const { return impl().requires_grad; }

  /// Marks this (leaf) tensor as a trainable parameter.
  Tensor& set_requires_grad(bool value = true) {
    impl().requires_grad = value;
    return *this;
  }

  [[nodiscard]] Real* data() { return impl().data.data(); }
  [[nodiscard]] const Real* data() const { return impl().data.data(); }
  [[nodiscard]] std::vector<Real>& vec() { return impl().data; }
  [[nodiscard]] const std::vector<Real>& vec() const { return impl().data; }

  /// Element access (row-major). Bounds-checked in debug builds.
  [[nodiscard]] Real at(int r, int c) const {
    GNS_DCHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
    return impl().data[static_cast<std::size_t>(r) * cols() + c];
  }
  void set(int r, int c, Real v) {
    GNS_DCHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
    impl().data[static_cast<std::size_t>(r) * cols() + c] = v;
  }

  /// Value of a 1x1 tensor.
  [[nodiscard]] Real item() const {
    GNS_CHECK_MSG(size() == 1, "item() requires a scalar tensor, got "
                                   << rows() << "x" << cols());
    return impl().data[0];
  }

  /// Gradient buffer (empty until backward() has reached this tensor).
  [[nodiscard]] const std::vector<Real>& grad() const { return impl().grad; }
  [[nodiscard]] std::vector<Real>& grad_mut() { return impl().grad; }
  void zero_grad() {
    auto& g = impl().grad;
    std::fill(g.begin(), g.end(), Real(0));
  }

  // ---- Autograd -----------------------------------------------------------

  /// Runs reverse-mode accumulation from this scalar. Grad of the root is
  /// seeded with 1. Each call re-walks the tape; gradients accumulate, so
  /// call zero_grad() on parameters between steps.
  void backward() const;

  /// Same storage, detached from the tape (new node, requires_grad=false).
  [[nodiscard]] Tensor detach() const;

  /// Deep copy of the data as a fresh leaf.
  [[nodiscard]] Tensor clone() const;

  [[nodiscard]] TensorImpl& impl() const {
    GNS_CHECK_MSG(impl_ != nullptr, "operation on an undefined Tensor");
    return *impl_;
  }
  [[nodiscard]] const TensorImplPtr& ptr() const { return impl_; }

  [[nodiscard]] std::string to_string(int max_rows = 8) const;

 private:
  TensorImplPtr impl_;
};

/// Creates the result node of an op: allocates storage and, when grad mode
/// is on and any parent requires grad, wires parents + backward closure.
/// `backward` receives the result node; it must add into parents' grads.
Tensor make_op_result(int rows, int cols, std::vector<TensorImplPtr> parents,
                      std::function<void(TensorImpl&)> backward);

}  // namespace gns::ad
