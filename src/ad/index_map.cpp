#include "ad/index_map.hpp"

#include <utility>

#include "util/check.hpp"

namespace gns::ad {

IndexMap::IndexMap(std::vector<int> index, int num_buckets) {
  GNS_CHECK_MSG(num_buckets > 0, "IndexMap: num_buckets must be positive");
  auto data = std::make_shared<Data>();
  data->buckets = num_buckets;
  data->index = std::move(index);
  const int e = static_cast<int>(data->index.size());

  // Counting sort of positions by bucket. The per-entry bounds check here
  // is the single validation pass the ops rely on.
  data->offsets.assign(static_cast<std::size_t>(num_buckets) + 1, 0);
  for (int i = 0; i < e; ++i) {
    const int b = data->index[static_cast<std::size_t>(i)];
    GNS_CHECK_MSG(b >= 0 && b < num_buckets, "IndexMap: index out of range");
    ++data->offsets[static_cast<std::size_t>(b) + 1];
  }
  for (int b = 0; b < num_buckets; ++b)
    data->offsets[static_cast<std::size_t>(b) + 1] +=
        data->offsets[static_cast<std::size_t>(b)];

  // Scatter positions in ascending i: within every bucket the positions
  // come out ascending, which is what makes per-bucket reductions
  // reproduce the legacy serial accumulation order bit-for-bit.
  data->positions.resize(static_cast<std::size_t>(e));
  std::vector<int> cursor(data->offsets.begin(), data->offsets.end() - 1);
  for (int i = 0; i < e; ++i) {
    const int b = data->index[static_cast<std::size_t>(i)];
    data->positions[static_cast<std::size_t>(cursor[static_cast<std::size_t>(
        b)]++)] = i;
  }
  data_ = std::move(data);
}

int IndexMap::size() const {
  GNS_DCHECK(defined());
  return static_cast<int>(data_->index.size());
}

int IndexMap::num_buckets() const {
  GNS_DCHECK(defined());
  return data_->buckets;
}

const std::vector<int>& IndexMap::index() const {
  GNS_DCHECK(defined());
  return data_->index;
}

const int* IndexMap::offsets() const {
  GNS_DCHECK(defined());
  return data_->offsets.data();
}

const int* IndexMap::positions() const {
  GNS_DCHECK(defined());
  return data_->positions.data();
}

void IndexMap::dcheck_valid() const {
#ifndef NDEBUG
  GNS_DCHECK(defined());
  const int e = size();
  const int nb = num_buckets();
  GNS_DCHECK(static_cast<int>(data_->positions.size()) == e);
  GNS_DCHECK(data_->offsets.front() == 0 && data_->offsets.back() == e);
  for (int b = 0; b < nb; ++b) {
    GNS_DCHECK(data_->offsets[static_cast<std::size_t>(b)] <=
               data_->offsets[static_cast<std::size_t>(b) + 1]);
    for (int p = data_->offsets[static_cast<std::size_t>(b)];
         p < data_->offsets[static_cast<std::size_t>(b) + 1]; ++p) {
      const int i = data_->positions[static_cast<std::size_t>(p)];
      GNS_DCHECK(i >= 0 && i < e);
      GNS_DCHECK(data_->index[static_cast<std::size_t>(i)] == b);
    }
  }
#endif
}

}  // namespace gns::ad
