#include <cmath>

#include "ad/ops.hpp"

namespace gns::ad {

Tensor sum(const Tensor& a) {
  auto pa = a.ptr();
  Tensor out = make_op_result(1, 1, {pa}, [pa](TensorImpl& self) {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    const Real g = self.grad[0];
    for (auto& v : pa->grad) v += g;
  });
  Real acc = Real(0);
  for (Real v : a.vec()) acc += v;
  out.data()[0] = acc;
  return out;
}

Tensor mean(const Tensor& a) {
  const Real inv = Real(1) / static_cast<Real>(a.size());
  return mul_scalar(sum(a), inv);
}

Tensor sum_rows(const Tensor& a) {
  const int n = a.rows(), m = a.cols();
  auto pa = a.ptr();
  Tensor out = make_op_result(1, m, {pa}, [pa, n, m](TensorImpl& self) {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < m; ++j)
        pa->grad[static_cast<std::size_t>(i) * m + j] += self.grad[j];
  });
  Real* ov = out.data();
  std::fill(ov, ov + m, Real(0));
  const Real* av = a.data();
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < m; ++j) ov[j] += av[static_cast<std::size_t>(i) * m + j];
  return out;
}

Tensor sum_cols(const Tensor& a) {
  const int n = a.rows(), m = a.cols();
  auto pa = a.ptr();
  Tensor out = make_op_result(n, 1, {pa}, [pa, n, m](TensorImpl& self) {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int i = 0; i < n; ++i) {
      const Real g = self.grad[i];
      for (int j = 0; j < m; ++j)
        pa->grad[static_cast<std::size_t>(i) * m + j] += g;
    }
  });
  Real* ov = out.data();
  const Real* av = a.data();
  for (int i = 0; i < n; ++i) {
    Real acc = Real(0);
    for (int j = 0; j < m; ++j) acc += av[static_cast<std::size_t>(i) * m + j];
    ov[i] = acc;
  }
  return out;
}

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  GNS_CHECK_MSG(pred.rows() == target.rows() && pred.cols() == target.cols(),
                "mse_loss shape mismatch");
  return mean(square(sub(pred, target)));
}

Tensor l1_norm(const Tensor& a) { return mean(abs_op(a)); }

namespace {
/// Shared extremum reduction; `cmp(candidate, incumbent)` returns true
/// when the candidate should replace the incumbent.
template <typename Cmp>
Tensor extremum(const Tensor& a, Cmp cmp) {
  auto pa = a.ptr();
  std::int64_t arg = 0;
  const Real* av = a.data();
  for (std::int64_t i = 1; i < a.size(); ++i) {
    if (cmp(av[i], av[arg])) arg = i;
  }
  Tensor out = make_op_result(1, 1, {pa}, [pa, arg](TensorImpl& self) {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    pa->grad[arg] += self.grad[0];
  });
  out.data()[0] = av[arg];
  return out;
}
}  // namespace

Tensor max_reduce(const Tensor& a) {
  return extremum(a, [](Real c, Real i) { return c > i; });
}

Tensor min_reduce(const Tensor& a) {
  return extremum(a, [](Real c, Real i) { return c < i; });
}

Tensor huber_loss(const Tensor& pred, const Tensor& target, Real delta) {
  GNS_CHECK_MSG(pred.rows() == target.rows() && pred.cols() == target.cols(),
                "huber_loss shape mismatch");
  GNS_CHECK(delta > 0);
  auto pp = pred.ptr();
  auto pt = target.ptr();
  const std::int64_t n = pred.size();
  Tensor out = make_op_result(
      1, 1, {pp, pt}, [pp, pt, delta, n](TensorImpl& self) {
        const Real g = self.grad[0] / static_cast<Real>(n);
        const Real* pv = pp->data.data();
        const Real* tv = pt->data.data();
        auto dr = [&](std::int64_t i) {
          const Real r = pv[i] - tv[i];
          if (std::abs(r) <= delta) return r;
          return std::copysign(delta, r);
        };
        if (pp->requires_grad) {
          pp->ensure_grad();
          for (std::int64_t i = 0; i < n; ++i) pp->grad[i] += g * dr(i);
        }
        if (pt->requires_grad) {
          pt->ensure_grad();
          for (std::int64_t i = 0; i < n; ++i) pt->grad[i] -= g * dr(i);
        }
      });
  Real acc = Real(0);
  for (std::int64_t i = 0; i < n; ++i) {
    const Real r = pred.data()[i] - target.data()[i];
    acc += (std::abs(r) <= delta)
               ? Real(0.5) * r * r
               : delta * (std::abs(r) - Real(0.5) * delta);
  }
  out.data()[0] = acc / static_cast<Real>(n);
  return out;
}

}  // namespace gns::ad
