#include "ad/tensor.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace gns::ad {

namespace {
thread_local bool t_grad_enabled = true;
}  // namespace

NoGradGuard::NoGradGuard() : previous_(t_grad_enabled) {
  t_grad_enabled = false;
}
NoGradGuard::~NoGradGuard() { t_grad_enabled = previous_; }

bool grad_enabled() { return t_grad_enabled; }

Tensor Tensor::zeros(int rows, int cols, bool requires_grad) {
  return full(rows, cols, Real(0), requires_grad);
}

Tensor Tensor::ones(int rows, int cols, bool requires_grad) {
  return full(rows, cols, Real(1), requires_grad);
}

Tensor Tensor::full(int rows, int cols, Real value, bool requires_grad) {
  GNS_CHECK_MSG(rows > 0 && cols > 0,
                "tensor shape must be positive, got " << rows << "x" << cols);
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  arena::acquire_fill(impl->data, static_cast<std::size_t>(rows) * cols,
                      value);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::from_vector(int rows, int cols, std::vector<Real> values,
                           bool requires_grad) {
  GNS_CHECK_MSG(rows > 0 && cols > 0,
                "tensor shape must be positive, got " << rows << "x" << cols);
  GNS_CHECK_MSG(values.size() == static_cast<std::size_t>(rows) * cols,
                "from_vector size mismatch: " << values.size() << " vs "
                                              << rows << "x" << cols);
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data = std::move(values);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::scalar(Real value, bool requires_grad) {
  return full(1, 1, value, requires_grad);
}

void Tensor::backward() const {
  GNS_CHECK_MSG(size() == 1,
                "backward() must be called on a scalar loss, got "
                    << rows() << "x" << cols());
  TensorImpl* root = impl_.get();

  // Iterative post-order DFS produces a topological order of the tape.
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    std::size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_child < frame.node->parents.size()) {
      TensorImpl* child = frame.node->parents[frame.next_child++].get();
      if (visited.insert(child).second && !child->parents.empty()) {
        stack.push_back({child, 0});
      } else if (visited.count(child) && child->parents.empty()) {
        // Leaf: nothing to recurse into.
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  // Intermediate (non-leaf) grads are scratch space for this pass; leaves
  // accumulate across passes (PyTorch semantics). Only non-leaves appear
  // in `order`, so clearing it here resets exactly the scratch.
  for (TensorImpl* node : order) {
    std::fill(node->grad.begin(), node->grad.end(), Real(0));
  }
  root->ensure_grad();
  root->grad[0] += Real(1);

  // `order` is post-order (leaves-ish first); walk it backwards so each
  // node's grad is complete before it propagates to parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn && !node->grad.empty()) {
      node->backward_fn(*node);
    }
  }
}

Tensor Tensor::detach() const {
  auto out = std::make_shared<TensorImpl>();
  out->rows = rows();
  out->cols = cols();
  out->data = impl().data;  // share-by-copy; cheap at our sizes and safe
  out->requires_grad = false;
  return Tensor(std::move(out));
}

Tensor Tensor::clone() const {
  auto out = std::make_shared<TensorImpl>();
  out->rows = rows();
  out->cols = cols();
  out->data = impl().data;
  out->requires_grad = false;
  return Tensor(std::move(out));
}

std::string Tensor::to_string(int max_rows) const {
  std::ostringstream os;
  os << "Tensor(" << rows() << "x" << cols();
  if (requires_grad()) os << ", grad";
  os << ")[";
  const int r_show = std::min(rows(), max_rows);
  for (int r = 0; r < r_show; ++r) {
    os << (r ? "; " : "");
    for (int c = 0; c < cols(); ++c) os << (c ? " " : "") << at(r, c);
  }
  if (r_show < rows()) os << "; ...";
  os << "]";
  return os.str();
}

Tensor make_op_result(int rows, int cols, std::vector<TensorImplPtr> parents,
                      std::function<void(TensorImpl&)> backward) {
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  arena::acquire(impl->data, static_cast<std::size_t>(rows) * cols);
  if (t_grad_enabled) {
    bool any = false;
    for (const auto& p : parents) {
      if (p->requires_grad || p->backward_fn) {
        any = true;
        break;
      }
    }
    if (any) {
      impl->requires_grad = true;
      impl->parents = std::move(parents);
      impl->backward_fn = std::move(backward);
    }
  }
  return Tensor(std::move(impl));
}

}  // namespace gns::ad
