#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "ad/ops.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include "exec/parallel_for.hpp"
#include "obs/trace.hpp"

namespace gns::ad {

namespace {

/// Straightforward cache-friendly (i,k,j) GEMM: C += A[NxK] * B[KxM].
/// Parallel over output rows when the problem is large enough to amortize
/// the fork/join.
void gemm_acc(const Real* a, const Real* b, Real* c, int n, int k, int m) {
  const std::int64_t work = static_cast<std::int64_t>(n) * k * m;
  exec::parallel_for(n, work > 1 << 16, [&](std::int64_t row) {
    const int i = static_cast<int>(row);
    Real* crow = c + static_cast<std::size_t>(i) * m;
    const Real* arow = a + static_cast<std::size_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      const Real av = arow[p];
      if (av == Real(0)) continue;
      const Real* brow = b + static_cast<std::size_t>(p) * m;
      for (int j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  });
}

/// C += A^T[KxN]^T... specifically: grad_a[NxK] += grad_out[NxM] * B^T[MxK].
void gemm_nt_acc(const Real* go, const Real* b, Real* ga, int n, int m,
                 int k) {
  const std::int64_t work = static_cast<std::int64_t>(n) * k * m;
  exec::parallel_for(n, work > 1 << 16, [&](std::int64_t row) {
    const int i = static_cast<int>(row);
    const Real* grow = go + static_cast<std::size_t>(i) * m;
    Real* garow = ga + static_cast<std::size_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      const Real* brow = b + static_cast<std::size_t>(p) * m;
      Real acc = Real(0);
      for (int j = 0; j < m; ++j) acc += grow[j] * brow[j];
      garow[p] += acc;
    }
  });
}

/// grad_b[KxM] += A^T[KxN] * grad_out[NxM]. Serial over k-rows inside, but
/// parallelized over K with per-row ownership (no write conflicts).
void gemm_tn_acc(const Real* a, const Real* go, Real* gb, int n, int k,
                 int m) {
  const std::int64_t work = static_cast<std::int64_t>(n) * k * m;
  exec::parallel_for(k, work > 1 << 16, [&](std::int64_t krow) {
    const int p = static_cast<int>(krow);
    Real* gbrow = gb + static_cast<std::size_t>(p) * m;
    for (int i = 0; i < n; ++i) {
      const Real av = a[static_cast<std::size_t>(i) * k + p];
      if (av == Real(0)) continue;
      const Real* grow = go + static_cast<std::size_t>(i) * m;
      for (int j = 0; j < m; ++j) gbrow[j] += av * grow[j];
    }
  });
}

/// One fused output row, portable path: the exact gemm_acc accumulation
/// (same ascending-p order, same zero-skip) followed by bias add and
/// activation while the row is still cache-hot. Element-for-element this
/// performs the identical FP operation sequence as matmul -> add -> act,
/// so results are bitwise equal to the unfused chain.
void fused_row_scalar(const Real* arow, const Real* w, const Real* bias,
                      Real* crow, int k, int m, FusedAct act) {
  for (int p = 0; p < k; ++p) {
    const Real av = arow[p];
    if (av == Real(0)) continue;
    const Real* wrow = w + static_cast<std::size_t>(p) * m;
    for (int j = 0; j < m; ++j) crow[j] += av * wrow[j];
  }
  switch (act) {
    case FusedAct::Identity:
      if (bias != nullptr)
        for (int j = 0; j < m; ++j) crow[j] = crow[j] + bias[j];
      break;
    case FusedAct::ReLU:
      for (int j = 0; j < m; ++j) {
        const Real v = bias != nullptr ? crow[j] + bias[j] : crow[j];
        crow[j] = v > 0 ? v : Real(0);
      }
      break;
    case FusedAct::Tanh:
      for (int j = 0; j < m; ++j) {
        const Real v = bias != nullptr ? crow[j] + bias[j] : crow[j];
        crow[j] = std::tanh(v);
      }
      break;
  }
}

#if defined(__x86_64__) && defined(__GNUC__)
#define GNS_FUSED_AVX2_KERNEL 1

/// One NV*4-column block of one fused output row, AVX2. Bitwise-identical
/// to fused_row_scalar: separate _mm256_mul_pd / _mm256_add_pd (never FMA
/// — a fused multiply-add would skip the intermediate rounding), each lane
/// runs the same correctly-rounded IEEE ops in the same ascending-p order
/// with the same zero-skip, and _mm256_max_pd(v, 0) matches `v > 0 ? v : 0`
/// exactly (both return +0.0 for v == -0.0 and the second operand, 0, for
/// NaN). What the vector version buys is the block held in NV ymm
/// accumulators across the whole p loop — independent dependency chains
/// (8 at the hot 32-column width, enough to hide addpd latency) — instead
/// of a memory round-trip per p. Tanh stays scalar libm so transcendentals
/// match the unfused op.
template <int NV>
__attribute__((target("avx2"))) void fused_avx2_block(const Real* arow,
                                                      const Real* wblk,
                                                      const Real* bias,
                                                      Real* cblk, int k,
                                                      int m, FusedAct act) {
  __m256d acc[NV];
  for (int u = 0; u < NV; ++u) acc[u] = _mm256_loadu_pd(cblk + 4 * u);
  for (int p = 0; p < k; ++p) {
    const Real av = arow[p];
    if (av == Real(0)) continue;
    const __m256d vav = _mm256_set1_pd(av);
    const Real* wrow = wblk + static_cast<std::size_t>(p) * m;
    for (int u = 0; u < NV; ++u)
      acc[u] = _mm256_add_pd(
          acc[u], _mm256_mul_pd(vav, _mm256_loadu_pd(wrow + 4 * u)));
  }
  if (bias != nullptr)
    for (int u = 0; u < NV; ++u)
      acc[u] = _mm256_add_pd(acc[u], _mm256_loadu_pd(bias + 4 * u));
  if (act == FusedAct::ReLU) {
    const __m256d zero = _mm256_setzero_pd();
    for (int u = 0; u < NV; ++u) acc[u] = _mm256_max_pd(acc[u], zero);
  }
  for (int u = 0; u < NV; ++u) _mm256_storeu_pd(cblk + 4 * u, acc[u]);
  if (act == FusedAct::Tanh)
    for (int u = 0; u < 4 * NV; ++u) cblk[u] = std::tanh(cblk[u]);
}

/// One fused output row, AVX2 path: widest block first (wider = more
/// latency-hiding chains and fewer re-scans of arow), then narrower
/// blocks, then a scalar column tail (e.g. the dim-2 decoder head).
__attribute__((target("avx2"))) void fused_row_avx2(const Real* arow,
                                                    const Real* w,
                                                    const Real* bias,
                                                    Real* crow, int k, int m,
                                                    FusedAct act) {
  int j = 0;
  for (; j + 32 <= m; j += 32)
    fused_avx2_block<8>(arow, w + j, bias != nullptr ? bias + j : nullptr,
                        crow + j, k, m, act);
  for (; j + 16 <= m; j += 16)
    fused_avx2_block<4>(arow, w + j, bias != nullptr ? bias + j : nullptr,
                        crow + j, k, m, act);
  for (; j + 8 <= m; j += 8)
    fused_avx2_block<2>(arow, w + j, bias != nullptr ? bias + j : nullptr,
                        crow + j, k, m, act);
  for (; j + 4 <= m; j += 4)
    fused_avx2_block<1>(arow, w + j, bias != nullptr ? bias + j : nullptr,
                        crow + j, k, m, act);
  // Columns past the last multiple of 4: scalar, one accumulator per
  // column, same op order as above.
  for (; j < m; ++j) {
    Real acc = crow[j];
    for (int p = 0; p < k; ++p) {
      const Real av = arow[p];
      if (av == Real(0)) continue;
      acc += av * w[static_cast<std::size_t>(p) * m + j];
    }
    Real v = bias != nullptr ? acc + bias[j] : acc;
    if (act == FusedAct::ReLU)
      v = v > 0 ? v : Real(0);
    else if (act == FusedAct::Tanh)
      v = std::tanh(v);
    crow[j] = v;
  }
}

bool cpu_has_avx2() {
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
}
#endif  // GNS_FUSED_AVX2_KERNEL

/// Fused forward: per output row, gemm accumulation + bias + activation in
/// one pass (see the row kernels above for the bitwise-identity argument).
void fused_linear_fwd(const Real* a, const Real* w, const Real* bias, Real* c,
                      int n, int k, int m, FusedAct act) {
  const std::int64_t work = static_cast<std::int64_t>(n) * k * m;
#ifdef GNS_FUSED_AVX2_KERNEL
  if (cpu_has_avx2()) {
    exec::parallel_for(n, work > 1 << 16, [&](std::int64_t row) {
      const int i = static_cast<int>(row);
      fused_row_avx2(a + static_cast<std::size_t>(i) * k, w, bias,
                     c + static_cast<std::size_t>(i) * m, k, m, act);
    });
    return;
  }
#endif
  exec::parallel_for(n, work > 1 << 16, [&](std::int64_t row) {
    const int i = static_cast<int>(row);
    fused_row_scalar(a + static_cast<std::size_t>(i) * k, w, bias,
                     c + static_cast<std::size_t>(i) * m, k, m, act);
  });
}

/// d(act)/d(pre-activation) recovered from the *output* value (valid for
/// ReLU: out > 0 <=> pre > 0; for Tanh: 1 - out^2 — both match the unfused
/// elementwise backward exactly).
Real act_grad_from_output(FusedAct act, Real out) {
  switch (act) {
    case FusedAct::ReLU:
      return out > 0 ? Real(1) : Real(0);
    case FusedAct::Tanh:
      return Real(1) - out * out;
    case FusedAct::Identity:
      break;
  }
  return Real(1);
}

// -1 = unset (read GNS_FUSED on first query), else 0/1.
std::atomic<int> g_fused_state{-1};

}  // namespace

bool fused_linear_enabled() {
  int s = g_fused_state.load(std::memory_order_relaxed);
  if (s < 0) {
    const char* env = std::getenv("GNS_FUSED");
    s = (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0)
            ? 1
            : 0;
    g_fused_state.store(s, std::memory_order_relaxed);
  }
  return s != 0;
}

void set_fused_linear_enabled(bool enabled) {
  g_fused_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  GNS_TRACE_SCOPE("ad.ops.matmul");
  GNS_CHECK_MSG(a.cols() == b.rows(), "matmul shape mismatch: "
                                          << a.rows() << "x" << a.cols()
                                          << " * " << b.rows() << "x"
                                          << b.cols());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  auto pa = a.ptr();
  auto pb = b.ptr();
  Tensor out = make_op_result(
      n, m, {pa, pb}, [pa, pb, n, k, m](TensorImpl& self) {
        if (pa->requires_grad) {
          pa->ensure_grad();
          gemm_nt_acc(self.grad.data(), pb->data.data(), pa->grad.data(), n,
                      m, k);
        }
        if (pb->requires_grad) {
          pb->ensure_grad();
          gemm_tn_acc(pa->data.data(), self.grad.data(), pb->grad.data(), n,
                      k, m);
        }
      });
  std::fill(out.vec().begin(), out.vec().end(), Real(0));
  gemm_acc(a.data(), b.data(), out.data(), n, k, m);
  return out;
}

Tensor transpose(const Tensor& a) {
  GNS_TRACE_SCOPE("ad.ops.transpose");
  const int n = a.rows(), m = a.cols();
  const std::int64_t work = static_cast<std::int64_t>(n) * m;
  auto pa = a.ptr();
  Tensor out = make_op_result(m, n, {pa}, [pa, n, m, work](TensorImpl& self) {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    // Parallel over input rows: each i owns grad row i (no write races).
    exec::parallel_for(n, work > 1 << 16, [&](std::int64_t i)  {
      for (int j = 0; j < m; ++j)
        pa->grad[static_cast<std::size_t>(i) * m + j] +=
            self.grad[static_cast<std::size_t>(j) * n + static_cast<std::size_t>(i)];
    });
  });
  const Real* av = a.data();
  Real* ov = out.data();
  // Parallel over output rows j; pure copies, so any order is bitwise
  // identical to the serial loop.
  exec::parallel_for(m, work > 1 << 16, [&](std::int64_t j) {
    for (int i = 0; i < n; ++i)
      ov[static_cast<std::size_t>(j) * n + static_cast<std::size_t>(i)] =
          av[static_cast<std::size_t>(i) * m + static_cast<std::size_t>(j)];
  });
  return out;
}

Tensor linear_act(const Tensor& x, const Tensor& w, const Tensor& b,
                  FusedAct act) {
  GNS_TRACE_SCOPE("ad.ops.linear_act");
  GNS_CHECK_MSG(x.cols() == w.rows(), "linear_act shape mismatch: "
                                          << x.rows() << "x" << x.cols()
                                          << " * " << w.rows() << "x"
                                          << w.cols());
  const bool has_bias = b.defined();
  if (has_bias) {
    GNS_CHECK_MSG(b.rows() == 1 && b.cols() == w.cols(),
                  "linear_act bias must be [1," << w.cols() << "], got "
                                                << b.rows() << "x"
                                                << b.cols());
  }
  const int n = x.rows(), k = x.cols(), m = w.cols();
  auto px = x.ptr();
  auto pw = w.ptr();
  auto pb = has_bias ? b.ptr() : TensorImplPtr{};
  std::vector<TensorImplPtr> parents{px, pw};
  if (has_bias) parents.push_back(pb);
  Tensor out = make_op_result(
      n, m, std::move(parents), [px, pw, pb, n, k, m, act](TensorImpl& self) {
        // dpre = upstream grad * act'(output); for Identity it aliases the
        // upstream grad directly (no copy).
        const Real* go = self.grad.data();
        std::vector<Real> dpre_store;
        const Real* dpre = go;
        if (act != FusedAct::Identity) {
          arena::acquire(dpre_store, static_cast<std::size_t>(n) * m);
          const Real* ov = self.data.data();
          const std::int64_t total = static_cast<std::int64_t>(n) * m;
          for (std::int64_t i = 0; i < total; ++i)
            dpre_store[i] = go[i] * act_grad_from_output(act, ov[i]);
          dpre = dpre_store.data();
        }
        if (px->requires_grad) {
          px->ensure_grad();
          gemm_nt_acc(dpre, pw->data.data(), px->grad.data(), n, m, k);
        }
        if (pw->requires_grad) {
          pw->ensure_grad();
          gemm_tn_acc(px->data.data(), dpre, pw->grad.data(), n, k, m);
        }
        if (pb && pb->requires_grad) {
          pb->ensure_grad();
          // Same accumulation order as add()'s broadcast backward
          // (rows outer, cols inner) for bitwise-equal bias grads.
          for (int r = 0; r < n; ++r)
            for (int c = 0; c < m; ++c)
              pb->grad[c] += dpre[static_cast<std::size_t>(r) * m + c];
        }
        arena::recycle(dpre_store);
      });
  fused_linear_fwd(x.data(), w.data(), has_bias ? b.data() : nullptr,
                   out.data(), n, k, m, act);
  return out;
}

}  // namespace gns::ad
