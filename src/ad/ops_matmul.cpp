#include "ad/ops.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include "obs/trace.hpp"

namespace gns::ad {

namespace {

/// Straightforward cache-friendly (i,k,j) GEMM: C += A[NxK] * B[KxM].
/// Parallel over output rows when the problem is large enough to amortize
/// the fork/join.
void gemm_acc(const Real* a, const Real* b, Real* c, int n, int k, int m) {
  const std::int64_t work = static_cast<std::int64_t>(n) * k * m;
#pragma omp parallel for schedule(static) if (work > 1 << 16)
  for (int i = 0; i < n; ++i) {
    Real* crow = c + static_cast<std::size_t>(i) * m;
    const Real* arow = a + static_cast<std::size_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      const Real av = arow[p];
      if (av == Real(0)) continue;
      const Real* brow = b + static_cast<std::size_t>(p) * m;
      for (int j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

/// C += A^T[KxN]^T... specifically: grad_a[NxK] += grad_out[NxM] * B^T[MxK].
void gemm_nt_acc(const Real* go, const Real* b, Real* ga, int n, int m,
                 int k) {
  const std::int64_t work = static_cast<std::int64_t>(n) * k * m;
#pragma omp parallel for schedule(static) if (work > 1 << 16)
  for (int i = 0; i < n; ++i) {
    const Real* grow = go + static_cast<std::size_t>(i) * m;
    Real* garow = ga + static_cast<std::size_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      const Real* brow = b + static_cast<std::size_t>(p) * m;
      Real acc = Real(0);
      for (int j = 0; j < m; ++j) acc += grow[j] * brow[j];
      garow[p] += acc;
    }
  }
}

/// grad_b[KxM] += A^T[KxN] * grad_out[NxM]. Serial over k-rows inside, but
/// parallelized over K with per-row ownership (no write conflicts).
void gemm_tn_acc(const Real* a, const Real* go, Real* gb, int n, int k,
                 int m) {
  const std::int64_t work = static_cast<std::int64_t>(n) * k * m;
#pragma omp parallel for schedule(static) if (work > 1 << 16)
  for (int p = 0; p < k; ++p) {
    Real* gbrow = gb + static_cast<std::size_t>(p) * m;
    for (int i = 0; i < n; ++i) {
      const Real av = a[static_cast<std::size_t>(i) * k + p];
      if (av == Real(0)) continue;
      const Real* grow = go + static_cast<std::size_t>(i) * m;
      for (int j = 0; j < m; ++j) gbrow[j] += av * grow[j];
    }
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  GNS_TRACE_SCOPE("ad.ops.matmul");
  GNS_CHECK_MSG(a.cols() == b.rows(), "matmul shape mismatch: "
                                          << a.rows() << "x" << a.cols()
                                          << " * " << b.rows() << "x"
                                          << b.cols());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  auto pa = a.ptr();
  auto pb = b.ptr();
  Tensor out = make_op_result(
      n, m, {pa, pb}, [pa, pb, n, k, m](TensorImpl& self) {
        if (pa->requires_grad) {
          pa->ensure_grad();
          gemm_nt_acc(self.grad.data(), pb->data.data(), pa->grad.data(), n,
                      m, k);
        }
        if (pb->requires_grad) {
          pb->ensure_grad();
          gemm_tn_acc(pa->data.data(), self.grad.data(), pb->grad.data(), n,
                      k, m);
        }
      });
  std::fill(out.vec().begin(), out.vec().end(), Real(0));
  gemm_acc(a.data(), b.data(), out.data(), n, k, m);
  return out;
}

Tensor transpose(const Tensor& a) {
  const int n = a.rows(), m = a.cols();
  auto pa = a.ptr();
  Tensor out = make_op_result(m, n, {pa}, [pa, n, m](TensorImpl& self) {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < m; ++j)
        pa->grad[static_cast<std::size_t>(i) * m + j] +=
            self.grad[static_cast<std::size_t>(j) * n + i];
  });
  const Real* av = a.data();
  Real* ov = out.data();
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < m; ++j)
      ov[static_cast<std::size_t>(j) * n + i] =
          av[static_cast<std::size_t>(i) * m + j];
  return out;
}

}  // namespace gns::ad
