#pragma once

/// \file gradcheck.hpp
/// Finite-difference verification of reverse-mode gradients. Used by the
/// test suite to prove every op's backward pass exact before the GNS builds
/// anything on top of it.

#include <functional>

#include "ad/tensor.hpp"

namespace gns::ad {

struct GradCheckResult {
  bool ok = true;
  Real max_abs_error = Real(0);
  Real max_rel_error = Real(0);
  int worst_input = -1;    ///< flat index of worst-mismatching element
  int worst_tensor = -1;   ///< which input tensor it belongs to
};

/// Compares reverse-mode gradients of `fn(inputs) -> scalar` against central
/// finite differences, perturbing every element of every input.
///
/// `tolerance` bounds max(abs_err, rel_err) per element, where rel_err is
/// relative to max(|analytic|, |numeric|, 1e-6).
GradCheckResult grad_check(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, Real eps = Real(1e-5),
    Real tolerance = Real(1e-6));

}  // namespace gns::ad
