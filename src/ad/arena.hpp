#pragma once

/// \file arena.hpp
/// Per-thread buffer pool ("tensor arena") for TensorImpl storage.
///
/// Steady-state rollouts create and destroy the same tensor shapes every
/// step; under glibc malloc the multi-megabyte edge-latent buffers are
/// mmap-backed, so each step pays munmap + fresh page faults. The arena
/// breaks that cycle: while a frame is marked by an ArenaScope, destroyed
/// tensors donate their storage vectors to a thread-local free list keyed
/// by power-of-two size class, and new op results draw from that list in
/// O(1) instead of allocating.
///
/// Lifetime rules (see DESIGN.md "Steady-state rollout memory model"):
///  * Pooling engages only while (a) the global switch is on
///    (set_arena_enabled / GNS_ARENA env) and (b) the current thread is
///    inside at least one ArenaScope. Outside a scope, acquire/recycle
///    degrade to plain allocation/deallocation, so code that never opens a
///    scope is byte-for-byte unaffected.
///  * A recycled buffer is only ever taken from a *destroyed* TensorImpl,
///    so pooled storage can never alias a live tensor.
///  * Buffers are zero-filled on acquire, exactly like a freshly resized
///    std::vector — results are bitwise identical with the arena on or off.
///  * The pool persists across frames (that is the point: step N+1 reuses
///    step N's buffers); ArenaScope exit at depth 0 just flushes the
///    ad.arena.{hit,miss} counters and the ad.arena.bytes_live gauge.
///    arena_clear() frees a thread's pool outright.
///
/// The pool is bounded (per-class entry cap + total byte cap) so a shape
/// change cannot grow it without limit; over-cap buffers are simply freed.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gns::ad {

/// Global arena switch. Defaults to the GNS_ARENA environment variable
/// (unset/"0" = off). Runtime-togglable; takes effect at the next
/// acquire/recycle.
[[nodiscard]] bool arena_enabled();
void set_arena_enabled(bool enabled);

/// RAII frame marker: pooling is active on this thread while at least one
/// ArenaScope is alive (and the global switch is on). Nestable; typically
/// one scope wraps one simulator step or one training step.
class ArenaScope {
 public:
  ArenaScope();
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
};

/// Counters of the calling thread's pool (cumulative since thread start).
struct ArenaStats {
  std::uint64_t hits = 0;      ///< acquires served from the pool
  std::uint64_t misses = 0;    ///< acquires that had to allocate
  std::uint64_t recycled = 0;  ///< buffers parked for reuse
  std::size_t bytes_pooled = 0;  ///< bytes currently parked in the pool
};
[[nodiscard]] ArenaStats arena_thread_stats();

/// Frees every buffer in the calling thread's pool.
void arena_clear();

namespace arena {

/// Leaves `out` sized to `n` elements, all zero — from the pool when the
/// arena is active on this thread, freshly allocated otherwise. Exactly
/// equivalent to `out = std::vector<double>(n)`.
void acquire(std::vector<double>& out, std::size_t n);

/// Same, but filled with `value` instead of zero.
void acquire_fill(std::vector<double>& out, std::size_t n, double value);

/// Parks `v`'s storage for reuse when the arena is active on this thread
/// (and the pool has room); otherwise lets it free normally. Called by
/// ~TensorImpl for the data and grad buffers.
void recycle(std::vector<double>& v) noexcept;

}  // namespace arena

}  // namespace gns::ad
