#include <algorithm>
#include <cmath>
#include <limits>

#include "ad/ops.hpp"
#include "exec/parallel_for.hpp"
#include "obs/trace.hpp"
#include "util/simd.hpp"

// Graph ops with runtime-dispatched SIMD + CSR-parallel reductions.
//
// Contract (same as the fused kernels in ops_matmul.cpp): every path is
// bitwise identical to the legacy scalar/serial reference, and every
// cross-row reduction is parallelized per *destination* with the CSR
// transpose in ad::IndexMap so the per-element accumulation order — hence
// the result bytes — does not depend on the thread count. GNS_SIMD=0
// (simd::enabled() == false) selects the exact pre-SIMD control flow; the
// simd:: row kernels additionally fall back to their scalar bodies when
// AVX2 is unavailable. See DESIGN.md §12.

namespace gns::ad {

namespace {

/// Shared OMP guard: parallelize only when the touched data outgrows the
/// fork/join cost (same 1<<15 element threshold as the legacy loops).
inline bool parallel_worthwhile(std::int64_t rows, std::int64_t cols) {
  return rows * cols > (std::int64_t{1} << 15);
}

}  // namespace

Tensor concat_cols(const std::vector<Tensor>& parts) {
  GNS_CHECK_MSG(!parts.empty(), "concat_cols of zero tensors");
  const int n = parts.front().rows();
  int total_cols = 0;
  std::vector<TensorImplPtr> parents;
  parents.reserve(parts.size());
  std::vector<int> offsets;
  offsets.reserve(parts.size());
  for (const auto& p : parts) {
    GNS_CHECK_MSG(p.rows() == n, "concat_cols row mismatch: " << p.rows()
                                                              << " vs " << n);
    offsets.push_back(total_cols);
    total_cols += p.cols();
    parents.push_back(p.ptr());
  }
  auto parents_copy = parents;
  auto offsets_copy = offsets;
  const int m = total_cols;
  Tensor out = make_op_result(
      n, m, std::move(parents),
      [parents_copy, offsets_copy, n, m](TensorImpl& self) {
        // Each (part, row) grad slice is an independent target, so the
        // row-parallel order is bitwise-irrelevant; ensure_grad happens
        // up front, outside the parallel region.
        bool any = false;
        for (auto& p : parents_copy)
          if (p->requires_grad) {
            p->ensure_grad();
            any = true;
          }
        if (!any) return;
        const int parts_n = static_cast<int>(parents_copy.size());
        exec::parallel_for(n, parallel_worthwhile(n, m), [&](std::int64_t i) {
          const Real* grow = self.grad.data() + static_cast<std::size_t>(i) * m;
          for (int k = 0; k < parts_n; ++k) {
            auto& p = parents_copy[k];
            if (!p->requires_grad) continue;
            const int pc = p->cols;
            simd::accumulate(p->grad.data() + static_cast<std::size_t>(i) * pc,
                             grow + offsets_copy[k],
                             static_cast<std::size_t>(pc));
          }
        });
      });
  Real* ov = out.data();
  std::vector<const Real*> srcs(parts.size());
  std::vector<int> cols(parts.size());
  for (std::size_t k = 0; k < parts.size(); ++k) {
    srcs[k] = parts[k].data();
    cols[k] = parts[k].cols();
  }
  const int parts_n = static_cast<int>(parts.size());
  exec::parallel_for(n, parallel_worthwhile(n, m), [&](std::int64_t i) {
    Real* orow = ov + static_cast<std::size_t>(i) * m;
    for (int k = 0; k < parts_n; ++k)
      simd::copy(orow + offsets[k],
                 srcs[k] + static_cast<std::size_t>(i) * cols[k],
                 static_cast<std::size_t>(cols[k]));
  });
  return out;
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  GNS_CHECK_MSG(!parts.empty(), "concat_rows of zero tensors");
  const int m = parts.front().cols();
  int total_rows = 0;
  std::vector<TensorImplPtr> parents;
  std::vector<int> offsets;
  for (const auto& p : parts) {
    GNS_CHECK_MSG(p.cols() == m, "concat_rows column mismatch: " << p.cols()
                                                                 << " vs "
                                                                 << m);
    offsets.push_back(total_rows);
    total_rows += p.rows();
    parents.push_back(p.ptr());
  }
  auto parents_copy = parents;
  auto offsets_copy = offsets;
  Tensor out = make_op_result(
      total_rows, m, std::move(parents),
      [parents_copy, offsets_copy, m](TensorImpl& self) {
        for (std::size_t k = 0; k < parents_copy.size(); ++k) {
          auto& p = parents_copy[k];
          if (!p->requires_grad) continue;
          p->ensure_grad();
          const std::size_t count =
              static_cast<std::size_t>(p->rows) * m;
          const Real* src = self.grad.data() +
                            static_cast<std::size_t>(offsets_copy[k]) * m;
          simd::accumulate(p->grad.data(), src, count);
        }
      });
  Real* ov = out.data();
  for (std::size_t k = 0; k < parts.size(); ++k) {
    const auto& v = parts[k].vec();
    std::copy(v.begin(), v.end(),
              ov + static_cast<std::size_t>(offsets[k]) * m);
  }
  return out;
}

Tensor slice_cols(const Tensor& a, int start, int len) {
  GNS_CHECK_MSG(start >= 0 && len > 0 && start + len <= a.cols(),
                "slice_cols out of range: [" << start << ", " << start + len
                                             << ") of " << a.cols());
  const int n = a.rows(), m = a.cols();
  auto pa = a.ptr();
  Tensor out = make_op_result(
      n, len, {pa}, [pa, start, len, n, m](TensorImpl& self) {
        if (!pa->requires_grad) return;
        pa->ensure_grad();
        for (int i = 0; i < n; ++i)
          simd::accumulate(
              pa->grad.data() + static_cast<std::size_t>(i) * m + start,
              self.grad.data() + static_cast<std::size_t>(i) * len,
              static_cast<std::size_t>(len));
      });
  const Real* av = a.data();
  Real* ov = out.data();
  for (int i = 0; i < n; ++i)
    simd::copy(ov + static_cast<std::size_t>(i) * len,
               av + static_cast<std::size_t>(i) * m + start,
               static_cast<std::size_t>(len));
  return out;
}

Tensor slice_rows(const Tensor& a, int start, int len) {
  GNS_CHECK_MSG(start >= 0 && len > 0 && start + len <= a.rows(),
                "slice_rows out of range: [" << start << ", " << start + len
                                             << ") of " << a.rows());
  const int m = a.cols();
  auto pa = a.ptr();
  Tensor out = make_op_result(
      len, m, {pa}, [pa, start, len, m](TensorImpl& self) {
        if (!pa->requires_grad) return;
        pa->ensure_grad();
        Real* dst = pa->grad.data() + static_cast<std::size_t>(start) * m;
        const std::size_t count = static_cast<std::size_t>(len) * m;
        simd::accumulate(dst, self.grad.data(), count);
      });
  const Real* src = a.data() + static_cast<std::size_t>(start) * m;
  std::copy(src, src + static_cast<std::size_t>(len) * m, out.data());
  return out;
}

Tensor gather_rows(const Tensor& a, const IndexMap& index) {
  GNS_TRACE_SCOPE("ad.ops.gather_rows");
  GNS_CHECK_MSG(index.defined(), "gather_rows with undefined IndexMap");
  GNS_CHECK_MSG(index.size() > 0, "gather_rows with empty index");
  GNS_CHECK_MSG(index.num_buckets() == a.rows(),
                "gather_rows IndexMap built for " << index.num_buckets()
                                                  << " rows, tensor has "
                                                  << a.rows());
  index.dcheck_valid();
  const int m = a.cols();
  const int e = index.size();
  auto pa = a.ptr();
  IndexMap im = index;
  Tensor out = make_op_result(
      e, m, {pa}, [pa, im, e, m](TensorImpl& self) {
        if (!pa->requires_grad) return;
        pa->ensure_grad();
        if (simd::enabled()) {
          // CSR-parallel per-destination reduction: destination row b
          // accumulates its incident edge rows in ascending original
          // index — the identical add sequence as the serial reference
          // below, but with each destination owned by exactly one
          // thread (bitwise thread-invariant).
          const int nb = im.num_buckets();
          const int* off = im.offsets();
          const int* pos = im.positions();
          exec::parallel_for(nb, parallel_worthwhile(e, m),
                             [&](std::int64_t b) {
            Real* dst = pa->grad.data() + static_cast<std::size_t>(b) * m;
            for (int p = off[b]; p < off[b + 1]; ++p)
              simd::accumulate(
                  dst,
                  self.grad.data() + static_cast<std::size_t>(pos[p]) * m,
                  static_cast<std::size_t>(m));
          });
          return;
        }
        // Legacy serial reference: repeated indices make naive parallel
        // accumulation racy.
        const std::vector<int>& idx = im.index();
        for (int i = 0; i < e; ++i) {
          Real* dst =
              pa->grad.data() + static_cast<std::size_t>(idx[i]) * m;
          const Real* src = self.grad.data() + static_cast<std::size_t>(i) * m;
          for (int j = 0; j < m; ++j) dst[j] += src[j];
        }
      });
  const Real* av = a.data();
  Real* ov = out.data();
  const std::vector<int>& idx = index.index();
  exec::parallel_for(e, parallel_worthwhile(e, m), [&](std::int64_t i) {
    simd::copy(ov + static_cast<std::size_t>(i) * m,
               av + static_cast<std::size_t>(idx[i]) * m,
               static_cast<std::size_t>(m));
  });
  return out;
}

Tensor gather_rows(const Tensor& a, const std::vector<int>& index) {
  GNS_CHECK_MSG(!index.empty(), "gather_rows with empty index");
  // The ephemeral IndexMap performs the bounds validation (CheckError on
  // the first out-of-range entry). Hot callers build the map once per
  // graph instead (core::GraphIndex) and use the overload above.
  return gather_rows(a, IndexMap(index, a.rows()));
}

Tensor scatter_add_rows(const Tensor& a, const IndexMap& index) {
  GNS_TRACE_SCOPE("ad.ops.scatter_add_rows");
  GNS_CHECK_MSG(index.defined(), "scatter_add_rows with undefined IndexMap");
  GNS_CHECK_MSG(index.size() == a.rows(),
                "scatter_add_rows needs one index per input row");
  index.dcheck_valid();
  const int e = a.rows(), m = a.cols();
  const int num_rows = index.num_buckets();
  auto pa = a.ptr();
  IndexMap im = index;
  Tensor out = make_op_result(
      num_rows, m, {pa}, [pa, im, e, m](TensorImpl& self) {
        if (!pa->requires_grad) return;
        pa->ensure_grad();
        // Backward of scatter-add is a gather: embarrassingly parallel.
        const std::vector<int>& idx = im.index();
        exec::parallel_for(e, parallel_worthwhile(e, m), [&](std::int64_t i) {
          simd::accumulate(
              pa->grad.data() + static_cast<std::size_t>(i) * m,
              self.grad.data() + static_cast<std::size_t>(idx[i]) * m,
              static_cast<std::size_t>(m));
        });
      });
  std::fill(out.vec().begin(), out.vec().end(), Real(0));
  const Real* av = a.data();
  Real* ov = out.data();
  if (simd::enabled()) {
    // CSR-parallel forward: output row b sums its inputs in ascending
    // original index, matching the serial loop below bit-for-bit (and
    // independently of the thread count — each b has one owner).
    const int* off = im.offsets();
    const int* pos = im.positions();
    exec::parallel_for(num_rows, parallel_worthwhile(e, m),
                       [&](std::int64_t b) {
      Real* dst = ov + static_cast<std::size_t>(b) * m;
      for (int p = off[b]; p < off[b + 1]; ++p)
        simd::accumulate(dst,
                         av + static_cast<std::size_t>(pos[p]) * m,
                         static_cast<std::size_t>(m));
    });
    return out;
  }
  const std::vector<int>& idx = im.index();
  for (int i = 0; i < e; ++i) {
    Real* dst = ov + static_cast<std::size_t>(idx[i]) * m;
    const Real* src = av + static_cast<std::size_t>(i) * m;
    for (int j = 0; j < m; ++j) dst[j] += src[j];
  }
  return out;
}

Tensor scatter_add_rows(const Tensor& a, const std::vector<int>& index,
                        int num_rows) {
  GNS_CHECK_MSG(static_cast<int>(index.size()) == a.rows(),
                "scatter_add_rows needs one index per input row");
  GNS_CHECK(num_rows > 0);
  return scatter_add_rows(a, IndexMap(index, num_rows));
}

Tensor segment_softmax(const Tensor& scores, const IndexMap& segment) {
  GNS_CHECK_MSG(scores.cols() == 1, "segment_softmax expects [E,1] scores");
  GNS_CHECK_MSG(segment.defined(), "segment_softmax with undefined IndexMap");
  GNS_CHECK_MSG(segment.size() == scores.rows(),
                "segment_softmax needs one segment id per score");
  segment.dcheck_valid();
  const int e = scores.rows();
  const int num_segments = segment.num_buckets();
  auto pa = scores.ptr();
  IndexMap im = segment;
  Tensor out = make_op_result(
      e, 1, {pa}, [pa, im, e, num_segments](TensorImpl& self) {
        if (!pa->requires_grad) return;
        pa->ensure_grad();
        // d softmax_i / d score_j (same segment) = y_i (δ_ij − y_j).
        if (simd::enabled()) {
          // Per-segment, CSR-parallel: the dot reduction visits the
          // segment's entries in ascending original index, the same
          // order the serial reference adds them in.
          const int* off = im.offsets();
          const int* pos = im.positions();
          exec::parallel_for(num_segments, parallel_worthwhile(e, 8),
                             [&](std::int64_t s) {
            Real dot = Real(0);
            for (int p = off[s]; p < off[s + 1]; ++p) {
              const int i = pos[p];
              dot += self.grad[i] * self.data[i];
            }
            for (int p = off[s]; p < off[s + 1]; ++p) {
              const int i = pos[p];
              pa->grad[i] += self.data[i] * (self.grad[i] - dot);
            }
          });
          return;
        }
        const std::vector<int>& seg = im.index();
        std::vector<Real> dot(num_segments, Real(0));
        for (int i = 0; i < e; ++i)
          dot[seg[i]] += self.grad[i] * self.data[i];
        for (int i = 0; i < e; ++i)
          pa->grad[i] += self.data[i] * (self.grad[i] - dot[seg[i]]);
      });
  const Real* sv = scores.data();
  Real* ov = out.data();
  if (simd::enabled()) {
    // Per-segment forward: max / exp-sum / normalize walk each segment's
    // entries in ascending original index — per-element identical to the
    // serial three-pass reference, and each segment has one owner.
    const int* off = segment.offsets();
    const int* pos = segment.positions();
    exec::parallel_for(num_segments, parallel_worthwhile(e, 8),
                       [&](std::int64_t s) {
      Real seg_max = -std::numeric_limits<Real>::infinity();
      for (int p = off[s]; p < off[s + 1]; ++p)
        seg_max = std::max(seg_max, sv[pos[p]]);
      Real seg_sum = Real(0);
      for (int p = off[s]; p < off[s + 1]; ++p) {
        const int i = pos[p];
        ov[i] = std::exp(sv[i] - seg_max);
        seg_sum += ov[i];
      }
      for (int p = off[s]; p < off[s + 1]; ++p) ov[pos[p]] /= seg_sum;
    });
    return out;
  }
  // Numerically-stable forward: subtract per-segment max.
  const std::vector<int>& seg = segment.index();
  std::vector<Real> seg_max(num_segments,
                            -std::numeric_limits<Real>::infinity());
  for (int i = 0; i < e; ++i)
    seg_max[seg[i]] = std::max(seg_max[seg[i]], sv[i]);
  std::vector<Real> seg_sum(num_segments, Real(0));
  for (int i = 0; i < e; ++i) {
    ov[i] = std::exp(sv[i] - seg_max[seg[i]]);
    seg_sum[seg[i]] += ov[i];
  }
  for (int i = 0; i < e; ++i) ov[i] /= seg_sum[seg[i]];
  return out;
}

Tensor segment_softmax(const Tensor& scores, const std::vector<int>& segment,
                       int num_segments) {
  GNS_CHECK_MSG(static_cast<int>(segment.size()) == scores.rows(),
                "segment_softmax needs one segment id per score");
  GNS_CHECK(num_segments > 0);
  return segment_softmax(scores, IndexMap(segment, num_segments));
}

Tensor radius_edge_features(const Tensor& positions, const IndexMap& senders,
                            const IndexMap& receivers, Real inv_radius,
                            Real eps) {
  GNS_TRACE_SCOPE("ad.ops.radius_edge_features");
  GNS_CHECK_MSG(senders.defined() && receivers.defined(),
                "radius_edge_features with undefined IndexMap");
  GNS_CHECK_MSG(senders.size() == receivers.size(),
                "senders/receivers length mismatch");
  GNS_CHECK_MSG(senders.size() > 0, "radius_edge_features with no edges");
  GNS_CHECK_MSG(senders.num_buckets() == positions.rows() &&
                    receivers.num_buckets() == positions.rows(),
                "radius_edge_features IndexMaps must cover positions rows");
  senders.dcheck_valid();
  receivers.dcheck_valid();
  const int e = senders.size();
  const int d = positions.cols();
  const int m = d + 1;
  auto pp = positions.ptr();
  IndexMap smap = senders;
  IndexMap rmap = receivers;
  Tensor out = make_op_result(
      e, m, {pp}, [pp, smap, rmap, e, d, m, inv_radius](TensorImpl& self) {
        if (!pp->requires_grad) return;
        pp->ensure_grad();
        // d out / d positions, per edge, into scratch (disp columns read
        // back from the forward output: out[:, j] = disp_j, out[:, d] =
        // dist), then scattered ± per endpoint through the CSR maps so
        // every node grad row has exactly one writer.
        std::vector<Real> dd(static_cast<std::size_t>(e) * d);
        exec::parallel_for(e, parallel_worthwhile(e, m), [&](std::int64_t i) {
          const Real* orow = self.data.data() + static_cast<std::size_t>(i) * m;
          const Real* grow = self.grad.data() + static_cast<std::size_t>(i) * m;
          const Real y = orow[d];
          const Real dnorm2 = grow[d] * (y > 0 ? Real(0.5) / y : Real(0));
          for (int j = 0; j < d; ++j)
            dd[static_cast<std::size_t>(i) * d + j] =
                (grow[j] + dnorm2 * (2 * orow[j])) * inv_radius;
        });
        const int nb = rmap.num_buckets();
        const int* roff = rmap.offsets();
        const int* rpos = rmap.positions();
        const int* soff = smap.offsets();
        const int* spos = smap.positions();
        exec::parallel_for(nb, parallel_worthwhile(e, m), [&](std::int64_t b) {
          Real* g = pp->grad.data() + static_cast<std::size_t>(b) * d;
          for (int p = roff[b]; p < roff[b + 1]; ++p) {
            const Real* src = dd.data() + static_cast<std::size_t>(rpos[p]) * d;
            for (int j = 0; j < d; ++j) g[j] += src[j];
          }
          for (int p = soff[b]; p < soff[b + 1]; ++p) {
            const Real* src = dd.data() + static_cast<std::size_t>(spos[p]) * d;
            for (int j = 0; j < d; ++j) g[j] -= src[j];
          }
        });
      });
  // Fused forward, element-for-element the chain
  //   disp = (gather(x, recv) - gather(x, send)) * inv_radius
  //   dist = sqrt(sum_cols(square(disp)) + eps)
  //   out  = concat_cols({disp, dist})
  // in the same order (ascending-j sum from a zero accumulator), so the
  // fusion is bitwise invisible. Row-local → trivially thread-invariant.
  const Real* xv = positions.data();
  Real* ov = out.data();
  const std::vector<int>& sidx = senders.index();
  const std::vector<int>& ridx = receivers.index();
  exec::parallel_for(e, parallel_worthwhile(e, m), [&](std::int64_t i) {
    const Real* xs = xv + static_cast<std::size_t>(sidx[i]) * d;
    const Real* xr = xv + static_cast<std::size_t>(ridx[i]) * d;
    Real* orow = ov + static_cast<std::size_t>(i) * m;
    Real acc = Real(0);
    for (int j = 0; j < d; ++j) {
      const Real t = (xr[j] - xs[j]) * inv_radius;
      orow[j] = t;
      acc += t * t;
    }
    orow[d] = std::sqrt(acc + eps);
  });
  return out;
}

Tensor layer_norm(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                  Real eps) {
  const int n = a.rows(), m = a.cols();
  GNS_CHECK_MSG(gamma.rows() == 1 && gamma.cols() == m &&
                    beta.rows() == 1 && beta.cols() == m,
                "layer_norm affine params must be [1,C]");
  auto pa = a.ptr();
  auto pg = gamma.ptr();
  auto pb = beta.ptr();
  Tensor out = make_op_result(
      n, m, {pa, pg, pb}, [pa, pg, pb, n, m, eps](TensorImpl& self) {
        const bool need_a = pa->requires_grad;
        const bool need_g = pg->requires_grad;
        const bool need_b = pb->requires_grad;
        if (!(need_a || need_g || need_b)) return;
        if (need_a) pa->ensure_grad();
        if (need_g) pg->ensure_grad();
        if (need_b) pb->ensure_grad();
        const Real* av = pa->data.data();
        const Real* gv = pg->data.data();
        std::vector<Real> xhat(m);
        // Rows are independent but gamma/beta grads are shared; keep the
        // loop serial (n·m is small on the GNS's per-layer tensors).
        for (int i = 0; i < n; ++i) {
          const Real* x = av + static_cast<std::size_t>(i) * m;
          const Real* go = self.grad.data() + static_cast<std::size_t>(i) * m;
          Real mu = Real(0);
          for (int j = 0; j < m; ++j) mu += x[j];
          mu /= m;
          Real var = Real(0);
          for (int j = 0; j < m; ++j) var += (x[j] - mu) * (x[j] - mu);
          var /= m;
          const Real inv_s = Real(1) / std::sqrt(var + eps);
          for (int j = 0; j < m; ++j) xhat[j] = (x[j] - mu) * inv_s;
          if (need_g || need_b) {
            for (int j = 0; j < m; ++j) {
              if (need_g) pg->grad[j] += go[j] * xhat[j];
              if (need_b) pb->grad[j] += go[j];
            }
          }
          if (need_a) {
            Real mean_gp = Real(0), mean_gpx = Real(0);
            for (int j = 0; j < m; ++j) {
              const Real gp = go[j] * gv[j];
              mean_gp += gp;
              mean_gpx += gp * xhat[j];
            }
            mean_gp /= m;
            mean_gpx /= m;
            Real* ga = pa->grad.data() + static_cast<std::size_t>(i) * m;
            for (int j = 0; j < m; ++j) {
              const Real gp = go[j] * gv[j];
              ga[j] += inv_s * (gp - mean_gp - xhat[j] * mean_gpx);
            }
          }
        }
      });
  const Real* av = a.data();
  const Real* gv = gamma.data();
  const Real* bv = beta.data();
  Real* ov = out.data();
  exec::parallel_for(n, parallel_worthwhile(n, m), [&](std::int64_t i) {
    const Real* x = av + static_cast<std::size_t>(i) * m;
    Real* y = ov + static_cast<std::size_t>(i) * m;
    // The mu/var reductions stay scalar — vectorizing a sum reassociates
    // it; only the per-element affine pass below is SIMD.
    Real mu = Real(0);
    for (int j = 0; j < m; ++j) mu += x[j];
    mu /= m;
    Real var = Real(0);
    for (int j = 0; j < m; ++j) var += (x[j] - mu) * (x[j] - mu);
    var /= m;
    const Real inv_s = Real(1) / std::sqrt(var + eps);
    simd::norm_affine(y, x, gv, bv, mu, inv_s, static_cast<std::size_t>(m));
  });
  return out;
}

}  // namespace gns::ad
