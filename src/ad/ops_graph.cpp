#include <cmath>

#include "ad/ops.hpp"
#include "obs/trace.hpp"

namespace gns::ad {

Tensor concat_cols(const std::vector<Tensor>& parts) {
  GNS_CHECK_MSG(!parts.empty(), "concat_cols of zero tensors");
  const int n = parts.front().rows();
  int total_cols = 0;
  std::vector<TensorImplPtr> parents;
  parents.reserve(parts.size());
  std::vector<int> offsets;
  offsets.reserve(parts.size());
  for (const auto& p : parts) {
    GNS_CHECK_MSG(p.rows() == n, "concat_cols row mismatch: " << p.rows()
                                                              << " vs " << n);
    offsets.push_back(total_cols);
    total_cols += p.cols();
    parents.push_back(p.ptr());
  }
  auto parents_copy = parents;
  auto offsets_copy = offsets;
  const int m = total_cols;
  Tensor out = make_op_result(
      n, m, std::move(parents),
      [parents_copy, offsets_copy, n, m](TensorImpl& self) {
        for (std::size_t k = 0; k < parents_copy.size(); ++k) {
          auto& p = parents_copy[k];
          if (!p->requires_grad) continue;
          p->ensure_grad();
          const int pc = p->cols;
          const int off = offsets_copy[k];
          for (int i = 0; i < n; ++i)
            for (int j = 0; j < pc; ++j)
              p->grad[static_cast<std::size_t>(i) * pc + j] +=
                  self.grad[static_cast<std::size_t>(i) * m + off + j];
        }
      });
  Real* ov = out.data();
  for (std::size_t k = 0; k < parts.size(); ++k) {
    const Tensor& p = parts[k];
    const int pc = p.cols();
    const int off = offsets[k];
    const Real* pv = p.data();
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < pc; ++j)
        ov[static_cast<std::size_t>(i) * m + off + j] =
            pv[static_cast<std::size_t>(i) * pc + j];
  }
  return out;
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  GNS_CHECK_MSG(!parts.empty(), "concat_rows of zero tensors");
  const int m = parts.front().cols();
  int total_rows = 0;
  std::vector<TensorImplPtr> parents;
  std::vector<int> offsets;
  for (const auto& p : parts) {
    GNS_CHECK_MSG(p.cols() == m, "concat_rows column mismatch: " << p.cols()
                                                                 << " vs "
                                                                 << m);
    offsets.push_back(total_rows);
    total_rows += p.rows();
    parents.push_back(p.ptr());
  }
  auto parents_copy = parents;
  auto offsets_copy = offsets;
  Tensor out = make_op_result(
      total_rows, m, std::move(parents),
      [parents_copy, offsets_copy, m](TensorImpl& self) {
        for (std::size_t k = 0; k < parents_copy.size(); ++k) {
          auto& p = parents_copy[k];
          if (!p->requires_grad) continue;
          p->ensure_grad();
          const std::size_t count =
              static_cast<std::size_t>(p->rows) * m;
          const Real* src = self.grad.data() +
                            static_cast<std::size_t>(offsets_copy[k]) * m;
          for (std::size_t i = 0; i < count; ++i) p->grad[i] += src[i];
        }
      });
  Real* ov = out.data();
  for (std::size_t k = 0; k < parts.size(); ++k) {
    const auto& v = parts[k].vec();
    std::copy(v.begin(), v.end(),
              ov + static_cast<std::size_t>(offsets[k]) * m);
  }
  return out;
}

Tensor slice_cols(const Tensor& a, int start, int len) {
  GNS_CHECK_MSG(start >= 0 && len > 0 && start + len <= a.cols(),
                "slice_cols out of range: [" << start << ", " << start + len
                                             << ") of " << a.cols());
  const int n = a.rows(), m = a.cols();
  auto pa = a.ptr();
  Tensor out = make_op_result(
      n, len, {pa}, [pa, start, len, n, m](TensorImpl& self) {
        if (!pa->requires_grad) return;
        pa->ensure_grad();
        for (int i = 0; i < n; ++i)
          for (int j = 0; j < len; ++j)
            pa->grad[static_cast<std::size_t>(i) * m + start + j] +=
                self.grad[static_cast<std::size_t>(i) * len + j];
      });
  const Real* av = a.data();
  Real* ov = out.data();
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < len; ++j)
      ov[static_cast<std::size_t>(i) * len + j] =
          av[static_cast<std::size_t>(i) * m + start + j];
  return out;
}

Tensor slice_rows(const Tensor& a, int start, int len) {
  GNS_CHECK_MSG(start >= 0 && len > 0 && start + len <= a.rows(),
                "slice_rows out of range: [" << start << ", " << start + len
                                             << ") of " << a.rows());
  const int m = a.cols();
  auto pa = a.ptr();
  Tensor out = make_op_result(
      len, m, {pa}, [pa, start, len, m](TensorImpl& self) {
        if (!pa->requires_grad) return;
        pa->ensure_grad();
        Real* dst = pa->grad.data() + static_cast<std::size_t>(start) * m;
        const std::size_t count = static_cast<std::size_t>(len) * m;
        for (std::size_t i = 0; i < count; ++i) dst[i] += self.grad[i];
      });
  const Real* src = a.data() + static_cast<std::size_t>(start) * m;
  std::copy(src, src + static_cast<std::size_t>(len) * m, out.data());
  return out;
}

Tensor gather_rows(const Tensor& a, const std::vector<int>& index) {
  GNS_TRACE_SCOPE("ad.ops.gather_rows");
  GNS_CHECK_MSG(!index.empty(), "gather_rows with empty index");
  const int n = a.rows(), m = a.cols();
  for (int idx : index)
    GNS_CHECK_MSG(idx >= 0 && idx < n, "gather_rows index " << idx
                                                            << " out of [0,"
                                                            << n << ")");
  const int e = static_cast<int>(index.size());
  auto pa = a.ptr();
  auto idx_copy = index;
  Tensor out = make_op_result(
      e, m, {pa}, [pa, idx_copy, e, m](TensorImpl& self) {
        if (!pa->requires_grad) return;
        pa->ensure_grad();
        // Serial: repeated indices make parallel accumulation racy.
        for (int i = 0; i < e; ++i) {
          Real* dst =
              pa->grad.data() + static_cast<std::size_t>(idx_copy[i]) * m;
          const Real* src = self.grad.data() + static_cast<std::size_t>(i) * m;
          for (int j = 0; j < m; ++j) dst[j] += src[j];
        }
      });
  const Real* av = a.data();
  Real* ov = out.data();
#pragma omp parallel for schedule(static) if (static_cast<std::int64_t>(e) * m > 1 << 15)
  for (int i = 0; i < e; ++i) {
    const Real* src = av + static_cast<std::size_t>(index[i]) * m;
    Real* dst = ov + static_cast<std::size_t>(i) * m;
    for (int j = 0; j < m; ++j) dst[j] = src[j];
  }
  return out;
}

Tensor scatter_add_rows(const Tensor& a, const std::vector<int>& index,
                        int num_rows) {
  GNS_TRACE_SCOPE("ad.ops.scatter_add_rows");
  GNS_CHECK_MSG(static_cast<int>(index.size()) == a.rows(),
                "scatter_add_rows needs one index per input row");
  GNS_CHECK(num_rows > 0);
  const int e = a.rows(), m = a.cols();
  for (int idx : index)
    GNS_CHECK_MSG(idx >= 0 && idx < num_rows,
                  "scatter index " << idx << " out of [0," << num_rows << ")");
  auto pa = a.ptr();
  auto idx_copy = index;
  Tensor out = make_op_result(
      num_rows, m, {pa}, [pa, idx_copy, e, m](TensorImpl& self) {
        if (!pa->requires_grad) return;
        pa->ensure_grad();
        // Backward of scatter-add is a gather: embarrassingly parallel.
#pragma omp parallel for schedule(static) if (static_cast<std::int64_t>(e) * m > 1 << 15)
        for (int i = 0; i < e; ++i) {
          const Real* src =
              self.grad.data() + static_cast<std::size_t>(idx_copy[i]) * m;
          Real* dst = pa->grad.data() + static_cast<std::size_t>(i) * m;
          for (int j = 0; j < m; ++j) dst[j] += src[j];
        }
      });
  std::fill(out.vec().begin(), out.vec().end(), Real(0));
  const Real* av = a.data();
  Real* ov = out.data();
  for (int i = 0; i < e; ++i) {
    Real* dst = ov + static_cast<std::size_t>(index[i]) * m;
    const Real* src = av + static_cast<std::size_t>(i) * m;
    for (int j = 0; j < m; ++j) dst[j] += src[j];
  }
  return out;
}

Tensor segment_softmax(const Tensor& scores, const std::vector<int>& segment,
                       int num_segments) {
  GNS_CHECK_MSG(scores.cols() == 1, "segment_softmax expects [E,1] scores");
  GNS_CHECK_MSG(static_cast<int>(segment.size()) == scores.rows(),
                "segment_softmax needs one segment id per score");
  const int e = scores.rows();
  for (int s : segment)
    GNS_CHECK_MSG(s >= 0 && s < num_segments, "segment id out of range");
  auto pa = scores.ptr();
  auto seg = segment;
  Tensor out = make_op_result(
      e, 1, {pa}, [pa, seg, e, num_segments](TensorImpl& self) {
        if (!pa->requires_grad) return;
        pa->ensure_grad();
        // d softmax_i / d score_j (same segment) = y_i (δ_ij − y_j).
        // Accumulate per-segment dot(g, y) first.
        std::vector<Real> dot(num_segments, Real(0));
        for (int i = 0; i < e; ++i)
          dot[seg[i]] += self.grad[i] * self.data[i];
        for (int i = 0; i < e; ++i)
          pa->grad[i] += self.data[i] * (self.grad[i] - dot[seg[i]]);
      });
  // Numerically-stable forward: subtract per-segment max.
  std::vector<Real> seg_max(num_segments,
                            -std::numeric_limits<Real>::infinity());
  const Real* sv = scores.data();
  for (int i = 0; i < e; ++i)
    seg_max[segment[i]] = std::max(seg_max[segment[i]], sv[i]);
  std::vector<Real> seg_sum(num_segments, Real(0));
  Real* ov = out.data();
  for (int i = 0; i < e; ++i) {
    ov[i] = std::exp(sv[i] - seg_max[segment[i]]);
    seg_sum[segment[i]] += ov[i];
  }
  for (int i = 0; i < e; ++i) ov[i] /= seg_sum[segment[i]];
  return out;
}

Tensor layer_norm(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                  Real eps) {
  const int n = a.rows(), m = a.cols();
  GNS_CHECK_MSG(gamma.rows() == 1 && gamma.cols() == m &&
                    beta.rows() == 1 && beta.cols() == m,
                "layer_norm affine params must be [1,C]");
  auto pa = a.ptr();
  auto pg = gamma.ptr();
  auto pb = beta.ptr();
  Tensor out = make_op_result(
      n, m, {pa, pg, pb}, [pa, pg, pb, n, m, eps](TensorImpl& self) {
        const bool need_a = pa->requires_grad;
        const bool need_g = pg->requires_grad;
        const bool need_b = pb->requires_grad;
        if (!(need_a || need_g || need_b)) return;
        if (need_a) pa->ensure_grad();
        if (need_g) pg->ensure_grad();
        if (need_b) pb->ensure_grad();
        const Real* av = pa->data.data();
        const Real* gv = pg->data.data();
        std::vector<Real> xhat(m);
        // Rows are independent but gamma/beta grads are shared; keep the
        // loop serial (n·m is small on the GNS's per-layer tensors).
        for (int i = 0; i < n; ++i) {
          const Real* x = av + static_cast<std::size_t>(i) * m;
          const Real* go = self.grad.data() + static_cast<std::size_t>(i) * m;
          Real mu = Real(0);
          for (int j = 0; j < m; ++j) mu += x[j];
          mu /= m;
          Real var = Real(0);
          for (int j = 0; j < m; ++j) var += (x[j] - mu) * (x[j] - mu);
          var /= m;
          const Real inv_s = Real(1) / std::sqrt(var + eps);
          for (int j = 0; j < m; ++j) xhat[j] = (x[j] - mu) * inv_s;
          if (need_g || need_b) {
            for (int j = 0; j < m; ++j) {
              if (need_g) pg->grad[j] += go[j] * xhat[j];
              if (need_b) pb->grad[j] += go[j];
            }
          }
          if (need_a) {
            Real mean_gp = Real(0), mean_gpx = Real(0);
            for (int j = 0; j < m; ++j) {
              const Real gp = go[j] * gv[j];
              mean_gp += gp;
              mean_gpx += gp * xhat[j];
            }
            mean_gp /= m;
            mean_gpx /= m;
            Real* ga = pa->grad.data() + static_cast<std::size_t>(i) * m;
            for (int j = 0; j < m; ++j) {
              const Real gp = go[j] * gv[j];
              ga[j] += inv_s * (gp - mean_gp - xhat[j] * mean_gpx);
            }
          }
        }
      });
  const Real* av = a.data();
  const Real* gv = gamma.data();
  const Real* bv = beta.data();
  Real* ov = out.data();
#pragma omp parallel for schedule(static) if (static_cast<std::int64_t>(n) * m > 1 << 15)
  for (int i = 0; i < n; ++i) {
    const Real* x = av + static_cast<std::size_t>(i) * m;
    Real* y = ov + static_cast<std::size_t>(i) * m;
    Real mu = Real(0);
    for (int j = 0; j < m; ++j) mu += x[j];
    mu /= m;
    Real var = Real(0);
    for (int j = 0; j < m; ++j) var += (x[j] - mu) * (x[j] - mu);
    var /= m;
    const Real inv_s = Real(1) / std::sqrt(var + eps);
    for (int j = 0; j < m; ++j) y[j] = gv[j] * (x[j] - mu) * inv_s + bv[j];
  }
  return out;
}

}  // namespace gns::ad
