#include "graph/batch.hpp"

namespace gns::graph {

std::vector<int> GraphBatch::node_segments() const {
  std::vector<int> seg(static_cast<std::size_t>(merged.num_nodes));
  for (int g = 0; g < num_graphs(); ++g) {
    for (int i = node_offset[g]; i < node_offset[g + 1]; ++i) seg[i] = g;
  }
  return seg;
}

GraphBatch batch_graphs(const std::vector<const Graph*>& graphs) {
  GNS_CHECK_MSG(!graphs.empty(), "batch_graphs of zero graphs");
  GraphBatch batch;
  batch.node_offset.reserve(graphs.size() + 1);
  batch.edge_offset.reserve(graphs.size() + 1);
  batch.node_offset.push_back(0);
  batch.edge_offset.push_back(0);
  std::size_t total_edges = 0;
  for (const Graph* g : graphs) {
    GNS_CHECK_MSG(g != nullptr, "batch_graphs got a null graph");
    batch.node_offset.push_back(batch.node_offset.back() + g->num_nodes);
    batch.edge_offset.push_back(batch.edge_offset.back() + g->num_edges());
    total_edges += g->senders.size();
  }
  batch.merged.num_nodes = batch.node_offset.back();
  batch.merged.senders.reserve(total_edges);
  batch.merged.receivers.reserve(total_edges);
  for (std::size_t k = 0; k < graphs.size(); ++k) {
    const Graph& g = *graphs[k];
    const int off = batch.node_offset[k];
    for (int s : g.senders) {
      GNS_DCHECK(s >= 0 && s < g.num_nodes);
      batch.merged.senders.push_back(s + off);
    }
    for (int r : g.receivers) {
      GNS_DCHECK(r >= 0 && r < g.num_nodes);
      batch.merged.receivers.push_back(r + off);
    }
  }
  return batch;
}

GraphBatch batch_graphs(const std::vector<Graph>& graphs) {
  std::vector<const Graph*> ptrs;
  ptrs.reserve(graphs.size());
  for (const Graph& g : graphs) ptrs.push_back(&g);
  return batch_graphs(ptrs);
}

}  // namespace gns::graph
