#pragma once

/// \file graph.hpp
/// Directed graph connectivity used by the GNS and MeshNet: flat
/// sender/receiver index arrays in the layout the autograd graph ops
/// (gather_rows / scatter_add_rows / segment_softmax) consume directly.

#include <vector>

#include "util/check.hpp"

namespace gns::graph {

/// Edge list of a directed graph over `num_nodes` nodes. Edge k goes from
/// senders[k] to receivers[k]; messages flow sender -> receiver.
struct Graph {
  int num_nodes = 0;
  std::vector<int> senders;
  std::vector<int> receivers;

  [[nodiscard]] int num_edges() const {
    return static_cast<int>(senders.size());
  }

  void add_edge(int sender, int receiver) {
    GNS_DCHECK(sender >= 0 && sender < num_nodes);
    GNS_DCHECK(receiver >= 0 && receiver < num_nodes);
    senders.push_back(sender);
    receivers.push_back(receiver);
  }

  /// In-degree of every node (used by tests and mean-aggregation).
  [[nodiscard]] std::vector<int> in_degree() const {
    std::vector<int> deg(num_nodes, 0);
    for (int r : receivers) ++deg[r];
    return deg;
  }
};

}  // namespace gns::graph
