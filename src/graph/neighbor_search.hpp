#pragma once

/// \file neighbor_search.hpp
/// Fixed-radius neighbor search in 2-D via a uniform cell list (cell size =
/// search radius, 3x3 stencil). This is the graph-construction kernel that
/// runs every GNS rollout step, so it is allocation-light and OpenMP
/// parallel over query particles.

#include <array>
#include <vector>

#include "graph/graph.hpp"

namespace gns::graph {

/// 2-D point in the particle state layout used across the library.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

/// Reusable cell-list accelerator. `build` hashes particles into cells;
/// `radius_graph` emits the directed edge list of all ordered pairs within
/// `radius` (excluding self edges unless requested — GNS uses self edges
/// off because node features already carry self information).
///
/// With `skin > 0` the structure becomes a Verlet skin list: cells are
/// sized `radius + skin` and `maybe_rebuild` skips the rebuild while no
/// particle has moved more than `skin/2` from its position at build time.
/// Queries always filter pairs at the exact `radius` against *current*
/// positions, so the emitted edge list is identical (element for element)
/// to a freshly built list — reuse changes cost, never results. The
/// skin/2 bound is the classic Verlet argument: if both endpoints moved at
/// most skin/2, any pair now within `radius` was within `radius + skin` at
/// build time and is therefore still covered by the 3x3 cell stencil.
class CellList {
 public:
  /// \param radius     search radius (cell edge length is radius + skin)
  /// \param domain_min lower corner of the indexable domain
  /// \param domain_max upper corner; particles outside are clamped to the
  ///                   boundary cells, so the search stays correct for
  ///                   slightly escaping particles (clamping is a 1-Lipschitz
  ///                   projection, so stencil coverage is preserved).
  /// \param skin       extra shell reused across steps; 0 disables reuse.
  CellList(double radius, Vec2 domain_min, Vec2 domain_max, double skin = 0.0);

  /// Rebuilds the cell structure for the given positions.
  void build(const std::vector<Vec2>& positions);

  /// Rebuilds only when required for correctness: on first use, when the
  /// particle count changed, or when some particle drifted more than
  /// skin/2 from its build-time position. Returns true when a rebuild
  /// happened. With skin == 0 this is equivalent to build().
  bool maybe_rebuild(const std::vector<Vec2>& positions);

  /// All ordered pairs (i, j), i != j (unless include_self), with
  /// |x_i - x_j| <= radius. Edge direction is sender=j, receiver=i —
  /// every node receives from its neighbors.
  [[nodiscard]] Graph radius_graph(const std::vector<Vec2>& positions,
                                   bool include_self = false) const;

  /// Neighbor indices of one query point (includes the point itself if it
  /// is in the built set and include_self).
  [[nodiscard]] std::vector<int> neighbors(const std::vector<Vec2>& positions,
                                           int query,
                                           bool include_self = false) const;

  [[nodiscard]] double radius() const { return radius_; }
  [[nodiscard]] double skin() const { return skin_; }

  /// Caller-owned point scratch that lives as long as the CellList (i.e.
  /// across the steps of a rollout). core::build_graph_cached fills it in
  /// place each step instead of allocating a fresh vector per call.
  [[nodiscard]] std::vector<Vec2>& points_scratch() {
    return points_scratch_;
  }

 private:
  [[nodiscard]] int cell_of(Vec2 p) const;
  [[nodiscard]] std::array<int, 2> cell_coords(Vec2 p) const;

  double radius_;
  double skin_;
  double cell_size_;
  Vec2 min_;
  int nx_ = 0;
  int ny_ = 0;
  // CSR layout: particle ids sorted by cell + per-cell start offsets.
  std::vector<int> cell_start_;
  std::vector<int> sorted_ids_;
  // Positions at the last build; tracked only when skin_ > 0 so
  // maybe_rebuild can bound per-particle drift.
  std::vector<Vec2> ref_positions_;
  // Verlet candidate pairs (skin_ > 0 only): CSR of neighbors within
  // radius + skin at build time, sender-sorted per receiver. While reuse
  // holds, queries distance-filter this list instead of re-scanning the
  // cell stencil — the actual O(pairs-in-shell) Verlet saving.
  std::vector<int> cand_start_;
  std::vector<int> cand_ids_;
  std::vector<Vec2> points_scratch_;
};

/// Convenience one-shot radius graph (builds a temporary CellList sized to
/// the positions' bounding box).
[[nodiscard]] Graph build_radius_graph(const std::vector<Vec2>& positions,
                                       double radius,
                                       bool include_self = false);

/// Brute-force O(N^2) reference used by tests to validate the cell list.
[[nodiscard]] Graph brute_force_radius_graph(
    const std::vector<Vec2>& positions, double radius,
    bool include_self = false);

/// Default Verlet skin for rollout cell lists, as a fraction of the
/// connectivity radius (skin = fraction * radius). 0 disables neighbor-list
/// reuse. Initialized from the GNS_SKIN environment variable (a real
/// number, e.g. "0.25"); deliberately a process-global knob rather than a
/// FeatureConfig field so the serialized model format stays unchanged.
[[nodiscard]] double default_skin_fraction();
void set_default_skin_fraction(double fraction);

}  // namespace gns::graph
