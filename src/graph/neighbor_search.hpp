#pragma once

/// \file neighbor_search.hpp
/// Fixed-radius neighbor search in 2-D via a uniform cell list (cell size =
/// search radius, 3x3 stencil). This is the graph-construction kernel that
/// runs every GNS rollout step, so it is allocation-light and OpenMP
/// parallel over query particles.

#include <array>
#include <vector>

#include "graph/graph.hpp"

namespace gns::graph {

/// 2-D point in the particle state layout used across the library.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

/// Reusable cell-list accelerator. `build` hashes particles into cells;
/// `radius_graph` emits the directed edge list of all ordered pairs within
/// `radius` (excluding self edges unless requested — GNS uses self edges
/// off because node features already carry self information).
class CellList {
 public:
  /// \param radius     search radius (also the cell edge length)
  /// \param domain_min lower corner of the indexable domain
  /// \param domain_max upper corner; particles outside are clamped to the
  ///                   boundary cells, so the search stays correct for
  ///                   slightly escaping particles.
  CellList(double radius, Vec2 domain_min, Vec2 domain_max);

  /// Rebuilds the cell structure for the given positions.
  void build(const std::vector<Vec2>& positions);

  /// All ordered pairs (i, j), i != j (unless include_self), with
  /// |x_i - x_j| <= radius. Edge direction is sender=j, receiver=i —
  /// every node receives from its neighbors.
  [[nodiscard]] Graph radius_graph(const std::vector<Vec2>& positions,
                                   bool include_self = false) const;

  /// Neighbor indices of one query point (includes the point itself if it
  /// is in the built set and include_self).
  [[nodiscard]] std::vector<int> neighbors(const std::vector<Vec2>& positions,
                                           int query,
                                           bool include_self = false) const;

  [[nodiscard]] double radius() const { return radius_; }

 private:
  [[nodiscard]] int cell_of(Vec2 p) const;
  [[nodiscard]] std::array<int, 2> cell_coords(Vec2 p) const;

  double radius_;
  Vec2 min_;
  int nx_ = 0;
  int ny_ = 0;
  // CSR layout: particle ids sorted by cell + per-cell start offsets.
  std::vector<int> cell_start_;
  std::vector<int> sorted_ids_;
};

/// Convenience one-shot radius graph (builds a temporary CellList sized to
/// the positions' bounding box).
[[nodiscard]] Graph build_radius_graph(const std::vector<Vec2>& positions,
                                       double radius,
                                       bool include_self = false);

/// Brute-force O(N^2) reference used by tests to validate the cell list.
[[nodiscard]] Graph brute_force_radius_graph(
    const std::vector<Vec2>& positions, double radius,
    bool include_self = false);

}  // namespace gns::graph
