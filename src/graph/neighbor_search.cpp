#include "graph/neighbor_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.hpp"

namespace gns::graph {

CellList::CellList(double radius, Vec2 domain_min, Vec2 domain_max)
    : radius_(radius), min_(domain_min) {
  GNS_CHECK_MSG(radius > 0.0, "cell list radius must be positive");
  GNS_CHECK_MSG(domain_max.x > domain_min.x && domain_max.y > domain_min.y,
                "cell list domain must have positive extent");
  nx_ = std::max(1, static_cast<int>(
                        std::ceil((domain_max.x - domain_min.x) / radius)));
  ny_ = std::max(1, static_cast<int>(
                        std::ceil((domain_max.y - domain_min.y) / radius)));
}

std::array<int, 2> CellList::cell_coords(Vec2 p) const {
  int cx = static_cast<int>(std::floor((p.x - min_.x) / radius_));
  int cy = static_cast<int>(std::floor((p.y - min_.y) / radius_));
  cx = std::clamp(cx, 0, nx_ - 1);
  cy = std::clamp(cy, 0, ny_ - 1);
  return {cx, cy};
}

int CellList::cell_of(Vec2 p) const {
  const auto [cx, cy] = cell_coords(p);
  return cy * nx_ + cx;
}

void CellList::build(const std::vector<Vec2>& positions) {
  GNS_TRACE_SCOPE("graph.neighbor_search.build");
  const int n = static_cast<int>(positions.size());
  const int num_cells = nx_ * ny_;
  // Counting sort of particle ids by cell.
  std::vector<int> counts(num_cells + 1, 0);
  std::vector<int> cell_id(n);
  for (int i = 0; i < n; ++i) {
    cell_id[i] = cell_of(positions[i]);
    ++counts[cell_id[i] + 1];
  }
  for (int c = 0; c < num_cells; ++c) counts[c + 1] += counts[c];
  cell_start_ = counts;
  sorted_ids_.assign(n, 0);
  std::vector<int> cursor(counts.begin(), counts.end() - 1);
  for (int i = 0; i < n; ++i) sorted_ids_[cursor[cell_id[i]]++] = i;
}

Graph CellList::radius_graph(const std::vector<Vec2>& positions,
                             bool include_self) const {
  GNS_TRACE_SCOPE("graph.neighbor_search.query");
  const int n = static_cast<int>(positions.size());
  GNS_CHECK_MSG(!cell_start_.empty(), "call build() before radius_graph()");
  Graph g;
  g.num_nodes = n;
  const double r2 = radius_ * radius_;

  // Pass 1 (parallel): per-particle neighbor lists into thread-local
  // buffers; pass 2 (serial): splice in particle order so the edge list is
  // deterministic regardless of thread count.
  std::vector<std::vector<int>> nbrs(n);
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n; ++i) {
    const auto [cx, cy] = cell_coords(positions[i]);
    auto& list = nbrs[i];
    for (int dy = -1; dy <= 1; ++dy) {
      const int yy = cy + dy;
      if (yy < 0 || yy >= ny_) continue;
      for (int dx = -1; dx <= 1; ++dx) {
        const int xx = cx + dx;
        if (xx < 0 || xx >= nx_) continue;
        const int cell = yy * nx_ + xx;
        for (int s = cell_start_[cell]; s < cell_start_[cell + 1]; ++s) {
          const int j = sorted_ids_[s];
          if (j == i && !include_self) continue;
          const double ddx = positions[i].x - positions[j].x;
          const double ddy = positions[i].y - positions[j].y;
          if (ddx * ddx + ddy * ddy <= r2) list.push_back(j);
        }
      }
    }
    std::sort(list.begin(), list.end());
  }
  std::size_t total = 0;
  for (const auto& list : nbrs) total += list.size();
  g.senders.reserve(total);
  g.receivers.reserve(total);
  for (int i = 0; i < n; ++i) {
    for (int j : nbrs[i]) {
      g.senders.push_back(j);
      g.receivers.push_back(i);
    }
  }
  return g;
}

std::vector<int> CellList::neighbors(const std::vector<Vec2>& positions,
                                     int query, bool include_self) const {
  GNS_CHECK(query >= 0 && query < static_cast<int>(positions.size()));
  std::vector<int> out;
  const double r2 = radius_ * radius_;
  const auto [cx, cy] = cell_coords(positions[query]);
  for (int dy = -1; dy <= 1; ++dy) {
    const int yy = cy + dy;
    if (yy < 0 || yy >= ny_) continue;
    for (int dx = -1; dx <= 1; ++dx) {
      const int xx = cx + dx;
      if (xx < 0 || xx >= nx_) continue;
      const int cell = yy * nx_ + xx;
      for (int s = cell_start_[cell]; s < cell_start_[cell + 1]; ++s) {
        const int j = sorted_ids_[s];
        if (j == query && !include_self) continue;
        const double ddx = positions[query].x - positions[j].x;
        const double ddy = positions[query].y - positions[j].y;
        if (ddx * ddx + ddy * ddy <= r2) out.push_back(j);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Graph build_radius_graph(const std::vector<Vec2>& positions, double radius,
                         bool include_self) {
  GNS_TRACE_SCOPE("graph.neighbor_search.total");
  static auto& total_ms =
      obs::MetricsRegistry::global().histogram("graph.neighbor_search_ms");
  const obs::ScopedHistogramTimer phase_timer(total_ms);
  if (positions.empty()) return Graph{};  // zero nodes, zero edges
  Vec2 lo{std::numeric_limits<double>::max(),
          std::numeric_limits<double>::max()};
  Vec2 hi{std::numeric_limits<double>::lowest(),
          std::numeric_limits<double>::lowest()};
  for (const auto& p : positions) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  // Pad so degenerate (collinear / single-point) inputs still index.
  hi.x = std::max(hi.x, lo.x + radius);
  hi.y = std::max(hi.y, lo.y + radius);
  CellList cells(radius, lo, hi);
  cells.build(positions);
  return cells.radius_graph(positions, include_self);
}

Graph brute_force_radius_graph(const std::vector<Vec2>& positions,
                               double radius, bool include_self) {
  const int n = static_cast<int>(positions.size());
  Graph g;
  g.num_nodes = n;
  const double r2 = radius * radius;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j && !include_self) continue;
      const double dx = positions[i].x - positions[j].x;
      const double dy = positions[i].y - positions[j].y;
      if (dx * dx + dy * dy <= r2) {
        g.senders.push_back(j);
        g.receivers.push_back(i);
      }
    }
  }
  return g;
}

}  // namespace gns::graph
