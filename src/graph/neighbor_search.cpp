#include "graph/neighbor_search.hpp"

#include "exec/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "obs/obs.hpp"

namespace gns::graph {

namespace {
// Encodes the skin fraction * 1e6 as an int; -1 = unset (read GNS_SKIN).
std::atomic<long long> g_skin_micro{-1};
}  // namespace

double default_skin_fraction() {
  long long s = g_skin_micro.load(std::memory_order_relaxed);
  if (s < 0) {
    const char* env = std::getenv("GNS_SKIN");
    double f = 0.0;
    if (env != nullptr && env[0] != '\0') f = std::atof(env);
    if (!(f > 0.0)) f = 0.0;
    s = static_cast<long long>(f * 1e6);
    g_skin_micro.store(s, std::memory_order_relaxed);
  }
  return static_cast<double>(s) * 1e-6;
}

void set_default_skin_fraction(double fraction) {
  if (!(fraction > 0.0)) fraction = 0.0;
  g_skin_micro.store(static_cast<long long>(fraction * 1e6),
                     std::memory_order_relaxed);
}

CellList::CellList(double radius, Vec2 domain_min, Vec2 domain_max,
                   double skin)
    : radius_(radius),
      skin_(skin > 0.0 ? skin : 0.0),
      cell_size_(radius + skin_),
      min_(domain_min) {
  GNS_CHECK_MSG(radius > 0.0, "cell list radius must be positive");
  GNS_CHECK_MSG(domain_max.x > domain_min.x && domain_max.y > domain_min.y,
                "cell list domain must have positive extent");
  nx_ = std::max(1, static_cast<int>(std::ceil(
                        (domain_max.x - domain_min.x) / cell_size_)));
  ny_ = std::max(1, static_cast<int>(std::ceil(
                        (domain_max.y - domain_min.y) / cell_size_)));
}

std::array<int, 2> CellList::cell_coords(Vec2 p) const {
  int cx = static_cast<int>(std::floor((p.x - min_.x) / cell_size_));
  int cy = static_cast<int>(std::floor((p.y - min_.y) / cell_size_));
  cx = std::clamp(cx, 0, nx_ - 1);
  cy = std::clamp(cy, 0, ny_ - 1);
  return {cx, cy};
}

int CellList::cell_of(Vec2 p) const {
  const auto [cx, cy] = cell_coords(p);
  return cy * nx_ + cx;
}

void CellList::build(const std::vector<Vec2>& positions) {
  GNS_TRACE_SCOPE("graph.neighbor_search.build");
  const int n = static_cast<int>(positions.size());
  const int num_cells = nx_ * ny_;
  // Counting sort of particle ids by cell.
  std::vector<int> counts(num_cells + 1, 0);
  std::vector<int> cell_id(n);
  for (int i = 0; i < n; ++i) {
    cell_id[i] = cell_of(positions[i]);
    ++counts[cell_id[i] + 1];
  }
  for (int c = 0; c < num_cells; ++c) counts[c + 1] += counts[c];
  cell_start_ = counts;
  sorted_ids_.assign(n, 0);
  std::vector<int> cursor(counts.begin(), counts.end() - 1);
  for (int i = 0; i < n; ++i) sorted_ids_[cursor[cell_id[i]]++] = i;
  if (skin_ > 0.0) {
    ref_positions_ = positions;
    // Candidate pairs within radius + skin (self included; queries filter
    // it out): every pair within `radius` at any reuse step is in here, by
    // the skin/2 displacement bound.
    const double rs = radius_ + skin_;
    const double rs2 = rs * rs;
    std::vector<std::vector<int>> cand(n);
    exec::parallel_for(n, true, [&](std::int64_t i) {
      const auto [cx, cy] = cell_coords(positions[i]);
      auto& list = cand[i];
      for (int dy = -1; dy <= 1; ++dy) {
        const int yy = cy + dy;
        if (yy < 0 || yy >= ny_) continue;
        for (int dx = -1; dx <= 1; ++dx) {
          const int xx = cx + dx;
          if (xx < 0 || xx >= nx_) continue;
          const int cell = yy * nx_ + xx;
          for (int s = cell_start_[cell]; s < cell_start_[cell + 1]; ++s) {
            const int j = sorted_ids_[s];
            const double ddx = positions[i].x - positions[j].x;
            const double ddy = positions[i].y - positions[j].y;
            if (ddx * ddx + ddy * ddy <= rs2) list.push_back(j);
          }
        }
      }
      std::sort(list.begin(), list.end());
    });
    cand_start_.assign(n + 1, 0);
    for (int i = 0; i < n; ++i)
      cand_start_[i + 1] =
          cand_start_[i] + static_cast<int>(cand[i].size());
    cand_ids_.resize(cand_start_[n]);
    for (int i = 0; i < n; ++i)
      std::copy(cand[i].begin(), cand[i].end(),
                cand_ids_.begin() + cand_start_[i]);
  }
}

bool CellList::maybe_rebuild(const std::vector<Vec2>& positions) {
  static auto& rebuilds =
      obs::MetricsRegistry::global().counter("graph.neighbor.rebuild");
  static auto& reuses =
      obs::MetricsRegistry::global().counter("graph.neighbor.reuse");
  const bool never_built = cell_start_.empty();
  bool stale = never_built || skin_ <= 0.0 ||
               ref_positions_.size() != positions.size();
  if (!stale) {
    // Reuse is safe while every particle is within skin/2 of where the
    // cells were built (see class comment for the bound).
    const double limit2 = (skin_ * 0.5) * (skin_ * 0.5);
    const int n = static_cast<int>(positions.size());
    for (int i = 0; i < n; ++i) {
      const double dx = positions[i].x - ref_positions_[i].x;
      const double dy = positions[i].y - ref_positions_[i].y;
      if (dx * dx + dy * dy > limit2) {
        stale = true;
        break;
      }
    }
  }
  if (stale) {
    build(positions);
    rebuilds.add();
    return true;
  }
  reuses.add();
  return false;
}

Graph CellList::radius_graph(const std::vector<Vec2>& positions,
                             bool include_self) const {
  GNS_TRACE_SCOPE("graph.neighbor_search.query");
  const int n = static_cast<int>(positions.size());
  GNS_CHECK_MSG(!cell_start_.empty(), "call build() before radius_graph()");
  Graph g;
  g.num_nodes = n;
  const double r2 = radius_ * radius_;

  // Pass 1 (parallel): per-particle neighbor lists into thread-local
  // buffers; pass 2 (serial): splice in particle order so the edge list is
  // deterministic regardless of thread count.
  std::vector<std::vector<int>> nbrs(n);
  if (skin_ > 0.0 &&
      cand_start_.size() == static_cast<std::size_t>(n) + 1) {
    // Verlet fast path: distance-filter the pre-sorted candidate pairs
    // (within radius + skin at build) at the exact radius against current
    // positions — the same edges the stencil scan below would produce.
    exec::parallel_for(n, true, [&](std::int64_t i) {
      auto& list = nbrs[i];
      for (int s = cand_start_[i]; s < cand_start_[i + 1]; ++s) {
        const int j = cand_ids_[s];
        if (j == i && !include_self) continue;
        const double ddx = positions[i].x - positions[j].x;
        const double ddy = positions[i].y - positions[j].y;
        if (ddx * ddx + ddy * ddy <= r2) list.push_back(j);
      }
    });
  } else {
    exec::parallel_for(n, true, [&](std::int64_t i) {
      const auto [cx, cy] = cell_coords(positions[i]);
      auto& list = nbrs[i];
      for (int dy = -1; dy <= 1; ++dy) {
        const int yy = cy + dy;
        if (yy < 0 || yy >= ny_) continue;
        for (int dx = -1; dx <= 1; ++dx) {
          const int xx = cx + dx;
          if (xx < 0 || xx >= nx_) continue;
          const int cell = yy * nx_ + xx;
          for (int s = cell_start_[cell]; s < cell_start_[cell + 1]; ++s) {
            const int j = sorted_ids_[s];
            if (j == i && !include_self) continue;
            const double ddx = positions[i].x - positions[j].x;
            const double ddy = positions[i].y - positions[j].y;
            if (ddx * ddx + ddy * ddy <= r2) list.push_back(j);
          }
        }
      }
      std::sort(list.begin(), list.end());
    });
  }
  std::size_t total = 0;
  for (const auto& list : nbrs) total += list.size();
  g.senders.reserve(total);
  g.receivers.reserve(total);
  for (int i = 0; i < n; ++i) {
    for (int j : nbrs[i]) {
      g.senders.push_back(j);
      g.receivers.push_back(i);
    }
  }
  return g;
}

std::vector<int> CellList::neighbors(const std::vector<Vec2>& positions,
                                     int query, bool include_self) const {
  GNS_CHECK(query >= 0 && query < static_cast<int>(positions.size()));
  std::vector<int> out;
  const double r2 = radius_ * radius_;
  const auto [cx, cy] = cell_coords(positions[query]);
  for (int dy = -1; dy <= 1; ++dy) {
    const int yy = cy + dy;
    if (yy < 0 || yy >= ny_) continue;
    for (int dx = -1; dx <= 1; ++dx) {
      const int xx = cx + dx;
      if (xx < 0 || xx >= nx_) continue;
      const int cell = yy * nx_ + xx;
      for (int s = cell_start_[cell]; s < cell_start_[cell + 1]; ++s) {
        const int j = sorted_ids_[s];
        if (j == query && !include_self) continue;
        const double ddx = positions[query].x - positions[j].x;
        const double ddy = positions[query].y - positions[j].y;
        if (ddx * ddx + ddy * ddy <= r2) out.push_back(j);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Graph build_radius_graph(const std::vector<Vec2>& positions, double radius,
                         bool include_self) {
  GNS_TRACE_SCOPE("graph.neighbor_search.total");
  static auto& total_ms =
      obs::MetricsRegistry::global().histogram("graph.neighbor_search_ms");
  const obs::ScopedHistogramTimer phase_timer(total_ms);
  if (positions.empty()) return Graph{};  // zero nodes, zero edges
  Vec2 lo{std::numeric_limits<double>::max(),
          std::numeric_limits<double>::max()};
  Vec2 hi{std::numeric_limits<double>::lowest(),
          std::numeric_limits<double>::lowest()};
  for (const auto& p : positions) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  // Pad so degenerate (collinear / single-point) inputs still index.
  hi.x = std::max(hi.x, lo.x + radius);
  hi.y = std::max(hi.y, lo.y + radius);
  CellList cells(radius, lo, hi);
  cells.build(positions);
  return cells.radius_graph(positions, include_self);
}

Graph brute_force_radius_graph(const std::vector<Vec2>& positions,
                               double radius, bool include_self) {
  const int n = static_cast<int>(positions.size());
  Graph g;
  g.num_nodes = n;
  const double r2 = radius * radius;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j && !include_self) continue;
      const double dx = positions[i].x - positions[j].x;
      const double dy = positions[i].y - positions[j].y;
      if (dx * dx + dy * dy <= r2) {
        g.senders.push_back(j);
        g.receivers.push_back(i);
      }
    }
  }
  return g;
}

}  // namespace gns::graph
