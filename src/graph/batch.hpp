#pragma once

/// \file batch.hpp
/// Block-diagonal graph batching: merges B independent particle graphs into
/// one graph whose edge indices are offset per member, so a single GNS
/// forward pass (one encoder/processor/decoder sweep over the concatenated
/// node/edge tensors) steps B trajectories at once. Because every autograd
/// graph op (gather/scatter/segment_softmax) is row- or segment-local, the
/// batched forward is bit-identical per row to B independent forwards —
/// tests/test_batching.cpp pins that equivalence.

#include <vector>

#include "graph/graph.hpp"

namespace gns::graph {

/// A block-diagonal merge of B graphs plus the segmentation needed to
/// scatter results back: `merged` is one Graph over the union of nodes
/// (member g's nodes occupy rows [node_offset[g], node_offset[g+1])), and
/// its edge list is member 0's edges, then member 1's, ... with sender /
/// receiver indices shifted by the member's node offset. Edge order within
/// a member is preserved, so per-receiver aggregation order — and therefore
/// floating-point results — match the unbatched graphs exactly.
struct GraphBatch {
  Graph merged;
  std::vector<int> node_offset;  ///< size B+1, prefix sums of member nodes
  std::vector<int> edge_offset;  ///< size B+1, prefix sums of member edges

  [[nodiscard]] int num_graphs() const {
    return static_cast<int>(node_offset.size()) - 1;
  }
  [[nodiscard]] int nodes_of(int g) const {
    return node_offset[g + 1] - node_offset[g];
  }
  [[nodiscard]] int edges_of(int g) const {
    return edge_offset[g + 1] - edge_offset[g];
  }

  /// node -> member id, length merged.num_nodes (for segmented reductions).
  [[nodiscard]] std::vector<int> node_segments() const;
};

/// Merges the given graphs into one block-diagonal graph. Members may have
/// different node/edge counts; zero-edge members are allowed here (callers
/// that require edges, like the GNS forward, check per member).
[[nodiscard]] GraphBatch batch_graphs(const std::vector<const Graph*>& graphs);
[[nodiscard]] GraphBatch batch_graphs(const std::vector<Graph>& graphs);

}  // namespace gns::graph
