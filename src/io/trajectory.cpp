#include "io/trajectory.hpp"

#include <cmath>
#include <cstdint>
#include <fstream>

namespace gns::io {

NormalizationStats compute_stats(const Dataset& dataset, double std_floor) {
  GNS_CHECK_MSG(dataset.size() > 0, "compute_stats on empty dataset");
  const int dim = dataset.trajectories.front().dim;
  NormalizationStats stats;
  stats.vel_mean.assign(dim, 0.0);
  stats.vel_std.assign(dim, 0.0);
  stats.acc_mean.assign(dim, 0.0);
  stats.acc_std.assign(dim, 0.0);

  // Two-pass: means first, then variances (numerically safe and simple).
  std::vector<double> vsum(dim, 0.0), asum(dim, 0.0);
  std::int64_t vcount = 0, acount = 0;
  for (const auto& traj : dataset.trajectories) {
    GNS_CHECK_MSG(traj.dim == dim, "mixed-dimension dataset");
    for (int t = 1; t < traj.num_frames(); ++t) {
      for (int p = 0; p < traj.num_particles; ++p) {
        for (int d = 0; d < dim; ++d) {
          const double v = traj.position(t, p, d) - traj.position(t - 1, p, d);
          vsum[d] += v;
        }
      }
      vcount += traj.num_particles;
    }
    for (int t = 1; t + 1 < traj.num_frames(); ++t) {
      for (int p = 0; p < traj.num_particles; ++p) {
        for (int d = 0; d < dim; ++d) {
          const double a = traj.position(t + 1, p, d) -
                           2.0 * traj.position(t, p, d) +
                           traj.position(t - 1, p, d);
          asum[d] += a;
        }
      }
      acount += traj.num_particles;
    }
  }
  GNS_CHECK_MSG(vcount > 0 && acount > 0,
                "dataset too short for finite differences");
  for (int d = 0; d < dim; ++d) {
    stats.vel_mean[d] = vsum[d] / static_cast<double>(vcount);
    stats.acc_mean[d] = asum[d] / static_cast<double>(acount);
  }

  std::vector<double> vsq(dim, 0.0), asq(dim, 0.0);
  for (const auto& traj : dataset.trajectories) {
    for (int t = 1; t < traj.num_frames(); ++t) {
      for (int p = 0; p < traj.num_particles; ++p) {
        for (int d = 0; d < dim; ++d) {
          const double v = traj.position(t, p, d) -
                           traj.position(t - 1, p, d) - stats.vel_mean[d];
          vsq[d] += v * v;
        }
      }
    }
    for (int t = 1; t + 1 < traj.num_frames(); ++t) {
      for (int p = 0; p < traj.num_particles; ++p) {
        for (int d = 0; d < dim; ++d) {
          const double a = traj.position(t + 1, p, d) -
                           2.0 * traj.position(t, p, d) +
                           traj.position(t - 1, p, d) - stats.acc_mean[d];
          asq[d] += a * a;
        }
      }
    }
  }
  for (int d = 0; d < dim; ++d) {
    stats.vel_std[d] = std::max(
        std::sqrt(vsq[d] / static_cast<double>(vcount)), std_floor);
    stats.acc_std[d] = std::max(
        std::sqrt(asq[d] / static_cast<double>(acount)), std_floor);
  }
  return stats;
}

namespace {

constexpr std::uint32_t kMagic = 0x474e5354;  // "GNST"
constexpr std::uint32_t kVersion = 2;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  GNS_CHECK_MSG(in.good(), "trajectory file truncated");
  return value;
}

void write_doubles(std::ofstream& out, const std::vector<double>& v) {
  write_pod<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

std::vector<double> read_doubles(std::ifstream& in) {
  const auto n = read_pod<std::uint64_t>(in);
  std::vector<double> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  GNS_CHECK_MSG(in.good(), "trajectory file truncated");
  return v;
}

void write_one(std::ofstream& out, const Trajectory& traj) {
  write_pod<std::int32_t>(out, traj.dim);
  write_pod<std::int32_t>(out, traj.num_particles);
  write_pod<double>(out, traj.material_param);
  write_doubles(out, traj.domain_lo);
  write_doubles(out, traj.domain_hi);
  write_pod<std::int32_t>(out, traj.attr_dim);
  write_doubles(out, traj.node_attrs);
  write_pod<std::uint64_t>(out, traj.frames.size());
  for (const auto& f : traj.frames) write_doubles(out, f);
}

Trajectory read_one(std::ifstream& in) {
  Trajectory traj;
  traj.dim = read_pod<std::int32_t>(in);
  traj.num_particles = read_pod<std::int32_t>(in);
  GNS_CHECK_MSG(traj.dim > 0 && traj.num_particles > 0,
                "corrupt trajectory header");
  traj.material_param = read_pod<double>(in);
  traj.domain_lo = read_doubles(in);
  traj.domain_hi = read_doubles(in);
  traj.attr_dim = read_pod<std::int32_t>(in);
  traj.node_attrs = read_doubles(in);
  GNS_CHECK_MSG(static_cast<int>(traj.node_attrs.size()) ==
                    traj.attr_dim * traj.num_particles,
                "corrupt node attribute block");
  const auto frames = read_pod<std::uint64_t>(in);
  traj.frames.reserve(frames);
  for (std::uint64_t t = 0; t < frames; ++t) {
    auto f = read_doubles(in);
    GNS_CHECK_MSG(static_cast<int>(f.size()) ==
                      traj.num_particles * traj.dim,
                  "corrupt trajectory frame");
    traj.frames.push_back(std::move(f));
  }
  return traj;
}

}  // namespace

void save_trajectory(const Trajectory& traj, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GNS_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod<std::uint64_t>(out, 1);
  write_one(out, traj);
}

Trajectory load_trajectory(const std::string& path) {
  Dataset ds = load_dataset(path);
  GNS_CHECK_MSG(ds.size() == 1, path << " holds a dataset, not a trajectory");
  return std::move(ds.trajectories.front());
}

void save_dataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GNS_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod<std::uint64_t>(out, dataset.trajectories.size());
  for (const auto& t : dataset.trajectories) write_one(out, t);
}

Dataset load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GNS_CHECK_MSG(in.good(), "cannot open " << path);
  GNS_CHECK_MSG(read_pod<std::uint32_t>(in) == kMagic,
                path << " is not a GNS trajectory file");
  GNS_CHECK_MSG(read_pod<std::uint32_t>(in) == kVersion,
                "unsupported trajectory file version");
  const auto n = read_pod<std::uint64_t>(in);
  Dataset ds;
  ds.trajectories.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    ds.trajectories.push_back(read_one(in));
  return ds;
}

}  // namespace gns::io
