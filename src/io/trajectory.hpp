#pragma once

/// \file trajectory.hpp
/// Trajectory containers and datasets: the interchange format between the
/// physics substrates (MPM, n-body, CFD) and the learned simulators.
/// A trajectory stores particle positions at a fixed frame interval (the
/// GNS frame time, typically many MPM substeps per frame) plus per-
/// trajectory context such as the material parameter φ that the inverse
/// problem differentiates with respect to.

#include <string>
#include <vector>

#include "util/check.hpp"

namespace gns::io {

/// Positions of N particles over T frames in D dimensions, flattened per
/// frame as [x0, y0, x1, y1, ...].
struct Trajectory {
  int dim = 2;
  int num_particles = 0;
  /// frames[t] has num_particles * dim entries.
  std::vector<std::vector<double>> frames;
  /// Scene context: normalized material parameter (e.g. tan φ), carried as
  /// a node feature during training so the model becomes φ-conditional.
  double material_param = 0.0;
  /// Domain bounds (lo/hi per axis), used for boundary-distance features.
  std::vector<double> domain_lo;
  std::vector<double> domain_hi;
  /// Optional static per-particle attributes (e.g. radius, mass for the
  /// n-body study), flattened [num_particles * attr_dim].
  int attr_dim = 0;
  std::vector<double> node_attrs;

  [[nodiscard]] int num_frames() const {
    return static_cast<int>(frames.size());
  }

  void add_frame(std::vector<double> flat) {
    GNS_CHECK_MSG(static_cast<int>(flat.size()) == num_particles * dim,
                  "frame size mismatch: " << flat.size() << " vs "
                                          << num_particles * dim);
    frames.push_back(std::move(flat));
  }

  [[nodiscard]] double position(int t, int particle, int axis) const {
    GNS_DCHECK(t >= 0 && t < num_frames());
    return frames[t][particle * dim + axis];
  }
};

/// A set of trajectories plus the normalization statistics the GNS trains
/// against (per-axis mean/std of frame-to-frame velocities and of
/// finite-difference accelerations, computed over the whole dataset).
struct Dataset {
  std::vector<Trajectory> trajectories;

  [[nodiscard]] int size() const {
    return static_cast<int>(trajectories.size());
  }
};

/// Per-axis first/second finite-difference statistics of a dataset.
struct NormalizationStats {
  std::vector<double> vel_mean, vel_std;
  std::vector<double> acc_mean, acc_std;

  [[nodiscard]] int dim() const { return static_cast<int>(vel_mean.size()); }
};

/// Computes velocity/acceleration statistics across all trajectories.
/// Stds are floored at `std_floor` to avoid division blow-ups on
/// near-static axes.
[[nodiscard]] NormalizationStats compute_stats(const Dataset& dataset,
                                               double std_floor = 1e-9);

/// Binary serialization (versioned, little-endian host format).
void save_trajectory(const Trajectory& traj, const std::string& path);
[[nodiscard]] Trajectory load_trajectory(const std::string& path);
void save_dataset(const Dataset& dataset, const std::string& path);
[[nodiscard]] Dataset load_dataset(const std::string& path);

}  // namespace gns::io
