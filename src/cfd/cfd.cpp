#include "cfd/cfd.hpp"

#include <algorithm>
#include <cmath>

namespace gns::cfd {

CfdSolver::CfdSolver(CfdConfig config) : config_(config) {
  GNS_CHECK(config_.nx > 4 && config_.ny > 4);
  dx_ = config_.length / config_.nx;
  nu_ = config_.inflow * (2.0 * config_.cylinder_r) / config_.reynolds;
  u_.assign((config_.nx + 1) * config_.ny, config_.inflow);
  v_.assign(config_.nx * (config_.ny + 1), 0.0);
  p_.assign(config_.nx * config_.ny, 0.0);
  u_tmp_ = u_;
  v_tmp_ = v_;

  type_.assign(config_.nx * config_.ny, CellType::Fluid);
  const double cy = config_.cylinder_y * height();
  for (int j = 0; j < config_.ny; ++j) {
    for (int i = 0; i < config_.nx; ++i) {
      const double x = (i + 0.5) * dx_;
      const double y = (j + 0.5) * dx_;
      const double ddx = x - config_.cylinder_x;
      const double ddy = y - cy;
      if (ddx * ddx + ddy * ddy <= config_.cylinder_r * config_.cylinder_r) {
        type_[cidx(i, j)] = CellType::Solid;
      } else if (i == 0) {
        type_[cidx(i, j)] = CellType::Inflow;
      } else if (i == config_.nx - 1) {
        type_[cidx(i, j)] = CellType::Outflow;
      }
    }
  }
  // Seed a slight vertical asymmetry so the wake instability (which is a
  // symmetry breaking) onsets quickly instead of after long transients.
  for (int j = 0; j < config_.ny + 1; ++j)
    for (int i = 0; i < config_.nx; ++i)
      v_[vidx(i, j)] = 0.02 * config_.inflow *
                       std::sin(2.0 * M_PI * i / config_.nx);
  apply_velocity_bc(u_, v_);
}

double CfdSolver::sample_u(double x, double y) const {
  // u lives at (i*dx, (j+0.5)*dx).
  const double gx = std::clamp(x / dx_, 0.0, double(config_.nx));
  const double gy = std::clamp(y / dx_ - 0.5, 0.0, double(config_.ny - 1));
  const int i0 = std::min(static_cast<int>(gx), config_.nx - 1);
  const int j0 = std::min(static_cast<int>(gy), config_.ny - 2);
  const double fx = gx - i0;
  const double fy = gy - j0;
  const double a = u_[uidx(i0, j0)] * (1 - fx) + u_[uidx(i0 + 1, j0)] * fx;
  const double b =
      u_[uidx(i0, j0 + 1)] * (1 - fx) + u_[uidx(i0 + 1, j0 + 1)] * fx;
  return a * (1 - fy) + b * fy;
}

double CfdSolver::sample_v(double x, double y) const {
  // v lives at ((i+0.5)*dx, j*dx).
  const double gx = std::clamp(x / dx_ - 0.5, 0.0, double(config_.nx - 1));
  const double gy = std::clamp(y / dx_, 0.0, double(config_.ny));
  const int i0 = std::min(static_cast<int>(gx), config_.nx - 2);
  const int j0 = std::min(static_cast<int>(gy), config_.ny - 1);
  const double fx = gx - i0;
  const double fy = gy - j0;
  const double a = v_[vidx(i0, j0)] * (1 - fx) + v_[vidx(i0 + 1, j0)] * fx;
  const double b =
      v_[vidx(i0, j0 + 1)] * (1 - fx) + v_[vidx(i0 + 1, j0 + 1)] * fx;
  return a * (1 - fy) + b * fy;
}

void CfdSolver::apply_velocity_bc(std::vector<double>& u,
                                  std::vector<double>& v) const {
  const int nx = config_.nx, ny = config_.ny;
  // Inflow / outflow.
  for (int j = 0; j < ny; ++j) {
    u[uidx(0, j)] = config_.inflow;
    u[uidx(nx, j)] = u[uidx(nx - 1, j)];  // zero-gradient outflow
  }
  // Free-slip top/bottom: v = 0 on the walls.
  for (int i = 0; i < nx; ++i) {
    v[vidx(i, 0)] = 0.0;
    v[vidx(i, ny)] = 0.0;
  }
  // Solid cylinder: zero all face velocities adjacent to solid cells
  // (no-slip on the obstacle).
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      if (!solid(i, j)) continue;
      u[uidx(i, j)] = 0.0;
      u[uidx(i + 1, j)] = 0.0;
      v[vidx(i, j)] = 0.0;
      v[vidx(i, j + 1)] = 0.0;
    }
  }
}

void CfdSolver::advect(double dt) {
  const int nx = config_.nx, ny = config_.ny;
  // Semi-Lagrangian backtrace for each face value.
#pragma omp parallel for schedule(static)
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i <= nx; ++i) {
      const double x = i * dx_;
      const double y = (j + 0.5) * dx_;
      const double uu = u_[uidx(i, j)];
      const double vv = sample_v(x, y);
      u_tmp_[uidx(i, j)] = sample_u(x - dt * uu, y - dt * vv);
    }
  }
#pragma omp parallel for schedule(static)
  for (int j = 0; j <= ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const double x = (i + 0.5) * dx_;
      const double y = j * dx_;
      const double uu = sample_u(x, y);
      const double vv = v_[vidx(i, j)];
      v_tmp_[vidx(i, j)] = sample_v(x - dt * uu, y - dt * vv);
    }
  }
  u_.swap(u_tmp_);
  v_.swap(v_tmp_);
}

void CfdSolver::diffuse(double dt) {
  const int nx = config_.nx, ny = config_.ny;
  const double a = nu_ * dt / (dx_ * dx_);
#pragma omp parallel for schedule(static)
  for (int j = 0; j < ny; ++j) {
    for (int i = 1; i < nx; ++i) {
      const double c = u_[uidx(i, j)];
      const double l = u_[uidx(i - 1, j)];
      const double r = u_[uidx(i + 1, j)];
      const double d = (j > 0) ? u_[uidx(i, j - 1)] : c;
      const double t = (j < ny - 1) ? u_[uidx(i, j + 1)] : c;
      u_tmp_[uidx(i, j)] = c + a * (l + r + d + t - 4.0 * c);
    }
    u_tmp_[uidx(0, j)] = u_[uidx(0, j)];
    u_tmp_[uidx(nx, j)] = u_[uidx(nx, j)];
  }
#pragma omp parallel for schedule(static)
  for (int j = 1; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const double c = v_[vidx(i, j)];
      const double l = (i > 0) ? v_[vidx(i - 1, j)] : c;
      const double r = (i < nx - 1) ? v_[vidx(i + 1, j)] : c;
      const double d = v_[vidx(i, j - 1)];
      const double t = v_[vidx(i, j + 1)];
      v_tmp_[vidx(i, j)] = c + a * (l + r + d + t - 4.0 * c);
    }
  }
  for (int i = 0; i < nx; ++i) {
    v_tmp_[vidx(i, 0)] = v_[vidx(i, 0)];
    v_tmp_[vidx(i, ny)] = v_[vidx(i, ny)];
  }
  u_.swap(u_tmp_);
  v_.swap(v_tmp_);
}

void CfdSolver::project(double dt) {
  const int nx = config_.nx, ny = config_.ny;
  const double scale = dx_ / dt;  // rhs scaling folded into p units
  std::vector<double> rhs(nx * ny, 0.0);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      if (solid(i, j)) continue;
      rhs[cidx(i, j)] = -scale * (u_[uidx(i + 1, j)] - u_[uidx(i, j)] +
                                  v_[vidx(i, j + 1)] - v_[vidx(i, j)]);
    }
  }
  // Red-black SOR so sweeps parallelize without races.
  for (int iter = 0; iter < config_.pressure_iters; ++iter) {
    for (int color = 0; color < 2; ++color) {
#pragma omp parallel for schedule(static)
      for (int j = 0; j < ny; ++j) {
        for (int i = (j + color) & 1; i < nx; i += 2) {
          if (solid(i, j)) continue;
          // Outflow column holds p = 0 (Dirichlet) so pressure is anchored.
          if (type_[cidx(i, j)] == CellType::Outflow) {
            p_[cidx(i, j)] = 0.0;
            continue;
          }
          double diag = 0.0, off = 0.0;
          // Neumann at walls/solids (skip), Dirichlet handled via neighbor.
          auto acc = [&](int ii, int jj) {
            if (ii < 0 || jj < 0 || jj >= ny) return;  // wall: dp/dn = 0
            if (ii >= nx) return;
            if (solid(ii, jj)) return;
            diag += 1.0;
            off += p_[cidx(ii, jj)];
          };
          acc(i - 1, j);
          acc(i + 1, j);
          acc(i, j - 1);
          acc(i, j + 1);
          if (i == 0) diag += 0.0;  // inflow: velocity prescribed, dp/dn = 0
          if (diag == 0.0) continue;
          const double p_new = (off + rhs[cidx(i, j)]) / diag;
          p_[cidx(i, j)] =
              p_[cidx(i, j)] +
              config_.sor_omega * (p_new - p_[cidx(i, j)]);
        }
      }
    }
  }
  // Velocity correction u -= dt/dx ∇p (with the scale folding, u -= Δp/scale).
#pragma omp parallel for schedule(static)
  for (int j = 0; j < ny; ++j) {
    for (int i = 1; i < nx; ++i) {
      if (solid(i - 1, j) || solid(i, j)) continue;
      u_[uidx(i, j)] -= (p_[cidx(i, j)] - p_[cidx(i - 1, j)]) / scale;
    }
  }
#pragma omp parallel for schedule(static)
  for (int j = 1; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      if (solid(i, j - 1) || solid(i, j)) continue;
      v_[vidx(i, j)] -= (p_[cidx(i, j)] - p_[cidx(i, j - 1)]) / scale;
    }
  }
}

double CfdSolver::step() {
  double dt = config_.dt;
  if (dt <= 0.0) {
    double vmax = config_.inflow;
    for (double uu : u_) vmax = std::max(vmax, std::abs(uu));
    for (double vv : v_) vmax = std::max(vmax, std::abs(vv));
    dt = config_.cfl * dx_ / vmax;
  }
  advect(dt);
  diffuse(dt);
  apply_velocity_bc(u_, v_);
  project(dt);
  apply_velocity_bc(u_, v_);
  time_ += dt;
  return dt;
}

std::vector<double> CfdSolver::sample_cell_velocities() const {
  const int nx = config_.nx, ny = config_.ny;
  std::vector<double> out(2 * nx * ny, 0.0);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const int c = cidx(i, j);
      out[2 * c] = 0.5 * (u_[uidx(i, j)] + u_[uidx(i + 1, j)]);
      out[2 * c + 1] = 0.5 * (v_[vidx(i, j)] + v_[vidx(i, j + 1)]);
    }
  }
  return out;
}

double CfdSolver::max_divergence() const {
  const int nx = config_.nx, ny = config_.ny;
  double worst = 0.0;
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      if (type_[cidx(i, j)] != CellType::Fluid) continue;
      const double div = (u_[uidx(i + 1, j)] - u_[uidx(i, j)] +
                          v_[vidx(i, j + 1)] - v_[vidx(i, j)]) /
                         dx_;
      worst = std::max(worst, std::abs(div));
    }
  }
  return worst;
}

double CfdSolver::wake_probe() const {
  // One diameter downstream of the cylinder, on the centerline.
  const double x = config_.cylinder_x + 3.0 * config_.cylinder_r;
  const double y = config_.cylinder_y * height();
  return sample_v(x, y);
}

CfdRollout run_rollout(CfdSolver& solver, int frames, int substeps) {
  GNS_CHECK(frames > 0 && substeps > 0);
  CfdRollout out;
  out.velocity_frames.reserve(frames);
  double frame_time = 0.0;
  for (int f = 0; f < frames; ++f) {
    out.velocity_frames.push_back(solver.sample_cell_velocities());
    out.probe_series.push_back(solver.wake_probe());
    for (int s = 0; s < substeps; ++s) frame_time += solver.step();
  }
  out.frame_dt = frame_time / frames;
  return out;
}

double dominant_frequency(const std::vector<double>& series,
                          double sample_dt) {
  if (series.size() < 4 || sample_dt <= 0.0) return 0.0;
  double mean = 0.0;
  for (double s : series) mean += s;
  mean /= static_cast<double>(series.size());
  int crossings = 0;
  for (std::size_t i = 1; i < series.size(); ++i) {
    const double a = series[i - 1] - mean;
    const double b = series[i] - mean;
    if ((a < 0.0 && b >= 0.0) || (a > 0.0 && b <= 0.0)) ++crossings;
  }
  const double duration = sample_dt * static_cast<double>(series.size() - 1);
  // Two crossings per period.
  return crossings / (2.0 * duration);
}

}  // namespace gns::cfd
