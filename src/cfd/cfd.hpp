#pragma once

/// \file cfd.hpp
/// 2-D incompressible Navier–Stokes substrate for the MeshNet experiment
/// (Fig 2: von Kármán vortex shedding behind a cylinder).
///
/// Chorin projection on a MAC staggered grid: semi-Lagrangian advection,
/// explicit viscosity, SOR pressure projection honoring a solid cylinder
/// mask. Channel flow: uniform inflow at the left, zero-gradient outflow at
/// the right, free-slip top/bottom. At Re ≈ 100–200 the wake destabilizes
/// into periodic shedding — the ground truth MeshNet learns to reproduce.

#include <vector>

#include "util/check.hpp"

namespace gns::cfd {

struct CfdConfig {
  int nx = 128;             ///< cells in x
  int ny = 64;              ///< cells in y
  double length = 2.0;      ///< channel length [m]
  double inflow = 1.0;      ///< inflow speed U0 [m/s]
  double reynolds = 150.0;  ///< Re = U0 D / ν (sets viscosity from D)
  double cylinder_x = 0.4;  ///< cylinder center x
  double cylinder_y = 0.5;  ///< cylinder center y (as a fraction of height)
  double cylinder_r = 0.08; ///< cylinder radius [m]
  double dt = 0.0;          ///< 0 = auto from CFL
  double cfl = 0.5;
  int pressure_iters = 120; ///< SOR sweeps per step
  double sor_omega = 1.7;
};

/// Cell classification used both by the solver and as MeshNet node types.
enum class CellType : unsigned char { Fluid = 0, Solid = 1, Inflow = 2,
                                      Outflow = 3 };

/// Staggered-grid incompressible solver.
class CfdSolver {
 public:
  explicit CfdSolver(CfdConfig config);

  /// Advances one step; returns dt.
  double step();

  [[nodiscard]] const CfdConfig& config() const { return config_; }
  [[nodiscard]] double dx() const { return dx_; }
  [[nodiscard]] double height() const { return config_.ny * dx_; }
  [[nodiscard]] double viscosity() const { return nu_; }
  [[nodiscard]] double time() const { return time_; }

  /// Cell-centered interpolated velocity field, flattened row-major
  /// [(u,v) per cell]. This is what MeshNet trains on.
  [[nodiscard]] std::vector<double> sample_cell_velocities() const;

  /// Cell types, row-major.
  [[nodiscard]] const std::vector<CellType>& cell_types() const {
    return type_;
  }

  [[nodiscard]] CellType cell_type(int ix, int iy) const {
    return type_[iy * config_.nx + ix];
  }

  /// Max |div u| over fluid cells after projection (test invariant).
  [[nodiscard]] double max_divergence() const;

  /// Cross-stream velocity at a wake probe point (used to detect the
  /// shedding oscillation and its frequency).
  [[nodiscard]] double wake_probe() const;

  // Raw fields (exposed for tests; sizes: u (nx+1)*ny, v nx*(ny+1),
  // p nx*ny).
  [[nodiscard]] const std::vector<double>& u() const { return u_; }
  [[nodiscard]] const std::vector<double>& v() const { return v_; }
  [[nodiscard]] const std::vector<double>& pressure() const { return p_; }

 private:
  [[nodiscard]] int uidx(int i, int j) const { return j * (config_.nx + 1) + i; }
  [[nodiscard]] int vidx(int i, int j) const { return j * config_.nx + i; }
  [[nodiscard]] int cidx(int i, int j) const { return j * config_.nx + i; }
  [[nodiscard]] bool solid(int i, int j) const {
    return type_[cidx(i, j)] == CellType::Solid;
  }

  [[nodiscard]] double sample_u(double x, double y) const;
  [[nodiscard]] double sample_v(double x, double y) const;

  void apply_velocity_bc(std::vector<double>& u, std::vector<double>& v) const;
  void advect(double dt);
  void diffuse(double dt);
  void project(double dt);

  CfdConfig config_;
  double dx_;
  double nu_;
  double time_ = 0.0;
  std::vector<double> u_, v_, p_;
  std::vector<double> u_tmp_, v_tmp_;
  std::vector<CellType> type_;
};

/// Runs the solver for `frames` snapshots spaced `substeps` steps apart and
/// returns the cell-velocity history [frames][2*nx*ny]. Also returns the
/// wake-probe series for shedding-frequency analysis.
struct CfdRollout {
  std::vector<std::vector<double>> velocity_frames;
  std::vector<double> probe_series;
  double frame_dt = 0.0;
};

[[nodiscard]] CfdRollout run_rollout(CfdSolver& solver, int frames,
                                     int substeps);

/// Dominant oscillation frequency of a (zero-meaned) series via the
/// zero-crossing rate; cheap and robust for near-periodic signals.
[[nodiscard]] double dominant_frequency(const std::vector<double>& series,
                                        double sample_dt);

}  // namespace gns::cfd
