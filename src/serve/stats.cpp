#include "serve/stats.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace gns::serve {

namespace {
obs::MetricsRegistry& resolve(obs::MetricsRegistry* registry) {
  return registry != nullptr ? *registry : obs::MetricsRegistry::global();
}
}  // namespace

ServerStats::ServerStats(std::string prefix, obs::MetricsRegistry* registry)
    : submitted_(resolve(registry).counter(prefix + ".submitted")),
      completed_(resolve(registry).counter(prefix + ".completed")),
      rejected_queue_full_(
          resolve(registry).counter(prefix + ".rejected_queue_full")),
      deadline_exceeded_(
          resolve(registry).counter(prefix + ".deadline_exceeded")),
      cancelled_(resolve(registry).counter(prefix + ".cancelled")),
      failed_(resolve(registry).counter(prefix + ".failed")),
      shut_down_(resolve(registry).counter(prefix + ".shut_down")),
      queue_depth_(resolve(registry).gauge(prefix + ".queue_depth")),
      peak_queue_depth_(
          resolve(registry).gauge(prefix + ".peak_queue_depth")),
      total_ms_(resolve(registry).histogram(prefix + ".total_ms")),
      queue_ms_(resolve(registry).histogram(prefix + ".queue_ms")),
      exec_ms_(resolve(registry).histogram(prefix + ".exec_ms")),
      batch_size_(resolve(registry).histogram(prefix + ".batch_size",
                                              /*min_value=*/1.0,
                                              /*growth=*/1.15,
                                              /*buckets=*/40)),
      phase_decode_us_(
          resolve(registry).histogram(prefix + ".phase.decode_us")),
      phase_cache_us_(resolve(registry).histogram(prefix + ".phase.cache_us")),
      phase_queue_us_(resolve(registry).histogram(prefix + ".phase.queue_us")),
      phase_batch_wait_us_(
          resolve(registry).histogram(prefix + ".phase.batch_wait_us")),
      phase_compute_us_(
          resolve(registry).histogram(prefix + ".phase.compute_us")),
      phase_serialize_us_(
          resolve(registry).histogram(prefix + ".phase.serialize_us")),
      phase_write_us_(
          resolve(registry).histogram(prefix + ".phase.write_us")) {
  // A fresh server starts from zero even when an earlier instance used the
  // same prefix (schedulers are built sequentially in benches/tests).
  resolve(registry).reset_prefix(prefix + ".");
}

void ServerStats::on_submitted(int queue_depth) {
  submitted_.add();
  queue_depth_.set(queue_depth);
  peak_queue_depth_.update_max(queue_depth);
}

void ServerStats::on_rejected(JobStatus status) {
  if (status == JobStatus::QueueFull)
    rejected_queue_full_.add();
  else if (status == JobStatus::DeadlineExceeded)
    deadline_exceeded_.add();
  else
    shut_down_.add();
}

void ServerStats::on_dispatch(int batch_size) {
  batch_size_.add(static_cast<double>(batch_size));
}

void ServerStats::on_serialize(double serialize_us) {
  if (serialize_us > 0.0) phase_serialize_us_.add(serialize_us);
}

void ServerStats::on_write(double write_us) {
  if (write_us > 0.0) phase_write_us_.add(write_us);
}

void ServerStats::on_resolved(const RolloutResult& result, int queue_depth) {
  queue_depth_.set(queue_depth);
  switch (result.status) {
    case JobStatus::Ok:
      completed_.add();
      total_ms_.add(result.total_ms);
      queue_ms_.add(result.queue_ms);
      exec_ms_.add(result.exec_ms);
      // Skip zero-valued phases: "did not happen" (no cache, cache hit)
      // would otherwise dominate the low buckets and flatten percentiles.
      if (result.phases.decode_us > 0.0)
        phase_decode_us_.add(result.phases.decode_us);
      if (result.phases.cache_us > 0.0)
        phase_cache_us_.add(result.phases.cache_us);
      if (result.phases.queue_us > 0.0)
        phase_queue_us_.add(result.phases.queue_us);
      if (result.phases.batch_wait_us > 0.0)
        phase_batch_wait_us_.add(result.phases.batch_wait_us);
      if (result.phases.compute_us > 0.0)
        phase_compute_us_.add(result.phases.compute_us);
      break;
    case JobStatus::DeadlineExceeded:
      deadline_exceeded_.add();
      break;
    case JobStatus::Cancelled:
      cancelled_.add();
      break;
    case JobStatus::ShutDown:
      shut_down_.add();
      break;
    case JobStatus::QueueFull:
      rejected_queue_full_.add();
      break;
    case JobStatus::ModelNotFound:
    case JobStatus::ExecutionError:
      failed_.add();
      break;
  }
}

StatsSnapshot ServerStats::snapshot() const {
  StatsSnapshot snap;
  snap.submitted = submitted_.value();
  snap.completed = completed_.value();
  snap.rejected_queue_full = rejected_queue_full_.value();
  snap.deadline_exceeded = deadline_exceeded_.value();
  snap.cancelled = cancelled_.value();
  snap.failed = failed_.value();
  snap.shut_down = shut_down_.value();
  snap.queue_depth = static_cast<int>(queue_depth_.value());
  snap.peak_queue_depth = static_cast<int>(peak_queue_depth_.value());
  snap.total_ms = total_ms_.snapshot();
  snap.queue_ms = queue_ms_.snapshot();
  snap.exec_ms = exec_ms_.snapshot();
  snap.batch_size = batch_size_.snapshot();
  return snap;
}

void ServerStats::write_latency_csv(const std::string& path) const {
  const StatsSnapshot snap = snapshot();
  std::ofstream out(path);
  out << "upper_ms,count,cumulative_frac\n";
  const double total =
      snap.total_ms.count() == 0
          ? 1.0
          : static_cast<double>(snap.total_ms.count());
  std::uint64_t cumulative = 0;
  for (int b = 0; b < snap.total_ms.num_buckets(); ++b) {
    const std::uint64_t c = snap.total_ms.bucket_count(b);
    if (c == 0) continue;
    cumulative += c;
    out << snap.total_ms.bucket_upper(b) << ',' << c << ','
        << static_cast<double>(cumulative) / total << '\n';
  }
}

namespace {

void json_field(std::ostringstream& os, const char* key, double value,
                bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "  \"" << key << "\": " << value;
}

void json_percentiles(std::ostringstream& os, const char* prefix,
                      const Histogram& h, bool& first) {
  std::string base(prefix);
  json_field(os, (base + "_p50").c_str(), h.quantile(0.50), first);
  json_field(os, (base + "_p95").c_str(), h.quantile(0.95), first);
  json_field(os, (base + "_p99").c_str(), h.quantile(0.99), first);
  json_field(os, (base + "_mean").c_str(), h.mean(), first);
  json_field(os, (base + "_max").c_str(), h.max(), first);
}

}  // namespace

std::string ServerStats::to_json(
    const std::vector<std::pair<std::string, double>>& extra) const {
  const StatsSnapshot snap = snapshot();
  std::ostringstream os;
  os.precision(10);
  os << "{\n";
  bool first = true;
  json_field(os, "submitted", static_cast<double>(snap.submitted), first);
  json_field(os, "completed", static_cast<double>(snap.completed), first);
  json_field(os, "rejected_queue_full",
             static_cast<double>(snap.rejected_queue_full), first);
  json_field(os, "deadline_exceeded",
             static_cast<double>(snap.deadline_exceeded), first);
  json_field(os, "cancelled", static_cast<double>(snap.cancelled), first);
  json_field(os, "failed", static_cast<double>(snap.failed), first);
  json_field(os, "shut_down", static_cast<double>(snap.shut_down), first);
  json_field(os, "peak_queue_depth",
             static_cast<double>(snap.peak_queue_depth), first);
  json_percentiles(os, "total_ms", snap.total_ms, first);
  json_percentiles(os, "queue_ms", snap.queue_ms, first);
  json_percentiles(os, "exec_ms", snap.exec_ms, first);
  json_percentiles(os, "batch_size", snap.batch_size, first);
  for (const auto& [key, value] : extra)
    json_field(os, key.c_str(), value, first);
  os << "\n}\n";
  return os.str();
}

void ServerStats::write_json(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& extra) const {
  std::ofstream out(path);
  out << to_json(extra);
}

}  // namespace gns::serve
