#include "serve/stats.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace gns::serve {

void ServerStats::on_submitted(int queue_depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++state_.submitted;
  state_.queue_depth = queue_depth;
  state_.peak_queue_depth = std::max(state_.peak_queue_depth, queue_depth);
}

void ServerStats::on_rejected(JobStatus status) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (status == JobStatus::QueueFull)
    ++state_.rejected_queue_full;
  else
    ++state_.shut_down;
}

void ServerStats::on_resolved(const RolloutResult& result, int queue_depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  state_.queue_depth = queue_depth;
  switch (result.status) {
    case JobStatus::Ok:
      ++state_.completed;
      state_.total_ms.add(result.total_ms);
      state_.queue_ms.add(result.queue_ms);
      state_.exec_ms.add(result.exec_ms);
      break;
    case JobStatus::DeadlineExceeded:
      ++state_.deadline_exceeded;
      break;
    case JobStatus::Cancelled:
      ++state_.cancelled;
      break;
    case JobStatus::ShutDown:
      ++state_.shut_down;
      break;
    case JobStatus::QueueFull:
      ++state_.rejected_queue_full;
      break;
    case JobStatus::ModelNotFound:
    case JobStatus::ExecutionError:
      ++state_.failed;
      break;
  }
}

StatsSnapshot ServerStats::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

void ServerStats::write_latency_csv(const std::string& path) const {
  const StatsSnapshot snap = snapshot();
  std::ofstream out(path);
  out << "upper_ms,count,cumulative_frac\n";
  const double total =
      snap.total_ms.count() == 0
          ? 1.0
          : static_cast<double>(snap.total_ms.count());
  std::uint64_t cumulative = 0;
  for (int b = 0; b < snap.total_ms.num_buckets(); ++b) {
    const std::uint64_t c = snap.total_ms.bucket_count(b);
    if (c == 0) continue;
    cumulative += c;
    out << snap.total_ms.bucket_upper(b) << ',' << c << ','
        << static_cast<double>(cumulative) / total << '\n';
  }
}

namespace {

void json_field(std::ostringstream& os, const char* key, double value,
                bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "  \"" << key << "\": " << value;
}

void json_percentiles(std::ostringstream& os, const char* prefix,
                      const Histogram& h, bool& first) {
  std::string base(prefix);
  json_field(os, (base + "_p50").c_str(), h.quantile(0.50), first);
  json_field(os, (base + "_p95").c_str(), h.quantile(0.95), first);
  json_field(os, (base + "_p99").c_str(), h.quantile(0.99), first);
  json_field(os, (base + "_mean").c_str(), h.mean(), first);
  json_field(os, (base + "_max").c_str(), h.max(), first);
}

}  // namespace

std::string ServerStats::to_json(
    const std::vector<std::pair<std::string, double>>& extra) const {
  const StatsSnapshot snap = snapshot();
  std::ostringstream os;
  os.precision(10);
  os << "{\n";
  bool first = true;
  json_field(os, "submitted", static_cast<double>(snap.submitted), first);
  json_field(os, "completed", static_cast<double>(snap.completed), first);
  json_field(os, "rejected_queue_full",
             static_cast<double>(snap.rejected_queue_full), first);
  json_field(os, "deadline_exceeded",
             static_cast<double>(snap.deadline_exceeded), first);
  json_field(os, "cancelled", static_cast<double>(snap.cancelled), first);
  json_field(os, "failed", static_cast<double>(snap.failed), first);
  json_field(os, "shut_down", static_cast<double>(snap.shut_down), first);
  json_field(os, "peak_queue_depth",
             static_cast<double>(snap.peak_queue_depth), first);
  json_percentiles(os, "total_ms", snap.total_ms, first);
  json_percentiles(os, "queue_ms", snap.queue_ms, first);
  json_percentiles(os, "exec_ms", snap.exec_ms, first);
  for (const auto& [key, value] : extra)
    json_field(os, key.c_str(), value, first);
  os << "\n}\n";
  return os.str();
}

void ServerStats::write_json(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& extra) const {
  std::ofstream out(path);
  out << to_json(extra);
}

}  // namespace gns::serve
