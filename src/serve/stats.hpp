#pragma once

/// \file stats.hpp
/// ServerStats: counters + latency histograms for the serving subsystem.
///
/// The instruments live in the shared obs::MetricsRegistry (names
/// `<prefix>.submitted`, `<prefix>.total_ms`, ...), so serving metrics
/// appear in the same unified dump (GNS_METRICS_FILE) as the simulation
/// metrics. ServerStats keeps cached handles for the hot path and zeroes
/// its prefix on construction — instances sharing a prefix therefore must
/// not coexist (give a second live scheduler its own stats_prefix).
///
/// Snapshots are consistent copies; CSV/JSON dumps are built from
/// snapshots so they can be written while the server is hot. The JSON
/// field names (p50/p95/p99 per histogram) are stable.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/job.hpp"
#include "util/histogram.hpp"

namespace gns::serve {

/// Consistent copy of the server counters at one instant.
struct StatsSnapshot {
  std::uint64_t submitted = 0;        ///< accepted into the queue
  std::uint64_t completed = 0;        ///< resolved Ok
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;           ///< ExecutionError + ModelNotFound
  std::uint64_t shut_down = 0;
  int queue_depth = 0;      ///< current queued jobs
  int peak_queue_depth = 0;

  Histogram total_ms{1e-3, 1.15, 200};  ///< submit-to-resolve, Ok jobs
  Histogram queue_ms{1e-3, 1.15, 200};  ///< queue wait, Ok jobs
  Histogram exec_ms{1e-3, 1.15, 200};   ///< worker execution, Ok jobs
  /// Jobs per worker dispatch (1 on the unbatched path; up to max_batch
  /// when coalescing) — the utilization signal of batched serving.
  Histogram batch_size{1.0, 1.15, 40};

  /// Ok jobs per second over the given wall-clock window.
  [[nodiscard]] double throughput(double wall_seconds) const {
    return wall_seconds > 0.0
               ? static_cast<double>(completed) / wall_seconds
               : 0.0;
  }
};

class ServerStats {
 public:
  /// Binds (and zeroes) `<prefix>.*` instruments in `registry`; null means
  /// the process-global registry.
  explicit ServerStats(std::string prefix = "serve",
                       obs::MetricsRegistry* registry = nullptr);

  /// A job was accepted into the queue at the given (post-push) depth.
  void on_submitted(int queue_depth);

  /// A submit was rejected (queue full / shutdown) before queueing.
  void on_rejected(JobStatus status);

  /// A worker dispatched `batch_size` coalesced jobs as one execution
  /// (1 on the unbatched path).
  void on_dispatch(int batch_size);

  /// A job resolved with the given result; depth is the queue size after
  /// the job left it. Ok jobs additionally feed the `<prefix>.phase.*_us`
  /// histograms from result.phases (zero-valued phases are skipped so a
  /// cache-less scheduler doesn't flood cache_us with zeros).
  void on_resolved(const RolloutResult& result, int queue_depth);

  /// The net front-end's phase contributions, recorded after the reply is
  /// encoded (serialize) and flushed to the socket (write). Separate from
  /// on_resolved because both happen after the scheduler resolves the job.
  void on_serialize(double serialize_us);
  void on_write(double write_us);

  [[nodiscard]] StatsSnapshot snapshot() const;

  /// Latency CDF of Ok jobs as CSV (columns: upper_ms, count,
  /// cumulative_frac) for scripts/plot_results.py.
  void write_latency_csv(const std::string& path) const;

  /// All counters + p50/p95/p99 of each histogram as a JSON object.
  /// `extra` entries (e.g. {"workers","4"}) are spliced in verbatim as
  /// additional number-valued fields.
  [[nodiscard]] std::string to_json(
      const std::vector<std::pair<std::string, double>>& extra = {}) const;
  void write_json(
      const std::string& path,
      const std::vector<std::pair<std::string, double>>& extra = {}) const;

 private:
  obs::Counter& submitted_;
  obs::Counter& completed_;
  obs::Counter& rejected_queue_full_;
  obs::Counter& deadline_exceeded_;
  obs::Counter& cancelled_;
  obs::Counter& failed_;
  obs::Counter& shut_down_;
  obs::Gauge& queue_depth_;
  obs::Gauge& peak_queue_depth_;
  obs::HistogramMetric& total_ms_;
  obs::HistogramMetric& queue_ms_;
  obs::HistogramMetric& exec_ms_;
  obs::HistogramMetric& batch_size_;
  // Per-phase latency (`<prefix>.phase.*_us`, microseconds) — the
  // histogram form of PhaseTimeline, one instrument per pipeline stage.
  obs::HistogramMetric& phase_decode_us_;
  obs::HistogramMetric& phase_cache_us_;
  obs::HistogramMetric& phase_queue_us_;
  obs::HistogramMetric& phase_batch_wait_us_;
  obs::HistogramMetric& phase_compute_us_;
  obs::HistogramMetric& phase_serialize_us_;
  obs::HistogramMetric& phase_write_us_;
};

}  // namespace gns::serve
