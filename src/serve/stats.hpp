#pragma once

/// \file stats.hpp
/// ServerStats: counters + latency histograms for the serving subsystem.
///
/// One instance is shared by the scheduler's submit path and all workers;
/// every mutation takes the internal mutex (contention is negligible next
/// to a rollout step). Snapshots are consistent copies; CSV/JSON dumps are
/// built from snapshots so they can be written while the server is hot.

#include <cstdint>
#include <mutex>
#include <string>

#include "serve/job.hpp"
#include "util/histogram.hpp"

namespace gns::serve {

/// Consistent copy of the server counters at one instant.
struct StatsSnapshot {
  std::uint64_t submitted = 0;        ///< accepted into the queue
  std::uint64_t completed = 0;        ///< resolved Ok
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;           ///< ExecutionError + ModelNotFound
  std::uint64_t shut_down = 0;
  int queue_depth = 0;      ///< current queued jobs
  int peak_queue_depth = 0;

  Histogram total_ms{1e-3, 1.15, 200};  ///< submit-to-resolve, Ok jobs
  Histogram queue_ms{1e-3, 1.15, 200};  ///< queue wait, Ok jobs
  Histogram exec_ms{1e-3, 1.15, 200};   ///< worker execution, Ok jobs

  /// Ok jobs per second over the given wall-clock window.
  [[nodiscard]] double throughput(double wall_seconds) const {
    return wall_seconds > 0.0
               ? static_cast<double>(completed) / wall_seconds
               : 0.0;
  }
};

class ServerStats {
 public:
  /// A job was accepted into the queue at the given (post-push) depth.
  void on_submitted(int queue_depth);

  /// A submit was rejected (queue full / shutdown) before queueing.
  void on_rejected(JobStatus status);

  /// A job resolved with the given result; depth is the queue size after
  /// the job left it.
  void on_resolved(const RolloutResult& result, int queue_depth);

  [[nodiscard]] StatsSnapshot snapshot() const;

  /// Latency CDF of Ok jobs as CSV (columns: upper_ms, count,
  /// cumulative_frac) for scripts/plot_results.py.
  void write_latency_csv(const std::string& path) const;

  /// All counters + p50/p95/p99 of each histogram as a JSON object.
  /// `extra` entries (e.g. {"workers","4"}) are spliced in verbatim as
  /// additional number-valued fields.
  [[nodiscard]] std::string to_json(
      const std::vector<std::pair<std::string, double>>& extra = {}) const;
  void write_json(
      const std::string& path,
      const std::vector<std::pair<std::string, double>>& extra = {}) const;

 private:
  mutable std::mutex mutex_;
  StatsSnapshot state_;
};

}  // namespace gns::serve
