#include "serve/scheduler.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <stdexcept>

#include "core/batched_simulator.hpp"
#include "core/features.hpp"
#include "obs/trace.hpp"
#include "serve/cache_key.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace gns::serve {

namespace {

/// Validated per-job rollout inputs, shared by the single and the batched
/// execution paths so both build bit-identical tensors.
struct MemberInputs {
  core::Window window;
  core::SceneContext context;
};

/// Parses and validates one request against the model's feature config.
/// Throws std::runtime_error on malformed input (typed to ExecutionError by
/// the callers).
MemberInputs build_member_inputs(const RolloutRequest& req,
                                 const core::FeatureConfig& features) {
  if (req.steps <= 0) throw std::runtime_error("steps must be positive");
  if (static_cast<int>(req.window.size()) != features.window_size())
    throw std::runtime_error(
        "window must hold " + std::to_string(features.window_size()) +
        " frames, got " + std::to_string(req.window.size()));
  const std::size_t frame_len = req.window.front().size();
  if (frame_len == 0 || frame_len % static_cast<std::size_t>(features.dim))
    throw std::runtime_error("frame length must be a multiple of dim");
  for (const auto& frame : req.window) {
    if (frame.size() != frame_len)
      throw std::runtime_error("window frames differ in length");
  }
  const int n = static_cast<int>(frame_len) / features.dim;

  MemberInputs inputs;
  inputs.window.reserve(req.window.size());
  for (const auto& frame : req.window)
    inputs.window.push_back(core::frame_to_tensor(frame, features.dim));

  if (features.material_feature)
    inputs.context.material = ad::Tensor::scalar(req.material);
  if (features.static_node_attrs > 0) {
    if (static_cast<int>(req.node_attrs.size()) !=
        n * features.static_node_attrs)
      throw std::runtime_error("node_attrs size mismatch");
    inputs.context.node_attrs = ad::Tensor::from_vector(
        n, features.static_node_attrs, req.node_attrs);
  }
  return inputs;
}

/// GNS_SLOW_REQUEST_MS: requests whose submit-to-resolve time meets the
/// threshold get one structured warning line with their trace id and phase
/// breakdown. Unset/empty disables; parsed once.
double slow_request_threshold_ms() {
  static const double threshold = [] {
    const char* env = std::getenv("GNS_SLOW_REQUEST_MS");
    if (env == nullptr || *env == '\0') return -1.0;
    return std::atof(env);
  }();
  return threshold;
}

void log_slow_request(const RolloutRequest& request,
                      const RolloutResult& result) {
  char trace_hex[24];
  std::snprintf(trace_hex, sizeof(trace_hex), "0x%016llx",
                static_cast<unsigned long long>(result.trace_id));
  const PhaseTimeline& p = result.phases;
  GNS_WARN("slow_request trace_id="
           << trace_hex << " job_id=" << result.job_id << " model="
           << request.model << " steps=" << request.steps << " status="
           << to_string(result.status) << " cache="
           << to_string(result.cache_outcome) << " total_ms="
           << result.total_ms << " decode_us=" << p.decode_us << " cache_us="
           << p.cache_us << " queue_us=" << p.queue_us << " batch_wait_us="
           << p.batch_wait_us << " compute_us=" << p.compute_us);
}

}  // namespace

JobScheduler::JobScheduler(std::shared_ptr<ModelRegistry> registry,
                           SchedulerConfig config)
    : registry_(std::move(registry)),
      config_(std::move(config)),
      stats_(config_.stats_prefix),
      use_exec_(exec::enabled()) {
  GNS_CHECK_MSG(registry_ != nullptr, "JobScheduler needs a registry");
  GNS_CHECK_MSG(config_.workers >= 1, "JobScheduler needs >= 1 worker");
  GNS_CHECK_MSG(config_.queue_capacity >= 1,
                "JobScheduler needs a positive queue capacity");
  GNS_CHECK_MSG(config_.max_batch >= 1,
                "JobScheduler max_batch must be >= 1");
  GNS_CHECK_MSG(config_.batch_window_us >= 0.0,
                "JobScheduler batch_window_us must be >= 0");
  if (use_exec_) return;  // rollouts run as executor task chains
  threads_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

JobScheduler::~JobScheduler() {
  shutdown(true);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

JobTicket JobScheduler::submit(RolloutRequest request) {
  GNS_TRACE_SCOPE_T("serve.scheduler.submit", request.trace_id);
  Job job;
  job.request = std::move(request);
  job.cancelled = std::make_shared<std::atomic<bool>>(false);
  job.submitted = Clock::now();
  job.has_deadline = job.request.deadline_ms > 0.0;
  job.deadline =
      job.has_deadline
          ? job.submitted + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double, std::milli>(
                                    job.request.deadline_ms))
          : Clock::time_point::max();

  JobTicket ticket;
  ticket.result = job.promise.get_future();

  JobStatus rejection = JobStatus::Ok;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.id = next_id_++;
    ticket.id = job.id;
    if (stopping_) {
      rejection = JobStatus::ShutDown;
    } else if (job.request.deadline_ms < 0.0) {
      // An already-expired deadline (deadline propagation upstream can eat
      // the whole budget before submit) is rejected here: such a job must
      // never occupy a queue or batch slot, and must not be mistaken for
      // an unbounded one.
      rejection = JobStatus::DeadlineExceeded;
    }
  }

  if (rejection == JobStatus::Ok && config_.cache != nullptr &&
      consult_cache(job) == CacheOutcome::Resolved) {
    return ticket;  // hit (already fulfilled) or joined an in-flight twin
  }

  if (rejection == JobStatus::Ok) {
    std::lock_guard<std::mutex> lock(mutex_);
    // Re-check: the cache consult ran without the lock held.
    if (stopping_) {
      rejection = JobStatus::ShutDown;
    } else if (static_cast<int>(queue_.size()) >= config_.queue_capacity) {
      rejection = JobStatus::QueueFull;
    } else {
      live_flags_[job.id] = job.cancelled;
      const std::uint64_t id = job.id;
      const bool has_deadline = job.has_deadline;
      const Clock::time_point deadline = job.deadline;
      queue_.push_back(std::move(job));
      stats_.on_submitted(static_cast<int>(queue_.size()));
      if (use_exec_) {
        // Deadline expiry is a timer, not a poll: a still-queued job
        // resolves the moment its budget lapses. Cancelled when the job
        // dispatches (or at shutdown).
        if (has_deadline) arm_deadline_timer_locked(id, deadline);
        schedule_drain_locked();
      }
    }
  }
  if (rejection == JobStatus::Ok) {
    if (!use_exec_) cv_.notify_one();
    return ticket;
  }

  // Rejection path: resolve immediately, never block the caller.
  RolloutResult result;
  result.status = rejection;
  result.job_id = ticket.id;
  switch (rejection) {
    case JobStatus::QueueFull:
      result.error = "queue at capacity";
      break;
    case JobStatus::DeadlineExceeded:
      result.error = "deadline already expired at submit";
      break;
    default:
      result.error = "scheduler shutting down";
      break;
  }
  if (job.has_cache_key) {
    // The job claimed flight leadership before being rejected: release
    // the flight so followers fail fast instead of waiting forever, and
    // drop the cancel-flag registration the consult made.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      live_flags_.erase(job.id);
    }
    config_.cache->abandon(job.cache_key, {},
                           static_cast<int>(rejection), result.error);
  }
  stats_.on_rejected(rejection);
  job.promise.set_value(std::move(result));
  return ticket;
}

JobScheduler::CacheOutcome JobScheduler::consult_cache(Job& job) {
  if (job.request.steps <= 0) return CacheOutcome::Enqueue;
  GNS_TRACE_SCOPE_T("serve.scheduler.cache_consult", job.request.trace_id);
  Timer cache_timer;
  const ModelRegistry::Resolved model = registry_->resolve(job.request.model);
  if (model.simulator == nullptr) {
    return CacheOutcome::Enqueue;  // execute() will type ModelNotFound
  }
  const std::uint64_t key = compute_cache_key(job.request, model.digest,
                                              model.simulator->features());
  job.cache_key = key;

  // Everything follower fulfillment needs, detached from the Job (which
  // dies when submit returns). The promise lives here for ALL outcomes
  // and is moved back on Hit/Lead.
  struct FollowerState {
    std::promise<RolloutResult> promise;
    std::shared_ptr<std::atomic<bool>> cancelled;
    std::uint64_t id = 0;
    Clock::time_point submitted;
    Clock::time_point deadline;
    bool has_deadline = false;
    std::uint64_t trace_id = 0;
    double decode_us = 0.0;
    double cache_us = 0.0;
  };
  auto state = std::make_shared<FollowerState>();
  state->promise = std::move(job.promise);
  state->cancelled = job.cancelled;
  state->id = job.id;
  state->submitted = job.submitted;
  state->deadline = job.deadline;
  state->has_deadline = job.has_deadline;
  state->trace_id = job.request.trace_id;
  state->decode_us = job.request.decode_us;

  // Register the cancel flag BEFORE the join attempt: the leader can
  // finish on another thread the instant lookup_or_join returns, and its
  // callback erases this registration. (Hit/Lead paths clean up below —
  // for Lead the enqueue overwrites the same entry idempotently.)
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live_flags_[job.id] = job.cancelled;
  }

  store::FollowerFn on_done = [this, state](store::Frames frames,
                                            bool complete, int code,
                                            const std::string& error) {
    RolloutResult result;
    result.cached = true;
    result.frames = std::move(frames);
    if (state->cancelled->load(std::memory_order_relaxed)) {
      result.status = JobStatus::Cancelled;
      result.frames.clear();  // a cancelled job returns no frames it ran for
    } else if (state->has_deadline && Clock::now() > state->deadline) {
      result.status = JobStatus::DeadlineExceeded;
      result.error = "deadline exceeded while coalesced onto an identical "
                     "in-flight rollout";
    } else if (complete) {
      result.status = JobStatus::Ok;
    } else {
      result.status = static_cast<JobStatus>(code);
      result.error = error;
    }
    result.job_id = state->id;
    result.cache_outcome = serve::CacheOutcome::Joined;
    result.trace_id = state->trace_id;
    const double wait_ms = std::chrono::duration<double, std::milli>(
                               Clock::now() - state->submitted)
                               .count();
    result.queue_ms = wait_ms;  // a follower's whole life is queue wait
    result.total_ms = wait_ms;
    result.phases.decode_us = state->decode_us;
    result.phases.cache_us = state->cache_us;
    result.phases.queue_us =
        std::max(0.0, wait_ms * 1e3 - state->cache_us);
    int depth = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      live_flags_.erase(state->id);
      depth = static_cast<int>(queue_.size());
    }
    stats_.on_resolved(result, depth);
    state->promise.set_value(std::move(result));
  };

  // Stamped before the join attempt: a joined follower's callback can fire
  // on the leader's thread the instant lookup_or_join returns, so writing
  // state afterwards would race.
  state->cache_us = cache_timer.millis() * 1e3;

  store::RolloutCache::Lookup found =
      config_.cache->lookup_or_join(key, job.request.steps, std::move(on_done));

  switch (found.outcome) {
    case store::RolloutCache::Outcome::Hit: {
      job.promise = std::move(state->promise);
      int depth = 0;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        live_flags_.erase(job.id);
        depth = static_cast<int>(queue_.size());
      }
      RolloutResult result;
      result.status = JobStatus::Ok;
      result.cached = true;
      result.cache_outcome = serve::CacheOutcome::Hit;
      result.trace_id = job.request.trace_id;
      result.frames = std::move(found.frames);
      result.job_id = job.id;
      result.total_ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - job.submitted)
                            .count();
      result.phases.decode_us = job.request.decode_us;
      result.phases.cache_us = cache_timer.millis() * 1e3;
      stats_.on_submitted(depth);
      stats_.on_resolved(result, depth);
      if (slow_request_threshold_ms() >= 0.0 &&
          result.total_ms >= slow_request_threshold_ms()) {
        log_slow_request(job.request, result);
      }
      job.promise.set_value(std::move(result));
      return CacheOutcome::Resolved;
    }
    case store::RolloutCache::Outcome::Joined: {
      int depth = 0;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        depth = static_cast<int>(queue_.size());
      }
      stats_.on_submitted(depth);  // accepted work, just not queued work
      return CacheOutcome::Resolved;
    }
    case store::RolloutCache::Outcome::Lead:
      job.promise = std::move(state->promise);
      job.has_cache_key = true;
      job.cache_us = cache_timer.millis() * 1e3;
      return CacheOutcome::Enqueue;
  }
  return CacheOutcome::Enqueue;  // unreachable
}

bool JobScheduler::cancel(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = live_flags_.find(job_id);
  if (it == live_flags_.end()) return false;
  it->second->store(true, std::memory_order_relaxed);
  return true;
}

void JobScheduler::pause() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
    // Mirror the thread pool, where a pause interrupts the coalescing
    // wait: batches already parked dispatch immediately (a popped job
    // runs during pause; only queued jobs hold their place).
    if (use_exec_) flush_pending_locked();
  }
  cv_.notify_all();
}

void JobScheduler::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
    if (use_exec_ && !queue_.empty()) schedule_drain_locked();
  }
  cv_.notify_all();
}

void JobScheduler::shutdown(bool drain) {
  std::deque<Job> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    paused_ = false;  // a paused scheduler must still drain and exit
    if (!drain) orphans.swap(queue_);
    if (use_exec_) {
      // Queued-deadline timers would stall quiescence below (a 30 s
      // budget keeps its timer armed for 30 s); chains re-check expiry
      // at dispatch anyway, so cancel them all.
      for (auto& entry : deadline_timers_) cancel_timer_locked(entry.second);
      deadline_timers_.clear();
      flush_pending_locked();  // stop waiting out batch windows
      if (!queue_.empty()) schedule_drain_locked();
    }
  }
  cv_.notify_all();
  for (Job& job : orphans) {
    RolloutResult result;
    result.status = JobStatus::ShutDown;
    result.error = "scheduler shut down before execution";
    resolve(std::move(job), std::move(result));
  }
  if (use_exec_) {
    // Quiesce: every chain, parked batch, drain task, and armed timer is
    // owned by this object — nothing may outlive it on the (shared,
    // global) executor.
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] {
      return tasks_inflight_ == 0 && active_chains_ == 0 &&
             pending_batches_.empty() && queue_.empty();
    });
  }
}

int JobScheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(queue_.size());
}

void JobScheduler::worker_loop() {
  for (;;) {
    std::vector<Job> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;  // spurious wake while paused
      }
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      batch.front().dequeued = Clock::now();
      if (config_.max_batch > 1) {
        collect_batch(lock, batch);
        // The coalescing wait may have swallowed notifications aimed at
        // idle workers; re-arm them for whatever is still queued.
        if (!queue_.empty()) cv_.notify_one();
      }
    }
    stats_.on_dispatch(static_cast<int>(batch.size()));
    if (batch.size() == 1 && config_.max_batch <= 1) {
      RolloutResult result = execute(batch.front());
      resolve(std::move(batch.front()), std::move(result));
    } else {
      execute_batch(std::move(batch));
    }
  }
}

void JobScheduler::collect_batch(std::unique_lock<std::mutex>& lock,
                                 std::vector<Job>& batch) {
  // By value: growing `batch` reallocates and would dangle a reference
  // into its front element.
  const std::string model = batch.front().request.model;
  const auto take_compatible = [this, &batch, &model] {
    for (auto it = queue_.begin();
         it != queue_.end() &&
         static_cast<int>(batch.size()) < config_.max_batch;) {
      if (it->request.model == model) {
        batch.push_back(std::move(*it));
        batch.back().dequeued = Clock::now();
        it = queue_.erase(it);
      } else {
        ++it;  // incompatible jobs keep their place for other workers
      }
    }
  };
  take_compatible();

  if (config_.batch_window_us <= 0.0) return;
  const Clock::time_point window_end =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::micro>(
                             config_.batch_window_us));
  while (static_cast<int>(batch.size()) < config_.max_batch && !stopping_ &&
         !paused_) {
    // Never hold a member past its own deadline just to fill the batch:
    // the wait is capped by the earliest member deadline.
    Clock::time_point wake = window_end;
    for (const Job& job : batch) {
      if (job.has_deadline) wake = std::min(wake, job.deadline);
    }
    if (Clock::now() >= wake) break;
    cv_.wait_until(lock, wake);
    take_compatible();
  }
}

RolloutResult JobScheduler::execute(Job& job) const {
  GNS_TRACE_SCOPE_IT("serve.scheduler.execute",
                     static_cast<std::int64_t>(job.id),
                     job.request.trace_id);
  const Clock::time_point started = Clock::now();
  RolloutResult result;
  result.queue_ms =
      std::chrono::duration<double, std::milli>(started - job.submitted)
          .count();
  if (job.dequeued != Clock::time_point{}) {
    result.phases.batch_wait_us =
        std::chrono::duration<double, std::micro>(started - job.dequeued)
            .count();
  }

  const auto expired = [&job] {
    return job.has_deadline && Clock::now() > job.deadline;
  };

  if (job.cancelled->load(std::memory_order_relaxed)) {
    result.status = JobStatus::Cancelled;
    return result;
  }
  if (expired()) {
    result.status = JobStatus::DeadlineExceeded;
    result.error = "deadline exceeded while queued";
    return result;
  }

  const ModelRegistry::Handle sim = registry_->get(job.request.model);
  if (sim == nullptr) {
    result.status = JobStatus::ModelNotFound;
    result.error = "no model registered as '" + job.request.model + "'";
    return result;
  }

  Timer exec_timer;
  try {
    const RolloutRequest& req = job.request;
    // Per-job tensors only; the tape is thread-local and off, so the only
    // state shared with sibling jobs is the (const) model weights.
    ad::NoGradGuard no_grad;
    MemberInputs inputs = build_member_inputs(req, sim->features());
    core::Window& window = inputs.window;
    const core::SceneContext& context = inputs.context;

    result.frames.reserve(static_cast<std::size_t>(req.steps));
    result.status = JobStatus::Ok;
    for (int s = 0; s < req.steps; ++s) {
      if (job.cancelled->load(std::memory_order_relaxed)) {
        result.status = JobStatus::Cancelled;
        break;
      }
      if (expired()) {
        result.status = JobStatus::DeadlineExceeded;
        result.error = "deadline exceeded after " + std::to_string(s) +
                       " of " + std::to_string(req.steps) + " steps";
        break;
      }
      // Mirrors LearnedSimulator::rollout exactly (same op sequence), so
      // chunked serving stays bit-identical to the one-shot API.
      ad::Tensor next = sim->step(window, context);
      result.frames.push_back(core::tensor_to_frame(next));
      window.erase(window.begin());
      window.push_back(next);
    }
  } catch (const std::exception& e) {
    result.status = JobStatus::ExecutionError;
    result.error = e.what();
  }
  result.exec_ms = exec_timer.millis();
  return result;
}

void JobScheduler::execute_batch(std::vector<Job> jobs) {
  GNS_TRACE_SCOPE_I("serve.scheduler.execute_batch",
                    static_cast<std::int64_t>(jobs.size()));
  const Clock::time_point started = Clock::now();
  const std::size_t count = jobs.size();
  std::vector<RolloutResult> results(count);
  for (std::size_t i = 0; i < count; ++i) {
    results[i].queue_ms = std::chrono::duration<double, std::milli>(
                              started - jobs[i].submitted)
                              .count();
    if (jobs[i].dequeued != Clock::time_point{}) {
      results[i].phases.batch_wait_us =
          std::chrono::duration<double, std::micro>(started -
                                                    jobs[i].dequeued)
              .count();
    }
  }

  // collect_batch guarantees every member targets the same model, so one
  // registry lookup covers the batch.
  const ModelRegistry::Handle sim = registry_->get(jobs[0].request.model);

  // Pre-flight: resolve members that never get to run and build validated
  // inputs for the rest. A malformed member fails alone — it must not take
  // its batch siblings down with it.
  std::vector<std::size_t> members;  ///< job index per live batch member
  std::vector<core::Window> windows;
  std::vector<core::SceneContext> contexts;
  std::vector<int> steps;
  ad::NoGradGuard no_grad;
  for (std::size_t i = 0; i < count; ++i) {
    RolloutResult& result = results[i];
    const Job& job = jobs[i];
    if (job.cancelled->load(std::memory_order_relaxed)) {
      result.status = JobStatus::Cancelled;
      continue;
    }
    if (job.has_deadline && Clock::now() > job.deadline) {
      result.status = JobStatus::DeadlineExceeded;
      result.error = "deadline exceeded while queued";
      continue;
    }
    if (sim == nullptr) {
      result.status = JobStatus::ModelNotFound;
      result.error = "no model registered as '" + job.request.model + "'";
      continue;
    }
    try {
      MemberInputs inputs = build_member_inputs(job.request, sim->features());
      members.push_back(i);
      windows.push_back(std::move(inputs.window));
      contexts.push_back(std::move(inputs.context));
      steps.push_back(job.request.steps);
    } catch (const std::exception& e) {
      result.status = JobStatus::ExecutionError;
      result.error = e.what();
    }
  }

  if (!members.empty()) {
    const std::int64_t batch_start_ns = obs::trace_now_ns();
    Timer exec_timer;
    try {
      core::BatchedSimulator batched(sim);
      // The gate runs before every batched step: an expired or cancelled
      // member is compacted out with its partial frames while the rest of
      // the batch keeps stepping — so the earliest member deadline is
      // honored even though the members share forward passes.
      const auto gate = [&jobs, &members, &results](int m) {
        const Job& job = jobs[members[m]];
        RolloutResult& result = results[members[m]];
        if (job.cancelled->load(std::memory_order_relaxed)) {
          result.status = JobStatus::Cancelled;
          return false;
        }
        if (job.has_deadline && Clock::now() > job.deadline) {
          result.status = JobStatus::DeadlineExceeded;
          return false;
        }
        return true;
      };
      auto frames = batched.rollout(windows, steps, contexts, gate);
      for (std::size_t m = 0; m < members.size(); ++m) {
        RolloutResult& result = results[members[m]];
        result.frames = std::move(frames[m]);
        if (result.status == JobStatus::DeadlineExceeded) {
          result.error = "deadline exceeded after " +
                         std::to_string(result.frames.size()) + " of " +
                         std::to_string(steps[m]) + " steps";
        } else if (result.status == JobStatus::ExecutionError &&
                   result.error.empty()) {
          result.status = JobStatus::Ok;  // default-initialized: ran clean
        }
      }
    } catch (const std::exception& e) {
      // A batch-level failure (bad shapes, NaN guard, ...) fails every
      // member that was still running.
      for (std::size_t m : members) {
        if (results[m].status == JobStatus::ExecutionError &&
            results[m].error.empty()) {
          results[m].error = e.what();
        }
      }
    }
    const double exec_ms = exec_timer.millis();
    // Forward passes are shared, so per-member execution time is the
    // batch's wall time (the latency a member actually observed).
    for (std::size_t m : members) results[m].exec_ms = exec_ms;
    // One span per member carrying its own trace id, so a traced request
    // stays visible even when its compute was amortized across a batch.
    const std::int64_t batch_end_ns = obs::trace_now_ns();
    for (std::size_t m : members) {
      obs::record_manual_span("serve.scheduler.execute_member",
                              batch_start_ns, batch_end_ns,
                              jobs[m].request.trace_id,
                              static_cast<std::int64_t>(jobs[m].id));
    }
  }

  for (std::size_t i = 0; i < count; ++i)
    resolve(std::move(jobs[i]), std::move(results[i]));
}

void JobScheduler::resolve(Job&& job, RolloutResult result) {
  result.job_id = job.id;
  result.total_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - job.submitted)
          .count();
  result.trace_id = job.request.trace_id;
  if (result.status == JobStatus::Ok && !result.cached) {
    result.cache_outcome = job.has_cache_key ? serve::CacheOutcome::Miss
                                             : serve::CacheOutcome::None;
  }
  // Phase assembly for the compute path (cache hit/join phases are filled
  // where those paths resolve). queue_us is the time from submit to the
  // worker pull, minus what the cache consult already accounted for.
  result.phases.decode_us = job.request.decode_us;
  result.phases.cache_us = job.cache_us;
  if (job.dequeued != Clock::time_point{}) {
    const double pre_dispatch_us =
        std::chrono::duration<double, std::micro>(job.dequeued -
                                                  job.submitted)
            .count();
    result.phases.queue_us = std::max(0.0, pre_dispatch_us - job.cache_us);
  }
  result.phases.compute_us = result.exec_ms * 1e3;
  // Flight-leader funnel: every terminal path of a leading job releases
  // its flight exactly once — complete() after a bitwise-complete rollout
  // (which also inserts it into the store), abandon() for anything less
  // (partial prefixes still salvage followers they cover). This runs
  // before the promise resolves so a caller that observes completion can
  // immediately re-submit and hit.
  if (job.has_cache_key && config_.cache != nullptr) {
    if (result.status == JobStatus::Ok &&
        result.frames.size() ==
            static_cast<std::size_t>(job.request.steps)) {
      config_.cache->complete(job.cache_key, result.frames);
    } else {
      config_.cache->abandon(job.cache_key, result.frames,
                             static_cast<int>(result.status), result.error);
    }
  }
  int depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live_flags_.erase(job.id);
    depth = static_cast<int>(queue_.size());
  }
  stats_.on_resolved(result, depth);
  if (slow_request_threshold_ms() >= 0.0 &&
      result.total_ms >= slow_request_threshold_ms()) {
    log_slow_request(job.request, result);
  }
  job.promise.set_value(std::move(result));
}

// ---------------------------------------------------------------------------
// Executor-mode machinery (use_exec_). The scheduler owns no threads here:
// drains, batch windows, queued deadlines, and rollout steps are all tasks
// or timers on the global work-stealing executor. Every path below funnels
// into the SAME execute/resolve semantics as the thread pool — identical
// status codes, error strings, and (bitwise) frames.
// ---------------------------------------------------------------------------

/// One in-flight rollout chain: preflighted on its first task, then
/// advanced one step per task so a long rollout never monopolizes a worker.
/// Tensors migrate between executor workers across tasks; that is safe
/// because arena buffers are plain heap vectors (ad/arena.cpp) and each
/// task re-enters NoGradGuard for its own thread-local tape flag.
struct JobScheduler::ChainState {
  std::vector<Job> jobs;
  std::vector<RolloutResult> results;
  ModelRegistry::Handle sim;
  bool single = false;    ///< one job, max_batch <= 1: mirror execute()
  bool prepared = false;  ///< preflight passed; stepping may begin
  bool done = false;      ///< terminal: finish_chain on this task
  // Single-job path (mirrors execute()).
  core::Window window;
  core::SceneContext context;
  // Batched path (mirrors execute_batch()).
  std::vector<std::size_t> members;  ///< job index per live batch member
  std::vector<int> steps;
  std::unique_ptr<core::BatchedRollout> rollout;
  bool batch_failed = false;  ///< batch-level exception: frames are void
  Clock::time_point exec_started{};
  std::int64_t exec_started_ns = 0;
};

void JobScheduler::spawn_task_locked(std::function<void()> fn) {
  ++tasks_inflight_;
  exec::Executor::global().submit([this, fn = std::move(fn)]() mutable {
    fn();
    std::lock_guard<std::mutex> lock(mutex_);
    --tasks_inflight_;
    idle_cv_.notify_all();
  });
}

exec::Executor::TimerId JobScheduler::schedule_timer_locked(
    std::chrono::steady_clock::time_point due, std::function<void()> fn) {
  ++tasks_inflight_;
  return exec::Executor::global().schedule_at(
      due, [this, fn = std::move(fn)]() mutable {
        fn();
        std::lock_guard<std::mutex> lock(mutex_);
        --tasks_inflight_;
        idle_cv_.notify_all();
      });
}

bool JobScheduler::cancel_timer_locked(exec::Executor::TimerId id) {
  // cancel_timer never blocks on a firing callback (it just returns
  // false), so calling it under mutex_ cannot deadlock with the
  // callback's own lock acquisition.
  if (!exec::Executor::global().cancel_timer(id)) return false;
  --tasks_inflight_;
  idle_cv_.notify_all();
  return true;
}

void JobScheduler::schedule_drain_locked() {
  if (drain_scheduled_) return;
  drain_scheduled_ = true;
  spawn_task_locked([this] { drain_ready(); });
}

void JobScheduler::arm_deadline_timer_locked(std::uint64_t id,
                                             Clock::time_point due) {
  deadline_timers_[id] =
      schedule_timer_locked(due, [this, id] { expire_queued(id); });
}

void JobScheduler::cancel_deadline_timer_locked(std::uint64_t id) {
  auto it = deadline_timers_.find(id);
  if (it == deadline_timers_.end()) return;
  // A lost race (timer already firing) is fine: expire_queued only acts
  // on jobs it still finds in queue_ — whoever removes a job from the
  // queue owns its resolution.
  cancel_timer_locked(it->second);
  deadline_timers_.erase(it);
}

void JobScheduler::expire_queued(std::uint64_t id) {
  Job job;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    deadline_timers_.erase(id);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->id == id) {
        job = std::move(*it);
        queue_.erase(it);
        found = true;
        break;
      }
    }
  }
  if (!found) return;  // dispatched or resolved first
  RolloutResult result;
  result.status = JobStatus::DeadlineExceeded;
  result.error = "deadline exceeded while queued";
  result.queue_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                              job.submitted)
                        .count();
  resolve(std::move(job), std::move(result));
}

void JobScheduler::take_compatible_locked(std::vector<Job>& batch,
                                          const std::string& model) {
  for (auto it = queue_.begin();
       it != queue_.end() &&
       static_cast<int>(batch.size()) < config_.max_batch;) {
    if (it->request.model == model) {
      cancel_deadline_timer_locked(it->id);
      batch.push_back(std::move(*it));
      batch.back().dequeued = Clock::now();
      it = queue_.erase(it);
    } else {
      ++it;  // incompatible jobs keep their place for other chains
    }
  }
}

void JobScheduler::flush_pending_locked() {
  for (auto& entry : pending_batches_) {
    PendingBatch& pb = *entry.second;
    if (pb.timer != 0 && cancel_timer_locked(pb.timer)) {
      pb.timer = 0;
      const std::uint64_t id = entry.first;
      spawn_task_locked([this, id] { dispatch_pending(id); });
    }
    // Cancel lost: the timer is firing concurrently and will dispatch.
  }
}

void JobScheduler::drain_ready() {
  std::vector<std::vector<Job>> dispatches;
  std::vector<std::uint64_t> filled;  ///< parked batches now at max_batch
  {
    std::lock_guard<std::mutex> lock(mutex_);
    drain_scheduled_ = false;
    if (!paused_) {
      // Parked batches absorb compatible arrivals first: a job prefers
      // joining a batch that is already waiting over opening a new chain
      // slot, and a batch that fills dispatches without waiting out its
      // window (early dispatch requires winning the timer cancel race).
      for (auto& entry : pending_batches_) {
        PendingBatch& pb = *entry.second;
        if (static_cast<int>(pb.jobs.size()) < config_.max_batch)
          take_compatible_locked(pb.jobs, pb.model);
        if (static_cast<int>(pb.jobs.size()) >= config_.max_batch &&
            pb.timer != 0 && cancel_timer_locked(pb.timer)) {
          pb.timer = 0;
          filled.push_back(entry.first);
        }
      }
      while (!queue_.empty() && active_chains_ < config_.workers) {
        Job leader = std::move(queue_.front());
        queue_.pop_front();
        cancel_deadline_timer_locked(leader.id);
        leader.dequeued = Clock::now();
        // By value: growing `batch` reallocates and would dangle a
        // reference into its front element.
        const std::string model = leader.request.model;
        std::vector<Job> batch;
        batch.push_back(std::move(leader));
        if (config_.max_batch > 1) take_compatible_locked(batch, model);
        ++active_chains_;  // parked batches hold their slot too
        Clock::time_point wake = Clock::time_point::max();
        if (static_cast<int>(batch.size()) < config_.max_batch &&
            config_.batch_window_us > 0.0 && !stopping_) {
          // Same cap as collect_batch: never hold a member past its own
          // deadline just to fill the batch.
          wake = Clock::now() +
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::micro>(
                         config_.batch_window_us));
          for (const Job& job : batch) {
            if (job.has_deadline) wake = std::min(wake, job.deadline);
          }
        }
        if (wake != Clock::time_point::max() && Clock::now() < wake) {
          auto pb = std::make_shared<PendingBatch>();
          pb->model = batch.front().request.model;
          const std::uint64_t leader_id = batch.front().id;
          pb->jobs = std::move(batch);
          pending_batches_[leader_id] = pb;
          pb->timer = schedule_timer_locked(
              wake, [this, leader_id] { dispatch_pending(leader_id); });
        } else {
          dispatches.push_back(std::move(batch));
        }
      }
    }
  }
  for (auto& batch : dispatches) {
    stats_.on_dispatch(static_cast<int>(batch.size()));
    start_chain(std::move(batch));
  }
  for (std::uint64_t id : filled) dispatch_pending(id);
}

void JobScheduler::dispatch_pending(std::uint64_t leader_id) {
  std::vector<Job> jobs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pending_batches_.find(leader_id);
    if (it == pending_batches_.end()) return;  // lost a dispatch race
    jobs = std::move(it->second->jobs);
    pending_batches_.erase(it);
  }
  // Pre-dispatch sweep: a job cancelled (or expired) while its batch
  // window was pending resolves HERE and never executes — the batch
  // timer firing is not a license to run members whose fate is already
  // decided (tests/test_exec_serve.cpp: CancelWhileBatchWindowPending).
  std::vector<Job> live;
  live.reserve(jobs.size());
  for (Job& job : jobs) {
    RolloutResult result;
    result.queue_ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - job.submitted)
                          .count();
    if (job.cancelled->load(std::memory_order_relaxed)) {
      result.status = JobStatus::Cancelled;
      resolve(std::move(job), std::move(result));
    } else if (job.has_deadline && Clock::now() > job.deadline) {
      result.status = JobStatus::DeadlineExceeded;
      result.error = "deadline exceeded while queued";
      resolve(std::move(job), std::move(result));
    } else {
      live.push_back(std::move(job));
    }
  }
  if (live.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    --active_chains_;  // the parked batch's slot opens with no chain
    if (!queue_.empty()) schedule_drain_locked();
    idle_cv_.notify_all();
    return;
  }
  stats_.on_dispatch(static_cast<int>(live.size()));
  start_chain(std::move(live));
}

void JobScheduler::start_chain(std::vector<Job> jobs) {
  auto chain = std::make_shared<ChainState>();
  chain->single = jobs.size() == 1 && config_.max_batch <= 1;
  chain->jobs = std::move(jobs);
  chain->results.resize(chain->jobs.size());
  std::lock_guard<std::mutex> lock(mutex_);
  spawn_task_locked([this, chain] { chain_step(chain); });
}

void JobScheduler::chain_step(const std::shared_ptr<ChainState>& chain) {
  // Per-task guard: the tape flag is thread-local and this chain's tasks
  // land on whichever worker steals them.
  ad::NoGradGuard no_grad;
  if (!chain->prepared && !chain->done) {
    const Clock::time_point started = Clock::now();
    for (std::size_t i = 0; i < chain->jobs.size(); ++i) {
      chain->results[i].queue_ms = std::chrono::duration<double, std::milli>(
                                       started - chain->jobs[i].submitted)
                                       .count();
      if (chain->jobs[i].dequeued != Clock::time_point{}) {
        chain->results[i].phases.batch_wait_us =
            std::chrono::duration<double, std::micro>(
                started - chain->jobs[i].dequeued)
                .count();
      }
    }
    chain->sim = registry_->get(chain->jobs[0].request.model);
    if (chain->single) {
      Job& job = chain->jobs[0];
      RolloutResult& result = chain->results[0];
      if (job.cancelled->load(std::memory_order_relaxed)) {
        result.status = JobStatus::Cancelled;
        chain->done = true;
      } else if (job.has_deadline && Clock::now() > job.deadline) {
        result.status = JobStatus::DeadlineExceeded;
        result.error = "deadline exceeded while queued";
        chain->done = true;
      } else if (chain->sim == nullptr) {
        result.status = JobStatus::ModelNotFound;
        result.error =
            "no model registered as '" + job.request.model + "'";
        chain->done = true;
      } else {
        chain->exec_started = Clock::now();
        chain->exec_started_ns = obs::trace_now_ns();
        try {
          MemberInputs inputs =
              build_member_inputs(job.request, chain->sim->features());
          chain->window = std::move(inputs.window);
          chain->context = std::move(inputs.context);
          result.frames.reserve(
              static_cast<std::size_t>(job.request.steps));
          result.status = JobStatus::Ok;
          chain->prepared = true;
        } catch (const std::exception& e) {
          result.status = JobStatus::ExecutionError;
          result.error = e.what();
          chain->done = true;
        }
      }
    } else {
      // Pre-flight, mirroring execute_batch: resolve members that never
      // get to run, validate the rest. A malformed member fails alone.
      std::vector<core::Window> windows;
      std::vector<core::SceneContext> contexts;
      for (std::size_t i = 0; i < chain->jobs.size(); ++i) {
        RolloutResult& result = chain->results[i];
        const Job& job = chain->jobs[i];
        if (job.cancelled->load(std::memory_order_relaxed)) {
          result.status = JobStatus::Cancelled;
          continue;
        }
        if (job.has_deadline && Clock::now() > job.deadline) {
          result.status = JobStatus::DeadlineExceeded;
          result.error = "deadline exceeded while queued";
          continue;
        }
        if (chain->sim == nullptr) {
          result.status = JobStatus::ModelNotFound;
          result.error =
              "no model registered as '" + job.request.model + "'";
          continue;
        }
        try {
          MemberInputs inputs =
              build_member_inputs(job.request, chain->sim->features());
          chain->members.push_back(i);
          windows.push_back(std::move(inputs.window));
          contexts.push_back(std::move(inputs.context));
          chain->steps.push_back(job.request.steps);
        } catch (const std::exception& e) {
          result.status = JobStatus::ExecutionError;
          result.error = e.what();
        }
      }
      if (chain->members.empty()) {
        chain->done = true;
      } else {
        chain->exec_started = Clock::now();
        chain->exec_started_ns = obs::trace_now_ns();
        try {
          chain->rollout = std::make_unique<core::BatchedRollout>(
              chain->sim, windows, chain->steps, contexts);
          chain->prepared = true;
        } catch (const std::exception& e) {
          for (std::size_t m : chain->members) {
            if (chain->results[m].status == JobStatus::ExecutionError &&
                chain->results[m].error.empty()) {
              chain->results[m].error = e.what();
            }
          }
          chain->batch_failed = true;
          chain->done = true;
        }
      }
    }
    if (chain->done) {
      finish_chain(chain);
      return;
    }
  }

  // One rollout step, then yield the worker: resubmit as a continuation.
  if (chain->single) {
    Job& job = chain->jobs[0];
    RolloutResult& result = chain->results[0];
    const int total = job.request.steps;
    if (job.cancelled->load(std::memory_order_relaxed)) {
      result.status = JobStatus::Cancelled;  // keeps frames computed so far
      chain->done = true;
    } else if (job.has_deadline && Clock::now() > job.deadline) {
      result.status = JobStatus::DeadlineExceeded;
      result.error = "deadline exceeded after " +
                     std::to_string(result.frames.size()) + " of " +
                     std::to_string(total) + " steps";
      chain->done = true;
    } else {
      try {
        // Mirrors LearnedSimulator::rollout exactly (same op sequence),
        // so chunked serving stays bit-identical to the one-shot API.
        ad::Tensor next = chain->sim->step(chain->window, chain->context);
        result.frames.push_back(core::tensor_to_frame(next));
        chain->window.erase(chain->window.begin());
        chain->window.push_back(next);
        if (static_cast<int>(result.frames.size()) >= total)
          chain->done = true;
      } catch (const std::exception& e) {
        result.status = JobStatus::ExecutionError;
        result.error = e.what();
        chain->done = true;
      }
    }
  } else {
    // The gate runs before every batched step: an expired or cancelled
    // member is compacted out with its partial frames while the rest of
    // the batch keeps stepping (exactly execute_batch's gate).
    const auto gate = [&chain](int m) {
      const Job& job = chain->jobs[chain->members[m]];
      RolloutResult& result = chain->results[chain->members[m]];
      if (job.cancelled->load(std::memory_order_relaxed)) {
        result.status = JobStatus::Cancelled;
        return false;
      }
      if (job.has_deadline && Clock::now() > job.deadline) {
        result.status = JobStatus::DeadlineExceeded;
        return false;
      }
      return true;
    };
    try {
      if (!chain->rollout->step_once(gate)) chain->done = true;
    } catch (const std::exception& e) {
      // Batch-level failure: fails every member still running, exactly
      // like execute_batch's catch.
      for (std::size_t m : chain->members) {
        if (chain->results[m].status == JobStatus::ExecutionError &&
            chain->results[m].error.empty()) {
          chain->results[m].error = e.what();
        }
      }
      chain->batch_failed = true;
      chain->done = true;
    }
  }

  if (chain->done) {
    finish_chain(chain);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  spawn_task_locked([this, chain] { chain_step(chain); });
}

void JobScheduler::finish_chain(const std::shared_ptr<ChainState>& chain) {
  const bool ran = chain->exec_started_ns != 0;
  if (ran) {
    const double exec_ms = std::chrono::duration<double, std::milli>(
                               Clock::now() - chain->exec_started)
                               .count();
    const std::int64_t end_ns = obs::trace_now_ns();
    if (chain->single) {
      chain->results[0].exec_ms = exec_ms;
      obs::record_manual_span("serve.scheduler.execute",
                              chain->exec_started_ns, end_ns,
                              chain->jobs[0].request.trace_id,
                              static_cast<std::int64_t>(chain->jobs[0].id));
    } else {
      if (!chain->batch_failed && chain->rollout != nullptr) {
        auto frames = chain->rollout->take_frames();
        for (std::size_t m = 0; m < chain->members.size(); ++m) {
          RolloutResult& result = chain->results[chain->members[m]];
          result.frames = std::move(frames[m]);
          if (result.status == JobStatus::DeadlineExceeded) {
            result.error = "deadline exceeded after " +
                           std::to_string(result.frames.size()) + " of " +
                           std::to_string(chain->steps[m]) + " steps";
          } else if (result.status == JobStatus::ExecutionError &&
                     result.error.empty()) {
            result.status = JobStatus::Ok;  // default-initialized: ran clean
          }
        }
      }
      // Forward passes are shared, so per-member execution time is the
      // batch's wall time; one span per member keeps traced requests
      // visible even when their compute was amortized across a batch.
      for (std::size_t m : chain->members) chain->results[m].exec_ms = exec_ms;
      obs::record_manual_span(
          "serve.scheduler.execute_batch", chain->exec_started_ns, end_ns, 0,
          static_cast<std::int64_t>(chain->jobs.size()));
      for (std::size_t m : chain->members) {
        obs::record_manual_span("serve.scheduler.execute_member",
                                chain->exec_started_ns, end_ns,
                                chain->jobs[m].request.trace_id,
                                static_cast<std::int64_t>(chain->jobs[m].id));
      }
    }
  }
  for (std::size_t i = 0; i < chain->jobs.size(); ++i)
    resolve(std::move(chain->jobs[i]), std::move(chain->results[i]));
  std::lock_guard<std::mutex> lock(mutex_);
  --active_chains_;
  if (!queue_.empty()) schedule_drain_locked();
  idle_cv_.notify_all();
}

}  // namespace gns::serve
