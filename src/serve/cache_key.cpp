#include "serve/cache_key.hpp"

#include "util/hash.hpp"

namespace gns::serve {

namespace {

void update_tensor(Fnv1a& h, const ad::Tensor& t) {
  h.update_i32(t.rows());
  h.update_i32(t.cols());
  h.update(t.data(), static_cast<std::size_t>(t.rows()) *
                         static_cast<std::size_t>(t.cols()) * sizeof(double));
}

void update_features(Fnv1a& h, const core::FeatureConfig& f) {
  h.update_i32(f.dim);
  h.update_i32(f.history);
  h.update_double(f.connectivity_radius);
  h.update_doubles(f.domain_lo);
  h.update_doubles(f.domain_hi);
  h.update_u32(f.material_feature ? 1u : 0u);
  h.update_i32(f.static_node_attrs);
}

}  // namespace

std::uint64_t model_digest(const core::LearnedSimulator& sim) {
  Fnv1a h;
  for (const ad::Tensor& p : sim.model().parameters()) update_tensor(h, p);
  const io::NormalizationStats& stats = sim.normalizer().stats();
  h.update_doubles(stats.vel_mean);
  h.update_doubles(stats.vel_std);
  h.update_doubles(stats.acc_mean);
  h.update_doubles(stats.acc_std);
  update_features(h, sim.features());
  return h.digest();
}

std::uint64_t compute_cache_key(const RolloutRequest& request,
                                std::uint64_t digest,
                                const core::FeatureConfig& features) {
  Fnv1a h;
  h.update_string(request.model);
  h.update_u64(digest);
  update_features(h, features);
  h.update_u64(static_cast<std::uint64_t>(request.window.size()));
  for (const std::vector<double>& frame : request.window) {
    h.update_doubles(frame);
  }
  h.update_double(request.material);
  h.update_doubles(request.node_attrs);
  return h.digest();
}

}  // namespace gns::serve
