#include "serve/registry.hpp"

#include <mutex>

#include "core/serialize.hpp"
#include "serve/cache_key.hpp"

namespace gns::serve {

bool ModelRegistry::load(const std::string& name, const std::string& path) {
  // Disk I/O, weight allocation, and digesting happen before the lock.
  std::shared_ptr<const core::LearnedSimulator> sim =
      core::load_simulator_shared(path);
  if (sim == nullptr) return false;
  const std::uint64_t digest = model_digest(*sim);
  std::unique_lock lock(mutex_);
  entries_[name] = Entry{std::move(sim), path, digest};
  return true;
}

void ModelRegistry::put(const std::string& name,
                        core::LearnedSimulator simulator) {
  auto sim = std::make_shared<const core::LearnedSimulator>(
      std::move(simulator));
  const std::uint64_t digest = model_digest(*sim);
  std::unique_lock lock(mutex_);
  entries_[name] = Entry{std::move(sim), std::string(), digest};
}

ModelRegistry::Handle ModelRegistry::get(const std::string& name) const {
  std::shared_lock lock(mutex_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.simulator;
}

ModelRegistry::Resolved ModelRegistry::resolve(const std::string& name) const {
  std::shared_lock lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return Resolved{};
  return Resolved{it->second.simulator, it->second.digest};
}

bool ModelRegistry::reload(const std::string& name) {
  std::string path;
  {
    std::shared_lock lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end() || it->second.path.empty()) return false;
    path = it->second.path;
  }
  return load(name, path);
}

bool ModelRegistry::erase(const std::string& name) {
  std::unique_lock lock(mutex_);
  return entries_.erase(name) > 0;
}

std::vector<std::string> ModelRegistry::names() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::size_t ModelRegistry::size() const {
  std::shared_lock lock(mutex_);
  return entries_.size();
}

}  // namespace gns::serve
