#pragma once

/// \file job.hpp
/// Request/result types of the rollout serving subsystem.
///
/// A RolloutRequest is a plain-data description of one inference job: the
/// seed position window, the scene conditioning, a step count, and an
/// optional wall-clock deadline. Keeping the request free of ad::Tensor
/// handles means client threads never share tape state with workers — each
/// worker materializes its own tensors from the flat frames, so concurrent
/// jobs against one registered model share only immutable weights.

#include <cstdint>
#include <string>
#include <vector>

namespace gns::serve {

/// Terminal state of a job. Every submitted job resolves to exactly one of
/// these; rejection paths (QueueFull, ModelNotFound, ...) are typed results,
/// never exceptions or blocked callers.
enum class JobStatus {
  Ok,                ///< rollout completed all requested steps
  QueueFull,         ///< rejected at submit: bounded queue at capacity
  DeadlineExceeded,  ///< deadline hit while queued or mid-rollout
  Cancelled,         ///< cancel() won the race before/while executing
  ModelNotFound,     ///< registry has no model under the requested name
  ExecutionError,    ///< rollout threw (bad shapes, NaN guard, ...)
  ShutDown,          ///< scheduler shut down without draining this job
};

[[nodiscard]] inline const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::Ok: return "ok";
    case JobStatus::QueueFull: return "queue_full";
    case JobStatus::DeadlineExceeded: return "deadline_exceeded";
    case JobStatus::Cancelled: return "cancelled";
    case JobStatus::ModelNotFound: return "model_not_found";
    case JobStatus::ExecutionError: return "execution_error";
    case JobStatus::ShutDown: return "shut_down";
  }
  return "unknown";
}

/// Where a job's frames came from, at cache granularity. Finer than
/// RolloutResult::cached: distinguishes a store hit from single-flight
/// coalescing behind another request's computation.
enum class CacheOutcome : std::uint8_t {
  None = 0,    ///< no cache configured, or non-Ok terminal state
  Miss = 1,    ///< computed live; result inserted into the cache
  Hit = 2,     ///< served from the content-addressed store
  Joined = 3,  ///< coalesced behind an identical in-flight computation
};

[[nodiscard]] inline const char* to_string(CacheOutcome o) {
  switch (o) {
    case CacheOutcome::None: return "none";
    case CacheOutcome::Miss: return "miss";
    case CacheOutcome::Hit: return "hit";
    case CacheOutcome::Joined: return "joined";
  }
  return "unknown";
}

/// Per-request phase breakdown, microseconds of wall time per stage of the
/// serving pipeline. Phases are sequential and non-overlapping for a given
/// request, so their sum approximates the server-side portion of the RTT
/// (client-observed RTT adds network transfer on top). Filled in
/// cooperatively: the net front-end stamps decode/serialize/write, the
/// scheduler stamps cache/queue/batch_wait/compute. Zero means "phase did
/// not happen" (e.g. cache_us on a cache-less scheduler, compute_us on a
/// cache hit).
struct PhaseTimeline {
  double decode_us = 0.0;      ///< wire frame -> RolloutRequest parse
  double cache_us = 0.0;       ///< cache key hash + store lookup
  double queue_us = 0.0;       ///< waiting in the scheduler queue
  double batch_wait_us = 0.0;  ///< coalescing window after dequeue
  double compute_us = 0.0;     ///< rollout execution on a worker
  double serialize_us = 0.0;   ///< frames -> wire chunks + status encode
  double write_us = 0.0;       ///< socket write/flush of the reply bytes

  /// Sum of all phases; the server-side latency this request actually
  /// accrued across the pipeline.
  [[nodiscard]] double total_us() const {
    return decode_us + cache_us + queue_us + batch_wait_us + compute_us +
           serialize_us + write_us;
  }
};

/// One rollout inference job.
struct RolloutRequest {
  std::string model;  ///< registry name of the simulator to run

  /// Seed window: window_size() frames, oldest first, each flat [N*dim]
  /// in the io::Trajectory layout.
  std::vector<std::vector<double>> window;

  int steps = 1;  ///< number of frames to predict

  /// Material parameter (tan φ); used iff the model's feature config has
  /// material_feature.
  double material = 0.0;

  /// Flat [N * static_node_attrs] per-particle attributes; used iff the
  /// model's feature config has static_node_attrs > 0.
  std::vector<double> node_attrs;

  /// Wall-clock budget in milliseconds measured from submit; 0 disables.
  /// Checked while queued and between rollout steps, so an expired job
  /// never occupies a worker for longer than one step. A negative value
  /// means the deadline already expired upstream (e.g. the net front-end
  /// charged buffering time against it): submit() rejects it immediately
  /// with DeadlineExceeded instead of queueing it.
  double deadline_ms = 0.0;

  /// Caller-chosen correlation id, stamped on every span this request
  /// touches (scheduler, cache, batch execution, chunk writes) and echoed
  /// in the result, so one Perfetto trace shows the cross-layer life of a
  /// request. 0 means "unset" — spans then carry no trace_id arg. The net
  /// front-end fills this from the wire (protocol v2); in-process callers
  /// may set any nonzero value.
  std::uint64_t trace_id = 0;

  /// Trace option bits from the wire (bit 0 = sampled). Reserved for
  /// propagation; the server currently records spans whenever tracing is
  /// enabled regardless of flags.
  std::uint8_t trace_flags = 0;

  /// Microseconds the front-end spent decoding the wire frame into this
  /// request; copied into PhaseTimeline::decode_us so the breakdown covers
  /// the full server-side path. 0 for in-process submissions.
  double decode_us = 0.0;
};

/// Outcome of a job. `frames` holds every frame predicted before the
/// terminal state — a DeadlineExceeded/Cancelled job may carry a partial
/// rollout prefix (frames computed so far), which is still a valid
/// trajectory prefix because the rollout is strictly sequential.
struct RolloutResult {
  JobStatus status = JobStatus::ExecutionError;
  std::string error;  ///< diagnostic message for ExecutionError

  std::vector<std::vector<double>> frames;  ///< predicted frames, flat [N*dim]

  std::uint64_t job_id = 0;
  double queue_ms = 0.0;  ///< time spent waiting in the queue
  double exec_ms = 0.0;   ///< time spent executing on a worker
  double total_ms = 0.0;  ///< submit-to-resolve wall time

  /// True when no rollout ran on this job's behalf: the frames came from
  /// the rollout cache (hit) or from an identical in-flight computation
  /// (single-flight coalescing). Bitwise identical to a live rollout
  /// either way — this flag is observability, not a quality marker.
  bool cached = false;

  /// Finer-grained provenance than `cached` (see CacheOutcome).
  CacheOutcome cache_outcome = CacheOutcome::None;

  /// Echo of RolloutRequest::trace_id for correlation.
  std::uint64_t trace_id = 0;

  /// Per-phase breakdown of where this request's latency went. The
  /// scheduler fills decode/cache/queue/batch_wait/compute; serialize and
  /// write stay zero for in-process callers and are stamped by the net
  /// front-end on the wire StatusReply (write_us is only known after the
  /// reply is flushed, so the wire value reports serialize-time knowledge
  /// and the flush cost lands in the serve.phase.write_us histogram).
  PhaseTimeline phases;

  [[nodiscard]] bool ok() const { return status == JobStatus::Ok; }
};

}  // namespace gns::serve
