#pragma once

/// \file job.hpp
/// Request/result types of the rollout serving subsystem.
///
/// A RolloutRequest is a plain-data description of one inference job: the
/// seed position window, the scene conditioning, a step count, and an
/// optional wall-clock deadline. Keeping the request free of ad::Tensor
/// handles means client threads never share tape state with workers — each
/// worker materializes its own tensors from the flat frames, so concurrent
/// jobs against one registered model share only immutable weights.

#include <cstdint>
#include <string>
#include <vector>

namespace gns::serve {

/// Terminal state of a job. Every submitted job resolves to exactly one of
/// these; rejection paths (QueueFull, ModelNotFound, ...) are typed results,
/// never exceptions or blocked callers.
enum class JobStatus {
  Ok,                ///< rollout completed all requested steps
  QueueFull,         ///< rejected at submit: bounded queue at capacity
  DeadlineExceeded,  ///< deadline hit while queued or mid-rollout
  Cancelled,         ///< cancel() won the race before/while executing
  ModelNotFound,     ///< registry has no model under the requested name
  ExecutionError,    ///< rollout threw (bad shapes, NaN guard, ...)
  ShutDown,          ///< scheduler shut down without draining this job
};

[[nodiscard]] inline const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::Ok: return "ok";
    case JobStatus::QueueFull: return "queue_full";
    case JobStatus::DeadlineExceeded: return "deadline_exceeded";
    case JobStatus::Cancelled: return "cancelled";
    case JobStatus::ModelNotFound: return "model_not_found";
    case JobStatus::ExecutionError: return "execution_error";
    case JobStatus::ShutDown: return "shut_down";
  }
  return "unknown";
}

/// One rollout inference job.
struct RolloutRequest {
  std::string model;  ///< registry name of the simulator to run

  /// Seed window: window_size() frames, oldest first, each flat [N*dim]
  /// in the io::Trajectory layout.
  std::vector<std::vector<double>> window;

  int steps = 1;  ///< number of frames to predict

  /// Material parameter (tan φ); used iff the model's feature config has
  /// material_feature.
  double material = 0.0;

  /// Flat [N * static_node_attrs] per-particle attributes; used iff the
  /// model's feature config has static_node_attrs > 0.
  std::vector<double> node_attrs;

  /// Wall-clock budget in milliseconds measured from submit; 0 disables.
  /// Checked while queued and between rollout steps, so an expired job
  /// never occupies a worker for longer than one step. A negative value
  /// means the deadline already expired upstream (e.g. the net front-end
  /// charged buffering time against it): submit() rejects it immediately
  /// with DeadlineExceeded instead of queueing it.
  double deadline_ms = 0.0;
};

/// Outcome of a job. `frames` holds every frame predicted before the
/// terminal state — a DeadlineExceeded/Cancelled job may carry a partial
/// rollout prefix (frames computed so far), which is still a valid
/// trajectory prefix because the rollout is strictly sequential.
struct RolloutResult {
  JobStatus status = JobStatus::ExecutionError;
  std::string error;  ///< diagnostic message for ExecutionError

  std::vector<std::vector<double>> frames;  ///< predicted frames, flat [N*dim]

  std::uint64_t job_id = 0;
  double queue_ms = 0.0;  ///< time spent waiting in the queue
  double exec_ms = 0.0;   ///< time spent executing on a worker
  double total_ms = 0.0;  ///< submit-to-resolve wall time

  /// True when no rollout ran on this job's behalf: the frames came from
  /// the rollout cache (hit) or from an identical in-flight computation
  /// (single-flight coalescing). Bitwise identical to a live rollout
  /// either way — this flag is observability, not a quality marker.
  bool cached = false;

  [[nodiscard]] bool ok() const { return status == JobStatus::Ok; }
};

}  // namespace gns::serve
