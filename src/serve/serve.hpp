#pragma once

/// \file serve.hpp
/// Umbrella header of the rollout serving subsystem.
///
/// The subsystem turns trained LearnedSimulator checkpoints into an
/// in-process inference service:
///
///   ModelRegistry — named, hot-reloadable cache of loaded checkpoints
///                   (shared-ownership handles keep in-flight rollouts on
///                   the weights they started with);
///   JobScheduler  — fixed worker pool + bounded FIFO queue executing
///                   RolloutRequest jobs into RolloutResult futures, with
///                   per-job deadline/cancellation and typed queue-full
///                   rejection;
///   ServerStats   — throughput, queue depth, and p50/p95/p99 latency
///                   histograms, dumpable as CSV/JSON for
///                   scripts/plot_results.py.
///
/// See examples/serve_rollouts.cpp for an end-to-end driver and
/// bench/bench_serve_throughput.cpp for worker-scaling measurements.

#include "serve/cache_key.hpp"  // IWYU pragma: export
#include "serve/job.hpp"        // IWYU pragma: export
#include "serve/registry.hpp"   // IWYU pragma: export
#include "serve/scheduler.hpp"  // IWYU pragma: export
#include "serve/stats.hpp"      // IWYU pragma: export
