#pragma once

/// \file registry.hpp
/// ModelRegistry: named, shared-ownership cache of loaded simulators.
///
/// The registry is the serving subsystem's source of model weights. Lookup
/// returns a `shared_ptr<const LearnedSimulator>` handle, so
///
///  * in-flight rollouts keep the weights they started with alive even if
///    the name is reloaded or erased mid-flight (hot-reload safety), and
///  * the simulator is const through the handle — rollout is a const
///    member function and shares no mutable state, which is what makes
///    concurrent jobs against one model bit-reproducible.
///
/// Loading happens outside the lock (disk I/O + weight allocation can take
/// long); only the map swap is serialized, so lookups never stall behind a
/// reload.

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/simulator.hpp"

namespace gns::serve {

class ModelRegistry {
 public:
  using Handle = std::shared_ptr<const core::LearnedSimulator>;

  /// A handle plus the weight digest it was registered with (see
  /// serve/cache_key.hpp). The digest is computed once per
  /// load()/put()/reload() — never per lookup — and changes whenever a
  /// reload swaps in different weights, which is what invalidates every
  /// rollout-cache key derived from the model.
  struct Resolved {
    Handle simulator;            ///< nullptr when the name is unknown
    std::uint64_t digest = 0;
  };

  /// Loads a checkpoint from disk and registers it under `name`,
  /// replacing any previous entry. Returns false (and leaves any existing
  /// entry untouched) when the file is absent or corrupted.
  bool load(const std::string& name, const std::string& path);

  /// Registers an in-memory simulator (e.g. freshly trained) under `name`.
  void put(const std::string& name, core::LearnedSimulator simulator);

  /// Shared handle to the named model, or nullptr when unknown. The handle
  /// stays valid for the caller's lifetime regardless of later reloads.
  [[nodiscard]] Handle get(const std::string& name) const;

  /// Like get(), but also returns the entry's weight digest (0 when the
  /// name is unknown).
  [[nodiscard]] Resolved resolve(const std::string& name) const;

  /// Re-reads the checkpoint `name` was loaded from. Returns false when
  /// the entry is unknown, was registered via put() (no path), or the file
  /// no longer loads; the existing entry stays live in all failure cases.
  bool reload(const std::string& name);

  /// Removes the entry; outstanding handles stay valid.
  bool erase(const std::string& name);

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    Handle simulator;
    std::string path;           ///< empty for put()-registered models
    std::uint64_t digest = 0;   ///< weight digest at registration time
  };

  mutable std::shared_mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace gns::serve
