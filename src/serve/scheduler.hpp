#pragma once

/// \file scheduler.hpp
/// JobScheduler: bounded-queue rollout inference on the task-graph
/// executor (or a dedicated thread pool with GNS_EXEC=0).
///
/// Execution model (default, exec::enabled()): the scheduler owns no
/// threads. submit() enqueues and schedules a drain task on the global
/// work-stealing executor; the drain pops jobs (up to `workers` concurrent
/// dispatches, preserving the pool-sized concurrency cap) and runs each
/// rollout as a continuation chain — one executor task per step, each
/// under its own NoGradGuard, re-checking deadline and cancellation
/// before every step. Batch-window coalescing becomes a timer-wheel task:
/// an underfull batch parks as a PendingBatch whose timer fires at
/// min(window end, earliest member deadline); later drains top it up and
/// dispatch early when it fills, and the timer-fire path sweeps cancelled
/// or expired members out BEFORE dispatch, so a job cancelled while its
/// batch window is pending never executes. Queued-job deadlines are timer
/// cancellations too: the timer resolves a still-queued job
/// DeadlineExceeded the moment its budget lapses, and is cancelled when
/// the job dispatches.
///
/// Legacy threading model (GNS_EXEC=0): `workers` threads block on one
/// condition variable over the same FIFO deque. Both modes share every
/// queueing, caching, and resolution path; a rollout produces bitwise
/// identical frames on either (guarded by test_serve on both legs).
///
/// submit() never blocks — when the queue is full the returned future is
/// already resolved with JobStatus::QueueFull (backpressure is the
/// *client's* problem, the scheduler never buffers unboundedly). A
/// runaway request occupies a worker (or chain slot) for at most one
/// extra step past its budget.
///
/// Batched dispatch (max_batch > 1): a worker that pops a job also pulls up
/// to max_batch-1 more queued jobs for the *same model* (skipping
/// incompatible ones, which stay queued for other workers), waiting at most
/// batch_window_us for stragglers — but never past the earliest member
/// deadline. The members run as ONE block-diagonal rollout
/// (core::BatchedSimulator): one GNS forward per step for the whole batch.
/// Per-member deadlines/cancellation still hold — an expired or cancelled
/// member is compacted out between steps with its partial frames while the
/// rest keep batching. Dispatch sizes land in the `<prefix>.batch_size`
/// histogram.
///
/// Workers share model weights through registry handles but build all
/// per-job tensors locally; the autograd tape is thread-local and disabled
/// during serving, so concurrent — and batched — rollouts of one model are
/// bit-identical to running them serially (guarded by test_serve and
/// test_batching).
///
/// Rollout caching (optional, SchedulerConfig::cache): submit() consults
/// the content-addressed store::RolloutCache before queueing. A hit
/// resolves the future immediately — bitwise the frames a live rollout
/// would produce — without touching the worker pool; a miss with an
/// identical request already in flight joins that flight (one compute for
/// N concurrent duplicates); otherwise the job leads: it queues normally
/// and its terminal resolve() inserts a complete rollout into the cache
/// (or abandons the flight on failure, so followers never hang). Because
/// cache keys include the registry's weight digest, a hot reload
/// naturally invalidates every key of the reloaded model. Schedulers must
/// not share one RolloutCache instance: follower callbacks assume the
/// flight's leader lives in the same scheduler.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/executor.hpp"
#include "serve/job.hpp"
#include "serve/registry.hpp"
#include "serve/stats.hpp"
#include "store/rollout_cache.hpp"

namespace gns::serve {

struct SchedulerConfig {
  int workers = 4;          ///< fixed pool size (>= 1)
  int queue_capacity = 64;  ///< max queued (not yet running) jobs (>= 1)
  /// Max jobs coalesced into one block-diagonal rollout; 1 disables
  /// batching (the classic one-job-per-worker path).
  int max_batch = 1;
  /// How long a worker holding an underfull batch waits for more
  /// same-model jobs to arrive, in microseconds. 0 = dispatch immediately
  /// with whatever is already queued. The wait is always capped by the
  /// earliest member deadline.
  double batch_window_us = 0.0;
  /// MetricsRegistry prefix for this scheduler's ServerStats. Give every
  /// concurrently-live scheduler a distinct prefix.
  std::string stats_prefix = "serve";
  /// Optional content-addressed rollout cache (see file comment). nullptr
  /// disables caching entirely — every submit takes the compute path.
  std::shared_ptr<store::RolloutCache> cache;
};

/// submit()'s return: the job id (usable with cancel()) and the future
/// that resolves to the job's terminal RolloutResult.
struct JobTicket {
  std::uint64_t id = 0;
  std::future<RolloutResult> result;
};

class JobScheduler {
 public:
  /// The registry must outlive the scheduler. Stats are owned here and
  /// readable at any time via stats().
  JobScheduler(std::shared_ptr<ModelRegistry> registry,
               SchedulerConfig config = {});

  /// Drains the queue (shutdown(true)) and joins the workers.
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Enqueues a job. Never blocks: a full queue, a stopped scheduler, or
  /// an already-expired deadline (request.deadline_ms < 0) resolves the
  /// future immediately with QueueFull / ShutDown / DeadlineExceeded.
  [[nodiscard]] JobTicket submit(RolloutRequest request);

  /// Requests cancellation. A queued job resolves Cancelled without
  /// running; a running job stops after its current step and returns the
  /// frames computed so far. Returns false when the job is unknown or
  /// already resolved.
  bool cancel(std::uint64_t job_id);

  /// Stops workers from picking up new jobs (running jobs finish). Queued
  /// jobs keep their place and their deadlines keep ticking. Used for
  /// deterministic tests and drain-for-reload operations.
  void pause();
  void resume();

  /// Stops accepting new jobs. With drain=true workers finish the queue
  /// first; with drain=false queued jobs resolve ShutDown immediately.
  /// Idempotent; the destructor calls shutdown(true).
  void shutdown(bool drain = true);

  [[nodiscard]] int queue_depth() const;
  /// Concurrency cap: pool size in thread mode, max concurrent dispatch
  /// chains in executor mode. Advertised in HELLO capability replies.
  [[nodiscard]] int workers() const {
    return use_exec_ ? config_.workers : static_cast<int>(threads_.size());
  }
  [[nodiscard]] ServerStats& stats() { return stats_; }
  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  /// The model registry this scheduler executes against — what a HELLO
  /// capability reply advertises as served models.
  [[nodiscard]] const std::shared_ptr<ModelRegistry>& registry() const {
    return registry_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    RolloutRequest request;
    std::promise<RolloutResult> promise;
    std::shared_ptr<std::atomic<bool>> cancelled;
    std::uint64_t id = 0;
    Clock::time_point submitted;
    Clock::time_point deadline;  ///< time_point::max() when none
    bool has_deadline = false;
    /// When a worker pulled this job off the queue (epoch default until
    /// then). Splits the pre-dispatch wait into queue_us (submitted ->
    /// dequeued) and batch_wait_us (dequeued -> dispatch) in the result's
    /// PhaseTimeline.
    Clock::time_point dequeued{};
    /// Microseconds submit() spent on the cache consult for this job.
    double cache_us = 0.0;
    /// Set when this job leads a cache flight: resolve() must call
    /// cache complete() (all steps present) or abandon() (anything else).
    std::uint64_t cache_key = 0;
    bool has_cache_key = false;
  };

  /// What submit()'s cache consult decided.
  enum class CacheOutcome {
    Resolved,  ///< hit or joined a flight: the promise is owned elsewhere
    Enqueue,   ///< miss (job leads) or cache not applicable: queue normally
  };

  /// An underfull batch parked on the executor waiting out its coalescing
  /// window (exec mode only). Later drains top it up; the timer (or an
  /// early-dispatch path that cancelled the timer) dispatches it.
  struct PendingBatch {
    std::vector<Job> jobs;
    std::string model;
    exec::Executor::TimerId timer = 0;
  };
  /// One in-flight rollout chain (exec mode): jobs, per-member results,
  /// and the incremental batched rollout advanced one step per task.
  struct ChainState;

  void worker_loop();
  /// Pulls up to max_batch-1 more same-model jobs into `batch`, waiting at
  /// most batch_window_us (capped by the earliest member deadline). Called
  /// with mutex_ held via `lock`.
  void collect_batch(std::unique_lock<std::mutex>& lock,
                     std::vector<Job>& batch);
  /// Non-waiting variant shared by the exec drain paths: moves up to
  /// max_batch same-model jobs out of queue_ into `batch`, stamping
  /// dequeued and cancelling their queued-deadline timers. Requires
  /// mutex_ held.
  void take_compatible_locked(std::vector<Job>& batch,
                              const std::string& model);
  // ---- executor-mode machinery (use_exec_) ----
  /// Ensures one drain task is queued on the executor. Requires mutex_.
  void schedule_drain_locked();
  /// Drain task body: tops up pending batches, then pops jobs into new
  /// dispatch chains while chain slots (config_.workers) are free.
  void drain_ready();
  /// Moves the pending batch keyed by `leader_id` to execution. Sweeps
  /// cancelled/expired members BEFORE dispatch — a job cancelled while
  /// its batch-window timer was pending resolves without ever executing.
  void dispatch_pending(std::uint64_t leader_id);
  /// Builds a ChainState for `jobs` and submits its first task.
  void start_chain(std::vector<Job> jobs);
  /// One chain task: preflight on the first call, then one rollout step;
  /// resubmits itself until the rollout finishes, then finalizes.
  void chain_step(const std::shared_ptr<ChainState>& chain);
  void finish_chain(const std::shared_ptr<ChainState>& chain);
  /// Submits fn with task accounting (tasks_inflight_ / idle_cv_), so
  /// shutdown can quiesce before the scheduler is destroyed. Requires
  /// mutex_ held.
  void spawn_task_locked(std::function<void()> fn);
  /// Timer with the same accounting; cancel via cancel_timer_locked.
  exec::Executor::TimerId schedule_timer_locked(
      std::chrono::steady_clock::time_point due, std::function<void()> fn);
  /// True iff the timer callback will never run (accounting undone here).
  bool cancel_timer_locked(exec::Executor::TimerId id);
  /// Converts every parked PendingBatch whose timer can still be cancelled
  /// into an immediate dispatch task (pause/shutdown: stop waiting out
  /// batch windows). Requires mutex_ held.
  void flush_pending_locked();
  /// Arms the queued-deadline timer for job `id` (requires mutex_).
  void arm_deadline_timer_locked(std::uint64_t id, Clock::time_point due);
  /// Cancels and forgets the queued-deadline timer of job `id`, if any.
  void cancel_deadline_timer_locked(std::uint64_t id);
  /// Deadline-timer body: resolves job `id` DeadlineExceeded iff it is
  /// still sitting in queue_.
  void expire_queued(std::uint64_t id);
  /// Runs the rollout; everything but queueing. Must not hold mutex_.
  [[nodiscard]] RolloutResult execute(Job& job) const;
  /// Runs `jobs` as one block-diagonal batched rollout and resolves every
  /// member (per-member statuses/deadlines). Must not hold mutex_.
  void execute_batch(std::vector<Job> jobs);
  void resolve(Job&& job, RolloutResult result);
  /// Cache hit / single-flight join / leadership claim for `job`. Called
  /// without mutex_ held; takes it briefly for bookkeeping. On Resolved
  /// the job's promise has been moved out (hit: already fulfilled;
  /// joined: fulfilled by the leader's terminal callback).
  [[nodiscard]] CacheOutcome consult_cache(Job& job);

  std::shared_ptr<ModelRegistry> registry_;
  SchedulerConfig config_;
  ServerStats stats_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  std::uint64_t next_id_ = 1;
  bool paused_ = false;
  bool stopping_ = false;   ///< no new submissions
  bool abandoned_ = false;  ///< queued jobs resolve ShutDown
  std::vector<std::thread> threads_;

  /// Cancellation flags of live (queued or running) jobs, so cancel() can
  /// reach a job that a worker already popped.
  std::map<std::uint64_t, std::shared_ptr<std::atomic<bool>>> live_flags_;

  // ---- executor-mode state (all guarded by mutex_) ----
  const bool use_exec_;        ///< exec::enabled() snapshot at construction
  bool drain_scheduled_ = false;
  int active_chains_ = 0;      ///< dispatch chains + parked pending batches
  int tasks_inflight_ = 0;     ///< executor tasks + armed timers alive
  std::condition_variable idle_cv_;  ///< signaled as the above drain to 0
  /// Parked underfull batches, keyed by leader job id.
  std::map<std::uint64_t, std::shared_ptr<PendingBatch>> pending_batches_;
  /// Queued-job deadline timers, job id -> timer id.
  std::map<std::uint64_t, exec::Executor::TimerId> deadline_timers_;
};

}  // namespace gns::serve
