#pragma once

/// \file cache_key.hpp
/// Content-address derivation for the rollout cache (store/ subsystem).
///
/// A cached rollout is reusable iff recomputing it would produce the
/// bitwise-identical frame stream. With the repo's determinism
/// guarantees that reduces to: same weights, same normalization, same
/// feature construction, same seed window, same scene conditioning. The
/// key therefore hashes
///
///   model name + checkpoint digest        (which function)
///   feature config                        (how inputs are built)
///   seed window bytes                     (initial state)
///   material + static node attributes     (scene conditioning)
///
/// and deliberately EXCLUDES the step count: rollouts are strictly
/// sequential, so a stored K-step rollout answers any request for
/// <= K steps by truncation (prefix hits, see store/rollout_cache.hpp).
/// Deadlines are execution policy, not content, and are excluded too.
///
/// The checkpoint digest hashes the weights themselves (every parameter
/// tensor) plus the normalization statistics, so a hot reload that
/// changes the weights changes every key derived from the model — stale
/// frames cannot be served across a reload — while reloading an
/// unchanged checkpoint keeps the cache warm.

#include <cstdint>

#include "core/simulator.hpp"
#include "serve/job.hpp"

namespace gns::serve {

/// Digest of everything that determines a simulator's input→output map:
/// parameter tensor shapes and bytes, normalization statistics, and the
/// feature configuration. Stable across process restarts for the same
/// checkpoint; changes whenever a reload swaps in different weights.
[[nodiscard]] std::uint64_t model_digest(const core::LearnedSimulator& sim);

/// Content address of `request` against a resolved model. `digest` is
/// the registry's model_digest for request.model; `features` the
/// simulator's feature config. The step count and deadline are not part
/// of the address (see file comment).
[[nodiscard]] std::uint64_t compute_cache_key(
    const RolloutRequest& request, std::uint64_t digest,
    const core::FeatureConfig& features);

}  // namespace gns::serve
