#pragma once

/// \file server.hpp
/// TCP front-end of the rollout serving subsystem.
///
/// Threading model (default, exec::enabled()): the server owns no threads.
/// The listening socket and every accepted connection are registered with
/// an exec::IoBridge, whose poller turns readiness events into tasks on
/// the global work-stealing executor — the same pool that runs the
/// scheduler's rollout chains and the per-step compute, so net I/O shares
/// cores with compute instead of pinning handler threads. Each connection
/// is serviced by at most one task at a time (oneshot watches plus a
/// per-connection mutex); while requests are in flight or writes are
/// queued, a short executor pump timer re-services the connection between
/// socket events (the analogue of the handler loop's tight poll tick).
///
/// Legacy threading model (GNS_EXEC=0): one acceptor thread blocks in
/// poll() on the listening socket and hands accepted connections
/// round-robin to N handler threads. Each handler owns a disjoint set of
/// nonblocking connections and runs its own poll() loop over them (plus a
/// self-pipe the acceptor and stop() use as a wakeup). Both modes share
/// every decode, dispatch, encode, and flush path below: reads append to a
/// per-connection buffer, complete frames are decoded and submitted to the
/// serve::JobScheduler, resolved futures are encoded into a per-connection
/// write queue, and writes drain on POLLOUT.
///
/// Backpressure is explicit and bounded everywhere: a request beyond the
/// per-connection or global in-flight cap — or one the scheduler rejects
/// with QueueFull — is answered with ErrorReply{Busy} immediately; the
/// server never queues unboundedly on behalf of a client (read buffers are
/// capped by the protocol's frame cap, write queues by the in-flight cap).
///
/// Deadlines propagate: a request's deadline_ms is re-based to the moment
/// the frame finished decoding, so time spent in the server's buffers
/// counts against the client's budget and an already-expired job is
/// rejected by the scheduler at submit time (DeadlineExceeded) instead of
/// occupying a batch slot.
///
/// Observability: every request's trace_id (protocol v2) is threaded from
/// decode through the scheduler to the final flush, so one Perfetto trace
/// shows the cross-layer life of a request; per-phase latency lands in the
/// scheduler's serve.phase.* histograms. kStatsRequest frames are answered
/// inline on the handler thread with a metrics + health snapshot
/// (Prometheus or JSON), so a live server can be scraped without touching
/// the worker pool.
///
/// stop() drains gracefully: the listener closes, new requests get
/// ErrorReply{ShuttingDown}, in-flight jobs run to completion and their
/// replies are flushed, then connections close and the obs env files
/// (GNS_TRACE_FILE / GNS_METRICS_FILE) are flushed. No accepted job is
/// ever dropped by a drain.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/executor.hpp"
#include "exec/io_bridge.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "serve/scheduler.hpp"

namespace gns::net {

struct ServerConfig {
  std::string host = "127.0.0.1";  ///< bind address
  int port = 0;                    ///< 0 picks an ephemeral port (see port())
  int handler_threads = 2;         ///< connection-handler poll loops (>= 1)
  int max_connections = 64;        ///< accepted beyond this are closed
  /// In-flight (submitted, unresolved) request caps; exceeding either is a
  /// Busy reply, never a queue.
  int max_inflight_per_connection = 4;
  int max_inflight_global = 64;
  /// A connection with no traffic and no in-flight jobs for this long is
  /// closed. <= 0 disables.
  double idle_timeout_ms = 60'000.0;
  /// A partial frame that stops growing for this long closes the
  /// connection (slowloris guard). <= 0 disables.
  double read_timeout_ms = 10'000.0;
  /// Predicted frames per RolloutChunk when streaming a finished rollout.
  int chunk_frames = 8;
  /// stop() waits at most this long for in-flight jobs + flushes.
  double drain_timeout_ms = 60'000.0;
  std::string metrics_prefix = "net";  ///< net.* instrument prefix
  /// Highest protocol version this server admits; frames above it get a
  /// fatal BadVersion, exactly as a binary built before that version would
  /// answer. Defaults to current — lower it only in tests that pin the
  /// router's legacy-backend fallback against a real server.
  std::uint8_t max_protocol_version = kProtocolVersion;
};

/// TCP server bridging the wire protocol onto a JobScheduler. The
/// scheduler (and its registry) must outlive the server.
class Server {
 public:
  Server(serve::JobScheduler& scheduler, ServerConfig config = {});
  /// Calls stop() if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the acceptor + handler threads. Returns
  /// false (with the OS error logged) when the socket setup fails.
  [[nodiscard]] bool start();

  /// Graceful drain: stop accepting, fail new requests with ShuttingDown,
  /// wait for in-flight jobs and flush their replies (bounded by
  /// drain_timeout_ms), close everything, then flush the obs env files.
  /// Idempotent and safe to call from a signal-watcher thread.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }
  /// The bound port (resolves port=0 to the ephemeral choice); 0 before
  /// start().
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] int active_connections() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// One submitted request whose future has not resolved yet.
  struct Pending {
    std::uint64_t request_id = 0;       ///< wire id, echoed in replies
    std::uint64_t job_id = 0;           ///< scheduler id, for cancel()
    std::future<serve::RolloutResult> future;
    Clock::time_point decoded;  ///< when the request finished decoding
    /// Protocol version of the request frame; replies are encoded in it so
    /// a v1 client never sees v2 fields.
    std::uint8_t version = kProtocolVersion;
  };

  /// One encoded frame awaiting its turn on the socket. The terminal frame
  /// of a request (StatusReply/ErrorReply) is tagged so flush_writes can
  /// attribute the write/flush phase to that request once the bytes leave.
  struct WriteItem {
    std::vector<std::uint8_t> bytes;
    bool terminal = false;
    std::uint64_t trace_id = 0;
    std::int64_t enqueued_ns = 0;  ///< obs::trace_now_ns() at enqueue
  };

  struct Connection {
    // Explicitly move-only: std::deque's move ctor is not noexcept in
    // libstdc++, so without a deleted copy ctor vector reallocation would
    // try to copy the (move-only) futures and fail to compile.
    Connection() = default;
    Connection(Connection&&) = default;
    Connection& operator=(Connection&&) = default;
    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;

    int fd = -1;
    std::vector<std::uint8_t> rbuf;
    std::size_t rbuf_consumed = 0;  ///< decoded prefix, compacted lazily
    std::deque<WriteItem> wqueue;
    std::size_t woff = 0;  ///< bytes of wqueue.front() already written
    /// Version of the last well-framed frame from this peer; error replies
    /// sent before any request decodes use it (defaults to current).
    std::uint8_t peer_version = kProtocolVersion;
    std::vector<Pending> inflight;
    Clock::time_point last_activity;
    Clock::time_point partial_since;  ///< first byte of an incomplete frame
    bool has_partial = false;
    bool close_after_flush = false;  ///< fatal decode error: drop politely
  };

  struct HandlerShared {
    std::mutex mutex;
    std::deque<int> incoming_fds;  ///< acceptor -> handler handoff
    int wake_read = -1;            ///< self-pipe, poll()ed by the handler
    int wake_write = -1;
  };

  /// One connection in executor mode: the shared Connection state plus the
  /// bridge watch and pump timer that drive it. Defined in server.cpp.
  struct ExecConn;

  void acceptor_loop();
  void handler_loop(int index);
  // ---- executor-mode plumbing (use_exec_) ----
  /// Listener watch callback: accepts everything ready, registers each
  /// connection with the bridge, then re-arms the listener.
  void exec_accept(short revents);
  /// One service pass over a connection (read/decode/submit, pump resolved
  /// futures, flush writes, timeouts) — the body of handler_loop's per-
  /// connection cycle, run as an executor task. At most one runs per
  /// connection at a time (oneshot watch + ec->m).
  void exec_service(const std::shared_ptr<ExecConn>& ec, short revents);
  /// stop() body for executor mode: unwatch the listener, drain-wait,
  /// close every connection, stop the bridge, quiesce pump timers.
  void exec_stop();
  /// Drains socket -> rbuf; false when the peer closed or errored.
  bool read_some(Connection& conn);
  /// Decodes and dispatches every complete frame in rbuf.
  void process_rbuf(Connection& conn);
  /// `buffered_ms` is how long the frame straddled reads in rbuf — it is
  /// charged against the request's deadline before submit.
  void handle_request(Connection& conn, const FrameView& frame,
                      double buffered_ms);
  /// Answers a kStatsRequest with a metrics + health snapshot. Runs on the
  /// handler thread; touches only atomics, the scheduler's queue-depth
  /// accessor, and the metrics registry — never a worker thread.
  void handle_stats(Connection& conn, const FrameView& frame);
  /// Answers a kHello with this backend's capability advertisement
  /// (protocol version, registry model names, in-flight capacity). Runs on
  /// the handler thread, like handle_stats.
  void handle_hello(Connection& conn, const FrameView& frame);
  /// Moves resolved futures into the write queue; returns in-flight count.
  std::size_t pump_completions(Connection& conn);
  /// Streams one resolved result as RolloutChunks + a StatusReply.
  void enqueue_result(Connection& conn, const Pending& pending,
                      const serve::RolloutResult& result);
  void enqueue_error(Connection& conn, std::uint64_t request_id,
                     NetError code, const std::string& message);
  /// Writes wqueue to the socket; false when the peer errored.
  bool flush_writes(Connection& conn);
  void close_connection(Connection& conn);
  static void wake(HandlerShared& shared);

  serve::JobScheduler& scheduler_;
  ServerConfig config_;

  int listen_fd_ = -1;
  int port_ = 0;
  Clock::time_point started_{};  ///< start() time, for StatsReply uptime
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int> global_inflight_{0};
  std::atomic<int> active_connections_{0};
  std::once_flag stop_once_;

  std::thread acceptor_;
  std::vector<std::thread> handlers_;
  std::vector<std::unique_ptr<HandlerShared>> shared_;

  // net.* instruments (cached handles; registry owns them).
  obs::Counter& accepted_;
  obs::Counter& frames_rx_;
  obs::Counter& frames_tx_;
  obs::Counter& bytes_rx_;
  obs::Counter& bytes_tx_;
  obs::Counter& rejected_backpressure_;
  obs::Counter& decode_errors_;
  obs::Counter& timeouts_;
  obs::Counter& stats_requests_;
  obs::Gauge& active_connections_gauge_;
  obs::Gauge& inflight_gauge_;
  obs::Gauge& queue_depth_gauge_;
  obs::HistogramMetric& request_ms_;
  /// Per-NetError rejection counters (`<prefix>.reject.<code>`), indexed
  /// by the numeric NetError value; [0] is unused.
  std::array<obs::Counter*, 10> reject_counters_{};

  // ---- executor-mode state ----
  const bool use_exec_;  ///< exec::enabled() snapshot at construction
  std::unique_ptr<exec::IoBridge> bridge_;
  int listen_watch_ = -1;
  /// Live connections by key. Lock order: NEVER acquire econns_mutex_
  /// while holding an ExecConn's mutex (release ec->m first).
  std::mutex econns_mutex_;
  std::map<std::uint64_t, std::shared_ptr<ExecConn>> econns_;
  std::uint64_t next_econn_ = 1;
  /// Armed or firing pump timers; stop() waits for 0 so no timer callback
  /// outlives the server (bridge_->stop covers watch callbacks only).
  std::atomic<int> exec_pending_{0};
};

}  // namespace gns::net
