#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace gns::net {

namespace {

constexpr std::size_t kReadChunkBytes = 64 * 1024;
/// Compact the read buffer once this many decoded bytes sit at its front.
constexpr std::size_t kCompactThreshold = 256 * 1024;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

double ms_since(std::chrono::steady_clock::time_point then,
                std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - then).count();
}

}  // namespace

Server::Server(serve::JobScheduler& scheduler, ServerConfig config)
    : scheduler_(scheduler),
      config_(std::move(config)),
      accepted_(obs::MetricsRegistry::global().counter(
          config_.metrics_prefix + ".accepted")),
      frames_rx_(obs::MetricsRegistry::global().counter(
          config_.metrics_prefix + ".frames_rx")),
      frames_tx_(obs::MetricsRegistry::global().counter(
          config_.metrics_prefix + ".frames_tx")),
      bytes_rx_(obs::MetricsRegistry::global().counter(
          config_.metrics_prefix + ".bytes_rx")),
      bytes_tx_(obs::MetricsRegistry::global().counter(
          config_.metrics_prefix + ".bytes_tx")),
      rejected_backpressure_(obs::MetricsRegistry::global().counter(
          config_.metrics_prefix + ".rejected_backpressure")),
      decode_errors_(obs::MetricsRegistry::global().counter(
          config_.metrics_prefix + ".decode_errors")),
      timeouts_(obs::MetricsRegistry::global().counter(
          config_.metrics_prefix + ".timeouts")),
      stats_requests_(obs::MetricsRegistry::global().counter(
          config_.metrics_prefix + ".stats_requests")),
      active_connections_gauge_(obs::MetricsRegistry::global().gauge(
          config_.metrics_prefix + ".active_connections")),
      inflight_gauge_(obs::MetricsRegistry::global().gauge(
          config_.metrics_prefix + ".inflight")),
      queue_depth_gauge_(obs::MetricsRegistry::global().gauge(
          config_.metrics_prefix + ".scheduler_queue_depth")),
      request_ms_(obs::MetricsRegistry::global().histogram(
          config_.metrics_prefix + ".request_ms")),
      use_exec_(exec::enabled()) {
  for (std::uint8_t code = static_cast<std::uint8_t>(NetError::Busy);
       code <= static_cast<std::uint8_t>(NetError::BackendLost); ++code) {
    reject_counters_[code] = &obs::MetricsRegistry::global().counter(
        config_.metrics_prefix + ".reject." +
        to_string(static_cast<NetError>(code)));
  }
  GNS_CHECK_MSG(config_.handler_threads >= 1,
                "Server needs >= 1 handler thread");
  GNS_CHECK_MSG(config_.max_inflight_per_connection >= 1 &&
                    config_.max_inflight_global >= 1,
                "Server in-flight caps must be >= 1");
  GNS_CHECK_MSG(config_.chunk_frames >= 1,
                "Server chunk_frames must be >= 1");
  GNS_CHECK_MSG(config_.max_protocol_version >= kMinProtocolVersion &&
                    config_.max_protocol_version <= kProtocolVersion,
                "Server max_protocol_version out of supported range");
}

Server::~Server() { stop(); }

bool Server::start() {
  GNS_CHECK_MSG(!running_.load(), "Server::start called twice");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    GNS_ERROR("net: socket() failed: " << std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    GNS_ERROR("net: bad bind address '" << config_.host << "'");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 128) != 0 || !set_nonblocking(listen_fd_)) {
    GNS_ERROR("net: bind/listen on " << config_.host << ":" << config_.port
                                     << " failed: " << std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  if (use_exec_) {
    // Executor mode: no threads of our own. The bridge's poller turns
    // listener/connection readiness into tasks on the global executor.
    started_ = Clock::now();
    draining_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    bridge_ = std::make_unique<exec::IoBridge>(exec::Executor::global());
    listen_watch_ =
        bridge_->watch(listen_fd_, POLLIN, [this](short re) {
          exec_accept(re);
        });
    GNS_INFO("net: serving on " << config_.host << ":" << port_
                                << " (executor mode, "
                                << exec::Executor::global().workers()
                                << " shared workers)");
    return true;
  }

  shared_.clear();
  for (int i = 0; i < config_.handler_threads; ++i) {
    auto shared = std::make_unique<HandlerShared>();
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      GNS_ERROR("net: pipe() failed: " << std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      for (auto& s : shared_) {
        ::close(s->wake_read);
        ::close(s->wake_write);
      }
      shared_.clear();
      return false;
    }
    set_nonblocking(pipe_fds[0]);
    set_nonblocking(pipe_fds[1]);
    shared->wake_read = pipe_fds[0];
    shared->wake_write = pipe_fds[1];
    shared_.push_back(std::move(shared));
  }

  started_ = Clock::now();
  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (int i = 0; i < config_.handler_threads; ++i)
    handlers_.emplace_back([this, i] { handler_loop(i); });
  acceptor_ = std::thread([this] { acceptor_loop(); });
  GNS_INFO("net: serving on " << config_.host << ":" << port_ << " ("
                              << config_.handler_threads
                              << " handler threads)");
  return true;
}

void Server::stop() {
  std::call_once(stop_once_, [this] {
    if (!running_.load(std::memory_order_acquire)) return;
    GNS_INFO("net: draining (stop accepting, flush in-flight)");
    draining_.store(true, std::memory_order_release);
    if (use_exec_) {
      exec_stop();
      return;
    }
    // 1. Stop accepting: close the listener and join the acceptor.
    if (acceptor_.joinable()) acceptor_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    // 2. Handlers observe draining_, reject new requests, finish in-flight
    //    jobs, flush write queues, then close their connections and exit
    //    (bounded by drain_timeout_ms).
    for (auto& shared : shared_) wake(*shared);
    for (std::thread& t : handlers_) {
      if (t.joinable()) t.join();
    }
    handlers_.clear();
    for (auto& shared : shared_) {
      std::lock_guard<std::mutex> lock(shared->mutex);
      for (int fd : shared->incoming_fds) ::close(fd);
      shared->incoming_fds.clear();
      ::close(shared->wake_read);
      ::close(shared->wake_write);
    }
    shared_.clear();
    running_.store(false, std::memory_order_release);
    // 3. Persist what this process observed: the obs env files are the
    //    operator's only record once the server goes away.
    obs::flush_env_files();
    GNS_INFO("net: drained and stopped");
  });
}

int Server::active_connections() const {
  return active_connections_.load(std::memory_order_relaxed);
}

void Server::wake(HandlerShared& shared) {
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(shared.wake_write, &byte, 1);
}

void Server::acceptor_loop() {
  std::size_t next_handler = 0;
  while (!draining_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || !(pfd.revents & POLLIN)) continue;
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN or transient error: back to poll
      if (active_connections_.load(std::memory_order_relaxed) >=
              config_.max_connections ||
          !set_nonblocking(fd)) {
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      accepted_.add();
      active_connections_.fetch_add(1, std::memory_order_relaxed);
      active_connections_gauge_.set(
          active_connections_.load(std::memory_order_relaxed));
      HandlerShared& shared = *shared_[next_handler];
      next_handler = (next_handler + 1) % shared_.size();
      {
        std::lock_guard<std::mutex> lock(shared.mutex);
        shared.incoming_fds.push_back(fd);
      }
      wake(shared);
    }
  }
}

void Server::handler_loop(int index) {
  HandlerShared& shared = *shared_[index];
  std::vector<Connection> conns;
  std::vector<pollfd> pfds;
  bool drain_seen = false;
  Clock::time_point drain_deadline{};

  for (;;) {
    const bool draining = draining_.load(std::memory_order_acquire);
    if (draining && !drain_seen) {
      drain_seen = true;
      drain_deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 config_.drain_timeout_ms));
    }

    // Adopt connections the acceptor handed over.
    {
      std::lock_guard<std::mutex> lock(shared.mutex);
      while (!shared.incoming_fds.empty()) {
        Connection conn;
        conn.fd = shared.incoming_fds.front();
        shared.incoming_fds.pop_front();
        conn.last_activity = Clock::now();
        // Until the peer speaks, answer in the newest version this server
        // admits — what a binary of that era would do.
        conn.peer_version = config_.max_protocol_version;
        conns.push_back(std::move(conn));
      }
    }

    bool any_inflight = false;
    pfds.clear();
    pfds.push_back({shared.wake_read, POLLIN, 0});
    for (Connection& conn : conns) {
      short events = POLLIN;
      if (!conn.wqueue.empty()) events |= POLLOUT;
      pfds.push_back({conn.fd, events, 0});
      if (!conn.inflight.empty()) any_inflight = true;
    }

    if (drain_seen) {
      // Drain exit: every in-flight job resolved and every reply flushed
      // (or the drain deadline passed — then in-flight work is abandoned
      // and logged, never silently).
      bool dirty = any_inflight;
      for (Connection& conn : conns)
        if (!conn.wqueue.empty()) dirty = true;
      if (!dirty || Clock::now() >= drain_deadline) {
        if (dirty)
          GNS_WARN("net: drain timeout, abandoning " << conns.size()
                                                     << " connections");
        for (Connection& conn : conns) close_connection(conn);
        conns.clear();
        return;
      }
    }

    // Tight tick while jobs are in flight (futures are poll-checked);
    // relaxed tick otherwise. The self-pipe cuts accept latency anyway.
    const int timeout_ms = (any_inflight || drain_seen) ? 2 : 50;
    const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      GNS_ERROR("net: poll failed: " << std::strerror(errno));
      for (Connection& conn : conns) close_connection(conn);
      return;
    }

    if (pfds[0].revents & POLLIN) {  // drain the wake pipe
      char buf[64];
      while (::read(shared.wake_read, buf, sizeof(buf)) > 0) {
      }
    }

    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < conns.size(); ++i) {
      Connection& conn = conns[i];
      const short revents = pfds[i + 1].revents;
      bool alive = true;

      if (revents & (POLLERR | POLLHUP | POLLNVAL)) alive = false;
      if (alive && (revents & POLLIN)) {
        alive = read_some(conn);
        if (alive) process_rbuf(conn);
      }
      if (alive) pump_completions(conn);
      if (alive && !conn.wqueue.empty()) alive = flush_writes(conn);
      if (alive && conn.close_after_flush && conn.wqueue.empty())
        alive = false;

      // Timeouts: a stalled partial frame (read timeout) or a connection
      // with nothing pending for too long (idle timeout).
      if (alive && config_.read_timeout_ms > 0 && conn.has_partial &&
          ms_since(conn.partial_since, now) > config_.read_timeout_ms) {
        timeouts_.add();
        alive = false;
      }
      if (alive && config_.idle_timeout_ms > 0 && conn.inflight.empty() &&
          conn.wqueue.empty() && !conn.has_partial &&
          ms_since(conn.last_activity, now) > config_.idle_timeout_ms) {
        timeouts_.add();
        alive = false;
      }

      if (!alive) {
        close_connection(conn);
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
        pfds.erase(pfds.begin() + static_cast<std::ptrdiff_t>(i) + 1);
        --i;
      }
    }
  }
}

bool Server::read_some(Connection& conn) {
  GNS_TRACE_SCOPE("net.conn.read");
  for (;;) {
    const std::size_t old_size = conn.rbuf.size();
    conn.rbuf.resize(old_size + kReadChunkBytes);
    const ssize_t n =
        ::recv(conn.fd, conn.rbuf.data() + old_size, kReadChunkBytes, 0);
    if (n > 0) {
      conn.rbuf.resize(old_size + static_cast<std::size_t>(n));
      bytes_rx_.add(static_cast<std::uint64_t>(n));
      conn.last_activity = Clock::now();
      if (static_cast<std::size_t>(n) < kReadChunkBytes) return true;
      continue;  // kernel buffer may hold more
    }
    conn.rbuf.resize(old_size);
    if (n == 0) return false;  // orderly peer close
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
}

void Server::process_rbuf(Connection& conn) {
  GNS_TRACE_SCOPE("net.conn.decode");
  for (;;) {
    const std::uint8_t* data = conn.rbuf.data() + conn.rbuf_consumed;
    const std::size_t len = conn.rbuf.size() - conn.rbuf_consumed;
    if (len == 0) {
      conn.has_partial = false;
      break;
    }
    FrameView frame;
    DecodeError error;
    const DecodeStatus status = try_decode_frame(data, len, frame, error);
    if (status == DecodeStatus::NeedMore) {
      if (!conn.has_partial) {
        conn.has_partial = true;
        conn.partial_since = Clock::now();
      }
      break;
    }
    const double buffered_ms =
        conn.has_partial ? ms_since(conn.partial_since, Clock::now()) : 0.0;
    conn.has_partial = false;
    if (status == DecodeStatus::Error) {
      decode_errors_.add();
      enqueue_error(conn, error.request_id, error.code, error.message);
      if (error.fatal) {
        // Framing is lost: discard the buffer and close once the error
        // reply has flushed.
        conn.rbuf_consumed = conn.rbuf.size();
        conn.close_after_flush = true;
        break;
      }
      conn.rbuf_consumed += error.skip_bytes;
      continue;
    }

    // A frame above this build's admitted version is what a pre-v3 binary
    // would call BadVersion: fatal, framing no longer trusted. The error
    // reply goes out in this server's own (older) version — the router
    // reads that byte to learn what the backend actually speaks.
    if (frame.version > config_.max_protocol_version) {
      decode_errors_.add();
      enqueue_error(conn, frame.request_id, NetError::BadVersion,
                    "unsupported protocol version " +
                        std::to_string(frame.version));
      conn.rbuf_consumed = conn.rbuf.size();
      conn.close_after_flush = true;
      break;
    }

    frames_rx_.add();
    conn.peer_version = frame.version;
    if (frame.type == MessageType::RolloutRequest) {
      handle_request(conn, frame, buffered_ms);
    } else if (frame.type == MessageType::StatsRequest) {
      handle_stats(conn, frame);
    } else if (frame.type == MessageType::Hello) {
      handle_hello(conn, frame);
    } else {
      // Reply types flowing client->server are framing-correct but
      // semantically invalid; answer and keep the stream.
      decode_errors_.add();
      enqueue_error(conn, frame.request_id, NetError::Malformed,
                    "unexpected message type from client");
    }
    conn.rbuf_consumed += frame.frame_bytes;
  }

  // Compact lazily: memmove only when a big decoded prefix has built up.
  if (conn.rbuf_consumed == conn.rbuf.size()) {
    conn.rbuf.clear();
    conn.rbuf_consumed = 0;
  } else if (conn.rbuf_consumed > kCompactThreshold) {
    conn.rbuf.erase(conn.rbuf.begin(),
                    conn.rbuf.begin() +
                        static_cast<std::ptrdiff_t>(conn.rbuf_consumed));
    conn.rbuf_consumed = 0;
  }
}

void Server::handle_request(Connection& conn, const FrameView& frame,
                            double buffered_ms) {
  serve::RolloutRequest request;
  std::string parse_error;
  Timer decode_timer;
  if (!decode_rollout_request(frame, request, parse_error)) {
    decode_errors_.add();
    enqueue_error(conn, frame.request_id, NetError::Malformed, parse_error);
    return;
  }
  request.decode_us = decode_timer.millis() * 1e3;
  GNS_TRACE_SCOPE_T("net.conn.submit", request.trace_id);
  if (draining_.load(std::memory_order_acquire)) {
    enqueue_error(conn, frame.request_id, NetError::ShuttingDown,
                  "server is draining");
    return;
  }
  if (static_cast<int>(conn.inflight.size()) >=
          config_.max_inflight_per_connection ||
      global_inflight_.load(std::memory_order_relaxed) >=
          config_.max_inflight_global) {
    rejected_backpressure_.add();
    enqueue_error(conn, frame.request_id, NetError::Busy,
                  "in-flight request cap reached; retry with backoff");
    return;
  }

  // Deadline propagation: time the request spent straddling reads already
  // counts against its budget, so a deadline that died in the read buffer
  // reaches the scheduler as expired (<= 0) and is rejected at submit
  // instead of occupying a batch slot.
  if (request.deadline_ms > 0.0) {
    request.deadline_ms -= buffered_ms;
    if (request.deadline_ms == 0.0) request.deadline_ms = -1.0;  // 0 = none
  }

  serve::JobTicket ticket = scheduler_.submit(std::move(request));
  // The scheduler resolves rejections (QueueFull / expired deadline /
  // ShutDown) immediately; pump_completions translates them. QueueFull is
  // additionally counted as backpressure when it surfaces there.
  Pending pending;
  pending.request_id = frame.request_id;
  pending.job_id = ticket.id;
  pending.future = std::move(ticket.result);
  pending.decoded = Clock::now();
  pending.version = frame.version;
  conn.inflight.push_back(std::move(pending));
  const int inflight =
      global_inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  inflight_gauge_.set(inflight);
  queue_depth_gauge_.set(scheduler_.queue_depth());
}

void Server::handle_stats(Connection& conn, const FrameView& frame) {
  GNS_TRACE_SCOPE("net.conn.stats");
  WireStatsRequest request;
  std::string parse_error;
  if (!decode_stats_request(frame, request, parse_error)) {
    decode_errors_.add();
    enqueue_error(conn, frame.request_id, NetError::Malformed, parse_error);
    return;
  }
  stats_requests_.add();
  // Deliberately answered even while draining: watching the drain finish
  // is exactly what a live scrape is for.
  queue_depth_gauge_.set(scheduler_.queue_depth());
  WireStatsReply reply;
  reply.uptime_ms = ms_since(started_, Clock::now());
  reply.inflight = static_cast<std::uint32_t>(
      std::max(0, global_inflight_.load(std::memory_order_relaxed)));
  reply.queue_depth =
      static_cast<std::uint32_t>(std::max(0, scheduler_.queue_depth()));
  reply.active_connections = static_cast<std::uint32_t>(
      std::max(0, active_connections_.load(std::memory_order_relaxed)));
  reply.draining = draining_.load(std::memory_order_acquire) ? 1 : 0;
  reply.format = request.format;
  reply.body = request.format == WireStatsRequest::kPrometheus
                   ? obs::MetricsRegistry::global().to_prometheus()
                   : obs::MetricsRegistry::global().to_json();
  WriteItem item;
  item.bytes = encode_stats_reply(frame.request_id, reply);
  item.terminal = true;
  item.enqueued_ns = obs::trace_now_ns();
  conn.wqueue.push_back(std::move(item));
  frames_tx_.add();
}

void Server::handle_hello(Connection& conn, const FrameView& frame) {
  GNS_TRACE_SCOPE("net.conn.hello");
  WireHello hello;
  std::string parse_error;
  if (!decode_hello(frame, hello, parse_error)) {
    decode_errors_.add();
    enqueue_error(conn, frame.request_id, NetError::Malformed, parse_error);
    return;
  }
  WireHelloReply reply;
  reply.protocol_version = config_.max_protocol_version;
  reply.draining = draining_.load(std::memory_order_acquire) ? 1 : 0;
  reply.max_inflight =
      static_cast<std::uint32_t>(std::max(1, config_.max_inflight_global));
  reply.current_inflight = static_cast<std::uint32_t>(
      std::max(0, global_inflight_.load(std::memory_order_relaxed)));
  reply.workers =
      static_cast<std::uint32_t>(std::max(0, scheduler_.workers()));
  reply.models = scheduler_.registry()->names();
  if (reply.models.size() > kMaxHelloModels)
    reply.models.resize(kMaxHelloModels);
  WriteItem item;
  item.bytes = encode_hello_reply(frame.request_id, reply, frame.version);
  item.terminal = true;
  item.enqueued_ns = obs::trace_now_ns();
  conn.wqueue.push_back(std::move(item));
  frames_tx_.add();
}

std::size_t Server::pump_completions(Connection& conn) {
  for (std::size_t i = 0; i < conn.inflight.size();) {
    Pending& pending = conn.inflight[i];
    if (pending.future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      ++i;
      continue;
    }
    const serve::RolloutResult result = pending.future.get();
    request_ms_.add(ms_since(pending.decoded, Clock::now()));
    enqueue_result(conn, pending, result);
    conn.inflight.erase(conn.inflight.begin() +
                        static_cast<std::ptrdiff_t>(i));
    const int inflight =
        global_inflight_.fetch_sub(1, std::memory_order_relaxed) - 1;
    inflight_gauge_.set(std::max(0, inflight));
  }
  return conn.inflight.size();
}

void Server::enqueue_result(Connection& conn, const Pending& pending,
                            const serve::RolloutResult& result) {
  GNS_TRACE_SCOPE_T("net.conn.encode", result.trace_id);
  const std::uint64_t request_id = pending.request_id;
  if (result.status == serve::JobStatus::QueueFull) {
    // Scheduler-level backpressure surfaces as Busy, same as the server's
    // own in-flight caps: clients have one retry path.
    rejected_backpressure_.add();
    enqueue_error(conn, request_id, NetError::Busy, "scheduler queue full");
    return;
  }

  Timer serialize_timer;
  // Stream the predicted frames (even a partial prefix from a deadline or
  // cancellation) as chunks, then the terminal status.
  const std::size_t total = result.frames.size();
  for (std::size_t first = 0; first < total;
       first += static_cast<std::size_t>(config_.chunk_frames)) {
    const std::size_t count = std::min(
        static_cast<std::size_t>(config_.chunk_frames), total - first);
    WireChunk chunk;
    chunk.first_frame = static_cast<std::uint32_t>(first);
    chunk.frame_len =
        static_cast<std::uint32_t>(result.frames[first].size());
    chunk.data.reserve(count * chunk.frame_len);
    for (std::size_t f = first; f < first + count; ++f) {
      GNS_CHECK_MSG(result.frames[f].size() == chunk.frame_len,
                    "rollout frames differ in length");
      chunk.data.insert(chunk.data.end(), result.frames[f].begin(),
                        result.frames[f].end());
    }
    WriteItem item;
    item.bytes = encode_rollout_chunk(request_id, chunk, pending.version);
    item.trace_id = result.trace_id;
    conn.wqueue.push_back(std::move(item));
    frames_tx_.add();
  }

  WireStatus status;
  status.status = result.status;
  status.total_frames = static_cast<std::uint32_t>(total);
  status.queue_ms = result.queue_ms;
  status.exec_ms = result.exec_ms;
  status.total_ms = result.total_ms;
  status.error = result.error;
  status.trace_id = result.trace_id;
  status.cached = result.cached;
  status.cache_outcome = result.cache_outcome;
  status.phases = result.phases;
  // The serialize phase covers the chunk encoding above; the status frame
  // itself is header-sized and cheap, so charging it as already-elapsed
  // time keeps the wire value honest without encoding twice. write_us is
  // unknowable until the flush — it stays 0 on the wire and lands in the
  // serve.phase.write_us histogram instead.
  status.phases.serialize_us = serialize_timer.millis() * 1e3;
  WriteItem item;
  item.bytes = encode_status_reply(request_id, status, pending.version);
  item.terminal = true;
  item.trace_id = result.trace_id;
  item.enqueued_ns = obs::trace_now_ns();
  conn.wqueue.push_back(std::move(item));
  frames_tx_.add();
  scheduler_.stats().on_serialize(status.phases.serialize_us);
}

void Server::enqueue_error(Connection& conn, std::uint64_t request_id,
                           NetError code, const std::string& message) {
  const auto index = static_cast<std::size_t>(code);
  if (index < reject_counters_.size() && reject_counters_[index] != nullptr)
    reject_counters_[index]->add();
  WriteItem item;
  item.bytes = encode_error_reply(request_id, {code, message},
                                  conn.peer_version);
  item.terminal = true;
  item.enqueued_ns = obs::trace_now_ns();
  conn.wqueue.push_back(std::move(item));
  frames_tx_.add();
}

bool Server::flush_writes(Connection& conn) {
  GNS_TRACE_SCOPE("net.conn.write");
  while (!conn.wqueue.empty()) {
    const WriteItem& front = conn.wqueue.front();
    while (conn.woff < front.bytes.size()) {
      const ssize_t n = ::send(conn.fd, front.bytes.data() + conn.woff,
                               front.bytes.size() - conn.woff, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
          return true;  // kernel buffer full: wait for POLLOUT
        return false;
      }
      conn.woff += static_cast<std::size_t>(n);
      bytes_tx_.add(static_cast<std::uint64_t>(n));
      conn.last_activity = Clock::now();
    }
    if (front.terminal && front.enqueued_ns > 0) {
      // The request's terminal frame left the socket: everything queued
      // behind it for this request (its chunks ran first, FIFO) is out, so
      // enqueue -> now is the request's write/flush phase.
      const std::int64_t now_ns = obs::trace_now_ns();
      scheduler_.stats().on_write(
          static_cast<double>(now_ns - front.enqueued_ns) * 1e-3);
      obs::record_manual_span("net.conn.flush", front.enqueued_ns, now_ns,
                              front.trace_id);
    }
    conn.wqueue.pop_front();
    conn.woff = 0;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Executor mode (use_exec_): the exact handler_loop per-connection cycle,
// run as oneshot-watch tasks on the global executor. ec->m serializes the
// watch callback, pump-timer callback, and stop() against each other; the
// oneshot watch guarantees at most one socket-event task per connection.
// ---------------------------------------------------------------------------

struct Server::ExecConn {
  std::mutex m;
  Connection conn;
  std::uint64_t key = 0;
  int watch_id = -1;
  bool closed = false;
  bool pump_armed = false;
  exec::Executor::TimerId pump_timer = 0;
};

void Server::exec_accept(short /*revents*/) {
  if (draining_.load(std::memory_order_acquire)) return;  // stop() unwatches
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;  // EAGAIN or transient error: back to the poller
    if (active_connections_.load(std::memory_order_relaxed) >=
            config_.max_connections ||
        !set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    accepted_.add();
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    active_connections_gauge_.set(
        active_connections_.load(std::memory_order_relaxed));
    auto ec = std::make_shared<ExecConn>();
    ec->conn.fd = fd;
    ec->conn.last_activity = Clock::now();
    ec->conn.peer_version = config_.max_protocol_version;
    {
      std::lock_guard<std::mutex> lock(econns_mutex_);
      ec->key = next_econn_++;
      econns_[ec->key] = ec;
    }
    // Register under ec->m: the first event task can fire on another
    // worker immediately and reads watch_id when it re-arms.
    std::lock_guard<std::mutex> lk(ec->m);
    ec->watch_id = bridge_->watch(
        fd, POLLIN, [this, ec](short re) { exec_service(ec, re); });
  }
  bridge_->rearm(listen_watch_, POLLIN);
}

void Server::exec_service(const std::shared_ptr<ExecConn>& ec,
                          short revents) {
  bool erase = false;
  {
    std::lock_guard<std::mutex> lock(ec->m);
    if (ec->closed) return;
    Connection& conn = ec->conn;
    bool alive = true;

    if (revents & (POLLERR | POLLHUP | POLLNVAL)) alive = false;
    if (alive && (revents & POLLIN)) {
      alive = read_some(conn);
      if (alive) process_rbuf(conn);
    }
    if (alive) pump_completions(conn);
    if (alive && !conn.wqueue.empty()) alive = flush_writes(conn);
    if (alive && conn.close_after_flush && conn.wqueue.empty()) alive = false;

    const Clock::time_point now = Clock::now();
    if (alive && config_.read_timeout_ms > 0 && conn.has_partial &&
        ms_since(conn.partial_since, now) > config_.read_timeout_ms) {
      timeouts_.add();
      alive = false;
    }
    if (alive && config_.idle_timeout_ms > 0 && conn.inflight.empty() &&
        conn.wqueue.empty() && !conn.has_partial &&
        ms_since(conn.last_activity, now) > config_.idle_timeout_ms) {
      timeouts_.add();
      alive = false;
    }
    // Drain exit per connection: once nothing is in flight and every
    // reply flushed, the connection closes itself (exec_stop is waiting).
    if (alive && draining_.load(std::memory_order_acquire) &&
        conn.inflight.empty() && conn.wqueue.empty()) {
      alive = false;
    }

    if (!alive) {
      ec->closed = true;
      if (ec->pump_timer != 0 &&
          exec::Executor::global().cancel_timer(ec->pump_timer)) {
        exec_pending_.fetch_sub(1, std::memory_order_acq_rel);
      }
      ec->pump_timer = 0;
      ec->pump_armed = false;
      bridge_->unwatch(ec->watch_id);
      close_connection(conn);
      erase = true;
    } else {
      short events = POLLIN;
      if (!conn.wqueue.empty()) events |= POLLOUT;
      bridge_->rearm(ec->watch_id, events);
      // Futures are poll-checked, so a connection with work pending gets a
      // tight pump tick and an idle one a relaxed tick — the executor-
      // timer analogue of handler_loop's 2 ms / 50 ms poll timeout.
      if (!ec->pump_armed) {
        const bool busy = !conn.inflight.empty() || !conn.wqueue.empty() ||
                          conn.has_partial ||
                          draining_.load(std::memory_order_acquire);
        ec->pump_armed = true;
        exec_pending_.fetch_add(1, std::memory_order_acq_rel);
        ec->pump_timer = exec::Executor::global().schedule_after(
            busy ? 2.0 : 50.0, [this, ec] {
              {
                std::lock_guard<std::mutex> lk(ec->m);
                ec->pump_armed = false;
                ec->pump_timer = 0;
              }
              exec_service(ec, 0);
              exec_pending_.fetch_sub(1, std::memory_order_acq_rel);
            });
      }
    }
  }
  if (erase) {
    // ec->m released above: econns_mutex_ must never nest inside it.
    std::lock_guard<std::mutex> lock(econns_mutex_);
    econns_.erase(ec->key);
  }
}

void Server::exec_stop() {
  // 1. Stop accepting. The listener fd stays open until the bridge stops:
  //    an already-submitted accept task may still be using it.
  bridge_->unwatch(listen_watch_);
  listen_watch_ = -1;
  // 2. Drain: connections close themselves once their in-flight jobs have
  //    resolved and flushed (pump timers keep servicing them); bounded by
  //    drain_timeout_ms, after which stragglers are abandoned and logged.
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             config_.drain_timeout_ms));
  for (;;) {
    bool dirty = false;
    {
      std::lock_guard<std::mutex> lock(econns_mutex_);
      for (auto& entry : econns_) {
        std::lock_guard<std::mutex> lk(entry.second->m);
        const Connection& conn = entry.second->conn;
        if (!conn.inflight.empty() || !conn.wqueue.empty()) dirty = true;
      }
    }
    if (!dirty || Clock::now() >= deadline) {
      if (dirty) GNS_WARN("net: drain timeout, abandoning connections");
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // 3. Close every remaining connection and cancel its pump timer.
  std::map<std::uint64_t, std::shared_ptr<ExecConn>> snapshot;
  {
    std::lock_guard<std::mutex> lock(econns_mutex_);
    snapshot.swap(econns_);
  }
  for (auto& entry : snapshot) {
    ExecConn& ec = *entry.second;
    std::lock_guard<std::mutex> lk(ec.m);
    if (ec.closed) continue;
    ec.closed = true;
    if (ec.pump_timer != 0 &&
        exec::Executor::global().cancel_timer(ec.pump_timer)) {
      exec_pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
    ec.pump_timer = 0;
    bridge_->unwatch(ec.watch_id);
    close_connection(ec.conn);
  }
  // 4. Quiesce: the bridge joins its poller and drains watch-callback
  //    tasks; pump-timer callbacks are tracked separately via
  //    exec_pending_ (they see closed connections and return early).
  bridge_->stop();
  while (exec_pending_.load(std::memory_order_acquire) > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  bridge_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
  obs::flush_env_files();
  GNS_INFO("net: drained and stopped");
}

void Server::close_connection(Connection& conn) {
  if (conn.fd < 0) return;
  // The peer is gone: nobody will read these results. Cancel what the
  // scheduler has not started and release the in-flight slots.
  for (Pending& pending : conn.inflight) {
    scheduler_.cancel(pending.job_id);
    global_inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
  inflight_gauge_.set(
      std::max(0, global_inflight_.load(std::memory_order_relaxed)));
  conn.inflight.clear();
  ::close(conn.fd);
  conn.fd = -1;
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  active_connections_gauge_.set(
      active_connections_.load(std::memory_order_relaxed));
}

}  // namespace gns::net
