#include "net/protocol.hpp"

#include <cstring>

#include "util/check.hpp"

namespace gns::net {

namespace {

// ---- Little-endian primitives ---------------------------------------------

void put_u8(std::vector<std::uint8_t>& buf, std::uint8_t v) {
  buf.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& buf, std::uint16_t v) {
  buf.push_back(static_cast<std::uint8_t>(v));
  buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& buf, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(buf, bits);
}

void put_string(std::vector<std::uint8_t>& buf, const std::string& s) {
  GNS_CHECK_MSG(s.size() <= kMaxStringBytes, "wire string exceeds cap");
  put_u16(buf, static_cast<std::uint16_t>(s.size()));
  buf.insert(buf.end(), s.begin(), s.end());
}

void put_doubles(std::vector<std::uint8_t>& buf,
                 const std::vector<double>& values) {
  for (double v : values) put_f64(buf, v);
}

std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// Bounds-checked payload cursor: every read either succeeds inside the
/// payload or flips the error flag; nothing is ever read past `end_`.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len)
      : cur_(data), end_(data + len) {}

  bool u8(std::uint8_t& v) {
    if (!need(1)) return false;
    v = *cur_++;
    return true;
  }
  bool u16(std::uint16_t& v) {
    if (!need(2)) return false;
    v = static_cast<std::uint16_t>(cur_[0] | (cur_[1] << 8));
    cur_ += 2;
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (!need(4)) return false;
    v = load_u32(cur_);
    cur_ += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (!need(8)) return false;
    v = load_u64(cur_);
    cur_ += 8;
    return true;
  }
  bool f64(double& v) {
    if (!need(8)) return false;
    const std::uint64_t bits = load_u64(cur_);
    std::memcpy(&v, &bits, sizeof(v));
    cur_ += 8;
    return true;
  }
  bool str(std::string& out) {
    std::uint16_t len = 0;
    if (!u16(len)) return false;
    if (len > kMaxStringBytes || !need(len)) return false;
    out.assign(reinterpret_cast<const char*>(cur_), len);
    cur_ += len;
    return true;
  }
  /// Reads exactly `count` doubles. The caller has already verified that
  /// count*8 bytes remain, so the allocation is bounded by received bytes.
  bool doubles(std::vector<double>& out, std::size_t count) {
    if (!need(count * 8)) return false;
    out.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t bits = load_u64(cur_);
      std::memcpy(&out[i], &bits, sizeof(double));
      cur_ += 8;
    }
    return true;
  }

  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - cur_);
  }
  [[nodiscard]] bool exhausted() const { return cur_ == end_; }
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  bool need(std::size_t n) {
    if (remaining() < n) ok_ = false;
    return ok_;
  }

  const std::uint8_t* cur_;
  const std::uint8_t* end_;
  bool ok_ = true;
};

std::vector<std::uint8_t> make_frame(MessageType type,
                                     std::uint64_t request_id,
                                     std::vector<std::uint8_t> payload,
                                     std::uint8_t version) {
  GNS_CHECK_MSG(payload.size() <= kMaxPayloadBytes,
                "encoded payload exceeds kMaxPayloadBytes");
  GNS_CHECK_MSG(version >= kMinProtocolVersion &&
                    version <= kProtocolVersion,
                "encoder asked for an unsupported protocol version");
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderBytes + payload.size());
  put_u32(frame, kMagic);
  put_u8(frame, version);
  put_u8(frame, static_cast<std::uint8_t>(type));
  put_u16(frame, 0);  // reserved
  put_u64(frame, request_id);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

bool fail(std::string& error, const char* what) {
  error = what;
  return false;
}

}  // namespace

// ---- Encoding --------------------------------------------------------------

std::vector<std::uint8_t> encode_rollout_request(
    std::uint64_t request_id, const serve::RolloutRequest& request,
    std::uint8_t version) {
  GNS_CHECK_MSG(request.steps > 0 &&
                    static_cast<std::uint32_t>(request.steps) <=
                        kMaxRolloutSteps,
                "request steps out of wire range");
  GNS_CHECK_MSG(request.window.size() <= kMaxWindowFrames,
                "request window exceeds wire cap");
  std::vector<std::uint8_t> payload;
  put_string(payload, request.model);
  put_u32(payload, static_cast<std::uint32_t>(request.steps));
  put_f64(payload, request.material);
  put_f64(payload, request.deadline_ms);
  const std::uint32_t frame_len =
      request.window.empty()
          ? 0
          : static_cast<std::uint32_t>(request.window.front().size());
  put_u32(payload, static_cast<std::uint32_t>(request.window.size()));
  put_u32(payload, frame_len);
  for (const auto& frame : request.window) {
    GNS_CHECK_MSG(frame.size() == frame_len,
                  "request window frames differ in length");
    put_doubles(payload, frame);
  }
  put_u32(payload, static_cast<std::uint32_t>(request.node_attrs.size()));
  put_doubles(payload, request.node_attrs);
  if (version >= 2) {
    put_u64(payload, request.trace_id);
    put_u8(payload, request.trace_flags);
  }
  return make_frame(MessageType::RolloutRequest, request_id,
                    std::move(payload), version);
}

std::vector<std::uint8_t> encode_rollout_chunk(std::uint64_t request_id,
                                               const WireChunk& chunk,
                                               std::uint8_t version) {
  GNS_CHECK_MSG(chunk.frame_len > 0 &&
                    chunk.data.size() % chunk.frame_len == 0,
                "chunk data must be whole frames");
  std::vector<std::uint8_t> payload;
  put_u32(payload, chunk.first_frame);
  put_u32(payload, chunk.num_frames());
  put_u32(payload, chunk.frame_len);
  put_doubles(payload, chunk.data);
  return make_frame(MessageType::RolloutChunk, request_id, std::move(payload),
                    version);
}

std::vector<std::uint8_t> encode_status_reply(std::uint64_t request_id,
                                              const WireStatus& status,
                                              std::uint8_t version) {
  std::vector<std::uint8_t> payload;
  put_u8(payload, static_cast<std::uint8_t>(status.status));
  put_u32(payload, status.total_frames);
  put_f64(payload, status.queue_ms);
  put_f64(payload, status.exec_ms);
  put_f64(payload, status.total_ms);
  std::string message = status.error;
  if (message.size() > kMaxStringBytes) message.resize(kMaxStringBytes);
  put_string(payload, message);
  if (version >= 2) {
    put_u64(payload, status.trace_id);
    put_u8(payload, status.cached ? 1 : 0);
    put_u8(payload, static_cast<std::uint8_t>(status.cache_outcome));
    put_f64(payload, status.phases.decode_us);
    put_f64(payload, status.phases.cache_us);
    put_f64(payload, status.phases.queue_us);
    put_f64(payload, status.phases.batch_wait_us);
    put_f64(payload, status.phases.compute_us);
    put_f64(payload, status.phases.serialize_us);
    put_f64(payload, status.phases.write_us);
  }
  return make_frame(MessageType::StatusReply, request_id, std::move(payload),
                    version);
}

std::vector<std::uint8_t> encode_error_reply(std::uint64_t request_id,
                                             const WireError& error,
                                             std::uint8_t version) {
  std::vector<std::uint8_t> payload;
  put_u8(payload, static_cast<std::uint8_t>(error.code));
  std::string message = error.message;
  if (message.size() > kMaxStringBytes) message.resize(kMaxStringBytes);
  put_string(payload, message);
  return make_frame(MessageType::ErrorReply, request_id, std::move(payload),
                    version);
}

std::vector<std::uint8_t> encode_stats_request(std::uint64_t request_id,
                                               const WireStatsRequest& request,
                                               std::uint8_t version) {
  GNS_CHECK_MSG(version >= 2, "stats frames need protocol v2");
  GNS_CHECK_MSG(request.format <= WireStatsRequest::kPrometheus,
                "unknown stats format");
  std::vector<std::uint8_t> payload;
  put_u8(payload, request.format);
  return make_frame(MessageType::StatsRequest, request_id, std::move(payload),
                    version);
}

std::vector<std::uint8_t> encode_hello(std::uint64_t request_id,
                                       const WireHello& hello,
                                       std::uint8_t version) {
  GNS_CHECK_MSG(version >= 3, "hello frames need protocol v3");
  GNS_CHECK_MSG(hello.kind <= WireHello::kRouter, "unknown hello kind");
  std::vector<std::uint8_t> payload;
  put_u8(payload, hello.kind);
  return make_frame(MessageType::Hello, request_id, std::move(payload),
                    version);
}

std::vector<std::uint8_t> encode_hello_reply(std::uint64_t request_id,
                                             const WireHelloReply& reply,
                                             std::uint8_t version) {
  GNS_CHECK_MSG(version >= 3, "hello frames need protocol v3");
  GNS_CHECK_MSG(reply.models.size() <= kMaxHelloModels,
                "hello reply model list exceeds cap");
  std::vector<std::uint8_t> payload;
  put_u8(payload, reply.protocol_version);
  put_u8(payload, reply.draining);
  put_u32(payload, reply.max_inflight);
  put_u32(payload, reply.current_inflight);
  put_u32(payload, reply.workers);
  put_u16(payload, static_cast<std::uint16_t>(reply.models.size()));
  for (const std::string& model : reply.models) put_string(payload, model);
  return make_frame(MessageType::HelloReply, request_id, std::move(payload),
                    version);
}

std::vector<std::uint8_t> encode_stats_reply(std::uint64_t request_id,
                                             const WireStatsReply& reply,
                                             std::uint8_t version) {
  GNS_CHECK_MSG(version >= 2, "stats frames need protocol v2");
  std::string body = reply.body;
  if (body.size() > kMaxStatsBodyBytes) body.resize(kMaxStatsBodyBytes);
  std::vector<std::uint8_t> payload;
  put_f64(payload, reply.uptime_ms);
  put_u32(payload, reply.inflight);
  put_u32(payload, reply.queue_depth);
  put_u32(payload, reply.active_connections);
  put_u8(payload, reply.draining);
  put_u8(payload, reply.format);
  put_u32(payload, static_cast<std::uint32_t>(body.size()));
  payload.insert(payload.end(), body.begin(), body.end());
  return make_frame(MessageType::StatsReply, request_id, std::move(payload),
                    version);
}

// ---- Decoding --------------------------------------------------------------

DecodeStatus try_decode_frame(const std::uint8_t* data, std::size_t len,
                              FrameView& out, DecodeError& error) {
  if (len < kHeaderBytes) return DecodeStatus::NeedMore;

  // Header checks, in the order that preserves the most framing: magic and
  // version failures mean the byte stream cannot be trusted at all; an
  // oversized length would commit the reader to swallowing an attacker-
  // chosen number of bytes, so it is fatal too.
  if (load_u32(data) != kMagic) {
    error = {NetError::BadMagic, "frame does not start with GNS1 magic",
             /*fatal=*/true, 0, 0};
    return DecodeStatus::Error;
  }
  const std::uint8_t version = data[4];
  const std::uint8_t raw_type = data[5];
  const std::uint16_t reserved =
      static_cast<std::uint16_t>(data[6] | (data[7] << 8));
  const std::uint64_t request_id = load_u64(data + 8);
  const std::uint32_t payload_len = load_u32(data + 16);

  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    error = {NetError::BadVersion,
             "unsupported protocol version " + std::to_string(version),
             /*fatal=*/true, 0, request_id};
    return DecodeStatus::Error;
  }
  if (payload_len > kMaxPayloadBytes) {
    error = {NetError::TooLarge,
             "declared payload of " + std::to_string(payload_len) +
                 " bytes exceeds cap",
             /*fatal=*/true, 0, request_id};
    return DecodeStatus::Error;
  }
  const std::size_t frame_bytes = kHeaderBytes + payload_len;
  if (len < frame_bytes) return DecodeStatus::NeedMore;

  if (reserved != 0) {
    error = {NetError::Malformed, "nonzero reserved header field",
             /*fatal=*/false, frame_bytes, request_id};
    return DecodeStatus::Error;
  }
  // Each type is only known from the version that introduced it (stats
  // with v2, hello with v3): an older frame claiming a newer type is as
  // unknown as any out-of-range type.
  const std::uint8_t max_type =
      version >= 3 ? static_cast<std::uint8_t>(MessageType::HelloReply)
      : version >= 2 ? static_cast<std::uint8_t>(MessageType::StatsReply)
                     : static_cast<std::uint8_t>(MessageType::ErrorReply);
  if (raw_type < static_cast<std::uint8_t>(MessageType::RolloutRequest) ||
      raw_type > max_type) {
    error = {NetError::BadType,
             "unknown message type " + std::to_string(raw_type),
             /*fatal=*/false, frame_bytes, request_id};
    return DecodeStatus::Error;
  }

  out.type = static_cast<MessageType>(raw_type);
  out.version = version;
  out.request_id = request_id;
  out.payload = data + kHeaderBytes;
  out.payload_len = payload_len;
  out.frame_bytes = frame_bytes;
  return DecodeStatus::Ok;
}

bool decode_rollout_request(const FrameView& frame,
                            serve::RolloutRequest& out, std::string& error) {
  Reader r(frame.payload, frame.payload_len);
  std::uint32_t steps = 0, num_frames = 0, frame_len = 0, attrs = 0;
  double material = 0.0, deadline_ms = 0.0;
  if (!r.str(out.model)) return fail(error, "bad model string");
  if (!r.u32(steps) || steps == 0 || steps > kMaxRolloutSteps)
    return fail(error, "steps out of range");
  if (!r.f64(material) || !r.f64(deadline_ms))
    return fail(error, "truncated material/deadline");
  if (!r.u32(num_frames) || num_frames == 0 || num_frames > kMaxWindowFrames)
    return fail(error, "window frame count out of range");
  if (!r.u32(frame_len) || frame_len == 0)
    return fail(error, "frame length out of range");
  // Cross-check declared counts against bytes actually present before any
  // allocation: a hostile header cannot force an oversized resize.
  const std::uint64_t window_bytes =
      static_cast<std::uint64_t>(num_frames) * frame_len * 8;
  if (window_bytes > r.remaining())
    return fail(error, "window data truncated");
  out.window.assign(num_frames, {});
  for (auto& f : out.window) {
    if (!r.doubles(f, frame_len)) return fail(error, "window data truncated");
  }
  if (!r.u32(attrs) || static_cast<std::uint64_t>(attrs) * 8 > r.remaining())
    return fail(error, "node_attrs truncated");
  if (!r.doubles(out.node_attrs, attrs))
    return fail(error, "node_attrs truncated");
  if (frame.version >= 2) {
    std::uint64_t trace_id = 0;
    std::uint8_t trace_flags = 0;
    if (!r.u64(trace_id) || !r.u8(trace_flags))
      return fail(error, "truncated trace context");
    out.trace_id = trace_id;
    out.trace_flags = trace_flags;
  } else {
    out.trace_id = 0;
    out.trace_flags = 0;
  }
  if (!r.exhausted()) return fail(error, "trailing bytes after request");
  out.steps = static_cast<int>(steps);
  out.material = material;
  out.deadline_ms = deadline_ms;
  return true;
}

bool decode_rollout_chunk(const FrameView& frame, WireChunk& out,
                          std::string& error) {
  Reader r(frame.payload, frame.payload_len);
  std::uint32_t num_frames = 0;
  if (!r.u32(out.first_frame) || !r.u32(num_frames) || !r.u32(out.frame_len))
    return fail(error, "truncated chunk header");
  if (out.frame_len == 0) return fail(error, "chunk frame length is zero");
  const std::uint64_t data_bytes =
      static_cast<std::uint64_t>(num_frames) * out.frame_len * 8;
  if (data_bytes != r.remaining())
    return fail(error, "chunk data size mismatch");
  if (!r.doubles(out.data,
                 static_cast<std::size_t>(num_frames) * out.frame_len))
    return fail(error, "chunk data truncated");
  return true;
}

bool decode_status_reply(const FrameView& frame, WireStatus& out,
                         std::string& error) {
  Reader r(frame.payload, frame.payload_len);
  std::uint8_t status = 0;
  if (!r.u8(status) ||
      status > static_cast<std::uint8_t>(serve::JobStatus::ShutDown))
    return fail(error, "bad job status");
  if (!r.u32(out.total_frames) || !r.f64(out.queue_ms) ||
      !r.f64(out.exec_ms) || !r.f64(out.total_ms) || !r.str(out.error))
    return fail(error, "truncated status reply");
  if (frame.version >= 2) {
    std::uint8_t cached = 0, outcome = 0;
    if (!r.u64(out.trace_id) || !r.u8(cached) || !r.u8(outcome))
      return fail(error, "truncated status trace/cache fields");
    if (cached > 1 ||
        outcome > static_cast<std::uint8_t>(serve::CacheOutcome::Joined))
      return fail(error, "bad cache outcome");
    out.cached = cached != 0;
    out.cache_outcome = static_cast<serve::CacheOutcome>(outcome);
    if (!r.f64(out.phases.decode_us) || !r.f64(out.phases.cache_us) ||
        !r.f64(out.phases.queue_us) || !r.f64(out.phases.batch_wait_us) ||
        !r.f64(out.phases.compute_us) || !r.f64(out.phases.serialize_us) ||
        !r.f64(out.phases.write_us))
      return fail(error, "truncated phase breakdown");
  } else {
    out.trace_id = 0;
    out.cached = false;
    out.cache_outcome = serve::CacheOutcome::None;
    out.phases = serve::PhaseTimeline{};
  }
  if (!r.exhausted()) return fail(error, "trailing bytes after status");
  out.status = static_cast<serve::JobStatus>(status);
  return true;
}

bool decode_error_reply(const FrameView& frame, WireError& out,
                        std::string& error) {
  Reader r(frame.payload, frame.payload_len);
  std::uint8_t code = 0;
  // BackendLost entered with v3; an older frame carrying it is malformed.
  const std::uint8_t max_code =
      frame.version >= 3 ? static_cast<std::uint8_t>(NetError::BackendLost)
                         : static_cast<std::uint8_t>(NetError::Internal);
  if (!r.u8(code) || code < static_cast<std::uint8_t>(NetError::Busy) ||
      code > max_code)
    return fail(error, "bad error code");
  if (!r.str(out.message)) return fail(error, "truncated error message");
  if (!r.exhausted()) return fail(error, "trailing bytes after error");
  out.code = static_cast<NetError>(code);
  return true;
}

bool decode_stats_request(const FrameView& frame, WireStatsRequest& out,
                          std::string& error) {
  if (frame.version < 2) return fail(error, "stats frames need protocol v2");
  Reader r(frame.payload, frame.payload_len);
  std::uint8_t format = 0;
  if (!r.u8(format) || format > WireStatsRequest::kPrometheus)
    return fail(error, "bad stats format");
  if (!r.exhausted()) return fail(error, "trailing bytes after stats request");
  out.format = format;
  return true;
}

bool decode_stats_reply(const FrameView& frame, WireStatsReply& out,
                        std::string& error) {
  if (frame.version < 2) return fail(error, "stats frames need protocol v2");
  Reader r(frame.payload, frame.payload_len);
  std::uint32_t body_len = 0;
  if (!r.f64(out.uptime_ms) || !r.u32(out.inflight) ||
      !r.u32(out.queue_depth) || !r.u32(out.active_connections) ||
      !r.u8(out.draining) || !r.u8(out.format))
    return fail(error, "truncated stats reply header");
  if (out.format > WireStatsRequest::kPrometheus)
    return fail(error, "bad stats format");
  if (!r.u32(body_len) || body_len > kMaxStatsBodyBytes ||
      body_len != r.remaining())
    return fail(error, "stats body size mismatch");
  out.body.assign(reinterpret_cast<const char*>(frame.payload) +
                      (frame.payload_len - body_len),
                  body_len);
  return true;
}

bool decode_hello(const FrameView& frame, WireHello& out,
                  std::string& error) {
  if (frame.version < 3) return fail(error, "hello frames need protocol v3");
  Reader r(frame.payload, frame.payload_len);
  std::uint8_t kind = 0;
  if (!r.u8(kind) || kind > WireHello::kRouter)
    return fail(error, "bad hello kind");
  if (!r.exhausted()) return fail(error, "trailing bytes after hello");
  out.kind = kind;
  return true;
}

bool decode_hello_reply(const FrameView& frame, WireHelloReply& out,
                        std::string& error) {
  if (frame.version < 3) return fail(error, "hello frames need protocol v3");
  Reader r(frame.payload, frame.payload_len);
  std::uint16_t num_models = 0;
  if (!r.u8(out.protocol_version) || !r.u8(out.draining) ||
      !r.u32(out.max_inflight) || !r.u32(out.current_inflight) ||
      !r.u32(out.workers) || !r.u16(num_models))
    return fail(error, "truncated hello reply");
  if (out.draining > 1) return fail(error, "bad hello draining flag");
  if (out.protocol_version < kMinProtocolVersion)
    return fail(error, "bad hello protocol version");
  if (num_models > kMaxHelloModels)
    return fail(error, "hello model list exceeds cap");
  // Each name costs at least its 2-byte length prefix, so the count is
  // cross-checked against received bytes before any allocation.
  if (static_cast<std::size_t>(num_models) * 2 > r.remaining())
    return fail(error, "hello model list truncated");
  out.models.assign(num_models, {});
  for (std::string& model : out.models) {
    if (!r.str(model)) return fail(error, "hello model list truncated");
  }
  if (!r.exhausted()) return fail(error, "trailing bytes after hello reply");
  return true;
}

}  // namespace gns::net
