#pragma once

/// \file client.hpp
/// Blocking client for the net serving front-end.
///
/// One Client wraps one TCP connection. rollout() sends a kRolloutRequest
/// and blocks collecting the streamed kRolloutChunk frames until the
/// terminal kStatusReply / kErrorReply arrives, reassembling the chunks
/// into the same frames vector an in-process serve::RolloutResult carries
/// (byte-for-byte: the wire moves raw IEEE doubles, so loopback results
/// are bitwise comparable against a direct Simulator rollout).
///
/// Backpressure is handled here, not by callers: an ErrorReply{Busy} —
/// the server's in-flight cap or the scheduler's bounded queue — is
/// retried with exponential backoff up to busy_max_retries times before
/// surfacing. Transient connect failures (ECONNREFUSED while the server
/// is still binding, ECONNRESET from a listen backlog overflow) get the
/// same backoff treatment, so clients racing a server start converge
/// instead of failing once and giving up. So does a connection that dies
/// before ANY reply frame arrives (send failure, EOF, reset): that is the
/// shape of a stale connection to a restarted backend, the request never
/// started streaming, and rollouts are idempotent — safe to resend on a
/// fresh connection (the address is re-resolved every attempt). Every
/// other error (transport mid-stream, protocol, typed job failure) is
/// returned on the first occurrence.
///
/// Used by tests/test_net_server.cpp and bench/bench_net_throughput.cpp;
/// also the reference implementation for external clients.

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "serve/job.hpp"

namespace gns::net {

struct ClientConfig {
  std::string host = "127.0.0.1";
  int port = 0;
  double connect_timeout_ms = 5000.0;  ///< per connect() attempt
  double recv_timeout_ms = 120'000.0;  ///< silence on the socket -> error
  /// Busy-retry policy: sleep busy_backoff_ms, double it each retry (cap
  /// busy_backoff_max_ms), give up after busy_max_retries retries. The
  /// same policy governs transient connect errors (ECONNREFUSED /
  /// ECONNRESET during connect), counted separately up to the same cap.
  int busy_max_retries = 8;
  double busy_backoff_ms = 5.0;
  double busy_backoff_max_ms = 500.0;
};

/// Outcome of one Client::rollout call.
struct ClientResult {
  /// False when the socket or the reply stream itself failed; all other
  /// fields except transport_error are meaningless then.
  bool transport_ok = false;
  std::string transport_error;
  /// True when the failure was establishing the connection (as opposed to
  /// mid-exchange). A true value with transport_ok == false after
  /// rollout() means connect retries were exhausted too.
  bool connect_failed = false;
  /// True when an established connection died (send failure, EOF, reset)
  /// before any reply frame for this request arrived. rollout() retries
  /// this shape on a fresh connection (counted in connect_retries); it
  /// only surfaces once retries are exhausted. Once a reply has started
  /// streaming the failure is final — the caller may hold partial frames.
  bool lost_before_reply = false;

  /// True when the terminal frame was an ErrorReply (net_error says why —
  /// a Busy here means retries were exhausted).
  bool is_net_error = false;
  NetError net_error = NetError::Internal;

  /// Terminal job outcome from the StatusReply (when !is_net_error).
  serve::JobStatus status = serve::JobStatus::ExecutionError;
  std::string error;  ///< server-side diagnostic message

  /// Reassembled predicted frames, flat [N*dim] each — including a partial
  /// prefix when the job hit its deadline or was cancelled.
  std::vector<std::vector<double>> frames;

  double queue_ms = 0.0;  ///< server-side timings, from the StatusReply
  double exec_ms = 0.0;
  double total_ms = 0.0;
  double rtt_ms = 0.0;  ///< client-observed send-to-terminal wall time
  int busy_retries = 0;  ///< Busy replies absorbed before this outcome
  int connect_retries = 0;  ///< transient connect failures absorbed

  /// The trace id this request traveled under — the one from the request,
  /// or the client-generated one when the request left it 0. Grep for it
  /// (hex) in the server's trace JSON and slow-request log lines.
  std::uint64_t trace_id = 0;
  bool cached = false;  ///< frames came from the server's rollout cache
  serve::CacheOutcome cache_outcome = serve::CacheOutcome::None;
  /// Server-side per-phase breakdown from the StatusReply (v2 servers;
  /// all-zero against v1). write_us is always 0 on the wire — see
  /// WireStatus.
  serve::PhaseTimeline phases;

  [[nodiscard]] bool ok() const {
    return transport_ok && !is_net_error &&
           status == serve::JobStatus::Ok;
  }
};

class Client {
 public:
  explicit Client(ClientConfig config);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Establishes the TCP connection. Safe to call again after close() or
  /// a transport error (rollout() also reconnects lazily).
  [[nodiscard]] bool connect();
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Sends the request and blocks until its terminal reply, transparently
  /// retrying Busy rejections with backoff. Never throws. When
  /// request.trace_id is 0 the client generates one (returned in
  /// ClientResult::trace_id) so every wire request is traceable end to
  /// end without callers managing ids.
  [[nodiscard]] ClientResult rollout(const serve::RolloutRequest& request);

  /// Outcome of one Client::stats call.
  struct StatsResult {
    bool transport_ok = false;
    std::string transport_error;
    bool is_net_error = false;  ///< server answered with an ErrorReply
    NetError net_error = NetError::Internal;
    std::string error;
    WireStatsReply reply;  ///< the snapshot (when transport_ok && !is_net_error)
    double rtt_ms = 0.0;

    [[nodiscard]] bool ok() const { return transport_ok && !is_net_error; }
  };

  /// Scrapes the server's metrics + health snapshot (kStatsRequest).
  /// Blocking, no retry policy: introspection should report reality,
  /// including a Busy reality.
  [[nodiscard]] StatsResult stats(
      std::uint8_t format = WireStatsRequest::kPrometheus);

 private:
  /// rollout() after trace-id assignment: the Busy/connect retry loop.
  ClientResult run_rollout(const serve::RolloutRequest& request);
  /// One send + receive-until-terminal exchange (no Busy retry).
  ClientResult exchange(const serve::RolloutRequest& request,
                        std::uint64_t request_id);
  /// Blocking-reads one whole frame into buf_; empty view on failure.
  bool read_frame(FrameView& frame, std::string& error);

  ClientConfig config_;
  int fd_ = -1;
  /// errno captured at the failing connect() syscall (close() in the
  /// cleanup path may clobber the thread-local errno before callers see
  /// it); 0 for non-syscall failures like a malformed host address.
  int last_connect_errno_ = 0;
  std::uint64_t next_request_id_ = 1;
  /// Whether the last read_frame() failure was an I/O death (EOF / recv
  /// error) as opposed to a protocol violation; only the former is the
  /// retriable stale-connection shape.
  bool last_read_io_error_ = false;
  std::vector<std::uint8_t> buf_;  ///< partial-frame carryover between reads
  /// Bytes of buf_ the previous read_frame() handed out as a FrameView;
  /// erased on the next call (the view must stay valid until then).
  std::size_t consumed_ = 0;
};

}  // namespace gns::net
