#pragma once

/// \file net.hpp
/// Umbrella header of the network serving front-end.
///
/// The subsystem puts the in-process serving stack (serve::ModelRegistry +
/// serve::JobScheduler) behind a TCP socket:
///
///   protocol — length-prefixed binary frames ("GNS1" magic, versioned),
///              strict bounds-checked decoding, typed transport errors;
///   Server   — poll()-based acceptor + handler threads, nonblocking
///              sockets, bounded in-flight caps (Busy backpressure),
///              deadline propagation, graceful drain on stop();
///   Client   — blocking request/stream-response with Busy retry/backoff,
///              automatic trace-id generation, and a stats() scrape.
///
/// Protocol v2 adds end-to-end observability: requests carry a 64-bit
/// trace_id that is stamped on every span of their server-side life,
/// status replies carry a per-phase latency breakdown (decode / cache /
/// queue / batch-wait / compute / serialize), and kStatsRequest frames
/// snapshot the metrics registry + server health (Prometheus or JSON)
/// without touching the worker pool. v1 clients interoperate unchanged.
///
/// See examples/serve_rollouts.cpp --listen for a server driver,
/// examples/stats_client.cpp for a scrape tool,
/// bench/bench_net_throughput.cpp for the load generator, and DESIGN.md §8
/// (wire format) / §10 (request observability).

#include "net/client.hpp"    // IWYU pragma: export
#include "net/protocol.hpp"  // IWYU pragma: export
#include "net/server.hpp"    // IWYU pragma: export
