#pragma once

/// \file net.hpp
/// Umbrella header of the network serving front-end.
///
/// The subsystem puts the in-process serving stack (serve::ModelRegistry +
/// serve::JobScheduler) behind a TCP socket:
///
///   protocol — length-prefixed binary frames ("GNS1" magic, versioned),
///              strict bounds-checked decoding, typed transport errors;
///   Server   — poll()-based acceptor + handler threads, nonblocking
///              sockets, bounded in-flight caps (Busy backpressure),
///              deadline propagation, graceful drain on stop();
///   Client   — blocking request/stream-response with Busy retry/backoff.
///
/// See examples/serve_rollouts.cpp --listen for a server driver,
/// bench/bench_net_throughput.cpp for the load generator, and DESIGN.md §8
/// for the wire-format specification.

#include "net/client.hpp"    // IWYU pragma: export
#include "net/protocol.hpp"  // IWYU pragma: export
#include "net/server.hpp"    // IWYU pragma: export
