#include "net/client.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/timer.hpp"

namespace gns::net {

namespace {

timeval to_timeval(double ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  return tv;
}

/// Splitmix64 over a monotonic-clock sample and a process-wide counter:
/// ids are unique within a process and overwhelmingly unlikely to collide
/// across clients. Never returns 0 (the wire's "unset" sentinel).
std::uint64_t generate_trace_id() {
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t x = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  x += 0x9E3779B97F4A7C15ull *
       (counter.fetch_add(1, std::memory_order_relaxed) + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x != 0 ? x : 1;
}

bool send_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Client::Client(ClientConfig config) : config_(std::move(config)) {}

Client::~Client() { close(); }

bool Client::connect() {
  close();
  last_connect_errno_ = 0;

  // Resolve fresh on every attempt — never cache a lookup across retries.
  // A backend restarting on the same port (new socket, maybe a new address
  // behind a DNS name) must be reachable by the very next connect, not
  // after a stale half-open connection ages out.
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string port = std::to_string(config_.port);
  if (::getaddrinfo(config_.host.c_str(), port.c_str(), &hints, &results) !=
      0) {
    return false;  // unresolvable host: not transient, errno stays 0
  }

  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd_ = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd_ < 0) {
      last_connect_errno_ = errno;
      continue;
    }
    const timeval send_tv = to_timeval(config_.connect_timeout_ms);
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &send_tv, sizeof(send_tv));
    const timeval recv_tv = to_timeval(config_.recv_timeout_ms);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &recv_tv, sizeof(recv_tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (::connect(fd_, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(results);
      buf_.clear();
      consumed_ = 0;
      last_connect_errno_ = 0;
      return true;
    }
    last_connect_errno_ = errno;
    ::close(fd_);
    fd_ = -1;
  }
  ::freeaddrinfo(results);
  return false;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
  consumed_ = 0;
}

ClientResult Client::rollout(const serve::RolloutRequest& request) {
  if (request.trace_id != 0) return run_rollout(request);
  // The copy is taken only on this path; callers that manage their own
  // trace ids pay nothing.
  serve::RolloutRequest traced = request;
  traced.trace_id = generate_trace_id();
  return run_rollout(traced);
}

ClientResult Client::run_rollout(const serve::RolloutRequest& request) {
  ClientResult result;
  double backoff_ms = config_.busy_backoff_ms;
  int busy_retries = 0;
  int connect_retries = 0;
  Timer rtt;
  for (;;) {
    result = exchange(request, next_request_id_++);
    result.busy_retries = busy_retries;
    result.connect_retries = connect_retries;
    const bool busy = result.transport_ok && result.is_net_error &&
                      result.net_error == NetError::Busy;
    // ECONNREFUSED: nothing listening *yet* (server still binding, or
    // restarting). ECONNRESET: the kernel dropped us from an overflowing
    // listen backlog. Both are the transient shapes of "server busy
    // coming up", so they share the Busy backoff policy; anything else
    // (unreachable host, bad address) fails immediately.
    const bool transient_connect =
        !result.transport_ok &&
        ((result.connect_failed &&
          (last_connect_errno_ == ECONNREFUSED ||
           last_connect_errno_ == ECONNRESET)) ||
         // A reply-less connection death is a stale or restarting backend;
         // the idempotent request is resent on a fresh connection.
         result.lost_before_reply);
    if (busy) {
      if (busy_retries >= config_.busy_max_retries) break;
      ++busy_retries;
    } else if (transient_connect) {
      if (connect_retries >= config_.busy_max_retries) break;
      ++connect_retries;
    } else {
      break;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2.0, config_.busy_backoff_max_ms);
  }
  result.rtt_ms = rtt.millis();
  return result;
}

Client::StatsResult Client::stats(std::uint8_t format) {
  StatsResult result;
  Timer rtt;
  if (fd_ < 0 && !connect()) {
    result.transport_error =
        "connect to " + config_.host + ":" + std::to_string(config_.port) +
        " failed" +
        (last_connect_errno_ != 0
             ? std::string(": ") + std::strerror(last_connect_errno_)
             : std::string());
    result.rtt_ms = rtt.millis();
    return result;
  }

  const std::uint64_t request_id = next_request_id_++;
  WireStatsRequest stats_request;
  stats_request.format = format;
  const std::vector<std::uint8_t> wire =
      encode_stats_request(request_id, stats_request);
  if (!send_all(fd_, wire.data(), wire.size())) {
    result.transport_error =
        std::string("send failed: ") + std::strerror(errno);
    close();
    result.rtt_ms = rtt.millis();
    return result;
  }

  for (;;) {
    FrameView frame;
    std::string read_error;
    if (!read_frame(frame, read_error)) {
      result.transport_error = read_error;
      close();
      break;
    }
    if (frame.request_id != request_id) {
      result.transport_error = "reply for unexpected request id " +
                               std::to_string(frame.request_id);
      close();
      break;
    }
    std::string parse_error;
    if (frame.type == MessageType::StatsReply) {
      if (!decode_stats_reply(frame, result.reply, parse_error)) {
        result.transport_error = "bad stats reply: " + parse_error;
        close();
        break;
      }
      result.transport_ok = true;
      break;
    }
    if (frame.type == MessageType::ErrorReply) {
      WireError error;
      if (!decode_error_reply(frame, error, parse_error)) {
        result.transport_error = "bad error reply: " + parse_error;
        close();
        break;
      }
      result.transport_ok = true;
      result.is_net_error = true;
      result.net_error = error.code;
      result.error = error.message;
      break;
    }
    result.transport_error = "unexpected reply type to a stats request";
    close();
    break;
  }
  result.rtt_ms = rtt.millis();
  return result;
}

ClientResult Client::exchange(const serve::RolloutRequest& request,
                              std::uint64_t request_id) {
  ClientResult result;
  result.trace_id = request.trace_id;
  if (fd_ < 0 && !connect()) {
    result.connect_failed = true;
    result.transport_error =
        "connect to " + config_.host + ":" + std::to_string(config_.port) +
        " failed" +
        (last_connect_errno_ != 0
             ? std::string(": ") + std::strerror(last_connect_errno_)
             : std::string());
    return result;
  }

  const std::vector<std::uint8_t> wire =
      encode_rollout_request(request_id, request);
  if (!send_all(fd_, wire.data(), wire.size())) {
    result.transport_error = std::string("send failed: ") +
                             std::strerror(errno);
    result.lost_before_reply = true;
    close();
    return result;
  }

  // Collect chunks until the terminal frame for our request id. The server
  // may interleave replies to other ids on a shared connection; those are
  // impossible here (one outstanding request per Client) and are treated
  // as a protocol error to fail loudly rather than mis-assemble frames.
  std::size_t expected_next_frame = 0;
  bool reply_started = false;
  for (;;) {
    FrameView frame;
    std::string read_error;
    if (!read_frame(frame, read_error)) {
      result.transport_error = read_error;
      result.lost_before_reply = last_read_io_error_ && !reply_started;
      close();
      return result;
    }
    reply_started = true;
    if (frame.request_id != request_id) {
      result.transport_error = "reply for unexpected request id " +
                               std::to_string(frame.request_id);
      close();
      return result;
    }

    std::string parse_error;
    switch (frame.type) {
      case MessageType::RolloutChunk: {
        WireChunk chunk;
        if (!decode_rollout_chunk(frame, chunk, parse_error)) {
          result.transport_error = "bad chunk: " + parse_error;
          close();
          return result;
        }
        if (chunk.first_frame != expected_next_frame) {
          result.transport_error = "chunk out of order";
          close();
          return result;
        }
        for (std::uint32_t f = 0; f < chunk.num_frames(); ++f) {
          const auto begin =
              chunk.data.begin() +
              static_cast<std::ptrdiff_t>(f) * chunk.frame_len;
          result.frames.emplace_back(begin, begin + chunk.frame_len);
        }
        expected_next_frame += chunk.num_frames();
        continue;
      }
      case MessageType::StatusReply: {
        WireStatus status;
        if (!decode_status_reply(frame, status, parse_error)) {
          result.transport_error = "bad status reply: " + parse_error;
          close();
          return result;
        }
        if (status.total_frames != result.frames.size()) {
          result.transport_error = "status frame count mismatch";
          close();
          return result;
        }
        result.transport_ok = true;
        result.status = status.status;
        result.error = status.error;
        result.queue_ms = status.queue_ms;
        result.exec_ms = status.exec_ms;
        result.total_ms = status.total_ms;
        result.cached = status.cached;
        result.cache_outcome = status.cache_outcome;
        result.phases = status.phases;
        return result;
      }
      case MessageType::ErrorReply: {
        WireError error;
        if (!decode_error_reply(frame, error, parse_error)) {
          result.transport_error = "bad error reply: " + parse_error;
          close();
          return result;
        }
        result.transport_ok = true;
        result.is_net_error = true;
        result.net_error = error.code;
        result.error = error.message;
        result.frames.clear();
        return result;
      }
      case MessageType::RolloutRequest:
        result.transport_error = "server sent a request frame";
        close();
        return result;
      default:
        result.transport_error = "unexpected reply type to a rollout request";
        close();
        return result;
    }
  }
}

bool Client::read_frame(FrameView& frame, std::string& error) {
  last_read_io_error_ = false;
  // Drop the frame handed out by the previous call now that the caller is
  // done with its borrowed FrameView.
  if (consumed_ > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(
                                                consumed_));
    consumed_ = 0;
  }
  for (;;) {
    DecodeError decode_error;
    const DecodeStatus status =
        try_decode_frame(buf_.data(), buf_.size(), frame, decode_error);
    if (status == DecodeStatus::Ok) {
      consumed_ = frame.frame_bytes;
      break;
    }
    if (status == DecodeStatus::Error) {
      error = "protocol error from server: " + decode_error.message;
      return false;
    }
    std::uint8_t chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      error = "server closed the connection";
      last_read_io_error_ = true;
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      error = std::string("recv failed: ") + std::strerror(errno);
      last_read_io_error_ = true;
      return false;
    }
    buf_.insert(buf_.end(), chunk, chunk + n);
  }
  return true;
}

}  // namespace gns::net
