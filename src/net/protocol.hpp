#pragma once

/// \file protocol.hpp
/// Wire protocol of the network serving front-end.
///
/// Every message is one length-prefixed binary frame:
///
///   offset  size  field
///        0     4  magic      0x31534E47 ("GNS1", little-endian)
///        4     1  version    kProtocolVersion
///        5     1  type       MessageType
///        6     2  reserved   must be zero
///        8     8  request_id client-chosen; replies echo it
///       16     4  payload_len  bytes that follow (<= kMaxPayloadBytes)
///       20     …  payload    message-specific, little-endian throughout
///
/// Request/reply flow: a client sends kRolloutRequest and receives zero or
/// more kRolloutChunk frames (predicted positions, streamed as they are
/// cut from the finished rollout) followed by exactly one terminal frame —
/// kStatusReply (carrying serve::JobStatus, so the scheduler's typed error
/// codes cross the wire unchanged) or kErrorReply (transport-level
/// failures: backpressure, malformed frames, drain in progress). A client
/// may also send kStatsRequest and receive one kStatsReply — a metrics +
/// health snapshot served off the poll thread, for live introspection.
///
/// Versioning: version 2 appends trace context (a client-chosen 64-bit
/// trace_id plus flags) to kRolloutRequest, appends the trace_id, cache
/// outcome, and per-phase latency breakdown to kStatusReply, and adds the
/// kStatsRequest/kStatsReply pair. Version 3 adds the kHello/kHelloReply
/// capability handshake (a backend advertises its protocol version, loaded
/// model names, and in-flight capacity at connect time — what the router
/// needs to place work with no config file) and the BackendLost error code
/// the router raises when a backend dies after streaming began. Appends
/// only — every v1 field keeps its offset, and decoders accept
/// kMinProtocolVersion..kProtocolVersion (a v1 request simply decodes with
/// trace_id 0). Servers reply in the requester's version, so v1 clients
/// round-trip unchanged. A pre-v3 server greets a Hello with a fatal
/// BadVersion error frame encoded in its own version — the router reads
/// that version byte, reconnects, and falls back to conservative defaults
/// (see src/router/backend.cpp).
///
/// Decoding is strict and allocation-safe: the header is validated before
/// any payload allocation, declared lengths are capped (kMaxPayloadBytes,
/// kMaxStringBytes, …), every count inside a payload is cross-checked
/// against the bytes actually received, and a truncated buffer is reported
/// as NeedMore — never read past. Errors are typed; header-level errors
/// that lose framing (bad magic, oversized length, unknown version) are
/// marked fatal so the server can drop the connection, while a bad type
/// or malformed payload skips one well-framed frame and keeps the stream.

#include <cstdint>
#include <string>
#include <vector>

#include "serve/job.hpp"

namespace gns::net {

inline constexpr std::uint32_t kMagic = 0x31534E47u;  ///< "GNS1" on the wire
inline constexpr std::uint8_t kProtocolVersion = 3;
/// Oldest version decoders still accept (see the versioning note above).
inline constexpr std::uint8_t kMinProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 20;

/// Hard cap on one frame's payload. Large enough for a 100k-particle 3-D
/// six-frame window (~20 MB), small enough that a hostile length prefix
/// cannot balloon a connection buffer.
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;
inline constexpr std::size_t kMaxStringBytes = 4096;
inline constexpr std::uint32_t kMaxWindowFrames = 64;
inline constexpr std::uint32_t kMaxRolloutSteps = 10'000'000;
/// Cap on a kStatsReply snapshot body (Prometheus/JSON text). Generously
/// above any real registry dump, far below kMaxPayloadBytes.
inline constexpr std::uint32_t kMaxStatsBodyBytes = 4u << 20;
/// Cap on the model list a kHelloReply may advertise.
inline constexpr std::uint32_t kMaxHelloModels = 256;

enum class MessageType : std::uint8_t {
  RolloutRequest = 1,  ///< client -> server: run a rollout
  RolloutChunk = 2,    ///< server -> client: streamed predicted frames
  StatusReply = 3,     ///< server -> client: terminal job outcome
  ErrorReply = 4,      ///< server -> client: transport-level failure
  StatsRequest = 5,    ///< client -> server: snapshot metrics + health (v2)
  StatsReply = 6,      ///< server -> client: the snapshot (v2)
  Hello = 7,           ///< client -> server: who are you / what do you serve (v3)
  HelloReply = 8,      ///< server -> client: capability advertisement (v3)
};

/// Transport-level error codes carried by kErrorReply (job-level outcomes
/// travel as serve::JobStatus inside kStatusReply instead).
enum class NetError : std::uint8_t {
  Busy = 1,          ///< backpressure: in-flight cap or queue full; retry
  Malformed = 2,     ///< payload failed validation
  TooLarge = 3,      ///< declared payload_len exceeds kMaxPayloadBytes
  BadMagic = 4,      ///< frame did not start with kMagic
  BadVersion = 5,    ///< unsupported protocol version
  BadType = 6,       ///< unknown MessageType
  ShuttingDown = 7,  ///< server is draining; no new requests
  Internal = 8,      ///< unexpected server-side failure
  BackendLost = 9,   ///< router: backend died after streaming began (v3)
};

[[nodiscard]] inline const char* to_string(NetError e) {
  switch (e) {
    case NetError::Busy: return "busy";
    case NetError::Malformed: return "malformed";
    case NetError::TooLarge: return "too_large";
    case NetError::BadMagic: return "bad_magic";
    case NetError::BadVersion: return "bad_version";
    case NetError::BadType: return "bad_type";
    case NetError::ShuttingDown: return "shutting_down";
    case NetError::Internal: return "internal";
    case NetError::BackendLost: return "backend_lost";
  }
  return "unknown";
}

// ---- Message bodies --------------------------------------------------------

/// kRolloutChunk: `data` holds num_frames() consecutive predicted frames of
/// frame_len doubles each, starting at rollout frame `first_frame`.
struct WireChunk {
  std::uint32_t first_frame = 0;
  std::uint32_t frame_len = 0;  ///< doubles per frame (N * dim)
  std::vector<double> data;

  [[nodiscard]] std::uint32_t num_frames() const {
    return frame_len == 0 ? 0
                          : static_cast<std::uint32_t>(data.size() / frame_len);
  }
};

/// kStatusReply: terminal outcome of one request, mirroring
/// serve::RolloutResult minus the frames (those were streamed as chunks).
/// The fields below `error` are the v2 appendix; they decode as defaults
/// from a v1 frame and are dropped when encoding one.
struct WireStatus {
  serve::JobStatus status = serve::JobStatus::ExecutionError;
  std::uint32_t total_frames = 0;  ///< chunked frames the client should hold
  double queue_ms = 0.0;
  double exec_ms = 0.0;
  double total_ms = 0.0;
  std::string error;
  std::uint64_t trace_id = 0;  ///< echo of the request's trace context
  bool cached = false;
  serve::CacheOutcome cache_outcome = serve::CacheOutcome::None;
  /// Server-side latency breakdown. write_us is reported as 0 on the wire
  /// (the flush hasn't happened when the status is encoded); it lands in
  /// the server's serve.phase.write_us histogram instead.
  serve::PhaseTimeline phases;
};

/// kStatsRequest: ask for a metrics + health snapshot in one format.
struct WireStatsRequest {
  enum Format : std::uint8_t { kJson = 0, kPrometheus = 1 };
  std::uint8_t format = kPrometheus;
};

/// kStatsReply: health header + the full metrics registry rendered as text
/// (Prometheus exposition or the registry's JSON dump, per the request).
struct WireStatsReply {
  double uptime_ms = 0.0;          ///< since Server::start()
  std::uint32_t inflight = 0;      ///< requests submitted, not yet replied
  std::uint32_t queue_depth = 0;   ///< scheduler queue at snapshot time
  std::uint32_t active_connections = 0;
  std::uint8_t draining = 0;       ///< 1 once graceful drain has begun
  std::uint8_t format = WireStatsRequest::kPrometheus;
  std::string body;                ///< <= kMaxStatsBodyBytes
};

/// kErrorReply: transport-level rejection. request_id echoes the offending
/// request when known, 0 when framing was lost before the id was read.
struct WireError {
  NetError code = NetError::Internal;
  std::string message;
};

/// kHello: opens a capability handshake. `kind` says what is connecting —
/// informational today (servers answer identically), on the wire so a
/// future fleet can rate-limit or prioritize by peer class without a
/// version bump.
struct WireHello {
  enum Kind : std::uint8_t { kClient = 0, kRouter = 1 };
  std::uint8_t kind = kClient;
};

/// kHelloReply: everything a router needs to place work on this backend.
/// `max_inflight` is the server's global in-flight cap (requests beyond it
/// get Busy), `current_inflight` the load at handshake time, `models` the
/// registry contents. A router answering on behalf of a fleet advertises
/// the union of its healthy backends' models and the sum of their
/// capacities, so routers stack.
struct WireHelloReply {
  std::uint8_t protocol_version = kProtocolVersion;
  std::uint8_t draining = 0;
  std::uint32_t max_inflight = 0;
  std::uint32_t current_inflight = 0;
  std::uint32_t workers = 0;  ///< scheduler worker threads (sizing hint)
  std::vector<std::string> models;  ///< <= kMaxHelloModels names
};

// ---- Encoding --------------------------------------------------------------

/// Serializers produce one complete frame (header + payload), ready to
/// write. Encoding never fails: inputs come from our own code, and
/// violations of the wire caps are programmer errors (GNS_CHECK).
///
/// `version` selects the wire layout (and the header byte): servers pass
/// the requester's version so old clients get frames they can parse;
/// tests use it to craft v1 frames. Must be within
/// kMinProtocolVersion..kProtocolVersion.
[[nodiscard]] std::vector<std::uint8_t> encode_rollout_request(
    std::uint64_t request_id, const serve::RolloutRequest& request,
    std::uint8_t version = kProtocolVersion);
[[nodiscard]] std::vector<std::uint8_t> encode_rollout_chunk(
    std::uint64_t request_id, const WireChunk& chunk,
    std::uint8_t version = kProtocolVersion);
[[nodiscard]] std::vector<std::uint8_t> encode_status_reply(
    std::uint64_t request_id, const WireStatus& status,
    std::uint8_t version = kProtocolVersion);
[[nodiscard]] std::vector<std::uint8_t> encode_error_reply(
    std::uint64_t request_id, const WireError& error,
    std::uint8_t version = kProtocolVersion);
/// Stats frames are v2-only (GNS_CHECK on version < 2).
[[nodiscard]] std::vector<std::uint8_t> encode_stats_request(
    std::uint64_t request_id, const WireStatsRequest& request,
    std::uint8_t version = kProtocolVersion);
[[nodiscard]] std::vector<std::uint8_t> encode_stats_reply(
    std::uint64_t request_id, const WireStatsReply& reply,
    std::uint8_t version = kProtocolVersion);
/// Hello frames are v3-only (GNS_CHECK on version < 3).
[[nodiscard]] std::vector<std::uint8_t> encode_hello(
    std::uint64_t request_id, const WireHello& hello,
    std::uint8_t version = kProtocolVersion);
[[nodiscard]] std::vector<std::uint8_t> encode_hello_reply(
    std::uint64_t request_id, const WireHelloReply& reply,
    std::uint8_t version = kProtocolVersion);

// ---- Decoding --------------------------------------------------------------

enum class DecodeStatus {
  Ok,        ///< one frame decoded; consume FrameView::frame_bytes
  NeedMore,  ///< buffer holds a frame prefix; read more bytes
  Error,     ///< typed failure; DecodeError says whether framing survives
};

/// One decoded frame header with a borrowed view of its payload bytes
/// (valid only while the caller's buffer is). payload_len is already
/// bounds-checked against the buffer.
struct FrameView {
  MessageType type = MessageType::ErrorReply;
  std::uint8_t version = kProtocolVersion;  ///< header version byte
  std::uint64_t request_id = 0;
  const std::uint8_t* payload = nullptr;
  std::uint32_t payload_len = 0;
  std::size_t frame_bytes = 0;  ///< header + payload: bytes to consume
};

struct DecodeError {
  NetError code = NetError::Internal;
  std::string message;
  /// Fatal errors lose framing (bad magic, hostile length, unknown
  /// version): the connection must be closed. Non-fatal errors (unknown
  /// type) skip FrameView::frame_bytes and keep the stream.
  bool fatal = true;
  /// For non-fatal errors: bytes to skip to reach the next frame.
  std::size_t skip_bytes = 0;
  /// request_id to echo in an ErrorReply (0 when framing was lost).
  std::uint64_t request_id = 0;
};

/// Validates the frame at the head of [data, data+len). Never reads past
/// `len`, never allocates, never throws.
[[nodiscard]] DecodeStatus try_decode_frame(const std::uint8_t* data,
                                            std::size_t len, FrameView& out,
                                            DecodeError& error);

/// Payload parsers for a successfully framed message. Strict: every count
/// is cross-checked against payload_len, strings are capped, and trailing
/// bytes are rejected. On failure `error` explains and the output is
/// unspecified.
[[nodiscard]] bool decode_rollout_request(const FrameView& frame,
                                          serve::RolloutRequest& out,
                                          std::string& error);
[[nodiscard]] bool decode_rollout_chunk(const FrameView& frame, WireChunk& out,
                                        std::string& error);
[[nodiscard]] bool decode_status_reply(const FrameView& frame, WireStatus& out,
                                       std::string& error);
[[nodiscard]] bool decode_error_reply(const FrameView& frame, WireError& out,
                                      std::string& error);
[[nodiscard]] bool decode_stats_request(const FrameView& frame,
                                        WireStatsRequest& out,
                                        std::string& error);
[[nodiscard]] bool decode_stats_reply(const FrameView& frame,
                                      WireStatsReply& out,
                                      std::string& error);
[[nodiscard]] bool decode_hello(const FrameView& frame, WireHello& out,
                                std::string& error);
[[nodiscard]] bool decode_hello_reply(const FrameView& frame,
                                      WireHelloReply& out,
                                      std::string& error);

}  // namespace gns::net
