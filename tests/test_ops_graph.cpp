// Graph / shape ops: gather, scatter-add, segment softmax, layer norm,
// concat, slice — semantics and gradient checks. These ops carry all
// message passing, so their gradients must be exact. The GNS_SIMD paths
// (AVX2 row kernels + CSR-transpose backward) must additionally be
// bitwise identical to the scalar/serial reference on every index
// pattern — verified here on adversarial patterns.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ad/gradcheck.hpp"
#include "ad/index_map.hpp"
#include "ad/ops.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace gns::ad {
namespace {

Tensor random_tensor(int r, int c, Rng& rng) {
  std::vector<Real> v(static_cast<std::size_t>(r) * c);
  for (auto& x : v) x = rng.uniform(-1.5, 1.5);
  return Tensor::from_vector(r, c, std::move(v));
}

/// Forces GNS_SIMD on/off for a scope, restoring the prior state.
class SimdGuard {
 public:
  explicit SimdGuard(bool on) : prev_(simd::enabled()) {
    simd::set_enabled(on);
  }
  ~SimdGuard() { simd::set_enabled(prev_); }
  SimdGuard(const SimdGuard&) = delete;
  SimdGuard& operator=(const SimdGuard&) = delete;

 private:
  bool prev_;
};

TEST(ConcatCols, ValuesAndShapes) {
  Tensor a = Tensor::from_vector(2, 1, {1, 2});
  Tensor b = Tensor::from_vector(2, 2, {3, 4, 5, 6});
  Tensor c = concat_cols({a, b});
  EXPECT_EQ(c.cols(), 3);
  EXPECT_EQ(c.at(0, 0), 1.0);
  EXPECT_EQ(c.at(0, 2), 4.0);
  EXPECT_EQ(c.at(1, 1), 5.0);
}

TEST(ConcatCols, RowMismatchThrows) {
  EXPECT_THROW(concat_cols({Tensor::zeros(2, 1), Tensor::zeros(3, 1)}),
               CheckError);
}

TEST(SliceCols, ValuesAndBounds) {
  Tensor a = Tensor::from_vector(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor s = slice_cols(a, 1, 2);
  EXPECT_EQ(s.cols(), 2);
  EXPECT_EQ(s.at(1, 0), 5.0);
  EXPECT_THROW(slice_cols(a, 2, 2), CheckError);
}

TEST(GatherRows, ValuesAndRepeats) {
  Tensor a = Tensor::from_vector(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor g = gather_rows(a, {2, 0, 2});
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g.at(0, 0), 5.0);
  EXPECT_EQ(g.at(1, 1), 2.0);
  EXPECT_EQ(g.at(2, 0), 5.0);
  EXPECT_THROW(gather_rows(a, {3}), CheckError);
}

TEST(ScatterAddRows, AccumulatesDuplicates) {
  Tensor a = Tensor::from_vector(3, 2, {1, 1, 2, 2, 3, 3});
  Tensor s = scatter_add_rows(a, {1, 1, 0}, 2);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.at(0, 0), 3.0);
  EXPECT_EQ(s.at(1, 0), 3.0);  // 1 + 2
  EXPECT_THROW(scatter_add_rows(a, {0, 1}, 2), CheckError);
}

TEST(ScatterGather, AreAdjoint) {
  // <scatter(a), b> == <a, gather(b)> for all index maps: the defining
  // property that makes their gradients each other's transpose.
  Rng rng(5);
  const std::vector<int> idx = {0, 2, 2, 1, 0};
  Tensor a = random_tensor(5, 3, rng);
  Tensor b = random_tensor(3, 3, rng);
  Tensor lhs = sum(mul(scatter_add_rows(a, idx, 3), b));
  Tensor rhs = sum(mul(a, gather_rows(b, idx)));
  EXPECT_NEAR(lhs.item(), rhs.item(), 1e-10);
}

TEST(SegmentSoftmax, NormalizesPerSegment) {
  Tensor scores = Tensor::from_vector(4, 1, {1.0, 2.0, 3.0, -1.0});
  const std::vector<int> seg = {0, 0, 1, 1};
  Tensor p = segment_softmax(scores, seg, 2);
  EXPECT_NEAR(p.at(0, 0) + p.at(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(p.at(2, 0) + p.at(3, 0), 1.0, 1e-12);
  EXPECT_GT(p.at(1, 0), p.at(0, 0));
}

TEST(SegmentSoftmax, SingleEdgeSegmentsGetWeightOne) {
  Tensor scores = Tensor::from_vector(2, 1, {5.0, -7.0});
  Tensor p = segment_softmax(scores, {0, 1}, 2);
  EXPECT_NEAR(p.at(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(p.at(1, 0), 1.0, 1e-12);
}

TEST(SegmentSoftmax, StableUnderLargeScores) {
  Tensor scores = Tensor::from_vector(2, 1, {1000.0, 999.0});
  Tensor p = segment_softmax(scores, {0, 0}, 1);
  EXPECT_TRUE(std::isfinite(p.at(0, 0)));
  EXPECT_NEAR(p.at(0, 0) + p.at(1, 0), 1.0, 1e-12);
}

TEST(LayerNorm, NormalizesRows) {
  Rng rng(7);
  Tensor x = random_tensor(4, 6, rng);
  Tensor gamma = Tensor::ones(1, 6);
  Tensor beta = Tensor::zeros(1, 6);
  Tensor y = layer_norm(x, gamma, beta);
  for (int r = 0; r < y.rows(); ++r) {
    double mean = 0.0, var = 0.0;
    for (int c = 0; c < y.cols(); ++c) mean += y.at(r, c);
    mean /= y.cols();
    for (int c = 0; c < y.cols(); ++c) {
      var += (y.at(r, c) - mean) * (y.at(r, c) - mean);
    }
    var /= y.cols();
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-4);
  }
}

TEST(LayerNorm, AffineParamsApply) {
  Tensor x = Tensor::from_vector(1, 2, {-1.0, 1.0});
  Tensor gamma = Tensor::from_vector(1, 2, {2.0, 2.0});
  Tensor beta = Tensor::from_vector(1, 2, {1.0, 1.0});
  Tensor y = layer_norm(x, gamma, beta);
  EXPECT_NEAR(y.at(0, 0), 1.0 - 2.0, 1e-4);
  EXPECT_NEAR(y.at(0, 1), 1.0 + 2.0, 1e-4);
}

// ---------- Gradient checks ----------

TEST(GraphOpsGrad, ConcatAndSlice) {
  Rng rng(11);
  auto result = grad_check(
      [](const std::vector<Tensor>& in) {
        Tensor c = concat_cols({in[0], in[1]});
        return sum(square(slice_cols(c, 1, 2)));
      },
      {random_tensor(3, 2, rng), random_tensor(3, 2, rng)});
  EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
}

TEST(GraphOpsGrad, GatherWithRepeats) {
  Rng rng(13);
  const std::vector<int> idx = {0, 1, 1, 2, 0};
  auto result = grad_check(
      [&idx](const std::vector<Tensor>& in) {
        return sum(square(gather_rows(in[0], idx)));
      },
      {random_tensor(3, 2, rng)});
  EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
}

TEST(GraphOpsGrad, ScatterAdd) {
  Rng rng(17);
  const std::vector<int> idx = {2, 0, 2, 1};
  auto result = grad_check(
      [&idx](const std::vector<Tensor>& in) {
        return sum(square(scatter_add_rows(in[0], idx, 3)));
      },
      {random_tensor(4, 3, rng)});
  EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
}

TEST(GraphOpsGrad, SegmentSoftmax) {
  Rng rng(19);
  const std::vector<int> seg = {0, 0, 0, 1, 1, 2};
  auto result = grad_check(
      [&seg](const std::vector<Tensor>& in) {
        Tensor p = segment_softmax(in[0], seg, 3);
        return sum(mul(p, in[1]));
      },
      {random_tensor(6, 1, rng), random_tensor(6, 1, rng)},
      /*eps=*/1e-6, /*tolerance=*/1e-5);
  EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
}

TEST(GraphOpsGrad, LayerNormAllInputs) {
  Rng rng(23);
  auto result = grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(square(layer_norm(in[0], in[1], in[2])));
      },
      {random_tensor(3, 5, rng), random_tensor(1, 5, rng),
       random_tensor(1, 5, rng)},
      /*eps=*/1e-6, /*tolerance=*/1e-5);
  EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
}

// ---------- IndexMap (CSR transpose) ----------

TEST(IndexMap, StructureGroupsPositionsAscending) {
  const std::vector<int> idx = {2, 0, 2, 1, 0, 2};
  IndexMap map(idx, 3);
  EXPECT_TRUE(map.defined());
  EXPECT_EQ(map.size(), 6);
  EXPECT_EQ(map.num_buckets(), 3);
  const std::vector<int> want_offsets = {0, 2, 3, 6};
  EXPECT_EQ(std::vector<int>(map.offsets(), map.offsets() + 4),
            want_offsets);
  // Positions grouped by bucket, ascending within each bucket — the
  // property the fixed-accumulation-order backward relies on.
  const std::vector<int> want_positions = {1, 4, 3, 0, 2, 5};
  EXPECT_EQ(std::vector<int>(map.positions(), map.positions() + 6),
            want_positions);
}

TEST(IndexMap, ValidatesAtConstruction) {
  EXPECT_THROW(IndexMap({0, 3}, 3), CheckError);
  EXPECT_THROW(IndexMap({-1}, 3), CheckError);
  EXPECT_NO_THROW(IndexMap({}, 3));
  EXPECT_FALSE(IndexMap().defined());
}

TEST(IndexMap, OpsAcceptPrebuiltMap) {
  Rng rng(31);
  Tensor a = random_tensor(4, 3, rng);
  const std::vector<int> idx = {3, 0, 3, 1};
  const IndexMap map(idx, 4);
  Tensor g1 = gather_rows(a, idx);
  Tensor g2 = gather_rows(a, map);
  EXPECT_EQ(g1.vec(), g2.vec());
  Tensor e = random_tensor(4, 3, rng);
  Tensor s1 = scatter_add_rows(e, idx, 4);
  Tensor s2 = scatter_add_rows(e, map);
  EXPECT_EQ(s1.vec(), s2.vec());
  // A map sized for a different tensor is rejected.
  EXPECT_THROW(gather_rows(random_tensor(5, 3, rng), map), CheckError);
}

// ---------- SIMD vs scalar bitwise equivalence ----------

/// Adversarial index patterns for n entries into b buckets: uniform
/// random, all-duplicates, sorted, reversed, and duplicate-heavy (hot
/// buckets) — the cases where a reordered reduction would diverge.
std::vector<std::vector<int>> index_patterns(int n, int b, Rng& rng) {
  std::vector<std::vector<int>> patterns;
  std::vector<int> uniform(n);
  for (auto& i : uniform) i = static_cast<int>(rng.uniform_index(b));
  patterns.push_back(uniform);
  patterns.emplace_back(n, b / 2);  // every entry hits one bucket
  std::vector<int> sorted(n);
  for (int i = 0; i < n; ++i) sorted[i] = (i * b) / n;
  patterns.push_back(sorted);
  std::vector<int> reversed = sorted;
  std::reverse(reversed.begin(), reversed.end());
  patterns.push_back(reversed);
  std::vector<int> hot(n);
  for (int i = 0; i < n; ++i)
    hot[i] = (i % 3 == 0) ? static_cast<int>(rng.uniform_index(b)) : 0;
  patterns.push_back(hot);
  return patterns;
}

/// Runs `fn` with GNS_SIMD off then on and expects bitwise-equal results.
template <typename Fn>
void expect_bitwise_equal_modes(Fn&& fn) {
  std::vector<Real> ref, got;
  {
    SimdGuard off(false);
    ref = fn();
  }
  {
    SimdGuard on(true);
    got = fn();
  }
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(ref[i], got[i]) << "bitwise divergence at flat index " << i;
}

TEST(SimdBitwise, GatherForwardAndBackward) {
  Rng rng(37);
  // Odd column counts exercise the vector-kernel tails.
  for (const int cols : {1, 3, 8, 17}) {
    Tensor a = random_tensor(23, cols, rng);
    for (const auto& idx : index_patterns(57, 23, rng)) {
      expect_bitwise_equal_modes([&] {
        Tensor x = Tensor::from_vector(a.rows(), a.cols(), a.vec(), true);
        Tensor g = gather_rows(x, idx);
        Tensor loss = sum(square(g));
        loss.backward();
        std::vector<Real> out = g.vec();
        out.insert(out.end(), x.grad().begin(), x.grad().end());
        return out;
      });
    }
  }
}

TEST(SimdBitwise, ScatterAddForwardAndBackward) {
  Rng rng(41);
  for (const int cols : {1, 5, 16, 19}) {
    Tensor a = random_tensor(57, cols, rng);
    for (const auto& idx : index_patterns(57, 23, rng)) {
      expect_bitwise_equal_modes([&] {
        Tensor x = Tensor::from_vector(a.rows(), a.cols(), a.vec(), true);
        Tensor s = scatter_add_rows(x, idx, 23);
        Tensor loss = sum(square(s));
        loss.backward();
        std::vector<Real> out = s.vec();
        out.insert(out.end(), x.grad().begin(), x.grad().end());
        return out;
      });
    }
  }
}

TEST(SimdBitwise, SegmentSoftmaxForwardAndBackward) {
  Rng rng(43);
  for (const auto& idx : index_patterns(57, 23, rng)) {
    expect_bitwise_equal_modes([&] {
      Rng local(91);
      std::vector<Real> sv(57);
      for (auto& v : sv) v = local.uniform(-3.0, 3.0);
      Tensor x = Tensor::from_vector(57, 1, sv, true);
      Tensor p = segment_softmax(x, idx, 23);
      Tensor loss = sum(square(p));
      loss.backward();
      std::vector<Real> out = p.vec();
      out.insert(out.end(), x.grad().begin(), x.grad().end());
      return out;
    });
  }
}

TEST(SimdBitwise, LayerNormAndConcat) {
  Rng rng(47);
  for (const int cols : {2, 7, 12, 33}) {
    Tensor x = random_tensor(9, cols, rng);
    Tensor gamma = random_tensor(1, cols, rng);
    Tensor beta = random_tensor(1, cols, rng);
    expect_bitwise_equal_modes(
        [&] { return layer_norm(x, gamma, beta).vec(); });
    Tensor b = random_tensor(9, cols + 1, rng);
    expect_bitwise_equal_modes([&] {
      Tensor xa = Tensor::from_vector(x.rows(), x.cols(), x.vec(), true);
      Tensor c = concat_cols({xa, b, xa});
      Tensor loss = sum(square(c));
      loss.backward();
      std::vector<Real> out = c.vec();
      out.insert(out.end(), xa.grad().begin(), xa.grad().end());
      return out;
    });
  }
}

// ---------- Gradchecks through the CSR (simd-enabled) backward ----------

TEST(GraphOpsGrad, GatherCsrBackwardDuplicateHeavy) {
  SimdGuard on(true);
  Rng rng(53);
  const std::vector<int> idx = {0, 2, 2, 2, 1, 2, 0, 2};
  auto result = grad_check(
      [&idx](const std::vector<Tensor>& in) {
        return sum(square(gather_rows(in[0], idx)));
      },
      {random_tensor(3, 4, rng)});
  EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
}

TEST(GraphOpsGrad, ScatterCsrForwardGradcheck) {
  SimdGuard on(true);
  Rng rng(59);
  const std::vector<int> idx = {1, 1, 1, 0, 2, 1};
  auto result = grad_check(
      [&idx](const std::vector<Tensor>& in) {
        return sum(square(scatter_add_rows(in[0], idx, 3)));
      },
      {random_tensor(6, 3, rng)});
  EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
}

// ---------- Fused radius_edge_features ----------

/// The exact op chain radius_edge_features replaces; kept here as the
/// bitwise reference.
Tensor edge_features_reference(const Tensor& positions,
                               const std::vector<int>& senders,
                               const std::vector<int>& receivers,
                               Real inv_radius) {
  Tensor xs = gather_rows(positions, senders);
  Tensor xr = gather_rows(positions, receivers);
  Tensor disp = mul_scalar(sub(xr, xs), inv_radius);
  Tensor dist = sqrt_op(add_scalar(sum_cols(square(disp)), Real(1e-12)));
  return concat_cols({disp, dist});
}

TEST(RadiusEdgeFeatures, BitwiseMatchesOpChain) {
  Rng rng(61);
  for (const bool simd_on : {false, true}) {
    SimdGuard guard(simd_on);
    Tensor pos = random_tensor(11, 2, rng);
    std::vector<int> senders(29), receivers(29);
    for (auto& s : senders) s = static_cast<int>(rng.uniform_index(11));
    for (auto& r : receivers) r = static_cast<int>(rng.uniform_index(11));
    const IndexMap smap(senders, 11);
    const IndexMap rmap(receivers, 11);
    const Real inv_r = Real(1.0) / Real(0.13);
    Tensor fused = radius_edge_features(pos, smap, rmap, inv_r);
    Tensor ref = edge_features_reference(pos, senders, receivers, inv_r);
    EXPECT_EQ(fused.vec(), ref.vec());
  }
}

TEST(RadiusEdgeFeatures, CoincidentParticlesFiniteGradient) {
  // Two particles at the same position: the 1e-12 epsilon keeps the
  // sqrt gradient finite instead of dividing by zero.
  Tensor pos = Tensor::from_vector(2, 2, {0.5, 0.5, 0.5, 0.5}, true);
  const IndexMap smap({0, 1}, 2);
  const IndexMap rmap({1, 0}, 2);
  Tensor f = radius_edge_features(pos, smap, rmap, Real(10.0));
  Tensor loss = sum(f);
  loss.backward();
  for (const Real g : pos.grad()) EXPECT_TRUE(std::isfinite(g));
}

TEST(GraphOpsGrad, RadiusEdgeFeatures) {
  Rng rng(67);
  for (const bool simd_on : {false, true}) {
    SimdGuard guard(simd_on);
    std::vector<int> senders = {0, 1, 2, 2, 3, 0};
    std::vector<int> receivers = {1, 0, 3, 1, 2, 2};
    const IndexMap smap(senders, 4);
    const IndexMap rmap(receivers, 4);
    auto result = grad_check(
        [&](const std::vector<Tensor>& in) {
          return sum(
              square(radius_edge_features(in[0], smap, rmap, Real(5.0))));
        },
        {random_tensor(4, 2, rng)},
        /*eps=*/1e-6, /*tolerance=*/1e-5);
    EXPECT_TRUE(result.ok) << "simd=" << simd_on
                           << " rel=" << result.max_rel_error;
  }
}

TEST(GraphOpsGrad, MessagePassingComposite) {
  // One full interaction-network block: the integration test for the
  // gradient path every GNS layer uses.
  Rng rng(29);
  const std::vector<int> senders = {0, 1, 2, 2, 3};
  const std::vector<int> receivers = {1, 0, 1, 3, 2};
  auto result = grad_check(
      [&](const std::vector<Tensor>& in) {
        const Tensor& nodes = in[0];
        const Tensor& edges = in[1];
        Tensor vs = gather_rows(nodes, senders);
        Tensor vr = gather_rows(nodes, receivers);
        Tensor msg = tanh_op(concat_cols({edges, vs, vr}));
        Tensor score = sum_cols(msg);
        Tensor alpha = segment_softmax(score, receivers, 4);
        Tensor agg = scatter_add_rows(mul(msg, alpha), receivers, 4);
        return mean(square(agg));
      },
      {random_tensor(4, 3, rng), random_tensor(5, 2, rng)},
      /*eps=*/1e-6, /*tolerance=*/1e-5);
  EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
}

}  // namespace
}  // namespace gns::ad
