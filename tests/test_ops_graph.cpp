// Graph / shape ops: gather, scatter-add, segment softmax, layer norm,
// concat, slice — semantics and gradient checks. These ops carry all
// message passing, so their gradients must be exact.

#include <gtest/gtest.h>

#include <cmath>

#include "ad/gradcheck.hpp"
#include "ad/ops.hpp"
#include "util/rng.hpp"

namespace gns::ad {
namespace {

Tensor random_tensor(int r, int c, Rng& rng) {
  std::vector<Real> v(static_cast<std::size_t>(r) * c);
  for (auto& x : v) x = rng.uniform(-1.5, 1.5);
  return Tensor::from_vector(r, c, std::move(v));
}

TEST(ConcatCols, ValuesAndShapes) {
  Tensor a = Tensor::from_vector(2, 1, {1, 2});
  Tensor b = Tensor::from_vector(2, 2, {3, 4, 5, 6});
  Tensor c = concat_cols({a, b});
  EXPECT_EQ(c.cols(), 3);
  EXPECT_EQ(c.at(0, 0), 1.0);
  EXPECT_EQ(c.at(0, 2), 4.0);
  EXPECT_EQ(c.at(1, 1), 5.0);
}

TEST(ConcatCols, RowMismatchThrows) {
  EXPECT_THROW(concat_cols({Tensor::zeros(2, 1), Tensor::zeros(3, 1)}),
               CheckError);
}

TEST(SliceCols, ValuesAndBounds) {
  Tensor a = Tensor::from_vector(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor s = slice_cols(a, 1, 2);
  EXPECT_EQ(s.cols(), 2);
  EXPECT_EQ(s.at(1, 0), 5.0);
  EXPECT_THROW(slice_cols(a, 2, 2), CheckError);
}

TEST(GatherRows, ValuesAndRepeats) {
  Tensor a = Tensor::from_vector(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor g = gather_rows(a, {2, 0, 2});
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g.at(0, 0), 5.0);
  EXPECT_EQ(g.at(1, 1), 2.0);
  EXPECT_EQ(g.at(2, 0), 5.0);
  EXPECT_THROW(gather_rows(a, {3}), CheckError);
}

TEST(ScatterAddRows, AccumulatesDuplicates) {
  Tensor a = Tensor::from_vector(3, 2, {1, 1, 2, 2, 3, 3});
  Tensor s = scatter_add_rows(a, {1, 1, 0}, 2);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.at(0, 0), 3.0);
  EXPECT_EQ(s.at(1, 0), 3.0);  // 1 + 2
  EXPECT_THROW(scatter_add_rows(a, {0, 1}, 2), CheckError);
}

TEST(ScatterGather, AreAdjoint) {
  // <scatter(a), b> == <a, gather(b)> for all index maps: the defining
  // property that makes their gradients each other's transpose.
  Rng rng(5);
  const std::vector<int> idx = {0, 2, 2, 1, 0};
  Tensor a = random_tensor(5, 3, rng);
  Tensor b = random_tensor(3, 3, rng);
  Tensor lhs = sum(mul(scatter_add_rows(a, idx, 3), b));
  Tensor rhs = sum(mul(a, gather_rows(b, idx)));
  EXPECT_NEAR(lhs.item(), rhs.item(), 1e-10);
}

TEST(SegmentSoftmax, NormalizesPerSegment) {
  Tensor scores = Tensor::from_vector(4, 1, {1.0, 2.0, 3.0, -1.0});
  const std::vector<int> seg = {0, 0, 1, 1};
  Tensor p = segment_softmax(scores, seg, 2);
  EXPECT_NEAR(p.at(0, 0) + p.at(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(p.at(2, 0) + p.at(3, 0), 1.0, 1e-12);
  EXPECT_GT(p.at(1, 0), p.at(0, 0));
}

TEST(SegmentSoftmax, SingleEdgeSegmentsGetWeightOne) {
  Tensor scores = Tensor::from_vector(2, 1, {5.0, -7.0});
  Tensor p = segment_softmax(scores, {0, 1}, 2);
  EXPECT_NEAR(p.at(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(p.at(1, 0), 1.0, 1e-12);
}

TEST(SegmentSoftmax, StableUnderLargeScores) {
  Tensor scores = Tensor::from_vector(2, 1, {1000.0, 999.0});
  Tensor p = segment_softmax(scores, {0, 0}, 1);
  EXPECT_TRUE(std::isfinite(p.at(0, 0)));
  EXPECT_NEAR(p.at(0, 0) + p.at(1, 0), 1.0, 1e-12);
}

TEST(LayerNorm, NormalizesRows) {
  Rng rng(7);
  Tensor x = random_tensor(4, 6, rng);
  Tensor gamma = Tensor::ones(1, 6);
  Tensor beta = Tensor::zeros(1, 6);
  Tensor y = layer_norm(x, gamma, beta);
  for (int r = 0; r < y.rows(); ++r) {
    double mean = 0.0, var = 0.0;
    for (int c = 0; c < y.cols(); ++c) mean += y.at(r, c);
    mean /= y.cols();
    for (int c = 0; c < y.cols(); ++c) {
      var += (y.at(r, c) - mean) * (y.at(r, c) - mean);
    }
    var /= y.cols();
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-4);
  }
}

TEST(LayerNorm, AffineParamsApply) {
  Tensor x = Tensor::from_vector(1, 2, {-1.0, 1.0});
  Tensor gamma = Tensor::from_vector(1, 2, {2.0, 2.0});
  Tensor beta = Tensor::from_vector(1, 2, {1.0, 1.0});
  Tensor y = layer_norm(x, gamma, beta);
  EXPECT_NEAR(y.at(0, 0), 1.0 - 2.0, 1e-4);
  EXPECT_NEAR(y.at(0, 1), 1.0 + 2.0, 1e-4);
}

// ---------- Gradient checks ----------

TEST(GraphOpsGrad, ConcatAndSlice) {
  Rng rng(11);
  auto result = grad_check(
      [](const std::vector<Tensor>& in) {
        Tensor c = concat_cols({in[0], in[1]});
        return sum(square(slice_cols(c, 1, 2)));
      },
      {random_tensor(3, 2, rng), random_tensor(3, 2, rng)});
  EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
}

TEST(GraphOpsGrad, GatherWithRepeats) {
  Rng rng(13);
  const std::vector<int> idx = {0, 1, 1, 2, 0};
  auto result = grad_check(
      [&idx](const std::vector<Tensor>& in) {
        return sum(square(gather_rows(in[0], idx)));
      },
      {random_tensor(3, 2, rng)});
  EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
}

TEST(GraphOpsGrad, ScatterAdd) {
  Rng rng(17);
  const std::vector<int> idx = {2, 0, 2, 1};
  auto result = grad_check(
      [&idx](const std::vector<Tensor>& in) {
        return sum(square(scatter_add_rows(in[0], idx, 3)));
      },
      {random_tensor(4, 3, rng)});
  EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
}

TEST(GraphOpsGrad, SegmentSoftmax) {
  Rng rng(19);
  const std::vector<int> seg = {0, 0, 0, 1, 1, 2};
  auto result = grad_check(
      [&seg](const std::vector<Tensor>& in) {
        Tensor p = segment_softmax(in[0], seg, 3);
        return sum(mul(p, in[1]));
      },
      {random_tensor(6, 1, rng), random_tensor(6, 1, rng)},
      /*eps=*/1e-6, /*tolerance=*/1e-5);
  EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
}

TEST(GraphOpsGrad, LayerNormAllInputs) {
  Rng rng(23);
  auto result = grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(square(layer_norm(in[0], in[1], in[2])));
      },
      {random_tensor(3, 5, rng), random_tensor(1, 5, rng),
       random_tensor(1, 5, rng)},
      /*eps=*/1e-6, /*tolerance=*/1e-5);
  EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
}

TEST(GraphOpsGrad, MessagePassingComposite) {
  // One full interaction-network block: the integration test for the
  // gradient path every GNS layer uses.
  Rng rng(29);
  const std::vector<int> senders = {0, 1, 2, 2, 3};
  const std::vector<int> receivers = {1, 0, 1, 3, 2};
  auto result = grad_check(
      [&](const std::vector<Tensor>& in) {
        const Tensor& nodes = in[0];
        const Tensor& edges = in[1];
        Tensor vs = gather_rows(nodes, senders);
        Tensor vr = gather_rows(nodes, receivers);
        Tensor msg = tanh_op(concat_cols({edges, vs, vr}));
        Tensor score = sum_cols(msg);
        Tensor alpha = segment_softmax(score, receivers, 4);
        Tensor agg = scatter_add_rows(mul(msg, alpha), receivers, 4);
        return mean(square(agg));
      },
      {random_tensor(4, 3, rng), random_tensor(5, 2, rng)},
      /*eps=*/1e-6, /*tolerance=*/1e-5);
  EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
}

}  // namespace
}  // namespace gns::ad
