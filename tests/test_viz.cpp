// In-situ visualization: image semantics, PPM output, colormaps, and the
// particle/field renderers' geometric conventions.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "viz/render.hpp"

namespace gns::viz {
namespace {

TEST(Image, ConstructionAndPixels) {
  Image img(4, 3, Rgb{1, 2, 3});
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.get(0, 0).r, 1);
  img.set(2, 1, Rgb{9, 8, 7});
  EXPECT_EQ(img.get(2, 1).g, 8);
}

TEST(Image, ClippedSetIgnoresOutOfBounds) {
  Image img(2, 2);
  img.set_clipped(-1, 0, Rgb{0, 0, 0});
  img.set_clipped(5, 5, Rgb{0, 0, 0});
  SUCCEED();
}

TEST(Image, DiscCoversCenter) {
  Image img(11, 11);
  img.disc(5, 5, 2, Rgb{0, 0, 0});
  EXPECT_EQ(img.get(5, 5).r, 0);
  EXPECT_EQ(img.get(7, 5).r, 0);
  EXPECT_EQ(img.get(8, 5).r, 255);  // outside radius
}

TEST(Image, InvalidSizeThrows) {
  EXPECT_THROW(Image(0, 4), CheckError);
}

class PpmTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = "test_viz.ppm";
};

TEST_F(PpmTest, WritesValidHeaderAndPayload) {
  Image img(5, 4, Rgb{10, 20, 30});
  img.save_ppm(path_);
  std::ifstream in(path_, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 5);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(maxval, 255);
  in.get();  // the single whitespace after the header
  std::vector<char> payload(5 * 4 * 3);
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  EXPECT_TRUE(in.good());
  EXPECT_EQ(static_cast<unsigned char>(payload[0]), 10);
  EXPECT_EQ(static_cast<unsigned char>(payload[2]), 30);
}

TEST(Colormap, ViridisEndpointsAndMonotoneRed) {
  const Rgb lo = colormap_viridis(0.0);
  const Rgb hi = colormap_viridis(1.0);
  // viridis runs dark-purple -> yellow: red and green rise strongly.
  EXPECT_LT(lo.r, hi.r);
  EXPECT_LT(lo.g, hi.g);
  EXPECT_GT(lo.b, hi.b);
}

TEST(Colormap, ViridisClampsOutOfRange) {
  const Rgb below = colormap_viridis(-5.0);
  const Rgb at0 = colormap_viridis(0.0);
  EXPECT_EQ(below.r, at0.r);
  EXPECT_EQ(below.g, at0.g);
}

TEST(Colormap, DivergingIsWhiteAtZero) {
  const Rgb mid = colormap_diverging(0.0);
  EXPECT_EQ(mid.r, 255);
  EXPECT_EQ(mid.g, 255);
  EXPECT_EQ(mid.b, 255);
  EXPECT_EQ(colormap_diverging(1.0).r, 255);   // red side keeps full red
  EXPECT_EQ(colormap_diverging(-1.0).b, 255);  // blue side keeps full blue
  EXPECT_LT(colormap_diverging(1.0).b, 100);
  EXPECT_LT(colormap_diverging(-1.0).r, 100);
}

TEST(Render, ParticlesLandWhereExpected) {
  // One particle at the world center must paint the image center; one at
  // the lower-left corner must paint the bottom-left (y-flip convention).
  ViewBox view{0.0, 0.0, 1.0, 1.0};
  ParticleStyle style;
  style.image_width = 101;
  style.particle_radius = 0;
  style.background = {255, 255, 255};
  std::vector<double> frame = {0.5, 0.5, 0.0, 0.0};
  Image img = render_particles(frame, view, style);
  EXPECT_EQ(img.height(), 101);
  EXPECT_NE(img.get(50, 50).r, 255);           // center painted
  EXPECT_NE(img.get(0, 100).r, 255);           // lower-left -> bottom row
  EXPECT_EQ(img.get(100, 0).r, 255);           // upper-right untouched
}

TEST(Render, AspectRatioFollowsView) {
  ViewBox view{0.0, 0.0, 2.0, 0.5};
  ParticleStyle style;
  style.image_width = 400;
  std::vector<double> frame = {1.0, 0.25};
  Image img = render_particles(frame, view, style);
  EXPECT_EQ(img.width(), 400);
  EXPECT_EQ(img.height(), 100);
}

TEST(Render, SpeedColoringUsesPrevFrame) {
  ViewBox view{0.0, 0.0, 1.0, 1.0};
  ParticleStyle style;
  style.image_width = 64;
  style.particle_radius = 0;
  std::vector<double> now = {0.25, 0.5, 0.75, 0.5};
  std::vector<double> before = {0.25, 0.5, 0.70, 0.5};  // second one moved
  Image img = render_particles(now, view, style, &before);
  // Fast particle (max speed) gets the viridis top color; slow one the
  // bottom — they must differ.
  const Rgb slow = img.get(16, 32);  // px=round(0.25*63), py=round(31.5)
  const Rgb fast = img.get(47, 32);
  EXPECT_TRUE(slow.r != fast.r || slow.g != fast.g || slow.b != fast.b);
}

TEST(Render, ComparisonConcatenatesWithSeparator) {
  ViewBox view{0.0, 0.0, 1.0, 1.0};
  ParticleStyle style;
  style.image_width = 50;
  std::vector<double> a = {0.5, 0.5};
  Image img = render_comparison(a, a, view, style);
  EXPECT_EQ(img.width(), 50 + 3 + 50);
  // Separator column is dark.
  EXPECT_LT(img.get(51, 10).r, 100);
}

TEST(Render, ScalarFieldFlipsVertically) {
  // Field row 0 (bottom of the domain) must appear at the image bottom.
  std::vector<double> field = {1.0, 1.0,   // bottom row: +
                               -1.0, -1.0};  // top row: -
  Image img = render_scalar_field(field, 2, 2, 1.0, 2);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 4);
  EXPECT_GT(img.get(0, 3).r, img.get(0, 3).b);  // bottom = red (+)
  EXPECT_GT(img.get(0, 0).b, img.get(0, 0).r);  // top = blue (-)
}

TEST(Render, ScalarFieldAutoScale) {
  std::vector<double> field = {0.0, 5.0, -5.0, 0.0};
  Image img = render_scalar_field(field, 2, 2, 0.0, 1);
  // The +5 cell maps to the extreme red of the diverging map.
  EXPECT_EQ(img.get(1, 1).r, 255);
  EXPECT_LT(img.get(1, 1).b, 100);
}

TEST(Render, FieldSizeMismatchThrows) {
  std::vector<double> field(5, 0.0);
  EXPECT_THROW(render_scalar_field(field, 2, 2), CheckError);
}

}  // namespace
}  // namespace gns::viz
