// Trajectory store + rollout cache: append/read roundtrips, crash/corruption
// degradation (bit flips, truncation -> miss, never a crash), restart
// recovery, LRU byte budgets, prefix semantics, and single-flight dedup.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "store/store.hpp"
#include "util/hash.hpp"

namespace gns::store {
namespace {

namespace fs = std::filesystem;

/// Deterministic frames: steps x frame_len doubles, value a function of
/// (seed, step, column) so different records never collide bitwise.
Frames make_frames(int steps, int frame_len, double seed) {
  Frames frames;
  frames.reserve(static_cast<std::size_t>(steps));
  for (int s = 0; s < steps; ++s) {
    std::vector<double> f(static_cast<std::size_t>(frame_len));
    for (int c = 0; c < frame_len; ++c)
      f[static_cast<std::size_t>(c)] = seed + 1000.0 * s + c * 0.125;
    frames.push_back(std::move(f));
  }
  return frames;
}

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "test_store_dir_" +
           std::string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] fs::path data_path() const {
    return fs::path(dir_) / "trajectories.dat";
  }
  [[nodiscard]] fs::path index_path() const {
    return fs::path(dir_) / "trajectories.idx";
  }

  /// XORs one byte of a file in place.
  static void flip_byte(const fs::path& path, std::uint64_t offset) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
  }

  std::string dir_;
};

TEST_F(StoreTest, AppendReadRoundtripIsBitwise) {
  TrajectoryStore store(dir_);
  const Frames frames = make_frames(7, 12, 3.0);
  RecordMeta meta;
  ASSERT_TRUE(store.append(0xabcdef, frames, meta));
  EXPECT_EQ(meta.key, 0xabcdefu);
  EXPECT_EQ(meta.steps, 7u);
  EXPECT_EQ(meta.frame_len, 12u);

  Frames out;
  ASSERT_TRUE(store.read(meta, 7, out));
  EXPECT_EQ(out, frames);  // operator== on doubles: bitwise for our values

  // Prefix read: first 3 frames, exactly.
  Frames prefix;
  ASSERT_TRUE(store.read(meta, 3, prefix));
  ASSERT_EQ(prefix.size(), 3u);
  for (int s = 0; s < 3; ++s)
    EXPECT_EQ(prefix[static_cast<std::size_t>(s)],
              frames[static_cast<std::size_t>(s)]);
}

TEST_F(StoreTest, ReopenRecoversCatalogAndData) {
  const Frames a = make_frames(4, 6, 1.0);
  const Frames b = make_frames(9, 6, 2.0);
  {
    TrajectoryStore store(dir_);
    RecordMeta meta;
    ASSERT_TRUE(store.append(1, a, meta));
    ASSERT_TRUE(store.append(2, b, meta));
  }
  TrajectoryStore reopened(dir_);
  ASSERT_EQ(reopened.catalog().size(), 2u);
  Frames out;
  ASSERT_TRUE(reopened.read(reopened.catalog()[0], 4, out));
  EXPECT_EQ(out, a);
  ASSERT_TRUE(reopened.read(reopened.catalog()[1], 9, out));
  EXPECT_EQ(out, b);
}

TEST_F(StoreTest, BitFlippedPayloadFailsReadNotCrash) {
  RecordMeta meta;
  {
    TrajectoryStore store(dir_);
    ASSERT_TRUE(store.append(7, make_frames(5, 8, 4.0), meta));
  }
  // Flip one byte in the middle of the payload (past the 32-byte header).
  flip_byte(data_path(), meta.offset + 32 + 17);
  TrajectoryStore reopened(dir_);
  ASSERT_EQ(reopened.catalog().size(), 1u);  // index is intact
  Frames out;
  EXPECT_FALSE(reopened.read(reopened.catalog()[0], 5, out));
}

TEST_F(StoreTest, TruncatedDataFileDegradesToSkippedRecord) {
  {
    TrajectoryStore store(dir_);
    RecordMeta meta;
    ASSERT_TRUE(store.append(1, make_frames(3, 4, 1.0), meta));
    ASSERT_TRUE(store.append(2, make_frames(3, 4, 2.0), meta));
  }
  // Chop the data file mid-way through the second record: its index entry
  // now points past EOF and must be skipped at open.
  const std::uint64_t full = fs::file_size(data_path());
  fs::resize_file(data_path(), full - 20);
  TrajectoryStore reopened(dir_);
  ASSERT_EQ(reopened.catalog().size(), 1u);
  EXPECT_EQ(reopened.catalog()[0].key, 1u);
  Frames out;
  EXPECT_TRUE(reopened.read(reopened.catalog()[0], 3, out));
}

TEST_F(StoreTest, CorruptIndexEntryIsSkippedOthersSurvive) {
  {
    TrajectoryStore store(dir_);
    RecordMeta meta;
    ASSERT_TRUE(store.append(1, make_frames(2, 4, 1.0), meta));
    ASSERT_TRUE(store.append(2, make_frames(2, 4, 2.0), meta));
  }
  flip_byte(index_path(), 8);  // first entry's offset field
  TrajectoryStore reopened(dir_);
  ASSERT_EQ(reopened.catalog().size(), 1u);
  EXPECT_EQ(reopened.catalog()[0].key, 2u);
}

TEST_F(StoreTest, TornIndexTailIsIgnored) {
  {
    TrajectoryStore store(dir_);
    RecordMeta meta;
    ASSERT_TRUE(store.append(1, make_frames(2, 4, 1.0), meta));
  }
  // Simulate a crash between index write and fsync: a half-written entry.
  std::ofstream idx(index_path(), std::ios::app | std::ios::binary);
  const char garbage[13] = "torn-garbage";
  idx.write(garbage, sizeof(garbage));
  idx.close();
  TrajectoryStore reopened(dir_);
  ASSERT_EQ(reopened.catalog().size(), 1u);
}

TEST_F(StoreTest, CachePrefixHitsAndLongerRolloutSupersedes) {
  CacheConfig cfg;
  cfg.dir = dir_;
  cfg.metrics_prefix = "test_store_prefixcache";
  RolloutCache cache(cfg);
  const Frames eight = make_frames(8, 6, 5.0);
  ASSERT_TRUE(cache.insert(11, eight));

  Frames out;
  ASSERT_TRUE(cache.lookup(11, 5, out));  // prefix hit
  ASSERT_EQ(out.size(), 5u);
  for (int s = 0; s < 5; ++s)
    EXPECT_EQ(out[static_cast<std::size_t>(s)],
              eight[static_cast<std::size_t>(s)]);

  EXPECT_FALSE(cache.lookup(11, 9, out));       // longer than stored: miss
  EXPECT_FALSE(cache.insert(11, make_frames(4, 6, 9.0)));  // shorter: skip

  const Frames twelve = make_frames(12, 6, 5.0);
  ASSERT_TRUE(cache.insert(11, twelve));  // longer supersedes
  ASSERT_TRUE(cache.lookup(11, 10, out));
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out[9], twelve[9]);
  EXPECT_EQ(cache.resident_entries(), 1u);
}

TEST_F(StoreTest, CacheLruEvictionRespectsByteBudget) {
  CacheConfig cfg;
  cfg.dir = dir_;
  cfg.metrics_prefix = "test_store_lrucache";
  // One record is 4 frames x 8 doubles x 8 bytes = 256 bytes; budget fits
  // exactly two records.
  cfg.byte_budget = 512;
  RolloutCache cache(cfg);
  ASSERT_TRUE(cache.insert(1, make_frames(4, 8, 1.0)));
  ASSERT_TRUE(cache.insert(2, make_frames(4, 8, 2.0)));
  EXPECT_EQ(cache.resident_entries(), 2u);
  ASSERT_TRUE(cache.insert(3, make_frames(4, 8, 3.0)));  // evicts key 1
  EXPECT_EQ(cache.resident_entries(), 2u);
  EXPECT_LE(cache.resident_bytes(), 512u);

  Frames out;
  EXPECT_FALSE(cache.lookup(1, 4, out));  // evicted
  EXPECT_TRUE(cache.lookup(3, 4, out));
  EXPECT_TRUE(cache.lookup(2, 4, out));  // 2 is now MRU, 3 is LRU

  // Insert another: 3 is the LRU victim, the freshly-touched 2 survives.
  ASSERT_TRUE(cache.insert(4, make_frames(4, 8, 4.0)));
  EXPECT_TRUE(cache.lookup(2, 4, out));
  EXPECT_FALSE(cache.lookup(3, 4, out));
}

TEST_F(StoreTest, CacheNewestEntryStaysEvenWhenAloneOverBudget) {
  CacheConfig cfg;
  cfg.dir = dir_;
  cfg.metrics_prefix = "test_store_bigcache";
  cfg.byte_budget = 64;  // smaller than any record below
  RolloutCache cache(cfg);
  ASSERT_TRUE(cache.insert(1, make_frames(4, 8, 1.0)));
  EXPECT_EQ(cache.resident_entries(), 1u);  // kept despite the budget
  Frames out;
  EXPECT_TRUE(cache.lookup(1, 4, out));
  ASSERT_TRUE(cache.insert(2, make_frames(4, 8, 2.0)));
  EXPECT_EQ(cache.resident_entries(), 1u);  // 1 evicted, 2 kept
  EXPECT_FALSE(cache.lookup(1, 4, out));
  EXPECT_TRUE(cache.lookup(2, 4, out));
}

TEST_F(StoreTest, CacheSurvivesRestartBitwise) {
  const Frames frames = make_frames(6, 10, 7.0);
  {
    CacheConfig cfg;
    cfg.dir = dir_;
    cfg.metrics_prefix = "test_store_restart_a";
    RolloutCache cache(cfg);
    ASSERT_TRUE(cache.insert(42, frames));
  }
  CacheConfig cfg;
  cfg.dir = dir_;
  cfg.metrics_prefix = "test_store_restart_b";
  RolloutCache cache(cfg);
  EXPECT_EQ(cache.resident_entries(), 1u);
  Frames out;
  ASSERT_TRUE(cache.lookup(42, 6, out));
  EXPECT_EQ(out, frames);
}

TEST_F(StoreTest, CacheDropsCorruptRecordAsMiss) {
  RecordMeta meta;
  {
    CacheConfig cfg;
    cfg.dir = dir_;
    cfg.metrics_prefix = "test_store_corrupt_a";
    RolloutCache cache(cfg);
    ASSERT_TRUE(cache.insert(5, make_frames(3, 4, 1.5)));
    meta = cache.trajectory_store().catalog()[0];
  }
  flip_byte(data_path(), meta.offset + 32 + 3);
  CacheConfig cfg;
  cfg.dir = dir_;
  cfg.metrics_prefix = "test_store_corrupt_b";
  RolloutCache cache(cfg);
  EXPECT_EQ(cache.resident_entries(), 1u);  // index valid, payload is not
  Frames out;
  EXPECT_FALSE(cache.lookup(5, 3, out));    // checksum fails -> miss
  EXPECT_EQ(cache.resident_entries(), 0u);  // and the entry is dropped
  EXPECT_FALSE(cache.lookup(5, 3, out));    // stays a plain miss
}

TEST_F(StoreTest, SingleFlightCoalescesAndCompletes) {
  CacheConfig cfg;
  cfg.dir = dir_;
  cfg.metrics_prefix = "test_store_flightcache";
  RolloutCache cache(cfg);

  auto lead = cache.lookup_or_join(99, 6, nullptr);
  EXPECT_EQ(lead.outcome, RolloutCache::Outcome::Lead);

  std::atomic<int> fulfilled{0};
  Frames follower_frames;
  bool follower_complete = false;
  auto join = cache.lookup_or_join(
      99, 4,
      [&](Frames frames, bool complete, int code, const std::string& error) {
        follower_frames = std::move(frames);
        follower_complete = complete;
        EXPECT_EQ(code, 0);
        EXPECT_TRUE(error.empty());
        fulfilled.fetch_add(1);
      });
  EXPECT_EQ(join.outcome, RolloutCache::Outcome::Joined);

  // A request for MORE steps than the in-flight leader must not join it.
  auto bigger = cache.lookup_or_join(99, 10, nullptr);
  EXPECT_EQ(bigger.outcome, RolloutCache::Outcome::Lead);

  const Frames frames = make_frames(6, 4, 2.5);
  cache.complete(99, frames);
  EXPECT_EQ(fulfilled.load(), 1);
  EXPECT_TRUE(follower_complete);
  ASSERT_EQ(follower_frames.size(), 4u);  // truncated to the follower's ask
  for (int s = 0; s < 4; ++s)
    EXPECT_EQ(follower_frames[static_cast<std::size_t>(s)],
              frames[static_cast<std::size_t>(s)]);

  // The completed rollout is now resident: next lookup is a plain hit.
  auto hit = cache.lookup_or_join(99, 6, nullptr);
  EXPECT_EQ(hit.outcome, RolloutCache::Outcome::Hit);
  EXPECT_EQ(hit.frames, frames);
}

TEST_F(StoreTest, AbandonSalvagesCoveredFollowersAndFailsTheRest) {
  CacheConfig cfg;
  cfg.dir = dir_;
  cfg.metrics_prefix = "test_store_abandoncache";
  RolloutCache cache(cfg);

  auto lead = cache.lookup_or_join(55, 8, nullptr);
  ASSERT_EQ(lead.outcome, RolloutCache::Outcome::Lead);

  bool covered_complete = false;
  Frames covered_frames;
  auto covered = cache.lookup_or_join(
      55, 2, [&](Frames frames, bool complete, int, const std::string&) {
        covered_frames = std::move(frames);
        covered_complete = complete;
      });
  ASSERT_EQ(covered.outcome, RolloutCache::Outcome::Joined);

  bool uncovered_complete = true;
  int uncovered_code = 0;
  std::string uncovered_error;
  auto uncovered = cache.lookup_or_join(
      55, 7,
      [&](Frames, bool complete, int code, const std::string& error) {
        uncovered_complete = complete;
        uncovered_code = code;
        uncovered_error = error;
      });
  ASSERT_EQ(uncovered.outcome, RolloutCache::Outcome::Joined);

  // Leader dies after 3 of 8 steps with a partial prefix.
  const Frames partial = make_frames(3, 4, 6.0);
  cache.abandon(55, partial, /*code=*/2, "deadline exceeded");
  EXPECT_TRUE(covered_complete);  // 2 <= 3: the prefix answers it fully
  ASSERT_EQ(covered_frames.size(), 2u);
  EXPECT_EQ(covered_frames[1], partial[1]);
  EXPECT_FALSE(uncovered_complete);
  EXPECT_EQ(uncovered_code, 2);
  EXPECT_EQ(uncovered_error, "deadline exceeded");

  // Nothing was inserted; the key now misses.
  Frames out;
  EXPECT_FALSE(cache.lookup(55, 1, out));
}

TEST_F(StoreTest, ConcurrentReadersDuringAppendsAllVerify) {
  CacheConfig cfg;
  cfg.dir = dir_;
  cfg.metrics_prefix = "test_store_racecache";
  RolloutCache cache(cfg);
  const Frames stable = make_frames(5, 16, 1.0);
  ASSERT_TRUE(cache.insert(1000, stable));

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        Frames out;
        if (!cache.lookup(1000, 5, out) || out != stable)
          failures.fetch_add(1);
      }
    });
  }
  // Writer: 60 appends under distinct keys while the readers hammer.
  for (int i = 0; i < 60; ++i)
    ASSERT_TRUE(cache.insert(2000 + i, make_frames(3, 16, 10.0 + i)));
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // And everything written during the race reads back bitwise.
  for (int i = 0; i < 60; ++i) {
    Frames out;
    ASSERT_TRUE(cache.lookup(2000 + i, 3, out));
    EXPECT_EQ(out, make_frames(3, 16, 10.0 + i));
  }
}

TEST_F(StoreTest, HashIsStableAndOrderSensitive) {
  Fnv1a a;
  a.update_string("model");
  a.update_u64(7);
  Fnv1a b;
  b.update_string("model");
  b.update_u64(7);
  EXPECT_EQ(a.digest(), b.digest());
  Fnv1a c;
  c.update_u64(7);
  c.update_string("model");
  EXPECT_NE(a.digest(), c.digest());
  // Known FNV-1a vector: empty input -> offset basis.
  EXPECT_EQ(Fnv1a().digest(), 14695981039346656037ull);
}

}  // namespace
}  // namespace gns::store
