// Golden-rollout regression tests: short deterministic rollouts of the GNS,
// the hybrid GNS/MPM controller, and the pure-MPM substrate are compared
// frame-by-frame against checked-in artifacts under tests/golden/. Any
// change to numerics — op kernels, feature construction, integrator,
// neighbor search, MPM constitutive model — shows up here as drift.
//
// Tolerance: max |position| drift < 1e-6 per component. The runs are
// bit-deterministic for a fixed build (fixed seeds, serial reductions), so
// the slack only absorbs cross-compiler / FMA-contraction / thread-count
// reassociation noise, all orders of magnitude below 1e-6 on these short
// horizons. Intentional numeric changes regenerate the artifacts:
//
//     GNS_REGEN_GOLDEN=1 ctest -L golden
//
// which rewrites tests/golden/*.txt in the SOURCE tree (path baked in via
// the GNS_GOLDEN_DIR compile definition) — commit the diff alongside the
// change that caused it. On mismatch each test also writes
// golden_diff_<name>.txt next to the test binary (uploaded as a CI
// artifact) with the worst offending frames.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "core/datagen.hpp"
#include "core/hybrid.hpp"
#include "core/trainer.hpp"
#include "mpm/scenes.hpp"
#include "mpm/solver.hpp"
#include "util/rng.hpp"

#ifndef GNS_GOLDEN_DIR
#define GNS_GOLDEN_DIR "tests/golden"
#endif

namespace gns {
namespace {

using Frames = std::vector<std::vector<double>>;

constexpr double kTolerance = 1e-6;

bool regen_requested() {
  const char* env = std::getenv("GNS_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

std::string golden_path(const std::string& name) {
  return std::string(GNS_GOLDEN_DIR) + "/" + name + ".txt";
}

void write_golden(const std::string& name, const Frames& frames) {
  const std::string path = golden_path(name);
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << "cannot write golden artifact " << path;
  out << std::setprecision(17);
  out << "# golden rollout '" << name << "': frames x flat positions.\n"
      << "# Regenerate with GNS_REGEN_GOLDEN=1 (see test_golden.cpp).\n";
  out << frames.size() << ' ' << (frames.empty() ? 0 : frames[0].size())
      << '\n';
  for (const auto& frame : frames) {
    for (std::size_t k = 0; k < frame.size(); ++k)
      out << (k ? " " : "") << frame[k];
    out << '\n';
  }
}

Frames read_golden(const std::string& name, bool* found) {
  Frames frames;
  std::ifstream in(golden_path(name));
  *found = in.good();
  if (!*found) return frames;
  std::string line;
  while (std::getline(in, line) && !line.empty() && line[0] == '#') {
  }
  std::istringstream header(line);
  std::size_t rows = 0, cols = 0;
  header >> rows >> cols;
  frames.resize(rows, std::vector<double>(cols));
  for (auto& frame : frames)
    for (auto& v : frame) in >> v;
  *found = in.good() || in.eof();
  return frames;
}

/// Compares against the artifact; regenerates when GNS_REGEN_GOLDEN is
/// set; dumps golden_diff_<name>.txt on mismatch for CI artifact upload.
void check_against_golden(const std::string& name, const Frames& actual) {
  if (regen_requested()) {
    write_golden(name, actual);
    GTEST_SKIP() << "regenerated " << golden_path(name);
  }
  bool found = false;
  const Frames expected = read_golden(name, &found);
  ASSERT_TRUE(found) << "missing golden artifact " << golden_path(name)
                     << " — run with GNS_REGEN_GOLDEN=1 to create it";
  ASSERT_EQ(actual.size(), expected.size()) << "frame count drifted";

  double max_drift = 0.0;
  std::size_t worst_frame = 0, worst_component = 0;
  for (std::size_t t = 0; t < expected.size(); ++t) {
    ASSERT_EQ(actual[t].size(), expected[t].size()) << "frame " << t;
    for (std::size_t k = 0; k < expected[t].size(); ++k) {
      const double d = std::abs(actual[t][k] - expected[t][k]);
      if (d > max_drift) {
        max_drift = d;
        worst_frame = t;
        worst_component = k;
      }
    }
  }
  if (max_drift >= kTolerance) {
    const std::string diff_path = "golden_diff_" + name + ".txt";
    std::ofstream diff(diff_path);
    diff << std::setprecision(17);
    diff << "golden mismatch for '" << name << "': max drift " << max_drift
         << " at frame " << worst_frame << " component " << worst_component
         << " (tolerance " << kTolerance << ")\n";
    diff << "frame component expected actual absdiff\n";
    for (std::size_t t = 0; t < expected.size(); ++t)
      for (std::size_t k = 0; k < expected[t].size(); ++k) {
        const double d = std::abs(actual[t][k] - expected[t][k]);
        if (d >= kTolerance)
          diff << t << ' ' << k << ' ' << expected[t][k] << ' '
               << actual[t][k] << ' ' << d << '\n';
      }
    FAIL() << "max drift " << max_drift << " at frame " << worst_frame
           << " component " << worst_component << " exceeds " << kTolerance
           << "; full diff written to " << diff_path;
  }
  SUCCEED() << "max drift " << max_drift;
}

// ---------- Scenario builders (fixed seeds, tiny but representative) ------

mpm::Scene golden_scene() {
  mpm::GranularSceneParams params;
  params.cells_x = 16;
  params.cells_y = 8;
  params.domain_width = 1.0;
  params.domain_height = 0.5;
  params.material.friction_deg = 30.0;
  return mpm::make_column_collapse(params, 0.15, 1.2);
}

core::LearnedSimulator golden_sim() {
  mpm::MpmSolver solver = golden_scene().make_solver();
  io::Dataset ds;
  ds.trajectories.push_back(
      core::record_mpm_trajectory(solver, /*frames=*/12, /*substeps=*/10,
                                  /*material_param=*/0.5));
  core::FeatureConfig fc;
  fc.dim = 2;
  fc.history = 3;
  fc.connectivity_radius = 0.12;
  fc.domain_lo = {0.0, 0.0};
  fc.domain_hi = {1.0, 0.5};
  fc.material_feature = true;
  core::GnsConfig gc;
  gc.latent = 16;
  gc.mlp_hidden = 16;
  gc.mlp_layers = 1;
  gc.message_passing_steps = 2;
  gc.attention = true;
  return core::make_simulator(ds, fc, gc, /*seed=*/17);
}

TEST(Golden, GnsRollout) {
  core::LearnedSimulator sim = golden_sim();
  mpm::MpmSolver solver = golden_scene().make_solver();
  const io::Trajectory warmup =
      core::record_mpm_trajectory(solver, sim.features().window_size(), 10,
                                  0.5);
  const core::Window window = sim.window_from_trajectory(warmup);
  const core::SceneContext ctx =
      core::SceneContext::from_trajectory(sim.features(), warmup);
  check_against_golden("gns_rollout", sim.rollout(window, /*steps=*/15, ctx));
}

TEST(Golden, HybridController) {
  core::LearnedSimulator sim = golden_sim();
  core::HybridConfig hc;
  hc.gns_frames = 3;
  hc.refine_frames = 2;
  hc.substeps = 10;
  const core::HybridResult result = core::run_hybrid(
      sim, golden_scene().make_solver(), hc, /*total_frames=*/14,
      /*material_param=*/0.5);
  check_against_golden("hybrid", result.frames);
}

TEST(Golden, MpmColumnCollapse) {
  mpm::MpmSolver solver = golden_scene().make_solver();
  Frames frames;
  for (int f = 0; f < 12; ++f) {  // 12 recorded frames, 10 substeps apart
    solver.run(10);
    std::vector<double> flat;
    flat.reserve(static_cast<std::size_t>(solver.particles().size()) * 2);
    for (const auto& x : solver.particles().position) {
      flat.push_back(x.x);
      flat.push_back(x.y);
    }
    frames.push_back(std::move(flat));
  }
  check_against_golden("mpm_column", frames);
}

}  // namespace
}  // namespace gns
