// Elementwise / matmul / reduction ops: forward semantics + exhaustive
// finite-difference gradient checks (the contract every model builds on).

#include <gtest/gtest.h>

#include <cmath>

#include "ad/gradcheck.hpp"
#include "ad/ops.hpp"
#include "util/rng.hpp"

namespace gns::ad {
namespace {

Tensor random_tensor(int r, int c, Rng& rng, double lo = -2.0,
                     double hi = 2.0) {
  std::vector<Real> v(static_cast<std::size_t>(r) * c);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return Tensor::from_vector(r, c, std::move(v));
}

// ---------- Forward semantics ----------

TEST(Ops, AddSubMulDivElementwise) {
  Tensor a = Tensor::from_vector(1, 4, {1, 2, 3, 4});
  Tensor b = Tensor::from_vector(1, 4, {4, 3, 2, 1});
  EXPECT_EQ(add(a, b).at(0, 0), 5.0);
  EXPECT_EQ(sub(a, b).at(0, 1), -1.0);
  EXPECT_EQ(mul(a, b).at(0, 2), 6.0);
  EXPECT_EQ(div(a, b).at(0, 3), 4.0);
}

TEST(Ops, RowBroadcast) {
  Tensor a = Tensor::from_vector(2, 2, {1, 2, 3, 4});
  Tensor row = Tensor::from_vector(1, 2, {10, 20});
  Tensor out = add(a, row);
  EXPECT_EQ(out.at(0, 0), 11.0);
  EXPECT_EQ(out.at(1, 1), 24.0);
}

TEST(Ops, ColBroadcast) {
  Tensor a = Tensor::from_vector(2, 2, {1, 2, 3, 4});
  Tensor col = Tensor::from_vector(2, 1, {10, 20});
  Tensor out = mul(a, col);
  EXPECT_EQ(out.at(0, 1), 20.0);
  EXPECT_EQ(out.at(1, 0), 60.0);
}

TEST(Ops, ScalarBroadcastBothWays) {
  Tensor a = Tensor::from_vector(2, 2, {1, 2, 3, 4});
  Tensor s = Tensor::scalar(2.0);
  EXPECT_EQ(mul(a, s).at(1, 1), 8.0);
  EXPECT_EQ(mul(s, a).at(1, 1), 8.0);
}

TEST(Ops, BroadcastShapeMismatchThrows) {
  Tensor a = Tensor::zeros(2, 3);
  Tensor b = Tensor::zeros(3, 2);
  EXPECT_THROW(add(a, b), CheckError);
}

TEST(Ops, OperatorSugar) {
  Tensor a = Tensor::scalar(4.0);
  EXPECT_DOUBLE_EQ((a + 1.0).item(), 5.0);
  EXPECT_DOUBLE_EQ((a - 1.0).item(), 3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).item(), 8.0);
  EXPECT_DOUBLE_EQ((a / 2.0).item(), 2.0);
  EXPECT_DOUBLE_EQ((-a).item(), -4.0);
  EXPECT_DOUBLE_EQ((2.0 * a).item(), 8.0);
}

TEST(Ops, UnaryForwardValues) {
  Tensor x = Tensor::from_vector(1, 3, {-1.0, 0.0, 2.0});
  Tensor r = relu(x);
  EXPECT_EQ(r.at(0, 0), 0.0);
  EXPECT_EQ(r.at(0, 2), 2.0);
  EXPECT_NEAR(tanh_op(x).at(0, 2), std::tanh(2.0), 1e-12);
  EXPECT_NEAR(sigmoid(x).at(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(exp_op(x).at(0, 2), std::exp(2.0), 1e-12);
  EXPECT_NEAR(abs_op(x).at(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(square(x).at(0, 2), 4.0, 1e-12);
}

TEST(Ops, LogClampsBelowFloor) {
  Tensor x = Tensor::from_vector(1, 2, {-1.0, 1.0});
  Tensor y = log_op(x, 1e-12);
  EXPECT_TRUE(std::isfinite(y.at(0, 0)));
  EXPECT_NEAR(y.at(0, 1), 0.0, 1e-12);
}

TEST(Ops, ClampForwardAndFlatGradientOutside) {
  Tensor x = Tensor::from_vector(1, 3, {-2.0, 0.5, 2.0});
  x.set_requires_grad(true);
  Tensor y = clamp(x, 0.0, 1.0);
  EXPECT_EQ(y.at(0, 0), 0.0);
  EXPECT_EQ(y.at(0, 1), 0.5);
  EXPECT_EQ(y.at(0, 2), 1.0);
  sum(y).backward();
  EXPECT_EQ(x.grad()[0], 0.0);
  EXPECT_EQ(x.grad()[1], 1.0);
  EXPECT_EQ(x.grad()[2], 0.0);
}

TEST(Ops, MatmulValues) {
  Tensor a = Tensor::from_vector(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_vector(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.at(0, 0), 58.0);
  EXPECT_EQ(c.at(0, 1), 64.0);
  EXPECT_EQ(c.at(1, 0), 139.0);
  EXPECT_EQ(c.at(1, 1), 154.0);
}

TEST(Ops, MatmulShapeMismatchThrows) {
  EXPECT_THROW(matmul(Tensor::zeros(2, 3), Tensor::zeros(2, 3)), CheckError);
}

TEST(Ops, TransposeValues) {
  Tensor a = Tensor::from_vector(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor t = transpose(a);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.at(2, 1), 6.0);
}

TEST(Ops, Reductions) {
  Tensor a = Tensor::from_vector(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(sum(a).item(), 21.0);
  EXPECT_DOUBLE_EQ(mean(a).item(), 3.5);
  Tensor sr = sum_rows(a);
  EXPECT_EQ(sr.rows(), 1);
  EXPECT_EQ(sr.cols(), 3);
  EXPECT_DOUBLE_EQ(sr.at(0, 0), 5.0);
  Tensor sc = sum_cols(a);
  EXPECT_EQ(sc.rows(), 2);
  EXPECT_DOUBLE_EQ(sc.at(1, 0), 15.0);
}

TEST(Ops, MseAndL1) {
  Tensor a = Tensor::from_vector(1, 2, {1.0, 3.0});
  Tensor b = Tensor::from_vector(1, 2, {0.0, 1.0});
  EXPECT_DOUBLE_EQ(mse_loss(a, b).item(), (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(l1_norm(sub(a, b)).item(), 1.5);
}

// ---------- Gradient checks (parameterized over shapes) ----------

struct ShapeCase {
  int rows, cols;
};

class BinaryGradCheck : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(BinaryGradCheck, AddSubMulDiv) {
  const auto [r, c] = GetParam();
  Rng rng(13);
  using Fn = Tensor (*)(const Tensor&, const Tensor&);
  for (Fn fn : {static_cast<Fn>(add), static_cast<Fn>(sub),
                static_cast<Fn>(mul), static_cast<Fn>(div)}) {
    auto result = grad_check(
        [fn](const std::vector<Tensor>& in) {
          return sum(fn(in[0], in[1]));
        },
        {random_tensor(r, c, rng, 0.5, 2.0),
         random_tensor(r, c, rng, 0.5, 2.0)});
    EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BinaryGradCheck,
                         ::testing::Values(ShapeCase{1, 1}, ShapeCase{1, 5},
                                           ShapeCase{4, 1}, ShapeCase{3, 4},
                                           ShapeCase{7, 2}));

class BroadcastGradCheck
    : public ::testing::TestWithParam<std::pair<ShapeCase, ShapeCase>> {};

TEST_P(BroadcastGradCheck, MulWithBroadcast) {
  const auto [sa, sb] = GetParam();
  Rng rng(17);
  auto result = grad_check(
      [](const std::vector<Tensor>& in) { return sum(mul(in[0], in[1])); },
      {random_tensor(sa.rows, sa.cols, rng),
       random_tensor(sb.rows, sb.cols, rng)});
  EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(
    Combos, BroadcastGradCheck,
    ::testing::Values(std::pair{ShapeCase{3, 4}, ShapeCase{1, 4}},
                      std::pair{ShapeCase{3, 4}, ShapeCase{3, 1}},
                      std::pair{ShapeCase{3, 4}, ShapeCase{1, 1}},
                      std::pair{ShapeCase{1, 4}, ShapeCase{3, 4}},
                      std::pair{ShapeCase{3, 1}, ShapeCase{3, 4}}));

TEST(OpsGrad, UnaryOps) {
  Rng rng(19);
  struct Case {
    const char* name;
    std::function<Tensor(const Tensor&)> fn;
    double lo, hi;
  };
  const std::vector<Case> cases = {
      {"relu", [](const Tensor& t) { return relu(t); }, 0.2, 2.0},
      {"tanh", [](const Tensor& t) { return tanh_op(t); }, -2.0, 2.0},
      {"sigmoid", [](const Tensor& t) { return sigmoid(t); }, -2.0, 2.0},
      {"exp", [](const Tensor& t) { return exp_op(t); }, -1.0, 1.0},
      {"log", [](const Tensor& t) { return log_op(t); }, 0.5, 3.0},
      {"sqrt", [](const Tensor& t) { return sqrt_op(t); }, 0.5, 3.0},
      {"abs", [](const Tensor& t) { return abs_op(t); }, 0.3, 2.0},
      {"square", [](const Tensor& t) { return square(t); }, -2.0, 2.0},
      {"pow2.5",
       [](const Tensor& t) { return pow_scalar(t, 2.5); }, 0.5, 2.0},
      {"scale", [](const Tensor& t) { return mul_scalar(t, -1.7); }, -2.0,
       2.0},
      {"shift", [](const Tensor& t) { return add_scalar(t, 0.3); }, -2.0,
       2.0},
  };
  for (const auto& c : cases) {
    auto result = grad_check(
        [&c](const std::vector<Tensor>& in) { return mean(c.fn(in[0])); },
        {random_tensor(3, 4, rng, c.lo, c.hi)});
    EXPECT_TRUE(result.ok) << c.name << " rel=" << result.max_rel_error;
  }
}

TEST(OpsGrad, MatmulBothSides) {
  Rng rng(23);
  auto result = grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(matmul(in[0], in[1]));
      },
      {random_tensor(3, 4, rng), random_tensor(4, 2, rng)});
  EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
}

TEST(OpsGrad, TransposeAndReductions) {
  Rng rng(29);
  for (auto fn : std::vector<std::function<Tensor(const Tensor&)>>{
           [](const Tensor& t) { return sum(transpose(t)); },
           [](const Tensor& t) { return mean(t); },
           [](const Tensor& t) { return sum(sum_rows(t)); },
           [](const Tensor& t) { return sum(sum_cols(t)); }}) {
    auto result = grad_check(
        [&fn](const std::vector<Tensor>& in) { return fn(in[0]); },
        {random_tensor(4, 3, rng)});
    EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
  }
}

TEST(OpsGrad, MseLoss) {
  Rng rng(31);
  auto result = grad_check(
      [](const std::vector<Tensor>& in) { return mse_loss(in[0], in[1]); },
      {random_tensor(5, 2, rng), random_tensor(5, 2, rng)});
  EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
}

TEST(OpsGrad, ComposedExpression) {
  // A GNS-flavoured composite: gradients through a deep mixed chain.
  Rng rng(37);
  auto result = grad_check(
      [](const std::vector<Tensor>& in) {
        Tensor h = tanh_op(matmul(in[0], in[1]));
        h = mul(h, sigmoid(h));
        return mean(square(sub(h, mul_scalar(in[2], 0.3))));
      },
      {random_tensor(4, 3, rng), random_tensor(3, 5, rng),
       random_tensor(4, 5, rng)});
  EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
}

}  // namespace
}  // namespace gns::ad
