// Dataset generation: trajectory recording cadence, determinism, scene
// sweeps, the friction-angle parameterization, and the fluid datagen.

#include <gtest/gtest.h>

#include <cmath>

#include "core/datagen.hpp"

namespace gns::core {
namespace {

mpm::GranularSceneParams tiny_scene() {
  mpm::GranularSceneParams params;
  params.cells_x = 16;
  params.cells_y = 8;
  params.domain_width = 1.0;
  params.domain_height = 0.5;
  return params;
}

TEST(MaterialParam, IsTanPhi) {
  EXPECT_NEAR(material_param_from_friction(45.0), 1.0, 1e-12);
  EXPECT_NEAR(material_param_from_friction(30.0),
              std::tan(30.0 * M_PI / 180.0), 1e-12);
  EXPECT_NEAR(material_param_from_friction(0.0), 0.0, 1e-12);
}

TEST(RecordTrajectory, CadenceAndMetadata) {
  mpm::Scene scene = mpm::make_column_collapse(tiny_scene(), 0.15, 1.5);
  mpm::MpmSolver solver = scene.make_solver();
  io::Trajectory traj = record_mpm_trajectory(solver, 10, 5, 0.7);
  EXPECT_EQ(traj.num_frames(), 10);
  EXPECT_EQ(traj.num_particles, scene.particles.size());
  EXPECT_EQ(traj.dim, 2);
  EXPECT_DOUBLE_EQ(traj.material_param, 0.7);
  EXPECT_DOUBLE_EQ(traj.domain_hi[0], 1.0);
  EXPECT_DOUBLE_EQ(traj.domain_hi[1], 0.5);
  // 9 * 5 solver steps were taken (no advance after the last frame).
  EXPECT_EQ(solver.steps_taken(), 45);
  // Frame 0 is the initial condition.
  EXPECT_DOUBLE_EQ(traj.position(0, 0, 0),
                   scene.particles.position[0].x);
}

TEST(ColumnDataset, OneTrajectoryPerAngleWithCorrectParams) {
  io::Dataset ds = generate_column_dataset(tiny_scene(), {20.0, 40.0}, 0.15,
                                           1.5, 8, 5);
  ASSERT_EQ(ds.size(), 2);
  EXPECT_NEAR(ds.trajectories[0].material_param,
              material_param_from_friction(20.0), 1e-12);
  EXPECT_NEAR(ds.trajectories[1].material_param,
              material_param_from_friction(40.0), 1e-12);
  // Same geometry: identical particle counts and initial frames.
  EXPECT_EQ(ds.trajectories[0].num_particles,
            ds.trajectories[1].num_particles);
  EXPECT_EQ(ds.trajectories[0].frames[0], ds.trajectories[1].frames[0]);
  // Different friction: different final frames.
  EXPECT_NE(ds.trajectories[0].frames.back(),
            ds.trajectories[1].frames.back());
}

TEST(GranularDataset, DeterministicForFixedSeed) {
  MpmDataGenConfig config;
  config.scene = tiny_scene();
  config.num_trajectories = 2;
  config.frames = 6;
  config.substeps = 5;
  config.seed = 55;
  io::Dataset a = generate_granular_dataset(config);
  io::Dataset b = generate_granular_dataset(config);
  ASSERT_EQ(a.size(), b.size());
  for (int k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a.trajectories[k].frames, b.trajectories[k].frames);
  }
}

TEST(GranularDataset, SeedChangesScenes) {
  MpmDataGenConfig config;
  config.scene = tiny_scene();
  config.num_trajectories = 1;
  config.frames = 4;
  config.substeps = 5;
  config.seed = 1;
  io::Dataset a = generate_granular_dataset(config);
  config.seed = 2;
  io::Dataset b = generate_granular_dataset(config);
  const bool differs =
      a.trajectories[0].num_particles != b.trajectories[0].num_particles ||
      a.trajectories[0].frames[0] != b.trajectories[0].frames[0];
  EXPECT_TRUE(differs);
}

TEST(GranularDataset, RespectsSideAndSpeedBounds) {
  MpmDataGenConfig config;
  config.scene = tiny_scene();
  config.num_trajectories = 3;
  config.frames = 3;
  config.substeps = 2;
  config.min_side = 0.2;
  config.max_side = 0.22;
  config.max_speed = 0.0;  // at rest
  io::Dataset ds = generate_granular_dataset(config);
  for (const auto& traj : ds.trajectories) {
    // Frame-to-frame displacement of frame 0->1 should be tiny (gravity
    // only, no initial velocity).
    double max_dx = 0.0;
    for (int p = 0; p < traj.num_particles; ++p) {
      max_dx = std::max(max_dx, std::abs(traj.position(1, p, 0) -
                                         traj.position(0, p, 0)));
    }
    EXPECT_LT(max_dx, 1e-3);
  }
}

TEST(FluidDataset, ShapesAndVariedGeometry) {
  FluidDataGenConfig config;
  config.scene.cells_x = 16;
  config.scene.cells_y = 8;
  config.num_trajectories = 3;
  config.frames = 5;
  config.substeps = 5;
  io::Dataset ds = generate_dam_break_dataset(config);
  ASSERT_EQ(ds.size(), 3);
  // Random widths/heights: particle counts should not all match.
  const bool varied =
      ds.trajectories[0].num_particles != ds.trajectories[1].num_particles ||
      ds.trajectories[1].num_particles != ds.trajectories[2].num_particles;
  EXPECT_TRUE(varied);
  for (const auto& traj : ds.trajectories) {
    EXPECT_EQ(traj.num_frames(), 5);
    EXPECT_DOUBLE_EQ(traj.material_param, 0.0);
  }
}

TEST(NBodyDataset, CarriesAttributesAndCount) {
  NBodyDataGenConfig config;
  config.num_trajectories = 4;
  config.frames = 6;
  config.substeps = 3;
  io::Dataset ds = generate_nbody_dataset(config);
  ASSERT_EQ(ds.size(), 4);
  for (const auto& traj : ds.trajectories) {
    EXPECT_EQ(traj.dim, 1);
    EXPECT_EQ(traj.attr_dim, 2);
    EXPECT_EQ(static_cast<int>(traj.node_attrs.size()),
              2 * traj.num_particles);
  }
  // Different systems per trajectory.
  EXPECT_NE(ds.trajectories[0].node_attrs, ds.trajectories[1].node_attrs);
}

TEST(Stats, GranularDatasetHasGravitySignature) {
  MpmDataGenConfig config;
  config.scene = tiny_scene();
  config.num_trajectories = 2;
  config.frames = 10;
  config.substeps = 10;
  config.max_speed = 0.0;
  io::Dataset ds = generate_granular_dataset(config);
  const io::NormalizationStats stats = io::compute_stats(ds);
  // Mean vertical velocity negative (falling), vertical acceleration
  // spread at least as large as the (nearly settled) horizontal one.
  EXPECT_LT(stats.vel_mean[1], 0.0);
  EXPECT_GT(stats.acc_std[1], 0.0);
}

}  // namespace
}  // namespace gns::core
