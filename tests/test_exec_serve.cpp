// Deadline and cancellation propagation through the executor-backed
// scheduler (DESIGN.md §13): expiry at submit, expiry via the queued
// deadline timer, expiry and cancellation between chain steps, and the
// batch-window regression where a cancelled job whose coalescing timer is
// still pending must never execute.
//
// These tests target the GNS_EXEC=1 path; on the legacy leg the
// timer-specific ones skip (the thread pool polls deadlines at dequeue
// instead of arming timers, so the observable ordering differs).

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "exec/executor.hpp"
#include "serve/serve.hpp"

namespace gns::serve {
namespace {

using core::FeatureConfig;
using core::GnsConfig;
using core::LearnedSimulator;

io::Dataset small_dataset() {
  io::Dataset ds;
  io::Trajectory traj;
  traj.dim = 2;
  traj.num_particles = 6;
  traj.domain_lo = {0.0, 0.0};
  traj.domain_hi = {1.0, 1.0};
  traj.material_param = 0.6;
  Rng rng(7);
  std::vector<double> base(12);
  for (auto& v : base) v = rng.uniform(0.3, 0.7);
  for (int t = 0; t < 12; ++t) {
    std::vector<double> frame(12);
    for (int i = 0; i < 12; ++i) frame[i] = base[i] + 0.002 * t * (i % 3);
    traj.add_frame(std::move(frame));
  }
  ds.trajectories.push_back(std::move(traj));
  return ds;
}

LearnedSimulator make_small_sim() {
  FeatureConfig fc;
  fc.dim = 2;
  fc.history = 3;
  fc.connectivity_radius = 0.4;
  fc.domain_lo = {0.0, 0.0};
  fc.domain_hi = {1.0, 1.0};
  fc.material_feature = true;
  GnsConfig gc;
  gc.latent = 8;
  gc.mlp_hidden = 8;
  gc.mlp_layers = 1;
  gc.message_passing_steps = 2;
  return core::make_simulator(small_dataset(), fc, gc, 42);
}

RolloutRequest small_request(const LearnedSimulator& sim, int steps) {
  io::Dataset ds = small_dataset();
  const io::Trajectory& traj = ds.trajectories[0];
  RolloutRequest req;
  req.model = "m";
  req.steps = steps;
  req.material = traj.material_param;
  const int w = sim.features().window_size();
  for (int t = 0; t < w; ++t) req.window.push_back(traj.frames[t]);
  return req;
}

class ExecServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_shared<ModelRegistry>();
    registry_->put("m", make_small_sim());
    sim_ = registry_->get("m");
    ASSERT_NE(sim_, nullptr);
  }
  std::shared_ptr<ModelRegistry> registry_;
  ModelRegistry::Handle sim_;
};

TEST_F(ExecServeTest, ExpiredAtSubmitResolvesWithoutTouchingTheExecutor) {
  JobScheduler scheduler(registry_, SchedulerConfig{1, 8});
  RolloutRequest req = small_request(*sim_, 2);
  req.deadline_ms = -1.0;  // upstream budget already spent
  JobTicket ticket = scheduler.submit(std::move(req));

  // Resolution is synchronous: no chain, no timer, no queue slot.
  RolloutResult result = ticket.result.get();
  EXPECT_EQ(result.status, JobStatus::DeadlineExceeded);
  EXPECT_TRUE(result.frames.empty());
  EXPECT_EQ(scheduler.queue_depth(), 0);
  const StatsSnapshot snap = scheduler.stats().snapshot();
  EXPECT_EQ(snap.deadline_exceeded, 1u);
  EXPECT_EQ(snap.completed, 0u);
}

TEST_F(ExecServeTest, QueuedDeadlineFiresAsTimerWhilePaused) {
  if (!exec::enabled()) GTEST_SKIP() << "thread pool polls at dequeue";
  JobScheduler scheduler(registry_, SchedulerConfig{1, 8});

  // With the scheduler paused nothing ever dequeues the job; only the
  // armed deadline timer can resolve it. The thread pool cannot do this —
  // it notices expiry when a worker pops the job.
  scheduler.pause();
  RolloutRequest req = small_request(*sim_, 2);
  req.deadline_ms = 20.0;
  JobTicket ticket = scheduler.submit(std::move(req));

  RolloutResult result = ticket.result.get();
  EXPECT_EQ(result.status, JobStatus::DeadlineExceeded);
  EXPECT_NE(result.error.find("while queued"), std::string::npos);
  EXPECT_TRUE(result.frames.empty());
  EXPECT_GE(result.queue_ms, 0.0);
  EXPECT_EQ(scheduler.queue_depth(), 0);
  scheduler.resume();
}

TEST_F(ExecServeTest, ExpiredMidChainReturnsPrefixWithTypedError) {
  JobScheduler scheduler(registry_, SchedulerConfig{1, 8});
  RolloutRequest req = small_request(*sim_, 1000000);
  req.deadline_ms = 40.0;
  RolloutResult result = scheduler.submit(std::move(req)).result.get();
  EXPECT_EQ(result.status, JobStatus::DeadlineExceeded);
  EXPECT_NE(result.error.find("deadline exceeded after"), std::string::npos);
  // Gave up between chain steps: a strict, non-empty prefix.
  EXPECT_LT(result.frames.size(), 1000000u);
}

TEST_F(ExecServeTest, CancelMidChainStopsBetweenSteps) {
  JobScheduler scheduler(registry_, SchedulerConfig{1, 8});
  JobTicket ticket = scheduler.submit(small_request(*sim_, 1000000));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(scheduler.cancel(ticket.id));

  RolloutResult result = ticket.result.get();
  EXPECT_EQ(result.status, JobStatus::Cancelled);
  EXPECT_LT(result.frames.size(), 1000000u);
  EXPECT_EQ(scheduler.stats().snapshot().cancelled, 1u);
}

TEST_F(ExecServeTest, CancelMidBatchSkipsMemberAndSiblingSurvives) {
  SchedulerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  cfg.max_batch = 2;
  JobScheduler scheduler(registry_, cfg);

  scheduler.pause();  // both jobs queue, then coalesce into one batch
  JobTicket doomed = scheduler.submit(small_request(*sim_, 1000000));
  JobTicket sibling = scheduler.submit(small_request(*sim_, 3));
  scheduler.resume();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(scheduler.cancel(doomed.id));

  // The cancelled member leaves the batch between message rounds...
  RolloutResult rd = doomed.result.get();
  EXPECT_EQ(rd.status, JobStatus::Cancelled);
  EXPECT_LT(rd.frames.size(), 1000000u);
  // ...and its sibling completes normally.
  RolloutResult rs = sibling.result.get();
  EXPECT_EQ(rs.status, JobStatus::Ok) << rs.error;
  EXPECT_EQ(rs.frames.size(), 3u);
}

// Regression for the submit -> executor handoff bug: a job parked behind
// a batch-window timer used to slip past cancellation (the timer task
// dispatched the batch without re-checking flags). The pre-dispatch sweep
// in dispatch_pending must resolve it as Cancelled, unexecuted.
TEST_F(ExecServeTest, CancelWhileBatchWindowPending) {
  if (!exec::enabled()) GTEST_SKIP() << "coalescing timers are exec-only";
  SchedulerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  cfg.max_batch = 2;
  cfg.batch_window_us = 150'000.0;  // 150 ms coalescing window
  JobScheduler scheduler(registry_, cfg);

  JobTicket ticket = scheduler.submit(small_request(*sim_, 3));
  // Let the lone job park as an underfull pending batch, then cancel it
  // while its window timer is still armed.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(scheduler.cancel(ticket.id));

  RolloutResult result = ticket.result.get();
  EXPECT_EQ(result.status, JobStatus::Cancelled);
  EXPECT_TRUE(result.frames.empty());  // never executed a step
  EXPECT_GE(result.queue_ms, 0.0);

  const StatsSnapshot snap = scheduler.stats().snapshot();
  EXPECT_EQ(snap.completed, 0u);
  EXPECT_EQ(snap.cancelled, 1u);
}

TEST_F(ExecServeTest, BatchWindowCoalescesSecondSubmitBeforeTimerFires) {
  if (!exec::enabled()) GTEST_SKIP() << "coalescing timers are exec-only";
  SchedulerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  cfg.max_batch = 2;
  cfg.batch_window_us = 5'000'000.0;  // 5 s: only top-up can beat it
  JobScheduler scheduler(registry_, cfg);

  const auto t0 = std::chrono::steady_clock::now();
  JobTicket a = scheduler.submit(small_request(*sim_, 3));
  JobTicket b = scheduler.submit(small_request(*sim_, 3));
  EXPECT_EQ(a.result.get().status, JobStatus::Ok);
  EXPECT_EQ(b.result.get().status, JobStatus::Ok);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // The second submit filled the parked batch and cancelled its window
  // timer — nobody waited out the 5 s window.
  EXPECT_LT(elapsed_s, 4.0);
  EXPECT_GE(scheduler.stats().snapshot().batch_size.max(), 2.0);
}

}  // namespace
}  // namespace gns::serve
