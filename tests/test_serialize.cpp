// Simulator and MeshNet persistence: byte-exact behavioural round-trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/serialize.hpp"
#include "core/trainer.hpp"

namespace gns::core {
namespace {

io::Dataset small_dataset() {
  io::Dataset ds;
  io::Trajectory traj;
  traj.dim = 2;
  traj.num_particles = 4;
  traj.domain_lo = {0.0, 0.0};
  traj.domain_hi = {1.0, 1.0};
  traj.material_param = 0.6;
  Rng rng(2);
  std::vector<double> base(8);
  for (auto& v : base) v = rng.uniform(0.3, 0.7);
  for (int t = 0; t < 10; ++t) {
    std::vector<double> frame(8);
    for (int i = 0; i < 8; ++i) frame[i] = base[i] + 0.003 * t * (i % 2);
    traj.add_frame(std::move(frame));
  }
  ds.trajectories.push_back(std::move(traj));
  return ds;
}

LearnedSimulator make_small_sim(bool material = true) {
  FeatureConfig fc;
  fc.dim = 2;
  fc.history = 3;
  fc.connectivity_radius = 0.4;
  fc.domain_lo = {0.0, 0.0};
  fc.domain_hi = {1.0, 1.0};
  fc.material_feature = material;
  GnsConfig gc;
  gc.latent = 8;
  gc.mlp_hidden = 8;
  gc.mlp_layers = 1;
  gc.message_passing_steps = 2;
  gc.attention = true;
  return make_simulator(small_dataset(), fc, gc);
}

class SerializeTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = "test_serialize_model.bin";
};

TEST_F(SerializeTest, SimulatorRoundTripPreservesRollout) {
  io::Dataset ds = small_dataset();
  LearnedSimulator original = make_small_sim();
  save_simulator(original, path_);
  auto loaded = load_simulator(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->features().history, original.features().history);
  EXPECT_TRUE(loaded->features().material_feature);
  EXPECT_TRUE(loaded->model().config().attention);

  Window win = original.window_from_trajectory(ds.trajectories[0]);
  SceneContext ctx;
  ctx.material = ad::Tensor::scalar(0.6);
  auto a = original.rollout(win, 3, ctx);
  auto b = loaded->rollout(win, 3, ctx);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    for (std::size_t i = 0; i < a[t].size(); ++i) {
      EXPECT_DOUBLE_EQ(a[t][i], b[t][i]);
    }
  }
}

TEST_F(SerializeTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(load_simulator("no_such_model.bin").has_value());
}

TEST_F(SerializeTest, GarbageFileRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "garbage bytes, definitely not a model";
  }
  EXPECT_FALSE(load_simulator(path_).has_value());
}

TEST_F(SerializeTest, MeshNetWeightsRoundTrip) {
  cfd::CfdConfig cfg;
  cfg.nx = 12;
  cfg.ny = 6;
  cfg.pressure_iters = 30;
  cfd::CfdSolver solver(cfg);
  Mesh mesh = build_mesh(solver);
  MeshNet a(mesh, MeshNetConfig{8, 8, 1, 1}, 0.8, /*seed=*/1);
  MeshNet b(mesh, MeshNetConfig{8, 8, 1, 1}, 0.8, /*seed=*/2);
  save_meshnet_weights(a, path_);
  ASSERT_TRUE(load_meshnet_weights(b, path_));
  std::vector<double> state(2 * mesh.graph.num_nodes, 0.3);
  EXPECT_EQ(a.step(state), b.step(state));
}

TEST_F(SerializeTest, MeshNetWrongArchitectureRejected) {
  cfd::CfdConfig cfg;
  cfg.nx = 12;
  cfg.ny = 6;
  cfg.pressure_iters = 30;
  cfd::CfdSolver solver(cfg);
  Mesh mesh = build_mesh(solver);
  MeshNet a(mesh, MeshNetConfig{8, 8, 1, 1}, 0.8);
  MeshNet bigger(mesh, MeshNetConfig{16, 16, 1, 2}, 0.8);
  save_meshnet_weights(a, path_);
  EXPECT_FALSE(load_meshnet_weights(bigger, path_));
}

}  // namespace
}  // namespace gns::core
