// Simulator and MeshNet persistence: byte-exact behavioural round-trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <vector>

#include "core/serialize.hpp"
#include "core/trainer.hpp"

namespace gns::core {
namespace {

io::Dataset small_dataset() {
  io::Dataset ds;
  io::Trajectory traj;
  traj.dim = 2;
  traj.num_particles = 4;
  traj.domain_lo = {0.0, 0.0};
  traj.domain_hi = {1.0, 1.0};
  traj.material_param = 0.6;
  Rng rng(2);
  std::vector<double> base(8);
  for (auto& v : base) v = rng.uniform(0.3, 0.7);
  for (int t = 0; t < 10; ++t) {
    std::vector<double> frame(8);
    for (int i = 0; i < 8; ++i) frame[i] = base[i] + 0.003 * t * (i % 2);
    traj.add_frame(std::move(frame));
  }
  ds.trajectories.push_back(std::move(traj));
  return ds;
}

LearnedSimulator make_small_sim(bool material = true) {
  FeatureConfig fc;
  fc.dim = 2;
  fc.history = 3;
  fc.connectivity_radius = 0.4;
  fc.domain_lo = {0.0, 0.0};
  fc.domain_hi = {1.0, 1.0};
  fc.material_feature = material;
  GnsConfig gc;
  gc.latent = 8;
  gc.mlp_hidden = 8;
  gc.mlp_layers = 1;
  gc.message_passing_steps = 2;
  gc.attention = true;
  return make_simulator(small_dataset(), fc, gc);
}

class SerializeTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = "test_serialize_model.bin";
};

TEST_F(SerializeTest, SimulatorRoundTripPreservesRollout) {
  io::Dataset ds = small_dataset();
  LearnedSimulator original = make_small_sim();
  save_simulator(original, path_);
  auto loaded = load_simulator(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->features().history, original.features().history);
  EXPECT_TRUE(loaded->features().material_feature);
  EXPECT_TRUE(loaded->model().config().attention);

  Window win = original.window_from_trajectory(ds.trajectories[0]);
  SceneContext ctx;
  ctx.material = ad::Tensor::scalar(0.6);
  auto a = original.rollout(win, 3, ctx);
  auto b = loaded->rollout(win, 3, ctx);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    for (std::size_t i = 0; i < a[t].size(); ++i) {
      EXPECT_DOUBLE_EQ(a[t][i], b[t][i]);
    }
  }
}

TEST_F(SerializeTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(load_simulator("no_such_model.bin").has_value());
}

TEST_F(SerializeTest, GarbageFileRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "garbage bytes, definitely not a model";
  }
  EXPECT_FALSE(load_simulator(path_).has_value());
}

TEST_F(SerializeTest, TruncatedFileRejectedAtEveryOffset) {
  LearnedSimulator original = make_small_sim();
  save_simulator(original, path_);
  std::ifstream in(path_, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);

  // Truncation anywhere — inside the header, a length prefix, or the
  // weight payload — must yield nullopt, never a crash or a partial model.
  const std::size_t offsets[] = {0,  1,  3,  4,  7,  8,  12, 20,
                                 41, 64, bytes.size() / 2, bytes.size() - 1};
  for (std::size_t cut : offsets) {
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    EXPECT_FALSE(load_simulator(path_).has_value()) << "cut at " << cut;
  }
}

TEST_F(SerializeTest, CorruptLengthPrefixRejectedWithoutHugeAllocation) {
  LearnedSimulator original = make_small_sim();
  save_simulator(original, path_);
  // The first vector length prefix (domain_lo) sits after
  // magic+version+dim+history+radius = 4+4+4+4+8 = 24 bytes. Blow it up
  // to a size no real file could back.
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(24);
  const std::uint64_t absurd = 1ULL << 40;
  f.write(reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  f.close();
  EXPECT_FALSE(load_simulator(path_).has_value());
}

TEST_F(SerializeTest, SharedLoadMatchesValueLoad) {
  LearnedSimulator original = make_small_sim();
  save_simulator(original, path_);
  std::shared_ptr<const LearnedSimulator> shared =
      load_simulator_shared(path_);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->model().state(), original.model().state());
  EXPECT_EQ(load_simulator_shared("no_such_model.bin"), nullptr);
}

TEST_F(SerializeTest, TruncatedMeshNetFileLeavesNetUntouched) {
  cfd::CfdConfig cfg;
  cfg.nx = 12;
  cfg.ny = 6;
  cfg.pressure_iters = 30;
  cfd::CfdSolver solver(cfg);
  Mesh mesh = build_mesh(solver);
  MeshNet a(mesh, MeshNetConfig{8, 8, 1, 1}, 0.8, /*seed=*/1);
  MeshNet b(mesh, MeshNetConfig{8, 8, 1, 1}, 0.8, /*seed=*/2);
  save_meshnet_weights(a, path_);

  std::ifstream in(path_, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  const std::vector<double> before = b.model().state();
  for (std::size_t cut : {std::size_t(0), std::size_t(6), std::size_t(14),
                          bytes.size() / 2, bytes.size() - 1}) {
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    EXPECT_FALSE(load_meshnet_weights(b, path_)) << "cut at " << cut;
    EXPECT_EQ(b.model().state(), before) << "partial mutation at " << cut;
  }
}

TEST_F(SerializeTest, MeshNetWeightsRoundTrip) {
  cfd::CfdConfig cfg;
  cfg.nx = 12;
  cfg.ny = 6;
  cfg.pressure_iters = 30;
  cfd::CfdSolver solver(cfg);
  Mesh mesh = build_mesh(solver);
  MeshNet a(mesh, MeshNetConfig{8, 8, 1, 1}, 0.8, /*seed=*/1);
  MeshNet b(mesh, MeshNetConfig{8, 8, 1, 1}, 0.8, /*seed=*/2);
  save_meshnet_weights(a, path_);
  ASSERT_TRUE(load_meshnet_weights(b, path_));
  std::vector<double> state(2 * mesh.graph.num_nodes, 0.3);
  EXPECT_EQ(a.step(state), b.step(state));
}

TEST_F(SerializeTest, MeshNetWrongArchitectureRejected) {
  cfd::CfdConfig cfg;
  cfg.nx = 12;
  cfg.ny = 6;
  cfg.pressure_iters = 30;
  cfd::CfdSolver solver(cfg);
  Mesh mesh = build_mesh(solver);
  MeshNet a(mesh, MeshNetConfig{8, 8, 1, 1}, 0.8);
  MeshNet bigger(mesh, MeshNetConfig{16, 16, 1, 2}, 0.8);
  save_meshnet_weights(a, path_);
  EXPECT_FALSE(load_meshnet_weights(bigger, path_));
}

}  // namespace
}  // namespace gns::core
