// Deterministic RNG: reproducibility, distribution sanity, stream
// independence — the properties the "bitwise reproducible runs" contract
// rests on.

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace gns {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17u);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(7);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.uniform_index(8)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(Rng, GaussMoments) {
  Rng rng(8);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gauss();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, GaussScaleAndShift) {
  Rng rng(9);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gauss(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(11);
  Rng child = a.split();
  // Child stream should not replay the parent's continuation.
  Rng b(11);
  b.next();  // parent consumed one draw for the split
  int same = 0;
  for (int i = 0; i < 50; ++i) same += (child.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, WorksWithStdDistributions) {
  Rng rng(12);
  // UniformRandomBitGenerator conformance.
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_GE(rng(), Rng::min());
}

}  // namespace
}  // namespace gns
