// CFD substrate: projection enforces incompressibility, boundary
// conditions hold, the cylinder stays at rest, wake diagnostics work.

#include <gtest/gtest.h>

#include <cmath>

#include "cfd/cfd.hpp"

namespace gns::cfd {
namespace {

CfdConfig small_config() {
  CfdConfig cfg;
  cfg.nx = 48;
  cfg.ny = 24;
  cfg.length = 2.0;
  cfg.pressure_iters = 150;
  return cfg;
}

TEST(Cfd, CellTypesPartitionDomain) {
  CfdSolver solver(small_config());
  int fluid = 0, solid = 0, inflow = 0, outflow = 0;
  for (CellType t : solver.cell_types()) {
    switch (t) {
      case CellType::Fluid: ++fluid; break;
      case CellType::Solid: ++solid; break;
      case CellType::Inflow: ++inflow; break;
      case CellType::Outflow: ++outflow; break;
    }
  }
  EXPECT_EQ(fluid + solid + inflow + outflow, 48 * 24);
  EXPECT_GT(solid, 0);       // cylinder exists
  EXPECT_EQ(inflow, 24);     // left column
  EXPECT_EQ(outflow, 24);    // right column
}

TEST(Cfd, CylinderPlacement) {
  CfdSolver solver(small_config());
  const auto& cfg = solver.config();
  // The cell containing the cylinder center must be solid.
  const int ci = static_cast<int>(cfg.cylinder_x / solver.dx());
  const int cj =
      static_cast<int>(cfg.cylinder_y * solver.height() / solver.dx());
  EXPECT_EQ(solver.cell_type(ci, cj), CellType::Solid);
}

TEST(Cfd, ProjectionDrivesDivergenceDown) {
  CfdSolver solver(small_config());
  for (int i = 0; i < 10; ++i) solver.step();
  EXPECT_LT(solver.max_divergence(), 0.1);
}

TEST(Cfd, InflowVelocityHeld) {
  CfdSolver solver(small_config());
  for (int i = 0; i < 20; ++i) solver.step();
  const auto v = solver.sample_cell_velocities();
  // First column of fluid-adjacent cells should carry ~inflow speed.
  const int nx = solver.config().nx;
  for (int j = 4; j < solver.config().ny - 4; ++j) {
    EXPECT_NEAR(v[2 * (j * nx + 0)], solver.config().inflow, 0.3);
  }
}

TEST(Cfd, SolidCellsHaveZeroVelocity) {
  CfdSolver solver(small_config());
  for (int i = 0; i < 20; ++i) solver.step();
  const auto v = solver.sample_cell_velocities();
  const int nx = solver.config().nx;
  for (int j = 0; j < solver.config().ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      if (solver.cell_type(i, j) == CellType::Solid) {
        EXPECT_NEAR(v[2 * (j * nx + i)], 0.0, 1e-12);
        EXPECT_NEAR(v[2 * (j * nx + i) + 1], 0.0, 1e-12);
      }
    }
  }
}

TEST(Cfd, VelocitiesStayBounded) {
  CfdSolver solver(small_config());
  for (int i = 0; i < 200; ++i) solver.step();
  for (double u : solver.u()) EXPECT_LT(std::abs(u), 10.0);
  for (double v : solver.v()) EXPECT_LT(std::abs(v), 10.0);
}

TEST(Cfd, TimeAdvances) {
  CfdSolver solver(small_config());
  const double dt1 = solver.step();
  EXPECT_GT(dt1, 0.0);
  EXPECT_NEAR(solver.time(), dt1, 1e-15);
}

TEST(Cfd, FixedDtRespected) {
  CfdConfig cfg = small_config();
  cfg.dt = 1e-3;
  CfdSolver solver(cfg);
  EXPECT_DOUBLE_EQ(solver.step(), 1e-3);
}

TEST(Cfd, RolloutShapes) {
  CfdConfig cfg = small_config();
  CfdSolver solver(cfg);
  const CfdRollout roll = run_rollout(solver, 5, 3);
  EXPECT_EQ(roll.velocity_frames.size(), 5u);
  EXPECT_EQ(roll.probe_series.size(), 5u);
  EXPECT_EQ(roll.velocity_frames[0].size(),
            2u * cfg.nx * cfg.ny);
  EXPECT_GT(roll.frame_dt, 0.0);
}

TEST(Cfd, DominantFrequencyOfPureSine) {
  std::vector<double> series;
  const double f = 2.5, dt = 0.01;
  for (int i = 0; i < 400; ++i)
    series.push_back(std::sin(2.0 * M_PI * f * i * dt));
  EXPECT_NEAR(dominant_frequency(series, dt), f, 0.15);
}

TEST(Cfd, DominantFrequencyOfConstantIsZero) {
  std::vector<double> series(100, 3.0);
  EXPECT_EQ(dominant_frequency(series, 0.01), 0.0);
}

TEST(Cfd, DominantFrequencyHandlesShortSeries) {
  EXPECT_EQ(dominant_frequency({1.0, 2.0}, 0.01), 0.0);
}

}  // namespace
}  // namespace gns::cfd
