// MPM substrate: shape functions (partition of unity), constitutive models
// (elastic response, Drucker–Prager yield/return/apex), solver invariants
// (mass conservation, determinism, settling), and the physics property the
// whole paper rests on: runout decreases with friction angle.

#include <gtest/gtest.h>

#include <cmath>

#include "mpm/scenes.hpp"
#include "mpm/shape.hpp"
#include "mpm/solver.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace gns::mpm {
namespace {

// ---------- Shape functions ----------

class ShapePartitionOfUnity
    : public ::testing::TestWithParam<std::pair<ShapeKind, double>> {};

TEST_P(ShapePartitionOfUnity, WeightsSumToOneDerivativesToZero) {
  const auto [kind, x] = GetParam();
  const double h = 0.25;
  const ShapeWeights1D s = shape_weights(kind, x, h);
  double wsum = 0.0, dsum = 0.0;
  for (int i = 0; i < s.count; ++i) {
    EXPECT_GE(s.w[i], -1e-12);
    wsum += s.w[i];
    dsum += s.dw[i];
  }
  EXPECT_NEAR(wsum, 1.0, 1e-12);
  EXPECT_NEAR(dsum, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShapePartitionOfUnity,
    ::testing::Values(std::pair{ShapeKind::Linear, 0.1},
                      std::pair{ShapeKind::Linear, 0.24999},
                      std::pair{ShapeKind::Linear, 0.375},
                      std::pair{ShapeKind::QuadraticBSpline, 0.1},
                      std::pair{ShapeKind::QuadraticBSpline, 0.25},
                      std::pair{ShapeKind::QuadraticBSpline, 0.312},
                      std::pair{ShapeKind::QuadraticBSpline, 0.499},
                      std::pair{ShapeKind::QuadraticBSpline, 1.732}));

TEST(Shape, LinearInterpolatesLinearField) {
  // Σ w_i f(x_i) must reproduce f(x) = a x + b exactly.
  const double h = 0.2;
  const double x = 0.37;
  const ShapeWeights1D s = shape_weights(ShapeKind::Linear, x, h);
  double interp = 0.0;
  for (int i = 0; i < s.count; ++i)
    interp += s.w[i] * (3.0 * (s.base + i) * h + 1.0);
  EXPECT_NEAR(interp, 3.0 * x + 1.0, 1e-12);
}

TEST(Shape, BSplineReproducesLinearFieldGradient) {
  const double h = 0.2;
  const double x = 0.43;
  const ShapeWeights1D s = shape_weights(ShapeKind::QuadraticBSpline, x, h);
  double grad = 0.0;
  for (int i = 0; i < s.count; ++i)
    grad += s.dw[i] * (5.0 * (s.base + i) * h);
  EXPECT_NEAR(grad, 5.0, 1e-9);
}

// ---------- Materials ----------

TEST(LinearElastic, UniaxialStrainResponse) {
  LinearElastic mat(1e6, 0.25, 1000.0);
  SymTensor2 ds = mat.update_stress({}, {0.001, 0.0, 0.0, 0.0});
  // Plane strain: σxx = (λ+2μ)ε, σyy = σzz = λε.
  const double lambda = mat.lambda(), mu = mat.mu();
  EXPECT_NEAR(ds.xx, (lambda + 2 * mu) * 0.001, 1e-6);
  EXPECT_NEAR(ds.yy, lambda * 0.001, 1e-6);
  EXPECT_NEAR(ds.zz, lambda * 0.001, 1e-6);
  EXPECT_NEAR(ds.xy, 0.0, 1e-12);
}

TEST(LinearElastic, ShearResponse) {
  LinearElastic mat(1e6, 0.25, 1000.0);
  SymTensor2 ds = mat.update_stress({}, {0.0, 0.0, 0.001, 0.0});
  EXPECT_NEAR(ds.xy, 2.0 * mat.mu() * 0.001, 1e-6);
  EXPECT_NEAR(ds.xx, 0.0, 1e-12);
}

TEST(LinearElastic, WaveSpeedFormula) {
  LinearElastic mat(1e6, 0.25, 1000.0);
  EXPECT_NEAR(mat.wave_speed(),
              std::sqrt((mat.lambda() + 2 * mat.mu()) / 1000.0), 1e-9);
}

TEST(LinearElastic, RejectsInvalidParameters) {
  EXPECT_THROW(LinearElastic(-1.0, 0.2, 1000.0), CheckError);
  EXPECT_THROW(LinearElastic(1e6, 0.5, 1000.0), CheckError);
  EXPECT_THROW(LinearElastic(1e6, 0.2, 0.0), CheckError);
}

TEST(DruckerPrager, ElasticInsideCone) {
  DruckerPrager mat(1e6, 0.25, 1800.0, 30.0);
  // Strong isotropic compression, tiny shear: stays elastic.
  SymTensor2 sigma{-1000.0, -1000.0, 0.0, -1000.0};
  SymTensor2 out = mat.update_stress(sigma, {0.0, 0.0, 1e-7, 0.0});
  LinearElastic ref(1e6, 0.25, 1800.0);
  SymTensor2 expect = ref.update_stress(sigma, {0.0, 0.0, 1e-7, 0.0});
  EXPECT_NEAR(out.xy, expect.xy, 1e-9);
}

TEST(DruckerPrager, ReturnsToConeUnderShear) {
  DruckerPrager mat(1e6, 0.25, 1800.0, 30.0);
  SymTensor2 sigma{-1000.0, -1000.0, 0.0, -1000.0};
  // Large shear increment drives the trial state outside the cone.
  SymTensor2 out = mat.update_stress(sigma, {0.0, 0.0, 0.01, 0.0});
  const double p = out.mean();
  const double sqrt_j2 = std::sqrt(out.j2());
  EXPECT_NEAR(sqrt_j2, mat.k() - mat.alpha() * p, 1e-6);
  // Zero-dilatancy return preserves the mean stress.
  EXPECT_NEAR(p, -1000.0, 1e-6);
}

TEST(DruckerPrager, TensionReturnsToApex) {
  DruckerPrager mat(1e6, 0.25, 1800.0, 30.0, /*cohesion=*/0.0);
  SymTensor2 out = mat.update_stress({}, {0.01, 0.01, 0.0, 0.0});
  EXPECT_NEAR(out.xx, 0.0, 1e-9);
  EXPECT_NEAR(out.yy, 0.0, 1e-9);
  EXPECT_NEAR(out.xy, 0.0, 1e-9);
}

TEST(DruckerPrager, CohesionSustainsShearAtZeroPressure) {
  DruckerPrager mat(1e6, 0.25, 1800.0, 30.0, /*cohesion=*/1000.0);
  SymTensor2 out = mat.update_stress({}, {0.0, 0.0, 0.005, 0.0});
  EXPECT_GT(std::sqrt(out.j2()), 0.0);
  EXPECT_LE(std::sqrt(out.j2()), mat.k() + 1e-6);
}

TEST(DruckerPrager, HigherFrictionSustainsMoreShear) {
  SymTensor2 sigma{-1000.0, -1000.0, 0.0, -1000.0};
  const SymTensor2 de{0.0, 0.0, 0.01, 0.0};
  DruckerPrager loose(1e6, 0.25, 1800.0, 20.0);
  DruckerPrager dense(1e6, 0.25, 1800.0, 40.0);
  EXPECT_GT(std::abs(dense.update_stress(sigma, de).xy),
            std::abs(loose.update_stress(sigma, de).xy));
}

TEST(DruckerPrager, RejectsInvalidAngles) {
  EXPECT_THROW(DruckerPrager(1e6, 0.25, 1800.0, -1.0), CheckError);
  EXPECT_THROW(DruckerPrager(1e6, 0.25, 1800.0, 90.0), CheckError);
}

// ---------- Particles ----------

TEST(Particles, BlockSamplingCountsAndMass) {
  Particles p = make_block({0.0, 0.0}, {0.2, 0.1}, 0.05, 2000.0);
  EXPECT_EQ(p.size(), 4 * 2);
  EXPECT_NEAR(p.total_mass(), 2000.0 * 0.2 * 0.1, 1e-9);
  for (const auto& x : p.position) {
    EXPECT_GT(x.x, 0.0);
    EXPECT_LT(x.x, 0.2);
  }
}

TEST(Particles, CenterOfMassOfSymmetricBlock) {
  Particles p = make_block({0.0, 0.0}, {0.2, 0.2}, 0.05, 1000.0);
  const Vec2d com = p.center_of_mass();
  EXPECT_NEAR(com.x, 0.1, 1e-9);
  EXPECT_NEAR(com.y, 0.1, 1e-9);
}

// ---------- Solver ----------

MpmSolver small_column_solver(double friction_deg, double floor_friction = 0.4) {
  GranularSceneParams params;
  params.cells_x = 20;
  params.cells_y = 10;
  params.domain_width = 1.0;
  params.domain_height = 0.5;
  params.material.friction_deg = friction_deg;
  params.floor_friction = floor_friction;
  Scene scene = make_column_collapse(params, 0.15, 1.5);
  return scene.make_solver();
}

TEST(MpmSolver, MassIsConserved) {
  MpmSolver solver = small_column_solver(30.0);
  const double m0 = solver.particles().total_mass();
  solver.run(200);
  EXPECT_DOUBLE_EQ(solver.particles().total_mass(), m0);
}

TEST(MpmSolver, ParticlesStayInDomain) {
  MpmSolver solver = small_column_solver(20.0);
  solver.run(500);
  for (const auto& x : solver.particles().position) {
    EXPECT_GE(x.x, 0.0);
    EXPECT_LE(x.x, solver.grid().width());
    EXPECT_GE(x.y, 0.0);
    EXPECT_LE(x.y, solver.grid().height());
  }
}

TEST(MpmSolver, DeterministicAcrossRuns) {
  MpmSolver a = small_column_solver(30.0);
  MpmSolver b = small_column_solver(30.0);
  a.run(100);
  b.run(100);
  for (int i = 0; i < a.particles().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.particles().position[i].x,
                     b.particles().position[i].x);
    EXPECT_DOUBLE_EQ(a.particles().position[i].y,
                     b.particles().position[i].y);
  }
}

TEST(MpmSolver, SimdToggleIsBitwiseInvisible) {
  // GNS_SIMD swaps the batched shape-weight kernel and the reduction's
  // accumulate for bitwise-identical twins; multiple steps also regress
  // the lazy block clearing — stale per-thread buffer data from step k
  // must never leak into step k+1.
  auto run = [&](bool simd_on) {
    gns::simd::set_enabled(simd_on);
    MpmSolver solver = small_column_solver(30.0);
    solver.run(5);
    return solver.particles().position;
  };
  const auto off = run(false);
  const auto on = run(true);
  gns::simd::set_enabled(true);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].x, on[i].x);
    EXPECT_EQ(off[i].y, on[i].y);
  }
}

TEST(Shape, BatchedWeightsBitwiseMatchScalar) {
  // shape_weights_batch (AVX2-dispatched for the B-spline) must carry
  // exactly the bits of per-coordinate shape_weights, including at cell
  // boundaries, negative coordinates, and a non-multiple-of-4 tail.
  const double h = 0.025;
  for (const ShapeKind kind :
       {ShapeKind::QuadraticBSpline, ShapeKind::Linear}) {
    alignas(32) double x[kShapeBatch];
    int n = 0;
    x[n++] = 0.0;
    x[n++] = h;          // exactly on a node
    x[n++] = 1.5 * h;    // exactly between nodes
    x[n++] = -0.3 * h;   // below the domain
    x[n++] = 17.25 * h;
    gns::Rng rng(7);
    while (n < 39) x[n++] = rng.uniform(-2.0 * h, 40.0 * h);  // odd tail
    ShapeWeightsBatch batch;
    shape_weights_batch(kind, x, n, h, batch);
    for (int i = 0; i < n; ++i) {
      const ShapeWeights1D ref = shape_weights(kind, x[i], h);
      EXPECT_EQ(batch.base[i], ref.base) << "i=" << i;
      for (int k = 0; k < 3; ++k) {
        EXPECT_EQ(batch.w[k][i], ref.w[k]) << "i=" << i << " k=" << k;
        EXPECT_EQ(batch.dw[k][i], ref.dw[k]) << "i=" << i << " k=" << k;
      }
    }
  }
}

TEST(MpmSolver, ColumnCollapsesAndSettles) {
  MpmSolver solver = small_column_solver(30.0);
  const double com_y0 = solver.particles().center_of_mass().y;
  // Run ~1 simulated second.
  while (solver.time() < 1.0) solver.step();
  // Collapsed: center of mass dropped, kinetic energy nearly dissipated.
  EXPECT_LT(solver.particles().center_of_mass().y, com_y0);
  const double ke_per_mass = solver.particles().kinetic_energy() /
                             solver.particles().total_mass();
  EXPECT_LT(ke_per_mass, 1e-2);
}

TEST(MpmSolver, RunoutDecreasesWithFrictionAngle) {
  // The physics that makes the §5 inverse problem well-posed.
  double previous_runout = 1e9;
  for (double phi : {15.0, 30.0, 45.0}) {
    MpmSolver solver = small_column_solver(phi);
    while (solver.time() < 1.0) solver.step();
    const double runout = solver.particles().max_x();
    EXPECT_LT(runout, previous_runout) << "phi=" << phi;
    previous_runout = runout;
  }
}

TEST(MpmSolver, FixedDtOverridesCfl) {
  MpmSolver solver = small_column_solver(30.0);
  MpmConfig cfg = solver.config();
  cfg.fixed_dt = 1e-4;
  MpmSolver fixed(cfg, std::make_shared<DruckerPrager>(1e6, 0.3, 1800.0, 30.0),
                  solver.particles());
  EXPECT_DOUBLE_EQ(fixed.dt(), 1e-4);
  fixed.step();
  EXPECT_DOUBLE_EQ(fixed.time(), 1e-4);
}

TEST(MpmSolver, SetKinematicsReplacesState) {
  MpmSolver solver = small_column_solver(30.0);
  const int n = solver.particles().size();
  std::vector<Vec2d> x(n, {0.5, 0.25});
  std::vector<Vec2d> v(n, {1.0, 0.0});
  solver.set_kinematics(x, v);
  EXPECT_NEAR(solver.particles().position[0].x, 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(solver.particles().velocity[0].x, 1.0);
}

TEST(MpmSolver, SetKinematicsClampsEscapees) {
  MpmSolver solver = small_column_solver(30.0);
  const int n = solver.particles().size();
  std::vector<Vec2d> x(n, {-5.0, 99.0});
  std::vector<Vec2d> v(n, {0.0, 0.0});
  solver.set_kinematics(x, v);
  EXPECT_GE(solver.particles().position[0].x, 0.0);
  EXPECT_LE(solver.particles().position[0].y, solver.grid().height());
}

TEST(MpmSolver, FreeFallMatchesGravity) {
  // A block far from the floor in its first steps accelerates at g.
  GranularSceneParams params;
  params.cells_x = 20;
  params.cells_y = 20;
  params.domain_width = 1.0;
  params.domain_height = 1.0;
  Scene scene;
  scene.config = MpmConfig{};
  scene.config.cells_x = 20;
  scene.config.cells_y = 20;
  scene.config.spacing = 0.05;
  scene.material = std::make_shared<LinearElastic>(1e5, 0.3, 1000.0);
  scene.particles =
      make_block({0.4, 0.7}, {0.6, 0.9}, 0.025, 1000.0);
  MpmSolver solver = scene.make_solver();
  const double vy0 = solver.particles().velocity[0].y;
  double t = 0.0;
  for (int i = 0; i < 20; ++i) t += solver.step();
  const Vec2d com_v = [&] {
    Vec2d acc;
    for (const auto& v : solver.particles().velocity) acc += v;
    return acc * (1.0 / solver.particles().size());
  }();
  EXPECT_NEAR(com_v.y - vy0, -9.81 * t, 0.05 * 9.81 * t);
}

TEST(Grid, BoundaryFloorStopsDownwardFlow) {
  Grid grid(4, 4, 0.25);
  const int node = grid.node_index(2, 0);
  grid.velocity[node] = {1.0, -2.0};
  grid.apply_boundary(1e-3, /*floor_friction=*/0.25);
  EXPECT_DOUBLE_EQ(grid.velocity[node].y, 0.0);
  // Coulomb: |Δvt| = μ·|vn| = 0.5.
  EXPECT_DOUBLE_EQ(grid.velocity[node].x, 0.5);
}

TEST(Grid, FloorFrictionStopsSlowTangential) {
  Grid grid(4, 4, 0.25);
  const int node = grid.node_index(1, 0);
  grid.velocity[node] = {0.1, -2.0};
  grid.apply_boundary(1e-3, 0.25);
  EXPECT_DOUBLE_EQ(grid.velocity[node].x, 0.0);
}

TEST(Grid, WallsBlockOutwardOnly) {
  Grid grid(4, 4, 0.25);
  const int left = grid.node_index(0, 2);
  grid.velocity[left] = {-1.0, 0.5};
  grid.apply_boundary(1e-3, 0.0);
  EXPECT_DOUBLE_EQ(grid.velocity[left].x, 0.0);
  EXPECT_DOUBLE_EQ(grid.velocity[left].y, 0.5);

  const int right = grid.node_index(4, 2);
  grid.velocity[right] = {-1.0, 0.0};
  grid.apply_boundary(1e-3, 0.0);
  EXPECT_DOUBLE_EQ(grid.velocity[right].x, -1.0);  // inward is allowed
}

// ---------- Newtonian fluid ----------

TEST(NewtonianFluid, HydrostaticPressureFromCompression) {
  NewtonianFluid water(1000.0, 20.0, 1e-3);
  // 1% compression: p = c^2 (rho - rho0) = 400 * 10 = 4000 Pa.
  StressState state;
  state.density = 1010.0;
  state.dt = 1e-3;
  SymTensor2 out = water.update_stress(state);
  EXPECT_NEAR(out.xx, -4000.0, 1e-6);
  EXPECT_NEAR(out.yy, -4000.0, 1e-6);
  EXPECT_NEAR(out.zz, -4000.0, 1e-6);
  EXPECT_NEAR(out.xy, 0.0, 1e-12);
}

TEST(NewtonianFluid, NoTensionBelowRestDensity) {
  NewtonianFluid water(1000.0, 20.0, 0.0);
  StressState state;
  state.density = 900.0;  // stretched: cavitation cutoff, not tension
  state.dt = 1e-3;
  SymTensor2 out = water.update_stress(state);
  EXPECT_DOUBLE_EQ(out.xx, 0.0);
  EXPECT_DOUBLE_EQ(out.yy, 0.0);
}

TEST(NewtonianFluid, ViscousShearProportionalToRate) {
  NewtonianFluid fluid(1000.0, 20.0, 0.5);
  StressState state;
  state.density = 1000.0;
  state.dt = 1e-3;
  state.dstrain = {0.0, 0.0, 1e-4, 0.0};  // shear rate 0.1 1/s
  SymTensor2 out = fluid.update_stress(state);
  EXPECT_NEAR(out.xy, 2.0 * 0.5 * 0.1, 1e-9);
  // Doubling dt at fixed dstrain halves the rate and hence the stress.
  state.dt = 2e-3;
  EXPECT_NEAR(fluid.update_stress(state).xy, 0.5 * out.xy, 1e-9);
}

TEST(NewtonianFluid, StressIsMemoryless) {
  // Unlike the solids, the fluid ignores the previous stress entirely.
  NewtonianFluid fluid(1000.0, 20.0, 0.0);
  StressState state;
  state.stress = {123.0, -55.0, 9.0, 2.0};
  state.density = 1000.0;
  state.dt = 1e-3;
  SymTensor2 out = fluid.update_stress(state);
  EXPECT_DOUBLE_EQ(out.xx, 0.0);
  EXPECT_DOUBLE_EQ(out.xy, 0.0);
}

TEST(NewtonianFluid, RejectsInvalidParameters) {
  EXPECT_THROW(NewtonianFluid(0.0, 20.0, 1e-3), CheckError);
  EXPECT_THROW(NewtonianFluid(1000.0, -1.0, 1e-3), CheckError);
  EXPECT_THROW(NewtonianFluid(1000.0, 20.0, -1e-3), CheckError);
}

TEST(DamBreak, FluidSpreadsAndLevels) {
  FluidSceneParams params;
  params.cells_x = 24;
  params.cells_y = 12;
  Scene scene = make_dam_break(params, 0.2, 0.3);
  MpmSolver solver = scene.make_solver();
  const double m0 = solver.particles().total_mass();
  while (solver.time() < 1.0) solver.step();
  // Mass conserved; front traveled well past the initial dam width; free
  // surface dropped toward the leveled depth (area / domain width).
  EXPECT_DOUBLE_EQ(solver.particles().total_mass(), m0);
  EXPECT_GT(solver.particles().max_x(), 0.6);
  double max_y = 0.0;
  for (const auto& p : solver.particles().position)
    max_y = std::max(max_y, p.y);
  const double level = 0.2 * 0.3 / params.domain_width;
  EXPECT_LT(max_y, 3.0 * level);
}

TEST(DamBreak, FasterThanGranularColumn) {
  // Same geometry: the frictionless fluid front outruns the frictional
  // granular front — the material distinction the GNS must learn.
  FluidSceneParams fluid_params;
  fluid_params.cells_x = 24;
  fluid_params.cells_y = 12;
  Scene fluid = make_dam_break(fluid_params, 0.15, 0.3);
  MpmSolver fluid_solver = fluid.make_solver();
  while (fluid_solver.time() < 0.5) fluid_solver.step();

  GranularSceneParams sand_params;
  sand_params.cells_x = 24;
  sand_params.cells_y = 12;
  Scene sand = make_column_collapse(sand_params, 0.15, 2.0);
  MpmSolver sand_solver = sand.make_solver();
  while (sand_solver.time() < 0.5) sand_solver.step();

  EXPECT_GT(fluid_solver.particles().max_x(),
            sand_solver.particles().max_x());
}

TEST(Scenes, ColumnGeometryRespected) {
  GranularSceneParams params;
  params.cells_x = 40;
  params.cells_y = 20;
  Scene scene = make_column_collapse(params, 0.2, 1.5);
  double max_x = 0.0, max_y = 0.0;
  for (const auto& p : scene.particles.position) {
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  EXPECT_LT(max_x, 0.2);
  EXPECT_LT(max_y, 0.3);
  EXPECT_GT(max_y, 0.25);
}

TEST(Scenes, ColumnTooTallThrows) {
  GranularSceneParams params;  // domain height 0.5
  EXPECT_THROW(make_column_collapse(params, 0.3, 2.0), CheckError);
}

TEST(Scenes, RandomSquaresVary) {
  GranularSceneParams params;
  Rng rng(3);
  Scene a = make_random_square(params, rng);
  Scene b = make_random_square(params, rng);
  EXPECT_NE(a.particles.size(), 0);
  // Different draws should differ in size or placement.
  const bool differs =
      a.particles.size() != b.particles.size() ||
      std::abs(a.particles.position[0].x - b.particles.position[0].x) > 1e-12;
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace gns::mpm
