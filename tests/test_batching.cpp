// Block-diagonal batching: graph merge bookkeeping, bit-level equivalence
// of batched vs independent GNS steps/rollouts, and finite-difference
// gradient checks of the segmented gather/scatter and attention-weighted
// message paths that batching leans on.

#include <gtest/gtest.h>

#include <cmath>

#include "ad/gradcheck.hpp"
#include "ad/ops.hpp"
#include "core/batched_simulator.hpp"
#include "core/trainer.hpp"
#include "graph/batch.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gns::core {
namespace {

constexpr double kTol = 1e-10;  // batched vs independent: elementwise

io::Trajectory tiny_trajectory(int particles, std::uint64_t seed,
                               double material) {
  io::Trajectory traj;
  traj.dim = 2;
  traj.num_particles = particles;
  traj.domain_lo = {0.0, 0.0};
  traj.domain_hi = {1.0, 1.0};
  traj.material_param = material;
  Rng rng(seed);
  std::vector<double> base(static_cast<std::size_t>(particles) * 2);
  for (auto& v : base) v = rng.uniform(0.25, 0.75);
  for (int t = 0; t < 10; ++t) {
    std::vector<double> frame(base.size());
    for (std::size_t i = 0; i < base.size(); ++i)
      frame[i] = base[i] + 0.0015 * t * static_cast<double>(i % 3);
    traj.add_frame(std::move(frame));
  }
  return traj;
}

/// Attention + material model: exercises the segment-softmax message path
/// through the batched forward.
LearnedSimulator attention_sim() {
  io::Dataset ds;
  ds.trajectories.push_back(tiny_trajectory(6, 11, 0.5));
  FeatureConfig fc;
  fc.dim = 2;
  fc.history = 3;
  fc.connectivity_radius = 0.4;
  fc.domain_lo = {0.0, 0.0};
  fc.domain_hi = {1.0, 1.0};
  fc.material_feature = true;
  GnsConfig gc;
  gc.latent = 8;
  gc.mlp_hidden = 8;
  gc.mlp_layers = 1;
  gc.message_passing_steps = 2;
  gc.attention = true;
  return make_simulator(ds, fc, gc, /*seed=*/91);
}

Window window_of(const LearnedSimulator& sim, const io::Trajectory& traj) {
  return sim.window_from_trajectory(traj);
}

SceneContext material_context(double material) {
  SceneContext ctx;
  ctx.material = ad::Tensor::scalar(material);
  return ctx;
}

TEST(GraphBatch, OffsetsSegmentsAndMergedIndices) {
  graph::Graph a;
  a.num_nodes = 3;
  a.add_edge(0, 1);
  a.add_edge(2, 1);
  graph::Graph b;
  b.num_nodes = 2;
  b.add_edge(1, 0);
  graph::Graph c;
  c.num_nodes = 4;  // zero edges allowed at the batching layer

  graph::GraphBatch batch = graph::batch_graphs({a, b, c});
  EXPECT_EQ(batch.num_graphs(), 3);
  EXPECT_EQ(batch.merged.num_nodes, 9);
  EXPECT_EQ(batch.merged.num_edges(), 3);
  EXPECT_EQ(batch.nodes_of(0), 3);
  EXPECT_EQ(batch.nodes_of(1), 2);
  EXPECT_EQ(batch.nodes_of(2), 4);
  EXPECT_EQ(batch.edges_of(0), 2);
  EXPECT_EQ(batch.edges_of(1), 1);
  EXPECT_EQ(batch.edges_of(2), 0);

  // Member 1's edge (1 -> 0) lands offset by member 0's node count.
  EXPECT_EQ(batch.merged.senders[2], 3 + 1);
  EXPECT_EQ(batch.merged.receivers[2], 3 + 0);

  const std::vector<int> seg = batch.node_segments();
  ASSERT_EQ(seg.size(), 9u);
  EXPECT_EQ(seg[0], 0);
  EXPECT_EQ(seg[2], 0);
  EXPECT_EQ(seg[3], 1);
  EXPECT_EQ(seg[4], 1);
  EXPECT_EQ(seg[5], 2);
  EXPECT_EQ(seg[8], 2);
}

TEST(SliceRows, ValuesBoundsAndGradient) {
  ad::Tensor a = ad::Tensor::from_vector(4, 2, {1, 2, 3, 4, 5, 6, 7, 8});
  ad::Tensor s = ad::slice_rows(a, 1, 2);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.cols(), 2);
  EXPECT_EQ(s.at(0, 0), 3.0);
  EXPECT_EQ(s.at(1, 1), 6.0);
  EXPECT_THROW(ad::slice_rows(a, 3, 2), CheckError);

  Rng rng(5);
  std::vector<ad::Real> v(8);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  auto result = ad::grad_check(
      [](const std::vector<ad::Tensor>& in) {
        return ad::sum(ad::square(ad::slice_rows(in[0], 1, 2)));
      },
      {ad::Tensor::from_vector(4, 2, std::move(v))});
  EXPECT_TRUE(result.ok) << "max abs err " << result.max_abs_error;
}

TEST(BatchedSimulator, StepMatchesIndependentSteps) {
  LearnedSimulator sim = attention_sim();
  auto handle = std::make_shared<const LearnedSimulator>(std::move(sim));
  BatchedSimulator batched(handle);

  // Four members with different particle counts and materials.
  const std::vector<int> sizes = {6, 4, 9, 6};
  const std::vector<double> materials = {0.5, 0.3, 0.7, 0.45};
  std::vector<Window> windows;
  std::vector<SceneContext> contexts;
  for (std::size_t g = 0; g < sizes.size(); ++g) {
    io::Trajectory traj =
        tiny_trajectory(sizes[g], 100 + g, materials[g]);
    windows.push_back(window_of(*handle, traj));
    contexts.push_back(material_context(materials[g]));
  }

  ad::NoGradGuard no_grad;
  graph::GraphBatch batch;
  std::vector<ad::Tensor> next = batched.step(windows, contexts, &batch);
  ASSERT_EQ(next.size(), windows.size());
  ASSERT_EQ(batch.num_graphs(), 4);

  for (std::size_t g = 0; g < windows.size(); ++g) {
    ad::Tensor ref = handle->step(windows[g], contexts[g]);
    ASSERT_EQ(next[g].rows(), ref.rows());
    ASSERT_EQ(next[g].cols(), ref.cols());
    for (int i = 0; i < ref.rows(); ++i)
      for (int d = 0; d < ref.cols(); ++d)
        EXPECT_NEAR(next[g].at(i, d), ref.at(i, d), kTol)
            << "member " << g << " particle " << i << " axis " << d;
  }
}

TEST(BatchedSimulator, RolloutCompactsEarlyFinishersAndMatchesSingles) {
  LearnedSimulator sim = attention_sim();
  auto handle = std::make_shared<const LearnedSimulator>(std::move(sim));
  BatchedSimulator batched(handle);

  const std::vector<int> sizes = {6, 5, 7};
  const std::vector<int> steps = {7, 2, 4};  // staggered finish -> compaction
  const std::vector<double> materials = {0.5, 0.6, 0.4};
  std::vector<Window> windows;
  std::vector<SceneContext> contexts;
  for (std::size_t g = 0; g < sizes.size(); ++g) {
    io::Trajectory traj = tiny_trajectory(sizes[g], 200 + g, materials[g]);
    windows.push_back(window_of(*handle, traj));
    contexts.push_back(material_context(materials[g]));
  }

  auto frames = batched.rollout(windows, steps, contexts);
  ASSERT_EQ(frames.size(), windows.size());
  for (std::size_t g = 0; g < windows.size(); ++g) {
    auto ref = handle->rollout(windows[g], steps[g], contexts[g]);
    ASSERT_EQ(frames[g].size(), ref.size()) << "member " << g;
    for (std::size_t t = 0; t < ref.size(); ++t) {
      ASSERT_EQ(frames[g][t].size(), ref[t].size());
      for (std::size_t k = 0; k < ref[t].size(); ++k)
        EXPECT_NEAR(frames[g][t][k], ref[t][k], kTol)
            << "member " << g << " frame " << t << " component " << k;
    }
  }
}

TEST(BatchedSimulator, RolloutGateDropsMemberWithPartialFrames) {
  LearnedSimulator sim = attention_sim();
  auto handle = std::make_shared<const LearnedSimulator>(std::move(sim));
  BatchedSimulator batched(handle);

  std::vector<Window> windows;
  std::vector<SceneContext> contexts;
  for (int g = 0; g < 2; ++g) {
    io::Trajectory traj = tiny_trajectory(6, 300 + g, 0.5);
    windows.push_back(window_of(*handle, traj));
    contexts.push_back(material_context(0.5));
  }

  // Member 0 is stopped by the gate after its 3rd frame; member 1 runs out.
  int calls_member0 = 0;
  auto frames = batched.rollout(
      windows, {10, 6}, contexts, [&calls_member0](int member) {
        if (member == 0) return ++calls_member0 <= 3;
        return true;
      });
  EXPECT_EQ(frames[0].size(), 3u);  // partial prefix preserved
  EXPECT_EQ(frames[1].size(), 6u);

  // The surviving member's frames equal its solo rollout (compaction does
  // not perturb numerics).
  auto ref = handle->rollout(windows[1], 6, contexts[1]);
  for (std::size_t t = 0; t < ref.size(); ++t)
    for (std::size_t k = 0; k < ref[t].size(); ++k)
      EXPECT_NEAR(frames[1][t][k], ref[t][k], kTol);
}

TEST(BatchedFeatures, MaterialColumnIsSegmented) {
  FeatureConfig fc;
  fc.dim = 2;
  fc.history = 1;
  fc.connectivity_radius = 0.5;
  fc.domain_lo = {0.0, 0.0};
  fc.domain_hi = {1.0, 1.0};
  fc.material_feature = true;

  io::NormalizationStats stats;
  stats.vel_mean = {0.0, 0.0};
  stats.vel_std = {1.0, 1.0};
  stats.acc_mean = {0.0, 0.0};
  stats.acc_std = {1.0, 1.0};
  Normalizer norm(stats);

  auto frame = [](int n, double v) {
    std::vector<ad::Real> data(static_cast<std::size_t>(n) * 2, v);
    return ad::Tensor::from_vector(n, 2, std::move(data));
  };
  std::vector<std::vector<ad::Tensor>> windows = {
      {frame(2, 0.4), frame(2, 0.41)}, {frame(3, 0.6), frame(3, 0.61)}};
  std::vector<SceneContext> contexts = {material_context(0.25),
                                        material_context(0.75)};

  ad::Tensor feats = build_batched_node_features(fc, norm, windows, contexts);
  ASSERT_EQ(feats.rows(), 5);
  ASSERT_EQ(feats.cols(), fc.node_feature_count());
  const int mat_col = feats.cols() - 1;
  EXPECT_DOUBLE_EQ(feats.at(0, mat_col), 0.25);
  EXPECT_DOUBLE_EQ(feats.at(1, mat_col), 0.25);
  EXPECT_DOUBLE_EQ(feats.at(2, mat_col), 0.75);
  EXPECT_DOUBLE_EQ(feats.at(4, mat_col), 0.75);
}

// ---- Gradcheck sweep over the segmented message-passing paths --------------

graph::GraphBatch two_member_batch() {
  graph::Graph a;
  a.num_nodes = 3;
  a.add_edge(0, 1);
  a.add_edge(2, 1);
  a.add_edge(1, 0);
  a.add_edge(1, 2);
  graph::Graph b;
  b.num_nodes = 2;
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  return graph::batch_graphs({a, b});
}

ad::Tensor random_tensor(int r, int c, Rng& rng) {
  std::vector<ad::Real> v(static_cast<std::size_t>(r) * c);
  for (auto& x : v) x = rng.uniform(-1.5, 1.5);
  return ad::Tensor::from_vector(r, c, std::move(v));
}

TEST(BatchedGradcheck, SegmentedGatherScatterRoundTrip) {
  const graph::GraphBatch batch = two_member_batch();
  Rng rng(31);
  auto result = ad::grad_check(
      [&batch](const std::vector<ad::Tensor>& in) {
        // Node features -> per-edge messages (sender - receiver gathers)
        // -> scatter-add back onto receivers: the segmented aggregation
        // spine of the batched processor layer.
        ad::Tensor xs = ad::gather_rows(in[0], batch.merged.senders);
        ad::Tensor xr = ad::gather_rows(in[0], batch.merged.receivers);
        ad::Tensor msg = ad::mul(ad::tanh_op(xs), xr);
        ad::Tensor agg = ad::scatter_add_rows(msg, batch.merged.receivers,
                                              batch.merged.num_nodes);
        return ad::sum(ad::square(agg));
      },
      {random_tensor(batch.merged.num_nodes, 3, rng)});
  EXPECT_TRUE(result.ok) << "max abs err " << result.max_abs_error
                         << " max rel err " << result.max_rel_error;
}

TEST(BatchedGradcheck, AttentionWeightedMessagePath) {
  const graph::GraphBatch batch = two_member_batch();
  const int e = batch.merged.num_edges();
  Rng rng(37);
  auto result = ad::grad_check(
      [&batch](const std::vector<ad::Tensor>& in) {
        // scores -> per-receiver segment softmax -> weighted messages ->
        // scatter: the attention extension through a block-diagonal graph.
        ad::Tensor alpha = ad::segment_softmax(in[0], batch.merged.receivers,
                                               batch.merged.num_nodes);
        ad::Tensor weighted = ad::mul(in[1], alpha);
        ad::Tensor agg = ad::scatter_add_rows(weighted,
                                              batch.merged.receivers,
                                              batch.merged.num_nodes);
        return ad::sum(ad::square(agg));
      },
      {random_tensor(e, 1, rng), random_tensor(e, 4, rng)});
  EXPECT_TRUE(result.ok) << "max abs err " << result.max_abs_error
                         << " max rel err " << result.max_rel_error;
}

TEST(BatchedGradcheck, SliceRowsPerMemberReadback) {
  const graph::GraphBatch batch = two_member_batch();
  Rng rng(41);
  auto result = ad::grad_check(
      [&batch](const std::vector<ad::Tensor>& in) {
        // The batched integrator reads each member's acceleration rows
        // back out of the merged decode; both slices must carry gradient.
        ad::Tensor a0 =
            ad::slice_rows(in[0], batch.node_offset[0], batch.nodes_of(0));
        ad::Tensor a1 =
            ad::slice_rows(in[0], batch.node_offset[1], batch.nodes_of(1));
        return ad::add(ad::sum(ad::square(a0)),
                       ad::sum(ad::mul_scalar(a1, 0.5)));
      },
      {random_tensor(batch.merged.num_nodes, 2, rng)});
  EXPECT_TRUE(result.ok) << "max abs err " << result.max_abs_error;
}

}  // namespace
}  // namespace gns::core
