// Expression simplification: identity elimination, constant folding,
// semantics preservation (property-tested against random expressions).

#include <gtest/gtest.h>

#include <cmath>

#include "sr/genetic.hpp"
#include "sr/simplify.hpp"

namespace gns::sr {
namespace {

ExprPtr x() { return Expr::variable(0); }
ExprPtr c(double v) { return Expr::constant(v); }

TEST(Simplify, AdditiveIdentity) {
  ExprPtr e = Expr::binary(Op::Add, x(), c(0.0));
  ExprPtr s = simplify(*e);
  EXPECT_EQ(s->op, Op::Var);
}

TEST(Simplify, MultiplicativeIdentityAndZero) {
  EXPECT_EQ(simplify(*Expr::binary(Op::Mul, x(), c(1.0)))->op, Op::Var);
  ExprPtr zero = simplify(*Expr::binary(Op::Mul, x(), c(0.0)));
  EXPECT_EQ(zero->op, Op::Const);
  EXPECT_DOUBLE_EQ(zero->value, 0.0);
}

TEST(Simplify, MulMinusOneBecomesNeg) {
  ExprPtr s = simplify(*Expr::binary(Op::Mul, x(), c(-1.0)));
  EXPECT_EQ(s->op, Op::Neg);
}

TEST(Simplify, ConstantFolding) {
  // (2 + 3) * 4 -> 20
  ExprPtr e = Expr::binary(Op::Mul, Expr::binary(Op::Add, c(2), c(3)), c(4));
  ExprPtr s = simplify(*e);
  EXPECT_EQ(s->op, Op::Const);
  EXPECT_DOUBLE_EQ(s->value, 20.0);
}

TEST(Simplify, FoldsConstSubtreeInsideVariableTree) {
  // x + (2 * 3) -> x + 6
  ExprPtr e = Expr::binary(Op::Add, x(), Expr::binary(Op::Mul, c(2), c(3)));
  ExprPtr s = simplify(*e);
  EXPECT_EQ(s->op, Op::Add);
  EXPECT_EQ(s->b->op, Op::Const);
  EXPECT_DOUBLE_EQ(s->b->value, 6.0);
}

TEST(Simplify, DoubleNegationAndAbs) {
  EXPECT_EQ(simplify(*Expr::unary(Op::Neg, Expr::unary(Op::Neg, x())))->op,
            Op::Var);
  EXPECT_EQ(simplify(*Expr::unary(Op::Abs, Expr::unary(Op::Abs, x())))
                ->complexity(),
            2);
  // |−x| = |x|
  ExprPtr s = simplify(*Expr::unary(Op::Abs, Expr::unary(Op::Neg, x())));
  EXPECT_EQ(s->op, Op::Abs);
  EXPECT_EQ(s->a->op, Op::Var);
}

TEST(Simplify, InverseOfInverse) {
  EXPECT_EQ(simplify(*Expr::unary(Op::Inv, Expr::unary(Op::Inv, x())))->op,
            Op::Var);
}

TEST(Simplify, PowIdentities) {
  EXPECT_EQ(simplify(*Expr::binary(Op::Pow, x(), c(1.0)))->op, Op::Var);
  ExprPtr one = simplify(*Expr::binary(Op::Pow, x(), c(0.0)));
  EXPECT_EQ(one->op, Op::Const);
  EXPECT_DOUBLE_EQ(one->value, 1.0);
}

TEST(Simplify, DoesNotFoldNaNSubtrees) {
  // 1/0 stays symbolic: folding it would change NaN semantics.
  ExprPtr e = Expr::binary(Op::Div, c(1.0), c(0.0));
  ExprPtr s = simplify(*e);
  EXPECT_EQ(s->op, Op::Div);
}

TEST(Simplify, NeverIncreasesComplexity) {
  Rng rng(21);
  for (int trial = 0; trial < 300; ++trial) {
    ExprPtr e = random_expr(paper_operator_set(), 3, 5, rng);
    ExprPtr s = simplify(*e);
    EXPECT_LE(s->complexity(), e->complexity());
  }
}

TEST(Simplify, PreservesSemanticsOnRandomExpressions) {
  Rng rng(22);
  for (int trial = 0; trial < 200; ++trial) {
    ExprPtr e = random_expr(paper_operator_set(), 2, 5, rng);
    ExprPtr s = simplify(*e);
    for (int k = 0; k < 10; ++k) {
      const std::vector<double> point = {rng.uniform(-3, 3),
                                         rng.uniform(-3, 3)};
      const double ve = e->eval(point);
      const double vs = s->eval(point);
      if (std::isfinite(ve) && std::isfinite(vs)) {
        const double scale = std::max({std::abs(ve), std::abs(vs), 1.0});
        EXPECT_NEAR(ve, vs, 1e-9 * scale)
            << e->to_string({"x", "y"}) << "  vs  "
            << s->to_string({"x", "y"});
      }
    }
  }
}

TEST(Simplify, PaperLawCleansUp) {
  // ((dx + (abs((r2 * -1.0) + r1) * -1.0)) * 100.0): inner (r2 * -1) and
  // the outer (* -1) fold into Neg forms, shrinking complexity.
  ExprPtr law = Expr::binary(
      Op::Mul,
      Expr::binary(
          Op::Add, Expr::variable(0),
          Expr::binary(Op::Mul,
                       Expr::unary(Op::Abs,
                                   Expr::binary(Op::Add,
                                                Expr::binary(Op::Mul,
                                                             Expr::variable(2),
                                                             c(-1.0)),
                                                Expr::variable(1))),
                       c(-1.0))),
      c(100.0));
  ExprPtr s = simplify(*law);
  EXPECT_LT(s->complexity(), law->complexity());
  // Semantics check at a sample point.
  const std::vector<double> p = {0.07, 0.05, 0.04};
  EXPECT_NEAR(s->eval(p), law->eval(p), 1e-12);
}

}  // namespace
}  // namespace gns::sr
